(** Adaptive exact-then-sketch union counter.

    Theorem 1.2's sampling regime is vacuous when the union is small (and
    [Params.create] refuses universes below [~2·ln(4/δ)/ε²] outright): at
    those sizes one can simply hold the distinct elements.  This wrapper
    gives the best of both:

    - while every processed set is small and the running union fits
      [exact_capacity], it materialises sets by coupon collection and the
      estimate is {e exact};
    - the moment anything outgrows the budget it hands over to a VATIC
      sketch that has been fed the whole stream from the start, so the
      transition loses nothing.

    On universes too small for VATIC the wrapper runs exact-only (and
    raises if the exact budget is ever exceeded — at that point the
    parameters were unsatisfiable anyway). *)

module Make (F : Delphic_family.Family.FAMILY) : sig
  type t

  val create :
    ?mode:Params.mode ->
    ?exact_capacity:int ->
    epsilon:float ->
    delta:float ->
    log2_universe:float ->
    seed:int ->
    unit ->
    t
  (** [exact_capacity] defaults to the VATIC bucket bound
      [B·(max_level+1)] — exact mode never uses more memory than the sketch
      it replaces. *)

  val process : ?ts:float -> t -> F.t -> unit
  (** Raises [Failure] only in the exact-only regime (universe too small for
      VATIC) when the capacity is exceeded.  [ts] (default 0) is the logical
      ingest timestamp; both the exact table and the shadow sketch record the
      newest timestamp per element, the invariant {!estimate_window} needs. *)

  val estimate : t -> float

  val estimate_window : t -> cutoff:float -> float
  (** Union size restricted to elements whose last occurrence is at or after
      [cutoff].  Exactly correct in the exact regime (a count over the
      timestamped table); the restricted Horvitz–Thompson sum
      ({!Vatic.Make.estimate_window}) in the sketch regime.
      Non-destructive. *)

  val is_exact : t -> bool
  (** Whether {!estimate} currently returns the exact union size. *)

  val exact_size : t -> int option
  (** The exact distinct count while in exact mode. *)

  val items_processed : t -> int

  val max_bucket_size : t -> int
  (** Largest sketch bucket observed (0 while no sketch exists). *)

  val sketch_size : t -> int
  (** Current sketch bucket occupancy (0 while no sketch exists). *)

  val skipped_sets : t -> int
  (** Sets the underlying sketch dropped at the probability floor (0 in
      exact-only mode). *)

  val describe : t -> string
  (** One-line state description for UIs: "exact (n distinct)" or
      "sketch (...)" . *)

  val epsilon : t -> float
  val delta : t -> float
  val log2_universe : t -> float

  (** {2 Membership probes and union sampling}

      The entry points of the set-expression evaluator
      ({!Delphic_expr.Expr.Eval}): draw union samples here, probe each
      operand session there. *)

  type probe =
    | Absent  (** not held — certainly outside the union while exact *)
    | Member  (** held by the exact table: a true membership indicator *)
    | Sampled of float
        (** held by the sketch bucket at level ℓ; the payload is the
            Horvitz–Thompson weight [2^ℓ], an unbiased estimate of the
            membership indicator (no false positives) *)

  val probe : t -> F.elt -> probe

  val probe_weight : t -> F.elt -> float
  (** [probe] collapsed to its weight: 0, 1, or [2^ℓ]. *)

  val sample_union_n : t -> int -> F.elt list
  (** [n] i.i.d. draws from the running union: uniform over the exact table
      while exact (an {e exactly} uniform sample), the sketch's one-pass
      subsample draw at scale ({!Vatic.Make.sample_union_n}).  Empty when
      nothing has been processed or [n <= 0]. *)

  (** {2 Checkpointing}

      Same contract as {!Vatic.Make.snapshot}: the full estimator state —
      both the exact table and the shadow sketch — as plain data, so a
      session can be persisted (see {!Snapshot_io}) and resumed.  PRNG state
      is not captured; restoration continues with fresh randomness from the
      supplied seed, which the guarantees do not depend on. *)

  type sketch_snapshot = {
    capacity_scale : float;
    coupon_scale : float;
    sketch_items : int;
    max_bucket : int;
    skipped : int;
    membership_calls : int;
    cardinality_calls : int;
    sampling_calls : int;
    sketch_entries : (F.elt * int * float) list;
        (** bucket contents: (element, level, last-occurrence timestamp) *)
  }

  type snapshot = {
    mode : Params.mode;
    epsilon : float;
    delta : float;
    log2_universe : float;
    exact_capacity : int;
    items : int;
    exact_active : bool;
    exact_entries : (F.elt * float) list;
        (** distinct elements held while exact, with last-occurrence
            timestamps *)
    sketch : sketch_snapshot option;
  }

  val snapshot : t -> snapshot

  val restore : snapshot -> seed:int -> t
  (** Raises [Invalid_argument] on internally inconsistent snapshots (e.g.
      sketch mode without a sketch, or parameters {!create} would refuse). *)

  val merge : t -> t -> seed:int -> t
  (** Sharded-stream merge (the cluster's gather/fold step): exact tables
      union while both sides are exact and the result fits the budget,
      otherwise the merged estimator runs on {!Vatic.Make.merge} of the two
      shadow sketches — which saw both shards' whole streams, so the
      hand-over loses nothing.  Inputs are unchanged.  Raises
      [Invalid_argument] on a parameter mismatch, [Failure] if an exact-only
      (unsketchable) union outgrows the budget. *)
end
