(** EXT-VATIC (Algorithm 2): union-size estimation for streams over
    {e Approximate-Delphic} families (Theorem 1.5).

    The estimator only sees an [(α, γ, η)]-oracle — cardinalities are
    [(α, γ)]-approximate and sampling is [η]-near-uniform — and outputs a
    value guaranteed (w.p. [>= 1-δ]) to lie in

    {v [ (1-ε)/(2(1+η)(1+α)) · |∪S_i| ,  (1+ε)(1+η)(1+α) · |∪S_i| ] v}

    Structure follows VATIC with three amendments: small sets are measured
    exactly by coupon collection (Thresh₁/Thresh₂), large ones through the
    median-amplified cardinality oracle; the initial sampling probability is
    capped at [1/(2(1+α)²)] (Claim 5.2); and the final estimate divides out
    one [(1+α)] factor. *)

module Make (A : Delphic_family.Family.APPROX_FAMILY) : sig
  type t

  val create :
    ?mode:Params.mode ->
    epsilon:float ->
    delta:float ->
    log2_universe:float ->
    alpha:float ->
    gamma:float ->
    eta:float ->
    seed:int ->
    unit ->
    t
  (** The [(α, γ, η)] arguments must (conservatively) bound the oracle's
      actual parameters; [gamma] must be < 1/2 so the median trick can
      amplify. *)

  val process : ?ts:float -> t -> A.t -> unit
  (** [ts] (default 0) tags the bucket entries this set contributes with a
      logical ingest timestamp; a retained entry always carries its
      element's newest occurrence time (see {!Vatic.Make.process}). *)

  val estimate : t -> float

  val estimate_window : t -> cutoff:float -> float
  (** Estimate restricted to elements whose last occurrence is at or after
      [cutoff] — the Horvitz–Thompson sum over in-window entries with the
      same [(1+α)] correction as {!estimate}.  Non-destructive and
      deterministic given the sketch. *)

  val expire : t -> cutoff:float -> unit
  (** Destructively drop entries older than [cutoff]; for fixed-horizon
      owners only (see {!Vatic.Make.expire}). *)

  val sample_union : t -> A.elt option
  (** Approximate-uniform draw from [∪ S_i] (the conclusion's remark covers
      both algorithms): a uniform element of the minimum-probability
      subsample.  The η-tilt of the oracle carries through, so uniformity is
      within the same (1+η)-band as the sampler's.  [None] when empty. *)

  val sample_union_n : t -> int -> A.elt list
  (** [n] i.i.d. draws (with replacement) from one minimum-rate subsample —
      a single bucket pass however large [n] is.  {!sample_union} is the
      [n = 1] wrapper. *)

  val probe_weight : t -> A.elt -> float option
  (** The Horvitz–Thompson membership weight [1/p] for an element the
      bucket holds at retention probability [p = p_init · 2^{-j}], [None]
      when absent.  No false positives; the η-tilt of the sampling oracle
      carries into the weight's bias band. *)

  val window : t -> float * float
  (** Multiplicative guarantee [(lo, hi)] such that the output is within
      [[lo·|∪S_i|, hi·|∪S_i|]] with probability [1-δ]. *)

  (** {2 Instrumentation} *)

  val bucket_size : t -> int
  val max_bucket_size : t -> int
  val items_processed : t -> int
  val skipped_sets : t -> int

  type oracle_calls = {
    membership : int;
    cardinality : int;
    sampling : int;
  }

  val oracle_calls : t -> oracle_calls

  (** {2 Checkpointing}

      Same contract as {!Vatic.Make.snapshot}: plain data, cheap to persist,
      PRNG state not captured (a restored sketch continues with fresh
      randomness, which the guarantees do not depend on). *)

  type snapshot = {
    mode : Params.mode;
    epsilon : float;
    delta : float;
    log2_universe : float;
    alpha : float;
    gamma : float;
    eta : float;
    items : int;
    max_bucket : int;
    skipped : int;
    calls : oracle_calls;
    entries : (A.elt * int * float) list;
        (** bucket contents: (element, halving count [j], last-occurrence
            timestamp) *)
  }

  val snapshot : t -> snapshot
  val restore : snapshot -> seed:int -> t

  val merge : t -> t -> seed:int -> t
  (** Sharded-stream union, same contract and caveats as
      {!Vatic.Make.merge} expressed in halving counts: downsample both
      buckets to the common minimum rate [j₀], union with dedup, re-apply
      the capacity/halving rule.  Merging with an empty sketch is the exact
      identity on the bucket.  Raises [Invalid_argument] on an
      [(ε, δ, log2|Ω|, α, γ, η, mode)] mismatch. *)
end
