module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng

module Make (F : Delphic_family.Family.FAMILY) = struct
  module Vatic = Vatic.Make (F)

  module Tbl = Hashtbl.Make (struct
    type t = F.elt

    let equal = F.equal_elt
    let hash = F.hash_elt
  end)

  type t = {
    mode : Params.mode;
    epsilon : float;
    delta : float;
    log2_universe : float;
    capacity : int;
    coupon_factor : float;
    rng : Rng.t;
    mutable exact : float Tbl.t;
        (* element -> last-occurrence timestamp; exact windowed counts are
           exact too *)
    mutable exact_active : bool;
    sketch : Vatic.t option; (* None when the universe is below VATIC's floor *)
    mutable items : int;
  }

  let create ?mode ?exact_capacity ~epsilon ~delta ~log2_universe ~seed () =
    (* Validate the shared parameters here so that only the universe-size
       floor (the one condition exact mode genuinely rescues) falls back to
       exact-only; a bad epsilon or delta must still raise. *)
    if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Adaptive.create: need 0 < epsilon < 1";
    if delta <= 0.0 || delta >= 1.0 then invalid_arg "Adaptive.create: need 0 < delta < 1";
    if log2_universe <= 0.0 then invalid_arg "Adaptive.create: need log2_universe > 0";
    let sketch =
      match
        Vatic.create ?mode ~epsilon ~delta ~log2_universe ~seed:(seed + 1) ()
      with
      | v -> Some v
      | exception Invalid_argument _ -> None
    in
    let capacity =
      match (exact_capacity, sketch) with
      | Some c, _ ->
        if c <= 0 then invalid_arg "Adaptive.create: exact_capacity must be positive";
        c
      | None, Some v ->
        let p = Vatic.params v in
        p.Params.bucket_capacity * (p.Params.max_level + 1)
      | None, None ->
        (* Tiny universe: the whole of it fits by definition. *)
        1 + int_of_float (Float.ceil (2.0 ** log2_universe))
    in
    let mode =
      match (mode, sketch) with
      | Some m, _ -> m
      | None, Some v -> (Vatic.params v).Params.mode
      | None, None -> Params.Practical
    in
    {
      mode;
      epsilon;
      delta;
      log2_universe;
      capacity;
      coupon_factor = log 4.0 +. (log2_universe *. log 2.0) -. log delta;
      rng = Rng.create ~seed;
      exact = Tbl.create 256;
      exact_active = true;
      sketch;
      items = 0;
    }

  let items_processed t = t.items
  let is_exact t = t.exact_active
  let epsilon t = t.epsilon
  let delta t = t.delta
  let log2_universe t = t.log2_universe

  let exact_size t = if t.exact_active then Some (Tbl.length t.exact) else None

  (* Materialise all |S| elements; None when |S| is too large for the
     exact budget.  Families that expose [iter_elements] are walked
     directly (O(|S|), always completes); pure Delphic oracles fall back
     to sampling with the coupon-collector budget, which additionally
     returns None on the (probability <= delta-ish) incomplete draw. *)
  let enumerate t s =
    match Bigint.to_int (F.cardinality s) with
    | None -> None
    | Some card ->
      if card > t.capacity then None
      else begin
        let seen = Tbl.create (2 * card) in
        match F.iter_elements with
        | Some iter ->
          iter s (fun x -> Tbl.replace seen x ());
          Some seen
        | None ->
          let budget =
            int_of_float (Float.ceil (4.0 *. float_of_int card *. t.coupon_factor))
          in
          let drawn = ref 0 in
          while Tbl.length seen < card && !drawn < budget do
            incr drawn;
            Tbl.replace seen (F.sample s t.rng) ()
          done;
          if Tbl.length seen = card then Some seen else None
      end

  (* The sketch is lazy: while the exact table is authoritative, sets are
     NOT fed to VATIC — that was the dominant per-add cost (an O(|X|)
     membership pass per set just to keep a sketch warm that exact mode
     never consults).  At the exact→sketch hand-over the sketch is rebuilt
     by replaying the exact table as a stream of singletons: same union,
     each element at its last-occurrence timestamp, so every estimate and
     windowed-estimate guarantee survives the switch
     ({!Vatic.process_element}). *)
  let replay_into exact v =
    Tbl.iter (fun x ts -> Vatic.process_element ~ts v x) exact

  let deactivate t =
    (match t.sketch with Some v -> replay_into t.exact v | None -> ());
    t.exact_active <- false;
    t.exact <- Tbl.create 1

  let process ?(ts = 0.0) t s =
    t.items <- t.items + 1;
    if t.exact_active then begin
      match enumerate t s with
      | None -> (
        match t.sketch with
        | None ->
          failwith "Adaptive.process: set exceeds exact capacity on a universe too small for sketching"
        | Some v ->
          (* the un-enumerable set was never absorbed into the table, so
             replay the table first, then feed the set in stream order *)
          deactivate t;
          Vatic.process ~ts v s)
      | Some elements ->
        Tbl.iter
          (fun x () ->
            match Tbl.find_opt t.exact x with
            | Some old_ts -> Tbl.replace t.exact x (Float.max old_ts ts)
            | None -> Tbl.replace t.exact x ts)
          elements;
        if Tbl.length t.exact > t.capacity then begin
          if Option.is_none t.sketch then
            failwith "Adaptive.process: union exceeds exact capacity on a universe too small for sketching"
          else deactivate t (* the overflowing set is in the table: replay covers it *)
        end
    end
    else match t.sketch with Some v -> Vatic.process ~ts v s | None -> ()

  let estimate t =
    if t.exact_active then float_of_int (Tbl.length t.exact)
    else
      match t.sketch with
      | Some v -> Vatic.estimate v
      | None -> assert false (* exact mode never deactivates without a sketch *)

  (* Union size restricted to elements whose last occurrence is ≥ cutoff.
     Exact regime: a plain count over the timestamped table — exactly
     correct.  Sketch regime: the restricted Horvitz-Thompson sum. *)
  let estimate_window t ~cutoff =
    if t.exact_active then begin
      let n = ref 0 in
      Tbl.iter (fun _ ts -> if ts >= cutoff then incr n) t.exact;
      float_of_int !n
    end
    else
      match t.sketch with
      | Some v -> Vatic.estimate_window v ~cutoff
      | None -> assert false (* exact mode never deactivates without a sketch *)

  let max_bucket_size t =
    match t.sketch with Some v -> Vatic.max_bucket_size v | None -> 0

  let sketch_size t =
    match t.sketch with Some v -> Vatic.bucket_size v | None -> 0

  let skipped_sets t =
    match t.sketch with Some v -> Vatic.skipped_sets v | None -> 0

  (* Membership probe for the set-expression evaluator.  The exact regime
     holds every distinct element, so the probe is the true indicator; the
     sketch regime answers with the Horvitz-Thompson weight 2^ℓ of a bucket
     hit (unbiased for the indicator, no false positives). *)
  type probe = Absent | Member | Sampled of float

  let probe t x =
    if t.exact_active then if Tbl.mem t.exact x then Member else Absent
    else
      match t.sketch with
      | Some v -> (
        match Vatic.probe_level v x with
        | Some level -> Sampled (Float.ldexp 1.0 level)
        | None -> Absent)
      | None -> assert false (* exact mode never deactivates without a sketch *)

  let probe_weight t x =
    match probe t x with Absent -> 0.0 | Member -> 1.0 | Sampled w -> w

  (* n i.i.d. union draws: uniform over the exact table while exact (a true
     uniform sample of ∪S_i), the sketch's subsample draw at scale. *)
  let sample_union_n t n =
    if n <= 0 then []
    else if t.exact_active then begin
      let k = Tbl.length t.exact in
      if k = 0 then []
      else begin
        let arr = Array.of_list (Tbl.fold (fun x _ acc -> x :: acc) t.exact []) in
        List.init n (fun _ -> arr.(Rng.int t.rng k))
      end
    end
    else
      match t.sketch with
      | Some v -> Vatic.sample_union_n v n
      | None -> assert false

  let describe t =
    if t.exact_active then
      Printf.sprintf "exact (%d distinct elements held)" (Tbl.length t.exact)
    else
      Printf.sprintf "sketch (max bucket %d, %d sets skipped)" (max_bucket_size t)
        (skipped_sets t)

  (* Sharded-stream merge of two adaptive estimators over the same family
     and parameters.  Exact tables union while both sides are exact and the
     result fits the budget; otherwise the merged estimator runs on the
     merged sketch.  Sketches are lazy ([process]), so an exact-mode
     shard's sketch is empty — when the merged result needs a sketch, each
     exact side is first replayed into a fresh one (a valid sketch of that
     shard's stream, same argument as the hand-over in [deactivate]);
     when both sides are still exact the merged sketch stays lazy too
     (an empty one, rebuilt by [deactivate] if the merged table ever
     overflows). *)
  let merge a b ~seed =
    if
      a.epsilon <> b.epsilon || a.delta <> b.delta
      || a.log2_universe <> b.log2_universe
      || a.mode <> b.mode || a.capacity <> b.capacity
    then invalid_arg "Adaptive.merge: parameter mismatch";
    let fresh_like v ~seed =
      let p = Vatic.params v in
      Vatic.create ~mode:p.Params.mode ~capacity_scale:p.Params.capacity_scale
        ~coupon_scale:p.Params.coupon_scale ~epsilon:p.Params.epsilon
        ~delta:p.Params.delta ~log2_universe:p.Params.log2_universe ~seed ()
    in
    let effective side v ~seed =
      if side.exact_active then begin
        let fresh = fresh_like v ~seed in
        replay_into side.exact fresh;
        fresh
      end
      else v
    in
    let sketch =
      match (a.sketch, b.sketch) with
      | Some x, Some y ->
        if a.exact_active && b.exact_active then Some (fresh_like x ~seed:(seed + 1))
        else
          Some
            (Vatic.merge
               (effective a x ~seed:(seed + 2))
               (effective b y ~seed:(seed + 3))
               ~seed:(seed + 1))
      | None, None -> None
      | _ -> invalid_arg "Adaptive.merge: sketch presence mismatch"
    in
    let t =
      {
        mode = a.mode;
        epsilon = a.epsilon;
        delta = a.delta;
        log2_universe = a.log2_universe;
        capacity = a.capacity;
        coupon_factor = a.coupon_factor;
        rng = Rng.create ~seed;
        exact = Tbl.create 256;
        exact_active = a.exact_active && b.exact_active;
        sketch;
        items = a.items + b.items;
      }
    in
    if t.exact_active then begin
      let absorb x ts =
        match Tbl.find_opt t.exact x with
        | Some old_ts -> Tbl.replace t.exact x (Float.max old_ts ts)
        | None -> Tbl.replace t.exact x ts
      in
      Tbl.iter absorb a.exact;
      Tbl.iter absorb b.exact;
      if Tbl.length t.exact > t.capacity then begin
        if Option.is_none t.sketch then
          failwith
            "Adaptive.merge: merged union exceeds exact capacity on a universe too small for sketching"
        else deactivate t
      end
    end
    else t.exact <- Tbl.create 1;
    t

  type sketch_snapshot = {
    capacity_scale : float;
    coupon_scale : float;
    sketch_items : int;
    max_bucket : int;
    skipped : int;
    membership_calls : int;
    cardinality_calls : int;
    sampling_calls : int;
    sketch_entries : (F.elt * int * float) list;
  }

  type snapshot = {
    mode : Params.mode;
    epsilon : float;
    delta : float;
    log2_universe : float;
    exact_capacity : int;
    items : int;
    exact_active : bool;
    exact_entries : (F.elt * float) list;
    sketch : sketch_snapshot option;
  }

  let snapshot (t : t) =
    {
      mode = t.mode;
      epsilon = t.epsilon;
      delta = t.delta;
      log2_universe = t.log2_universe;
      exact_capacity = t.capacity;
      items = t.items;
      exact_active = t.exact_active;
      exact_entries = Tbl.fold (fun x ts acc -> (x, ts) :: acc) t.exact [];
      sketch =
        Option.map
          (fun v ->
            let s = Vatic.snapshot v in
            {
              capacity_scale = s.Vatic.capacity_scale;
              coupon_scale = s.Vatic.coupon_scale;
              sketch_items = s.Vatic.items;
              max_bucket = s.Vatic.max_bucket;
              skipped = s.Vatic.skipped;
              membership_calls = s.Vatic.calls.membership;
              cardinality_calls = s.Vatic.calls.cardinality;
              sampling_calls = s.Vatic.calls.sampling;
              sketch_entries = s.Vatic.entries;
            })
          t.sketch;
    }

  let restore s ~seed =
    if (not s.exact_active) && Option.is_none s.sketch then
      invalid_arg "Adaptive.restore: snapshot is in sketch mode but has no sketch";
    let sketch =
      Option.map
        (fun (sk : sketch_snapshot) ->
          Vatic.restore
            {
              Vatic.mode = s.mode;
              capacity_scale = sk.capacity_scale;
              coupon_scale = sk.coupon_scale;
              epsilon = s.epsilon;
              delta = s.delta;
              log2_universe = s.log2_universe;
              items = sk.sketch_items;
              max_bucket = sk.max_bucket;
              skipped = sk.skipped;
              calls =
                {
                  Vatic.membership = sk.membership_calls;
                  cardinality = sk.cardinality_calls;
                  sampling = sk.sampling_calls;
                };
              entries = sk.sketch_entries;
            }
            ~seed:(seed + 1))
        s.sketch
    in
    if s.exact_capacity <= 0 then invalid_arg "Adaptive.restore: exact_capacity must be positive";
    let t =
      {
        mode = s.mode;
        epsilon = s.epsilon;
        delta = s.delta;
        log2_universe = s.log2_universe;
        capacity = s.exact_capacity;
        coupon_factor = log 4.0 +. (s.log2_universe *. log 2.0) -. log s.delta;
        rng = Rng.create ~seed;
        exact = Tbl.create (Stdlib.max 256 (2 * List.length s.exact_entries));
        exact_active = s.exact_active;
        sketch;
        items = s.items;
      }
    in
    List.iter (fun (x, ts) -> Tbl.replace t.exact x ts) s.exact_entries;
    t
end
