module Fset = Set.Make (Float)

type t = { k : int; mutable heap : Fset.t }

(* splitmix64 finalizer as the hash: high quality, deterministic across
   runs, and collisions at 53-bit granularity are negligible against the
   sketch's own ε. *)
let hash_to_unit x =
  let open Int64 in
  let z = add (of_int x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  let mantissa = to_int (shift_right_logical z 11) in
  (float_of_int mantissa +. 0.5) *. 0x1.0p-53

let create ?k ~epsilon () =
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Bottom_k: need 0 < epsilon < 1";
  let k =
    match k with
    | Some k -> if k < 2 then invalid_arg "Bottom_k: need k >= 2" else k
    | None -> int_of_float (Float.ceil (4.0 /. (epsilon *. epsilon)))
  in
  { k; heap = Fset.empty }

let add t x =
  let h = hash_to_unit x in
  if Fset.cardinal t.heap < t.k then t.heap <- Fset.add h t.heap
  else begin
    let top = Fset.max_elt t.heap in
    if h < top && not (Fset.mem h t.heap) then
      t.heap <- Fset.add h (Fset.remove top t.heap)
  end

let estimate t =
  let n = Fset.cardinal t.heap in
  if n < t.k then float_of_int n
  else float_of_int (t.k - 1) /. Fset.max_elt t.heap

let k t = t.k
let size t = Fset.cardinal t.heap

(* Exact merge: both sketches hash with the same (fixed) function, so the
   union of the two heaps is precisely the sketch of the concatenated
   streams — keep the k smallest of the union. *)
let merge a b =
  if a.k <> b.k then invalid_arg "Bottom_k.merge: sketches have different k";
  let heap = ref (Fset.union a.heap b.heap) in
  while Fset.cardinal !heap > a.k do
    heap := Fset.remove (Fset.max_elt !heap) !heap
  done;
  { k = a.k; heap = !heap }
