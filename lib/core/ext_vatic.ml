module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng
module Binomial = Delphic_util.Binomial

module Make (A : Delphic_family.Family.APPROX_FAMILY) = struct
  module Tbl = Hashtbl.Make (struct
    type t = A.elt

    let equal = A.equal_elt
    let hash = A.hash_elt
  end)

  type oracle_calls = { membership : int; cardinality : int; sampling : int }

  type t = {
    mode : Params.mode;
    epsilon : float;
    delta : float;
    log2_universe : float;
    alpha : float;
    gamma : float;
    eta : float;
    bucket_capacity : int; (* B *)
    thresh1 : int;
    thresh2 : int;
    log2_p_init : float; (* log2 (1 / (2(1+α)²)) *)
    log2_p_min : float; (* log2 (L / |Ω|) *)
    coupon_factor : float; (* ln(4|Ω|/δ) *)
    median_reps : int; (* amplification count for the cardinality oracle *)
    rng : Rng.t;
    bucket : (int * float) Tbl.t;
        (* element -> (halving count j with p = p_init · 2^-j,
                       last-occurrence ingest timestamp) *)
    scratch : unit Tbl.t;
        (* reusable distinct-sample workspace shared by [estimate_set_size]
           and the coupon loop of [process]; always left empty between
           uses *)
    mutable counts : int array; (* counts.(j) = elements held at halving count j *)
    mutable top : int; (* highest occupied j; -1 when the bucket is empty *)
    mutable items : int;
    mutable max_bucket : int;
    mutable skipped : int;
    mutable membership_calls : int;
    mutable cardinality_calls : int;
    mutable sampling_calls : int;
  }

  let ln2 = log 2.0

  let create ?(mode = Params.Practical) ~epsilon ~delta ~log2_universe ~alpha ~gamma
      ~eta ~seed () =
    if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Ext_vatic: need 0 < epsilon < 1";
    if delta <= 0.0 || delta >= 1.0 then invalid_arg "Ext_vatic: need 0 < delta < 1";
    if log2_universe <= 0.0 then invalid_arg "Ext_vatic: need log2_universe > 0";
    if alpha < 0.0 then invalid_arg "Ext_vatic: need alpha >= 0";
    if gamma < 0.0 || gamma >= 0.5 then invalid_arg "Ext_vatic: need 0 <= gamma < 1/2";
    if eta < 0.0 then invalid_arg "Ext_vatic: need eta >= 0";
    (* ln |Ω| and ln(c·|Ω|/δ) computed in log space. *)
    let ln_universe = log2_universe *. ln2 in
    let l = log (8.0 /. delta) /. (epsilon *. epsilon) *. (2.0 *. (1.0 +. eta)) in
    let ln_2u_delta = log 2.0 +. ln_universe -. log delta in
    let bucket_capacity =
      match mode with
      | Params.Paper -> int_of_float (Float.ceil (l *. ln_2u_delta))
      | Params.Practical -> int_of_float (Float.ceil (6.0 *. l))
    in
    (* Thresh₁ = 3·ln(2(1+η)|Ω|/L): below it a set is small enough to be
       counted exactly by coupon collection; above it Claim 5.2's
       |S| >= 3·ln(2(1+η)/p) precondition holds for every admissible p. *)
    let thresh1 =
      Stdlib.max 1
        (int_of_float
           (Float.ceil (3.0 *. (log (2.0 *. (1.0 +. eta)) +. ln_universe -. log l))))
    in
    let t1 = float_of_int thresh1 in
    let thresh2 =
      int_of_float
        (Float.ceil
           ((1.0 +. eta) *. t1 *. (log (8.0 /. delta) +. ln_universe +. log t1)))
    in
    let median_reps =
      if gamma = 0.0 then 1
      else begin
        (* Median amplification to failure δ/(4|Ω|): Chernoff on q Bernoulli
           trials with success 1-γ needs q >= ln(4|Ω|/δ) / (2(1/2-γ)²). *)
        let q =
          Float.ceil
            ((log 4.0 +. ln_universe -. log delta)
            /. (2.0 *. ((0.5 -. gamma) ** 2.0)))
        in
        let q = int_of_float q in
        if q mod 2 = 0 then q + 1 else q
      end
    in
    let log2_p_init = -.(log (2.0 *. ((1.0 +. alpha) ** 2.0)) /. ln2) in
    let log2_p_min = (log l /. ln2) -. log2_universe in
    if log2_p_min > log2_p_init then
      invalid_arg
        "Ext_vatic.create: universe too small for these parameters (the \
         probability floor L/|U| exceeds the initial rate 1/(2(1+alpha)^2)) — \
         count the union exactly instead";
    {
      mode;
      epsilon;
      delta;
      log2_universe;
      alpha;
      gamma;
      eta;
      bucket_capacity;
      thresh1;
      thresh2;
      log2_p_init;
      log2_p_min;
      coupon_factor = log 4.0 +. ln_universe -. log delta;
      median_reps;
      rng = Rng.create ~seed;
      bucket = Tbl.create 1024;
      scratch = Tbl.create 256;
      counts = Array.make 64 0;
      top = -1;
      items = 0;
      max_bucket = 0;
      skipped = 0;
      membership_calls = 0;
      cardinality_calls = 0;
      sampling_calls = 0;
    }

  let bucket_size t = Tbl.length t.bucket
  let max_bucket_size t = t.max_bucket
  let items_processed t = t.items
  let skipped_sets t = t.skipped

  (* Per-level occupancy histogram, as in {!Vatic.Make}: keeps the maximum
     halving count an O(1) read instead of a bucket fold.  All bucket
     mutation funnels through these helpers. *)

  let ensure_level t j =
    if j >= Array.length t.counts then begin
      let grown = Array.make (2 * (j + 1)) 0 in
      Array.blit t.counts 0 grown 0 (Array.length t.counts);
      t.counts <- grown
    end

  let note_add t j =
    ensure_level t j;
    t.counts.(j) <- t.counts.(j) + 1;
    if j > t.top then t.top <- j

  let note_remove t j =
    t.counts.(j) <- t.counts.(j) - 1;
    while t.top >= 0 && t.counts.(t.top) = 0 do
      t.top <- t.top - 1
    done

  (* Keep the newest timestamp per retained element (see Vatic.bucket_add):
     expiry must never make an entry look older than its last occurrence. *)
  let bucket_add ?(ts = 0.0) t x j =
    let ts =
      match Tbl.find_opt t.bucket x with
      | Some (old, old_ts) ->
          note_remove t old;
          Float.max old_ts ts
      | None -> ts
    in
    Tbl.replace t.bucket x (j, ts);
    note_add t j

  let max_halving_count t = Stdlib.max t.top 0

  let oracle_calls t =
    {
      membership = t.membership_calls;
      cardinality = t.cardinality_calls;
      sampling = t.sampling_calls;
    }

  let window t =
    let lo = (1.0 -. t.epsilon) /. (2.0 *. (1.0 +. t.eta) *. (1.0 +. t.alpha)) in
    let hi = (1.0 +. t.epsilon) *. (1.0 +. t.eta) *. (1.0 +. t.alpha) in
    (lo, hi)

  (* Fixed-point multiplication of a cardinality by (1+α). *)
  let scale_up v factor =
    let fixed = int_of_float (Float.ceil (factor *. 1048576.0)) in
    Bigint.max Bigint.one (Bigint.shift_right (Bigint.mul_int v fixed) 20)

  (* (α, δ/4|Ω|)-approximate cardinality via the median trick
     (Observation 5.1(1)). *)
  let amplified_cardinality t s =
    let samples =
      Array.init t.median_reps (fun _ ->
          t.cardinality_calls <- t.cardinality_calls + 1;
          A.approx_cardinality s t.rng)
    in
    Array.sort Bigint.compare samples;
    samples.(t.median_reps / 2)

  (* Lines 10-18: estimate E_i.  Small sets are measured exactly by drawing
     Thresh₂ near-uniform samples and counting distinct values; larger sets
     go through the amplified oracle, inflated by (1+α) so that E_i(1+α)
     upper-bounds |S_i| (Observation 5.1(1)). *)
  let estimate_set_size t s =
    let seen = t.scratch in
    let k = ref 0 in
    while !k < t.thresh2 && Tbl.length seen <= t.thresh1 do
      incr k;
      let y = A.approx_sample s t.rng in
      if not (Tbl.mem seen y) then Tbl.replace seen y ()
    done;
    t.sampling_calls <- t.sampling_calls + !k;
    let distinct = Tbl.length seen in
    Tbl.clear seen;
    if distinct <= t.thresh1 then Bigint.of_int distinct
    else scale_up (amplified_cardinality t s) (1.0 +. t.alpha)

  let remove_covered t s =
    t.membership_calls <- t.membership_calls + bucket_size t;
    Tbl.filter_map_inplace
      (fun x ((j, _) as e) ->
        if A.mem s x then begin
          note_remove t j;
          None
        end
        else Some e)
      t.bucket

  (* Draw Bin(card, 2^log2p) with the same large-value guards as VATIC. *)
  let binomial_of_cardinality rng card ~log2p =
    let l2n = Bigint.log2 card in
    let l2np = l2n +. log2p in
    if l2np < -40.0 then 0.0
    else if l2n > 1000.0 then 2.0 ** Float.min l2np 1020.0
    else Binomial.sample_bigint rng ~n:card ~p:(2.0 ** log2p)

  let process ?(ts = 0.0) t s =
    t.items <- t.items + 1;
    remove_covered t s;
    let e = estimate_set_size t s in
    (* Line 19-20: initial probability 1/(2(1+α)²), drawn over E_i(1+α). *)
    let j = ref 0 in
    let log2p () = t.log2_p_init -. float_of_int !j in
    let n =
      ref
        (binomial_of_cardinality t.rng
           (scale_up e (1.0 +. t.alpha))
           ~log2p:(log2p ()))
    in
    (* Lines 21-22: halve until the insertion fits the capacity. *)
    let capacity = float_of_int t.bucket_capacity in
    let needed () =
      Float.ceil ((float_of_int (bucket_size t) +. !n) /. capacity)
    in
    while log2p () > -.(needed ()) && log2p () >= t.log2_p_min do
      incr j;
      n := Binomial.halve t.rng !n
    done;
    if log2p () < t.log2_p_min then t.skipped <- t.skipped + 1
    else begin
      (* Lines 24-29. *)
      let wanted = int_of_float !n in
      if wanted > 0 then begin
        let budget =
          int_of_float (Float.ceil (4.0 *. float_of_int wanted *. t.coupon_factor))
        in
        let fresh = t.scratch in
        let drawn = ref 0 in
        while Tbl.length fresh < wanted && !drawn < budget do
          incr drawn;
          let y = A.approx_sample s t.rng in
          if not (Tbl.mem fresh y) then Tbl.replace fresh y ()
        done;
        t.sampling_calls <- t.sampling_calls + !drawn;
        Tbl.iter (fun y () -> bucket_add ~ts t y !j) fresh;
        Tbl.clear fresh;
        if bucket_size t > t.max_bucket then t.max_bucket <- bucket_size t
      end
    end

  (* Survivor count only — nothing materialised (see Vatic.subsample). *)
  let subsample t =
    let j0 = max_halving_count t in
    let kept = ref 0 in
    Tbl.iter
      (fun _ (j, _) ->
        if Rng.bernoulli t.rng (Float.ldexp 1.0 (j - j0)) then incr kept)
      t.bucket;
    (j0, !kept)

  (* Lines 30-33. *)
  let estimate t =
    if bucket_size t = 0 then 0.0
    else begin
      let j0, kept = subsample t in
      let log2_p0 = t.log2_p_init -. float_of_int j0 in
      float_of_int kept /. (2.0 ** log2_p0) /. (1.0 +. t.alpha)
    end

  (* Horvitz-Thompson sum over entries whose last occurrence is inside the
     window, with the same (1+α) correction as [estimate] — the windowed
     counterpart of {!Vatic.Make.estimate_window}, expressed through the
     retention probability p_init·2^-j. *)
  let estimate_window t ~cutoff =
    let acc = ref 0.0 in
    Tbl.iter
      (fun _ (j, ts) ->
        if ts >= cutoff then
          acc := !acc +. (2.0 ** (float_of_int j -. t.log2_p_init)))
      t.bucket;
    !acc /. (1.0 +. t.alpha)

  (* Destructive expiry for fixed-horizon owners; query-time restriction
     must use [estimate_window]. *)
  let expire t ~cutoff =
    Tbl.filter_map_inplace
      (fun _ ((j, ts) as e) ->
        if ts < cutoff then begin
          note_remove t j;
          None
        end
        else Some e)
      t.bucket

  (* Membership probe, as in {!Vatic.Make.probe_level}: an element held at
     halving count j was retained with probability p_init·2^-j, so the
     Horvitz-Thompson membership weight is 2^(j - log2_p_init). *)
  let probe_weight t x =
    match Tbl.find_opt t.bucket x with
    | None -> None
    | Some (j, _) -> Some (2.0 ** (float_of_int j -. t.log2_p_init))

  (* One bucket pass materialising the j0-rate subsample, then n uniform
     index draws — i.i.d. with replacement, O(|X| + n). *)
  let sample_union_n t n =
    if n <= 0 || bucket_size t = 0 then []
    else begin
      let j0 = max_halving_count t in
      let survivors = ref [] in
      let kept = ref 0 in
      Tbl.iter
        (fun x (j, _) ->
          if Rng.bernoulli t.rng (Float.ldexp 1.0 (j - j0)) then begin
            incr kept;
            survivors := x :: !survivors
          end)
        t.bucket;
      if !kept = 0 then []
      else begin
        let arr = Array.of_list !survivors in
        List.init n (fun _ -> arr.(Rng.int t.rng !kept))
      end
    end

  let sample_union t =
    match sample_union_n t 1 with [] -> None | x :: _ -> Some x

  type snapshot = {
    mode : Params.mode;
    epsilon : float;
    delta : float;
    log2_universe : float;
    alpha : float;
    gamma : float;
    eta : float;
    items : int;
    max_bucket : int;
    skipped : int;
    calls : oracle_calls;
    entries : (A.elt * int * float) list;
  }

  let snapshot (t : t) =
    {
      mode = t.mode;
      epsilon = t.epsilon;
      delta = t.delta;
      log2_universe = t.log2_universe;
      alpha = t.alpha;
      gamma = t.gamma;
      eta = t.eta;
      items = t.items;
      max_bucket = t.max_bucket;
      skipped = t.skipped;
      calls = oracle_calls t;
      entries = Tbl.fold (fun x (j, ts) acc -> (x, j, ts) :: acc) t.bucket [];
    }

  let restore s ~seed =
    let t =
      create ~mode:s.mode ~epsilon:s.epsilon ~delta:s.delta
        ~log2_universe:s.log2_universe ~alpha:s.alpha ~gamma:s.gamma ~eta:s.eta ~seed ()
    in
    List.iter (fun (x, j, ts) -> bucket_add ~ts t x j) s.entries;
    t.items <- s.items;
    t.max_bucket <- s.max_bucket;
    t.skipped <- s.skipped;
    t.membership_calls <- s.calls.membership;
    t.cardinality_calls <- s.calls.cardinality;
    t.sampling_calls <- s.calls.sampling;
    t

  (* Same merge semantics as Vatic.merge, expressed in halving counts j
     (p = p_init·2^-j): downsample both buckets to the common minimum rate
     j0, union with dedup, re-apply the capacity/halving rule of process
     (stopping at the probability floor rather than discarding data). *)
  let merge (a : t) (b : t) ~seed =
    if
      a.epsilon <> b.epsilon || a.delta <> b.delta
      || a.log2_universe <> b.log2_universe
      || a.alpha <> b.alpha || a.gamma <> b.gamma || a.eta <> b.eta
      || a.mode <> b.mode
      || a.bucket_capacity <> b.bucket_capacity
    then invalid_arg "Ext_vatic.merge: parameter mismatch";
    let t =
      create ~mode:a.mode ~epsilon:a.epsilon ~delta:a.delta
        ~log2_universe:a.log2_universe ~alpha:a.alpha ~gamma:a.gamma ~eta:a.eta ~seed ()
    in
    (if bucket_size a = 0 then
       Tbl.iter (fun x (j, ts) -> bucket_add ~ts t x j) b.bucket
     else if bucket_size b = 0 then
       Tbl.iter (fun x (j, ts) -> bucket_add ~ts t x j) a.bucket
     else begin
       let j0 = ref (Stdlib.max (max_halving_count a) (max_halving_count b)) in
       (* one coin per distinct element: an element retained by both buckets
          flips only shard a's coin, as in Vatic.merge, and keeps the newest
          of the two shards' timestamps *)
       let ts_in other x ts =
         match Tbl.find_opt other.bucket x with
         | Some (_, other_ts) -> Float.max ts other_ts
         | None -> ts
       in
       let absorb ~dup ~other src =
         Tbl.iter
           (fun x (j, ts) ->
             if (not (dup x)) && Rng.bernoulli t.rng (Float.ldexp 1.0 (j - !j0))
             then bucket_add ~ts:(ts_in other x ts) t x !j0)
           src.bucket
       in
       absorb ~dup:(fun _ -> false) ~other:b a;
       absorb ~dup:(Tbl.mem a.bucket) ~other:a b;
       let capacity = float_of_int t.bucket_capacity in
       let log2p () = t.log2_p_init -. float_of_int !j0 in
       let needed () = Float.ceil (float_of_int (bucket_size t) /. capacity) in
       while log2p () > -.(needed ()) && log2p () -. 1.0 >= t.log2_p_min do
         incr j0;
         (* survivors migrate in place; every entry sits at the
            pre-increment j0 *)
         Tbl.filter_map_inplace
           (fun _ (j, ts) ->
             note_remove t j;
             if Rng.bool t.rng then begin
               note_add t !j0;
               Some (!j0, ts)
             end
             else None)
           t.bucket
       done
     end);
    t.items <- a.items + b.items;
    t.max_bucket <- Stdlib.max (Stdlib.max a.max_bucket b.max_bucket) (bucket_size t);
    t.skipped <- a.skipped + b.skipped;
    t.membership_calls <- a.membership_calls + b.membership_calls;
    t.cardinality_calls <- a.cardinality_calls + b.cardinality_calls;
    t.sampling_calls <- a.sampling_calls + b.sampling_calls;
    t
end
