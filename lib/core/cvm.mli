(** The CVM distinct-elements estimator (Chakraborty–Vinodchandran–Meel,
    ESA 2022) — the authors' own follow-on that specialises this paper's
    sampling strategy to singleton streams, famously simple enough for a
    textbook.

    A buffer of capacity [thresh] holds elements each kept with the current
    probability [p]; every arrival first evicts its own stale copy (the
    last-occurrence rule of VATIC), then enters with probability [p]; when
    the buffer fills, every resident survives a fair coin and [p] halves.
    The estimate is [|buffer| / p].  With
    [thresh = ⌈12/ε² · log2(8 m / δ)⌉] (m an upper bound on the stream
    length) the output is an (ε, δ)-approximation of the number of distinct
    elements. *)

type t

val create : ?thresh:int -> epsilon:float -> delta:float -> stream_bound:int -> seed:int -> unit -> t
(** [thresh] overrides the derived buffer size. *)

val add : t -> int -> unit
val estimate : t -> float
val buffer_size : t -> int
val thresh : t -> int
val level : t -> int
(** Number of halvings so far. *)

val merge : t -> t -> seed:int -> t
(** Sharded-stream merge: downsample both buffers to the common minimum
    probability, union with dedup, re-apply the threshold rule.  Inputs are
    unchanged; the result draws coins from [seed].  Merging with an empty
    sketch is the exact identity.  Both sketches must share [thresh]
    ([Invalid_argument] otherwise). *)
