(** VATIC (Algorithm 1): streaming [(ε, δ)]-estimation of [|∪ S_i|] for
    Delphic set streams of {e unknown} length, with space and update time
    polynomial in [(log |Ω|, 1/ε, log 1/δ)] and independent of the stream
    size — the paper's main contribution (Theorem 1.2).

    The sketch is a bucket [X] of (element, sampling-level) pairs, where
    level [ℓ] encodes the dyadic probability [p = 2^{-ℓ}].  Processing a set
    [S_i] first deletes [X ∩ S_i] (so survival of an element depends only on
    its {e last} occurrence — the key to M-independence), then inserts a
    [Bin(|S_i|, p)]-sized uniform sample of [S_i] at the level dictated by
    the current bucket occupancy, halving adaptively as the bucket fills. *)

module Make (F : Delphic_family.Family.FAMILY) : sig
  type t

  val create :
    ?mode:Params.mode ->
    ?capacity_scale:float ->
    ?coupon_scale:float ->
    epsilon:float ->
    delta:float ->
    log2_universe:float ->
    seed:int ->
    unit ->
    t
  (** [log2_universe] is [log2 |Ω|] for the universe the stream's sets live
      in (e.g. [d · log2 |Δ|] for boxes in [Δ^d]). *)

  val params : t -> Params.t

  val process : ?ts:float -> t -> F.t -> unit
  (** Feed the next set of the stream.  [ts] (default 0) is the logical
      ingest timestamp recorded on every bucket entry the set contributes;
      because processing deletes [X ∩ S_i] first, a retained entry's
      timestamp is always its element's {e last} occurrence time, and
      re-insertion keeps the newest timestamp per element — the invariant
      windowed queries ({!estimate_window}) rely on. *)

  val process_element : ?ts:float -> t -> F.elt -> unit
  (** Feed one element as the singleton set [{x}], at oracle cost O(1)
      instead of [process]'s O(|X|) membership pass.  A stream of
      singletons covering a union — each element stamped with its
      last-occurrence [ts] — is a valid Delphic stream for that union, so
      every estimate guarantee carries over; this is the replay primitive
      behind {!Adaptive}'s lazy exact→sketch hand-over. *)

  val estimate : t -> float
  (** Current estimate of [|∪ S_i|] over the items processed so far
      (lines 18–21: subsample everything down to the minimum level [p_0],
      return [|X|/p_0]).  Non-destructive — processing may continue — but
      randomized: repeated calls may differ slightly. *)

  val estimate_horvitz_thompson : t -> float
  (** The estimator of the paper's footnote 5: the direct sum
      [Σ_{(s,ℓ) ∈ X} 2^ℓ] without the final resampling step.  Accuracy is
      statistically indistinguishable from {!estimate} (ablation A4), but
      this variant is deterministic given the sketch — repeated queries
      agree exactly; the published algorithm resamples only to streamline
      the analysis. *)

  val estimate_window : t -> cutoff:float -> float
  (** {!estimate_horvitz_thompson} restricted to bucket entries whose last
      occurrence is at or after [cutoff]: an unbiased estimate of
      [|{x : last occurrence of x ≥ cutoff}|], i.e. the union over the
      trailing window.  Non-destructive — a small-window query never
      perturbs later, larger-window ones — and deterministic given the
      sketch.  With [cutoff = neg_infinity] it equals
      {!estimate_horvitz_thompson} exactly. *)

  val expire : t -> cutoff:float -> unit
  (** Destructively drop every entry whose last occurrence predates
      [cutoff].  For fixed-horizon owners (the {!Delphic_window} epoch
      chain) only; query-time restriction must use {!estimate_window}. *)

  val sample_union : t -> F.elt option
  (** Approximate-uniform draw from [∪ S_i] (the adaptation noted in the
      paper's conclusion): a uniform element of the level-[p_0] subsample.
      [None] when the sketch is empty. *)

  val sample_union_n : t -> int -> F.elt list
  (** [n] i.i.d. draws (with replacement) from one level-[p_0] subsample —
      a single bucket pass however large [n] is, which is what the
      set-expression evaluator's Monte-Carlo loop needs.  {!sample_union}
      is the [n = 1] wrapper.  Empty list when the sketch (or the
      subsample) is empty or [n <= 0]. *)

  val probe_level : t -> F.elt -> int option
  (** The sampling level at which the bucket currently holds [x], [None]
      when absent.  The bucket holds only elements of [∪ S_i] (no false
      positives) and holds a union element at level [ℓ] with probability
      [2^{-ℓ}], so [1[held] · 2^ℓ] is an unbiased Horvitz–Thompson estimate
      of the membership indicator — the probe the set-expression estimator
      evaluates. *)

  (** {2 Instrumentation} *)

  val bucket_size : t -> int
  (** Current [|X|]. *)

  val max_bucket_size : t -> int
  (** Largest [|X|] observed — the space-complexity quantity of Theorem
      1.2. *)

  val current_level : t -> int
  (** The level [⌈|X|/B⌉] that the next insertion would start from. *)

  val min_sampling_level : t -> int
  (** Level of the least-likely sampled element currently held ([log2 1/p_0]);
      0 when empty. *)

  val items_processed : t -> int

  val skipped_sets : t -> int
  (** Sets dropped because the admissible probability floor was reached
      (probability ≤ δ/2 per Theorem 1.2's analysis; should be 0). *)

  type oracle_calls = {
    membership : int;
    cardinality : int;
    sampling : int;
  }

  val oracle_calls : t -> oracle_calls
  (** Total Delphic queries issued, the update-time quantity of Theorem
      1.2. *)

  (** {2 Checkpointing}

      A sketch is a few thousand (element, level) pairs plus its parameters,
      so it checkpoints cheaply — useful for long-running streams that must
      survive restarts.  The PRNG state is not captured: a restored sketch
      continues with fresh randomness from the supplied seed, which does not
      affect the estimator's guarantees (every future coin is independent
      anyway). *)

  type snapshot = {
    mode : Params.mode;
    capacity_scale : float;
    coupon_scale : float;
    epsilon : float;
    delta : float;
    log2_universe : float;
    items : int;
    max_bucket : int;
    skipped : int;
    calls : oracle_calls;
    entries : (F.elt * int * float) list;
        (** bucket contents: (element, level, last-occurrence timestamp) *)
  }

  val snapshot : t -> snapshot
  val restore : snapshot -> seed:int -> t

  (** {2 Mergeability}

      The union operation is order- and partition-insensitive, so a stream
      may be sharded across workers and the per-worker sketches combined —
      the distributed-streams setting of Dasgupta et al.'s theta-sketch
      framework, applied to VATIC's level-sampled bucket. *)

  val merge : t -> t -> seed:int -> t
  (** [merge a b ~seed] is a sketch of the union of the two sharded
      sub-streams: both buckets are downsampled to the common minimum
      sampling probability [p₀], unioned with dedup, and the capacity/halving
      rule is re-applied.  Inputs are unchanged; the result draws future
      coins from [seed].  Merging with an empty sketch is the exact
      identity on the bucket.

      Caveat: inclusion events are independent across shards (no shared
      hash), so coverage shared by both shards is double-counted in
      expectation at small [p₀] — the estimate lies between [|∪|] and the
      sum of the shard union sizes.  Shard by hash-of-set so duplicate sets
      land on one worker and the gap stays bounded by the geometric overlap
      between {e distinct} sets.

      Raises [Invalid_argument] if the two sketches were built with
      different [(ε, δ, log2|Ω|, mode, B)] parameters. *)
end
