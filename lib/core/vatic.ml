module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng
module Binomial = Delphic_util.Binomial

let log_src = Logs.Src.create "delphic.vatic" ~doc:"VATIC estimator internals"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Make (F : Delphic_family.Family.FAMILY) = struct
  module Tbl = Hashtbl.Make (struct
    type t = F.elt

    let equal = F.equal_elt
    let hash = F.hash_elt
  end)

  type oracle_calls = { membership : int; cardinality : int; sampling : int }

  type t = {
    params : Params.t;
    rng : Rng.t;
    bucket : (int * float) Tbl.t;
        (* element -> (sampling level ℓ, i.e. p = 2^-ℓ,
                       ingest timestamp of the element's last occurrence) *)
    scratch : unit Tbl.t;
        (* reusable coupon-draw workspace for [process]; always left empty
           between updates so the sketch never pins a processed set's
           elements *)
    mutable counts : int array; (* counts.(ℓ) = elements held at level ℓ *)
    mutable top : int; (* highest occupied level; -1 when the bucket is empty *)
    mutable items : int;
    mutable max_bucket : int;
    mutable skipped : int;
    mutable membership_calls : int;
    mutable cardinality_calls : int;
    mutable sampling_calls : int;
  }

  let create ?mode ?capacity_scale ?coupon_scale ~epsilon ~delta ~log2_universe ~seed
      () =
    let params =
      Params.create ?mode ?capacity_scale ?coupon_scale ~epsilon ~delta ~log2_universe ()
    in
    {
      params;
      rng = Rng.create ~seed;
      bucket = Tbl.create 1024;
      scratch = Tbl.create 256;
      counts = Array.make (Stdlib.max 8 (params.Params.max_level + 2)) 0;
      top = -1;
      items = 0;
      max_bucket = 0;
      skipped = 0;
      membership_calls = 0;
      cardinality_calls = 0;
      sampling_calls = 0;
    }

  let params t = t.params
  let bucket_size t = Tbl.length t.bucket
  let max_bucket_size t = t.max_bucket
  let items_processed t = t.items
  let skipped_sets t = t.skipped

  (* The per-level occupancy histogram [counts]/[top] shadows the bucket so
     the level queries the hot path issues on every update — minimum
     sampling level, Horvitz-Thompson sum — are O(1)/O(top) instead of a
     fold over the whole bucket.  All bucket mutation funnels through these
     three helpers. *)

  let ensure_level t l =
    if l >= Array.length t.counts then begin
      let grown = Array.make (2 * (l + 1)) 0 in
      Array.blit t.counts 0 grown 0 (Array.length t.counts);
      t.counts <- grown
    end

  let note_add t l =
    ensure_level t l;
    t.counts.(l) <- t.counts.(l) + 1;
    if l > t.top then t.top <- l

  let note_remove t l =
    t.counts.(l) <- t.counts.(l) - 1;
    while t.top >= 0 && t.counts.(t.top) = 0 do
      t.top <- t.top - 1
    done

  (* Re-inserting an element keeps the newest timestamp seen for it: a
     retained entry must never look older than the element's last occurrence,
     or window expiry would under-count (DESIGN.md, "Windowed estimation"). *)
  let bucket_add ?(ts = 0.0) t x l =
    let ts =
      match Tbl.find_opt t.bucket x with
      | Some (old, old_ts) ->
          note_remove t old;
          Float.max old_ts ts
      | None -> ts
    in
    Tbl.replace t.bucket x (l, ts);
    note_add t l

  let level_for t occupancy =
    (* ⌈occupancy / B⌉ *)
    let b = t.params.Params.bucket_capacity in
    (occupancy + b - 1) / b

  let current_level t = level_for t (bucket_size t)
  let min_sampling_level t = Stdlib.max t.top 0

  let oracle_calls t =
    {
      membership = t.membership_calls;
      cardinality = t.cardinality_calls;
      sampling = t.sampling_calls;
    }

  (* Draw Bin(card, 2^-level) as an integral float.  Guards:
     - negligible mean (< 2^-40): the draw is 0 with overwhelming
       probability, and pretending it is biases nothing detectable;
     - card beyond float range (> 2^1000): only the magnitude matters — the
       halving loop will shrink the value by that many more levels before
       anything is materialised, so the deterministic mean (relative
       deviation < 2^-500) is used. *)
  let binomial_of_cardinality rng card ~level =
    let l2n = Bigint.log2 card in
    let l2np = l2n -. float_of_int level in
    if l2np < -40.0 then 0.0
    else if l2n > 1000.0 then 2.0 ** Float.min l2np 1020.0
    else Binomial.sample_bigint rng ~n:card ~p:(Float.ldexp 1.0 (-level))

  let remove_covered t s =
    t.membership_calls <- t.membership_calls + bucket_size t;
    (* single in-place pass: no doomed-list allocation, no second traversal *)
    Tbl.filter_map_inplace
      (fun x ((l, _) as e) ->
        if F.mem s x then begin
          note_remove t l;
          None
        end
        else Some e)
      t.bucket

  let process ?(ts = 0.0) t s =
    t.items <- t.items + 1;
    (* Lines 4-6: only the last occurrence of an element can keep it in X. *)
    remove_covered t s;
    (* Lines 7-8: initial level from current occupancy. *)
    let level = ref (current_level t) in
    t.cardinality_calls <- t.cardinality_calls + 1;
    let n = ref (binomial_of_cardinality t.rng (F.cardinality s) ~level:!level) in
    (* Lines 9-10: halve until the sample would fit the capacity at its own
       level, or the probability floor is crossed. *)
    let max_level = t.params.Params.max_level in
    let capacity = float_of_int t.params.Params.bucket_capacity in
    (* The needed level is computed in float space: right after line 8, N can
       exceed native-int range by hundreds of orders of magnitude. *)
    let needed () =
      Float.ceil ((float_of_int (bucket_size t) +. !n) /. capacity)
    in
    while float_of_int !level < needed () && !level <= max_level do
      incr level;
      n := Binomial.halve t.rng !n
    done;
    if !level > max_level then begin
      t.skipped <- t.skipped + 1;
      (* The analysis makes this a <= delta/2 probability event across the
         whole stream; seeing it repeatedly means the parameters are off. *)
      Log.warn (fun m ->
          m "item %d skipped: probability floor reached (skips so far: %d)" t.items
            t.skipped)
    end
    else begin
      (* Lines 12-17: collect N distinct uniform samples of S, giving each
         element of S an independent 2^-level chance (Claim 2.5), with the
         coupon-collector budget K bounding worst-case update time. *)
      let wanted = int_of_float !n in
      if wanted > 0 then begin
        let budget = Params.max_samples t.params ~n_distinct:wanted in
        let fresh = t.scratch in
        let drawn = ref 0 in
        while Tbl.length fresh < wanted && !drawn < budget do
          incr drawn;
          let y = F.sample s t.rng in
          if not (Tbl.mem fresh y) then Tbl.replace fresh y ()
        done;
        t.sampling_calls <- t.sampling_calls + !drawn;
        Tbl.iter (fun y () -> bucket_add ~ts t y !level) fresh;
        Tbl.clear fresh;
        if bucket_size t > t.max_bucket then t.max_bucket <- bucket_size t
      end
    end

  (* One singleton update: {x} processed exactly as [process] would a
     one-element Delphic set, at oracle cost O(1) instead of O(|X|) — the
     membership pass is a single bucket lookup, the cardinality is 1, and
     Bin(1, 2^-ℓ) is a Bernoulli coin.  A stream of singletons covering a
     union U, each carrying its element's last-occurrence timestamp, is a
     valid Delphic stream for U, so feeding a sketch this way preserves
     every (ε,δ) guarantee — this is how the adaptive wrapper rebuilds a
     sketch from its exact table at the exact→sketch hand-over. *)
  let process_element ?(ts = 0.0) t x =
    t.items <- t.items + 1;
    t.membership_calls <- t.membership_calls + 1;
    (match Tbl.find_opt t.bucket x with
    | Some (l, _) ->
      Tbl.remove t.bucket x;
      note_remove t l
    | None -> ());
    let level = ref (current_level t) in
    t.cardinality_calls <- t.cardinality_calls + 1;
    let n =
      ref (if Rng.bernoulli t.rng (Float.ldexp 1.0 (- !level)) then 1.0 else 0.0)
    in
    let max_level = t.params.Params.max_level in
    let capacity = float_of_int t.params.Params.bucket_capacity in
    let needed () =
      Float.ceil ((float_of_int (bucket_size t) +. !n) /. capacity)
    in
    while float_of_int !level < needed () && !level <= max_level do
      incr level;
      n := Binomial.halve t.rng !n
    done;
    if !level > max_level then begin
      t.skipped <- t.skipped + 1;
      Log.warn (fun m ->
          m "element skipped: probability floor reached (skips so far: %d)"
            t.skipped)
    end
    else if !n >= 1.0 then begin
      t.sampling_calls <- t.sampling_calls + 1;
      bucket_add ~ts t x !level;
      if bucket_size t > t.max_bucket then t.max_bucket <- bucket_size t
    end

  (* Lines 18-21 on a virtual copy: subsample every element down to the
     minimum probability p0 and return |X| / p0.  Only the survivor count
     matters for the estimate, so nothing is materialised. *)
  let subsample t =
    let p0_level = min_sampling_level t in
    let kept = ref 0 in
    Tbl.iter
      (fun _ (l, _) ->
        if Rng.bernoulli t.rng (Float.ldexp 1.0 (l - p0_level)) then incr kept)
      t.bucket;
    (p0_level, !kept)

  let estimate t =
    if bucket_size t = 0 then 0.0
    else begin
      let p0_level, kept = subsample t in
      Float.ldexp (float_of_int kept) p0_level
    end

  (* Footnote 5 of the paper: the "natural" estimator is Σ_j N(p_j)/p_j;
     the published algorithm resamples down to p_0 purely to simplify the
     concentration argument.  This is the direct Horvitz-Thompson sum — it
     skips the extra Bernoulli noise, is deterministic given the sketch, and
     A4 in EXPERIMENTS.md measures its variance advantage.  The level
     histogram makes it a sum over occupied levels, not a bucket fold. *)
  let estimate_horvitz_thompson t =
    let acc = ref 0.0 in
    for l = 0 to t.top do
      if t.counts.(l) > 0 then
        acc := !acc +. Float.ldexp (float_of_int t.counts.(l)) l
    done;
    !acc

  (* The same Horvitz-Thompson sum restricted to entries whose last
     occurrence is inside the window.  Survival in the bucket depends only on
     the last occurrence (lines 4-6 delete X ∩ S_i before re-inserting), so
     an entry with ts ≥ cutoff is held with exactly probability 2^-ℓ among
     the elements whose last occurrence is in the window — the restricted
     sum is unbiased for |{x : last occurrence of x ≥ cutoff}|.  The level
     histogram cannot answer this (it has no time axis), so this is a bucket
     fold rather than an O(top) loop. *)
  let estimate_window t ~cutoff =
    let acc = ref 0.0 in
    Tbl.iter
      (fun _ (l, ts) -> if ts >= cutoff then acc := !acc +. Float.ldexp 1.0 l)
      t.bucket;
    !acc

  (* Destructive expiry: drop every entry whose last occurrence predates the
     cutoff.  Only a fixed-horizon owner (the windowing layer) may call this —
     a query-time window restriction must use {!estimate_window} so a small
     window never corrupts later, larger-window queries. *)
  let expire t ~cutoff =
    Tbl.filter_map_inplace
      (fun _ ((l, ts) as e) ->
        if ts < cutoff then begin
          note_remove t l;
          None
        end
        else Some e)
      t.bucket

  (* Membership probe for the expression evaluator: the bucket never holds
     an element outside ∪S_i, and holds x ∈ ∪S_i at level ℓ with probability
     2^-ℓ, so 1[held]·2^ℓ is an unbiased Horvitz-Thompson estimate of the
     membership indicator with no false positives. *)
  let probe_level t x = Option.map fst (Tbl.find_opt t.bucket x)

  (* One pass over the bucket materialising the level-p0 subsample, then n
     uniform index draws — i.i.d. with replacement over the subsample, at
     O(|X| + n) instead of n full-table reservoir scans. *)
  let sample_union_n t n =
    if n <= 0 || bucket_size t = 0 then []
    else begin
      let p0_level = min_sampling_level t in
      let survivors = ref [] in
      let kept = ref 0 in
      Tbl.iter
        (fun x (l, _) ->
          if Rng.bernoulli t.rng (Float.ldexp 1.0 (l - p0_level)) then begin
            incr kept;
            survivors := x :: !survivors
          end)
        t.bucket;
      if !kept = 0 then []
      else begin
        let arr = Array.of_list !survivors in
        List.init n (fun _ -> arr.(Rng.int t.rng !kept))
      end
    end

  let sample_union t =
    match sample_union_n t 1 with [] -> None | x :: _ -> Some x

  type snapshot = {
    mode : Params.mode;
    capacity_scale : float;
    coupon_scale : float;
    epsilon : float;
    delta : float;
    log2_universe : float;
    items : int;
    max_bucket : int;
    skipped : int;
    calls : oracle_calls;
    entries : (F.elt * int * float) list;
  }

  let snapshot t =
    let p = t.params in
    {
      mode = p.Params.mode;
      capacity_scale = p.Params.capacity_scale;
      coupon_scale = p.Params.coupon_scale;
      epsilon = p.Params.epsilon;
      delta = p.Params.delta;
      log2_universe = p.Params.log2_universe;
      items = t.items;
      max_bucket = t.max_bucket;
      skipped = t.skipped;
      calls = oracle_calls t;
      entries = Tbl.fold (fun x (l, ts) acc -> (x, l, ts) :: acc) t.bucket [];
    }

  let restore s ~seed =
    let t =
      create ~mode:s.mode ~capacity_scale:s.capacity_scale ~coupon_scale:s.coupon_scale
        ~epsilon:s.epsilon ~delta:s.delta ~log2_universe:s.log2_universe ~seed ()
    in
    List.iter (fun (x, l, ts) -> bucket_add ~ts t x l) s.entries;
    t.items <- s.items;
    t.max_bucket <- s.max_bucket;
    t.skipped <- s.skipped;
    t.membership_calls <- s.calls.membership;
    t.cardinality_calls <- s.calls.cardinality;
    t.sampling_calls <- s.calls.sampling;
    t

  (* Sharded-stream union: the two sketches sample disjoint (or overlapping)
     sub-streams of one logical stream.  Downsample both buckets to the
     common minimum sampling probability p0 = 2^-l0, union with dedup, then
     re-apply the capacity/halving rule so the merged bucket obeys the same
     occupancy invariant a single-stream sketch would.

     Coverage shared between the two shards is double-counted in expectation
     (inclusion events are independent across shards — there is no shared
     hash as in theta sketches), so the merged estimate lies between |∪| and
     the sum of the per-shard union sizes; hash-of-set sharding keeps the
     gap to the geometric overlap between distinct sets.  An element retained
     by BOTH buckets is visible as a duplicate, though, and gets exactly one
     downsampling coin (at shard a's level) — two independent coins would
     push its inclusion probability above 2^-l0 on top of that inherent
     cross-shard caveat.  A merge with an empty sketch is the exact
     identity. *)
  let merge a b ~seed =
    let pa = a.params and pb = b.params in
    if
      pa.Params.epsilon <> pb.Params.epsilon
      || pa.Params.delta <> pb.Params.delta
      || pa.Params.log2_universe <> pb.Params.log2_universe
      || pa.Params.mode <> pb.Params.mode
      || pa.Params.bucket_capacity <> pb.Params.bucket_capacity
    then invalid_arg "Vatic.merge: parameter mismatch";
    let t =
      create ~mode:pa.Params.mode ~capacity_scale:pa.Params.capacity_scale
        ~coupon_scale:pa.Params.coupon_scale ~epsilon:pa.Params.epsilon
        ~delta:pa.Params.delta ~log2_universe:pa.Params.log2_universe ~seed ()
    in
    (if bucket_size a = 0 then
       Tbl.iter (fun x (l, ts) -> bucket_add ~ts t x l) b.bucket
     else if bucket_size b = 0 then
       Tbl.iter (fun x (l, ts) -> bucket_add ~ts t x l) a.bucket
     else begin
       let l0 = ref (Stdlib.max (min_sampling_level a) (min_sampling_level b)) in
       (* [dup] marks elements whose coin was already flipped while absorbing
          the other shard — they must not get a second chance.  An element
          held by both shards keeps the newest of the two timestamps (its
          last occurrence across the sharded stream), looked up while
          absorbing shard a so the single coin decides for both copies. *)
       let ts_in other x ts =
         match Tbl.find_opt other.bucket x with
         | Some (_, other_ts) -> Float.max ts other_ts
         | None -> ts
       in
       let absorb ~dup ~other src =
         Tbl.iter
           (fun x (l, ts) ->
             if (not (dup x)) && Rng.bernoulli t.rng (Float.ldexp 1.0 (l - !l0))
             then bucket_add ~ts:(ts_in other x ts) t x !l0)
           src.bucket
       in
       absorb ~dup:(fun _ -> false) ~other:b a;
       absorb ~dup:(Tbl.mem a.bucket) ~other:a b;
       (* Halve until the merged occupancy fits the capacity at its own
          level, exactly as process does for an insertion; past the
          probability floor the bucket is kept over-full rather than
          discarding data.  Every entry sits at the pre-increment l0, so
          survivors migrate level in place — no rebuild. *)
       let max_level = t.params.Params.max_level in
       while level_for t (bucket_size t) > !l0 && !l0 < max_level do
         incr l0;
         Tbl.filter_map_inplace
           (fun _ (l, ts) ->
             note_remove t l;
             if Rng.bool t.rng then begin
               note_add t !l0;
               Some (!l0, ts)
             end
             else None)
           t.bucket
       done
     end);
    t.items <- a.items + b.items;
    t.max_bucket <- Stdlib.max (Stdlib.max a.max_bucket b.max_bucket) (bucket_size t);
    t.skipped <- a.skipped + b.skipped;
    t.membership_calls <- a.membership_calls + b.membership_calls;
    t.cardinality_calls <- a.cardinality_calls + b.cardinality_calls;
    t.sampling_calls <- a.sampling_calls + b.sampling_calls;
    t
end
