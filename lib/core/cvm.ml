module Rng = Delphic_util.Rng

type t = {
  thresh : int;
  rng : Rng.t;
  buffer : (int, unit) Hashtbl.t;
  mutable level : int; (* p = 2^-level *)
}

let create ?thresh ~epsilon ~delta ~stream_bound ~seed () =
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Cvm.create: need 0 < epsilon < 1";
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Cvm.create: need 0 < delta < 1";
  if stream_bound <= 0 then invalid_arg "Cvm.create: need stream_bound > 0";
  let thresh =
    match thresh with
    | Some value ->
      if value < 2 then invalid_arg "Cvm.create: thresh must be >= 2";
      value
    | None ->
      int_of_float
        (Float.ceil
           (12.0 /. (epsilon *. epsilon)
           *. (log (8.0 *. float_of_int stream_bound /. delta) /. log 2.0)))
  in
  { thresh; rng = Rng.create ~seed; buffer = Hashtbl.create (2 * thresh); level = 0 }

let thresh t = t.thresh
let level t = t.level
let buffer_size t = Hashtbl.length t.buffer

let add t x =
  (* Last-occurrence rule: only this arrival's coin decides survival. *)
  Hashtbl.remove t.buffer x;
  if Rng.bernoulli t.rng (Float.ldexp 1.0 (-t.level)) then
    Hashtbl.replace t.buffer x ();
  if Hashtbl.length t.buffer >= t.thresh then begin
    (* Buffer full: thin it with fair coins and halve p. *)
    let doomed =
      Hashtbl.fold (fun y () acc -> if Rng.bool t.rng then y :: acc else acc) t.buffer []
    in
    List.iter (Hashtbl.remove t.buffer) doomed;
    t.level <- t.level + 1
  end

let estimate t = Float.ldexp (float_of_int (buffer_size t)) t.level

(* Sharded-stream merge: downsample both buffers to the common minimum
   probability (the larger level), union with dedup, and re-apply the
   threshold rule so the merged buffer obeys the same invariant.  Merging
   with an empty sketch is the exact identity; an element surviving in both
   buffers flips a single downsampling coin (shard a's), never two — the
   same rule, and the same residual cross-shard caveat, as Vatic.merge. *)
let merge a b ~seed =
  if a.thresh <> b.thresh then invalid_arg "Cvm.merge: sketches have different thresh";
  let t =
    {
      thresh = a.thresh;
      rng = Rng.create ~seed;
      buffer = Hashtbl.create (2 * a.thresh);
      level = 0;
    }
  in
  if buffer_size a = 0 then begin
    Hashtbl.iter (fun x () -> Hashtbl.replace t.buffer x ()) b.buffer;
    t.level <- b.level
  end
  else if buffer_size b = 0 then begin
    Hashtbl.iter (fun x () -> Hashtbl.replace t.buffer x ()) a.buffer;
    t.level <- a.level
  end
  else begin
    let l0 = Stdlib.max a.level b.level in
    let absorb ~dup src =
      Hashtbl.iter
        (fun x () ->
          if (not (dup x)) && Rng.bernoulli t.rng (Float.ldexp 1.0 (src.level - l0))
          then Hashtbl.replace t.buffer x ())
        src.buffer
    in
    absorb ~dup:(fun _ -> false) a;
    absorb ~dup:(Hashtbl.mem a.buffer) b;
    t.level <- l0;
    while Hashtbl.length t.buffer >= t.thresh do
      let doomed =
        Hashtbl.fold (fun y () acc -> if Rng.bool t.rng then y :: acc else acc) t.buffer []
      in
      List.iter (Hashtbl.remove t.buffer) doomed;
      t.level <- t.level + 1
    done
  end;
  t
