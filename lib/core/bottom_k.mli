(** Bottom-k (KMV) distinct-elements sketch — a specialised F0 baseline for
    singleton streams (E7 in EXPERIMENTS.md).

    Each value is hashed to a uniform point in (0,1); the sketch keeps the
    [k] smallest hash values and estimates the distinct count as
    [(k-1) / h_(k)], the classical k-minimum-values estimator.  Space is
    O(k) = O(1/ε²) — less than VATIC on singletons, but it answers only the
    Distinct Elements special case. *)

type t

val create : ?k:int -> epsilon:float -> unit -> t
(** [k] defaults to [⌈4/ε²⌉]. *)

val add : t -> int -> unit
val estimate : t -> float
val k : t -> int
val size : t -> int
(** Number of hash values currently retained (≤ k). *)

val merge : t -> t -> t
(** Exact (lossless) merge: the hash function is shared, so keeping the [k]
    smallest of the union of the two heaps is precisely the sketch of the
    concatenated streams — deterministic, commutative, idempotent.  Both
    sketches must share [k]. *)
