(** Versioned on-disk codec for estimator snapshots.

    {!Vatic}, {!Ext_vatic} and {!Adaptive} expose in-memory [snapshot]
    records parameterised by the family's element type.  Durability must not
    be tied to those records (they change as the estimators evolve), so this
    module defines a neutral, {e versioned} interchange form in which
    elements are opaque single-line strings — each serving family supplies
    its own element codec (see [Delphic_server.Families]) and the text
    format carries everything else.

    The format is line-oriented and human-inspectable (v3 shown; v2 added
    the [merges] line, v3 the per-entry ingest timestamps — older v1/v2
    snapshots still decode, with every timestamp 0):

    {v
    delphic-snapshot v3
    family rect
    epsilon 0x1.999999999999ap-3
    ...
    merges 0
    ...
    exact-entries 2
    E 0x1.8p3 3 7
    E 0x0p+0 12 40
    sketch practical ...
    sketch-entries 1
    3 0x1.8p3 17 42
    end
    v}

    Timestamps come {e before} the element on entry lines because element
    encodings may themselves contain spaces.

    Floats are printed with ["%h"] (hexadecimal) so that
    [decode (encode s) = Ok s] holds {e exactly} — the qcheck property in
    [test/test_snapshot_io.ml].  Unknown versions and malformed input decode
    to [Error], never an exception. *)

type sketch = {
  mode : Params.mode;
  capacity_scale : float;
  coupon_scale : float;
  s_items : int;  (** items the sketch itself has processed *)
  max_bucket : int;
  skipped : int;
  membership_calls : int;
  cardinality_calls : int;
  sampling_calls : int;
  entries : (int * float * string) list;
      (** (sampling level, last-occurrence timestamp, encoded element) *)
}

type t = {
  family : string;
      (** the protocol family token, e.g. ["rect"], ["dnf:40"],
          ["cov:14:2"]; opaque to this module (no whitespace) *)
  epsilon : float;
  delta : float;
  log2_universe : float;
  exact_capacity : int;  (** the adaptive wrapper's exact-mode budget *)
  items : int;
  merges : int;
      (** how many sketch merges produced this state (0 for a single-stream
          session; v1 snapshots decode with 0) *)
  exact_active : bool;
  exact_entries : (float * string) list;
      (** exact-table contents: (last-occurrence timestamp, encoded
          element) *)
  sketch : sketch option;  (** [None] on universes below the sketching floor *)
}

val version : int
(** Current format version (3).  v3 adds per-entry ingest timestamps;
    {!decode} still reads v1/v2 snapshots (with [merges = 0] for v1 and
    every timestamp 0). *)

val encode : t -> string
(** Raises [Invalid_argument] if the family token or an encoded element
    contains a newline (elements containing spaces are fine). *)

val decode : string -> (t, string) result

val restrict : cutoff:float -> t -> t
(** Drop every exact and sketch entry whose last-occurrence timestamp is
    strictly before [cutoff] — the snapshot-level window restriction used by
    windowed [EXPR] queries.  Items/merge counters are untouched: the result
    is a query-time view of the trailing window, not a rewritten history.
    [restrict ~cutoff:neg_infinity] is the identity. *)

val to_wire : t -> string
(** {!encode} armored for line protocols: ['%'], [' '], ['\n'] and ['\r']
    are percent-escaped ([%25]/[%20]/[%0A]/[%0D]), so the result is a single
    space-free token that can ride inside a [MERGE]/[SKETCH] verb. *)

val of_wire : string -> (t, string) result
(** Inverse of {!to_wire}: [of_wire (to_wire s) = Ok s].  Unknown escapes,
    truncated escapes and raw whitespace are [Error]s, never exceptions. *)

val save : ?fsync:bool -> path:string -> t -> unit
(** Atomic: writes [path ^ ".tmp"] then renames, so a crash mid-write never
    leaves a truncated snapshot behind.  With [fsync] (default [false]) the
    temporary file is fsynced before the rename — a checkpoint that the
    write-ahead journal is about to truncate against must survive power
    loss, not merely process death. *)

val load : path:string -> (t, string) result
