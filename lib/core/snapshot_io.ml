type sketch = {
  mode : Params.mode;
  capacity_scale : float;
  coupon_scale : float;
  s_items : int;
  max_bucket : int;
  skipped : int;
  membership_calls : int;
  cardinality_calls : int;
  sampling_calls : int;
  entries : (int * float * string) list;
}

type t = {
  family : string;
  epsilon : float;
  delta : float;
  log2_universe : float;
  exact_capacity : int;
  items : int;
  merges : int;
  exact_active : bool;
  exact_entries : (float * string) list;
  sketch : sketch option;
}

let version = 3
let magic = "delphic-snapshot"

let string_of_mode = function Params.Paper -> "paper" | Params.Practical -> "practical"

let mode_of_string = function
  | "paper" -> Ok Params.Paper
  | "practical" -> Ok Params.Practical
  | s -> Error (Printf.sprintf "unknown mode %S" s)

(* Hexadecimal float literals round-trip doubles exactly through
   float_of_string, which "%.17g" only does modulo printf/strtod quirks. *)
let float_out = Printf.sprintf "%h"

let check_single_line what s =
  String.iter
    (fun c ->
      if c = '\n' || c = '\r' then
        invalid_arg (Printf.sprintf "Snapshot_io.encode: %s contains a newline" what))
    s

let encode t =
  check_single_line "family token" t.family;
  if t.family = "" || String.contains t.family ' ' then
    invalid_arg "Snapshot_io.encode: family token must be non-empty and space-free";
  List.iter (fun (_, e) -> check_single_line "an exact entry" e) t.exact_entries;
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "%s v%d" magic version;
  line "family %s" t.family;
  line "epsilon %s" (float_out t.epsilon);
  line "delta %s" (float_out t.delta);
  line "log2-universe %s" (float_out t.log2_universe);
  line "exact-capacity %d" t.exact_capacity;
  line "items %d" t.items;
  line "merges %d" t.merges;
  line "exact-active %b" t.exact_active;
  line "exact-entries %d" (List.length t.exact_entries);
  (* entry lines dominate a large snapshot: append them directly instead of
     paying a printf interpretation per element.  v3 puts the timestamp
     before the element because the element encoding may itself contain
     spaces. *)
  List.iter
    (fun (ts, e) ->
      Buffer.add_string buf "E ";
      Buffer.add_string buf (float_out ts);
      Buffer.add_char buf ' ';
      Buffer.add_string buf e;
      Buffer.add_char buf '\n')
    t.exact_entries;
  (match t.sketch with
  | None -> line "no-sketch"
  | Some s ->
    line "sketch %s %s %s %d %d %d %d %d %d" (string_of_mode s.mode)
      (float_out s.capacity_scale) (float_out s.coupon_scale) s.s_items s.max_bucket
      s.skipped s.membership_calls s.cardinality_calls s.sampling_calls;
    line "sketch-entries %d" (List.length s.entries);
    List.iter
      (fun (level, ts, e) ->
        check_single_line "a sketch entry" e;
        Buffer.add_string buf (string_of_int level);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (float_out ts);
        Buffer.add_char buf ' ';
        Buffer.add_string buf e;
        Buffer.add_char buf '\n')
      s.entries);
  line "end";
  Buffer.contents buf

(* Decoding: a tiny sequential reader over the line list, every failure an
   [Error] naming the offending line. *)

let ( let* ) = Result.bind

let decode text =
  let lines = String.split_on_char '\n' text in
  let lines = ref lines in
  let lineno = ref 0 in
  let next () =
    match !lines with
    | [] -> Error "truncated snapshot: unexpected end of input"
    | l :: rest ->
      lines := rest;
      incr lineno;
      Ok l
  in
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" !lineno m)) fmt in
  let keyed key =
    let* l = next () in
    let klen = String.length key in
    if String.length l > klen && l.[klen] = ' ' && String.starts_with ~prefix:key l
    then Ok (String.sub l (klen + 1) (String.length l - klen - 1))
    else fail "expected %S, got %S" key l
  in
  let int_field key =
    let* v = keyed key in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> fail "%s: not an integer: %S" key v
  in
  let float_field key =
    let* v = keyed key in
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> fail "%s: not a float: %S" key v
  in
  let bool_field key =
    let* v = keyed key in
    match bool_of_string_opt v with
    | Some b -> Ok b
    | None -> fail "%s: not a boolean: %S" key v
  in
  let rec read_n n f acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* x = f () in
      read_n (n - 1) f (x :: acc)
  in
  let* header = next () in
  let* read_version =
    match String.split_on_char ' ' header with
    | [ m; v ] when m = magic -> (
      match v with
      | "v1" -> Ok 1
      | "v2" -> Ok 2
      | "v3" -> Ok 3
      | _ -> fail "unsupported snapshot version %S (this build reads v1..v%d)" v version)
    | _ -> fail "not a delphic snapshot (bad magic line %S)" header
  in
  let* family = keyed "family" in
  let* () = if family = "" || String.contains family ' ' then fail "empty or malformed family token" else Ok () in
  let* epsilon = float_field "epsilon" in
  let* delta = float_field "delta" in
  let* log2_universe = float_field "log2-universe" in
  let* exact_capacity = int_field "exact-capacity" in
  let* items = int_field "items" in
  (* v1 predates merge tracking; those snapshots have never been merged. *)
  let* merges = if read_version >= 2 then int_field "merges" else Ok 0 in
  let* exact_active = bool_field "exact-active" in
  let* n_exact = int_field "exact-entries" in
  let* () = if n_exact < 0 then fail "negative exact-entries count" else Ok () in
  (* v3 prefixes each entry with its last-occurrence timestamp; pre-v3
     snapshots carry no time axis and decode as "everything at t=0". *)
  let exact_entry () =
    let* v = keyed "E" in
    if read_version < 3 then Ok (0.0, v)
    else
      match String.index_opt v ' ' with
      | None -> fail "exact entry: missing timestamp in %S" v
      | Some i -> (
        let tss = String.sub v 0 i in
        let rest = String.sub v (i + 1) (String.length v - i - 1) in
        match float_of_string_opt tss with
        | Some ts -> Ok (ts, rest)
        | None -> fail "exact entry: bad timestamp %S" tss)
  in
  let* exact_entries = read_n n_exact exact_entry [] in
  let* sk_line = next () in
  let* sketch =
    if sk_line = "no-sketch" then Ok None
    else
      match String.split_on_char ' ' sk_line with
      | [ "sketch"; mode; cs; ks; si; mb; sk; mc; cc; sc ] ->
        let* mode = Result.map_error (Printf.sprintf "line %d: %s" !lineno) (mode_of_string mode) in
        let num what conv v =
          match conv v with Some x -> Ok x | None -> fail "sketch %s: bad number %S" what v
        in
        let* capacity_scale = num "capacity-scale" float_of_string_opt cs in
        let* coupon_scale = num "coupon-scale" float_of_string_opt ks in
        let* s_items = num "items" int_of_string_opt si in
        let* max_bucket = num "max-bucket" int_of_string_opt mb in
        let* skipped = num "skipped" int_of_string_opt sk in
        let* membership_calls = num "membership-calls" int_of_string_opt mc in
        let* cardinality_calls = num "cardinality-calls" int_of_string_opt cc in
        let* sampling_calls = num "sampling-calls" int_of_string_opt sc in
        let* n_entries = int_field "sketch-entries" in
        let* () = if n_entries < 0 then fail "negative sketch-entries count" else Ok () in
        let entry () =
          let* l = next () in
          let level, rest =
            match String.index_opt l ' ' with
            | Some i -> (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
            | None -> (l, "")
          in
          match int_of_string_opt level with
          | None -> fail "sketch entry: bad level %S" level
          | Some lv ->
            if read_version < 3 then Ok (lv, 0.0, rest)
            else (
              match String.index_opt rest ' ' with
              | None -> fail "sketch entry: missing timestamp in %S" l
              | Some i -> (
                let tss = String.sub rest 0 i in
                let elt = String.sub rest (i + 1) (String.length rest - i - 1) in
                match float_of_string_opt tss with
                | Some ts -> Ok (lv, ts, elt)
                | None -> fail "sketch entry: bad timestamp %S" tss))
        in
        let* entries = read_n n_entries entry [] in
        Ok
          (Some
             {
               mode;
               capacity_scale;
               coupon_scale;
               s_items;
               max_bucket;
               skipped;
               membership_calls;
               cardinality_calls;
               sampling_calls;
               entries;
             })
      | _ -> fail "expected \"sketch ...\" or \"no-sketch\", got %S" sk_line
  in
  let* last = next () in
  let* () = if last = "end" then Ok () else fail "expected \"end\", got %S" last in
  Ok
    {
      family;
      epsilon;
      delta;
      log2_universe;
      exact_capacity;
      items;
      merges;
      exact_active;
      exact_entries;
      sketch;
    }

(* Window restriction on the interchange form itself: drop every entry whose
   last occurrence predates the cutoff.  Counters are left untouched — a
   restricted snapshot is a query-time view, not a stream history rewrite. *)
let restrict ~cutoff t =
  {
    t with
    exact_entries = List.filter (fun (ts, _) -> ts >= cutoff) t.exact_entries;
    sketch =
      Option.map
        (fun s ->
          { s with entries = List.filter (fun (_, ts, _) -> ts >= cutoff) s.entries })
        t.sketch;
  }

(* Wire armor: percent-escape the four characters that would break a
   space-delimited line protocol, turning a whole snapshot into one
   space-free token that can ride inside a MERGE/SKETCH verb. *)

let to_wire t =
  let text = encode t in
  let n = String.length text in
  let buf = Buffer.create (n + (n / 4)) in
  (* copy maximal clean runs in one go; [i] is the start of the current run *)
  let rec run i j =
    if j >= n then Buffer.add_substring buf text i (n - i)
    else
      match String.unsafe_get text j with
      | '%' | '\n' | '\r' | ' ' ->
        Buffer.add_substring buf text i (j - i);
        Buffer.add_string buf
          (match text.[j] with
          | '%' -> "%25"
          | '\n' -> "%0A"
          | '\r' -> "%0D"
          | _ -> "%20");
        run (j + 1) (j + 1)
      | _ -> run i (j + 1)
  in
  run 0 0;
  Buffer.contents buf

let of_wire s =
  let n = String.length s in
  let buf = Buffer.create n in
  (* mirror of [to_wire]: clean runs copy as substrings, [i] = run start *)
  let rec unescape i j =
    if j >= n then begin
      Buffer.add_substring buf s i (j - i);
      Ok (Buffer.contents buf)
    end
    else
      match String.unsafe_get s j with
      | '%' ->
        Buffer.add_substring buf s i (j - i);
        if j + 2 >= n then Error "wire snapshot: truncated percent-escape"
        else (
          match (s.[j + 1], s.[j + 2]) with
          | '2', '5' ->
            Buffer.add_char buf '%';
            unescape (j + 3) (j + 3)
          | '0', 'A' ->
            Buffer.add_char buf '\n';
            unescape (j + 3) (j + 3)
          | '0', 'D' ->
            Buffer.add_char buf '\r';
            unescape (j + 3) (j + 3)
          | '2', '0' ->
            Buffer.add_char buf ' ';
            unescape (j + 3) (j + 3)
          | a, b -> Error (Printf.sprintf "wire snapshot: unknown escape %%%c%c" a b))
      | ' ' | '\n' | '\r' -> Error "wire snapshot: unescaped whitespace"
      | _ -> unescape i (j + 1)
  in
  let* text = unescape 0 0 in
  decode text

let save ?(fsync = false) ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (encode t);
      flush oc;
      if fsync then
        try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  Sys.rename tmp path

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in_noerr ic;
    decode contents
