(** Multicore execution primitives (OCaml 5 domains).

    Experiment trials are embarrassingly parallel — each builds its own
    estimator from its own seed — so the accuracy/failure-rate experiments
    fan them out across domains, and the cluster coordinator folds worker
    sketches with {!reduce}.  Only use with functions that touch no shared
    mutable state (every estimator in this library is self-contained). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [domains] defaults to
    [min 4 (recommended_domain_count - 1)].  Work is assigned by an atomic
    counter — each domain repeatedly claims the next unprocessed index — so
    skewed workloads (cost monotone in index) balance instead of piling onto
    one domain as contiguous slicing did; results are written back at their
    original index, so order is preserved.  Falls back to [List.map] for a
    single domain or short lists.  Exceptions in any worker re-raise in the
    caller. *)

val reduce :
  ?domains:int -> map:('a -> 'b) -> merge:('b -> 'b -> 'b) -> 'a list -> 'b option
(** [reduce ~map ~merge items] folds [map item_0, ..., map item_{n-1}] with
    a balanced binary merge tree: [None] on an empty list, and with enough
    domains both [map] leaves and [merge] nodes of independent subtrees run
    concurrently, for O(log n) critical-path depth instead of a serial left
    fold's O(n).  The tree shape (hence the association of the [merge]
    applications) depends only on [n], never on [domains] — for an
    associative [merge] the result equals [List.fold_left] over the mapped
    items, and even for a merge that is only associative (not commutative)
    serial and parallel runs agree exactly.  Left subtrees always hold the
    lower indices, so operand order is preserved. *)

val default_domains : unit -> int
