module Rng = Delphic_util.Rng

type config = {
  seed : int;
  delay_p : float;
  max_delay : float;
  drop_p : float;
  partial_p : float;
  close_p : float;
  corrupt_p : float;
}

let config ?(delay_p = 0.0) ?(max_delay = 0.005) ?(drop_p = 0.0) ?(partial_p = 0.0)
    ?(close_p = 0.0) ?(corrupt_p = 0.0) ~seed () =
  let prob what p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Chaos.config: %s must be in [0, 1]" what)
  in
  prob "delay_p" delay_p;
  prob "drop_p" drop_p;
  prob "partial_p" partial_p;
  prob "close_p" close_p;
  prob "corrupt_p" corrupt_p;
  if max_delay < 0.0 then invalid_arg "Chaos.config: max_delay must be >= 0";
  { seed; delay_p; max_delay; drop_p; partial_p; close_p; corrupt_p }

type t = {
  cfg : config;
  rng : Rng.t;  (* guarded by [lock]: wrappers run on many threads *)
  lock : Mutex.t;
  mutable enabled : bool;
  mutable injected : int;
  mutable blocked : int list; (* peer TCP ports partitioned away right now *)
}

let create cfg =
  {
    cfg;
    rng = Rng.create ~seed:cfg.seed;
    lock = Mutex.create ();
    enabled = true;
    injected = 0;
    blocked = [];
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_enabled t v = with_lock t (fun () -> t.enabled <- v)
let enabled t = with_lock t (fun () -> t.enabled)
let injected t = with_lock t (fun () -> t.injected)

let partition t ports = with_lock t (fun () -> t.blocked <- ports)
let heal t = with_lock t (fun () -> t.blocked <- [])
let partitioned t = with_lock t (fun () -> t.blocked)

(* A partition is judged by the connection's peer port: the wrappers see
   only file descriptors, and the peer port is the one stable identity a
   test controls (each worker listens on its own).  Unidentifiable peers
   (closed fd, unix socket) are never partitioned. *)
let peer_blocked t fd =
  let blocked = with_lock t (fun () -> t.blocked) in
  blocked <> []
  &&
  match Unix.getpeername fd with
  | Unix.ADDR_INET (_, p) -> List.mem p blocked
  | _ -> false
  | exception Unix.Unix_error _ -> false

type kill_plan = { victim : int; after : int }

(* One seeded draw for a process-kill schedule: which of [procs] dies, and
   after how many of [steps] ingest steps — so "kill worker 2 after batch
   17" is a pure function of the chaos seed and replays bit-identically. *)
let kill_plan t ~procs ~steps =
  if procs < 1 then invalid_arg "Chaos.kill_plan: need procs >= 1";
  if steps < 1 then invalid_arg "Chaos.kill_plan: need steps >= 1";
  with_lock t (fun () ->
      { victim = Rng.int t.rng procs; after = 1 + Rng.int t.rng steps })

(* One seeded decision per operation, drawn under the lock; the fault itself
   (sleeps, syscalls) runs outside it.  [faults] is the kind-specific
   (probability, tag) menu — first match on a single uniform draw wins, so
   the per-op fault distribution is exactly the configured probabilities. *)
type decision = { delay : float option; fault : [ `Drop | `Partial | `Close | `Corrupt | `None ] }

let decide t faults =
  with_lock t (fun () ->
      if not t.enabled then { delay = None; fault = `None }
      else begin
        let delay =
          if t.cfg.delay_p > 0.0 && Rng.bernoulli t.rng t.cfg.delay_p then
            Some (Rng.float t.rng *. t.cfg.max_delay)
          else None
        in
        let roll = Rng.float t.rng in
        let fault =
          let rec pick acc = function
            | [] -> `None
            | (p, tag) :: rest -> if roll < acc +. p then tag else pick (acc +. p) rest
          in
          pick 0.0 faults
        in
        if delay <> None then t.injected <- t.injected + 1;
        if fault <> `None then t.injected <- t.injected + 1;
        { delay; fault }
      end)

let apply_delay = function None -> () | Some secs -> if secs > 0.0 then Unix.sleepf secs

let shutdown_quiet fd = try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
let epipe op = raise (Unix.Unix_error (Unix.EPIPE, op, "chaos"))

(* A corrupt byte position inside [0, len): drawn separately so [decide]
   stays allocation-light on the common no-fault path. *)
let corrupt_pos t len = with_lock t (fun () -> Rng.int t.rng len)

let wrap_write t base fd s ofs len =
  if peer_blocked t fd then len (* black hole: claim success, ship nothing *)
  else
  let d =
    decide t
      [
        (t.cfg.drop_p, `Drop);
        (t.cfg.partial_p, `Partial);
        (t.cfg.close_p, `Close);
        (t.cfg.corrupt_p, `Corrupt);
      ]
  in
  apply_delay d.delay;
  match d.fault with
  | `None -> base fd s ofs len
  | `Drop -> len (* claim success, ship nothing *)
  | `Partial ->
    let k = if len <= 1 then len else 1 + corrupt_pos t (len - 1) in
    ignore (base fd s ofs k);
    epipe "write"
  | `Close ->
    shutdown_quiet fd;
    epipe "write"
  | `Corrupt ->
    let b = Bytes.of_string (String.sub s ofs len) in
    let i = corrupt_pos t len in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    base fd (Bytes.to_string b) 0 len

let wrap_read t base fd buf ofs len =
  if peer_blocked t fd then begin
    (* nothing will ever arrive from a partitioned peer; burn a beat (so
       the caller's retry loop does not spin hot) and report the same
       EAGAIN a drained SO_RCVTIMEO socket would, which is exactly the
       typed-timeout path the RPC layer already handles *)
    Unix.sleepf 0.002;
    raise (Unix.Unix_error (Unix.EAGAIN, "read", "chaos partition"))
  end;
  let d = decide t [ (t.cfg.close_p, `Close); (t.cfg.corrupt_p, `Corrupt) ] in
  apply_delay d.delay;
  match d.fault with
  | `None | `Drop | `Partial -> base fd buf ofs len
  | `Close ->
    shutdown_quiet fd;
    0 (* EOF *)
  | `Corrupt ->
    let k = base fd buf ofs len in
    if k > 0 then begin
      let i = ofs + corrupt_pos t k in
      Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0x20))
    end;
    k
