(** Deterministic fault injection for socket transports.

    Wraps a [Unix.read]/[Unix.write_substring]-shaped pair of socket
    operations with seeded, probabilistic faults — delays, dropped writes,
    partial writes, mid-stream closes, single-byte corruption — so a
    cluster's retry/quarantine/rejoin machinery can be exercised against a
    deliberately lossy transport {e without} touching any framing or retry
    logic, and reproducibly: the same seed draws the same fault sequence
    (thread interleavings aside).

    The wrappers are signature-generic — this module knows nothing about
    the RPC layer above.  The cluster side plugs them in through
    [Delphic_cluster.Rpc.io]:

    {[
      let chaos = Chaos.create (Chaos.config ~drop_p:0.02 ~seed:42 ()) in
      let io =
        Delphic_cluster.Rpc.
          {
            io_read = Chaos.wrap_read chaos Unix.read;
            io_write = Chaos.wrap_write chaos Unix.write_substring;
          }
      in
      Delphic_cluster.Coordinator.create ~io ~workers ~seed ()
    ]}

    Fault semantics, rolled independently per operation:

    - {b delay}: sleep uniformly on [0, max_delay) before the op proceeds
      (models congestion; composes with any other fault).
    - {b drop} (write only): claim every byte was written, ship none.  The
      peer never sees the frame; the caller discovers the loss when the
      acks it is owed never arrive.
    - {b partial} (write only): ship a prefix of the buffer, then raise
      [EPIPE] — a frame torn mid-line, the classic crash artifact.
    - {b close}: shut the socket down; a write raises [EPIPE], a read
      returns 0 (EOF).
    - {b corrupt}: flip one random byte (in the written prefix, or in the
      bytes just read) — exercises the CRC/parse rejection paths.

    All probabilities default to 0, so [config ~seed ()] is a transparent
    wrapper; tests enable exactly the faults they mean to test. *)

type config = {
  seed : int;
  delay_p : float;
  max_delay : float;  (** seconds; uniform on [0, max_delay) when delayed *)
  drop_p : float;
  partial_p : float;
  close_p : float;
  corrupt_p : float;
}

val config :
  ?delay_p:float ->
  ?max_delay:float ->
  ?drop_p:float ->
  ?partial_p:float ->
  ?close_p:float ->
  ?corrupt_p:float ->
  seed:int ->
  unit ->
  config
(** All probabilities default to [0.0]; [max_delay] to [5ms].  Raises
    [Invalid_argument] if any probability is outside [0, 1] or [max_delay]
    is negative. *)

type t

val create : config -> t

val set_enabled : t -> bool -> unit
(** Fault injection toggles atomically; disabled, the wrappers pass every
    call straight through.  The convergence tests run a chaotic phase, then
    disable injection and assert the cluster settles to the exact
    fault-free answer. *)

val enabled : t -> bool

val injected : t -> int
(** Total faults injected so far (delays included) — lets a test assert
    that chaos actually happened at its chosen seed and probabilities. *)

val partition : t -> int list -> unit
(** Black-hole every connection whose {e peer port} is listed: writes claim
    success and ship nothing, reads sleep a beat and raise [EAGAIN] (the
    same signal a drained [SO_RCVTIMEO] socket gives, so the RPC layer's
    typed-timeout path fires).  Models an asymmetric network partition —
    the socket stays open, nothing flows — as opposed to the crash-like
    [close_p].  Replaces any previous partition set. *)

val heal : t -> unit
(** Clear the partition set; traffic flows again on the same sockets. *)

val partitioned : t -> int list
(** The peer ports currently black-holed. *)

type kill_plan = { victim : int; after : int }
(** A seeded process-kill schedule: [victim] is an index in [0, procs);
    [after] is a 1-based step count in [1, steps]. *)

val kill_plan : t -> procs:int -> steps:int -> kill_plan
(** One draw from the seeded stream — "which process dies, and when" as a
    pure function of the chaos seed, so a kill-9 test replays its schedule
    bit-identically.  Raises [Invalid_argument] on empty ranges. *)

val wrap_read :
  t ->
  (Unix.file_descr -> Bytes.t -> int -> int -> int) ->
  Unix.file_descr ->
  Bytes.t ->
  int ->
  int ->
  int
(** [wrap_read t base] has [base]'s own semantics ([Unix.read]-shaped) with
    faults injected around it. *)

val wrap_write :
  t ->
  (Unix.file_descr -> string -> int -> int -> int) ->
  Unix.file_descr ->
  string ->
  int ->
  int ->
  int
(** [wrap_write t base] has [base]'s own semantics
    ([Unix.write_substring]-shaped) with faults injected around it. *)
