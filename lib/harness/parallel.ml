let default_domains () =
  Stdlib.max 1 (Stdlib.min 4 (Domain.recommended_domain_count () - 1))

(* Work-stealing assignment: every domain (including the caller) pulls the
   next unclaimed index from a shared atomic counter, so a workload whose
   cost is monotone in index — the accuracy experiments sweep stream length
   exactly like that — no longer lands all its heavy trials on the last
   domain the way contiguous slicing did.  Results are written back at
   their original index, so order is preserved. *)
let map ?domains f items =
  let domains = match domains with Some d -> Stdlib.max 1 d | None -> default_domains () in
  let n = List.length items in
  if domains = 1 || n <= 1 then List.map f items
  else begin
    let items = Array.of_list items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let work () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f items.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init (Stdlib.min (domains - 1) (n - 1)) (fun _ -> Domain.spawn work)
    in
    let caller_exn = match work () with () -> None | exception e -> Some e in
    let spawned_exn =
      Array.fold_left
        (fun acc d ->
          match Domain.join d with
          | () -> acc
          | exception e -> ( match acc with None -> Some e | Some _ -> acc))
        None spawned
    in
    (match (caller_exn, spawned_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ());
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) results)
  end

(* Balanced binary merge tree: leaves run [map], inner nodes run [merge],
   and with a budget of [domains] the two subtrees of a node execute in
   different domains until the budget is spent, giving O(log n) depth on
   enough cores.  The tree shape — and therefore the sequence of [merge]
   applications — depends only on the item count, never on [domains], so a
   merge that is associative-but-not-commutative still gives identical
   results serial or parallel. *)
let reduce ?domains ~map:leaf ~merge items =
  match items with
  | [] -> None
  | [ x ] -> Some (leaf x)
  | _ ->
    let domains =
      match domains with Some d -> Stdlib.max 1 d | None -> default_domains ()
    in
    let arr = Array.of_list items in
    (* [go lo hi budget] folds [lo, hi), spending at most [budget] domains. *)
    let rec go lo hi budget =
      if hi - lo = 1 then leaf arr.(lo)
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if budget <= 1 then merge (go lo mid 1) (go mid hi 1)
        else begin
          let right = Domain.spawn (fun () -> go mid hi (budget / 2)) in
          let l =
            match go lo mid (budget - (budget / 2)) with
            | l -> l
            | exception e ->
              (try ignore (Domain.join right) with _ -> ());
              raise e
          in
          merge l (Domain.join right)
        end
      end
    in
    Some (go 0 (Array.length arr) domains)
