(** Oracle interfaces for Delphic and Approximate-Delphic set families.

    A set belongs to a {e Delphic family} (Definition 1.1 of the paper) when
    three queries are efficiently supported: membership, exact cardinality,
    and uniform random sampling.  The {e Approximate-Delphic} relaxation
    (Definition 1.4) weakens cardinality to an [(α, γ)]-approximation and
    sampling to an [η]-near-uniform oracle.

    Estimators in {!Delphic_core} are functors over these signatures, so any
    user-defined family plugs in directly. *)

(** Exact Delphic oracle. *)
module type FAMILY = sig
  type elt
  (** Elements of the universe [Ω] the sets live in. *)

  type t
  (** A set of the family (its succinct representation). *)

  val cardinality : t -> Delphic_util.Bigint.t
  (** Exact [|S|].  Arbitrary precision: cardinalities such as [|Δ|^d]
      overflow native integers. *)

  val mem : t -> elt -> bool
  (** Membership query. *)

  val sample : t -> Delphic_util.Rng.t -> elt
  (** A uniformly random element of the set.  Requires the set non-empty. *)

  val iter_elements : (t -> (elt -> unit) -> unit) option
  (** Deterministic enumeration of every element, when the succinct
      representation supports it (a box walks its grid, an interval its
      integers).  Not part of the Delphic oracle — estimators never rely
      on it for correctness, only as a shortcut where they would otherwise
      materialise a small set by repeated [sample] draws
      ({!Delphic_core.Adaptive}'s exact regime).  [None] means callers
      must make do with the three oracle queries. *)

  val equal_elt : elt -> elt -> bool
  val hash_elt : elt -> int
  val pp_elt : Format.formatter -> elt -> unit
end

(** [(α, γ, η)]-Approximate-Delphic oracle.  The numeric parameters
    themselves are supplied to the estimator at construction time; this
    signature only fixes the query interface. *)
module type APPROX_FAMILY = sig
  type elt
  type t

  val mem : t -> elt -> bool

  val approx_cardinality : t -> Delphic_util.Rng.t -> Delphic_util.Bigint.t
  (** A value within [[|S|/(1+α), (1+α)|S|]] with probability at least
      [1 - γ]. *)

  val approx_sample : t -> Delphic_util.Rng.t -> elt
  (** A draw in which every element of [S] has probability within
      [[1/((1+η)|S|), (1+η)/|S|]]. *)

  val equal_elt : elt -> elt -> bool
  val hash_elt : elt -> int
  val pp_elt : Format.formatter -> elt -> unit
end

(** Families over the Boolean cube that can answer queries {e under XOR
    constraints}: count and enumerate the elements of a set that also
    satisfy a system of GF(2) parity equations.

    This is the interface needed by hashing-based F0 estimation in the
    style of Pavan–Vinodchandran–Bhattacharyya–Meel (PODS'21, [32] in the
    paper): the sketch keeps exactly the elements hashed to a shrinking
    XOR-defined cell.  DNF terms and affine subspaces support it; families
    without affine structure (e.g. Hamming balls) do not — which is exactly
    the limitation that motivates the paper's sampling-based route. *)
module type XOR_FAMILY = sig
  type t

  val nvars : t -> int
  (** All sets live in {0,1}^nvars. *)

  val count_constrained : t -> Delphic_util.Gf2.row list -> Delphic_util.Bigint.t
  (** [|{x ∈ S : every row satisfied}|]. *)

  val enumerate_constrained :
    t -> Delphic_util.Gf2.row list -> limit:int -> Delphic_util.Bitvec.t list option
  (** The elements themselves; [None] if there are more than [limit]. *)
end

(** Per-process query counters, for validating update-time claims from
    outside the estimators.  Wrap a family and read the counters after a
    run.  Counters are shared across all instances of the wrapped family. *)
module Counting (F : FAMILY) : sig
  include FAMILY with type elt = F.elt and type t = F.t

  val reset : unit -> unit
  val mem_calls : unit -> int
  val cardinality_calls : unit -> int
  val sample_calls : unit -> int
  val total_calls : unit -> int
end = struct
  type elt = F.elt
  type t = F.t

  let mems = ref 0
  let cards = ref 0
  let samples = ref 0

  let reset () =
    mems := 0;
    cards := 0;
    samples := 0

  let mem_calls () = !mems
  let cardinality_calls () = !cards
  let sample_calls () = !samples
  let total_calls () = !mems + !cards + !samples

  let cardinality s =
    incr cards;
    F.cardinality s

  let mem s x =
    incr mems;
    F.mem s x

  let sample s rng =
    incr samples;
    F.sample s rng

  (* Enumeration bypasses the oracle, so it is deliberately not counted. *)
  let iter_elements = F.iter_elements
  let equal_elt = F.equal_elt
  let hash_elt = F.hash_elt
  let pp_elt = F.pp_elt
end
