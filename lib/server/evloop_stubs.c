/* Readiness primitives for the event loop: epoll on Linux, poll(2)
 * everywhere, plus an RLIMIT_NOFILE raiser for connection-scaling runs.
 *
 * File descriptors cross the boundary as plain ints (Unix.file_descr is an
 * int on Unix).  Event bits are our own tiny vocabulary so the OCaml side
 * never sees platform constants: 1 = readable, 2 = writable, 4 = error/hup.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>
#include <unistd.h>

#define EV_IN 1
#define EV_OUT 2
#define EV_ERR 4

#ifdef __linux__
#include <sys/epoll.h>

CAMLprim value delphic_epoll_create(value unit)
{
  (void)unit;
  int fd = epoll_create1(EPOLL_CLOEXEC);
  return Val_int(fd); /* -1 => caller falls back to poll */
}

/* op: 0 = add, 1 = mod, 2 = del */
CAMLprim value delphic_epoll_ctl(value vepfd, value vop, value vfd, value vev)
{
  int op;
  struct epoll_event ev;
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  memset(&ev, 0, sizeof ev);
  if (Int_val(vev) & EV_IN) ev.events |= EPOLLIN;
  if (Int_val(vev) & EV_OUT) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  return Val_int(epoll_ctl(Int_val(vepfd), op, Int_val(vfd), &ev));
}

#define WAIT_MAX 1024

/* Returns a fresh int array [fd0; ev0; fd1; ev1; ...].  EINTR => empty
 * array; the loop re-checks its stop flag and waits again. */
CAMLprim value delphic_epoll_wait(value vepfd, value vtimeout_ms)
{
  CAMLparam0();
  CAMLlocal1(res);
  struct epoll_event evs[WAIT_MAX];
  int n, i;

  caml_release_runtime_system();
  n = epoll_wait(Int_val(vepfd), evs, WAIT_MAX, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();

  if (n < 0) n = 0;
  res = caml_alloc(n * 2, 0);
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLRDHUP)) bits |= EV_IN;
    if (evs[i].events & EPOLLOUT) bits |= EV_OUT;
    if (evs[i].events & (EPOLLERR | EPOLLHUP)) bits |= EV_ERR;
    Store_field(res, i * 2, Val_int(evs[i].data.fd));
    Store_field(res, i * 2 + 1, Val_int(bits));
  }
  CAMLreturn(res);
}

#else /* !__linux__ */

CAMLprim value delphic_epoll_create(value unit)
{
  (void)unit;
  return Val_int(-1);
}

CAMLprim value delphic_epoll_ctl(value vepfd, value vop, value vfd, value vev)
{
  (void)vepfd; (void)vop; (void)vfd; (void)vev;
  return Val_int(-1);
}

CAMLprim value delphic_epoll_wait(value vepfd, value vtimeout_ms)
{
  (void)vepfd; (void)vtimeout_ms;
  return Atom(0);
}

#endif

/* Portable fallback: [vspec] is [fd0; ev0; fd1; ev1; ...]; the result is an
 * int array of revents bits aligned with the pairs (entry i belongs to pair
 * i).  EINTR or error => all zeros. */
CAMLprim value delphic_poll(value vspec, value vtimeout_ms)
{
  CAMLparam1(vspec);
  CAMLlocal1(res);
  long pairs = Wosize_val(vspec) / 2;
  struct pollfd *fds;
  long i;
  int rc;

  fds = (struct pollfd *)malloc(sizeof(struct pollfd) * (pairs ? pairs : 1));
  if (fds == NULL) CAMLreturn(caml_alloc(0, 0));
  for (i = 0; i < pairs; i++) {
    int ev = Int_val(Field(vspec, i * 2 + 1));
    fds[i].fd = Int_val(Field(vspec, i * 2));
    fds[i].events = 0;
    if (ev & EV_IN) fds[i].events |= POLLIN;
    if (ev & EV_OUT) fds[i].events |= POLLOUT;
    fds[i].revents = 0;
  }

  caml_release_runtime_system();
  rc = poll(fds, (nfds_t)pairs, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();

  res = caml_alloc(pairs, 0);
  for (i = 0; i < pairs; i++) {
    int bits = 0;
    if (rc > 0) {
      if (fds[i].revents & POLLIN) bits |= EV_IN;
      if (fds[i].revents & POLLOUT) bits |= EV_OUT;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) bits |= EV_ERR;
    }
    Store_field(res, i, Val_int(bits));
  }
  free(fds);
  CAMLreturn(res);
}

/* One-fd wait, for client-side connect/read deadlines.  Returns revents
 * bits, 0 on timeout, -1 on EINTR (caller recomputes its deadline and
 * retries), -2 on error. */
CAMLprim value delphic_poll1(value vfd, value vev, value vtimeout_ms)
{
  struct pollfd p;
  int rc, bits = 0;

  p.fd = Int_val(vfd);
  p.events = 0;
  if (Int_val(vev) & EV_IN) p.events |= POLLIN;
  if (Int_val(vev) & EV_OUT) p.events |= POLLOUT;
  p.revents = 0;

  caml_release_runtime_system();
  rc = poll(&p, 1, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();

  if (rc == 0) return Val_int(0);
  if (rc < 0) return Val_int(errno == EINTR ? -1 : -2);
  if (p.revents & POLLIN) bits |= EV_IN;
  if (p.revents & POLLOUT) bits |= EV_OUT;
  if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) bits |= EV_ERR;
  return Val_int(bits);
}

/* Raise the open-file soft limit toward [target] (and the hard limit too,
 * where privilege allows).  Returns the soft limit actually in force. */
CAMLprim value delphic_raise_nofile(value vtarget)
{
  struct rlimit rl;
  rlim_t target = (rlim_t)Long_val(vtarget);

  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-1);
  if (rl.rlim_cur >= target) return Val_long((long)rl.rlim_cur);
  if (rl.rlim_max < target) {
    struct rlimit bump = rl;
    bump.rlim_max = target;
    bump.rlim_cur = target;
    if (setrlimit(RLIMIT_NOFILE, &bump) == 0) return Val_long((long)target);
  }
  rl.rlim_cur = rl.rlim_max < target ? rl.rlim_max : target;
  if (setrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-1);
  return Val_long((long)rl.rlim_cur);
}
