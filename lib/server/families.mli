(** A running estimation session with its family packed away.

    The service supports several Delphic families behind one untyped wire
    protocol; this module hides each family's element and set types behind a
    uniform handle.  Each handle wraps a {!Delphic_core.Adaptive} estimator
    (exact while small, VATIC sketch at scale), parses [ADD] payloads with
    the family's {!Delphic_stream.Parsers} line format, and converts to and
    from the neutral {!Delphic_core.Snapshot_io} form for durability. *)

type t

val create :
  family:Protocol.family ->
  epsilon:float ->
  delta:float ->
  log2_universe:float ->
  seed:int ->
  (t, string) result
(** [Error] carries the estimator's refusal message (bad ε/δ, universe too
    small, …). *)

val family : t -> Protocol.family

val family_token : t -> string

val add : t -> lineno:int -> string -> unit
(** Parse one set line and feed it to the estimator.  Raises
    {!Delphic_stream.Parsers.Parse_error} on a malformed payload — the
    caller turns that into an [ERR PARSE] reply; the estimator state is
    untouched by a rejected line. *)

val estimate : t -> float

val items : t -> int

val entries : t -> int
(** Exact distinct elements held, or current sketch occupancy. *)

val is_exact : t -> bool

val describe : t -> string

val to_io : ?merges:int -> t -> Delphic_core.Snapshot_io.t
(** [merges] (default 0) stamps the snapshot's merge count — the session
    registry tracks it, not the estimator. *)

val of_io : Delphic_core.Snapshot_io.t -> seed:int -> (t, string) result
(** Rebuild a session from a decoded snapshot; [Error] on an unknown family
    token, an undecodable element, or parameters the estimator refuses.
    The snapshot's [merges] count is the caller's to keep. *)

val merge : t -> t -> seed:int -> (t, string) result
(** Combine two same-family sessions (the cluster coordinator's fold step,
    see {!Delphic_core.Adaptive.Make.merge} for semantics).  Inputs are
    unchanged.  [Error] on a family, shape, or parameter mismatch. *)
