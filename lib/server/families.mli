(** A running estimation session with its family packed away.

    The service supports several Delphic families behind one untyped wire
    protocol; this module hides each family's element and set types behind a
    uniform handle.  Each handle wraps a {!Delphic_core.Adaptive} estimator
    (exact while small, VATIC sketch at scale), parses [ADD] payloads with
    the family's {!Delphic_stream.Parsers} line format, and converts to and
    from the neutral {!Delphic_core.Snapshot_io} form for durability. *)

type t

val create :
  family:Protocol.family ->
  epsilon:float ->
  delta:float ->
  log2_universe:float ->
  seed:int ->
  (t, string) result
(** [Error] carries the estimator's refusal message (bad ε/δ, universe too
    small, …). *)

val family : t -> Protocol.family

val family_token : t -> string

val params : t -> float * float * float
(** The session's creation triple [(epsilon, delta, log2_universe)] — what a
    coordinator needs to re-register the session when rebuilding routing
    state from a [SESSIONS] enumeration. *)

val add : ?ts:float -> t -> lineno:int -> string -> unit
(** Parse one set line and feed it to the estimator.  [ts] (default 0) is
    the logical ingest timestamp recorded per element (see
    {!Delphic_core.Adaptive.Make.process}).  Raises
    {!Delphic_stream.Parsers.Parse_error} on a malformed payload — the
    caller turns that into an [ERR PARSE] reply; the estimator state is
    untouched by a rejected line. *)

val estimate : t -> float

val estimate_window : t -> cutoff:float -> float
(** Union size restricted to elements whose last occurrence is at or after
    [cutoff] ({!Delphic_core.Adaptive.Make.estimate_window}): exactly
    correct in the exact regime, the restricted Horvitz–Thompson sum when
    sketching.  Non-destructive. *)

val items : t -> int

val entries : t -> int
(** Exact distinct elements held, or current sketch occupancy. *)

val is_exact : t -> bool

val describe : t -> string

val to_io : ?merges:int -> t -> Delphic_core.Snapshot_io.t
(** [merges] (default 0) stamps the snapshot's merge count — the session
    registry tracks it, not the estimator. *)

val of_io : Delphic_core.Snapshot_io.t -> seed:int -> (t, string) result
(** Rebuild a session from a decoded snapshot; [Error] on an unknown family
    token, an undecodable element, or parameters the estimator refuses.
    The snapshot's [merges] count is the caller's to keep. *)

val merge : t -> t -> seed:int -> (t, string) result
(** Combine two same-family sessions (the cluster coordinator's fold step,
    see {!Delphic_core.Adaptive.Make.merge} for semantics).  Inputs are
    unchanged.  [Error] on a family, shape, or parameter mismatch. *)

val copy : t -> seed:int -> (t, string) result
(** Deep copy via the snapshot codec (the input is unchanged and shares no
    mutable state with the copy).  An [EXPR] query clones each leaf under
    its session lock and then evaluates lock-free on the clones, so
    concurrent ingestion never blocks on a long query. *)

val restrict : t -> cutoff:float -> seed:int -> (t, string) result
(** {!copy} keeping only entries whose last occurrence is at or after
    [cutoff] ({!Delphic_core.Snapshot_io.restrict} through the codec).  The
    input is unchanged; windowed [EXPR] queries restrict each cloned leaf
    and then run the ordinary expression machinery on the views. *)

val expr_estimate :
  union:t ->
  leaves:(string * t) list ->
  expr:Protocol.Expr_ast.t ->
  samples:int ->
  (Protocol.Expr_ast.outcome, string) result
(** Evaluate a set expression by sample-and-probe
    ({!Delphic_expr.Expr.Eval}): draw [samples] elements from [union] — the
    fold of every leaf in [leaves] — and probe each leaf's estimator for
    membership weights.  [leaves] maps each distinct leaf name of [expr] to
    its session handle; all must be the same family as [union] ([Error]
    otherwise, e.g. a rect session folded with a dnf one). *)
