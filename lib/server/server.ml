let log_src = Logs.Src.create "delphic.server" ~doc:"estimation service"

module Log = (val Logs.src_log log_src : Logs.LOG)

type wal_config = {
  dir : string;
  fsync : Wal.fsync_policy;
  checkpoint_every : int;
  group : int; (* > 1: group commit via a dedicated writer domain *)
}

type t = {
  registry : Registry.t;
  clock : unit -> float;
  spool : string;
  listen_fd : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable stopping : bool;
  restored : (string * (unit, string) result) list;
  wal : (Wal.t * wal_config) option;
  generation : int;
  coord_epoch : int Atomic.t;
      (* highest coordinator fencing epoch ever announced on any connection;
         a mutation from a connection stamped lower is refused (FENCED) *)
  mutable checkpointing : bool; (* one checkpoint at a time; extras skip *)
  mutable ckpt_thread : Thread.t option; (* joined before the final spool *)
  mutable evg : Evgroup.t option; (* set once by [create]; never unset *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* A journal-less server still answers HELLO: the fence only compares
   generations for equality, so any value that differs across restarts of
   the same process slot works.  A collision would silently skip the
   coordinator's restart resync, so draw real entropy rather than hashing
   (pid, time) — 30 random bits from the OS, with the hash only as a
   fallback for hosts without /dev/urandom.  High bit keeps the value clear
   of journal generations, which count up from 1. *)
let ephemeral_generation () =
  let entropy =
    match open_in_bin "/dev/urandom" with
    | exception Sys_error _ -> None
    | ic ->
      let v =
        match really_input_string ic 4 with
        | s ->
          Some
            ((Char.code s.[0] lsl 24)
            lor (Char.code s.[1] lsl 16)
            lor (Char.code s.[2] lsl 8)
            lor Char.code s.[3])
        | exception End_of_file -> None
      in
      close_in_noerr ic;
      v
  in
  let entropy =
    match entropy with
    | Some v -> v
    | None -> Hashtbl.hash (Unix.getpid (), Unix.gettimeofday (), Sys.time ())
  in
  0x40000000 lor (entropy land 0x3FFFFFFF)

(* An ADD/ADDB without an explicit t= gets stamped here, at receive time,
   BEFORE dispatch and journaling — so the journal record carries the
   resolved timestamp and replay preserves window semantics.  Pre-timestamp
   journal records (and any stray untimestamped replayed line) resolve to
   t=0: all-history, never a spurious window hit. *)
let resolve_ts ~clock = function
  | Protocol.Add ({ ts = None; _ } as r) ->
    Protocol.Add { r with ts = Some (clock ()) }
  | Protocol.Add_batch ({ ts = None; _ } as r) ->
    Protocol.Add_batch { r with ts = Some (clock ()) }
  | Protocol.Add_log ({ ts = None; _ } as r) ->
    Protocol.Add_log { r with ts = Some (clock ()) }
  | req -> req

(* WAL recovery: load the last checkpoint (non-consuming — it must survive
   for the next crash), then re-drive the journal tail through the ordinary
   dispatch path.  Re-applied records double-count only counters; the
   estimators are unions, and unions are duplicate-insensitive.  Journals
   mix v1 text records with spliced binary v2 frames; [parse_frame_body]
   decodes both. *)
let recover_from_wal registry w =
  let restored = Registry.restore_all ~consume:false registry ~dir:(Wal.checkpoint_dir w) in
  List.iter
    (function
      | name, Ok () -> Log.info (fun m -> m "restored session %s from checkpoint" name)
      | name, Error msg ->
        Log.warn (fun m -> m "checkpointed session %s not restored: %s" name msg))
    restored;
  let replayed, cut =
    Wal.replay w ~f:(fun body ->
        match Protocol.parse_frame_body body with
        | Error e ->
          Log.warn (fun m -> m "journal record unparseable: %s" (Protocol.describe_error e))
        | Ok req -> (
          match Registry.dispatch registry (resolve_ts ~clock:(fun () -> 0.0) req) with
          | Protocol.Error_reply e ->
            (* OPENs for checkpointed sessions replay as SESSION-EXISTS and
               the like — expected, the record predates the checkpoint race
               window.  Keep them out of the default log level. *)
            Log.debug (fun m -> m "journal replay: %s" (Protocol.describe_error e))
          | _ -> ()))
  in
  (match cut with
  | Some reason -> Log.warn (fun m -> m "journal tail dropped: %s" reason)
  | None -> ());
  Log.info (fun m ->
      m "recovery: %d checkpointed sessions, %d journal records replayed (generation %d)"
        (List.length restored) replayed (Wal.generation w));
  restored

(* Which verbs go through the journal: the ones that change what a future
   EST would answer.  Reads, probes and server-side SNAPSHOT (its own file
   is the durability) stay out. *)
let journaled_request = function
  | Protocol.Open _ | Protocol.Add _ | Protocol.Add_batch _ | Protocol.Add_log _
  | Protocol.Merge _ | Protocol.Restore _ | Protocol.Close _ ->
    true
  | Protocol.Est _ | Protocol.Win _ | Protocol.Stats _ | Protocol.Snapshot _
  | Protocol.Fetch _ | Protocol.Expr _ | Protocol.Ping | Protocol.Hello
  | Protocol.Server_stats | Protocol.Coord_epoch _ | Protocol.Sessions
  | Protocol.Lease ->
    false

let mutation_succeeded = function
  | Protocol.Ok_reply _ | Protocol.Ok_batch _ -> true
  | _ -> false

let run_checkpoint t w cfg =
  let fsync = cfg.fsync <> Wal.Never in
  let outcomes =
    Wal.checkpoint w ~spool:(fun ~dir -> Registry.snapshot_all ~fsync t.registry ~dir)
  in
  List.iter
    (function
      | _, Ok _ -> ()
      | name, Error msg -> Log.err (fun m -> m "checkpoint: session %s not spooled: %s" name msg))
    outcomes

(* Periodic checkpoint.  The handler runs on the event-loop thread, where a
   multi-session fsync-ing spool would stall every connection — so the
   checkpoint is claimed here but runs on its own thread.  Registry and
   Wal are both safe against concurrent appends (that concurrency existed
   before: handler threads kept serving during a checkpoint). *)
let maybe_checkpoint t w cfg =
  if cfg.checkpoint_every > 0 && Wal.records_since_checkpoint w >= cfg.checkpoint_every
  then begin
    let claimed =
      with_lock t (fun () ->
          if t.checkpointing then false
          else begin
            t.checkpointing <- true;
            true
          end)
    in
    if claimed then begin
      let th =
        Thread.create
          (fun () ->
            Fun.protect
              ~finally:(fun () -> with_lock t (fun () -> t.checkpointing <- false))
              (fun () ->
                try run_checkpoint t w cfg
                with exn ->
                  Log.err (fun m -> m "checkpoint failed: %s" (Printexc.to_string exn))))
          ()
      in
      with_lock t (fun () -> t.ckpt_thread <- Some th)
    end
  end

(* Bare STATS: process-wide figures from the event-loop group and the
   journal's group-commit writer.  Like HELLO, answered here rather than in
   the registry, which has no process identity. *)
let server_stats t =
  let conns, shed, dispatched =
    match t.evg with
    | Some g -> (Evgroup.live_conns g, Evgroup.shed_count g, Array.to_list (Evgroup.dispatched g))
    | None -> (0, 0, [])
  in
  let wal_queue, wal_last_group, wal_groups =
    match t.wal with
    | Some (w, _) ->
      let s = Wal.group_stats w in
      (s.Wal.queue_depth, s.Wal.last_group, s.Wal.groups)
    | None -> (0, 0, 0)
  in
  Protocol.Server_stats_reply
    { conns; shed; dispatched; wal_queue; wal_last_group; wal_groups; shard_fresh = [] }

(* Highest-epoch-wins CAS: concurrent announces from several domains race,
   the max survives. *)
let rec bump_epoch cell e =
  let cur = Atomic.get cell in
  if e <= cur then cur
  else if Atomic.compare_and_set cell cur e then e
  else bump_epoch cell e

(* The deposed-primary write fence.  A connection that announced an epoch
   which has since been overtaken gets its mutations refused; connections
   that never announced (direct clients, pre-failover coordinators) are
   never fenced. *)
let fenced t (ctx : Evloop.ctx) req =
  ctx.Evloop.epoch > 0
  && ctx.Evloop.epoch < Atomic.get t.coord_epoch
  && journaled_request req

(* The per-request seam the event loop dispatches into.  [raw] is the exact
   v2 wire frame when there is one: if the request needed no server-side
   timestamp stamping, the journal record is that frame spliced verbatim
   ({!Wal.append_framed}) — zero re-render, zero re-CRC.  A stamped request
   changed bytes, so it re-encodes (still binary, still armor-free).

   Under group commit ([cfg.group > 1]) the append is asynchronous: the
   record goes to the writer domain's queue and the reply is {!Evloop.Gated}
   on the durability token, so the OK leaves the socket only after the
   record's bytes (and, under fsync always, the fsync) are behind it — the
   same journal-before-reply invariant, minus the per-record disk stall on
   the event-loop thread. *)
let handle_request t ~ctx ~proto ~raw ~body =
  let render = Protocol.render_response in
  let parsed =
    match proto with
    | Evloop.V2 -> Protocol.parse_frame_body body
    | Evloop.V1 -> Protocol.parse_request body
  in
  match parsed with
  | Error e -> Evloop.Reply (render (Protocol.Error_reply e))
  | Ok Protocol.Hello ->
    Evloop.Reply
      (render
         (Protocol.Hello_reply
            { generation = t.generation; epoch = Atomic.get t.coord_epoch }))
  | Ok Protocol.Server_stats -> Evloop.Reply (render (server_stats t))
  | Ok (Protocol.Coord_epoch { epoch }) ->
    (* Announce: stamp the connection, highest epoch wins process-wide.  An
       announce already overtaken is refused — the deposed primary learns it
       is fenced at the handshake, before staging any writes. *)
    let cur = Atomic.get t.coord_epoch in
    if epoch < cur then Evloop.Reply (render (Protocol.Error_reply (Protocol.Fenced cur)))
    else begin
      let now = bump_epoch t.coord_epoch epoch in
      ctx.Evloop.epoch <- epoch;
      Evloop.Reply (render (Protocol.Epoch_reply { epoch = now }))
    end
  | Ok req when fenced t ctx req ->
    Evloop.Reply
      (render (Protocol.Error_reply (Protocol.Fenced (Atomic.get t.coord_epoch))))
  | Ok req -> (
    let resolved = resolve_ts ~clock:t.clock req in
    match Registry.dispatch t.registry resolved with
    | resp -> (
      (* Journal the accepted mutation BEFORE the reply leaves: an OK the
         client saw is a record the journal holds.  A failed append turns
         the reply into an error — the mutation did land in memory, but
         re-driving it is duplicate-safe and honest about lost
         durability. *)
      match t.wal with
      | Some (w, cfg) when journaled_request resolved && mutation_succeeded resp -> (
        let record () =
          match proto with
          | Evloop.V2 when resolved == req && raw <> "" -> `Framed raw
          | Evloop.V2 -> `Body (Protocol.encode_request_v2 resolved)
          | Evloop.V1 -> `Body (Protocol.render_request resolved)
        in
        if cfg.group > 1 then begin
          match
            (match record () with
            | `Framed f -> Wal.append_framed_async w f
            | `Body b -> Wal.append_async w b)
          with
          | gate ->
            maybe_checkpoint t w cfg;
            Evloop.Gated
              {
                reply = render resp;
                on_fail =
                  render (Protocol.Error_reply (Protocol.Io_error "journal append failed"));
                gate;
              }
          | exception exn ->
            Log.err (fun m -> m "journal enqueue failed: %s" (Printexc.to_string exn));
            Evloop.Reply
              (render
                 (Protocol.Error_reply
                    (Protocol.Io_error ("journal append failed: " ^ Printexc.to_string exn))))
        end
        else
          match
            (match record () with
            | `Framed f -> Wal.append_framed w f
            | `Body b -> Wal.append w b)
          with
          | () ->
            maybe_checkpoint t w cfg;
            Evloop.Reply (render resp)
          | exception exn ->
            Log.err (fun m -> m "journal append failed: %s" (Printexc.to_string exn));
            Evloop.Reply
              (render
                 (Protocol.Error_reply
                    (Protocol.Io_error ("journal append failed: " ^ Printexc.to_string exn)))))
      | _ -> Evloop.Reply (render resp))
    | exception exn ->
      (* A handler crash must kill one request, not the server. *)
      Evloop.Reply (render (Protocol.Error_reply (Protocol.Server_error (Printexc.to_string exn)))))

let create ?(host = "127.0.0.1") ?(clock = Unix.gettimeofday) ?wal ?max_conns ?domains
    ~port ~spool ~seed () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 1024;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let registry = Registry.create ~clock ~seed () in
  let wal =
    Option.map (fun cfg -> (Wal.open_ ~dir:cfg.dir ~fsync:cfg.fsync, cfg)) wal
  in
  let restored =
    match wal with
    | Some (w, _) -> recover_from_wal registry w
    | None ->
      let restored = Registry.restore_all registry ~dir:spool in
      List.iter
        (function
          | name, Ok () -> Log.info (fun m -> m "restored session %s from spool" name)
          | name, Error msg ->
            Log.warn (fun m -> m "spooled session %s not restored: %s" name msg))
        restored;
      restored
  in
  let generation =
    match wal with Some (w, _) -> Wal.generation w | None -> ephemeral_generation ()
  in
  let t =
    {
      registry;
      clock;
      spool;
      listen_fd = fd;
      port;
      lock = Mutex.create ();
      stopping = false;
      restored;
      wal;
      generation;
      coord_epoch = Atomic.make 0;
      checkpointing = false;
      ckpt_thread = None;
      evg = None;
    }
  in
  let g =
    Evgroup.create ?max_conns ?domains ~listen_fd:fd
      ~handler:(fun ~ctx ~proto ~raw ~body -> handle_request t ~ctx ~proto ~raw ~body)
      ~on_bad_frame:(fun reason ->
        Some (Protocol.render_response (Protocol.Error_reply (Protocol.Io_error reason))))
      ()
  in
  t.evg <- Some g;
  (* group commit: the writer domain wakes every loop once a batch's
     durability tokens resolve, releasing the gated OK/OKB replies *)
  (match wal with
  | Some (w, cfg) when cfg.group > 1 ->
    Wal.start_writer w ~group:cfg.group ~on_durable:(fun () -> Evgroup.kick_all g)
  | _ -> ());
  t

let port t = t.port
let registry t = t.registry
let restored t = t.restored
let generation t = t.generation
let coord_epoch t = Atomic.get t.coord_epoch
let evg_exn t = match t.evg with Some g -> g | None -> assert false

let request_stop t =
  let fresh =
    with_lock t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if fresh then Evgroup.stop (evg_exn t)

(* SIGTERM gets the same graceful path as SIGINT: a supervisor's stop (or a
   container runtime's) must spool/checkpoint exactly like a ^C. *)
let install_signals t =
  List.iter
    (fun signum -> ignore (Sys.signal signum (Sys.Signal_handle (fun _ -> request_stop t))))
    [ Sys.sigint; Sys.sigterm ]

let install_sigint = install_signals

let serve t =
  Log.info (fun m ->
      m "listening on port %d (spool: %s, domains: %d)" t.port t.spool
        (Evgroup.domains (evg_exn t)));
  Evgroup.run (evg_exn t);
  with_lock t (fun () -> t.stopping <- true);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* an in-flight periodic checkpoint must finish before the journal closes *)
  (match with_lock t (fun () -> t.ckpt_thread) with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  let n_spooled =
    match t.wal with
    | Some (w, cfg) ->
      (* Graceful stop under a journal = one final checkpoint; the spool
         directory stays untouched (the checkpoint dir is the durable home).
         A failure here is survivable — the journal still holds the tail. *)
      let outcomes =
        try
          run_checkpoint t w cfg;
          Registry.names t.registry |> List.length
        with exn ->
          Log.err (fun m -> m "final checkpoint failed: %s" (Printexc.to_string exn));
          0
      in
      Wal.close w;
      outcomes
    | None ->
      let outcomes = Registry.snapshot_all t.registry ~dir:t.spool in
      List.iter
        (function
          | name, Ok path -> Log.info (fun m -> m "spooled session %s to %s" name path)
          | name, Error msg -> Log.err (fun m -> m "failed to spool session %s: %s" name msg))
        outcomes;
      List.length outcomes
  in
  Log.info (fun m -> m "server stopped (%d sessions spooled)" n_spooled)

let start t = Thread.create serve t
