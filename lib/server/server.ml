let log_src = Logs.Src.create "delphic.server" ~doc:"estimation service"

module Log = (val Logs.src_log log_src : Logs.LOG)

type wal_config = { dir : string; fsync : Wal.fsync_policy; checkpoint_every : int }

type t = {
  registry : Registry.t;
  clock : unit -> float;
  spool : string;
  listen_fd : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable handlers : Thread.t list;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  restored : (string * (unit, string) result) list;
  wal : (Wal.t * wal_config) option;
  generation : int;
  mutable checkpointing : bool;  (* one checkpoint at a time; extras skip *)
  (* Self-pipe: request_stop writes a byte so the accept loop's select wakes
     even when the stop request comes from a signal handler that ran on a
     thread other than the one blocked on the listening socket. *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* A journal-less server still answers HELLO: the fence only compares
   generations for equality, so any value that differs across restarts of
   the same process slot works.  A collision would silently skip the
   coordinator's restart resync, so draw real entropy rather than hashing
   (pid, time) — 30 random bits from the OS, with the hash only as a
   fallback for hosts without /dev/urandom.  High bit keeps the value clear
   of journal generations, which count up from 1. *)
let ephemeral_generation () =
  let entropy =
    match open_in_bin "/dev/urandom" with
    | exception Sys_error _ -> None
    | ic ->
      let v =
        match really_input_string ic 4 with
        | s ->
          Some
            ((Char.code s.[0] lsl 24)
            lor (Char.code s.[1] lsl 16)
            lor (Char.code s.[2] lsl 8)
            lor Char.code s.[3])
        | exception End_of_file -> None
      in
      close_in_noerr ic;
      v
  in
  let entropy =
    match entropy with
    | Some v -> v
    | None -> Hashtbl.hash (Unix.getpid (), Unix.gettimeofday (), Sys.time ())
  in
  0x40000000 lor (entropy land 0x3FFFFFFF)

(* An ADD/ADDB without an explicit t= gets stamped here, at receive time,
   BEFORE dispatch and journaling — so the journal record carries the
   resolved timestamp and replay preserves window semantics.  Pre-timestamp
   journal records (and any stray untimestamped replayed line) resolve to
   t=0: all-history, never a spurious window hit. *)
let resolve_ts ~clock = function
  | Protocol.Add ({ ts = None; _ } as r) ->
    Protocol.Add { r with ts = Some (clock ()) }
  | Protocol.Add_batch ({ ts = None; _ } as r) ->
    Protocol.Add_batch { r with ts = Some (clock ()) }
  | req -> req

(* WAL recovery: load the last checkpoint (non-consuming — it must survive
   for the next crash), then re-drive the journal tail through the ordinary
   dispatch path.  Re-applied records double-count only counters; the
   estimators are unions, and unions are duplicate-insensitive. *)
let recover_from_wal registry w =
  let restored = Registry.restore_all ~consume:false registry ~dir:(Wal.checkpoint_dir w) in
  List.iter
    (function
      | name, Ok () -> Log.info (fun m -> m "restored session %s from checkpoint" name)
      | name, Error msg ->
        Log.warn (fun m -> m "checkpointed session %s not restored: %s" name msg))
    restored;
  let replayed, cut =
    Wal.replay w ~f:(fun line ->
        match Protocol.parse_request line with
        | Error e ->
          Log.warn (fun m -> m "journal record unparseable: %s" (Protocol.describe_error e))
        | Ok req -> (
          match Registry.dispatch registry (resolve_ts ~clock:(fun () -> 0.0) req) with
          | Protocol.Error_reply e ->
            (* OPENs for checkpointed sessions replay as SESSION-EXISTS and
               the like — expected, the record predates the checkpoint race
               window.  Keep them out of the default log level. *)
            Log.debug (fun m -> m "journal replay: %s" (Protocol.describe_error e))
          | _ -> ()))
  in
  (match cut with
  | Some reason -> Log.warn (fun m -> m "journal tail dropped: %s" reason)
  | None -> ());
  Log.info (fun m ->
      m "recovery: %d checkpointed sessions, %d journal records replayed (generation %d)"
        (List.length restored) replayed (Wal.generation w));
  restored

let create ?(host = "127.0.0.1") ?(clock = Unix.gettimeofday) ?wal ~port ~spool ~seed () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let registry = Registry.create ~clock ~seed () in
  let wal =
    Option.map (fun cfg -> (Wal.open_ ~dir:cfg.dir ~fsync:cfg.fsync, cfg)) wal
  in
  let restored =
    match wal with
    | Some (w, _) -> recover_from_wal registry w
    | None ->
      let restored = Registry.restore_all registry ~dir:spool in
      List.iter
        (function
          | name, Ok () -> Log.info (fun m -> m "restored session %s from spool" name)
          | name, Error msg ->
            Log.warn (fun m -> m "spooled session %s not restored: %s" name msg))
        restored;
      restored
  in
  let generation =
    match wal with Some (w, _) -> Wal.generation w | None -> ephemeral_generation ()
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  {
    registry;
    clock;
    spool;
    listen_fd = fd;
    port;
    lock = Mutex.create ();
    stopping = false;
    handlers = [];
    conns = Hashtbl.create 16;
    restored;
    wal;
    generation;
    checkpointing = false;
    stop_r;
    stop_w;
  }

let port t = t.port
let registry t = t.registry
let restored t = t.restored
let generation t = t.generation

(* Which verbs go through the journal: the ones that change what a future
   EST would answer.  Reads, probes and server-side SNAPSHOT (its own file
   is the durability) stay out. *)
let journaled_request = function
  | Protocol.Open _ | Protocol.Add _ | Protocol.Add_batch _ | Protocol.Merge _
  | Protocol.Restore _ | Protocol.Close _ ->
    true
  | Protocol.Est _ | Protocol.Win _ | Protocol.Stats _ | Protocol.Snapshot _
  | Protocol.Fetch _ | Protocol.Expr _ | Protocol.Ping | Protocol.Hello ->
    false

let mutation_succeeded = function
  | Protocol.Ok_reply _ | Protocol.Ok_batch _ -> true
  | _ -> false

let run_checkpoint t w cfg =
  let fsync = cfg.fsync <> Wal.Never in
  let outcomes =
    Wal.checkpoint w ~spool:(fun ~dir -> Registry.snapshot_all ~fsync t.registry ~dir)
  in
  List.iter
    (function
      | _, Ok _ -> ()
      | name, Error msg -> Log.err (fun m -> m "checkpoint: session %s not spooled: %s" name msg))
    outcomes

(* Periodic checkpoint, claimed by whichever handler thread crosses the
   record threshold first; racers skip rather than re-spool. *)
let maybe_checkpoint t w cfg =
  if cfg.checkpoint_every > 0 && Wal.records_since_checkpoint w >= cfg.checkpoint_every
  then begin
    let claimed =
      with_lock t (fun () ->
          if t.checkpointing then false
          else begin
            t.checkpointing <- true;
            true
          end)
    in
    if claimed then
      Fun.protect
        ~finally:(fun () -> with_lock t (fun () -> t.checkpointing <- false))
        (fun () -> run_checkpoint t w cfg)
  end

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | exception End_of_file -> continue := false
       | line ->
         let response =
           match Protocol.parse_request line with
           | Error e -> Protocol.Error_reply e
           | Ok Protocol.Hello -> Protocol.Hello_reply { generation = t.generation }
           | Ok req -> (
             let req = resolve_ts ~clock:t.clock req in
             match Registry.dispatch t.registry req with
             | resp -> (
               (* Journal the accepted mutation BEFORE the reply leaves: an
                  OK the client saw is a record the journal holds.  A failed
                  append turns the reply into an error — the mutation did
                  land in memory, but re-driving it is duplicate-safe and
                  honest about lost durability. *)
               match t.wal with
               | Some (w, cfg) when journaled_request req && mutation_succeeded resp -> (
                 match Wal.append w (Protocol.render_request req) with
                 | () ->
                   maybe_checkpoint t w cfg;
                   resp
                 | exception exn ->
                   Log.err (fun m -> m "journal append failed: %s" (Printexc.to_string exn));
                   Protocol.Error_reply
                     (Protocol.Io_error ("journal append failed: " ^ Printexc.to_string exn)))
               | _ -> resp)
             | exception exn ->
               (* A handler crash must kill one request, not the server. *)
               Protocol.Error_reply (Protocol.Server_error (Printexc.to_string exn)))
         in
         output_string oc (Protocol.render_response response);
         output_char oc '\n';
         flush oc
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  with_lock t (fun () -> Hashtbl.remove t.conns fd);
  try Unix.close fd with Unix.Unix_error _ -> ()

let request_stop t =
  with_lock t (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        (* Wake the accept loop (it selects on the self-pipe alongside the
           listening socket; closing a socket another thread is blocked on
           does not reliably wake it); open connections are shut down so
           their input_line sees EOF. *)
        (try ignore (Unix.single_write_substring t.stop_w "x" 0 1)
         with Unix.Unix_error _ -> ());
        Hashtbl.iter
          (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          t.conns
      end)

(* SIGTERM gets the same graceful path as SIGINT: a supervisor's stop (or a
   container runtime's) must spool/checkpoint exactly like a ^C. *)
let install_signals t =
  List.iter
    (fun signum -> ignore (Sys.signal signum (Sys.Signal_handle (fun _ -> request_stop t))))
    [ Sys.sigint; Sys.sigterm ]

let install_sigint = install_signals

(* Handler threads run with SIGINT/SIGTERM blocked (the mask is inherited
   across Thread.create), so a process-directed stop signal is always
   delivered to the accept thread — whose select returns EINTR, runs the
   OCaml handler, and sees [stopping].  Without this, a signal landing on a
   handler thread that exits before reaching a safepoint is lost while
   accept stays blocked. *)
let spawn_handler t fd =
  let old_mask = Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ] in
  let th = Thread.create (fun () -> handle_connection t fd) () in
  ignore (Thread.sigmask Unix.SIG_SETMASK old_mask);
  th

let serve t =
  Log.info (fun m -> m "listening on port %d (spool: %s)" t.port t.spool);
  let rec accept_loop () =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ when t.stopping -> ()
      | ready, _, _ ->
        if t.stopping || List.mem t.stop_r ready then ()
        else if List.mem t.listen_fd ready then begin
          match Unix.accept t.listen_fd with
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                  | Unix.EWOULDBLOCK ),
                  _,
                  _ ) ->
            accept_loop ()
          | exception Unix.Unix_error _ when t.stopping -> ()
          | fd, _ ->
            with_lock t (fun () -> Hashtbl.replace t.conns fd ());
            let th = spawn_handler t fd in
            with_lock t (fun () -> t.handlers <- th :: t.handlers);
            accept_loop ()
        end
        else accept_loop ()
  in
  accept_loop ();
  request_stop t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* drain: join every handler that was ever spawned *)
  let handlers = with_lock t (fun () -> t.handlers) in
  List.iter (fun th -> try Thread.join th with _ -> ()) handlers;
  let n_spooled =
    match t.wal with
    | Some (w, cfg) ->
      (* Graceful stop under a journal = one final checkpoint; the spool
         directory stays untouched (the checkpoint dir is the durable home).
         A failure here is survivable — the journal still holds the tail. *)
      let outcomes =
        try run_checkpoint t w cfg; Registry.names t.registry |> List.length
        with exn ->
          Log.err (fun m -> m "final checkpoint failed: %s" (Printexc.to_string exn));
          0
      in
      Wal.close w;
      outcomes
    | None ->
      let outcomes = Registry.snapshot_all t.registry ~dir:t.spool in
      List.iter
        (function
          | name, Ok path -> Log.info (fun m -> m "spooled session %s to %s" name path)
          | name, Error msg -> Log.err (fun m -> m "failed to spool session %s: %s" name msg))
        outcomes;
      List.length outcomes
  in
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "server stopped (%d sessions spooled)" n_spooled)

let start t = Thread.create serve t
