let log_src = Logs.Src.create "delphic.server" ~doc:"estimation service"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  registry : Registry.t;
  spool : string;
  listen_fd : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable handlers : Thread.t list;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  restored : (string * (unit, string) result) list;
  (* Self-pipe: request_stop writes a byte so the accept loop's select wakes
     even when the stop request comes from a signal handler that ran on a
     thread other than the one blocked on the listening socket. *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(host = "127.0.0.1") ~port ~spool ~seed () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let registry = Registry.create ~seed () in
  let restored = Registry.restore_all registry ~dir:spool in
  List.iter
    (function
      | name, Ok () -> Log.info (fun m -> m "restored session %s from spool" name)
      | name, Error msg -> Log.warn (fun m -> m "spooled session %s not restored: %s" name msg))
    restored;
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  {
    registry;
    spool;
    listen_fd = fd;
    port;
    lock = Mutex.create ();
    stopping = false;
    handlers = [];
    conns = Hashtbl.create 16;
    restored;
    stop_r;
    stop_w;
  }

let port t = t.port
let registry t = t.registry
let restored t = t.restored

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | exception End_of_file -> continue := false
       | line ->
         let response =
           match Protocol.parse_request line with
           | Error e -> Protocol.Error_reply e
           | Ok req -> (
             match Registry.dispatch t.registry req with
             | resp -> resp
             | exception exn ->
               (* A handler crash must kill one request, not the server. *)
               Protocol.Error_reply (Protocol.Server_error (Printexc.to_string exn)))
         in
         output_string oc (Protocol.render_response response);
         output_char oc '\n';
         flush oc
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  with_lock t (fun () -> Hashtbl.remove t.conns fd);
  try Unix.close fd with Unix.Unix_error _ -> ()

let request_stop t =
  with_lock t (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        (* Wake the accept loop (it selects on the self-pipe alongside the
           listening socket; closing a socket another thread is blocked on
           does not reliably wake it); open connections are shut down so
           their input_line sees EOF. *)
        (try ignore (Unix.single_write_substring t.stop_w "x" 0 1)
         with Unix.Unix_error _ -> ());
        Hashtbl.iter
          (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          t.conns
      end)

let install_sigint t =
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop t)))

(* Handler threads run with SIGINT blocked (the mask is inherited across
   Thread.create), so a process-directed SIGINT is always delivered to the
   accept thread — whose select returns EINTR, runs the OCaml handler, and
   sees [stopping].  Without this, a SIGINT landing on a handler thread that
   exits before reaching a safepoint is lost while accept stays blocked. *)
let spawn_handler t fd =
  let old_mask = Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint ] in
  let th = Thread.create (fun () -> handle_connection t fd) () in
  ignore (Thread.sigmask Unix.SIG_SETMASK old_mask);
  th

let serve t =
  Log.info (fun m -> m "listening on port %d (spool: %s)" t.port t.spool);
  let rec accept_loop () =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ when t.stopping -> ()
      | ready, _, _ ->
        if t.stopping || List.mem t.stop_r ready then ()
        else if List.mem t.listen_fd ready then begin
          match Unix.accept t.listen_fd with
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                  | Unix.EWOULDBLOCK ),
                  _,
                  _ ) ->
            accept_loop ()
          | exception Unix.Unix_error _ when t.stopping -> ()
          | fd, _ ->
            with_lock t (fun () -> Hashtbl.replace t.conns fd ());
            let th = spawn_handler t fd in
            with_lock t (fun () -> t.handlers <- th :: t.handlers);
            accept_loop ()
        end
        else accept_loop ()
  in
  accept_loop ();
  request_stop t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* drain: join every handler that was ever spawned *)
  let handlers = with_lock t (fun () -> t.handlers) in
  List.iter (fun th -> try Thread.join th with _ -> ()) handlers;
  let outcomes = Registry.snapshot_all t.registry ~dir:t.spool in
  List.iter
    (function
      | name, Ok path -> Log.info (fun m -> m "spooled session %s to %s" name path)
      | name, Error msg -> Log.err (fun m -> m "failed to spool session %s: %s" name msg))
    outcomes;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "server stopped (%d sessions spooled)" (List.length outcomes))

let start t = Thread.create serve t
