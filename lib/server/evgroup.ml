let log_src = Logs.Src.create "delphic.evgroup" ~doc:"domain-sharded event loops"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Same C stubs as Evloop; externals link by C name, so redeclaring here
   costs nothing and keeps Evloop's internals private. *)
external fd_int : Unix.file_descr -> int = "%identity"
external poll_fds : int array -> int -> int array = "delphic_poll"

let ev_in = 1
let ev_err = 4

(* Cap the default at 8: past that the 16-stripe registry starts to
   contend, and the single acceptor dealing fds round-robin stops being
   the cheap part of the story. *)
let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

type t = {
  loops : Evloop.t array;
  shared : Evloop.shared;
  listen_fd : Unix.file_descr; (* accepted on by run's acceptor when sharded *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stop_flag : bool Atomic.t;
  mutable rr : int; (* round-robin cursor; acceptor thread only *)
}

let create ?(max_conns = 16384) ?(domains = 1) ~listen_fd ~handler ?on_bad_frame () =
  let domains = max 1 domains in
  let shared = Evloop.make_shared ~max_conns in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_r;
  Unix.set_nonblock stop_w;
  let loops =
    if domains = 1 then
      (* single-domain: the loop owns the listening socket and accepts
         itself — no handoff hop, the pre-sharding fast path *)
      [| Evloop.create ~shared ~listen_fd ~handler ?on_bad_frame () |]
    else
      Array.init domains (fun _ -> Evloop.create ~shared ~handler ?on_bad_frame ())
  in
  { loops; shared; listen_fd; stop_r; stop_w; stop_flag = Atomic.make false; rr = 0 }

let domains t = Array.length t.loops
let live_conns t = Evloop.live_conns t.shared
let shed_count t = Evloop.shed_count t.shared
let dispatched t = Array.map Evloop.dispatched t.loops
let kick_all t = Array.iter Evloop.kick t.loops

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (try ignore (Unix.single_write_substring t.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    Array.iter Evloop.stop t.loops
  end

(* Accept a burst and deal the fds round-robin across the loops; shedding
   happens here, before any loop spends cycles on the socket. *)
let accept_burst t =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      continue := false
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      Log.warn (fun m -> m "accept: out of file descriptors");
      continue := false
    | exception Unix.Unix_error _ -> continue := false
    | fd, _ ->
      if not (Evloop.try_admit t.shared) then begin
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        let i = t.rr in
        t.rr <- (i + 1) mod Array.length t.loops;
        Evloop.adopt t.loops.(i) fd
      end
  done

let drain_stop_pipe t =
  let b = Bytes.create 16 in
  let rec go () =
    match Unix.read t.stop_r b 0 16 with
    | _ -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let run t =
  if Array.length t.loops = 1 then Evloop.run t.loops.(0)
  else begin
    Unix.set_nonblock t.listen_fd;
    let doms =
      Array.map (fun loop -> Domain.spawn (fun () -> Evloop.run loop)) t.loops
    in
    let spec = [| fd_int t.stop_r; ev_in; fd_int t.listen_fd; ev_in |] in
    (while not (Atomic.get t.stop_flag) do
       let revents = poll_fds spec (-1) in
       if Array.length revents > 0 && revents.(0) land (ev_in lor ev_err) <> 0 then
         drain_stop_pipe t;
       if
         (not (Atomic.get t.stop_flag))
         && Array.length revents > 1
         && revents.(1) land (ev_in lor ev_err) <> 0
       then accept_burst t
     done);
    Array.iter Evloop.stop t.loops;
    Array.iter Domain.join doms
  end;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  try Unix.close t.stop_w with Unix.Unix_error _ -> ()
