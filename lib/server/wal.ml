let log_src = Logs.Src.create "delphic.wal" ~doc:"write-ahead journal"

module Log = (val Logs.src_log log_src : Logs.LOG)

type fsync_policy = Always | Interval of float | Never

let fsync_policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 0.2)
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
    let v = String.sub s 9 (String.length s - 9) in
    match float_of_string_opt v with
    | Some secs when secs > 0.0 -> Ok (Interval secs)
    | _ -> Error (Printf.sprintf "bad fsync interval %S" v))
  | _ -> Error (Printf.sprintf "unknown fsync policy %S (want always, interval[:secs] or never)" s)

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval secs -> Printf.sprintf "interval:%g" secs

(* Frame layout and CRC-32 live in [Frame], shared with wire protocol v2:
   the on-disk record and the v2 wire message are the same bytes. *)
let crc32 = Frame.crc32

(* Durability token of a group-committed record: the same 0/1/2 protocol as
   Evloop's reply gates (pending/done/failed), written once by the writer
   domain, read by event loops deciding whether a gated reply may flush. *)
type token = int Atomic.t

let token_pending = 0
let token_done = 1
let token_failed = 2

type pending = { framed : string; token : token }

type writer = {
  q : pending Queue.t; (* MPSC: loops push, the writer domain drains *)
  qm : Mutex.t;
  qc : Condition.t;
  group : int; (* max records coalesced into one write + fsync *)
  mutable wstop : bool;
  mutable dom : unit Domain.t option;
  on_durable : unit -> unit; (* called once per batch, after the tokens *)
  last_group : int Atomic.t;
  groups : int Atomic.t;
}

type t = {
  dir : string;
  mutable fd : Unix.file_descr; (* swapped when a checkpoint compacts the tail *)
  fsync : fsync_policy;
  lock : Mutex.t;
  ckpt_lock : Mutex.t; (* serialises whole checkpoints; taken before [lock] *)
  gen : int;
  mutable records : int; (* since the last checkpoint/truncate *)
  mutable last_sync : float;
  mutable dirty : bool; (* bytes written since the last fsync *)
  mutable closed : bool;
  mutable writer : writer option;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let with_ckpt_lock t f =
  Mutex.lock t.ckpt_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.ckpt_lock) f

(* Durability of metadata operations (rename, create, unlink) needs the
   parent directory flushed too — an fsynced file reachable only through an
   unsynced directory entry can vanish across a power cut. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal_path dir = Filename.concat dir "journal"
let generation_path dir = Filename.concat dir "generation"
let checkpoint_dir t = Filename.concat t.dir "checkpoint"

(* Bump-and-persist: read the last epoch, write epoch+1 via tmp + rename +
   fsync so a crash mid-update leaves either the old or the new number,
   never a torn one.  The fence only needs monotonicity, not contiguity. *)
let next_generation dir =
  let path = generation_path dir in
  let prev =
    match open_in path with
    | exception Sys_error _ -> 0
    | ic ->
      let g =
        match input_line ic with
        | line -> Option.value (int_of_string_opt (String.trim line)) ~default:0
        | exception End_of_file -> 0
      in
      close_in_noerr ic;
      g
  in
  let gen = prev + 1 in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let s = string_of_int gen ^ "\n" in
      ignore (Unix.write_substring fd s 0 (String.length s));
      Unix.fsync fd);
  Sys.rename tmp path;
  (* Without this the rename itself can be lost to a power cut: the next
     boot would reuse [prev], the coordinator's HELLO fence would see an
     unchanged generation and skip the resync a restart requires. *)
  fsync_dir dir;
  gen

let open_ ~dir ~fsync =
  mkdir_p dir;
  mkdir_p (Filename.concat dir "checkpoint");
  let gen = next_generation dir in
  let fd =
    Unix.openfile (journal_path dir) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  (* pin the journal's directory entry, in case openfile just created it *)
  fsync_dir dir;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  {
    dir;
    fd;
    fsync;
    lock = Mutex.create ();
    ckpt_lock = Mutex.create ();
    gen;
    records = 0;
    last_sync = Unix.gettimeofday ();
    dirty = false;
    closed = false;
    writer = None;
  }

let generation t = t.gen
let records_since_checkpoint t = t.records

let read_be32 = Frame.read_be32
let frame = Frame.frame

let maybe_fsync t =
  match t.fsync with
  | Never -> ()
  | Always ->
    Unix.fsync t.fd;
    t.dirty <- false
  | Interval secs ->
    let now = Unix.gettimeofday () in
    if now -. t.last_sync >= secs then begin
      Unix.fsync t.fd;
      t.last_sync <- now;
      t.dirty <- false
    end

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let append t body =
  (* Text records are one rendered request line and must stay newline-free;
     binary v2 bodies (leading '\x01', see Protocol.parse_frame_body) carry
     raw payload bytes and the length prefix is their only delimiter. *)
  if String.length body = 0 || body.[0] <> '\x01' then
    String.iter
      (fun c ->
        if c = '\n' || c = '\r' then invalid_arg "Wal.append: record contains a newline")
      body;
  with_lock t (fun () ->
      if t.closed then invalid_arg "Wal.append: journal closed";
      (* one write() per record: a kill -9 can tear only the record being
         written, and the tear is visible as a short or CRC-failing frame *)
      write_all t.fd (frame body);
      t.dirty <- true;
      t.records <- t.records + 1;
      maybe_fsync t)

let append_framed t framed =
  (* Zero-copy splice: [framed] is a complete wire frame (header + body)
     whose bytes go to disk verbatim — no re-render, no re-CRC.  Only the
     length field is sanity-checked; trusting a wrong CRC here would plant
     a record that truncates every future replay at this offset. *)
  let n = String.length framed in
  if n < 8 || read_be32 framed 0 <> n - 8 then
    invalid_arg "Wal.append_framed: not a whole frame";
  with_lock t (fun () ->
      if t.closed then invalid_arg "Wal.append_framed: journal closed";
      write_all t.fd framed;
      t.dirty <- true;
      t.records <- t.records + 1;
      maybe_fsync t)

(* ---- group commit ----

   One write() and at most one fsync() per *batch* instead of per record:
   event loops enqueue framed records on an MPSC queue and get back a
   durability token; a dedicated writer domain drains up to [group] entries,
   splices them into a single contiguous write under the journal lock,
   applies the fsync policy once, then resolves every token and calls
   [on_durable] (the server wires it to waking the event loops).  A token
   resolves to [token_done] only at the record's durability point — after
   the write, and under [Always] after the fsync too — so a reply gated on
   the token can never precede what a crash could lose.  The tear story is
   unchanged: a kill -9 mid-batch leaves a short or CRC-failing tail that
   replay truncates at the first bad frame. *)

let writer_loop t w =
  let buf = Buffer.create 65536 in
  let rec next () =
    Mutex.lock w.qm;
    while Queue.is_empty w.q && not w.wstop do
      Condition.wait w.qc w.qm
    done;
    if Queue.is_empty w.q then Mutex.unlock w.qm (* stopped and drained *)
    else begin
      let batch = ref [] in
      let k = ref 0 in
      while !k < w.group && not (Queue.is_empty w.q) do
        batch := Queue.pop w.q :: !batch;
        incr k
      done;
      Mutex.unlock w.qm;
      let batch = List.rev !batch in
      Buffer.clear buf;
      List.iter (fun p -> Buffer.add_string buf p.framed) batch;
      let ok =
        match
          with_lock t (fun () ->
              if t.closed then invalid_arg "Wal: group commit on closed journal";
              write_all t.fd (Buffer.contents buf);
              t.dirty <- true;
              t.records <- t.records + !k;
              maybe_fsync t)
        with
        | () -> true
        | exception exn ->
          Log.err (fun m -> m "group commit failed: %s" (Printexc.to_string exn));
          false
      in
      let verdict = if ok then token_done else token_failed in
      List.iter (fun p -> Atomic.set p.token verdict) batch;
      Atomic.set w.last_group !k;
      Atomic.incr w.groups;
      w.on_durable ();
      next ()
    end
  in
  next ()

let start_writer t ~group ~on_durable =
  match t.writer with
  | Some _ -> invalid_arg "Wal.start_writer: writer already running"
  | None ->
    let w =
      {
        q = Queue.create ();
        qm = Mutex.create ();
        qc = Condition.create ();
        group = max 1 group;
        wstop = false;
        dom = None;
        on_durable;
        last_group = Atomic.make 0;
        groups = Atomic.make 0;
      }
    in
    t.writer <- Some w;
    w.dom <- Some (Domain.spawn (fun () -> writer_loop t w))

let stop_writer t =
  match t.writer with
  | None -> ()
  | Some w ->
    t.writer <- None;
    Mutex.lock w.qm;
    w.wstop <- true;
    Condition.broadcast w.qc;
    Mutex.unlock w.qm;
    (* the loop drains everything already enqueued before exiting *)
    (match w.dom with Some d -> Domain.join d | None -> ())

let enqueue w framed =
  let token = Atomic.make token_pending in
  Mutex.lock w.qm;
  Queue.push { framed; token } w.q;
  Condition.signal w.qc;
  Mutex.unlock w.qm;
  token

let completed_token = Atomic.make token_done

let append_async t body =
  match t.writer with
  | Some w when not w.wstop ->
    if String.length body = 0 || body.[0] <> '\x01' then
      String.iter
        (fun c ->
          if c = '\n' || c = '\r' then invalid_arg "Wal.append_async: record contains a newline")
        body;
    enqueue w (frame body)
  | _ ->
    (* no writer (or shutting down): the synchronous path is the durability
       point, so the token comes back already resolved *)
    append t body;
    completed_token

let append_framed_async t framed =
  let n = String.length framed in
  if n < 8 || read_be32 framed 0 <> n - 8 then
    invalid_arg "Wal.append_framed_async: not a whole frame";
  match t.writer with
  | Some w when not w.wstop -> enqueue w framed
  | _ ->
    append_framed t framed;
    completed_token

type group_stats = { queue_depth : int; last_group : int; groups : int }

let group_stats t =
  match t.writer with
  | None -> { queue_depth = 0; last_group = 0; groups = 0 }
  | Some w ->
    Mutex.lock w.qm;
    let queue_depth = Queue.length w.q in
    Mutex.unlock w.qm;
    { queue_depth; last_group = Atomic.get w.last_group; groups = Atomic.get w.groups }

let read_whole fd =
  let len = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let buf = Bytes.create len in
  let off = ref 0 in
  (try
     while !off < len do
       match Unix.read fd buf !off (len - !off) with
       | 0 -> raise Exit
       | k -> off := !off + k
     done
   with Exit -> ());
  Bytes.sub_string buf 0 !off

let replay t ~f =
  with_lock t (fun () ->
      let data = read_whole t.fd in
      let n = String.length data in
      let pos = ref 0 in
      let replayed = ref 0 in
      let cut = ref None in
      (try
         while !pos < n && !cut = None do
           if n - !pos < 8 then
             cut := Some (Printf.sprintf "torn header at byte %d (%d trailing bytes)" !pos (n - !pos))
           else begin
             let len = read_be32 data !pos in
             let crc = read_be32 data (!pos + 4) in
             if len < 0 || !pos + 8 + len > n then
               cut :=
                 Some
                   (Printf.sprintf "torn record at byte %d (%d of %d body bytes present)"
                      !pos (n - !pos - 8) len)
             else begin
               let body = String.sub data (!pos + 8) len in
               if crc32 body <> crc then
                 cut := Some (Printf.sprintf "CRC mismatch at byte %d" !pos)
               else begin
                 f body;
                 incr replayed;
                 pos := !pos + 8 + len
               end
             end
           end
         done
       with exn ->
         (* [f] raised: keep the journal intact past this record and rethrow *)
         ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
         raise exn);
      (match !cut with
      | None -> ()
      | Some reason ->
        Log.warn (fun m -> m "journal truncated: %s" reason);
        Unix.ftruncate t.fd !pos;
        if t.fsync <> Never then Unix.fsync t.fd);
      ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
      t.records <- !replayed;
      (!replayed, !cut))

(* Delete checkpoint files for sessions not in [live]: a .snap left behind
   by a since-CLOSEd session would be resurrected by the next recovery once
   the journal truncation retires its CLOSE record.  Spool temporaries from
   an interrupted earlier checkpoint go too — Snapshot_io writes via
   tmp+rename, so a bare .tmp is never the only copy of anything. *)
let prune_stale_snapshots t ~live =
  let dir = checkpoint_dir t in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | files ->
    let pruned = ref 0 in
    Array.iter
      (fun f ->
        let stale =
          if Filename.check_suffix f ".tmp" then true
          else
            Filename.check_suffix f ".snap"
            && not (List.mem (Filename.chop_suffix f ".snap") live)
        in
        if stale then begin
          (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          incr pruned;
          Log.info (fun m -> m "checkpoint: pruned stale %s" f)
        end)
      files;
    if !pruned > 0 && t.fsync <> Never then fsync_dir dir

(* Retire journal bytes [0, boundary): the checkpoint just written covers
   them.  With no appends past the boundary this is a plain truncate;
   otherwise the tail is copied into a fresh file that atomically replaces
   the journal, so a crash at any point leaves either the whole old journal
   (a wider, duplicate-safe replay) or exactly the tail — never a torn
   middle.  Caller holds the journal lock. *)
let retire_prefix t ~boundary =
  let size = (Unix.fstat t.fd).Unix.st_size in
  if size <= boundary then begin
    Unix.ftruncate t.fd 0;
    ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
    if t.fsync <> Never then begin
      Unix.fsync t.fd;
      t.dirty <- false
    end
  end
  else begin
    let tail_len = size - boundary in
    ignore (Unix.lseek t.fd boundary Unix.SEEK_SET);
    let tail = Bytes.create tail_len in
    let off = ref 0 in
    (try
       while !off < tail_len do
         match Unix.read t.fd tail !off (tail_len - !off) with
         | 0 -> raise Exit
         | k -> off := !off + k
       done
     with Exit -> ());
    let tail = Bytes.sub_string tail 0 !off in
    let path = journal_path t.dir in
    let tmp = path ^ ".compact" in
    let nfd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    (match write_all nfd tail with
    | () -> ()
    | exception exn ->
      (try Unix.close nfd with Unix.Unix_error _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
      raise exn);
    if t.fsync <> Never then Unix.fsync nfd;
    Sys.rename tmp path;
    if t.fsync <> Never then fsync_dir t.dir;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.fd <- nfd;
    ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
    t.dirty <- t.fsync = Never
  end

let checkpoint t ~spool =
  (* The journal lock is held only to capture the spool boundary and, after
     the spool, to retire the spooled prefix — never across the
     multi-session spool itself, which can run for long enough (per-file
     fsync, many sessions) that stalling every concurrent [append] inside it
     would be a periodic full-service write pause.  Appends landing during
     the spool stay in the kept tail; replaying one whose effect the
     checkpoint already captured is safe — union replay is
     duplicate-insensitive.  [ckpt_lock] keeps whole checkpoints mutually
     exclusive so two spools never interleave their prune/retire steps. *)
  with_ckpt_lock t (fun () ->
      let boundary, records_at_boundary =
        with_lock t (fun () ->
            if t.closed then invalid_arg "Wal.checkpoint: journal closed";
            (* the boundary must be on disk before the checkpoint may
               retire it *)
            if t.dirty && t.fsync <> Never then begin
              Unix.fsync t.fd;
              t.dirty <- false
            end;
            ((Unix.fstat t.fd).Unix.st_size, t.records))
      in
      let outcomes = spool ~dir:(checkpoint_dir t) in
      let all_ok = List.for_all (fun (_, r) -> Result.is_ok r) outcomes in
      if all_ok then
        with_lock t (fun () ->
            if not t.closed then begin
              prune_stale_snapshots t ~live:(List.map fst outcomes);
              retire_prefix t ~boundary;
              t.records <- t.records - records_at_boundary
            end)
      else
        Log.warn (fun m ->
            m "checkpoint incomplete (%d sessions failed to spool); journal kept"
              (List.length (List.filter (fun (_, r) -> Result.is_error r) outcomes)));
      outcomes)

let close t =
  (* drain and join the group-commit writer first: every enqueued record
     reaches the file (and its token resolves) before the final fsync *)
  stop_writer t;
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (if t.dirty && t.fsync <> Never then
           try Unix.fsync t.fd with Unix.Unix_error _ -> ());
        try Unix.close t.fd with Unix.Unix_error _ -> ()
      end)
