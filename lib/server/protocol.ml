module Expr_ast = Delphic_expr.Expr

type family =
  | Rect
  | Dnf of { nvars : int }
  | Cov of { nbits : int; strength : int }

type request =
  | Open of {
      session : string;
      family : family;
      epsilon : float;
      delta : float;
      log2_universe : float;
    }
  | Add of { session : string; payload : string; ts : float option }
  | Add_batch of { session : string; payloads : string list; ts : float option }
  | Add_log of { session : string; payloads : string list; ts : float option }
      (* The replica-log twin of [Add_batch]: the receiver appends the
         payloads to the session's pending log and acks without updating
         the estimator — materialisation happens on the first read or on
         promotion.  Coordinators send backup copies this way so a replica
         costs an append, not a full estimator update, on the ingest path. *)
  | Est of { session : string }
  | Win of { session : string; seconds : float; at : float option }
  | Stats of { session : string }
  | Snapshot of { session : string; path : string }
  | Restore of { session : string; path : string }
  | Fetch of { session : string; cutoff : float option }
  | Merge of { session : string; encoded : string }
  | Close of { session : string }
  | Expr of { expr : Expr_ast.t; m : int option; w : float option }
  | Ping
  | Hello
  | Server_stats
  | Coord_epoch of { epoch : int }
  | Sessions
  | Lease

type error =
  | Empty_request
  | Unknown_command of string
  | Wrong_arity of { command : string; expected : string }
  | Bad_number of { what : string; value : string }
  | Bad_family of string
  | Bad_session_name of string
  | Unknown_session of string
  | Session_exists of string
  | Bad_params of string
  | Bad_expr of { pos : int; msg : string }
  | Bad_line of { line : int; msg : string }
  | Io_error of string
  | Server_error of string
  | Fenced of int
  | Read_only of string

type stats = {
  family : string;
  items : int;
  entries : int;
  exact : bool;
  last_estimate : float;
  parse_rejects : int;
  merges : int;
}

type expr_quality = Probes_exact | Probes_sketch

(* Process-wide figures for the bare STATS verb: how the sharded front end
   and the group-commit journal are actually doing.  [dispatched] is
   per-domain, index-aligned with the acceptor's round-robin order. *)
type server_stats = {
  conns : int;
  shed : int;
  dispatched : int list;
  wal_queue : int;
  wal_last_group : int;
  wal_groups : int;
  shard_fresh : int list;
}

type session_desc = {
  sd_name : string;
  sd_family : string;
  sd_epsilon : float;
  sd_delta : float;
  sd_log2_universe : float;
}

type response =
  | Ok_reply of string option
  | Ok_batch of { accepted : int; errors : (int * string) list }
  | Estimate of { value : float; degraded : bool; stale_shards : int list }
  | Expr_reply of {
      value : float option;
      support : float;
      needed : float;
      samples : int;
      quality : expr_quality;
      degraded : bool;
    }
  | Stats_reply of stats
  | Sketch of string
  | Pong
  | Hello_reply of { generation : int; epoch : int }
  | Server_stats_reply of server_stats
  | Epoch_reply of { epoch : int }
  | Sessions_reply of session_desc list
  | Lease_reply of { epoch : int; primary : bool }
  | Error_reply of error

let session_name_ok name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true | _ -> false)
       name

let family_to_token = function
  | Rect -> "rect"
  | Dnf { nvars } -> Printf.sprintf "dnf:%d" nvars
  | Cov { nbits; strength } -> Printf.sprintf "cov:%d:%d" nbits strength

let family_of_token token =
  match String.split_on_char ':' token with
  | [ "rect" ] -> Ok Rect
  | [ "dnf"; n ] -> (
    match int_of_string_opt n with
    | Some nvars when nvars > 0 -> Ok (Dnf { nvars })
    | _ -> Error (Bad_family token))
  | [ "cov"; n; t ] -> (
    match (int_of_string_opt n, int_of_string_opt t) with
    | Some nbits, Some strength when nbits > 0 && strength > 0 && strength <= nbits ->
      Ok (Cov { nbits; strength })
    | _ -> Error (Bad_family token))
  | _ -> Error (Bad_family token)

(* 17 significant digits round-trip any double through float_of_string. *)
let float_out = Printf.sprintf "%.17g"

let ( let* ) = Result.bind

let chop_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* First token and the remainder (trimmed); "" when exhausted. *)
let cut line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.trim (String.sub line (i + 1) (String.length line - i - 1)))

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* Batch payload armor: the same four-character percent-escape as the v2
   sketch wire form (Snapshot_io.to_wire), so an arbitrary set line rides
   inside an ADDB frame as one space-free token. *)
let armor_payload payload =
  let n = String.length payload in
  let extra = ref 0 in
  String.iter
    (function '%' | ' ' | '\n' | '\r' -> extra := !extra + 2 | _ -> ())
    payload;
  if !extra = 0 then payload
  else begin
    let buf = Buffer.create (n + !extra) in
    String.iter
      (fun c ->
        match c with
        | '%' -> Buffer.add_string buf "%25"
        | ' ' -> Buffer.add_string buf "%20"
        | '\n' -> Buffer.add_string buf "%0A"
        | '\r' -> Buffer.add_string buf "%0D"
        | c -> Buffer.add_char buf c)
      payload;
    Buffer.contents buf
  end

let unarmor_payload token =
  let n = String.length token in
  if not (String.contains token '%') then
    if String.contains token ' ' then Error "unescaped space in payload token"
    else Ok token
  else begin
    let buf = Buffer.create n in
    let rec unescape i =
      if i >= n then Ok (Buffer.contents buf)
      else if token.[i] = '%' then
        if i + 2 >= n then Error "truncated percent-escape in payload token"
        else
          match String.sub token (i + 1) 2 with
          | "25" -> Buffer.add_char buf '%'; unescape (i + 3)
          | "20" -> Buffer.add_char buf ' '; unescape (i + 3)
          | "0A" -> Buffer.add_char buf '\n'; unescape (i + 3)
          | "0D" -> Buffer.add_char buf '\r'; unescape (i + 3)
          | esc -> Error (Printf.sprintf "unknown payload escape %%%s" esc)
      else if token.[i] = ' ' then Error "unescaped space in payload token"
      else begin
        Buffer.add_char buf token.[i];
        unescape (i + 1)
      end
    in
    unescape 0
  end

let parse_session name =
  if session_name_ok name then Ok name else Error (Bad_session_name name)

let parse_float ~what value =
  match float_of_string_opt value with
  | Some f -> Ok f
  | None -> Error (Bad_number { what; value })

let parse_request line =
  let line = chop_cr line in
  let verb, rest = cut line in
  if verb = "" then Error Empty_request
  else
    match String.uppercase_ascii verb with
    | "PING" -> if rest = "" then Ok Ping else Error (Wrong_arity { command = "PING"; expected = "PING" })
    | "HELLO" ->
      if rest = "" then Ok Hello
      else Error (Wrong_arity { command = "HELLO"; expected = "HELLO" })
    | "COORD" -> (
      match int_of_string_opt rest with
      | Some epoch when epoch > 0 -> Ok (Coord_epoch { epoch })
      | _ -> Error (Bad_number { what = "epoch"; value = rest }))
    | "SESSIONS" ->
      if rest = "" then Ok Sessions
      else Error (Wrong_arity { command = "SESSIONS"; expected = "SESSIONS" })
    | "LEASE" ->
      if rest = "" then Ok Lease
      else Error (Wrong_arity { command = "LEASE"; expected = "LEASE" })
    | "OPEN" -> (
      match tokens rest with
      | [ session; family; eps; delta; log2u ] ->
        let* session = parse_session session in
        let* family = family_of_token family in
        let* epsilon = parse_float ~what:"epsilon" eps in
        let* delta = parse_float ~what:"delta" delta in
        let* log2_universe = parse_float ~what:"log2-universe" log2u in
        Ok (Open { session; family; epsilon; delta; log2_universe })
      | _ ->
        Error
          (Wrong_arity
             { command = "OPEN"; expected = "OPEN <session> <family> <eps> <delta> <log2u>" }))
    | "ADD" ->
      let session, payload = cut rest in
      if session = "" || payload = "" then
        Error (Wrong_arity { command = "ADD"; expected = "ADD <session> [t=<secs>] <set-line>" })
      else
        let* session = parse_session session in
        (* Optional t=<secs> right after the session: no family line format
           starts with "t=", so the prefix is unambiguous. *)
        let* ts, payload =
          let tok, after = cut payload in
          if String.length tok > 2 && String.sub tok 0 2 = "t=" then
            let v = String.sub tok 2 (String.length tok - 2) in
            match float_of_string_opt v with
            | Some ts -> Ok (Some ts, after)
            | None -> Error (Bad_number { what = "timestamp"; value = v })
          else Ok (None, payload)
        in
        if payload = "" then
          Error (Wrong_arity { command = "ADD"; expected = "ADD <session> [t=<secs>] <set-line>" })
        else Ok (Add { session; payload; ts })
    | ("ADDB" | "ADDL") as batch_verb -> (
      let expected =
        Printf.sprintf "%s <session> [t=<secs>] <k> <payload-token>{k}" batch_verb
      in
      match tokens rest with
      | session :: more ->
        let* session = parse_session session in
        let* ts, more =
          match more with
          | tok :: after when String.length tok > 2 && String.sub tok 0 2 = "t=" -> (
            let v = String.sub tok 2 (String.length tok - 2) in
            match float_of_string_opt v with
            | Some ts -> Ok (Some ts, after)
            | None -> Error (Bad_number { what = "timestamp"; value = v }))
          | _ -> Ok (None, more)
        in
        (match more with
        | k :: toks ->
          let* k =
            match int_of_string_opt k with
            | Some k when k > 0 -> Ok k
            | _ -> Error (Bad_number { what = "batch-size"; value = k })
          in
          if List.length toks <> k then
            Error (Wrong_arity { command = batch_verb; expected })
          else
            let rec unarmor i acc = function
              | [] -> Ok (List.rev acc)
              | tok :: rest -> (
                match unarmor_payload tok with
                | Ok payload -> unarmor (i + 1) (payload :: acc) rest
                | Error msg -> Error (Bad_line { line = i; msg }))
            in
            let* payloads = unarmor 0 [] toks in
            if batch_verb = "ADDL" then Ok (Add_log { session; payloads; ts })
            else Ok (Add_batch { session; payloads; ts })
        | [] -> Error (Wrong_arity { command = batch_verb; expected }))
      | _ -> Error (Wrong_arity { command = batch_verb; expected }))
    | "WIN" -> (
      let expected = "WIN <session> <seconds> [at=<abs-secs>]" in
      match tokens rest with
      | session :: secs :: opt ->
        let* session = parse_session session in
        let* seconds =
          (* "inf" is admitted: WIN <sid> inf must agree with EST <sid>. *)
          match float_of_string_opt secs with
          | Some s when s > 0.0 -> Ok s
          | _ -> Error (Bad_number { what = "window-seconds"; value = secs })
        in
        let* at =
          match opt with
          | [] -> Ok None
          | [ tok ] when String.length tok > 3 && String.sub tok 0 3 = "at=" -> (
            let v = String.sub tok 3 (String.length tok - 3) in
            match float_of_string_opt v with
            | Some a -> Ok (Some a)
            | None -> Error (Bad_number { what = "at"; value = v }))
          | _ -> Error (Wrong_arity { command = "WIN"; expected })
        in
        Ok (Win { session; seconds; at })
      | _ -> Error (Wrong_arity { command = "WIN"; expected }))
    | "EST" | "STATS" | "CLOSE" -> (
      let command = String.uppercase_ascii verb in
      match tokens rest with
      | [ session ] ->
        let* session = parse_session session in
        Ok
          (match command with
          | "EST" -> Est { session }
          | "STATS" -> Stats { session }
          | _ -> Close { session })
      (* Bare STATS is the process-wide form: conns, sheds, per-domain
         dispatch balance, WAL group-commit figures. *)
      | [] when command = "STATS" -> Ok Server_stats
      | _ ->
        Error
          (Wrong_arity
             {
               command;
               expected =
                 (if command = "STATS" then "STATS [<session>]"
                  else command ^ " <session>");
             }))
    | "SNAPSHOT" ->
      (* One token: return the wire-encoded sketch inline (the cluster
         gather).  A cut=<abs-secs> second token is a windowed fetch — the
         coordinator computes the absolute cutoff once and ships it so every
         replica expires against the same instant.  Any other second token
         persists to a server-side file, as in v1 (a path literally named
         "cut=..." needs a ./ prefix). *)
      let session, path = cut rest in
      if session = "" then
        Error
          (Wrong_arity { command = "SNAPSHOT"; expected = "SNAPSHOT <session> [cut=<abs-secs>] [<path>]" })
      else
        let* session = parse_session session in
        if path = "" then Ok (Fetch { session; cutoff = None })
        else if String.length path > 4 && String.sub path 0 4 = "cut=" then
          let v = String.sub path 4 (String.length path - 4) in
          match float_of_string_opt v with
          | Some c -> Ok (Fetch { session; cutoff = Some c })
          | None -> Error (Bad_number { what = "cutoff"; value = v })
        else Ok (Snapshot { session; path })
    | "RESTORE" ->
      let session, path = cut rest in
      if session = "" || path = "" then
        Error (Wrong_arity { command = "RESTORE"; expected = "RESTORE <session> <path>" })
      else
        let* session = parse_session session in
        Ok (Restore { session; path })
    | "MERGE" -> (
      match tokens rest with
      | [ session; encoded ] ->
        let* session = parse_session session in
        Ok (Merge { session; encoded })
      | _ ->
        Error (Wrong_arity { command = "MERGE"; expected = "MERGE <session> <wire-snapshot>" }))
    | "EXPR" ->
      (* Leading <key>=<value> option tokens before the expression body;
         '=' never occurs in a valid expression (session names are
         [A-Za-z0-9_.-], operators are "& | \ ^ ( )"), so the prefix is
         unambiguous.  A malformed or unknown option is reported with the
         offending token and its 1-based column in the argument text — the
         same style the expression parser uses for its own errors. *)
      let expected = "EXPR [m=<samples>] [w=<seconds>] <expression>" in
      let n = String.length rest in
      let rec skip_spaces i = if i < n && rest.[i] = ' ' then skip_spaces (i + 1) else i in
      let is_option tok =
        match String.index_opt tok '=' with
        | Some k ->
          k > 0 && String.for_all (function 'a' .. 'z' -> true | _ -> false) (String.sub tok 0 k)
        | None -> false
      in
      let rec options i m w =
        let i = skip_spaces i in
        if i >= n then Ok (m, w, "")
        else
          let j = match String.index_from_opt rest i ' ' with Some j -> j | None -> n in
          let tok = String.sub rest i (j - i) in
          if not (is_option tok) then Ok (m, w, String.sub rest i (n - i))
          else begin
            let pos = i + 1 in
            let k = String.index tok '=' in
            let key = String.sub tok 0 k in
            let v = String.sub tok (k + 1) (String.length tok - k - 1) in
            match key with
            | "m" -> (
              match int_of_string_opt v with
              | Some s when s > 0 -> options j (Some s) w
              | _ ->
                Error
                  (Bad_expr
                     { pos; msg = Printf.sprintf "option m=: not a positive sample count: %S" v }))
            | "w" -> (
              match float_of_string_opt v with
              | Some s when s > 0.0 -> options j m (Some s)
              | _ ->
                Error
                  (Bad_expr
                     { pos; msg = Printf.sprintf "option w=: not a positive window in seconds: %S" v }))
            | _ ->
              Error
                (Bad_expr
                   {
                     pos;
                     msg =
                       Printf.sprintf "unknown option %S (want m=<samples> or w=<seconds>)" tok;
                   })
          end
      in
      let* m, w, body = options 0 None None in
      if body = "" then Error (Wrong_arity { command = "EXPR"; expected })
      else (
        match Delphic_stream.Parsers.expr_of_string body with
        | expr -> Ok (Expr { expr; m; w })
        | exception Delphic_stream.Parsers.Parse_error { line; msg } ->
          Error (Bad_expr { pos = line; msg }))
    | _ -> Error (Unknown_command verb)

let render_request = function
  | Open { session; family; epsilon; delta; log2_universe } ->
    Printf.sprintf "OPEN %s %s %s %s %s" session (family_to_token family) (float_out epsilon)
      (float_out delta) (float_out log2_universe)
  | Add { session; payload; ts } ->
    (match ts with
    | None -> Printf.sprintf "ADD %s %s" session payload
    | Some t -> Printf.sprintf "ADD %s t=%s %s" session (float_out t) payload)
  | (Add_batch { session; payloads; ts } | Add_log { session; payloads; ts }) as req ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf (match req with Add_log _ -> "ADDL " | _ -> "ADDB ");
    Buffer.add_string buf session;
    (match ts with
    | None -> ()
    | Some t ->
      Buffer.add_string buf " t=";
      Buffer.add_string buf (float_out t));
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int (List.length payloads));
    List.iter
      (fun p ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (armor_payload p))
      payloads;
    Buffer.contents buf
  | Est { session } -> "EST " ^ session
  | Win { session; seconds; at } ->
    Printf.sprintf "WIN %s %s%s" session (float_out seconds)
      (match at with None -> "" | Some a -> " at=" ^ float_out a)
  | Stats { session } -> "STATS " ^ session
  | Snapshot { session; path } -> Printf.sprintf "SNAPSHOT %s %s" session path
  | Restore { session; path } -> Printf.sprintf "RESTORE %s %s" session path
  | Fetch { session; cutoff } ->
    (match cutoff with
    | None -> "SNAPSHOT " ^ session
    | Some c -> Printf.sprintf "SNAPSHOT %s cut=%s" session (float_out c))
  | Merge { session; encoded } -> Printf.sprintf "MERGE %s %s" session encoded
  | Close { session } -> "CLOSE " ^ session
  | Expr { expr; m; w } ->
    "EXPR "
    ^ (match m with Some n -> Printf.sprintf "m=%d " n | None -> "")
    ^ (match w with Some s -> Printf.sprintf "w=%s " (float_out s) | None -> "")
    ^ Expr_ast.to_string expr
  | Ping -> "PING"
  | Hello -> "HELLO"
  | Server_stats -> "STATS"
  | Coord_epoch { epoch } -> "COORD " ^ string_of_int epoch
  | Sessions -> "SESSIONS"
  | Lease -> "LEASE"

(* ---- wire protocol v2 binary bodies ----

   A v2 frame body is either a v1 text line (any body whose first byte is
   not '\x01' — verbs are ASCII letters) or a binary record tagged '\x01'.
   Only the batched add verbs get a binary shape: they are the hot path,
   and their cost under v1 is exactly the %-armoring/unarmoring plus
   whitespace tokenization of a many-token line.  Binary ADDB — and its
   replica-log twin ADDL, identical but for the tag byte — is

     '\x01' 'B'|'L' | u16 slen | session | u8 has_ts | [f64 ts] | u32 k
                    | k × (u32 len | payload)

   all integers big-endian, the timestamp IEEE-754 bits via
   [Int64.bits_of_float].  Payload bytes are raw — newlines, '%', 0xFF all
   pass untouched, which is what makes the encode/decode near-free. *)

let binary_tag = '\x01'

let encode_request_v2 = function
  | (Add_batch { session; payloads; ts } | Add_log { session; payloads; ts }) as req ->
    let buf = Buffer.create 256 in
    Buffer.add_char buf binary_tag;
    Buffer.add_char buf (match req with Add_log _ -> 'L' | _ -> 'B');
    let slen = String.length session in
    Buffer.add_char buf (Char.chr ((slen lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (slen land 0xFF));
    Buffer.add_string buf session;
    (match ts with
    | None -> Buffer.add_char buf '\x00'
    | Some t ->
      Buffer.add_char buf '\x01';
      let bits = Int64.bits_of_float t in
      for i = 7 downto 0 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (i * 8)) 0xFFL)))
      done);
    Frame.be32 buf (List.length payloads);
    List.iter
      (fun p ->
        Frame.be32 buf (String.length p);
        Buffer.add_string buf p)
      payloads;
    Buffer.contents buf
  | req -> render_request req

(* The pooled-buffer twin of [encode_request_v2]: encodes into a reusable
   {!Frame.sink} so the per-request [Buffer.create]/[Buffer.contents]
   string churn disappears from the client hot path ([Rpc.stage] frames
   straight out of the sink with [Frame.frame_sink_into]).  Byte-for-byte
   identical output to [encode_request_v2]. *)
let encode_request_v2_sink sink req =
  Frame.sink_clear sink;
  match req with
  | (Add_batch { session; payloads; ts } | Add_log { session; payloads; ts }) as req ->
    Frame.sink_char sink binary_tag;
    Frame.sink_char sink (match req with Add_log _ -> 'L' | _ -> 'B');
    let slen = String.length session in
    Frame.sink_char sink (Char.chr ((slen lsr 8) land 0xFF));
    Frame.sink_char sink (Char.chr (slen land 0xFF));
    Frame.sink_string sink session;
    (match ts with
    | None -> Frame.sink_char sink '\x00'
    | Some t ->
      Frame.sink_char sink '\x01';
      let bits = Int64.bits_of_float t in
      for i = 7 downto 0 do
        Frame.sink_char sink
          (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (i * 8)) 0xFFL)))
      done);
    Frame.sink_be32 sink (List.length payloads);
    List.iter
      (fun p ->
        Frame.sink_be32 sink (String.length p);
        Frame.sink_string sink p)
      payloads
  | req -> Frame.sink_string sink (render_request req)

exception Binary_trunc

let parse_binary body =
  let n = String.length body in
  let pos = ref 2 in
  let need k = if n - !pos < k then raise Binary_trunc in
  let u8 () =
    need 1;
    let v = Char.code body.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    need 2;
    let v = (Char.code body.[!pos] lsl 8) lor Char.code body.[!pos + 1] in
    pos := !pos + 2;
    v
  in
  let u32 () =
    need 4;
    let v = Frame.read_be32 body !pos in
    pos := !pos + 4;
    v
  in
  let str len =
    need len;
    let s = String.sub body !pos len in
    pos := !pos + len;
    s
  in
  match body.[1] with
  | ('B' | 'L') as tag ->
    let session = str (u16 ()) in
    let ts =
      match u8 () with
      | 0 -> None
      | _ ->
        need 8;
        let bits = ref 0L in
        for _ = 1 to 8 do
          bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (u8 ()))
        done;
        Some (Int64.float_of_bits !bits)
    in
    let k = u32 () in
    if k < 0 || k > 1_000_000 then raise Binary_trunc;
    let payloads = ref [] in
    for _ = 1 to k do
      payloads := str (u32 ()) :: !payloads
    done;
    if !pos <> n then raise Binary_trunc;
    if not (session_name_ok session) then Error (Bad_session_name session)
    else if tag = 'L' then Ok (Add_log { session; payloads = List.rev !payloads; ts })
    else Ok (Add_batch { session; payloads = List.rev !payloads; ts })
  | c -> Error (Bad_params (Printf.sprintf "unknown binary record tag %C" c))

let parse_frame_body body =
  if String.length body >= 2 && body.[0] = binary_tag then
    try parse_binary body
    with Binary_trunc | Invalid_argument _ ->
      Error (Bad_params "truncated binary record")
  else parse_request body

let error_code = function
  | Empty_request -> "EMPTY"
  | Unknown_command _ -> "UNSUPPORTED"
  | Wrong_arity _ -> "ARITY"
  | Bad_number _ -> "BAD-NUMBER"
  | Bad_family _ -> "BAD-FAMILY"
  | Bad_session_name _ -> "BAD-SESSION-NAME"
  | Unknown_session _ -> "UNKNOWN-SESSION"
  | Session_exists _ -> "SESSION-EXISTS"
  | Bad_params _ -> "BAD-PARAMS"
  | Bad_expr _ -> "BAD-EXPR"
  | Bad_line _ -> "PARSE"
  | Io_error _ -> "IO"
  | Server_error _ -> "SERVER"
  | Fenced _ -> "FENCED"
  | Read_only _ -> "READONLY"

(* Payload after "ERR <CODE>"; the first token is structured where decoding
   needs it, the remainder freeform. *)
let error_payload = function
  | Empty_request -> ""
  | Unknown_command s -> s
  | Wrong_arity { command; expected } -> Printf.sprintf "%s %s" command expected
  | Bad_number { what; value } -> Printf.sprintf "%s %s" what value
  | Bad_family s -> s
  | Bad_session_name s -> s
  | Unknown_session s -> s
  | Session_exists s -> s
  | Bad_params s -> s
  | Bad_expr { pos; msg } -> Printf.sprintf "%d %s" pos msg
  | Bad_line { line; msg } -> Printf.sprintf "%d %s" line msg
  | Io_error s -> s
  | Server_error s -> s
  | Fenced epoch -> string_of_int epoch
  | Read_only s -> s

let describe_error = function
  | Empty_request -> "empty request"
  | Unknown_command s -> Printf.sprintf "unknown command %S" s
  | Wrong_arity { expected; _ } -> "usage: " ^ expected
  | Bad_number { what; value } -> Printf.sprintf "%s: not a number: %S" what value
  | Bad_family s -> Printf.sprintf "unknown family %S (want rect, dnf:<nvars> or cov:<nbits>:<strength>)" s
  | Bad_session_name s -> Printf.sprintf "bad session name %S (use [A-Za-z0-9_.-]+)" s
  | Unknown_session s -> Printf.sprintf "no session named %S" s
  | Session_exists s -> Printf.sprintf "session %S already open" s
  | Bad_params msg -> msg
  | Bad_expr { pos; msg } -> Printf.sprintf "expression column %d: %s" pos msg
  | Bad_line { line; msg } -> Printf.sprintf "ADD line %d rejected: %s" line msg
  | Io_error msg -> msg
  | Server_error msg -> msg
  | Fenced epoch ->
    Printf.sprintf "write fenced: a newer coordinator holds epoch %d" epoch
  | Read_only msg -> Printf.sprintf "node is read-only: %s" msg

let parse_error_of_wire code payload =
  let first, rest = cut payload in
  match code with
  | "EMPTY" -> Some Empty_request
  (* UNKNOWN-COMMAND is the pre-cluster spelling of UNSUPPORTED. *)
  | "UNSUPPORTED" | "UNKNOWN-COMMAND" -> Some (Unknown_command payload)
  | "ARITY" when first <> "" -> Some (Wrong_arity { command = first; expected = rest })
  | "BAD-NUMBER" when first <> "" -> Some (Bad_number { what = first; value = rest })
  | "BAD-FAMILY" -> Some (Bad_family payload)
  | "BAD-SESSION-NAME" -> Some (Bad_session_name payload)
  | "UNKNOWN-SESSION" -> Some (Unknown_session payload)
  | "SESSION-EXISTS" -> Some (Session_exists payload)
  | "BAD-PARAMS" -> Some (Bad_params payload)
  | "BAD-EXPR" -> (
    match int_of_string_opt first with
    | Some pos -> Some (Bad_expr { pos; msg = rest })
    | None -> None)
  | "PARSE" -> (
    match int_of_string_opt first with
    | Some line -> Some (Bad_line { line; msg = rest })
    | None -> None)
  | "IO" -> Some (Io_error payload)
  | "SERVER" -> Some (Server_error payload)
  | "FENCED" -> (
    match int_of_string_opt payload with
    | Some epoch -> Some (Fenced epoch)
    | None -> None)
  | "READONLY" -> Some (Read_only payload)
  | _ -> None

let render_response = function
  | Ok_reply None -> "OK"
  | Ok_reply (Some info) -> "OK " ^ info
  | Ok_batch { accepted; errors } ->
    let buf = Buffer.create 32 in
    Buffer.add_string buf "OKB ";
    Buffer.add_string buf (string_of_int accepted);
    List.iter
      (fun (i, msg) ->
        Buffer.add_string buf " ERRAT ";
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (armor_payload (if msg = "" then " " else msg)))
      errors;
    Buffer.contents buf
  | Estimate { value; degraded; stale_shards } ->
    "EST " ^ float_out value
    ^ (if degraded then " DEGRADED" else "")
    ^
    if degraded && stale_shards <> [] then
      " shards=" ^ String.concat "," (List.map string_of_int stale_shards)
    else ""
  | Expr_reply { value; support; needed; samples; quality; degraded } ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "EXPR ";
    (match value with
    | Some v -> Buffer.add_string buf (float_out v)
    | None -> Buffer.add_string buf "LOWSUPPORT");
    Buffer.add_string buf (" support=" ^ float_out support);
    if value = None then Buffer.add_string buf (" need=" ^ float_out needed);
    Buffer.add_string buf (Printf.sprintf " m=%d" samples);
    Buffer.add_string buf
      (" probes=" ^ match quality with Probes_exact -> "exact" | Probes_sketch -> "sketch");
    if degraded then Buffer.add_string buf " DEGRADED";
    Buffer.contents buf
  | Stats_reply s ->
    Printf.sprintf
      "STATS family=%s items=%d entries=%d mode=%s estimate=%s rejects=%d merges=%d"
      s.family s.items s.entries
      (if s.exact then "exact" else "sketch")
      (float_out s.last_estimate) s.parse_rejects s.merges
  | Sketch encoded -> "SKETCH " ^ encoded
  | Pong -> "PONG"
  | Hello_reply { generation; epoch } ->
    (* the epoch rides only when fencing is in play, so pre-failover probes
       (and their tests) see the exact v1 shape *)
    "HELLO " ^ string_of_int generation
    ^ if epoch > 0 then " epoch=" ^ string_of_int epoch else ""
  | Server_stats_reply s ->
    Printf.sprintf "SRVSTATS conns=%d shed=%d domains=%d dispatched=%s wal_queue=%d wal_last_group=%d wal_groups=%d%s"
      s.conns s.shed
      (List.length s.dispatched)
      (String.concat "," (List.map string_of_int s.dispatched))
      s.wal_queue s.wal_last_group s.wal_groups
      (if s.shard_fresh = [] then ""
       else " shard_fresh=" ^ String.concat "," (List.map string_of_int s.shard_fresh))
  | Epoch_reply { epoch } -> "EPOCH " ^ string_of_int epoch
  | Sessions_reply descs ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "SESSIONS ";
    Buffer.add_string buf (string_of_int (List.length descs));
    List.iter
      (fun d ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf d.sd_name;
        Buffer.add_char buf ' ';
        Buffer.add_string buf d.sd_family;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (float_out d.sd_epsilon);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (float_out d.sd_delta);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (float_out d.sd_log2_universe))
      descs;
    Buffer.contents buf
  | Lease_reply { epoch; primary } ->
    Printf.sprintf "LEASE epoch=%d role=%s" epoch (if primary then "primary" else "standby")
  | Error_reply e -> (
    (* No trailing space when the payload is empty ("ERR EMPTY", not
       "ERR EMPTY "). *)
    match error_payload e with
    | "" -> "ERR " ^ error_code e
    | payload -> Printf.sprintf "ERR %s %s" (error_code e) payload)

let parse_response line =
  let line = chop_cr line in
  let verb, rest = cut line in
  match verb with
  | "OK" -> Ok (Ok_reply (if rest = "" then None else Some rest))
  | "OKB" -> (
    match tokens rest with
    | accepted :: errs -> (
      match int_of_string_opt accepted with
      | Some accepted when accepted >= 0 ->
        let rec parse_errs acc = function
          | [] -> Ok (Ok_batch { accepted; errors = List.rev acc })
          | "ERRAT" :: i :: msg :: rest -> (
            match (int_of_string_opt i, unarmor_payload msg) with
            | Some i, Ok msg when i >= 0 -> parse_errs ((i, msg) :: acc) rest
            | _ -> Error (Printf.sprintf "OKB: malformed ERRAT %S %S" i msg))
          | _ -> Error (Printf.sprintf "OKB: malformed error list in %S" rest)
        in
        parse_errs [] errs
      | _ -> Error (Printf.sprintf "OKB: bad accepted count %S" accepted))
    | [] -> Error "OKB: missing accepted count")
  | "PONG" when rest = "" -> Ok Pong
  | "HELLO" -> (
    match tokens rest with
    | [ gen ] -> (
      match int_of_string_opt gen with
      | Some generation -> Ok (Hello_reply { generation; epoch = 0 })
      | None -> Error (Printf.sprintf "HELLO: bad generation %S" rest))
    | [ gen; ep ] when String.length ep > 6 && String.sub ep 0 6 = "epoch=" -> (
      match
        (int_of_string_opt gen, int_of_string_opt (String.sub ep 6 (String.length ep - 6)))
      with
      | Some generation, Some epoch -> Ok (Hello_reply { generation; epoch })
      | _ -> Error (Printf.sprintf "HELLO: malformed reply %S" rest))
    | _ -> Error (Printf.sprintf "HELLO: malformed reply %S" rest))
  | "EPOCH" -> (
    match int_of_string_opt rest with
    | Some epoch -> Ok (Epoch_reply { epoch })
    | None -> Error (Printf.sprintf "EPOCH: bad epoch %S" rest))
  | "LEASE" -> (
    match tokens rest with
    | [ ep; role ] when String.length ep > 6 && String.sub ep 0 6 = "epoch=" -> (
      match (int_of_string_opt (String.sub ep 6 (String.length ep - 6)), role) with
      | Some epoch, "role=primary" -> Ok (Lease_reply { epoch; primary = true })
      | Some epoch, "role=standby" -> Ok (Lease_reply { epoch; primary = false })
      | _ -> Error (Printf.sprintf "LEASE: malformed reply %S" rest))
    | _ -> Error (Printf.sprintf "LEASE: malformed reply %S" rest))
  | "SESSIONS" -> (
    match tokens rest with
    | count :: toks -> (
      match int_of_string_opt count with
      | Some k when k >= 0 && List.length toks = 5 * k ->
        let rec take acc = function
          | [] -> Ok (Sessions_reply (List.rev acc))
          | name :: fam :: eps :: delta :: log2u :: more -> (
            match
              (float_of_string_opt eps, float_of_string_opt delta, float_of_string_opt log2u)
            with
            | Some sd_epsilon, Some sd_delta, Some sd_log2_universe ->
              take
                ({ sd_name = name; sd_family = fam; sd_epsilon; sd_delta; sd_log2_universe }
                :: acc)
                more
            | _ -> Error (Printf.sprintf "SESSIONS: malformed entry near %S" name))
          | _ -> Error "SESSIONS: truncated entry list"
        in
        take [] toks
      | _ -> Error (Printf.sprintf "SESSIONS: bad count in %S" rest))
    | [] -> Error "SESSIONS: missing count")
  | "EST" -> (
    let value, degraded, stale_shards =
      match tokens rest with
      | [ v; "DEGRADED" ] -> (float_of_string_opt v, true, Some [])
      | [ v; "DEGRADED"; sh ] when String.length sh > 7 && String.sub sh 0 7 = "shards=" ->
        let ids =
          String.split_on_char ',' (String.sub sh 7 (String.length sh - 7))
          |> List.map int_of_string_opt
          |> List.fold_left
               (fun acc v ->
                 match (acc, v) with Some acc, Some v -> Some (v :: acc) | _ -> None)
               (Some [])
          |> Option.map List.rev
        in
        (float_of_string_opt v, true, ids)
      | [ v ] -> (float_of_string_opt v, false, Some [])
      | _ -> (None, false, Some [])
    in
    match (value, stale_shards) with
    | Some value, Some stale_shards -> Ok (Estimate { value; degraded; stale_shards })
    | _ -> Error (Printf.sprintf "EST: bad reply %S" rest))
  | "EXPR" -> (
    match tokens rest with
    | head :: fields -> (
      let value =
        if head = "LOWSUPPORT" then Ok None
        else
          match float_of_string_opt head with
          | Some v -> Ok (Some v)
          | None -> Error (Printf.sprintf "EXPR: bad value %S" head)
      in
      match value with
      | Error _ as e -> e
      | Ok value -> (
        let degraded = List.mem "DEGRADED" fields in
        let kv tok =
          match String.index_opt tok '=' with
          | Some i ->
            Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
          | None -> None
        in
        let assoc = List.filter_map kv fields in
        let field k = List.assoc_opt k assoc in
        (* need= only rides on LOWSUPPORT lines; absent means 0. *)
        let needed =
          match field "need" with None -> Some 0.0 | Some v -> float_of_string_opt v
        in
        match (field "support", needed, field "m", field "probes") with
        | Some support, Some needed, Some m, Some probes -> (
          match (float_of_string_opt support, int_of_string_opt m, probes) with
          | Some support, Some samples, ("exact" | "sketch") ->
            Ok
              (Expr_reply
                 {
                   value;
                   support;
                   needed;
                   samples;
                   quality = (if probes = "exact" then Probes_exact else Probes_sketch);
                   degraded;
                 })
          | _ -> Error (Printf.sprintf "EXPR: malformed fields in %S" rest))
        | _ -> Error (Printf.sprintf "EXPR: missing fields in %S" rest)))
    | [] -> Error "EXPR: empty reply")
  | "SKETCH" ->
    if rest = "" || String.contains rest ' ' then
      Error (Printf.sprintf "SKETCH: want exactly one wire-snapshot token, got %S" rest)
    else Ok (Sketch rest)
  | "STATS" -> (
    let kv tok =
      match String.index_opt tok '=' with
      | Some i -> Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None
    in
    let assoc = List.filter_map kv (tokens rest) in
    let field k = List.assoc_opt k assoc in
    (* merges is optional so pre-cluster STATS lines still parse (as 0). *)
    let merges =
      match field "merges" with None -> Some 0 | Some v -> int_of_string_opt v
    in
    match
      (field "family", field "items", field "entries", field "mode", field "estimate",
       field "rejects", merges)
    with
    | Some family, Some items, Some entries, Some mode, Some estimate, Some rejects,
      Some merges -> (
      match
        (int_of_string_opt items, int_of_string_opt entries, float_of_string_opt estimate,
         int_of_string_opt rejects, mode)
      with
      | Some items, Some entries, Some last_estimate, Some parse_rejects,
        ("exact" | "sketch") ->
        Ok
          (Stats_reply
             {
               family;
               items;
               entries;
               exact = mode = "exact";
               last_estimate;
               parse_rejects;
               merges;
             })
      | _ -> Error (Printf.sprintf "STATS: malformed fields in %S" rest))
    | _ -> Error (Printf.sprintf "STATS: missing fields in %S" rest))
  | "SRVSTATS" -> (
    let kv tok =
      match String.index_opt tok '=' with
      | Some i -> Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None
    in
    let assoc = List.filter_map kv (tokens rest) in
    let field k = List.assoc_opt k assoc in
    let ints_of csv =
      if csv = "" then Some []
      else
        String.split_on_char ',' csv
        |> List.map int_of_string_opt
        |> List.fold_left
             (fun acc v ->
               match (acc, v) with Some acc, Some v -> Some (v :: acc) | _ -> None)
             (Some [])
        |> Option.map List.rev
    in
    (* shard_fresh is optional: only replicated coordinators report it *)
    let shard_fresh =
      match field "shard_fresh" with None -> Some [] | Some csv -> ints_of csv
    in
    match
      (field "conns", field "shed", field "dispatched", field "wal_queue",
       field "wal_last_group", field "wal_groups")
    with
    | Some conns, Some shed, Some dispatched, Some wq, Some wlg, Some wg -> (
      match
        (int_of_string_opt conns, int_of_string_opt shed, ints_of dispatched,
         int_of_string_opt wq, int_of_string_opt wlg, int_of_string_opt wg, shard_fresh)
      with
      | Some conns, Some shed, Some dispatched, Some wal_queue, Some wal_last_group,
        Some wal_groups, Some shard_fresh ->
        Ok
          (Server_stats_reply
             { conns; shed; dispatched; wal_queue; wal_last_group; wal_groups; shard_fresh })
      | _ -> Error (Printf.sprintf "SRVSTATS: malformed fields in %S" rest))
    | _ -> Error (Printf.sprintf "SRVSTATS: missing fields in %S" rest))
  | "ERR" -> (
    let code, payload = cut rest in
    match parse_error_of_wire code payload with
    | Some e -> Ok (Error_reply e)
    | None -> Error (Printf.sprintf "ERR: unknown code %S" code))
  | _ -> Error (Printf.sprintf "unparseable response %S" line)

let expr_reply_of_outcome ~degraded (outcome : Expr_ast.outcome) =
  let quality_of = function
    | Expr_ast.Exact_probes -> Probes_exact
    | Expr_ast.Sketch_probes -> Probes_sketch
  in
  match outcome with
  | Expr_ast.Estimate { value; support; samples; quality } ->
    Expr_reply
      {
        value = Some value;
        support;
        needed = 0.0;
        samples;
        quality = quality_of quality;
        degraded;
      }
  | Expr_ast.Low_support { support; needed; samples; quality } ->
    Expr_reply
      { value = None; support; needed; samples; quality = quality_of quality; degraded }
