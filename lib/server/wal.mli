(** Write-ahead journal for crash-safe workers.

    A worker that answers [OK]/[OKB] and then dies with the accepted sets
    only in memory silently corrupts the union estimate — a merged sketch
    has no per-item audit trail, so nothing downstream can detect the hole.
    The journal closes that window: every accepted mutating request is
    appended (and, per {!fsync_policy}, fsynced) {e before} the reply line
    is written, so any state the coordinator believes delivered is on disk.

    {2 Layout}

    One directory owns everything:

    {v
    <dir>/journal          length-prefixed, CRC-framed records
    <dir>/generation       the worker's epoch, bumped on every open
    <dir>/checkpoint/      <session>.snap files from the last checkpoint
    v}

    A record is [u32 length | u32 CRC-32 of the body | body], both integers
    big-endian; the body is a rendered protocol request line.  Appends are
    a single [write] syscall per record, so a [kill -9] can lose at most the
    record being written — never a previously acknowledged one — and the
    loss shows up as a torn tail, not silent absence.

    {2 Recovery}

    The caller first restores the checkpoint directory (the server uses
    {!Registry.restore_all}), then {!replay}s the journal tail in order;
    the file is truncated at the first torn or CRC-failing record.
    Replaying on top of a checkpoint
    that already includes a record's effect is safe: union estimation is
    duplicate-insensitive, the same property the cluster's at-least-once
    replay leans on.

    {2 Checkpoints}

    {!checkpoint} asks the caller to spool the live {!Delphic_core.Snapshot_io}
    state into the checkpoint directory, deletes [.snap] files for sessions
    that are no longer live (a stale snapshot would resurrect a closed
    session once the journal truncation retires its CLOSE record), then
    retires the journal prefix the spool covered.  A crash between the
    steps only widens the replayed tail — again duplicates, never loss.
    The journal lock is {e not} held across the spool: appends proceed
    concurrently and land in the kept tail.

    {2 Generation fencing}

    Every {!open_} bumps and persists an integer generation.  A worker
    returns it in the [HELLO] handshake; a coordinator that sees the number
    change across a reconnect knows it is talking to a restarted process
    whose state is only as fresh as the journal, and re-drives the delta
    instead of assuming the connection blip preserved everything. *)

type fsync_policy =
  | Always  (** fsync after every record: survives power cuts, slowest *)
  | Interval of float
      (** fsync at most once per [seconds]; a crash window of one interval
          against power loss, none against process death *)
  | Never  (** rely on the kernel page cache: process death loses nothing,
               power loss may lose the un-flushed tail *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** ["always"], ["never"], or ["interval"]/["interval:<seconds>"]
    (default 0.2s). *)

val fsync_policy_to_string : fsync_policy -> string

type t

val open_ : dir:string -> fsync:fsync_policy -> t
(** Create [dir] (and the checkpoint subdirectory) if needed, bump and
    persist the generation, and open the journal for appending.  Raises
    [Sys_error]/[Unix.Unix_error] if the directory is unusable. *)

val generation : t -> int
(** The epoch persisted by this {!open_} — strictly greater than any
    earlier process's over the same directory. *)

val checkpoint_dir : t -> string

val append : t -> string -> unit
(** Append one record and apply the fsync policy.  Text bodies must be
    newline-free (one rendered request line per record); bodies starting
    with ['\x01'] are binary protocol-v2 records and may contain any
    bytes.  Thread-safe.  Raises [Unix.Unix_error] if the disk refuses the
    write — the caller should fail the request rather than acknowledge
    state that is not durable. *)

val append_framed : t -> string -> unit
(** Append a complete, already-framed record — header and body exactly as
    {!Frame.frame} lays them out — without re-framing.  This is the
    zero-copy splice path for wire protocol v2: the bytes that arrived on
    the socket go to the journal verbatim.  The caller vouches for the
    CRC (the event loop has just verified it on receive); only the length
    field is checked.  Raises [Invalid_argument] on a malformed frame. *)

(** {2 Group commit}

    The per-record path above takes the journal lock and issues one [write]
    (plus, under {!Always}, one [fsync]) per record — correct, but at odds
    with a sharded front end where several event-loop domains journal
    concurrently.  Group commit moves the disk work to one dedicated writer
    domain: {!append_async}/{!append_framed_async} enqueue the framed record
    on an MPSC queue and return a durability {!token}; the writer drains up
    to [group] records per round, splices them into a {e single} write and
    at most one fsync, then resolves every token and invokes [on_durable].
    [fsync always] thus amortises to one fsync per group while the
    journal-before-reply invariant holds record by record: a token reads
    {!token_done} only once its bytes (and, under {!Always}, the fsync)
    are behind it. *)

type token = int Atomic.t
(** {!token_pending} until the record reaches its durability point, then
    {!token_done} or {!token_failed} — numerically identical to
    {!Evloop.gate}'s states, so a token can gate a reply directly. *)

val token_pending : int
val token_done : int
val token_failed : int

val start_writer : t -> group:int -> on_durable:(unit -> unit) -> unit
(** Spawn the writer domain.  [group] caps records per batch;
    [on_durable] runs on the writer domain once per committed (or failed)
    batch, after its tokens resolve — keep it cheap and non-blocking
    (the server passes [Evgroup.kick_all]).  Raises [Invalid_argument] if
    a writer is already running. *)

val stop_writer : t -> unit
(** Drain the queue (every enqueued record is still committed and its
    token resolved), then join the writer domain.  Idempotent; implied by
    {!close}.  Do not call while producers can still enqueue. *)

val append_async : t -> string -> token
(** {!append} via the writer queue.  Same body rules as {!append}.  With
    no writer running this falls back to the synchronous {!append} and
    returns an already-resolved token, so callers need not branch. *)

val append_framed_async : t -> string -> token
(** {!append_framed} via the writer queue — the v2 zero-copy splice stays
    zero-copy: the wire frame goes from socket to queue to one coalesced
    [write] untouched.  Falls back like {!append_async}. *)

type group_stats = { queue_depth : int; last_group : int; groups : int }

val group_stats : t -> group_stats
(** Queue depth right now, size of the most recent batch, and batches
    committed since {!start_writer} (all 0 with no writer) — the [STATS]
    verb's journal figures. *)

val records_since_checkpoint : t -> int
(** Appended (or replayed) records still uncovered by a checkpoint — the
    checkpoint trigger input. *)

val replay : t -> f:(string -> unit) -> int * string option
(** Feed every intact record body to [f] in append order, truncate the
    journal at the first torn or corrupt record, and leave the handle
    positioned to append after the survivors.  Returns the number of
    records replayed and a description of the cut, if one was made.
    Exceptions from [f] are the caller's. *)

val checkpoint : t -> spool:(dir:string -> (string * (string, string) result) list) -> (string * (string, string) result) list
(** Run [spool ~dir:(checkpoint_dir t)] — expected to write one [.snap]
    per live session, as {!Registry.snapshot_all} does — then, if every
    outcome is [Ok], delete [.snap] files for sessions absent from the
    outcomes and retire the journal prefix that predates the spool,
    adjusting {!records_since_checkpoint} down to the concurrently-appended
    tail.  On any spool failure the journal and checkpoint files are left
    intact so replay still covers the failed sessions.  Concurrent
    {!append}s are never blocked for the duration of the spool; concurrent
    checkpoints serialise.  Returns the spool outcomes. *)

val close : t -> unit
(** Final fsync and close.  Idempotent. *)
