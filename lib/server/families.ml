module Io = Delphic_core.Snapshot_io
module Params = Delphic_core.Params
module Parsers = Delphic_stream.Parsers
module Bitvec = Delphic_util.Bitvec
module Rectangle = Delphic_sets.Rectangle
module Dnf = Delphic_sets.Dnf
module Coverage = Delphic_sets.Coverage

let ( let* ) = Result.bind

(* Decoding a big snapshot maps this over thousands of entries: a local
   exception keeps the loop allocation-free instead of threading a Result
   through every cons. *)
exception Map_error of string

let map_result f l =
  match
    List.rev
      (List.rev_map (fun x -> match f x with Ok y -> y | Error e -> raise (Map_error e)) l)
  with
  | ys -> Ok ys
  | exception Map_error e -> Error e

(* One Adaptive estimator per family plus the element codec Snapshot_io
   needs; the functor writes the two conversions once instead of three
   times. *)
module Bridge (X : sig
  module F : Delphic_family.Family.FAMILY

  val encode_elt : F.elt -> string
  val decode_elt : string -> (F.elt, string) result
end) =
struct
  module A = Delphic_core.Adaptive.Make (X.F)
  module E = Delphic_expr.Expr.Eval (X.F)

  let to_io ~family_token ~merges est =
    let s = A.snapshot est in
    {
      Io.family = family_token;
      epsilon = s.A.epsilon;
      delta = s.A.delta;
      log2_universe = s.A.log2_universe;
      exact_capacity = s.A.exact_capacity;
      items = s.A.items;
      merges;
      exact_active = s.A.exact_active;
      exact_entries = List.map (fun (x, ts) -> (ts, X.encode_elt x)) s.A.exact_entries;
      sketch =
        Option.map
          (fun (sk : A.sketch_snapshot) ->
            {
              Io.mode = s.A.mode;
              capacity_scale = sk.capacity_scale;
              coupon_scale = sk.coupon_scale;
              s_items = sk.sketch_items;
              max_bucket = sk.max_bucket;
              skipped = sk.skipped;
              membership_calls = sk.membership_calls;
              cardinality_calls = sk.cardinality_calls;
              sampling_calls = sk.sampling_calls;
              entries =
                List.map (fun (x, level, ts) -> (level, ts, X.encode_elt x)) sk.sketch_entries;
            })
          s.A.sketch;
    }

  let of_io ~seed (io : Io.t) =
    let* exact_entries =
      map_result
        (fun (ts, e) ->
          let* x = X.decode_elt e in
          Ok (x, ts))
        io.Io.exact_entries
    in
    let* sketch =
      match io.Io.sketch with
      | None -> Ok None
      | Some sk ->
        let* sketch_entries =
          map_result
            (fun (level, ts, e) ->
              let* x = X.decode_elt e in
              Ok (x, level, ts))
            sk.Io.entries
        in
        Ok
          (Some
             {
               A.capacity_scale = sk.Io.capacity_scale;
               coupon_scale = sk.Io.coupon_scale;
               sketch_items = sk.Io.s_items;
               max_bucket = sk.Io.max_bucket;
               skipped = sk.Io.skipped;
               membership_calls = sk.Io.membership_calls;
               cardinality_calls = sk.Io.cardinality_calls;
               sampling_calls = sk.Io.sampling_calls;
               sketch_entries;
             })
    in
    let mode =
      match io.Io.sketch with Some sk -> sk.Io.mode | None -> Params.Practical
    in
    match
      A.restore
        {
          A.mode;
          epsilon = io.Io.epsilon;
          delta = io.Io.delta;
          log2_universe = io.Io.log2_universe;
          exact_capacity = io.Io.exact_capacity;
          items = io.Io.items;
          exact_active = io.Io.exact_active;
          exact_entries;
          sketch;
        }
        ~seed
    with
    | t -> Ok t
    | exception Invalid_argument msg -> Error msg
end

module Rect_b = Bridge (struct
  module F = Rectangle

  let encode_elt p = String.concat " " (List.map string_of_int (Array.to_list p))

  let decode_elt s =
    let rec ints n acc = function
      | [] -> if n = 0 then Error "empty point" else Ok (Array.of_list (List.rev acc))
      | "" :: rest -> ints n acc rest
      | x :: rest -> (
        match int_of_string_opt x with
        | Some v -> ints (n + 1) (v :: acc) rest
        | None -> Error (Printf.sprintf "bad point coordinate %S" x))
    in
    ints 0 [] (String.split_on_char ' ' s)
end)

module Dnf_b = Bridge (struct
  module F = Dnf

  let encode_elt = Bitvec.to_string

  let decode_elt s =
    match Bitvec.of_string s with
    | v -> Ok v
    | exception Invalid_argument msg -> Error msg
end)

module Cov_b = Bridge (struct
  module F = Coverage

  let encode_elt (e : Coverage.elt) =
    String.concat "," (List.map string_of_int (Array.to_list e.Coverage.positions))
    ^ ":"
    ^ Bitvec.to_string e.Coverage.pattern

  let decode_elt s =
    match String.index_opt s ':' with
    | None -> Error (Printf.sprintf "bad coverage element %S (no ':')" s)
    | Some i -> (
      let pos = String.sub s 0 i in
      let pat = String.sub s (i + 1) (String.length s - i - 1) in
      let* positions =
        map_result
          (fun x ->
            match int_of_string_opt x with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "bad coverage position %S" x))
          (String.split_on_char ',' pos |> List.filter (fun x -> x <> ""))
      in
      match Bitvec.of_string pat with
      | pattern -> Ok { Coverage.positions = Array.of_list positions; pattern }
      | exception Invalid_argument msg -> Error msg)
end)

type t =
  | Rect_s of { est : Rect_b.A.t; mutable dims : int option }
  | Dnf_s of { est : Dnf_b.A.t; nvars : int }
  | Cov_s of { est : Cov_b.A.t; nbits : int; strength : int }

let family = function
  | Rect_s _ -> Protocol.Rect
  | Dnf_s { nvars; _ } -> Protocol.Dnf { nvars }
  | Cov_s { nbits; strength; _ } -> Protocol.Cov { nbits; strength }

let family_token t = Protocol.family_to_token (family t)

let params = function
  | Rect_s { est; _ } -> (Rect_b.A.epsilon est, Rect_b.A.delta est, Rect_b.A.log2_universe est)
  | Dnf_s { est; _ } -> (Dnf_b.A.epsilon est, Dnf_b.A.delta est, Dnf_b.A.log2_universe est)
  | Cov_s { est; _ } -> (Cov_b.A.epsilon est, Cov_b.A.delta est, Cov_b.A.log2_universe est)

let create ~family ~epsilon ~delta ~log2_universe ~seed =
  let guard f = match f () with t -> Ok t | exception Invalid_argument msg -> Error msg in
  match (family : Protocol.family) with
  | Protocol.Rect ->
    let* est = guard (fun () -> Rect_b.A.create ~epsilon ~delta ~log2_universe ~seed ()) in
    Ok (Rect_s { est; dims = None })
  | Protocol.Dnf { nvars } ->
    let* est = guard (fun () -> Dnf_b.A.create ~epsilon ~delta ~log2_universe ~seed ()) in
    Ok (Dnf_s { est; nvars })
  | Protocol.Cov { nbits; strength } ->
    let* est = guard (fun () -> Cov_b.A.create ~epsilon ~delta ~log2_universe ~seed ()) in
    Ok (Cov_s { est; nbits; strength })

let add ?ts t ~lineno payload =
  match t with
  | Rect_s r ->
    let box = Parsers.rectangle_of_line ?dims:r.dims ~lineno payload in
    if r.dims = None then r.dims <- Some (Rectangle.dim box);
    Rect_b.A.process ?ts r.est box
  | Dnf_s d ->
    let term = Parsers.dnf_term_of_line ~nvars:d.nvars ~lineno payload in
    Dnf_b.A.process ?ts d.est term
  | Cov_s c ->
    let v = Parsers.vector_of_line ~lineno payload in
    if Bitvec.width v <> c.nbits then
      raise
        (Parsers.Parse_error
           {
             line = lineno;
             msg =
               Printf.sprintf "vector has %d bits but the session is cov:%d:%d"
                 (Bitvec.width v) c.nbits c.strength;
           });
    Cov_b.A.process ?ts c.est (Coverage.create ~vector:v ~strength:c.strength)

let estimate = function
  | Rect_s { est; _ } -> Rect_b.A.estimate est
  | Dnf_s { est; _ } -> Dnf_b.A.estimate est
  | Cov_s { est; _ } -> Cov_b.A.estimate est

let estimate_window t ~cutoff =
  match t with
  | Rect_s { est; _ } -> Rect_b.A.estimate_window est ~cutoff
  | Dnf_s { est; _ } -> Dnf_b.A.estimate_window est ~cutoff
  | Cov_s { est; _ } -> Cov_b.A.estimate_window est ~cutoff

let items = function
  | Rect_s { est; _ } -> Rect_b.A.items_processed est
  | Dnf_s { est; _ } -> Dnf_b.A.items_processed est
  | Cov_s { est; _ } -> Cov_b.A.items_processed est

let is_exact = function
  | Rect_s { est; _ } -> Rect_b.A.is_exact est
  | Dnf_s { est; _ } -> Dnf_b.A.is_exact est
  | Cov_s { est; _ } -> Cov_b.A.is_exact est

let entries t =
  let pick exact_size sketch_size = match exact_size with Some n -> n | None -> sketch_size in
  match t with
  | Rect_s { est; _ } -> pick (Rect_b.A.exact_size est) (Rect_b.A.sketch_size est)
  | Dnf_s { est; _ } -> pick (Dnf_b.A.exact_size est) (Dnf_b.A.sketch_size est)
  | Cov_s { est; _ } -> pick (Cov_b.A.exact_size est) (Cov_b.A.sketch_size est)

let describe = function
  | Rect_s { est; _ } -> Rect_b.A.describe est
  | Dnf_s { est; _ } -> Dnf_b.A.describe est
  | Cov_s { est; _ } -> Cov_b.A.describe est

let to_io ?(merges = 0) t =
  let token = family_token t in
  match t with
  | Rect_s { est; _ } -> Rect_b.to_io ~family_token:token ~merges est
  | Dnf_s { est; _ } -> Dnf_b.to_io ~family_token:token ~merges est
  | Cov_s { est; _ } -> Cov_b.to_io ~family_token:token ~merges est

let of_io (io : Io.t) ~seed =
  let* family =
    Result.map_error Protocol.describe_error (Protocol.family_of_token io.Io.family)
  in
  match family with
  | Protocol.Rect ->
    let* est = Rect_b.of_io ~seed io in
    (* The dimension pin is recovered from any persisted element; a snapshot
       with no entries ever processed none, so the next ADD re-pins it. *)
    let point_dims s =
      List.length (String.split_on_char ' ' s |> List.filter (fun x -> x <> ""))
    in
    let dims =
      match (io.Io.exact_entries, io.Io.sketch) with
      | (_, e) :: _, _ -> Some (point_dims e)
      | [], Some { Io.entries = (_, _, e) :: _; _ } -> Some (point_dims e)
      | [], _ -> None
    in
    Ok (Rect_s { est; dims })
  | Protocol.Dnf { nvars } ->
    let* est = Dnf_b.of_io ~seed io in
    Ok (Dnf_s { est; nvars })
  | Protocol.Cov { nbits; strength } ->
    let* est = Cov_b.of_io ~seed io in
    Ok (Cov_s { est; nbits; strength })

(* Deep copy through the snapshot codec: an EXPR query probes and samples a
   point-in-time clone of each leaf, so concurrent ADDs keep landing on the
   live estimator while the query runs. *)
let copy t ~seed = of_io (to_io t) ~seed

(* Query-time window restriction: a clone holding only the entries whose
   last occurrence is inside the window.  Windowed EXPR leaves go through
   this so the unchanged expression machinery answers over the window. *)
let restrict t ~cutoff ~seed = of_io (Io.restrict ~cutoff (to_io t)) ~seed

(* The cluster's fold step: combine two same-family sessions.  The
   estimator-level merge (Adaptive.Make.merge) raises on parameter
   mismatches; at this layer a family or shape mismatch is an [Error]
   message the protocol can relay verbatim. *)
let merge a b ~seed =
  let guard f =
    match f () with
    | t -> Ok t
    | exception Invalid_argument msg -> Error msg
    | exception Failure msg -> Error msg
  in
  match (a, b) with
  | Rect_s x, Rect_s y -> (
    match (x.dims, y.dims) with
    | Some d1, Some d2 when d1 <> d2 ->
      Error (Printf.sprintf "cannot merge rect sessions of %d and %d dimensions" d1 d2)
    | _ ->
      let dims = match x.dims with Some _ -> x.dims | None -> y.dims in
      guard (fun () -> Rect_s { est = Rect_b.A.merge x.est y.est ~seed; dims }))
  | Dnf_s x, Dnf_s y ->
    if x.nvars <> y.nvars then
      Error (Printf.sprintf "cannot merge dnf:%d with dnf:%d" x.nvars y.nvars)
    else guard (fun () -> Dnf_s { est = Dnf_b.A.merge x.est y.est ~seed; nvars = x.nvars })
  | Cov_s x, Cov_s y ->
    if x.nbits <> y.nbits || x.strength <> y.strength then
      Error
        (Printf.sprintf "cannot merge cov:%d:%d with cov:%d:%d" x.nbits x.strength
           y.nbits y.strength)
    else
      guard (fun () ->
          Cov_s
            { est = Cov_b.A.merge x.est y.est ~seed; nbits = x.nbits; strength = x.strength })
  | _ ->
    Error
      (Printf.sprintf "cannot merge a %s session with a %s session" (family_token a)
         (family_token b))

(* The sample-and-probe evaluation step of an EXPR query.  [union] is the
   fold of every leaf (same family by construction of the fold, but checked
   again here so a mixed-family expression is a clean [Error]).  With every
   leaf exact the fold supplies the draws and the probes are indicators;
   once any leaf is sketching the fold shares coins with the leaf buckets,
   so the draw switches to the stratified per-leaf scheme (see
   Delphic_expr.Expr) and the fold only contributes its |U| memoisation to
   the caller. *)
let expr_estimate ~union ~leaves ~expr ~samples =
  let guard f =
    match f () with v -> Ok v | exception Invalid_argument msg -> Error msg
  in
  let mismatch name leaf =
    Error
      (Printf.sprintf "session %s is %s but the expression folds %s sessions" name
         (family_token leaf) (family_token union))
  in
  match union with
  | Rect_s u ->
    let* ests =
      map_result
        (fun (name, leaf) ->
          match leaf with
          | Rect_s l -> Ok (name, l.est)
          | other -> mismatch name other)
        leaves
    in
    let probe name x = Rect_b.A.probe_weight (List.assoc name ests) x in
    if List.for_all (fun (_, e) -> Rect_b.A.is_exact e) ests then
      guard (fun () ->
          Rect_b.E.estimate ~expr
            ~union:(Rect_b.A.estimate u.est)
            ~draw:(Rect_b.A.sample_union_n u.est)
            ~probe ~exact_probes:true ~samples ~delta:(Rect_b.A.delta u.est))
    else
      guard (fun () ->
          Rect_b.E.estimate_stratified ~expr
            ~leaf_sizes:(List.map (fun (n, e) -> (n, Rect_b.A.estimate e)) ests)
            ~draw_leaf:(fun name n -> Rect_b.A.sample_union_n (List.assoc name ests) n)
            ~probe ~samples ~delta:(Rect_b.A.delta u.est))
  | Dnf_s u ->
    let* ests =
      map_result
        (fun (name, leaf) ->
          match leaf with
          | Dnf_s l -> Ok (name, l.est)
          | other -> mismatch name other)
        leaves
    in
    let probe name x = Dnf_b.A.probe_weight (List.assoc name ests) x in
    if List.for_all (fun (_, e) -> Dnf_b.A.is_exact e) ests then
      guard (fun () ->
          Dnf_b.E.estimate ~expr
            ~union:(Dnf_b.A.estimate u.est)
            ~draw:(Dnf_b.A.sample_union_n u.est)
            ~probe ~exact_probes:true ~samples ~delta:(Dnf_b.A.delta u.est))
    else
      guard (fun () ->
          Dnf_b.E.estimate_stratified ~expr
            ~leaf_sizes:(List.map (fun (n, e) -> (n, Dnf_b.A.estimate e)) ests)
            ~draw_leaf:(fun name n -> Dnf_b.A.sample_union_n (List.assoc name ests) n)
            ~probe ~samples ~delta:(Dnf_b.A.delta u.est))
  | Cov_s u ->
    let* ests =
      map_result
        (fun (name, leaf) ->
          match leaf with
          | Cov_s l -> Ok (name, l.est)
          | other -> mismatch name other)
        leaves
    in
    let probe name x = Cov_b.A.probe_weight (List.assoc name ests) x in
    if List.for_all (fun (_, e) -> Cov_b.A.is_exact e) ests then
      guard (fun () ->
          Cov_b.E.estimate ~expr
            ~union:(Cov_b.A.estimate u.est)
            ~draw:(Cov_b.A.sample_union_n u.est)
            ~probe ~exact_probes:true ~samples ~delta:(Cov_b.A.delta u.est))
    else
      guard (fun () ->
          Cov_b.E.estimate_stratified ~expr
            ~leaf_sizes:(List.map (fun (n, e) -> (n, Cov_b.A.estimate e)) ests)
            ~draw_leaf:(fun name n -> Cov_b.A.sample_union_n (List.assoc name ests) n)
            ~probe ~samples ~delta:(Cov_b.A.delta u.est))
