let log_src = Logs.Src.create "delphic.evloop" ~doc:"readiness event loop"

module Log = (val Logs.src_log log_src : Logs.LOG)

type proto = V1 | V2

(* Unix.file_descr is the int itself on Unix; the stubs take plain ints so
   they need no unixsupport glue. *)
external fd_int : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"
external epoll_create : unit -> int = "delphic_epoll_create"
external epoll_ctl : int -> int -> int -> int -> int = "delphic_epoll_ctl"
external epoll_wait : int -> int -> int array = "delphic_epoll_wait"
external poll_fds : int array -> int -> int array = "delphic_poll"
external poll1 : int -> int -> int -> int = "delphic_poll1"
external raise_nofile : int -> int = "delphic_raise_nofile"

let ev_in = 1
let ev_out = 2
let ev_err = 4

(* Client-side one-fd wait (nonblocking connect, read deadlines) — the
   poll-backed replacement for the old [Unix.select] calls, immune to
   FD_SETSIZE.  [timeout] < 0 waits forever. *)
let wait_fd fd ~write ~timeout =
  let want = if write then ev_out else ev_in in
  let deadline = if timeout < 0.0 then infinity else Unix.gettimeofday () +. timeout in
  let rec go () =
    let ms =
      if timeout < 0.0 then -1
      else
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then 0 else int_of_float (ceil (remaining *. 1000.0))
    in
    match poll1 (fd_int fd) want ms with
    | 0 -> `Timeout
    | -1 -> if Unix.gettimeofday () < deadline then go () else `Timeout
    | _ ->
      (* error bits included: let the caller's read/connect surface errno *)
      `Ready
  in
  go ()

(* A durability gate: 0 = pending, 1 = complete, 2 = failed.  The WAL
   group-commit writer flips it from another domain after the record's
   durability point, then {!kick}s the owning loop to release the reply. *)
type gate = int Atomic.t

let gate_pending = 0
let gate_done = 1
let gate_failed = 2

type verdict =
  | Reply of string
  | Gated of { reply : string; on_fail : string; gate : gate }

(* Replies queued behind an unresolved gate.  Ungated replies normally skip
   this queue entirely (straight into the pending buffer); once a gated
   item is in flight, later replies enqueue behind it — the per-connection
   reply order must match the request order. *)
type out_item = { text : string; fail : string; gate : gate }

let resolved_gate : gate = Atomic.make gate_done

(* Per-connection handler state.  The loop itself never reads it: the seam
   exists so a handler can remember something about the peer across
   requests — the coordinator fencing epoch a [COORD] announce stamps on
   the connection that sent it. *)
type ctx = { mutable epoch : int }

type conn = {
  fd : Unix.file_descr;
  ifd : int;
  ctx : ctx;
  mutable proto : proto option; (* None until the first bytes arrive *)
  mutable rbuf : Bytes.t;
  mutable rpos : int; (* consumed prefix *)
  mutable rlen : int; (* valid bytes *)
  mutable rscan : int; (* v1: resume point for the newline scan *)
  outq : out_item Queue.t; (* replies gated on durability (order-preserving) *)
  mutable outq_bytes : int;
  pending : Buffer.t; (* replies not yet promoted to [inflight] *)
  mutable inflight : string;
  mutable ioff : int;
  mutable reg_ev : int; (* events currently registered with the backend *)
  mutable rd_paused : bool; (* backpressure: output high-water crossed *)
  mutable closing : bool; (* stop reading; close once output drains *)
  mutable dead : bool;
}

type handler = ctx:ctx -> proto:proto -> raw:string -> body:string -> verdict

(* Accounting shared by every loop of a sharded group: the connection cap
   and shed count are properties of the listening socket, not of any one
   domain's loop. *)
type shared = {
  max_conns : int;
  live : int Atomic.t;
  shed : int Atomic.t;
}

let make_shared ~max_conns = { max_conns; live = Atomic.make 0; shed = Atomic.make 0 }
let live_conns s = Atomic.get s.live
let shed_count s = Atomic.get s.shed

(* Admission check at accept time: under the cap admits (the loop that
   registers the fd increments [live]); over it counts a shed and tells
   the acceptor to close.  Advisory — a burst racing several acceptors can
   overshoot by the number of in-flight handoffs, which is fine for a
   load-shedding cap. *)
let try_admit s =
  if Atomic.get s.live >= s.max_conns then begin
    Atomic.incr s.shed;
    false
  end
  else true

type t = {
  listen_fd : Unix.file_descr option;
  listen_ifd : int; (* -1 when this loop does not own an acceptor *)
  handler : handler;
  on_bad_frame : string -> string option;
  shared : shared;
  conns : (int, conn) Hashtbl.t;
  gated : (int, conn) Hashtbl.t; (* conns whose reply head waits on a gate *)
  injectq : Unix.file_descr Queue.t; (* fds handed over by an acceptor *)
  inject_lock : Mutex.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  stop_flag : bool Atomic.t;
  wake_flag : bool Atomic.t; (* dedup: at most one unread wake byte *)
  dispatched : int Atomic.t; (* requests handled by this loop *)
  epfd : int; (* -1 => poll backend *)
}

let hi_water = 8 * 1024 * 1024
let lo_water = 1 * 1024 * 1024
let read_budget = 256 * 1024
let initial_rbuf = 8 * 1024

let create ?(max_conns = 16384) ?shared ?listen_fd ~handler
    ?(on_bad_frame = fun _ -> None) () =
  (* a client that hangs up mid-reply must cost one connection, not the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock stop_r;
  Unix.set_nonblock stop_w;
  let epfd = epoll_create () in
  if epfd < 0 then Log.info (fun m -> m "epoll unavailable; using poll backend");
  let shared = match shared with Some s -> s | None -> make_shared ~max_conns in
  {
    listen_fd;
    listen_ifd = (match listen_fd with Some fd -> fd_int fd | None -> -1);
    handler;
    on_bad_frame;
    shared;
    conns = Hashtbl.create 1024;
    gated = Hashtbl.create 64;
    injectq = Queue.create ();
    inject_lock = Mutex.create ();
    stop_r;
    stop_w;
    stop_flag = Atomic.make false;
    wake_flag = Atomic.make false;
    dispatched = Atomic.make 0;
    epfd;
  }

let conn_count t = Hashtbl.length t.conns
let dispatched t = Atomic.get t.dispatched
let shared_of t = t.shared

let wake t =
  if Atomic.compare_and_set t.wake_flag false true then
    try ignore (Unix.single_write_substring t.stop_w "w" 0 1)
    with Unix.Unix_error _ -> ()

let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    try ignore (Unix.single_write_substring t.stop_w "x" 0 1)
    with Unix.Unix_error _ -> ()

(* kick: wake the loop so it re-examines gated replies.  Thread-safe and
   cheap to call redundantly — [wake_flag] keeps the self-pipe at one
   unread byte no matter how many batches complete between rounds. *)
let kick t = wake t

let backend_add t ifd ev = if t.epfd >= 0 then ignore (epoll_ctl t.epfd 0 ifd ev)
let backend_del t ifd = if t.epfd >= 0 then ignore (epoll_ctl t.epfd 2 ifd 0)

let close_conn t c =
  if not c.dead then begin
    c.dead <- true;
    backend_del t c.ifd;
    Hashtbl.remove t.conns c.ifd;
    Hashtbl.remove t.gated c.ifd;
    Atomic.decr t.shared.live;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end

(* Bytes that still have to leave the socket, including replies parked
   behind a durability gate. *)
let out_bytes c =
  String.length c.inflight - c.ioff + Buffer.length c.pending + c.outq_bytes

(* Bytes that can be written right now (gated replies excluded). *)
let flushable_bytes c = String.length c.inflight - c.ioff + Buffer.length c.pending

let frame_reply c text =
  match c.proto with
  | Some V1 ->
    Buffer.add_string c.pending text;
    Buffer.add_char c.pending '\n'
  | Some V2 -> Frame.frame_into c.pending text
  | None -> ()

(* Move resolved queue heads into the pending buffer.  Stops at the first
   gate still pending — per-connection reply order is request order. *)
let promote c =
  let continue = ref true in
  while !continue && not (Queue.is_empty c.outq) do
    let it = Queue.peek c.outq in
    match Atomic.get it.gate with
    | 0 (* pending *) -> continue := false
    | st ->
      ignore (Queue.pop c.outq);
      c.outq_bytes <- c.outq_bytes - String.length it.text;
      frame_reply c (if st = gate_done then it.text else it.fail)
  done

(* Promote pending replies and push them into the socket until it would
   block.  EPIPE/ECONNRESET just kill the connection. *)
let rec flush_out t c =
  if not c.dead then begin
    promote c;
    if c.inflight = "" && Buffer.length c.pending > 0 then begin
      c.inflight <- Buffer.contents c.pending;
      c.ioff <- 0;
      Buffer.clear c.pending
    end;
    if c.inflight <> "" then begin
      let n = String.length c.inflight - c.ioff in
      match Unix.write_substring c.fd c.inflight c.ioff n with
      | k ->
        c.ioff <- c.ioff + k;
        if c.ioff = String.length c.inflight then begin
          c.inflight <- "";
          c.ioff <- 0;
          flush_out t c
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_out t c
      | exception Unix.Unix_error _ -> close_conn t c
    end
  end

let update_interest t c =
  if not c.dead then begin
    let out = out_bytes c in
    if c.rd_paused && out <= lo_water then c.rd_paused <- false;
    if c.closing && out = 0 then close_conn t c
    else begin
      (* ev_out only when bytes can actually move: a reply parked behind a
         pending gate must not spin the loop on a writable socket *)
      let ev =
        (if c.closing || c.rd_paused then 0 else ev_in)
        lor (if flushable_bytes c > 0 then ev_out else 0)
      in
      if ev <> c.reg_ev then begin
        if t.epfd >= 0 then ignore (epoll_ctl t.epfd 1 c.ifd ev);
        c.reg_ev <- ev
      end
    end
  end

let queue_reply c reply =
  if Queue.is_empty c.outq then frame_reply c reply
  else begin
    (* a gated reply is already queued: enqueue behind it to keep order *)
    Queue.add { text = reply; fail = reply; gate = resolved_gate } c.outq;
    c.outq_bytes <- c.outq_bytes + String.length reply
  end;
  if out_bytes c > hi_water then c.rd_paused <- true

let queue_gated t c ~reply ~on_fail gate =
  Queue.add { text = reply; fail = on_fail; gate } c.outq;
  c.outq_bytes <- c.outq_bytes + String.length reply;
  Hashtbl.replace t.gated c.ifd c;
  if out_bytes c > hi_water then c.rd_paused <- true

let run_handler t c proto ~raw ~body =
  Atomic.incr t.dispatched;
  match t.handler ~ctx:c.ctx ~proto ~raw ~body with
  | Reply reply -> queue_reply c reply
  | Gated { reply; on_fail; gate } -> queue_gated t c ~reply ~on_fail gate
  | exception exn ->
    (* the server's handler turns its own failures into ERR replies; an
       exception here means the seam itself is broken — drop the conn *)
    Log.err (fun m -> m "handler raised %s; closing connection" (Printexc.to_string exn));
    c.closing <- true

let bad_frame t c reason =
  Log.warn (fun m -> m "protocol error: %s; closing connection" reason);
  (match c.proto with
  | Some _ -> (
    match t.on_bad_frame reason with
    | Some reply -> queue_reply c reply
    | None -> ())
  | None -> ());
  c.rpos <- c.rlen;
  c.rscan <- c.rlen;
  c.closing <- true

(* One pass over buffered input: detect the protocol on first bytes, then
   peel off as many complete requests as the buffer holds. *)
let process t c =
  let progress = ref true in
  while !progress && not c.dead && not c.closing do
    progress := false;
    match c.proto with
    | None ->
      if c.rlen - c.rpos >= 1 then
        if Bytes.get c.rbuf c.rpos <> '\x00' then begin
          c.proto <- Some V1;
          progress := true
        end
        else if c.rlen - c.rpos >= 4 then
          if Bytes.sub_string c.rbuf c.rpos 4 = Frame.preamble then begin
            c.proto <- Some V2;
            c.rpos <- c.rpos + 4;
            c.rscan <- c.rpos;
            progress := true
          end
          else bad_frame t c "bad v2 preamble"
    | Some V1 -> (
      match Bytes.index_from_opt c.rbuf c.rscan '\n' with
      | Some i when i < c.rlen ->
        let stop = if i > c.rpos && Bytes.get c.rbuf (i - 1) = '\r' then i - 1 else i in
        let line = Bytes.sub_string c.rbuf c.rpos (stop - c.rpos) in
        c.rpos <- i + 1;
        c.rscan <- c.rpos;
        run_handler t c V1 ~raw:"" ~body:line;
        progress := true
      | _ ->
        c.rscan <- c.rlen;
        if c.rlen - c.rpos > Frame.max_body then
          bad_frame t c "request line exceeds frame limit")
    | Some V2 -> (
      match Frame.scan c.rbuf ~pos:c.rpos ~len:c.rlen with
      | Frame.Need _ -> ()
      | Frame.Bad reason -> bad_frame t c reason
      | Frame.Got { body; next } ->
        let raw = Bytes.sub_string c.rbuf c.rpos (next - c.rpos) in
        c.rpos <- next;
        run_handler t c V2 ~raw ~body;
        progress := true)
  done;
  (* reclaim the consumed prefix so the buffer never creeps *)
  if c.rpos > 0 then begin
    let live = c.rlen - c.rpos in
    if live > 0 then Bytes.blit c.rbuf c.rpos c.rbuf 0 live;
    c.rlen <- live;
    c.rscan <- max 0 (c.rscan - c.rpos);
    c.rpos <- 0
  end

let ensure_capacity t c =
  if c.rlen = Bytes.length c.rbuf then begin
    let cap = Frame.max_body + 16 in
    if Bytes.length c.rbuf >= cap then bad_frame t c "request exceeds frame limit"
    else begin
      let b = Bytes.create (min cap (2 * Bytes.length c.rbuf)) in
      Bytes.blit c.rbuf 0 b 0 c.rlen;
      c.rbuf <- b
    end
  end

let on_readable t c =
  let budget = ref read_budget in
  let continue = ref true in
  while !continue && !budget > 0 && not c.dead && not c.closing do
    ensure_capacity t c;
    if c.dead || c.closing then continue := false
    else begin
      match Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) with
      | 0 ->
        (* EOF: whatever is buffered is all there will ever be; flush
           queued replies, then close *)
        c.closing <- true;
        continue := false
      | k ->
        c.rlen <- c.rlen + k;
        budget := !budget - k;
        if k < Bytes.length c.rbuf - (c.rlen - k) then continue := false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
        close_conn t c;
        continue := false
    end
  done;
  if not c.dead then begin
    process t c;
    flush_out t c;
    update_interest t c
  end

let on_writable t c =
  flush_out t c;
  if not c.dead then update_interest t c

(* Adopt an already-accepted socket into this loop.  Used both by the
   in-loop acceptor and by {!adopt} (the sharded acceptor's handoff). *)
let register_conn t fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let c =
    {
      fd;
      ifd = fd_int fd;
      ctx = { epoch = 0 };
      proto = None;
      rbuf = Bytes.create initial_rbuf;
      rpos = 0;
      rlen = 0;
      rscan = 0;
      outq = Queue.create ();
      outq_bytes = 0;
      pending = Buffer.create 256;
      inflight = "";
      ioff = 0;
      reg_ev = ev_in;
      rd_paused = false;
      closing = false;
      dead = false;
    }
  in
  Atomic.incr t.shared.live;
  Hashtbl.replace t.conns c.ifd c;
  backend_add t c.ifd ev_in

(* Thread-safe fd handoff from an acceptor running elsewhere: queue the fd
   and wake the loop, which registers it with its own backend. *)
let adopt t fd =
  Mutex.lock t.inject_lock;
  Queue.add fd t.injectq;
  Mutex.unlock t.inject_lock;
  wake t

let drain_inject t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.inject_lock;
    let fd = if Queue.is_empty t.injectq then None else Some (Queue.pop t.injectq) in
    Mutex.unlock t.inject_lock;
    match fd with
    | None -> continue := false
    | Some fd -> register_conn t fd
  done

(* Gates resolved since the last round: promote, flush, and drop conns
   whose reply queue cleared. *)
let revisit_gated t =
  if Hashtbl.length t.gated > 0 then begin
    let entries = Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.gated [] in
    List.iter
      (fun (k, c) ->
        if c.dead then Hashtbl.remove t.gated k
        else begin
          flush_out t c;
          if not c.dead then update_interest t c;
          if c.dead || Queue.is_empty c.outq then Hashtbl.remove t.gated k
        end)
      entries
  end

let accept_ready t =
  match t.listen_fd with
  | None -> ()
  | Some listen_fd ->
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true listen_fd with
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        continue := false
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        (* out of descriptors: nothing to do but stop accepting this round *)
        Log.warn (fun m -> m "accept: out of file descriptors");
        continue := false
      | exception Unix.Unix_error _ -> continue := false
      | fd, _ ->
        if not (try_admit t.shared) then begin
          (* accept-and-drop beats leaving the backlog to time out: the
             client sees a crisp close instead of a hang *)
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else register_conn t fd
    done

let drain_stop_pipe t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.stop_r b 0 64 with
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* The self-pipe fired: clear the wake dedup BEFORE draining so a kick
   racing the drain leaves a byte for the next round, then handle whatever
   the byte meant — stop, adopted fds, resolved gates. *)
let handle_wake t =
  Atomic.set t.wake_flag false;
  drain_stop_pipe t;
  if not (Atomic.get t.stop_flag) then begin
    drain_inject t;
    revisit_gated t
  end

(* One readiness round on the poll backend: build the interleaved
   [fd; events] spec from live connections, mirror conns into an array so
   result slots map back. *)
let poll_round t =
  let n = Hashtbl.length t.conns in
  let has_listen = t.listen_ifd >= 0 in
  let extra = if has_listen then 2 else 1 in
  let spec = Array.make ((n + extra) * 2) 0 in
  let index = Array.make (n + extra) None in
  spec.(0) <- fd_int t.stop_r;
  spec.(1) <- ev_in;
  if has_listen then begin
    spec.(2) <- t.listen_ifd;
    spec.(3) <- ev_in
  end;
  let slot = ref extra in
  Hashtbl.iter
    (fun ifd c ->
      let i = !slot in
      if i < n + extra then begin
        spec.(i * 2) <- ifd;
        spec.(i * 2 + 1) <- c.reg_ev;
        index.(i) <- Some c;
        incr slot
      end)
    t.conns;
  let revents = poll_fds spec (-1) in
  let stop_hit = Array.length revents > 0 && revents.(0) land (ev_in lor ev_err) <> 0 in
  if stop_hit then handle_wake t;
  if has_listen && Array.length revents > 1 && revents.(1) land ev_in <> 0 then
    accept_ready t;
  for i = extra to Array.length revents - 1 do
    match index.(i) with
    | None -> ()
    | Some c ->
      let ev = revents.(i) in
      if ev land ev_err <> 0 then close_conn t c
      else begin
        if ev land ev_out <> 0 then on_writable t c;
        if ev land ev_in <> 0 && not c.dead then on_readable t c
      end
  done

let epoll_round t =
  let evs = epoll_wait t.epfd (-1) in
  let n = Array.length evs / 2 in
  for i = 0 to n - 1 do
    let ifd = evs.(i * 2) and ev = evs.(i * 2 + 1) in
    if t.listen_ifd >= 0 && ifd = t.listen_ifd then
      (if ev land ev_in <> 0 then accept_ready t)
    else if ifd = fd_int t.stop_r then handle_wake t
    else
      (* a conn closed earlier in this same batch is simply gone *)
      match Hashtbl.find_opt t.conns ifd with
      | None -> ()
      | Some c ->
        if ev land ev_err <> 0 then close_conn t c
        else begin
          if ev land ev_out <> 0 then on_writable t c;
          if ev land ev_in <> 0 && not c.dead then on_readable t c
        end
  done

let run t =
  (match t.listen_fd with
  | Some fd ->
    Unix.set_nonblock fd;
    if t.epfd >= 0 then backend_add t t.listen_ifd ev_in
  | None -> ());
  if t.epfd >= 0 then backend_add t (fd_int t.stop_r) ev_in;
  (while not (Atomic.get t.stop_flag) do
     if t.epfd >= 0 then epoll_round t else poll_round t
   done);
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (fun c -> close_conn t c) conns;
  (* fds handed over but never registered still belong to this loop *)
  Mutex.lock t.inject_lock;
  Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.injectq;
  Queue.clear t.injectq;
  Mutex.unlock t.inject_lock;
  if t.epfd >= 0 then (try Unix.close (fd_of_int t.epfd) with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  try Unix.close t.stop_w with Unix.Unix_error _ -> ()
