module Io = Delphic_core.Snapshot_io
module Parsers = Delphic_stream.Parsers

type session = {
  mutable runner : Families.t;  (* replaced wholesale by MERGE *)
  mutable adds : int;  (* ADD attempts, the per-session line counter *)
  mutable parse_rejects : int;
  mutable last_estimate : float;
  mutable merges : int;
}

type t = {
  lock : Mutex.t;
  sessions : (string, session) Hashtbl.t;
  base_seed : int;
  mutable opened : int;  (* distinct seeds for successive sessions *)
}

let create ~seed = { lock = Mutex.create (); sessions = Hashtbl.create 16; base_seed = seed; opened = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let next_seed t =
  t.opened <- t.opened + 1;
  t.base_seed + (7919 * t.opened)

let find t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> Ok s
  | None -> Error (Protocol.Unknown_session name)

let open_session t ~name ~family ~epsilon ~delta ~log2_universe =
  with_lock t (fun () ->
      if Hashtbl.mem t.sessions name then Error (Protocol.Session_exists name)
      else
        match Families.create ~family ~epsilon ~delta ~log2_universe ~seed:(next_seed t) with
        | Error msg -> Error (Protocol.Bad_params msg)
        | Ok runner ->
          Hashtbl.replace t.sessions name
            { runner; adds = 0; parse_rejects = 0; last_estimate = 0.0; merges = 0 };
          Ok ())

let add t ~name ~payload =
  with_lock t (fun () ->
      match find t name with
      | Error e -> Error e
      | Ok s -> (
        s.adds <- s.adds + 1;
        match Families.add s.runner ~lineno:s.adds payload with
        | () -> Ok ()
        | exception Parsers.Parse_error { line; msg } ->
          s.parse_rejects <- s.parse_rejects + 1;
          Error (Protocol.Bad_line { line; msg })))

(* One mutex acquisition for the whole frame — the point of ADDB.  A payload
   that fails to parse is recorded as (index, msg) and the rest of the frame
   still lands, mirroring the singleton path's keep-the-session-usable
   contract. *)
let add_batch t ~name ~payloads =
  with_lock t (fun () ->
      match find t name with
      | Error e -> Error e
      | Ok s ->
        let accepted = ref 0 in
        let errors = ref [] in
        List.iteri
          (fun i payload ->
            s.adds <- s.adds + 1;
            match Families.add s.runner ~lineno:s.adds payload with
            | () -> incr accepted
            | exception Parsers.Parse_error { line = _; msg } ->
              s.parse_rejects <- s.parse_rejects + 1;
              errors := (i, msg) :: !errors)
          payloads;
        Ok (!accepted, List.rev !errors))

let estimate t ~name =
  with_lock t (fun () ->
      match find t name with
      | Error e -> Error e
      | Ok s ->
        let v = Families.estimate s.runner in
        s.last_estimate <- v;
        Ok v)

let stats t ~name =
  with_lock t (fun () ->
      match find t name with
      | Error e -> Error e
      | Ok s ->
        Ok
          {
            Protocol.family = Families.family_token s.runner;
            items = Families.items s.runner;
            entries = Families.entries s.runner;
            exact = Families.is_exact s.runner;
            last_estimate = s.last_estimate;
            parse_rejects = s.parse_rejects;
            merges = s.merges;
          })

let close t ~name =
  with_lock t (fun () ->
      match find t name with
      | Error e -> Error e
      | Ok _ ->
        Hashtbl.remove t.sessions name;
        Ok ())

let snapshot_session s ~path =
  match Io.save ~path (Families.to_io ~merges:s.merges s.runner) with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Protocol.Io_error msg)
  | exception Invalid_argument msg -> Error (Protocol.Server_error msg)

let snapshot_to t ~name ~path =
  with_lock t (fun () ->
      match find t name with Error e -> Error e | Ok s -> snapshot_session s ~path)

let fetch t ~name =
  with_lock t (fun () ->
      match find t name with
      | Error e -> Error e
      | Ok s -> (
        match Io.to_wire (Families.to_io ~merges:s.merges s.runner) with
        | encoded -> Ok encoded
        | exception Invalid_argument msg -> Error (Protocol.Server_error msg)))

let merge_in t ~name ~encoded =
  with_lock t (fun () ->
      match find t name with
      | Error e -> Error e
      | Ok s -> (
        match Io.of_wire encoded with
        | Error msg -> Error (Protocol.Bad_params msg)
        | Ok io -> (
          match Families.of_io io ~seed:(next_seed t) with
          | Error msg -> Error (Protocol.Bad_params msg)
          | Ok other -> (
            match Families.merge s.runner other ~seed:(next_seed t) with
            | Error msg -> Error (Protocol.Bad_params msg)
            | Ok merged ->
              s.runner <- merged;
              s.adds <- s.adds + io.Io.items;
              s.merges <- s.merges + 1 + io.Io.merges;
              Ok ()))))

let restore_session t ~name ~path =
  (* caller holds the lock *)
  if Hashtbl.mem t.sessions name then Error (Protocol.Session_exists name)
  else
    match Io.load ~path with
    | Error msg -> Error (Protocol.Io_error msg)
    | Ok io -> (
      match Families.of_io io ~seed:(next_seed t) with
      | Error msg -> Error (Protocol.Io_error msg)
      | Ok runner ->
        Hashtbl.replace t.sessions name
          {
            runner;
            adds = io.Io.items;
            parse_rejects = 0;
            last_estimate = 0.0;
            merges = io.Io.merges;
          };
        Ok ())

let restore_from t ~name ~path = with_lock t (fun () -> restore_session t ~name ~path)

let names t =
  with_lock t (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) t.sessions [] |> List.sort compare)

let spool_path dir name = Filename.concat dir (name ^ ".snap")

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let snapshot_all t ~dir =
  with_lock t (fun () ->
      match mkdir_p dir with
      | exception Unix.Unix_error (e, _, _) ->
        List.map
          (fun (name, _) -> (name, Error (Unix.error_message e)))
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sessions [])
      | () ->
        Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.sessions []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, s) ->
               let path = spool_path dir name in
               match snapshot_session s ~path with
               | Ok () -> (name, Ok path)
               | Error e -> (name, Error (Protocol.describe_error e))))

let restore_all t ~dir =
  with_lock t (fun () ->
      match Sys.readdir dir with
      | exception Sys_error _ -> []
      | files ->
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".snap")
        |> List.sort compare
        |> List.map (fun f ->
               let name = Filename.chop_suffix f ".snap" in
               let path = Filename.concat dir f in
               match restore_session t ~name ~path with
               | Ok () ->
                 (try Sys.remove path with Sys_error _ -> ());
                 (name, Ok ())
               | Error e -> (name, Error (Protocol.describe_error e))))

let dispatch t (req : Protocol.request) : Protocol.response =
  let reply = function Ok r -> r | Error e -> Protocol.Error_reply e in
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Open { session; family; epsilon; delta; log2_universe } ->
    reply
      (Result.map
         (fun () -> Protocol.Ok_reply (Some ("opened " ^ session)))
         (open_session t ~name:session ~family ~epsilon ~delta ~log2_universe))
  | Protocol.Add { session; payload } ->
    reply (Result.map (fun () -> Protocol.Ok_reply None) (add t ~name:session ~payload))
  | Protocol.Add_batch { session; payloads } ->
    reply
      (Result.map
         (fun (accepted, errors) -> Protocol.Ok_batch { accepted; errors })
         (add_batch t ~name:session ~payloads))
  | Protocol.Est { session } ->
    reply
      (Result.map
         (fun value -> Protocol.Estimate { value; degraded = false })
         (estimate t ~name:session))
  | Protocol.Stats { session } ->
    reply (Result.map (fun s -> Protocol.Stats_reply s) (stats t ~name:session))
  | Protocol.Snapshot { session; path } ->
    reply
      (Result.map
         (fun () -> Protocol.Ok_reply (Some ("snapshotted " ^ session)))
         (snapshot_to t ~name:session ~path))
  | Protocol.Restore { session; path } ->
    reply
      (Result.map
         (fun () -> Protocol.Ok_reply (Some ("restored " ^ session)))
         (restore_from t ~name:session ~path))
  | Protocol.Fetch { session } ->
    reply (Result.map (fun encoded -> Protocol.Sketch encoded) (fetch t ~name:session))
  | Protocol.Merge { session; encoded } ->
    reply
      (Result.map
         (fun () -> Protocol.Ok_reply (Some ("merged into " ^ session)))
         (merge_in t ~name:session ~encoded))
  | Protocol.Close { session } ->
    reply (Result.map (fun () -> Protocol.Ok_reply (Some ("closed " ^ session))) (close t ~name:session))
