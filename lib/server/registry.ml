module Io = Delphic_core.Snapshot_io
module Parsers = Delphic_stream.Parsers

let ( let* ) = Result.bind

type session = {
  slock : Mutex.t;  (* serialises estimator mutation for this session only *)
  mutable runner : Families.t;  (* replaced wholesale by MERGE *)
  mutable adds : int;  (* ADD attempts, the per-session line counter *)
  mutable parse_rejects : int;
  mutable last_estimate : float;
  mutable merges : int;
  mutable wire_cache : (float option * string) option;
      (* the session's Fetch token keyed by the fetch's cutoff, memoised
         until the next mutation: a coordinator polling EST (or WIN at a
         stable cutoff bucket) on a quiescent shard pays the snapshot encode
         once, not per gather *)
  pending : (float option * string list) Queue.t;
      (* the replica log: ADDL batches (frame ts, payloads) acked but not
         yet absorbed into the estimator.  Every read materialises it
         first, so answers are always as fresh as the acks; element
         timestamps are the logged frame timestamps, so WIN semantics are
         byte-identical to the eager path *)
  mutable pending_n : int;
}

(* The table is striped: a session name hashes to one segment, whose mutex
   guards only that segment's [Hashtbl] — held for the lookup/insert/remove
   itself, never across estimator work.  Estimator mutation happens under
   the per-session [slock], so SNAPSHOT/EST on one session never blocks
   ADDB on another, even in the same segment. *)
type segment = { seg_lock : Mutex.t; sessions : (string, session) Hashtbl.t }

type t = {
  segments : segment array;
  base_seed : int;
  clock : unit -> float;
      (* query clock for WIN/EXPR-w cutoffs when the request does not pin
         one; injectable so tests and replay are deterministic *)
  meta : Mutex.t;  (* guards [opened] *)
  mutable opened : int;  (* distinct seeds for successive sessions *)
}

let create ?(stripes = 16) ?(clock = Unix.gettimeofday) ~seed () =
  if stripes < 1 then invalid_arg "Registry.create: need stripes >= 1";
  {
    segments =
      Array.init stripes (fun _ ->
          { seg_lock = Mutex.create (); sessions = Hashtbl.create 8 });
    base_seed = seed;
    clock;
    meta = Mutex.create ();
    opened = 0;
  }

let now t = t.clock ()

let with_mutex m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let segment_of t name = t.segments.(Hashtbl.hash name mod Array.length t.segments)

let next_seed t =
  with_mutex t.meta (fun () ->
      t.opened <- t.opened + 1;
      t.base_seed + (7919 * t.opened))

(* Lock ordering: a segment lock may be taken while holding nothing, or all
   segment locks together in index order (the whole-table operations); the
   [meta] and session locks are only ever taken under at most the segment
   locks and never the other way round, so no cycle exists. *)

let find_session t name =
  let seg = segment_of t name in
  with_mutex seg.seg_lock (fun () -> Hashtbl.find_opt seg.sessions name)

(* Run [f] on session [name] under its own lock.  The segment lock is
   released before [slock] is taken: a racing CLOSE can orphan the session
   so [f] mutates a table-less estimator, which is harmless — the stream
   semantics only promise that each session's operations serialise. *)
let with_session t name f =
  match find_session t name with
  | None -> Error (Protocol.Unknown_session name)
  | Some s -> with_mutex s.slock (fun () -> f s)

(* Absorb the replica log into the estimator (call with [slock] held).
   Malformed payloads only bump [parse_rejects]: the eager copy already
   reported the parse error to the sender, the log replica's job is just
   to not lose the well-formed ones. *)
let materialize s =
  if s.pending_n > 0 then begin
    s.wire_cache <- None;
    Queue.iter
      (fun (ts, payloads) ->
        List.iter
          (fun payload ->
            s.adds <- s.adds + 1;
            match Families.add ?ts s.runner ~lineno:s.adds payload with
            | () -> ()
            | exception Parsers.Parse_error _ ->
              s.parse_rejects <- s.parse_rejects + 1)
          payloads)
      s.pending;
    Queue.clear s.pending;
    s.pending_n <- 0
  end

(* Memory backstop for the replica log: past this many logged payloads the
   session absorbs them inline, trading the deferred-CPU win for a bound. *)
let max_pending = 131_072

let add_log ?ts t ~name ~payloads =
  with_session t name (fun s ->
      let k = List.length payloads in
      Queue.push (ts, payloads) s.pending;
      s.pending_n <- s.pending_n + k;
      if s.pending_n > max_pending then materialize s;
      Ok k)

let open_session t ~name ~family ~epsilon ~delta ~log2_universe =
  let seg = segment_of t name in
  with_mutex seg.seg_lock (fun () ->
      if Hashtbl.mem seg.sessions name then Error (Protocol.Session_exists name)
      else
        match Families.create ~family ~epsilon ~delta ~log2_universe ~seed:(next_seed t) with
        | Error msg -> Error (Protocol.Bad_params msg)
        | Ok runner ->
          Hashtbl.replace seg.sessions name
            {
              slock = Mutex.create ();
              runner;
              adds = 0;
              parse_rejects = 0;
              last_estimate = 0.0;
              merges = 0;
              wire_cache = None;
              pending = Queue.create ();
              pending_n = 0;
            };
          Ok ())

let add ?ts t ~name ~payload =
  with_session t name (fun s ->
      s.adds <- s.adds + 1;
      s.wire_cache <- None;
      match Families.add ?ts s.runner ~lineno:s.adds payload with
      | () -> Ok ()
      | exception Parsers.Parse_error { line; msg } ->
        s.parse_rejects <- s.parse_rejects + 1;
        Error (Protocol.Bad_line { line; msg }))

(* One session-mutex acquisition for the whole frame — the point of ADDB.
   A payload that fails to parse is recorded as (index, msg) and the rest of
   the frame still lands, mirroring the singleton path's
   keep-the-session-usable contract. *)
let add_batch ?ts t ~name ~payloads =
  with_session t name (fun s ->
      s.wire_cache <- None;
      let accepted = ref 0 in
      let errors = ref [] in
      List.iteri
        (fun i payload ->
          s.adds <- s.adds + 1;
          match Families.add ?ts s.runner ~lineno:s.adds payload with
          | () -> incr accepted
          | exception Parsers.Parse_error { line = _; msg } ->
            s.parse_rejects <- s.parse_rejects + 1;
            errors := (i, msg) :: !errors)
        payloads;
      Ok (!accepted, List.rev !errors))

let estimate t ~name =
  with_session t name (fun s ->
      materialize s;
      let v = Families.estimate s.runner in
      s.last_estimate <- v;
      Ok v)

(* Windowed estimate: the absolute cutoff is the pinned query instant (or
   the injectable clock's now) minus the window; [seconds = infinity] gives
   [cutoff = -inf] and agrees with EST exactly.  [last_estimate] is the
   full-stream STATS figure, so WIN leaves it alone. *)
let win t ~name ~seconds ~at =
  with_session t name (fun s ->
      materialize s;
      let at = match at with Some a -> a | None -> now t in
      Ok (Families.estimate_window s.runner ~cutoff:(at -. seconds)))

let stats t ~name =
  with_session t name (fun s ->
      materialize s;
      Ok
        {
          Protocol.family = Families.family_token s.runner;
          items = Families.items s.runner;
          entries = Families.entries s.runner;
          exact = Families.is_exact s.runner;
          last_estimate = s.last_estimate;
          parse_rejects = s.parse_rejects;
          merges = s.merges;
        })

let close t ~name =
  let seg = segment_of t name in
  with_mutex seg.seg_lock (fun () ->
      if Hashtbl.mem seg.sessions name then begin
        Hashtbl.remove seg.sessions name;
        Ok ()
      end
      else Error (Protocol.Unknown_session name))

let snapshot_session ?fsync s ~path =
  materialize s;
  match Io.save ?fsync ~path (Families.to_io ~merges:s.merges s.runner) with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Protocol.Io_error msg)
  | exception Invalid_argument msg -> Error (Protocol.Server_error msg)

let snapshot_to t ~name ~path =
  with_session t name (fun s -> snapshot_session s ~path)

let fetch ?cutoff t ~name =
  with_session t name (fun s ->
      materialize s;
      match s.wire_cache with
      | Some (key, encoded) when key = cutoff -> Ok encoded
      | _ -> (
        let io = Families.to_io ~merges:s.merges s.runner in
        let io = match cutoff with None -> io | Some c -> Io.restrict ~cutoff:c io in
        match Io.to_wire io with
        | encoded ->
          s.wire_cache <- Some (cutoff, encoded);
          Ok encoded
        | exception Invalid_argument msg -> Error (Protocol.Server_error msg)))

let merge_in t ~name ~encoded =
  with_session t name (fun s ->
      materialize s;
      match Io.of_wire encoded with
      | Error msg -> Error (Protocol.Bad_params msg)
      | Ok io -> (
        match Families.of_io io ~seed:(next_seed t) with
        | Error msg -> Error (Protocol.Bad_params msg)
        | Ok other -> (
          match Families.merge s.runner other ~seed:(next_seed t) with
          | Error msg -> Error (Protocol.Bad_params msg)
          | Ok merged ->
            s.runner <- merged;
            s.adds <- s.adds + io.Io.items;
            s.merges <- s.merges + 1 + io.Io.merges;
            s.wire_cache <- None;
            Ok ())))

let default_expr_samples = 256
let max_expr_samples = 65536

(* An EXPR query in three steps: clone each leaf session under its own lock
   (cheap snapshot round-trip, so ingestion resumes immediately), fold the
   clones into one union sketch, then sample-and-probe lock-free on the
   clones.  Cross-leaf consistency is per-leaf point-in-time — the same
   contract a coordinator gather gives. *)
let expr_query ?w t ~expr ~m =
  let module E = Protocol.Expr_ast in
  let names = E.leaves expr in
  if List.length names > E.max_leaves then
    Error
      (Protocol.Bad_params
         (Printf.sprintf "expression names %d distinct sessions; the cap is %d"
            (List.length names) E.max_leaves))
  else
    let samples =
      match m with
      | None -> default_expr_samples
      | Some n -> min n max_expr_samples
    in
    (* The window cutoff is computed once, before any leaf is cloned, so
       every leaf is restricted against the same instant. *)
    let cutoff = Option.map (fun w -> now t -. w) w in
    let rec clone acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        let copied =
          with_session t name (fun s ->
              materialize s;
              Result.map_error
                (fun msg -> Protocol.Server_error msg)
                (match cutoff with
                | None -> Families.copy s.runner ~seed:(next_seed t)
                | Some c -> Families.restrict s.runner ~cutoff:c ~seed:(next_seed t)))
        in
        match copied with
        | Ok c -> clone ((name, c) :: acc) rest
        | Error e -> Error e)
    in
    let* leaves = clone [] names in
    let* union =
      match leaves with
      | [] -> Error (Protocol.Bad_params "expression names no sessions")
      | (_, first) :: rest ->
        List.fold_left
          (fun acc (_, c) ->
            let* u = acc in
            Result.map_error
              (fun msg -> Protocol.Bad_params msg)
              (Families.merge u c ~seed:(next_seed t)))
          (Ok first) rest
    in
    match Families.expr_estimate ~union ~leaves ~expr ~samples with
    | Ok outcome -> Ok outcome
    | Error msg -> Error (Protocol.Bad_params msg)

(* caller holds the segment lock for [name] (or all of them) *)
let restore_session t ~name ~path =
  let seg = segment_of t name in
  if Hashtbl.mem seg.sessions name then Error (Protocol.Session_exists name)
  else
    match Io.load ~path with
    | Error msg -> Error (Protocol.Io_error msg)
    | Ok io -> (
      match Families.of_io io ~seed:(next_seed t) with
      | Error msg -> Error (Protocol.Io_error msg)
      | Ok runner ->
        Hashtbl.replace seg.sessions name
          {
            slock = Mutex.create ();
            runner;
            adds = io.Io.items;
            parse_rejects = 0;
            last_estimate = 0.0;
            merges = io.Io.merges;
            wire_cache = None;
            pending = Queue.create ();
            pending_n = 0;
          };
        Ok ())

let restore_from t ~name ~path =
  let seg = segment_of t name in
  with_mutex seg.seg_lock (fun () -> restore_session t ~name ~path)

(* Whole-table operations take every segment lock in index order (cycle-free
   by the ordering argument above), so they observe one consistent table:
   no session can be opened, closed, or restored while they run.  Per-session
   estimator reads still go through each session's own lock, so a handler
   mid-ADDB finishes its frame before the spool encodes that session. *)
let lock_all t f =
  Array.iter (fun seg -> Mutex.lock seg.seg_lock) t.segments;
  Fun.protect
    ~finally:(fun () -> Array.iter (fun seg -> Mutex.unlock seg.seg_lock) t.segments)
    f

let all_sessions_locked t =
  Array.to_list t.segments
  |> List.concat_map (fun seg ->
         Hashtbl.fold (fun name s acc -> (name, s) :: acc) seg.sessions [])

let names t =
  lock_all t (fun () -> List.map fst (all_sessions_locked t) |> List.sort compare)

(* The [SESSIONS] enumeration: every open session with its creation triple,
   sorted by name.  This is what makes workers the durable truth for a
   warm-standby coordinator — takeover re-registers routing entries from
   here instead of from a coordinator journal. *)
let session_descs t =
  lock_all t (fun () ->
      all_sessions_locked t
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map (fun (name, s) ->
             with_mutex s.slock (fun () ->
                 let epsilon, delta, log2u = Families.params s.runner in
                 {
                   Protocol.sd_name = name;
                   sd_family = Families.family_token s.runner;
                   sd_epsilon = epsilon;
                   sd_delta = delta;
                   sd_log2_universe = log2u;
                 })))

let spool_path dir name = Filename.concat dir (name ^ ".snap")

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let snapshot_all ?fsync t ~dir =
  lock_all t (fun () ->
      let sessions = all_sessions_locked t in
      match mkdir_p dir with
      | exception Unix.Unix_error (e, _, _) ->
        List.map (fun (name, _) -> (name, Error (Unix.error_message e))) sessions
      | () ->
        sessions
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, s) ->
               with_mutex s.slock (fun () ->
                   let path = spool_path dir name in
                   match snapshot_session ?fsync s ~path with
                   | Ok () -> (name, Ok path)
                   | Error e -> (name, Error (Protocol.describe_error e)))))

let restore_all ?(consume = true) t ~dir =
  lock_all t (fun () ->
      match Sys.readdir dir with
      | exception Sys_error _ -> []
      | files ->
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".snap")
        |> List.sort compare
        |> List.map (fun f ->
               let name = Filename.chop_suffix f ".snap" in
               let path = Filename.concat dir f in
               match restore_session t ~name ~path with
               | Ok () ->
                 if consume then (try Sys.remove path with Sys_error _ -> ());
                 (name, Ok ())
               | Error e -> (name, Error (Protocol.describe_error e))))

let dispatch t (req : Protocol.request) : Protocol.response =
  let reply = function Ok r -> r | Error e -> Protocol.Error_reply e in
  match req with
  | Protocol.Ping -> Protocol.Pong
  (* The registry has no process identity; the TCP server intercepts HELLO
     and answers with its real generation.  0 = "not generation-fenced". *)
  | Protocol.Hello -> Protocol.Hello_reply { generation = 0; epoch = 0 }
  (* Process-wide figures (conns, domains, WAL queue) live in the server,
     not the session registry; the TCP server intercepts bare STATS just
     like HELLO.  A registry reached directly has nothing to report. *)
  | Protocol.Server_stats ->
    Protocol.Server_stats_reply
      {
        conns = 0;
        shed = 0;
        dispatched = [];
        wal_queue = 0;
        wal_last_group = 0;
        wal_groups = 0;
        shard_fresh = [];
      }
  (* Epoch fencing is per-connection state, which only the TCP server has;
     a registry reached directly echoes the announce unfenced. *)
  | Protocol.Coord_epoch { epoch } -> Protocol.Epoch_reply { epoch }
  | Protocol.Sessions -> Protocol.Sessions_reply (session_descs t)
  (* Leases are between coordinators; a plain registry is never a lease
     target. *)
  | Protocol.Lease -> Protocol.Error_reply (Protocol.Unknown_command "LEASE")
  | Protocol.Open { session; family; epsilon; delta; log2_universe } ->
    reply
      (Result.map
         (fun () -> Protocol.Ok_reply (Some ("opened " ^ session)))
         (open_session t ~name:session ~family ~epsilon ~delta ~log2_universe))
  | Protocol.Add { session; payload; ts } ->
    reply (Result.map (fun () -> Protocol.Ok_reply None) (add ?ts t ~name:session ~payload))
  | Protocol.Add_batch { session; payloads; ts } ->
    reply
      (Result.map
         (fun (accepted, errors) -> Protocol.Ok_batch { accepted; errors })
         (add_batch ?ts t ~name:session ~payloads))
  (* Replica-log append: same ack shape as ADDB so coordinator pipelining
     treats both uniformly; parse errors surface at materialisation. *)
  | Protocol.Add_log { session; payloads; ts } ->
    reply
      (Result.map
         (fun accepted -> Protocol.Ok_batch { accepted; errors = [] })
         (add_log ?ts t ~name:session ~payloads))
  | Protocol.Est { session } ->
    reply
      (Result.map
         (fun value -> Protocol.Estimate { value; degraded = false; stale_shards = [] })
         (estimate t ~name:session))
  | Protocol.Win { session; seconds; at } ->
    reply
      (Result.map
         (fun value -> Protocol.Estimate { value; degraded = false; stale_shards = [] })
         (win t ~name:session ~seconds ~at))
  | Protocol.Stats { session } ->
    reply (Result.map (fun s -> Protocol.Stats_reply s) (stats t ~name:session))
  | Protocol.Snapshot { session; path } ->
    reply
      (Result.map
         (fun () -> Protocol.Ok_reply (Some ("snapshotted " ^ session)))
         (snapshot_to t ~name:session ~path))
  | Protocol.Restore { session; path } ->
    reply
      (Result.map
         (fun () -> Protocol.Ok_reply (Some ("restored " ^ session)))
         (restore_from t ~name:session ~path))
  | Protocol.Fetch { session; cutoff } ->
    reply (Result.map (fun encoded -> Protocol.Sketch encoded) (fetch ?cutoff t ~name:session))
  | Protocol.Merge { session; encoded } ->
    reply
      (Result.map
         (fun () -> Protocol.Ok_reply (Some ("merged into " ^ session)))
         (merge_in t ~name:session ~encoded))
  | Protocol.Close { session } ->
    reply (Result.map (fun () -> Protocol.Ok_reply (Some ("closed " ^ session))) (close t ~name:session))
  | Protocol.Expr { expr; m; w } ->
    reply
      (Result.map
         (Protocol.expr_reply_of_outcome ~degraded:false)
         (expr_query ?w t ~expr ~m))
