(** Concurrent session table of the estimation service.

    Maps session names to running {!Families} estimators plus per-session
    counters (items processed, parse rejects, last estimate).  The table is
    striped: a session name hashes to one of [stripes] segments, each with
    its own mutex held only for the lookup/insert/remove itself, and every
    session carries its own mutex serialising estimator mutation — so
    handler threads ingesting into different sessions never contend, and a
    long [SNAPSHOT]/[EST] on one session cannot block [ADDB] on another.
    Whole-table operations ({!names}, {!snapshot_all}, {!restore_all}) take
    every segment lock in index order and therefore see one consistent
    table.  Per-session operations still serialise, which matches the
    stream semantics (sets are processed one at a time).

    {!dispatch} is the full request → response step minus the socket — the
    unit under test in [test/test_protocol.ml] and the hot path measured by
    the [serve/*] micro-benchmarks. *)

type t

val create : ?stripes:int -> ?clock:(unit -> float) -> seed:int -> unit -> t
(** [seed] is the base PRNG seed; each opened or restored session derives a
    distinct seed from it.  [stripes] (default 16) is the number of
    mutex-striped segments; raises [Invalid_argument] when < 1.  [clock]
    (default [Unix.gettimeofday]) supplies the query instant for [WIN] and
    windowed [EXPR] requests that do not pin one — injectable so tests and
    WAL replay are deterministic. *)

val dispatch : t -> Protocol.request -> Protocol.response

val open_session :
  t ->
  name:string ->
  family:Protocol.family ->
  epsilon:float ->
  delta:float ->
  log2_universe:float ->
  (unit, Protocol.error) result

val add : ?ts:float -> t -> name:string -> payload:string -> (unit, Protocol.error) result
(** One bad payload yields [Error (Bad_line _)] and bumps the session's
    reject counter; the session stays usable.  [ts] (default 0) is the
    logical ingest timestamp recorded per element; the TCP server resolves a
    missing [t=] to its receive clock {e before} dispatching, so a bare
    registry only sees explicit timestamps. *)

val add_batch :
  ?ts:float ->
  t -> name:string -> payloads:string list -> (int * (int * string) list, Protocol.error) result
(** Feed a whole [ADDB] frame under a single mutex acquisition.  Returns
    [(accepted, errors)] where [errors] pairs each rejected payload's
    0-based index in the frame with its parse message; payloads after a bad
    one still land.  [Error] only when the session does not exist. *)

val add_log :
  ?ts:float -> t -> name:string -> payloads:string list -> (int, Protocol.error) result
(** Append an [ADDL] frame to the session's replica log without touching
    the estimator: O(1) per frame, acked immediately.  The log is absorbed
    ("materialised") by the session's next read — EST, WIN, STATS,
    SNAPSHOT, MERGE, EXPR — or inline past a memory backstop, with element
    timestamps taken from each logged frame, so answers and window
    semantics are identical to the eager path.  Parse errors surface as
    reject-counter bumps at materialisation (the eager replica already
    reported them to the sender).  Returns the payload count. *)

val estimate : t -> name:string -> (float, Protocol.error) result

val win :
  t -> name:string -> seconds:float -> at:float option -> (float, Protocol.error) result
(** Union estimate restricted to elements last seen within the trailing
    [seconds] of the query instant ([at], or the registry clock when
    [None]).  [seconds = infinity] agrees with {!estimate}'s
    Horvitz–Thompson variant exactly.  Non-destructive; does not update the
    STATS [last_estimate]. *)

val stats : t -> name:string -> (Protocol.stats, Protocol.error) result

val close : t -> name:string -> (unit, Protocol.error) result

val snapshot_to : t -> name:string -> path:string -> (unit, Protocol.error) result

val restore_from : t -> name:string -> path:string -> (unit, Protocol.error) result
(** Opens session [name] from a snapshot file; fails if the name is taken. *)

val fetch : ?cutoff:float -> t -> name:string -> (string, Protocol.error) result
(** The session's state as one {!Delphic_core.Snapshot_io.to_wire} token —
    the worker half of the cluster's gather step.  With [cutoff], entries
    last seen before that absolute instant are dropped from the token
    ({!Delphic_core.Snapshot_io.restrict}) — the windowed gather.  The token
    is memoised per [(cutoff, state)] pair, so repeated idle gathers at a
    stable cutoff bucket encode once. *)

val merge_in : t -> name:string -> encoded:string -> (unit, Protocol.error) result
(** Fold a wire-encoded peer sketch into session [name]
    ({!Families.merge} semantics); the session's item and merge counters
    absorb the peer's.  [Error (Bad_params _)] on an undecodable token or a
    family/parameter mismatch, leaving the session untouched. *)

val default_expr_samples : int
(** Union draws per [EXPR] query when the request carries no [m=] (256). *)

val max_expr_samples : int
(** Hard cap on requested [m=] (65536); larger requests are clamped, not
    refused — more samples only cost time. *)

val expr_query :
  ?w:float ->
  t ->
  expr:Protocol.Expr_ast.t ->
  m:int option ->
  (Protocol.Expr_ast.outcome, Protocol.error) result
(** Evaluate a set expression over open sessions by sample-and-probe
    ({!Families.expr_estimate}).  Each leaf session is cloned under its own
    lock and the query then runs lock-free on the clones, so concurrent
    ingestion is never blocked.  [m] is the union-sample count (default 256,
    capped at 65536).  [w] restricts every leaf to the trailing [w] seconds
    of the registry clock — the cutoff is computed once, before any leaf is
    cloned, so all leaves see the same instant.  [Error (Bad_params _)] when
    the expression names more than {!Delphic_expr.Expr.max_leaves} distinct
    sessions or mixes families; [Error (Unknown_session _)] on an unopened
    leaf. *)

val names : t -> string list

val snapshot_all : ?fsync:bool -> t -> dir:string -> (string * (string, string) result) list
(** Persist every open session to [dir/<name>.snap] (creating [dir]);
    returns per-session outcomes ([Ok path] or the failure message).  Used
    by the server's graceful shutdown.  [fsync] (default [false]) forces
    each snapshot to stable storage before its rename — required when the
    caller is a {!Wal} checkpoint about to truncate the journal. *)

val restore_all : ?consume:bool -> t -> dir:string -> (string * (unit, string) result) list
(** Re-open every [dir/<name>.snap].  With [consume] (the default) each
    successfully restored spool file is removed so stale state cannot
    resurrect later — the graceful-shutdown spool contract.  Checkpoint
    recovery passes [~consume:false]: the checkpoint must survive the
    restore so a second crash before the next checkpoint can recover
    again. *)
