(** Wire protocol of the delphic estimation service: a pure request/response
    codec with typed errors, fully unit-testable without sockets.

    The protocol is newline-delimited text, one request per line, one
    response line per request — scriptable with [nc]/[telnet].  Grammar
    (trailing [\r] tolerated, verbs case-insensitive):

    {v
    OPEN <session> <family> <eps> <delta> <log2u>   open an estimation session
    ADD <session> [t=<secs>] <set-line>             feed one set (family line format)
    ADDB <session> [t=<secs>] <k> <tok1> ... <tokk> feed k sets in one frame
    EST <session>                                   current union-size estimate
    WIN <session> <seconds> [at=<abs-secs>]         estimate over the trailing window
    STATS <session>                                 session counters
    STATS                                           process-wide stats (reply: SRVSTATS ...)
    SNAPSHOT <session> <path>                       persist the session to a file
    SNAPSHOT <session> [cut=<abs-secs>]             reply with the wire-encoded sketch
    RESTORE <session> <path>                        open a session from a snapshot
    MERGE <session> <wire-snapshot>                 fold a peer's sketch into the session
    CLOSE <session>                                 drop the session
    EXPR [m=<samples>] [w=<secs>] <expression>      set-expression cardinality estimate
    PING                                            liveness probe
    HELLO                                           identity probe (reply: HELLO <generation> [epoch=<e>])
    COORD <epoch>                                   stamp this connection with a coordinator epoch
    SESSIONS                                        enumerate open sessions with their parameters
    LEASE                                           coordinator lease probe (reply: LEASE epoch=<e> role=...)
    v}

    [t=<secs>] is the optional logical ingest timestamp of an [ADD]/[ADDB]
    frame (no family line format starts with ["t="], so the token is
    unambiguous); when absent the server stamps its own receive time from an
    injectable clock.  [WIN] answers with the same [EST <float>] reply shape
    restricted to elements last seen in the trailing [<seconds>]; [at=]
    pins the query clock for reproducible runs.  [SNAPSHOT <s> cut=<abs>]
    is the windowed cluster fetch: the coordinator computes the absolute
    cutoff once and ships it, so every replica expires against the same
    instant.  [EXPR w=<secs>] restricts every leaf of the expression to the
    trailing window before evaluation.

    [ADDB] is the batched ingestion verb: each [tok] is one [ADD] payload
    percent-armored into a single space-free token ({!armor_payload}, the
    same escape scheme as the v2 sketch wire form), so a whole batch rides
    on one line and is answered by one line.  The reply is
    [OKB <accepted> [ERRAT <i> <msg>]...] ({!Ok_batch}): [accepted] counts
    payloads the estimator took, and each [ERRAT] pinpoints a rejected
    payload by its 0-based index in the frame — later payloads still land
    (a bad set costs itself, not its batch).

    [SNAPSHOT] with no path ({!Fetch}) and [MERGE] are the cluster verbs:
    any server can act as a worker, shipping its sketch to a coordinator as
    the single space-free token of {!Delphic_core.Snapshot_io.to_wire}, or
    absorbing a peer's.

    [<family>] is [rect] (axis-parallel boxes, dimension fixed by the first
    [ADD]), [dnf:<nvars>] (DIMACS-style terms), or [cov:<nbits>:<strength>]
    (test vectors, t-wise coverage).  [ADD] payloads reuse the
    {!Delphic_stream.Parsers} line formats verbatim.

    [EXPR] evaluates a set expression over open sessions — the grammar is
    that of {!Delphic_stream.Parsers.expr_of_string}: session names combined
    with [& | \ ^] and parentheses, [&] binding tighter, e.g.
    [EXPR (A & B) \ C].  The reply is
    [EXPR <float> support=<f> m=<d> probes=exact|sketch [DEGRADED]] when the
    estimator certifies a value, or
    [EXPR LOWSUPPORT support=<f> need=<f> m=<d> probes=...] when the
    evidence mass fell short ({!Expr_reply}).  A malformed expression is
    [ERR BAD-EXPR <column> <msg>].

    Responses: [OK [<info>]], [EST <float>], [EXPR ...], [STATS k=v ...],
    [PONG], or [ERR <CODE> <detail>].  Every response renders to exactly one
    line and parses back losslessly
    ({!parse_response} ∘ {!render_response} = id, the codec property tested
    in [test/test_protocol.ml]). *)

module Expr_ast = Delphic_expr.Expr

type family =
  | Rect  (** boxes; the dimension is pinned by the session's first [ADD] *)
  | Dnf of { nvars : int }
  | Cov of { nbits : int; strength : int }

type request =
  | Open of {
      session : string;
      family : family;
      epsilon : float;
      delta : float;
      log2_universe : float;
    }
  | Add of { session : string; payload : string; ts : float option }
      (** [ts] is the optional [t=<secs>] ingest timestamp; [None] means
          "stamp at receive time" (the server resolves it before journaling
          so WAL replay preserves window semantics) *)
  | Add_batch of { session : string; payloads : string list; ts : float option }
      (** wire form [ADDB <session> [t=<secs>] <k> <tok>{k}]; payloads are
          carried verbatim in memory and armored only on the wire; [ts]
          stamps the whole frame *)
  | Add_log of { session : string; payloads : string list; ts : float option }
      (** wire form [ADDL ...], the replica-log twin of [Add_batch]: the
          receiver appends the payloads to the session's pending log and
          acks (same [Ok_batch] shape) without touching the estimator —
          they are materialised on the session's next read or promotion.
          Coordinators ship backup replica copies this way, so redundancy
          costs an append rather than a second full estimator update on
          the ingest path. *)
  | Est of { session : string }
  | Win of { session : string; seconds : float; at : float option }
      (** wire form [WIN <session> <seconds> [at=<abs-secs>]]: the union
          estimate restricted to elements last seen within the trailing
          [seconds]; [at] pins the query clock (absent ⇒ server clock).
          Replies with {!Estimate}. *)
  | Stats of { session : string }
  | Snapshot of { session : string; path : string }
  | Restore of { session : string; path : string }
  | Fetch of { session : string; cutoff : float option }
      (** wire form [SNAPSHOT <session> [cut=<abs-secs>]] — the sketch comes
          back inline as a {!Sketch} reply instead of being written
          server-side; with [cutoff], entries last seen before the absolute
          instant are dropped from the reply (the cluster's windowed
          gather) *)
  | Merge of { session : string; encoded : string }
      (** [encoded] is a {!Delphic_core.Snapshot_io.to_wire} token *)
  | Close of { session : string }
  | Expr of { expr : Expr_ast.t; m : int option; w : float option }
      (** wire form [EXPR [m=<samples>] [w=<seconds>] <expression>]; [m]
          overrides the server's default union-sample count, [w] restricts
          every leaf to the trailing window.  Unknown or malformed option
          tokens are rejected with {!Bad_expr} naming the token and its
          1-based column. *)
  | Ping
  | Hello
      (** wire form [HELLO] — identity probe: the server answers
          [HELLO <generation>] ({!Hello_reply}), where the generation is a
          number that changes every time the process (re)starts.  The
          cluster coordinator uses it to tell "same worker, same state"
          apart from "worker restarted and lost its unjournalled tail".
          Pre-crash-safety servers answer [ERR UNSUPPORTED HELLO], which
          callers treat as "generation unknown, assume restart". *)
  | Server_stats
      (** wire form [STATS] with no session — process-wide figures: live
          connections, sheds, per-domain dispatch balance, WAL group-commit
          counters ({!Server_stats_reply}).  Older servers answer
          [ERR ARITY]. *)
  | Coord_epoch of { epoch : int }
      (** wire form [COORD <epoch>] — a coordinator announcing its fencing
          epoch on this connection.  The worker remembers the highest epoch
          it has ever seen; a mutation arriving later on a connection stamped
          with a lower epoch is refused with [ERR FENCED <current>] — the
          deposed-primary write fence.  Connections that never announce
          (direct clients) are never fenced.  Reply: {!Epoch_reply}. *)
  | Sessions
      (** wire form [SESSIONS] — enumerate open sessions with their creation
          parameters ({!Sessions_reply}).  A warm-standby coordinator taking
          over rebuilds its routing table from this: the workers, not a
          coordinator journal, are the durable truth. *)
  | Lease
      (** wire form [LEASE] — the standby's heartbeat probe against the
          active coordinator.  Reply {!Lease_reply} carries the primary's
          fencing epoch; a run of missed leases triggers takeover at a
          higher epoch. *)

type error =
  | Empty_request
  | Unknown_command of string
  | Wrong_arity of { command : string; expected : string }
  | Bad_number of { what : string; value : string }
  | Bad_family of string
  | Bad_session_name of string
  | Unknown_session of string
  | Session_exists of string
  | Bad_params of string
      (** estimator construction refused the (ε, δ, log2|Ω|) triple *)
  | Bad_expr of { pos : int; msg : string }
      (** an [EXPR] expression failed to parse; [pos] is the 1-based column
          in the expression text *)
  | Bad_line of { line : int; msg : string }
      (** an [ADD] payload failed to parse; [line] counts the session's
          [ADD]s, so the client can locate the bad set in its own stream *)
  | Io_error of string
  | Server_error of string
  | Fenced of int
      (** a mutation arrived on a connection stamped with a stale coordinator
          epoch; the payload is the epoch currently in force *)
  | Read_only of string
      (** the node answers queries but refuses mutations — a warm standby
          whose primary is still alive, or a deposed primary that has been
          fenced *)

type stats = {
  family : string;  (** family token, e.g. ["dnf:40"] *)
  items : int;  (** sets processed *)
  entries : int;  (** exact distinct elements held, or sketch bucket size *)
  exact : bool;  (** still in the exact regime? *)
  last_estimate : float;  (** estimate at the last [EST] (0 before any) *)
  parse_rejects : int;  (** [ADD] lines rejected so far *)
  merges : int;  (** peer sketches folded in via [MERGE] *)
}

(** Probe regime of an [EXPR] answer: [Probes_exact] when every leaf session
    was still holding its elements exactly (the documented bound applies as
    stated), [Probes_sketch] when at least one leaf answered with
    Horvitz–Thompson weights from its sketch bucket (unbiased, heuristic
    bound). *)
type expr_quality = Probes_exact | Probes_sketch

(** Reply payload of the bare [STATS] verb.  [dispatched] is per event-loop
    domain, index-aligned with the acceptor's round-robin deal order — the
    list length is the domain count.  [wal_queue] is the records currently
    waiting in the group-commit queue, [wal_last_group] the size of the most
    recent batch, [wal_groups] batches committed since start (all 0 when the
    node journals synchronously or not at all). *)
type server_stats = {
  conns : int;
  shed : int;
  dispatched : int list;
  wal_queue : int;
  wal_last_group : int;
  wal_groups : int;
  shard_fresh : int list;
      (** per-shard fresh-replica counts from the coordinator's most recent
          gather, index-aligned with the hash ring ([[]] on plain servers
          and on coordinators that have not gathered yet); rides the wire as
          an optional [shard_fresh=a,b,...] token *)
}

(** One open session as enumerated by the [SESSIONS] verb: the name plus the
    creation parameters a coordinator needs to rebuild its routing entry. *)
type session_desc = {
  sd_name : string;
  sd_family : string;  (** family token, e.g. ["rect"], ["dnf:40"] *)
  sd_epsilon : float;
  sd_delta : float;
  sd_log2_universe : float;
}

type response =
  | Ok_reply of string option
  | Ok_batch of { accepted : int; errors : (int * string) list }
      (** reply to {!Add_batch}: payloads accepted, plus [(index, message)]
          for each rejected payload (0-based index into the frame) *)
  | Estimate of { value : float; degraded : bool; stale_shards : int list }
      (** [degraded] renders as a trailing [DEGRADED] token — set by a
          coordinator that could not reach one fresh replica for some shard
          and answered from last-good snapshots.  [stale_shards] names those
          hash-ring positions ([shards=i,j,...] after the [DEGRADED] token;
          empty on single-replica coordinators and plain servers, where the
          bare [DEGRADED] form is unchanged). *)
  | Expr_reply of {
      value : float option;
      support : float;
      needed : float;
      samples : int;
      quality : expr_quality;
      degraded : bool;
    }
      (** reply to {!Expr}.  [value = Some v] certifies the estimate;
          [None] renders as [LOWSUPPORT] with [need=<needed>] — the evidence
          mass [support] fell short of the {!Delphic_expr.Expr.min_support}
          threshold [needed] (which is 0 on certified replies).  [samples]
          is the union draws evaluated, [degraded] as in {!Estimate}. *)
  | Stats_reply of stats
  | Sketch of string  (** [SKETCH <wire-snapshot>], the reply to {!Fetch} *)
  | Pong
  | Hello_reply of { generation : int; epoch : int }
      (** [HELLO <generation> [epoch=<e>]], the reply to {!Hello}; [epoch]
          is the highest coordinator epoch this worker has seen (0, and
          omitted on the wire, when fencing has never been engaged — the
          pre-failover reply shape) *)
  | Server_stats_reply of server_stats
      (** [SRVSTATS conns=.. shed=.. domains=.. dispatched=a,b,..
          wal_queue=.. wal_last_group=.. wal_groups=.. [shard_fresh=a,b,..]],
          the reply to {!Server_stats} *)
  | Epoch_reply of { epoch : int }
      (** [EPOCH <e>], the reply to {!Coord_epoch}: the epoch now stamped on
          the connection (a refused announce is [ERR FENCED <current>]) *)
  | Sessions_reply of session_desc list
      (** [SESSIONS <k> (<name> <family> <eps> <delta> <log2u>){k}], the
          reply to {!Sessions} *)
  | Lease_reply of { epoch : int; primary : bool }
      (** [LEASE epoch=<e> role=primary|standby], the reply to {!Lease} *)
  | Error_reply of error

val session_name_ok : string -> bool
(** Accepted session names: non-empty, characters from
    [A-Za-z0-9_.-] only. *)

val armor_payload : string -> string
(** Percent-escape ['%'], [' '], ['\n'] and ['\r'] ([%25]/[%20]/[%0A]/[%0D])
    so an arbitrary set line becomes one space-free token for an [ADDB]
    frame.  A payload with none of those characters is returned as-is (no
    allocation). *)

val unarmor_payload : string -> (string, string) result
(** Inverse of {!armor_payload}: [unarmor_payload (armor_payload p) = Ok p].
    Unknown escapes, truncated escapes and bare spaces are [Error]. *)

val family_to_token : family -> string
val family_of_token : string -> (family, error) result

val parse_request : string -> (request, error) result
(** Never raises; anything malformed becomes a typed [Error]. *)

val render_request : request -> string
(** One line, no trailing newline.  [parse_request (render_request r) = Ok r]
    for every [r] whose strings respect the grammar (validated session
    names, no newlines). *)

val encode_request_v2 : request -> string
(** The request as a wire-protocol-v2 frame {e body} (the caller adds the
    {!Frame} header).  [Add_batch] gets a binary shape — tag ['\x01'],
    raw payload bytes, no %-armoring, no tokenization on the far side —
    because it is the ingest hot path; every other request is its
    {!render_request} text line, which v2 framing carries unchanged. *)

val encode_request_v2_sink : Frame.sink -> request -> unit
(** [encode_request_v2] into a caller-pooled {!Frame.sink} (cleared first):
    byte-for-byte the same body, none of the per-request [Buffer] and
    string churn — the difference that makes v2 win at batch size 1. *)

val parse_frame_body : string -> (request, error) result
(** Decode a v2 frame body: ['\x01']-tagged bodies via the binary decoder,
    anything else via {!parse_request}.  Total — malformed binary records
    become [Error (Bad_params _)].  This is also the WAL replay decoder:
    journals mix text and spliced binary records freely. *)

val render_response : response -> string
(** One line, no trailing newline. *)

val parse_response : string -> (response, string) result
(** Inverse of {!render_response}; used by the [delphic query] client. *)

val error_code : error -> string
(** The wire code, e.g. ["UNKNOWN-SESSION"] — stable, scriptable.  An
    unrecognised verb is [ERR UNSUPPORTED <verb>] (the server replies and
    keeps the connection open rather than dropping it); {!parse_response}
    also accepts the pre-cluster spelling [UNKNOWN-COMMAND]. *)

val describe_error : error -> string
(** Human-readable one-line description (no code prefix). *)

val expr_reply_of_outcome : degraded:bool -> Expr_ast.outcome -> response
(** Lift an estimator {!Delphic_expr.Expr.outcome} into the wire reply:
    [Estimate] becomes a certified {!Expr_reply} ([needed = 0]),
    [Low_support] a [LOWSUPPORT] one. *)
