(** TCP front end of the estimation service: a single readiness-driven
    {!Evloop} thread owning every connection (epoll on Linux, poll
    elsewhere), built on stdlib [Unix] + [threads.posix] only.  Speaks both
    the v1 text protocol and wire protocol v2 (length-prefixed CRC-framed
    binary), auto-detected per connection on the first bytes; a v2
    mutation's journal record is the wire frame spliced verbatim.

    Durability contract without a journal: {!create} restores every session
    spooled under the given directory (consuming the spool files); a
    graceful stop — SIGINT/SIGTERM in the CLI, or {!request_stop} — drains
    the open connections and snapshots every live session back to the
    spool, so a restart pointing at the same directory resumes exactly
    where the previous process left off.  The loopback test in
    [test/test_server.ml] exercises this full cycle.

    With a {!wal_config}, the contract hardens from "graceful stop" to
    "kill -9": every accepted mutation is appended to a {!Wal} journal
    {e before} its [OK]/[OKB] leaves the socket, a checkpoint is taken
    every [checkpoint_every] records (and on graceful stop), and {!create}
    recovers by loading the last checkpoint and replaying the journal tail.
    The spool directory is then unused — the WAL directory is the durable
    home.  [test/test_cluster.ml]'s kill-9 test exercises this cycle. *)

type t

type wal_config = {
  dir : string;  (** journal + checkpoint home, created if missing *)
  fsync : Wal.fsync_policy;
  checkpoint_every : int;
      (** spool state and truncate the journal every this many records;
          [<= 0] disables periodic checkpoints (graceful-stop one remains) *)
  group : int;
      (** [> 1]: group commit — appends go through a dedicated writer
          domain that coalesces up to this many records into one write and
          at most one fsync, and OK/OKB replies are gated on per-record
          durability tokens ({!Wal.start_writer}).  [<= 1]: the synchronous
          one-write-per-record path. *)
}

val create :
  ?host:string ->
  ?clock:(unit -> float) ->
  ?wal:wal_config ->
  ?max_conns:int ->
  ?domains:int ->
  port:int -> spool:string -> seed:int -> unit -> t
(** Bind and listen ([host] defaults to ["127.0.0.1"]; [port] 0 picks an
    ephemeral port, see {!port}), then restore state: from [wal]'s
    checkpoint + journal when given, else from the spool directory.
    [clock] (default [Unix.gettimeofday]) stamps [ADD]/[ADDB] frames that
    carry no [t=] — resolved {e before} dispatch and journaling, so WAL
    replay sees the same timestamps — and supplies the query instant for
    un-pinned [WIN]/windowed [EXPR]; injectable for deterministic tests.
    WAL replay itself resolves legacy untimestamped records to [t=0].
    [max_conns] (default 16384) sheds excess connections by
    accept-and-close.  [domains] (default 1) shards the front end across
    that many event-loop domains behind one acceptor ({!Evgroup}); the
    16-stripe registry with per-session locks keeps dispatch domain-safe.
    Raises [Unix.Unix_error] if the address is unavailable. *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val registry : t -> Registry.t

val restored : t -> (string * (unit, string) result) list
(** Outcome of the spool (or checkpoint) restoration done by {!create}. *)

val generation : t -> int
(** The value served to [HELLO]: the journal generation when running with a
    WAL (bumped on every {!create}), otherwise an ephemeral per-process
    number.  Either way it differs across restarts, which is all the
    cluster's rejoin fence compares. *)

val coord_epoch : t -> int
(** Highest coordinator fencing epoch any connection has announced with
    [COORD] (0 until fencing is engaged).  Mutations arriving on a
    connection stamped with a lower announce are refused with
    [ERR FENCED <epoch>] — how a deposed primary's late writes die. *)

val serve : t -> unit
(** Run the event loop on the calling thread until {!request_stop}; on the
    way out, close client connections and snapshot all sessions to the
    spool (or take a final WAL checkpoint).  Returns normally after a
    graceful stop. *)

val start : t -> Thread.t
(** {!serve} on a daemon thread — the loopback tests use this. *)

val request_stop : t -> unit
(** Trigger a graceful shutdown from any thread or from a signal handler;
    idempotent, returns immediately ({!serve} performs the drain). *)

val install_signals : t -> unit
(** Route SIGINT {e and} SIGTERM to {!request_stop} — a supervisor's stop
    must spool/checkpoint exactly like a ^C. *)

val install_sigint : t -> unit
(** Alias of {!install_signals} (kept for older callers). *)
