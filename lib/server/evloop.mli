(** Readiness event loop: epoll on Linux, poll elsewhere.

    Replaces the thread-per-connection accept loops of {!Server} and the
    cluster frontend.  One thread owns every connection registered with a
    loop: non-blocking sockets, a per-connection state machine with a
    reusable read buffer and a write-backpressure queue, and first-byte
    protocol auto-detection — a leading NUL byte (the {!Frame.preamble})
    selects wire protocol v2 (length-prefixed CRC-framed binary), anything
    else is the v1 text protocol, newline-delimited.

    Since the multicore sharding, a loop comes in two shapes:

    - {b owning} ([~listen_fd]): the loop accepts on the listening socket
      itself — the single-domain fast path, identical to the pre-sharding
      behaviour.
    - {b adopted-only} (no [listen_fd]): connections arrive via {!adopt}
      from an acceptor running elsewhere ({!Evgroup} runs one loop per
      domain and distributes accepted fds round-robin).

    Concurrency model: the handler runs on the loop thread.  A handler that
    blocks stalls every connection on this loop — fine for a worker whose
    only client is the coordinator, and for dispatch that is microseconds;
    long-running work (checkpoint spools, fsync) belongs on its own
    thread or domain.  A handler that must defer a reply past its own
    return (journal group commit) returns {!Gated}: the reply is held in
    per-connection order until the gate resolves, and whoever resolves it
    calls {!kick} to wake the loop. *)

type proto = V1 | V2

type gate = int Atomic.t
(** Durability gate for a {!Gated} reply: {!gate_pending} until the record
    reaches its durability point, then {!gate_done} (send the reply) or
    {!gate_failed} (send the failure reply instead).  Written by exactly
    one completer (the WAL writer domain), read by the loop. *)

val gate_pending : int
val gate_done : int
val gate_failed : int

type verdict =
  | Reply of string  (** reply now, in request order *)
  | Gated of { reply : string; on_fail : string; gate : gate }
      (** hold the reply until [gate] resolves; [on_fail] replaces it when
          the gate resolves to {!gate_failed}.  Order is still preserved:
          later replies on the same connection queue behind this one. *)

type ctx = { mutable epoch : int }
(** Per-connection handler state, created at registration and passed to
    every request from that connection.  The loop never touches it — it is
    the seam that lets a handler remember the peer across requests: a
    worker stamps the coordinator fencing epoch of a [COORD] announce here
    and later refuses mutations from a connection whose stamp has been
    overtaken ([epoch] 0 = never announced, never fenced). *)

type handler = ctx:ctx -> proto:proto -> raw:string -> body:string -> verdict
(** One request in, one verdict out.  [body] is the request — a text line
    (v1) or a v2 frame body.  [raw] is the exact wire frame
    (header + body) for v2, [""] for v1 — a v2 mutation can be journalled
    by splicing [raw] verbatim ({!Wal.append_framed}).  [ctx] is the
    connection's {!ctx}.  The reply is framed by the loop per the
    connection's protocol.  Exceptions close the connection; turn failures
    into protocol error replies instead. *)

type shared
(** Accounting shared across every loop of a sharded group: live
    connections, the connection cap, and the shed count belong to the
    listening socket, not to any single domain's loop. *)

val make_shared : max_conns:int -> shared
val live_conns : shared -> int
val shed_count : shared -> int

val try_admit : shared -> bool
(** Accept-time admission: [true] admits (registration will count it),
    [false] records a shed — the acceptor should close the fd. *)

type t

val create :
  ?max_conns:int ->
  ?shared:shared ->
  ?listen_fd:Unix.file_descr ->
  handler:handler ->
  ?on_bad_frame:(string -> string option) ->
  unit ->
  t
(** [listen_fd], when given, must already be bound and listening; the loop
    makes it non-blocking and accepts on it.  Without [listen_fd] the loop
    serves only {!adopt}ed connections.  [shared] links this loop into a
    group's accounting; absent, a private {!shared} is made from
    [max_conns] (default 16384, shedding by accept-and-close).
    [on_bad_frame reason] supplies an optional farewell reply body
    (e.g. [ERR IO ...]) sent before closing a connection whose stream
    desynced: CRC mismatch, oversized frame, bad preamble. *)

val run : t -> unit
(** Drive the loop on the calling thread (or domain) until {!stop};
    closes every connection (but not [listen_fd]) on the way out. *)

val stop : t -> unit
(** Thread- and signal-safe: wakes the loop via a self-pipe. *)

val adopt : t -> Unix.file_descr -> unit
(** Hand an accepted socket to this loop from another thread or domain.
    The loop registers it with its own backend on the next wakeup.  After
    {!stop}, adopted fds that never got registered are closed by {!run}'s
    teardown. *)

val kick : t -> unit
(** Wake the loop so it re-examines {!Gated} replies whose gates have
    resolved.  Thread- and domain-safe; redundant kicks are coalesced. *)

val conn_count : t -> int
(** Connections registered with {e this} loop (see {!live_conns} for the
    group-wide figure). *)

val dispatched : t -> int
(** Requests handled by this loop since creation — the per-domain balance
    figure the [STATS] verb reports. *)

val shared_of : t -> shared

val wait_fd : Unix.file_descr -> write:bool -> timeout:float -> [ `Ready | `Timeout ]
(** Wait for one descriptor with poll(2) — the FD_SETSIZE-safe replacement
    for client-side [Unix.select] waits.  Negative [timeout] waits
    forever.  [`Ready] includes error conditions so the caller's next
    syscall surfaces the real errno. *)

val raise_nofile : int -> int
(** Raise [RLIMIT_NOFILE] toward the target (hard limit too when
    privileged); returns the soft limit now in force, or [-1]. *)
