(** Single-threaded readiness event loop: epoll on Linux, poll elsewhere.

    Replaces the thread-per-connection accept loops of {!Server} and the
    cluster frontend.  One thread owns every connection: non-blocking
    sockets, a per-connection state machine with a reusable read buffer and
    a write-backpressure queue, and first-byte protocol auto-detection —
    a leading NUL byte (the {!Frame.preamble}) selects wire protocol v2
    (length-prefixed CRC-framed binary), anything else is the v1 text
    protocol, newline-delimited.

    Concurrency model: the handler runs on the loop thread.  A handler that
    blocks stalls every connection on this loop — fine for a worker whose
    only client is the coordinator, and for dispatch that is microseconds;
    long-running work (checkpoint spools) belongs on its own thread. *)

type proto = V1 | V2

type handler = proto:proto -> raw:string -> body:string -> string
(** One request in, one reply body out.  [body] is the request — a text
    line (v1) or a v2 frame body.  [raw] is the exact wire frame
    (header + body) for v2, [""] for v1 — a v2 mutation can be journalled
    by splicing [raw] verbatim ({!Wal.append_framed}).  The reply is
    framed by the loop per the connection's protocol.  Exceptions close
    the connection; turn failures into protocol error replies instead. *)

type t

val create :
  ?max_conns:int ->
  listen_fd:Unix.file_descr ->
  handler:handler ->
  ?on_bad_frame:(string -> string option) ->
  unit ->
  t
(** [listen_fd] must already be bound and listening; the loop makes it
    non-blocking.  [max_conns] (default 16384) sheds load by
    accept-and-close.  [on_bad_frame reason] supplies an optional farewell
    reply body (e.g. [ERR IO ...]) sent before closing a connection whose
    stream desynced: CRC mismatch, oversized frame, bad preamble. *)

val run : t -> unit
(** Drive the loop on the calling thread until {!stop}; closes every
    connection (but not [listen_fd]) on the way out. *)

val stop : t -> unit
(** Thread- and signal-safe: wakes the loop via a self-pipe. *)

val conn_count : t -> int

val wait_fd : Unix.file_descr -> write:bool -> timeout:float -> [ `Ready | `Timeout ]
(** Wait for one descriptor with poll(2) — the FD_SETSIZE-safe replacement
    for client-side [Unix.select] waits.  Negative [timeout] waits
    forever.  [`Ready] includes error conditions so the caller's next
    syscall surfaces the real errno. *)

val raise_nofile : int -> int
(** Raise [RLIMIT_NOFILE] toward the target (hard limit too when
    privileged); returns the soft limit now in force, or [-1]. *)
