(* One frame layout for the wire and the journal: [u32 len | u32 crc | body],
   both integers big-endian, CRC-32 over the body.  The WAL has used this
   shape since PR 5; protocol v2 adopts it verbatim so a journalled mutation
   is a byte-for-byte splice of the wire frame — no re-render, no re-CRC. *)

(* CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the standard zlib polynomial,
   table-driven.  Stdlib has no checksum, and the journal cannot depend on
   one: a torn tail must be detectable with what the binary always has. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  (!c lxor 0xFFFFFFFF) land 0xFFFFFFFF

let crc32_bytes b ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  (!c lxor 0xFFFFFFFF) land 0xFFFFFFFF

let be32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let read_be32_bytes b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* A frame larger than this is a desynced or hostile peer, not a request:
   the biggest legitimate body is an ADDB batch, and the coordinator caps
   batches three orders of magnitude below this. *)
let max_body = 64 * 1024 * 1024

let frame body =
  let buf = Buffer.create (String.length body + 8) in
  be32 buf (String.length body);
  be32 buf (crc32 body);
  Buffer.add_string buf body;
  Buffer.contents buf

let frame_into buf body =
  be32 buf (String.length body);
  be32 buf (crc32 body);
  Buffer.add_string buf body

(* A reusable growable scratch buffer.  Buffer.t would do, except
   Buffer.contents allocates a fresh string per use — on the v2 batch-1
   path that per-tiny-frame churn is measurable.  A sink exposes its
   bytes, so encode → CRC → frame runs with zero intermediate strings. *)
type sink = { mutable sb : Bytes.t; mutable slen : int }

let sink_create n = { sb = Bytes.create (max 16 n); slen = 0 }
let sink_clear s = s.slen <- 0
let sink_len s = s.slen

let sink_reserve s extra =
  let need = s.slen + extra in
  if need > Bytes.length s.sb then begin
    let cap = ref (Bytes.length s.sb * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit s.sb 0 nb 0 s.slen;
    s.sb <- nb
  end

let sink_char s c =
  sink_reserve s 1;
  Bytes.unsafe_set s.sb s.slen c;
  s.slen <- s.slen + 1

let sink_string s str =
  let n = String.length str in
  sink_reserve s n;
  Bytes.blit_string str 0 s.sb s.slen n;
  s.slen <- s.slen + n

let sink_be32 s v =
  sink_reserve s 4;
  Bytes.unsafe_set s.sb s.slen (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Bytes.unsafe_set s.sb (s.slen + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set s.sb (s.slen + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set s.sb (s.slen + 3) (Char.unsafe_chr (v land 0xFF));
  s.slen <- s.slen + 4

let frame_sink_into buf s =
  be32 buf s.slen;
  be32 buf (crc32_bytes s.sb ~pos:0 ~len:s.slen);
  Buffer.add_subbytes buf s.sb 0 s.slen

(* Connections that speak v2 open with these four bytes.  The leading NUL
   can never start a v1 text request (verbs are ASCII letters), which is
   the whole auto-detection story: peek one byte, branch once, done. *)
let preamble = "\x00DP2"

type scan_result =
  | Need of int  (** incomplete: at least [n] more bytes before rescanning *)
  | Got of { body : string; next : int }
      (** one whole frame; [next] is the offset just past it *)
  | Bad of string  (** unrecoverable: CRC mismatch or an absurd length *)

let scan buf ~pos ~len =
  let avail = len - pos in
  if avail < 8 then Need (8 - avail)
  else begin
    let blen = read_be32_bytes buf pos in
    if blen > max_body then
      Bad (Printf.sprintf "frame length %d exceeds limit %d" blen max_body)
    else if avail - 8 < blen then Need (blen - (avail - 8))
    else begin
      let crc = read_be32_bytes buf (pos + 4) in
      if crc32_bytes buf ~pos:(pos + 8) ~len:blen <> crc then
        Bad (Printf.sprintf "CRC mismatch on %d-byte frame" blen)
      else Got { body = Bytes.sub_string buf (pos + 8) blen; next = pos + 8 + blen }
    end
  end
