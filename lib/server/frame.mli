(** The shared frame layout: [u32 len | u32 crc32(body) | body], big-endian.

    Used both by the write-ahead journal ({!Wal}) on disk and by wire
    protocol v2 ({!Evloop}, [Rpc]) on sockets — deliberately the same bytes,
    so journalling a v2 mutation is a zero-copy splice of the wire frame. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected 0xEDB88320) of the whole string. *)

val crc32_bytes : Bytes.t -> pos:int -> len:int -> int

val be32 : Buffer.t -> int -> unit
(** Append [v] as 4 big-endian bytes. *)

val read_be32 : string -> int -> int
(** Read 4 big-endian bytes at [off].  No bounds checking beyond the
    string's own. *)

val max_body : int
(** Upper bound on a frame body; longer lengths are treated as desync. *)

val frame : string -> string
(** [frame body] is the 8-byte header followed by [body]. *)

val frame_into : Buffer.t -> string -> unit
(** Append [frame body] to a buffer without the intermediate string. *)

type sink
(** A reusable growable byte scratch.  Unlike [Buffer.t], framing from a
    sink ({!frame_sink_into}) reads its bytes in place — no
    [Buffer.contents] string per frame.  Encoders pool one sink per
    connection and {!sink_clear} it between requests. *)

val sink_create : int -> sink
val sink_clear : sink -> unit
val sink_len : sink -> int
val sink_char : sink -> char -> unit
val sink_string : sink -> string -> unit
val sink_be32 : sink -> int -> unit

val frame_sink_into : Buffer.t -> sink -> unit
(** Append the frame (header + sink contents as the body) to [buf]. *)

val preamble : string
(** The 4-byte connection preamble ["\x00DP2"] a v2 client sends first.
    A leading NUL never begins a v1 text request, which is what makes
    first-byte protocol auto-detection unambiguous. *)

type scan_result =
  | Need of int  (** incomplete: at least [n] more bytes before rescanning *)
  | Got of { body : string; next : int }
      (** one whole frame; [next] is the offset just past it *)
  | Bad of string  (** unrecoverable: CRC mismatch or an absurd length *)

val scan : Bytes.t -> pos:int -> len:int -> scan_result
(** Try to decode one frame from [buf.[pos..len)].  Incremental: callers
    accumulate bytes and rescan from the same [pos] until [Got]/[Bad]. *)
