(** Domain-sharded event loops behind one listening socket.

    One {!Evloop} per domain, each with its own epoll/poll descriptor,
    read buffers and backpressure queues; a single acceptor (the thread
    that calls {!run}) accepts and deals the fds round-robin via
    {!Evloop.adopt}.  Dispatch stays domain-safe because the registry is
    16-way striped with per-session locks — two domains only contend when
    they touch the same session.

    [domains = 1] (the default, and the test suites' default) collapses to
    exactly the pre-sharding shape: one loop owning the listening socket,
    run on the calling thread, no handoff hop, no extra domains. *)

type t

val default_domains : unit -> int
(** [min 8 Domain.recommended_domain_count], at least 1 — the CLI default
    for [--domains]. *)

val create :
  ?max_conns:int ->
  ?domains:int ->
  listen_fd:Unix.file_descr ->
  handler:Evloop.handler ->
  ?on_bad_frame:(string -> string option) ->
  unit ->
  t
(** [listen_fd] must be bound and listening.  [max_conns] (default 16384)
    is enforced group-wide at the acceptor by accept-and-close.  [domains]
    (default 1, clamped to ≥ 1) is the number of event-loop domains. *)

val run : t -> unit
(** With one domain: {!Evloop.run} on the calling thread.  Sharded: spawn
    one domain per loop, then run the acceptor on the calling thread until
    {!stop}; joins every loop domain before returning.  [listen_fd] is not
    closed. *)

val stop : t -> unit
(** Thread- and signal-safe; idempotent. *)

val domains : t -> int
val live_conns : t -> int
val shed_count : t -> int

val dispatched : t -> int array
(** Per-loop handled-request counts, index-aligned with the round-robin
    deal order — the [STATS] balance figures. *)

val kick_all : t -> unit
(** Wake every loop to re-examine gated replies — the WAL group-commit
    writer calls this after completing a batch's durability tokens. *)
