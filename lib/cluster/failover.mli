(** Warm-standby promotion for the cluster coordinator.

    A standby runs the full front end ({!Frontend} + a read-only
    {!Coordinator} over the same worker pool) and polls the primary's
    [LEASE] on a dedicated connection.  While the primary answers as
    [role=primary], the standby serves queries and refuses mutations with
    [ERR READONLY]; each healthy poll also refreshes the session table from
    the workers' [SESSIONS] listings, so reads for sessions the primary
    opened are answerable before any takeover.  After [misses] consecutive
    lease failures it promotes itself:

    + rebuild the session table from the workers' [SESSIONS] listings —
      the workers are the durable truth, no coordinator journal exists;
    + pick a fencing epoch strictly above everything the old primary ever
      announced (max of lease-observed epochs and worker [HELLO] epochs),
      and announce it on every worker connection;
    + flip the coordinator read-write.

    From that instant the deposed primary's late writes die at every
    worker's fence ([ERR FENCED]), so a network blip that merely {e hid}
    the primary cannot produce two writable coordinators whose writes both
    land.  Estimates never regress: the workers kept all state, and union
    sketches make any replayed writes harmless duplicates. *)

type t

val create :
  ?interval:float ->
  ?misses:int ->
  ?proto:Rpc.proto ->
  ?dial_timeout:float ->
  ?timeout:float ->
  primary:string * int ->
  coord:Coordinator.t ->
  unit ->
  t
(** [coord] is this node's coordinator over the shared worker pool; it is
    switched read-only immediately (the standby contract).  [primary] is the
    live coordinator's client address, polled every [interval] seconds
    (default 0.5); [misses] (default 3) consecutive lease failures trigger
    the takeover.  [dial_timeout]/[timeout] bound the lease connection like
    any {!Rpc} client. *)

val start : t -> unit
(** Launch the monitor thread (idempotent).  The thread exits after a
    takeover or {!stop}. *)

val is_active : t -> bool
(** True once this node has promoted itself to primary. *)

val takeover_now : t -> unit
(** Promote immediately, skipping the lease countdown — for an operator's
    forced failover and for tests.  Idempotent. *)

val stop : t -> unit
(** Halt the monitor without promoting; joins the thread. *)
