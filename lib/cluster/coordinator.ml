module P = Delphic_server.Protocol
module Families = Delphic_server.Families
module Io = Delphic_core.Snapshot_io
module Parallel = Delphic_harness.Parallel
module Rng = Delphic_util.Rng

let log_src = Logs.Src.create "delphic.cluster" ~doc:"scatter/gather coordinator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type sharding = Round_robin | By_hash

(* One wire frame awaiting its single reply line: either a legacy [ADD]
   (one item) or an [ADDB] carrying the whole array.  [bitems] keeps each
   payload's hop count so a replay after worker death still converges.
   [bts] is the frame's ingest timestamp — [ADDB] stamps a whole frame, so
   only same-timestamp payloads share one; [None] lets the worker stamp its
   own receive time. *)
type batch = {
  bsession : string;
  bts : float option;
  bitems : (string * int) array; (* payload, hops *)
}

type worker = {
  wid : int;
  host : string;
  port : int;
  mutable conn : Rpc.t option;
  mutable failures : int; (* consecutive, drives the backoff *)
  mutable quarantined_until : float; (* epoch seconds; 0.0 = available *)
  mutable generation : int;
      (* the worker's HELLO generation at the last successful resync; 0 =
         never asked, or a legacy worker that answers ERR UNSUPPORTED.  A
         reconnect that reads the same nonzero generation is a connection
         blip — the process (and its state) survived — and skips the
         re-open/reinject sweep entirely. *)
  staged : (string * string * float option * int) Queue.t;
      (* routed but not yet framed: (session, payload, ts, hops).  Nothing
         here has touched the socket; a death replays these verbatim. *)
  staged_log : (string * string * float option * int) Queue.t;
      (* backup replica copies awaiting framing, kept apart from [staged]
         so eager and log copies each coalesce into full-size frames
         (interleaving them would break same-role runs every few payloads).
         Shipped as ADDL log appends rather than full ADDB updates. *)
  pending : batch Queue.t; (* frames on the wire, one reply line owed each *)
  mutable in_flight : int; (* payload units across [pending] *)
  last_good : (string, Io.t) Hashtbl.t; (* session -> last fetched sketch *)
}

type session_info = {
  family : P.family;
  epsilon : float;
  delta : float;
  log2_universe : float;
  mutable rr : int; (* round-robin cursor *)
  mutable last_estimate : float;
  mutable degraded : bool; (* the last gather used stale or missing data *)
  mutable rejects : int; (* Bad_line acks seen for this session *)
  mutable lost : int; (* adds dropped because no worker would take them *)
  mutable merges : int; (* gather folds performed *)
  (* Memoised fold: the cutoff and wire tokens of the last all-fresh gather
     and the sketch they folded to.  Workers encode lazily
     ({!Registry.fetch}'s wire cache), so a quiescent cluster answers every
     worker with a byte-identical token and the whole decode + merge tree is
     skipped — repeated EST (and repeated WIN at a stable cutoff bucket) on
     an idle cluster costs the RPCs alone. *)
  mutable fold_cache : (float option * string array * Families.t) option;
}

type t = {
  workers : worker array;
  sharding : sharding;
  replicas : int;
      (* copies of each payload: routed to this many distinct live workers,
         walking the ring from the shard's home position.  Union estimation
         is duplicate-insensitive, so replication is semantically free — a
         lagging replica is stale, never wrong. *)
  timeout : float;
  dial_timeout : float; (* TCP connect budget, separate from [timeout] *)
  retries : int;
  backoff : float; (* first retry delay; doubles per consecutive failure *)
  window : int; (* unacked payload units per worker before a drain *)
  batch : int; (* max payloads per ADDB frame; the flush high-water mark *)
  gather_domains : int; (* domains for the gather decode/merge tree *)
  clock : unit -> float; (* query instant for un-pinned WIN / EXPR w= *)
  cutoff_bucket : float; (* window cutoffs quantize down to this grain *)
  seed : int;
  io : Rpc.io; (* socket ops for every worker connection (chaos hook) *)
  proto : Rpc.proto; (* wire protocol spoken to every worker *)
  rng : Rng.t; (* backoff jitter; guarded by [lock] like everything else *)
  lock : Mutex.t;
  sessions : (string, session_info) Hashtbl.t;
  mutable seq : int; (* distinct seeds for successive folds *)
  (* Payloads refused by an ack (e.g. UNKNOWN-SESSION from a worker that
     restarted with partial state): parked here by [retire_ack] — which can
     run deep inside a drain — and re-routed at the next safe point. *)
  orphans : (string * string * float option * int) Queue.t;
  (* While a gather has Fetch requests on the wire, a dying worker must not
     trigger an immediate requeue: re-routing its orphans would stage new
     frames on peers *behind* their un-collected sketch replies and misframe
     their streams.  Deaths are parked here and re-routed after collect. *)
  mutable in_gather : bool;
  deferred_deaths : worker Queue.t;
  (* Memoised cross-session fold of the last EXPR query: leaf names plus the
     physical identities of their per-session folds, and the union they
     folded to.  On an idle cluster every leaf gather hits its session's
     [fold_cache] and hands back the same physical value, so a repeated EXPR
     skips the cross-session merge tree too. *)
  mutable expr_cache : (string array * Families.t array * Families.t) option;
  (* --- fencing + warm-standby state --- *)
  mutable epoch : int;
      (* the fencing epoch announced to every worker connection ([COORD]);
         0 = fencing off, nothing announced (the single-coordinator
         deployment).  A standby bumps this at takeover. *)
  mutable fenced_by : int;
      (* highest epoch a worker has fenced us with (0 = never).  When it
         exceeds [epoch] a newer primary owns the pool: this coordinator is
         deposed and refuses mutations rather than fight. *)
  mutable read_only : bool;
      (* a warm standby: answers every query, refuses every mutation, until
         [Failover] promotes it *)
  mutable max_worker_epoch : int;
      (* highest epoch seen in any worker HELLO — the floor a takeover must
         clear, sourced from the workers because they are the durable truth *)
  mutable last_shard_fresh : int array;
      (* per-ring-position fresh-replica count from the most recent gather
         (any session); feeds SRVSTATS [shard_fresh=] *)
}

let create ?(sharding = By_hash) ?(replicas = 1) ?(timeout = 2.0)
    ?(dial_timeout = 2.0) ?(retries = 3) ?(backoff = 0.05) ?(window = 256)
    ?(batch = 64) ?gather_domains ?(io = Rpc.default_io) ?(proto = Rpc.V1)
    ?(clock = Unix.gettimeofday) ?(cutoff_bucket = 1.0) ?(epoch = 0)
    ?(read_only = false) ~workers ~seed () =
  if workers = [] then invalid_arg "Coordinator.create: need at least one worker";
  if replicas < 1 then invalid_arg "Coordinator.create: need replicas >= 1";
  if timeout <= 0.0 then invalid_arg "Coordinator.create: need timeout > 0";
  if dial_timeout <= 0.0 then invalid_arg "Coordinator.create: need dial_timeout > 0";
  if epoch < 0 then invalid_arg "Coordinator.create: need epoch >= 0";
  if retries < 0 then invalid_arg "Coordinator.create: need retries >= 0";
  if window < 1 then invalid_arg "Coordinator.create: need window >= 1";
  if batch < 1 then invalid_arg "Coordinator.create: need batch >= 1";
  if not (cutoff_bucket > 0.0) then
    invalid_arg "Coordinator.create: need cutoff_bucket > 0";
  let gather_domains =
    match gather_domains with
    | None -> Parallel.default_domains ()
    | Some d ->
      if d < 1 then invalid_arg "Coordinator.create: need gather_domains >= 1";
      d
  in
  {
    workers =
      Array.of_list
        (List.mapi
           (fun wid (host, port) ->
             {
               wid;
               host;
               port;
               conn = None;
               failures = 0;
               quarantined_until = 0.0;
               generation = 0;
               staged = Queue.create ();
               staged_log = Queue.create ();
               pending = Queue.create ();
               in_flight = 0;
               last_good = Hashtbl.create 4;
             })
           workers);
    sharding;
    replicas = Stdlib.min replicas (List.length workers);
    timeout;
    dial_timeout;
    retries;
    backoff;
    window;
    batch;
    gather_domains;
    clock;
    cutoff_bucket;
    seed;
    io;
    proto;
    rng = Rng.create ~seed:(seed lxor 0x2545F491);
    lock = Mutex.create ();
    sessions = Hashtbl.create 4;
    seq = 0;
    orphans = Queue.create ();
    in_gather = false;
    deferred_deaths = Queue.create ();
    expr_cache = None;
    epoch;
    fenced_by = 0;
    read_only;
    max_worker_epoch = 0;
    last_shard_fresh = Array.make (List.length workers) 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let next_seed t =
  t.seq <- t.seq + 1;
  t.seed + (7919 * t.seq)

let address w = Printf.sprintf "%s:%d" w.host w.port

(* --- worker lifecycle: connect with bounded retry, quarantine on death --- *)

let kill_requeue : (t -> worker -> unit) ref = ref (fun _ _ -> ())

let quarantine t w =
  (match w.conn with Some c -> Rpc.close c | None -> ());
  w.conn <- None;
  w.failures <- w.failures + 1;
  let pause = Float.min 30.0 (t.backoff *. Float.ldexp 1.0 w.failures) in
  (* ±25% jitter: workers felled by one event (a restarting shard host, a
     network hiccup) must not retry in lockstep and re-fail together *)
  let pause = pause *. (0.75 +. (0.5 *. Rng.float t.rng)) in
  w.quarantined_until <- Unix.gettimeofday () +. pause;
  Log.warn (fun m ->
      m "worker %s quarantined for %.2fs (%d consecutive failures)" (address w) pause
        w.failures);
  !kill_requeue t w

(* After a (re)connect the worker may be a fresh process: re-open every
   session and reinject its last known state.  SESSION-EXISTS means the
   worker kept its state across a connection blip — nothing to do. *)
let full_resync t w conn =
  let ok = ref true in
  Hashtbl.iter
    (fun name (si : session_info) ->
      if !ok then
        match
          Rpc.call conn
            (P.Open
               {
                 session = name;
                 family = si.family;
                 epsilon = si.epsilon;
                 delta = si.delta;
                 log2_universe = si.log2_universe;
               })
        with
        | Ok (P.Ok_reply _) -> (
          match Hashtbl.find_opt w.last_good name with
          | None -> ()
          | Some io -> (
            Log.info (fun m ->
                m "worker %s: reinjecting last good sketch of %s" (address w) name);
            match Rpc.call conn (P.Merge { session = name; encoded = Io.to_wire io }) with
            | Ok (P.Ok_reply _) -> ()
            | Ok r ->
              Log.warn (fun m ->
                  m "worker %s: reinject failed: %s" (address w) (P.render_response r));
              ok := false
            | Error msg ->
              Log.warn (fun m -> m "worker %s: reinject failed: %s" (address w) msg);
              ok := false))
        | Ok (P.Error_reply (P.Session_exists _)) -> ()
        | Ok r ->
          Log.warn (fun m ->
              m "worker %s: re-open of %s failed: %s" (address w) name
                (P.render_response r));
          ok := false
        | Error msg ->
          Log.warn (fun m -> m "worker %s: re-open of %s failed: %s" (address w) name msg);
          ok := false)
    t.sessions;
  !ok

(* Epoch-fenced rejoin.  HELLO asks the worker who it is: a nonzero
   generation equal to the one recorded at the last successful resync means
   the same process answered — the disconnect was a connection blip, its
   sessions and sketches are intact, and the re-open/reinject sweep (and
   the duplicate MERGE traffic it ships) can be skipped.  Any other answer
   — a new generation (restarted process, possibly recovered from its
   journal minus the unsynced tail), a zero, or ERR UNSUPPORTED from a
   pre-fencing worker — takes the full resync path, which is duplicate-safe
   either way. *)
let resync t w conn =
  match Rpc.call conn P.Hello with
  | Ok (P.Hello_reply { generation; epoch })
    when generation <> 0 && generation = w.generation ->
    if epoch > t.max_worker_epoch then t.max_worker_epoch <- epoch;
    Log.debug (fun m ->
        m "worker %s: generation %d unchanged — state intact, skipping resync"
          (address w) generation);
    true
  | Ok (P.Hello_reply { generation; epoch }) ->
    if epoch > t.max_worker_epoch then t.max_worker_epoch <- epoch;
    if w.generation <> 0 then
      Log.info (fun m ->
          m "worker %s: generation %d -> %d — restarted, re-driving state" (address w)
            w.generation generation);
    if full_resync t w conn then begin
      w.generation <- generation;
      true
    end
    else false
  | Ok (P.Error_reply (P.Unknown_command verb)) ->
    (* legacy worker: the ERR UNSUPPORTED reply echoes the verb it lacks;
       no fence available, resync unconditionally *)
    Log.info (fun m ->
        m "worker %s: does not support %s — legacy worker, full resync" (address w)
          (if verb = "" then "HELLO" else verb));
    w.generation <- 0;
    full_resync t w conn
  | Ok r ->
    Log.warn (fun m ->
        m "worker %s: HELLO answered %s" (address w) (P.render_response r));
    false
  | Error msg ->
    Log.warn (fun m -> m "worker %s: HELLO failed: %s" (address w) msg);
    false

(* Stamp a fresh connection with the coordinator's fencing epoch before any
   state-changing traffic rides it.  A FENCED refusal means a higher epoch
   (a standby that took over) owns the pool: this coordinator is deposed and
   records the fact rather than fight the new primary.  Workers predating
   the verb answer ERR UNSUPPORTED and join un-stamped (no fence available —
   exactly the pre-fencing behaviour). *)
let announce_epoch_on t w conn =
  if t.epoch = 0 then true
  else
    match Rpc.call conn (P.Coord_epoch { epoch = t.epoch }) with
    | Ok (P.Epoch_reply _) -> true
    | Ok (P.Error_reply (P.Fenced cur)) ->
      if cur > t.fenced_by then t.fenced_by <- cur;
      Log.warn (fun m ->
          m "worker %s: epoch %d fenced by %d — this coordinator is deposed"
            (address w) t.epoch cur);
      false
    | Ok (P.Error_reply (P.Unknown_command _)) -> true
    | Ok r ->
      Log.warn (fun m ->
          m "worker %s: COORD answered %s" (address w) (P.render_response r));
      false
    | Error msg ->
      Log.warn (fun m -> m "worker %s: COORD failed: %s" (address w) msg);
      false

(* The worker's connection if it is usable now: an existing one, or a fresh
   connect-announce-resync with [retries] attempts under exponential backoff.
   [None] while quarantined or unreachable.  A dial timeout (black-holed
   address) skips the in-round retries — each would burn a full dial budget
   against a host that is not answering SYNs — and quarantines at once. *)
let ensure_conn t w =
  match w.conn with
  | Some c -> Some c
  | None ->
    if Unix.gettimeofday () < w.quarantined_until then None
    else begin
      let rec attempt i =
        match
          Rpc.connect ~io:t.io ~proto:t.proto ~dial_timeout:t.dial_timeout
            ~host:w.host ~port:w.port ~timeout:t.timeout ()
        with
        | Ok conn ->
          if announce_epoch_on t w conn && resync t w conn then begin
            w.conn <- Some conn;
            w.failures <- 0;
            w.quarantined_until <- 0.0;
            Some conn
          end
          else begin
            Rpc.close conn;
            quarantine t w;
            None
          end
        | Error (Rpc.Dial_timeout _ as err) ->
          Log.warn (fun m ->
              m "worker %s unreachable: %s" (address w)
                (Rpc.describe_connect_error err));
          quarantine t w;
          None
        | Error (Rpc.Dial_failed msg) ->
          if i >= t.retries then begin
            Log.warn (fun m -> m "worker %s unreachable: %s" (address w) msg);
            quarantine t w;
            None
          end
          else begin
            Thread.delay (t.backoff *. Float.ldexp 1.0 i);
            attempt (i + 1)
          end
      in
      attempt 0
    end

(* --- batched pipelined scatter with at-least-once re-routing --- *)

let find_session t name =
  match Hashtbl.find_opt t.sessions name with
  | Some si -> Ok si
  | None -> Error (P.Unknown_session name)

(* Retire the oldest pending frame against one ack-shaped reply — [OKB] for
   an ADDB, [OK] for a legacy single ADD. *)
let retire_ack t w reply =
  match Queue.take_opt w.pending with
  | None -> w.in_flight <- 0 (* unreachable: in_flight tracks pending *)
  | Some b ->
    w.in_flight <- w.in_flight - Array.length b.bitems;
    let reject n =
      if n > 0 then
        match Hashtbl.find_opt t.sessions b.bsession with
        | Some si -> si.rejects <- si.rejects + n
        | None -> ()
    in
    (match reply with
    | P.Ok_reply _ -> ()
    | P.Ok_batch { accepted = _; errors } -> reject (List.length errors)
    | P.Error_reply (P.Bad_line _) ->
      (* the whole frame was refused — for a 1-item ADD frame that is
         exactly one rejected payload *)
      reject (Array.length b.bitems)
    | P.Error_reply (P.Fenced cur) ->
      (* A newer primary fenced us mid-stream.  The frame is NOT re-routed:
         every worker enforces the same fence, and the payloads now belong
         to whoever holds the higher epoch.  Recording [fenced_by] makes
         every later mutation fail fast at the front door. *)
      if cur > t.fenced_by then t.fenced_by <- cur;
      Log.warn (fun m ->
          m "worker %s: ingest fenced by epoch %d — coordinator deposed" (address w)
            cur);
      reject (Array.length b.bitems)
    | P.Error_reply e ->
      (* Refused whole without being ingested — typically UNKNOWN-SESSION
         from a worker that restarted mid-conversation with partial state.
         Counting the frame delivered would silently lose its payloads;
         park them for re-routing at the next safe point (retiring can run
         deep inside a drain, where routing would recurse). *)
      Log.warn (fun m ->
          m "worker %s: ingest refused (%s) — re-routing %d payload(s)" (address w)
            (P.describe_error e) (Array.length b.bitems));
      Array.iter
        (fun (payload, hops) ->
          Queue.push (b.bsession, payload, b.bts, hops + 1) t.orphans)
        b.bitems
    | r ->
      (* non-error, non-ack: the reply stream itself is suspect *)
      Log.warn (fun m ->
          m "worker %s: unexpected ingest ack %s" (address w) (P.render_response r)))

(* Read reply lines until at most [down_to] payload units remain unacked.
   One reply retires one whole frame.  Union estimation is
   duplicate-insensitive, so on failure the unacked frames can be replayed
   on other workers without harming correctness. *)
let rec drain_acks t w ~down_to =
  if w.in_flight <= down_to then ()
  else
    match w.conn with
    | None -> quarantine t w
    | Some conn -> (
      match Rpc.recv conn with
      | Ok reply ->
        retire_ack t w reply;
        drain_acks t w ~down_to
      | Error msg ->
        Log.warn (fun m -> m "worker %s: lost while draining acks: %s" (address w) msg);
        quarantine t w)

(* Frame [w.staged] into ADDB requests — consecutive same-session runs of up
   to [t.batch] payloads each, a lone payload as a legacy ADD — stage them
   all on the connection, and ship the accumulation as one coalesced write.
   Frames enter [w.pending] before the flush so a transport failure replays
   them via the quarantine path. *)
let flush_worker t w =
  if not (Queue.is_empty w.staged && Queue.is_empty w.staged_log) then
    match w.conn with
    | None ->
      (* connection already gone with payloads still staged: hand them to
         the re-router directly *)
      !kill_requeue t w
    | Some conn ->
      let drain queue ~log =
        while not (Queue.is_empty queue) do
          let s0, p0, ts0, h0 = Queue.pop queue in
          let items = ref [ (p0, h0) ] in
          let count = ref 1 in
          let same_run = ref true in
          (* an ADDB/ADDL frame carries one t=, so only same-timestamp runs
             batch *)
          while !same_run && !count < t.batch do
            match Queue.peek_opt queue with
            | Some (s, _, ts, _) when String.equal s s0 && ts = ts0 ->
              let _, p, _, h = Queue.pop queue in
              items := (p, h) :: !items;
              incr count
            | _ -> same_run := false
          done;
          let bitems = Array.of_list (List.rev !items) in
          let req =
            if log then
              P.Add_log
                { session = s0; payloads = Array.to_list (Array.map fst bitems); ts = ts0 }
            else
              match bitems with
              | [| (payload, _) |] -> P.Add { session = s0; payload; ts = ts0 }
              | _ ->
                P.Add_batch
                  { session = s0; payloads = Array.to_list (Array.map fst bitems); ts = ts0 }
          in
          Rpc.stage conn req;
          Queue.push { bsession = s0; bts = ts0; bitems } w.pending;
          w.in_flight <- w.in_flight + Array.length bitems
        done
      in
      drain w.staged ~log:false;
      drain w.staged_log ~log:true;
      (match Rpc.flush_staged conn with
      | Ok () -> ()
      | Error msg ->
        Log.warn (fun m -> m "worker %s: batch flush failed: %s" (address w) msg);
        quarantine t w)

(* Route one payload to [t.replicas] distinct live workers, walking the
   ring from [start] (the shard's home position) and giving up a copy after
   every worker has been probed.  Dead ring positions are skipped, so under
   failures the copies land on the next live successors — the gather's
   coverage rule looks at the same successive window, and the union's
   duplicate-insensitivity makes any extra placement harmless.  Routing only
   stages — the socket is touched when a worker's staging queue reaches the
   batch high-water mark (or at an explicit [flush]/gather).  [Ok] as soon
   as one copy is staged: fewer live workers than replicas degrades
   redundancy, not availability. *)
let route t si name payload ~ts ~start ~hops =
  let n = Array.length t.workers in
  if hops > n then begin
    si.lost <- si.lost + 1;
    Error (P.Server_error "no live worker accepted the set")
  end
  else begin
    let want = Stdlib.min t.replicas n in
    let placed = ref 0 in
    let i = ref 0 in
    while !placed < want && !i < n do
      let w = t.workers.((start + !i) mod n) in
      (match ensure_conn t w with
      | None -> ()
      | Some _conn ->
        (* copy 0 lands eagerly (the primary replica); later copies are
           log appends — cheap redundancy that materialises on read *)
        Queue.push (name, payload, ts, hops)
          (if !placed > 0 then w.staged_log else w.staged);
        incr placed;
        if Queue.length w.staged + Queue.length w.staged_log >= t.batch then begin
          flush_worker t w;
          (* keep half the window in flight so the pipe never fully stalls *)
          if w.conn <> None && w.in_flight >= t.window then
            drain_acks t w ~down_to:(t.window / 2)
        end);
      incr i
    done;
    if !placed = 0 then begin
      si.lost <- si.lost + 1;
      Error (P.Server_error "no workers available")
    end
    else Ok ()
  end

(* Re-route a dead worker's staged payloads and unacked frames — oldest
   (sent-but-unacked) first, then the never-sent staging queue; wired into
   [quarantine] via the forward reference because death and re-routing are
   mutually recursive. *)
let requeue t w =
  let orphans = ref [] in
  Queue.iter
    (fun b ->
      Array.iter
        (fun (payload, hops) -> orphans := (b.bsession, payload, b.bts, hops) :: !orphans)
        b.bitems)
    w.pending;
  Queue.iter (fun item -> orphans := item :: !orphans) w.staged;
  Queue.iter (fun item -> orphans := item :: !orphans) w.staged_log;
  Queue.clear w.pending;
  Queue.clear w.staged;
  Queue.clear w.staged_log;
  w.in_flight <- 0;
  List.iter
    (fun (session, payload, ts, hops) ->
      match Hashtbl.find_opt t.sessions session with
      | None -> ()
      | Some si -> (
        match route t si session payload ~ts ~start:(w.wid + 1) ~hops:(hops + 1) with
        | Ok () -> ()
        | Error _ -> () (* already counted in si.lost *)))
    (List.rev !orphans)

let () =
  kill_requeue :=
    fun t w ->
      (* mid-gather deaths are parked: see [deferred_deaths] *)
      if t.in_gather then begin
        if not (Queue.fold (fun seen d -> seen || d == w) false t.deferred_deaths)
        then Queue.push w t.deferred_deaths
      end
      else requeue t w

(* Synchronous round-trip on [w]'s connection.  Pipelined ingest acks share
   the reply stream with every other verb, so staged frames must be shipped
   and every ack drained first: calling with acks in flight would read an
   ingest ack as this request's reply and leave the stream permanently off
   by one (a pending frame silently marked acked, later replies misframed).
   Draining can itself kill the worker — and requeueing during a drain can
   put new frames in flight on *other* workers — so both queues are
   re-checked right before the call.  On transport failure the worker is
   quarantined here; callers only decide fallback. *)
let call_sync t w req =
  flush_worker t w;
  drain_acks t w ~down_to:0;
  if w.in_flight > 0 || not (Queue.is_empty w.staged && Queue.is_empty w.staged_log)
  then Error "pending acks could not be drained"
  else
    match w.conn with
    | None -> Error "connection lost while draining pending acks"
    | Some conn -> (
      match Rpc.call conn req with
      | Ok _ as ok -> ok
      | Error msg ->
        quarantine t w;
        Error msg)

let shard_start t si payload =
  match t.sharding with
  | Round_robin ->
    si.rr <- si.rr + 1;
    si.rr mod Array.length t.workers
  | By_hash ->
    (* identical set lines land on one worker, so duplicate-heavy streams
       cost nothing extra and cross-shard overlap stays geometric *)
    Hashtbl.hash payload mod Array.length t.workers

(* Re-route payloads parked by [retire_ack].  Deferred until no gather is
   collecting (new frames behind an un-collected Fetch are fine, but the
   drain a route can trigger is not) and until the drain that parked them
   has unwound. *)
let reroute_orphans t =
  if not t.in_gather then
    while not (Queue.is_empty t.orphans) do
      let session, payload, ts, hops = Queue.pop t.orphans in
      match Hashtbl.find_opt t.sessions session with
      | None -> ()
      | Some si -> (
        match route t si session payload ~ts ~start:(shard_start t si payload) ~hops with
        | Ok () -> ()
        | Error _ -> () (* already counted in si.lost *))
    done

(* --- public operations --- *)

(* Mutations are refused while this coordinator may not own the pool: a
   warm standby answers queries only, and a deposed primary's writes are
   already dying at every worker's fence — failing fast here keeps the
   client's error honest instead of half-ingesting a batch. *)
let mutation_guard t =
  if t.read_only then Error (P.Read_only "standby")
  else if t.fenced_by > t.epoch then Error (P.Fenced t.fenced_by)
  else Ok ()

let broadcast t req ~accept =
  let failures = ref [] in
  Array.iter
    (fun w ->
      match ensure_conn t w with
      | None -> failures := address w :: !failures
      | Some _ -> (
        match call_sync t w req with
        | Ok r when accept r -> ()
        | Ok r ->
          failures := Printf.sprintf "%s (%s)" (address w) (P.render_response r) :: !failures
        | Error msg ->
          failures := Printf.sprintf "%s (%s)" (address w) msg :: !failures))
    t.workers;
  !failures

let open_session t ~name ~family ~epsilon ~delta ~log2_universe =
  with_lock t (fun () ->
      match mutation_guard t with
      | Error e -> Error e
      | Ok () ->
      if Hashtbl.mem t.sessions name then Error (P.Session_exists name)
      else begin
        (* Register first: resync inside ensure_conn must re-open this
           session on workers that connect during the broadcast. *)
        Hashtbl.replace t.sessions name
          {
            family;
            epsilon;
            delta;
            log2_universe;
            rr = 0;
            last_estimate = 0.0;
            degraded = false;
            rejects = 0;
            lost = 0;
            merges = 0;
            fold_cache = None;
          };
        let failures =
          broadcast t
            (P.Open { session = name; family; epsilon; delta; log2_universe })
            ~accept:(function
              | P.Ok_reply _ | P.Error_reply (P.Session_exists _) -> true
              | _ -> false)
        in
        let live =
          Array.fold_left (fun n w -> if w.conn <> None then n + 1 else n) 0 t.workers
        in
        if live = 0 then begin
          Hashtbl.remove t.sessions name;
          Error
            (P.Server_error
               (Printf.sprintf "no reachable workers: %s" (String.concat ", " failures)))
        end
        else Ok ()
      end)

let add ?ts t ~name ~payload =
  with_lock t (fun () ->
      match Result.bind (mutation_guard t) (fun () -> find_session t name) with
      | Error e -> Error e
      | Ok si ->
        let r = route t si name payload ~ts ~start:(shard_start t si payload) ~hops:0 in
        reroute_orphans t;
        r)

(* A whole client ADDB frame routed under one lock acquisition.  Each
   payload still shards independently (By_hash must keep duplicates
   colocated), so a frame may fan out across workers and re-batch there. *)
let add_batch ?ts t ~name ~payloads =
  with_lock t (fun () ->
      match Result.bind (mutation_guard t) (fun () -> find_session t name) with
      | Error e -> Error e
      | Ok si ->
        let accepted = ref 0 in
        let errors = ref [] in
        List.iteri
          (fun i payload ->
            match
              route t si name payload ~ts ~start:(shard_start t si payload) ~hops:0
            with
            | Ok () -> incr accepted
            | Error e -> errors := (i, P.describe_error e) :: !errors)
          payloads;
        reroute_orphans t;
        Ok (!accepted, List.rev !errors))

let flush t =
  (* Settle to quiescence: draining can park refused payloads, rerouting
     them stages fresh frames, so repeat until nothing moves (bounded — a
     payload refused everywhere is dropped by the hop limit). *)
  let rec go attempts =
    Array.iter
      (fun w ->
        flush_worker t w;
        if w.conn <> None then drain_acks t w ~down_to:0)
      t.workers;
    reroute_orphans t;
    if
      attempts > 0
      && Array.exists
           (fun w ->
             w.in_flight > 0
             || not (Queue.is_empty w.staged && Queue.is_empty w.staged_log))
           t.workers
    then go (attempts - 1)
  in
  go (Array.length t.workers + 2)

(* Gather every worker's sketch for [name] and fold.  A worker that cannot
   answer contributes its last good snapshot (or nothing) and flags the
   estimate degraded.

   The fetch round-trips overlap.  Phase one walks the pool doing only
   writes: each connection's queued ADDB frames are shipped and the Fetch is
   staged behind them in the same stream, so every worker starts encoding
   its snapshot while its peers still receive theirs.  Phase two collects
   each connection's replies — first the acks owed for frames sent before
   the Fetch (the reply stream is strictly ordered, so reading exactly that
   many keeps it framed), then the sketch — under one shared absolute
   deadline: a slow worker can only burn whatever budget remains, and a
   fast worker's already-buffered reply is still collected at budget zero,
   so gather latency is max-of-workers, not sum-of-workers.  Phase three
   decodes each sketch in its own task and folds them with a balanced merge
   tree ({!Parallel.reduce}), O(log k) depth across [gather_domains].

   [cutoff] makes the gather windowed: the absolute instant is computed once
   by the caller and shipped verbatim in every Fetch, so all replicas expire
   against the same wall-clock point.  A windowed gather never updates
   [last_good] (a restricted sketch must not become the full-estimate
   fallback) and memoises its fold under its own cutoff key.

   Freshness is judged per {e ring position}, not per worker: with
   [replicas = R] a payload homed at position [i] lives on the first R live
   workers at positions [i, i+1, ...], so position [i] is covered as long as
   {e any} worker in that window answered fresh this gather (1-of-R).  The
   estimate is DEGRADED — and [stale_shards] names the positions — only
   when some position has no fresh replica at all; stale last-good parts are
   still folded in regardless (including extra data never hurts a union).
   With R = 1 this degenerates to exactly the old per-worker rule. *)
let gather ?cutoff t si name =
  let deadline = Unix.gettimeofday () +. t.timeout in
  let n = Array.length t.workers in
  (* per worker: frames owed ahead of the sketch reply; -1 = never asked *)
  let expect = Array.make n (-1) in
  (* worker i answered this gather with a cleanly decodable fresh sketch *)
  let fresh = Array.make n false in
  let parts = ref [] in
  (* per-position fresh-replica counts over the R-successor window, and the
     uncovered positions; records the counts for SRVSTATS as a side effect *)
  let coverage () =
    let r = Stdlib.min t.replicas n in
    let counts =
      Array.init n (fun i ->
          let c = ref 0 in
          for j = 0 to r - 1 do
            if fresh.((i + j) mod n) then incr c
          done;
          !c)
    in
    t.last_shard_fresh <- counts;
    let stale = ref [] in
    for i = n - 1 downto 0 do
      if counts.(i) = 0 then stale := i :: !stale
    done;
    !stale
  in
  t.in_gather <- true;
  Fun.protect
    ~finally:(fun () ->
      t.in_gather <- false;
      (* Re-route the orphans of workers that died mid-gather, now that no
         un-collected sketch reply is left for a requeue to misframe. *)
      while not (Queue.is_empty t.deferred_deaths) do
        requeue t (Queue.pop t.deferred_deaths)
      done;
      reroute_orphans t)
    (fun () ->
      (* phase one: broadcast, per connection, no reads *)
      Array.iteri
        (fun i w ->
          match ensure_conn t w with
          | None -> ()
          | Some _ ->
            flush_worker t w;
            (match w.conn with
            | None -> ()
            | Some conn ->
              Rpc.stage conn (P.Fetch { session = name; cutoff });
              (match Rpc.flush_staged conn with
              | Ok () -> expect.(i) <- Queue.length w.pending
              | Error msg ->
                Log.warn (fun m ->
                    m "worker %s: fetch broadcast failed: %s" (address w) msg);
                quarantine t w)))
        t.workers;
      (* phase two: collect, each worker bounded by the shared deadline *)
      Array.iteri
        (fun i w ->
          let stale () =
            match Hashtbl.find_opt w.last_good name with
            | Some io -> parts := (w, `Stale io) :: !parts
            | None -> ()
          in
          if expect.(i) < 0 then stale ()
          else
            match w.conn with
            | None -> stale ()
            | Some conn -> (
              let rec acks k =
                if k = 0 then Ok ()
                else
                  match Rpc.recv_timeout ~deadline conn with
                  | Ok reply ->
                    retire_ack t w reply;
                    acks (k - 1)
                  | Error _ as e -> e
              in
              match acks expect.(i) with
              | Error e ->
                Log.warn (fun m ->
                    m "worker %s: lost while draining acks: %s" (address w)
                      (Rpc.describe_recv_error e));
                quarantine t w;
                stale ()
              | Ok () -> (
                match Rpc.recv_timeout ~deadline conn with
                | Ok (P.Sketch encoded) ->
                  fresh.(i) <- true;
                  parts := (w, `Fresh encoded) :: !parts
                | Ok (P.Error_reply (P.Unknown_session _)) ->
                  (* a revived worker the resync could not refill *)
                  stale ()
                | Ok r ->
                  Log.warn (fun m ->
                      m "worker %s: SNAPSHOT answered %s" (address w)
                        (P.render_response r));
                  stale ()
                | Error e ->
                  (match e with
                  | Rpc.Timed_out ->
                    Log.warn (fun m ->
                        m
                          "worker %s: no sketch by the gather deadline — \
                           falling back to its last good snapshot"
                          (address w))
                  | Rpc.Closed msg ->
                    Log.warn (fun m ->
                        m "worker %s: SNAPSHOT failed: %s" (address w) msg));
                  quarantine t w;
                  stale ())))
        t.workers);
  (* phase three: decode in parallel tasks, fold with a balanced merge tree *)
  match List.rev !parts with
  | [] ->
    ignore (coverage ());
    Error (P.Server_error "no worker holds any data for this session")
  | parts_list -> (
    (* every worker answered a fresh token off the wire: if they are
       byte-identical to the last such gather, the fold is too *)
    let all_fresh =
      if not (Array.for_all Fun.id fresh) then None
      else
        let rec go acc = function
          | [] -> Some (Array.of_list (List.rev acc))
          | (_, `Fresh e) :: rest -> go (e :: acc) rest
          | (_, `Stale _) :: _ -> None
        in
        go [] parts_list
    in
    let cached =
      match (all_fresh, si.fold_cache) with
      | Some encs, Some (prev_cut, prev, folded)
        when prev_cut = cutoff
             && Array.length prev = Array.length encs
             && Array.for_all2 String.equal prev encs ->
        Some folded
      | _ -> None
    in
    match cached with
    | Some folded ->
      ignore (coverage ());
      Ok (folded, false, [])
    | None ->
    let parts = Array.of_list parts_list in
    let k = Array.length parts in
    (* Leaves run in domains but [next_seed] mutates [t], so the seeds are
       drawn up front and claimed through an atomic cursor (≤ k decodes +
       ≤ k stale fallbacks + k-1 merges < 3k). *)
    let seeds = Array.init (3 * k) (fun _ -> next_seed t) in
    let cursor = Atomic.make 0 in
    let seed () = seeds.(Atomic.fetch_and_add cursor 1) in
    let fresh_io = Array.make k None in
    let bad_wire = Array.make k None in
    let contributed = Array.make k false in
    (* [Ok None] = this worker contributes nothing (bad token, no fallback);
       [Error] aborts the whole fold, as a family mismatch always did. *)
    let leaf i : (Families.t option, string) result =
      let w, part = parts.(i) in
      let finish = function
        | Ok fam ->
          contributed.(i) <- true;
          Ok (Some fam)
        | Error msg -> Error msg
      in
      match part with
      | `Stale io -> finish (Families.of_io io ~seed:(seed ()))
      | `Fresh encoded -> (
        match Io.of_wire encoded with
        | Ok io ->
          fresh_io.(i) <- Some io;
          finish (Families.of_io io ~seed:(seed ()))
        | Error msg -> (
          bad_wire.(i) <- Some msg;
          match Hashtbl.find_opt w.last_good name with
          | Some io -> finish (Families.of_io io ~seed:(seed ()))
          | None -> Ok None))
    in
    let merge a b =
      match (a, b) with
      | (Error _ as e), _ | _, (Error _ as e) -> e
      | Ok None, x | x, Ok None -> x
      | Ok (Some x), Ok (Some y) -> (
        match Families.merge x y ~seed:(seed ()) with
        | Ok m -> Ok (Some m)
        | Error msg -> Error msg)
    in
    let root =
      Parallel.reduce ~domains:t.gather_domains ~map:leaf ~merge (List.init k Fun.id)
    in
    (* leaf side effects land only after the join above *)
    Array.iteri
      (fun i (w, _) ->
        (match bad_wire.(i) with
        | Some msg ->
          (* a token that would not decode is no fresher than no token *)
          fresh.(w.wid) <- false;
          Log.warn (fun m -> m "worker %s: bad sketch: %s" (address w) msg)
        | None -> ());
        match fresh_io.(i) with
        | Some io when cutoff = None -> Hashtbl.replace w.last_good name io
        | Some _ | None -> ())
      parts;
    let stale_shards = coverage () in
    let degraded = stale_shards <> [] in
    (match root with
    | None | Some (Ok None) ->
      Error (P.Server_error "no worker holds any data for this session")
    | Some (Error msg) -> Error (P.Server_error msg)
    | Some (Ok (Some folded)) ->
      let folds =
        Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 contributed
      in
      si.merges <- si.merges + Stdlib.max 0 (folds - 1);
      (* only a gather where every token decoded cleanly may seed the memo —
         bad_wire clears [fresh] after the join, so re-check *)
      (match all_fresh with
      | Some encs when Array.for_all Fun.id fresh ->
        si.fold_cache <- Some (cutoff, encs, folded)
      | _ -> ());
      Ok (folded, degraded, stale_shards)))

let estimate t ~name =
  with_lock t (fun () ->
      match find_session t name with
      | Error e -> Error e
      | Ok si -> (
        match gather t si name with
        | Error e -> Error e
        | Ok (folded, degraded, stale_shards) ->
          let value = Families.estimate folded in
          si.last_estimate <- value;
          si.degraded <- degraded;
          Ok (value, degraded, stale_shards)))

(* The query's absolute cutoff, computed once coordinator-side.  An
   un-pinned instant comes from the injectable clock and is quantized down
   to [cutoff_bucket] so repeated idle-cluster WINs inside one bucket ship
   byte-identical Fetch cutoffs — the workers' wire caches and the fold memo
   then both hit.  A pinned [at] is taken exactly (reproducible runs). *)
let win_cutoff t ~seconds ~at =
  let instant =
    match at with
    | Some a -> a
    | None ->
      let now = t.clock () in
      Float.floor (now /. t.cutoff_bucket) *. t.cutoff_bucket
  in
  instant -. seconds

let win t ~name ~seconds ~at =
  with_lock t (fun () ->
      match find_session t name with
      | Error e -> Error e
      | Ok si ->
        let cutoff = win_cutoff t ~seconds ~at in
        (* an infinite window is a plain estimate: gather un-windowed so the
           fetch shares EST's memo and refreshes [last_good] *)
        let cutoff = if Float.is_finite cutoff then Some cutoff else None in
        (match gather ?cutoff t si name with
        | Error e -> Error e
        | Ok (folded, degraded, stale_shards) ->
          let value =
            match cutoff with
            | None -> Families.estimate folded
            | Some c ->
              (* re-filter on the fold: fresh parts are already restricted
                 (no-op), but a degraded gather's stale full fallback still
                 carries its timestamps and gets windowed correctly here *)
              Families.estimate_window folded ~cutoff:c
          in
          si.degraded <- degraded;
          Ok (value, degraded, stale_shards)))

let stats t ~name =
  with_lock t (fun () ->
      match find_session t name with
      | Error e -> Error e
      | Ok si -> (
        match gather t si name with
        | Error e -> Error e
        | Ok (folded, _, _) ->
          Ok
            {
              P.family = Families.family_token folded;
              items = Families.items folded;
              entries = Families.entries folded;
              exact = Families.is_exact folded;
              last_estimate = si.last_estimate;
              parse_rejects = si.rejects;
              merges = si.merges;
            }))

(* An EXPR query needs no new worker verb: each leaf session is gathered
   exactly as EST gathers it — same degraded/last-good fallback, same
   per-session fold memo — and the cross-session union fold plus the
   sample-and-probe evaluation run coordinator-side on the folded sketches.
   The answer is degraded iff any leaf's gather was.

   [w] windows the query: each leaf still gathers un-windowed (sharing EST's
   fold memo and refreshing last_good), then the coordinator restricts each
   folded leaf against one cutoff computed up front — so all leaves, and any
   stale fallback inside them, see the same instant. *)
let expr_query ?w t ~expr ~m =
  with_lock t (fun () ->
      let module E = P.Expr_ast in
      let names = E.leaves expr in
      if List.length names > E.max_leaves then
        Error
          (P.Bad_params
             (Printf.sprintf "expression names %d distinct sessions; the cap is %d"
                (List.length names) E.max_leaves))
      else
        let samples =
          match m with
          | None -> Delphic_server.Registry.default_expr_samples
          | Some n -> min n Delphic_server.Registry.max_expr_samples
        in
        let rec gather_leaves acc degraded = function
          | [] -> Ok (List.rev acc, degraded)
          | name :: rest -> (
            match find_session t name with
            | Error e -> Error e
            | Ok si -> (
              match gather t si name with
              | Error e -> Error e
              | Ok (folded, d, _) ->
                gather_leaves ((name, folded) :: acc) (degraded || d) rest))
        in
        let cutoff =
          match w with
          | Some secs when Float.is_finite secs ->
            Some (win_cutoff t ~seconds:secs ~at:None)
          | Some _ | None -> None
        in
        match gather_leaves [] false names with
        | Error e -> Error e
        | Ok (leaves, degraded) -> (
          match
            match cutoff with
            | None -> Ok leaves
            | Some c ->
              List.fold_left
                (fun acc (name, f) ->
                  Result.bind acc (fun rev ->
                      match Families.restrict f ~cutoff:c ~seed:(next_seed t) with
                      | Ok r -> Ok ((name, r) :: rev)
                      | Error msg -> Error (P.Server_error msg)))
                (Ok []) leaves
              |> Result.map List.rev
          with
          | Error e -> Error e
          | Ok leaves -> (
          let names_arr = Array.of_list (List.map fst leaves) in
          let folds_arr = Array.of_list (List.map snd leaves) in
          let union =
            match t.expr_cache with
            | Some (ns, fs, u)
              when Array.length ns = Array.length names_arr
                   && Array.for_all2 String.equal ns names_arr
                   && Array.for_all2 ( == ) fs folds_arr ->
              (* every leaf fold is physically the one we folded last time
                 (the per-session memo handed it back): the union is too *)
              Ok u
            | _ -> (
              let folded =
                match leaves with
                | [] -> Error (P.Bad_params "expression names no sessions")
                | [ (_, f) ] -> Ok f
                | (_, first) :: rest ->
                  List.fold_left
                    (fun acc (_, f) ->
                      Result.bind acc (fun u ->
                          Result.map_error
                            (fun msg -> P.Bad_params msg)
                            (Families.merge u f ~seed:(next_seed t))))
                    (Ok first) rest
              in
              match folded with
              | Ok u ->
                (* a windowed union is a throwaway view — caching it would
                   evict the full-query memo for nothing (the restricted
                   leaves are fresh values, the identity check cannot hit) *)
                if cutoff = None then t.expr_cache <- Some (names_arr, folds_arr, u);
                Ok u
              | Error _ as e -> e)
          in
          match union with
          | Error e -> Error e
          | Ok union -> (
            match Families.expr_estimate ~union ~leaves ~expr ~samples with
            | Ok outcome -> Ok (outcome, degraded)
            | Error msg -> Error (P.Bad_params msg)))))

let fetch ?cutoff t ~name =
  with_lock t (fun () ->
      match find_session t name with
      | Error e -> Error e
      | Ok si -> (
        match gather ?cutoff t si name with
        | Error e -> Error e
        | Ok (folded, _, _) -> (
          let io = Families.to_io ~merges:si.merges folded in
          (* restrict the encoded fold too: a degraded gather may have folded
             in a stale, un-windowed fallback *)
          let io =
            match cutoff with None -> io | Some c -> Io.restrict ~cutoff:c io
          in
          match Io.to_wire io with
          | encoded -> Ok encoded
          | exception Invalid_argument msg -> Error (P.Server_error msg))))

let snapshot_to t ~name ~path =
  with_lock t (fun () ->
      match find_session t name with
      | Error e -> Error e
      | Ok si -> (
        match gather t si name with
        | Error e -> Error e
        | Ok (folded, _, _) -> (
          match Io.save ~path (Families.to_io ~merges:si.merges folded) with
          | () -> Ok ()
          | exception Sys_error msg -> Error (P.Io_error msg)
          | exception Invalid_argument msg -> Error (P.Server_error msg))))

(* An externally supplied sketch joins the union through whichever worker
   the round-robin cursor picks — the next gather folds it back in. *)
let merge_in t ~name ~encoded =
  with_lock t (fun () ->
      match Result.bind (mutation_guard t) (fun () -> find_session t name) with
      | Error e -> Error e
      | Ok si ->
        let n = Array.length t.workers in
        si.rr <- si.rr + 1;
        let start = si.rr mod n in
        let rec try_from i =
          if i >= n then Error (P.Server_error "no workers available")
          else
            let w = t.workers.((start + i) mod n) in
            match ensure_conn t w with
            | None -> try_from (i + 1)
            | Some _ -> (
              match call_sync t w (P.Merge { session = name; encoded }) with
              | Ok (P.Ok_reply _) -> Ok ()
              | Ok (P.Error_reply e) -> Error e
              | Ok r ->
                Error (P.Server_error ("unexpected MERGE reply " ^ P.render_response r))
              | Error msg ->
                Log.warn (fun m -> m "worker %s: MERGE failed: %s" (address w) msg);
                try_from (i + 1))
        in
        try_from 0)

let close t ~name =
  with_lock t (fun () ->
      match Result.bind (mutation_guard t) (fun () -> find_session t name) with
      | Error e -> Error e
      | Ok _ ->
        flush t;
        ignore
          (broadcast t
             (P.Close { session = name })
             ~accept:(function
               | P.Ok_reply _ | P.Error_reply (P.Unknown_session _) -> true
               | _ -> false));
        Array.iter (fun w -> Hashtbl.remove w.last_good name) t.workers;
        Hashtbl.remove t.sessions name;
        Ok ())

let live_workers t =
  with_lock t (fun () ->
      Array.fold_left (fun n w -> if w.conn <> None then n + 1 else n) 0 t.workers)

let shard_freshness t = with_lock t (fun () -> Array.to_list t.last_shard_fresh)

let epoch t = with_lock t (fun () -> t.epoch)

let is_fenced t = with_lock t (fun () -> t.fenced_by > t.epoch)

let is_read_only t = with_lock t (fun () -> t.read_only)

let set_read_only t flag = with_lock t (fun () -> t.read_only <- flag)

(* The floor a takeover epoch must clear: everything this coordinator has
   ever announced, been fenced by, or seen a worker carry.  Probes every
   quarantine-free worker so a standby that has been idle still learns the
   deposed primary's epoch from the workers (they are the durable truth). *)
let max_known_epoch t =
  with_lock t (fun () ->
      Array.iter (fun w -> ignore (ensure_conn t w)) t.workers;
      Stdlib.max t.epoch (Stdlib.max t.fenced_by t.max_worker_epoch))

(* Adopt [epoch] and stamp every live worker connection with it; fresh
   connections are stamped by [ensure_conn].  Pipelined acks share each
   reply stream, so every connection is drained to quiescence before the
   synchronous COORD round-trip.  Returns the number of workers that
   accepted the stamp. *)
let announce_epoch t ~epoch =
  with_lock t (fun () ->
      if epoch < t.epoch then
        invalid_arg "Coordinator.announce_epoch: epoch must not decrease";
      t.epoch <- epoch;
      if t.fenced_by <= epoch then t.fenced_by <- 0;
      let accepted = ref 0 in
      Array.iter
        (fun w ->
          match ensure_conn t w with
          | None -> ()
          | Some _ -> (
            flush_worker t w;
            drain_acks t w ~down_to:0;
            match w.conn with
            | None -> ()
            | Some conn ->
              if announce_epoch_on t w conn then incr accepted
              else quarantine t w))
        t.workers;
      !accepted)

(* Rebuild the session table from the workers — a standby's takeover path.
   No coordinator journal exists, and none is needed: every OPEN was
   broadcast to the whole pool, so the union of every reachable worker's
   SESSIONS recovers the full table (first description wins; the parameters
   are identical across workers by construction).  Sessions already known
   locally are kept as-is. *)
let sync_sessions t =
  with_lock t (fun () ->
      let added = ref 0 in
      Array.iter
        (fun w ->
          match ensure_conn t w with
          | None -> ()
          | Some _ -> (
            match call_sync t w P.Sessions with
            | Ok (P.Sessions_reply descs) ->
              List.iter
                (fun (d : P.session_desc) ->
                  if not (Hashtbl.mem t.sessions d.P.sd_name) then
                    match P.family_of_token d.P.sd_family with
                    | Error _ ->
                      Log.warn (fun m ->
                          m "worker %s: session %s has unknown family %S — skipped"
                            (address w) d.P.sd_name d.P.sd_family)
                    | Ok family ->
                      incr added;
                      Hashtbl.replace t.sessions d.P.sd_name
                        {
                          family;
                          epsilon = d.P.sd_epsilon;
                          delta = d.P.sd_delta;
                          log2_universe = d.P.sd_log2_universe;
                          rr = 0;
                          last_estimate = 0.0;
                          degraded = false;
                          rejects = 0;
                          lost = 0;
                          merges = 0;
                          fold_cache = None;
                        })
                descs
            | Ok (P.Error_reply (P.Unknown_command _)) -> () (* legacy worker *)
            | Ok r ->
              Log.warn (fun m ->
                  m "worker %s: SESSIONS answered %s" (address w) (P.render_response r))
            | Error msg ->
              Log.warn (fun m -> m "worker %s: SESSIONS failed: %s" (address w) msg)))
        t.workers;
      !added)

let session_descs t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun name (si : session_info) acc ->
          {
            P.sd_name = name;
            sd_family = P.family_to_token si.family;
            sd_epsilon = si.epsilon;
            sd_delta = si.delta;
            sd_log2_universe = si.log2_universe;
          }
          :: acc)
        t.sessions []
      |> List.sort (fun a b -> compare a.P.sd_name b.P.sd_name))

let shutdown t =
  with_lock t (fun () ->
      flush t;
      Array.iter
        (fun w ->
          (match w.conn with Some c -> Rpc.close c | None -> ());
          w.conn <- None)
        t.workers)

let dispatch t (req : P.request) : P.response =
  let reply = function Ok r -> r | Error e -> P.Error_reply e in
  match req with
  | P.Ping -> P.Pong
  (* The coordinator is a client-facing aggregate, not a restartable worker;
     it has no journal generation to advertise — but it does carry the
     fencing epoch, which a standby probes for. *)
  | P.Hello -> P.Hello_reply { generation = 0; epoch = epoch t }
  (* Connection/domain figures belong to the front door; [Frontend.handle]
     intercepts bare STATS before dispatch.  Reached directly (tests, a
     coordinator embedded without a frontend) only the gather freshness is
     reportable. *)
  | P.Server_stats ->
    P.Server_stats_reply
      {
        conns = 0;
        shed = 0;
        dispatched = [];
        wal_queue = 0;
        wal_last_group = 0;
        wal_groups = 0;
        shard_fresh = shard_freshness t;
      }
  (* COORD stamps a *worker* connection; announcing an epoch to a
     coordinator is a topology error. *)
  | P.Coord_epoch _ -> P.Error_reply (P.Unknown_command "COORD")
  | P.Sessions -> P.Sessions_reply (session_descs t)
  (* The lease a standby polls: who is primary here, at what epoch.  Served
     from plain field reads under the lock — it must stay cheap and
     gather-free so a busy primary still renews on time. *)
  | P.Lease ->
    with_lock t (fun () ->
        P.Lease_reply { epoch = t.epoch; primary = not t.read_only })
  | P.Open { session; family; epsilon; delta; log2_universe } ->
    reply
      (Result.map
         (fun () -> P.Ok_reply (Some ("opened " ^ session)))
         (open_session t ~name:session ~family ~epsilon ~delta ~log2_universe))
  | P.Add { session; payload; ts } ->
    reply (Result.map (fun () -> P.Ok_reply None) (add ?ts t ~name:session ~payload))
  (* ADDL at the front door is just ingest: the coordinator re-routes with
     its own replica roles, so the log-append hint does not pass through. *)
  | P.Add_batch { session; payloads; ts } | P.Add_log { session; payloads; ts } ->
    reply
      (Result.map
         (fun (accepted, errors) -> P.Ok_batch { accepted; errors })
         (add_batch ?ts t ~name:session ~payloads))
  | P.Est { session } ->
    reply
      (Result.map
         (fun (value, degraded, stale_shards) ->
           P.Estimate { value; degraded; stale_shards })
         (estimate t ~name:session))
  | P.Win { session; seconds; at } ->
    reply
      (Result.map
         (fun (value, degraded, stale_shards) ->
           P.Estimate { value; degraded; stale_shards })
         (win t ~name:session ~seconds ~at))
  | P.Stats { session } ->
    reply (Result.map (fun s -> P.Stats_reply s) (stats t ~name:session))
  | P.Fetch { session; cutoff } ->
    reply (Result.map (fun encoded -> P.Sketch encoded) (fetch ?cutoff t ~name:session))
  | P.Snapshot { session; path } ->
    reply
      (Result.map
         (fun () -> P.Ok_reply (Some ("snapshotted " ^ session)))
         (snapshot_to t ~name:session ~path))
  | P.Merge { session; encoded } ->
    reply
      (Result.map
         (fun () -> P.Ok_reply (Some ("merged into " ^ session)))
         (merge_in t ~name:session ~encoded))
  | P.Expr { expr; m; w } ->
    reply
      (Result.map
         (fun (outcome, degraded) -> P.expr_reply_of_outcome ~degraded outcome)
         (expr_query ?w t ~expr ~m))
  | P.Restore _ ->
    P.Error_reply
      (P.Server_error
         "RESTORE names a file on a worker host; restore there and MERGE the sketch")
  | P.Close { session } ->
    reply (Result.map (fun () -> P.Ok_reply (Some ("closed " ^ session))) (close t ~name:session))
