module P = Delphic_server.Protocol
module Evloop = Delphic_server.Evloop
module Evgroup = Delphic_server.Evgroup

let log_src = Logs.Src.create "delphic.frontend" ~doc:"cluster frontend"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  shard_fresh : unit -> int list;
      (* per-shard fresh-replica counts for SRVSTATS, injected by the
         coordinator ([fun () -> []] on non-replicated deployments) *)
  mutable stopping : bool;
  mutable evg : Evgroup.t option; (* set once by [create]; never unset *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let evg_exn t = match t.evg with Some g -> g | None -> assert false

(* Bare STATS answered here: the front door owns the connection and domain
   figures; no journal on a coordinator, so the WAL fields are 0. *)
let srvstats t =
  let g = evg_exn t in
  P.Server_stats_reply
    {
      conns = Evgroup.live_conns g;
      shed = Evgroup.shed_count g;
      dispatched = Array.to_list (Evgroup.dispatched g);
      wal_queue = 0;
      wal_last_group = 0;
      wal_groups = 0;
      shard_fresh = (try t.shard_fresh () with _ -> []);
    }

(* The frontend is pure request → response plumbing: parse, dispatch,
   render.  No journal, so [raw] is unused and every reply is immediate —
   both protocols share one path.  [ctx] is unused: clients are never
   epoch-fenced at the front door (fencing is a worker-side concern). *)
let handle t dispatch ~ctx:_ ~proto ~raw:_ ~body =
  let parsed =
    match proto with
    | Evloop.V2 -> P.parse_frame_body body
    | Evloop.V1 -> P.parse_request body
  in
  let response =
    match parsed with
    | Error e -> P.Error_reply e
    | Ok P.Server_stats -> srvstats t
    | Ok req -> (
      match dispatch req with
      | resp -> resp
      | exception exn -> P.Error_reply (P.Server_error (Printexc.to_string exn)))
  in
  Evloop.Reply (P.render_response response)

let create ?(host = "127.0.0.1") ?max_conns ?domains ?(shard_fresh = fun () -> [])
    ~port ~dispatch () =
  (* a client that hangs up mid-reply must cost one connection, not the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 1024;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let t =
    { listen_fd = fd; port; lock = Mutex.create (); shard_fresh; stopping = false; evg = None }
  in
  let g =
    Evgroup.create ?max_conns ?domains ~listen_fd:fd ~handler:(handle t dispatch)
      ~on_bad_frame:(fun reason ->
        Some (P.render_response (P.Error_reply (P.Io_error reason))))
      ()
  in
  t.evg <- Some g;
  t

let port t = t.port

let request_stop t =
  let fresh =
    with_lock t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if fresh then Evgroup.stop (evg_exn t)

(* SIGTERM drains like SIGINT: a supervisor's stop is a graceful stop. *)
let install_signals t =
  List.iter
    (fun signum -> ignore (Sys.signal signum (Sys.Signal_handle (fun _ -> request_stop t))))
    [ Sys.sigint; Sys.sigterm ]

let install_sigint = install_signals

let serve t =
  Log.info (fun m ->
      m "frontend listening on port %d (domains: %d)" t.port (Evgroup.domains (evg_exn t)));
  Evgroup.run (evg_exn t);
  with_lock t (fun () -> t.stopping <- true);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "frontend stopped")

let start t = Thread.create serve t
