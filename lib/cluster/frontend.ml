module P = Delphic_server.Protocol

let log_src = Logs.Src.create "delphic.frontend" ~doc:"cluster frontend"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  dispatch : P.request -> P.response;
  listen_fd : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable stopping : bool;
  handlers : (Unix.file_descr, Thread.t) Hashtbl.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(host = "127.0.0.1") ~port ~dispatch () =
  (* a client that hangs up mid-reply must cost one handler, not the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  {
    dispatch;
    listen_fd = fd;
    port;
    lock = Mutex.create ();
    stopping = false;
    handlers = Hashtbl.create 16;
    conns = Hashtbl.create 16;
    stop_r;
    stop_w;
  }

let port t = t.port

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | exception End_of_file -> continue := false
       | line ->
         let response =
           match P.parse_request line with
           | Error e -> P.Error_reply e
           | Ok req -> (
             match t.dispatch req with
             | resp -> resp
             | exception exn -> P.Error_reply (P.Server_error (Printexc.to_string exn)))
         in
         output_string oc (P.render_response response);
         output_char oc '\n';
         flush oc
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  (* drop the handler entry too, or a long-running frontend leaks one
     Thread.t per connection it ever accepted *)
  with_lock t (fun () ->
      Hashtbl.remove t.conns fd;
      Hashtbl.remove t.handlers fd);
  try Unix.close fd with Unix.Unix_error _ -> ()

let request_stop t =
  with_lock t (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        (try ignore (Unix.single_write_substring t.stop_w "x" 0 1)
         with Unix.Unix_error _ -> ());
        Hashtbl.iter
          (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          t.conns
      end)

(* SIGTERM drains like SIGINT: a supervisor's stop is a graceful stop. *)
let install_signals t =
  List.iter
    (fun signum -> ignore (Sys.signal signum (Sys.Signal_handle (fun _ -> request_stop t))))
    [ Sys.sigint; Sys.sigterm ]

let install_sigint = install_signals

let spawn_handler t fd =
  let old_mask = Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ] in
  let th = Thread.create (fun () -> handle_connection t fd) () in
  ignore (Thread.sigmask Unix.SIG_SETMASK old_mask);
  th

let serve t =
  Log.info (fun m -> m "frontend listening on port %d" t.port);
  let rec accept_loop () =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ when t.stopping -> ()
      | ready, _, _ ->
        if t.stopping || List.mem t.stop_r ready then ()
        else if List.mem t.listen_fd ready then begin
          match Unix.accept t.listen_fd with
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
            accept_loop ()
          | exception Unix.Unix_error _ when t.stopping -> ()
          | fd, _ ->
            (* register conn and handler under one lock hold: the handler's
               cleanup takes the same lock, so even an instantly-closing
               connection removes its entry only after it exists *)
            with_lock t (fun () ->
                Hashtbl.replace t.conns fd ();
                Hashtbl.replace t.handlers fd (spawn_handler t fd));
            accept_loop ()
        end
        else accept_loop ()
  in
  accept_loop ();
  request_stop t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  let handlers =
    with_lock t (fun () -> Hashtbl.fold (fun _ th acc -> th :: acc) t.handlers [])
  in
  List.iter (fun th -> try Thread.join th with _ -> ()) handlers;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "frontend stopped")

let start t = Thread.create serve t
