module P = Delphic_server.Protocol
module Evloop = Delphic_server.Evloop

let log_src = Logs.Src.create "delphic.frontend" ~doc:"cluster frontend"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable stopping : bool;
  loop : Evloop.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* The frontend is pure request → response plumbing: parse, dispatch,
   render.  No journal, so [raw] is unused — both protocols share one
   path. *)
let handle dispatch ~proto ~raw:_ ~body =
  let parsed =
    match proto with
    | Evloop.V2 -> P.parse_frame_body body
    | Evloop.V1 -> P.parse_request body
  in
  let response =
    match parsed with
    | Error e -> P.Error_reply e
    | Ok req -> (
      match dispatch req with
      | resp -> resp
      | exception exn -> P.Error_reply (P.Server_error (Printexc.to_string exn)))
  in
  P.render_response response

let create ?(host = "127.0.0.1") ?max_conns ~port ~dispatch () =
  (* a client that hangs up mid-reply must cost one connection, not the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 1024;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let loop =
    Evloop.create ?max_conns ~listen_fd:fd ~handler:(handle dispatch)
      ~on_bad_frame:(fun reason ->
        Some (P.render_response (P.Error_reply (P.Io_error reason))))
      ()
  in
  { listen_fd = fd; port; lock = Mutex.create (); stopping = false; loop }

let port t = t.port

let request_stop t =
  let fresh =
    with_lock t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if fresh then Evloop.stop t.loop

(* SIGTERM drains like SIGINT: a supervisor's stop is a graceful stop. *)
let install_signals t =
  List.iter
    (fun signum -> ignore (Sys.signal signum (Sys.Signal_handle (fun _ -> request_stop t))))
    [ Sys.sigint; Sys.sigterm ]

let install_sigint = install_signals

let serve t =
  Log.info (fun m -> m "frontend listening on port %d" t.port);
  Evloop.run t.loop;
  with_lock t (fun () -> t.stopping <- true);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "frontend stopped")

let start t = Thread.create serve t
