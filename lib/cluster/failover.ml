module P = Delphic_server.Protocol

let log_src = Logs.Src.create "delphic.failover" ~doc:"warm-standby lease monitor"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  coord : Coordinator.t;
  primary_host : string;
  primary_port : int;
  interval : float;
  misses : int;
  proto : Rpc.proto;
  dial_timeout : float;
  timeout : float;
  lock : Mutex.t;
  mutable seen_epoch : int; (* highest epoch the primary's leases carried *)
  mutable missed : int; (* consecutive lease failures *)
  mutable active : bool; (* promoted: this node is the primary now *)
  mutable stopping : bool;
  mutable conn : Rpc.t option; (* lease connection to the primary *)
  mutable thread : Thread.t option;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(interval = 0.5) ?(misses = 3) ?(proto = Rpc.V1) ?(dial_timeout = 2.0)
    ?(timeout = 2.0) ~primary:(primary_host, primary_port) ~coord () =
  if interval <= 0.0 then invalid_arg "Failover.create: need interval > 0";
  if misses < 1 then invalid_arg "Failover.create: need misses >= 1";
  (* the standby contract starts now: queries pass, mutations are refused *)
  Coordinator.set_read_only coord true;
  {
    coord;
    primary_host;
    primary_port;
    interval;
    misses;
    proto;
    dial_timeout;
    timeout;
    lock = Mutex.create ();
    seen_epoch = 0;
    missed = 0;
    active = false;
    stopping = false;
    conn = None;
    thread = None;
  }

let drop_conn t =
  match t.conn with
  | Some c ->
    Rpc.close c;
    t.conn <- None
  | None -> ()

(* One lease round-trip.  Holds no result state beyond [seen_epoch]/[missed]:
   a healthy primary resets the miss counter, anything else — dial failure,
   timeout, a reply that is not an authoritative lease — counts one miss and
   drops the connection so the next poll re-dials from scratch. *)
let poll_once t =
  let conn =
    match t.conn with
    | Some c -> Some c
    | None -> (
      match
        Rpc.connect ~proto:t.proto ~dial_timeout:t.dial_timeout ~host:t.primary_host
          ~port:t.primary_port ~timeout:t.timeout ()
      with
      | Ok c ->
        t.conn <- Some c;
        Some c
      | Error err ->
        Log.debug (fun m ->
            m "primary %s:%d unreachable: %s" t.primary_host t.primary_port
              (Rpc.describe_connect_error err));
        None)
  in
  match conn with
  | None -> t.missed <- t.missed + 1
  | Some c -> (
    match Rpc.call c P.Lease with
    | Ok (P.Lease_reply { epoch; primary = true }) ->
      if epoch > t.seen_epoch then t.seen_epoch <- epoch;
      t.missed <- 0
    | Ok (P.Lease_reply { epoch; primary = false }) ->
      (* the node we lease from is itself a standby — no one is renewing;
         treat it as a dead primary so one of us takes over *)
      if epoch > t.seen_epoch then t.seen_epoch <- epoch;
      t.missed <- t.missed + 1
    | Ok r ->
      Log.warn (fun m ->
          m "primary %s:%d answered LEASE with %s" t.primary_host t.primary_port
            (P.render_response r));
      drop_conn t;
      t.missed <- t.missed + 1
    | Error msg ->
      Log.debug (fun m ->
          m "lease from %s:%d failed: %s" t.primary_host t.primary_port msg);
      drop_conn t;
      t.missed <- t.missed + 1)

(* Promotion.  The new epoch must strictly dominate everything the old
   primary ever announced: the floor is the max of the epochs seen on its
   leases and the epochs the workers report in HELLO (the durable truth —
   covers a primary that died before this standby ever saw a lease).  The
   session table is rebuilt purely from worker SESSIONS listings; announcing
   the new epoch then fences every late write from the deposed primary. *)
let takeover t =
  let floor =
    Stdlib.max t.seen_epoch (Coordinator.max_known_epoch t.coord)
  in
  let epoch = floor + 1 in
  let sessions = Coordinator.sync_sessions t.coord in
  let stamped = Coordinator.announce_epoch t.coord ~epoch in
  Coordinator.set_read_only t.coord false;
  t.active <- true;
  drop_conn t;
  Log.info (fun m ->
      m "takeover: epoch %d announced to %d worker(s), %d session(s) recovered"
        epoch stamped sessions)

let takeover_now t = with_lock t (fun () -> if not t.active then takeover t)

let is_active t = with_lock t (fun () -> t.active)

let monitor t =
  let finished = ref false in
  while not !finished do
    Thread.delay t.interval;
    let stop =
      with_lock t (fun () ->
          if t.stopping || t.active then true
          else begin
            poll_once t;
            (* keep the standby warm for reads: relearn sessions the primary
               opened since the last poll (SESSIONS is a pure gather — the
               local table only ever gains entries, never touches workers) *)
            if t.missed = 0 then ignore (Coordinator.sync_sessions t.coord);
            if t.missed >= t.misses then begin
              Log.warn (fun m ->
                  m "primary %s:%d missed %d lease(s) — taking over" t.primary_host
                    t.primary_port t.missed);
              takeover t
            end;
            t.stopping || t.active
          end)
    in
    if stop then finished := true
  done

let start t =
  with_lock t (fun () ->
      match t.thread with
      | Some _ -> ()
      | None -> t.thread <- Some (Thread.create monitor t))

let stop t =
  let th =
    with_lock t (fun () ->
        t.stopping <- true;
        drop_conn t;
        let th = t.thread in
        t.thread <- None;
        th)
  in
  match th with Some th -> Thread.join th | None -> ()
