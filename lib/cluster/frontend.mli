(** Event-driven TCP front door for any request → response step.

    The {!Delphic_server.Evloop} readiness loop, shutdown and signal
    handling of {!Delphic_server.Server}, detached from the registry: the
    dispatch function is injected, so the same loop serves a single-node
    registry or a {!Coordinator} unchanged.  Both the v1 text protocol and
    wire protocol v2 are served, auto-detected on the first bytes; with
    [domains > 1] the connections are sharded round-robin across that many
    event-loop domains ({!Delphic_server.Evgroup}).  The bare [STATS] verb
    is answered by the frontend itself (connection and domain figures). *)

type t

val create :
  ?host:string ->
  ?max_conns:int ->
  ?domains:int ->
  ?shard_fresh:(unit -> int list) ->
  port:int ->
  dispatch:(Delphic_server.Protocol.request -> Delphic_server.Protocol.response) ->
  unit ->
  t
(** Binds immediately ([port] 0 picks a free port — see {!port}); serving
    starts with {!serve}/{!start}.  [dispatch] runs on an event-loop
    thread: it may block (only that loop's connections wait), and
    {!Coordinator.dispatch} is safe here — with [domains > 1] it must also
    be domain-safe, which the coordinator's internal locking provides.
    [shard_fresh] feeds the [shard_fresh=] field of the bare [STATS] reply
    (per-shard fresh-replica counts from the coordinator's latest gather);
    absent, the field is omitted. *)

val port : t -> int

val serve : t -> unit
(** Run the event loop on the calling thread until {!request_stop}. *)

val start : t -> Thread.t
(** {!serve} on a daemon thread; join the result for a clean shutdown. *)

val request_stop : t -> unit
(** Idempotent, signal-safe: wakes the event loop, which closes every open
    connection on its way out. *)

val install_signals : t -> unit
(** Route SIGINT and SIGTERM to {!request_stop}. *)

val install_sigint : t -> unit
(** Alias of {!install_signals} (kept for older callers). *)
