(** Threaded TCP front door for any request → response step.

    The accept loop, per-connection handler threads, self-pipe shutdown and
    SIGINT handling of {!Delphic_server.Server}, detached from the registry:
    the dispatch function is injected, so the same loop serves a
    single-node registry or a {!Coordinator} unchanged.  One thread per
    connection; the protocol is newline-delimited, one response line per
    request line. *)

type t

val create :
  ?host:string ->
  port:int ->
  dispatch:(Delphic_server.Protocol.request -> Delphic_server.Protocol.response) ->
  unit ->
  t
(** Binds immediately ([port] 0 picks a free port — see {!port}); serving
    starts with {!serve}/{!start}.  [dispatch] runs on handler threads and
    must be thread-safe ({!Coordinator.dispatch} is). *)

val port : t -> int

val serve : t -> unit
(** Run the accept loop on the calling thread until {!request_stop}. *)

val start : t -> Thread.t
(** {!serve} on a daemon thread; join the result for a clean shutdown. *)

val request_stop : t -> unit
(** Idempotent, signal-safe: wakes the accept loop and shuts down open
    connections so handler threads drain. *)

val install_signals : t -> unit
(** Route SIGINT and SIGTERM to {!request_stop}. *)

val install_sigint : t -> unit
(** Alias of {!install_signals} (kept for older callers). *)
