(** One client connection to a worker, speaking either the v1 line protocol
    of {!Delphic_server.Protocol} or wire protocol v2 (length-prefixed
    CRC-framed binary, selected at {!connect}), with every blocking step
    bounded by a deadline.

    The coordinator cannot afford an unbounded stall on one worker while
    the others idle: {!connect} uses a nonblocking connect raced against
    [poll] (FD_SETSIZE-safe), and reads go through a raw [Unix.read] loop
    (not an [in_channel]) so [SO_RCVTIMEO] expiry surfaces as the typed
    {!recv_error.Timed_out} instead of an exception string.  All failures
    are values — never exceptions — so the caller's retry/quarantine logic
    sees every outcome. *)

type t

type proto = V1 | V2
(** [V1]: newline-delimited text.  [V2]: {!Delphic_server.Frame}-framed
    bodies after a 4-byte preamble; [ADDB] payloads travel as raw bytes
    with no %-armoring, and the server journals mutations by splicing the
    received frame.  Both sides of a connection must agree — the server
    auto-detects from the preamble. *)

type io = {
  io_read : Unix.file_descr -> Bytes.t -> int -> int -> int;
      (** [Unix.read] semantics: returns bytes read, 0 on EOF, raises
          [Unix.Unix_error] (EAGAIN surfaces as {!recv_error.Timed_out}) *)
  io_write : Unix.file_descr -> string -> int -> int -> int;
      (** [Unix.write_substring] semantics: returns bytes written, raises
          [Unix.Unix_error] on a dead peer *)
}
(** The socket operations behind a connection.  The default is the real
    [Unix] pair; [Delphic_harness.Chaos] wraps them to inject seeded delays,
    drops, partial writes, closes and corruption without touching any of
    the framing or retry logic above. *)

val default_io : io

type recv_error =
  | Timed_out
      (** the budget passed without a complete reply line.  The peer may
          merely be slow — but a reply consumed after a timeout would land
          on a stream whose framing the caller has given up on, so the
          connection should be dropped either way; the constructor exists so
          that callers can {e log and decide} without matching on message
          strings. *)
  | Closed of string
      (** EOF, a transport error, or an unparseable reply line (a misframed
          stream is as dead as a closed one). *)

type connect_error =
  | Dial_timeout of float
      (** the dial budget (seconds) elapsed with the connect still pending —
          the address is black-holed or the host is partitioned away.  The
          typed constructor lets the coordinator's quarantine path treat
          this as a worker death without string matching. *)
  | Dial_failed of string
      (** name resolution failed, the peer actively refused, or any other
          immediate connect error. *)

val describe_connect_error : connect_error -> string

val connect :
  ?io:io ->
  ?proto:proto ->
  ?dial_timeout:float ->
  host:string -> port:int -> timeout:float -> unit -> (t, connect_error) result
(** [io] defaults to {!default_io}; a fault-injection harness passes its
    wrapped pair here (threaded through [Coordinator.create ?io]).  The
    [io] hooks sit {e below} the framing, so chaos corruption on a [V2]
    connection surfaces as CRC rejects.  [proto] defaults to [V1].
    [dial_timeout] (default 2s) bounds the TCP connect itself, separately
    from the per-reply [timeout]: a black-holed address costs exactly one
    dial budget and surfaces as {!connect_error.Dial_timeout}. *)

val address : t -> string
(** ["host:port"], for log and error messages. *)

val describe_recv_error : recv_error -> string

val call : t -> Delphic_server.Protocol.request -> (Delphic_server.Protocol.response, string) result
(** [send] then [recv]: the one-outstanding-request case. *)

val send : t -> Delphic_server.Protocol.request -> (unit, string) result
(** Write one request without waiting for the reply — the pipelined scatter
    path.  Replies arrive in request order via {!recv}.  Any staged requests
    are shipped first, so the wire order always matches the stage/send
    order. *)

val stage : t -> Delphic_server.Protocol.request -> unit
(** Append one request to the connection's staging buffer without touching
    the socket.  Nothing is transmitted until {!flush_staged} (or a
    {!send}/{!call}, which drain the buffer first); staged requests reach
    the wire in staging order as a single coalesced write. *)

val staged_bytes : t -> int
(** Bytes currently staged and unsent — a flush-policy input. *)

val flush_staged : t -> (unit, string) result
(** Ship every staged request in one write+flush.  On [Error] the staged
    bytes are discarded (a retry on the same socket could split a frame
    mid-line); the caller is expected to drop the connection and replay
    from its own pending queue. *)

val recv_timeout :
  ?deadline:float -> t -> (Delphic_server.Protocol.response, recv_error) result
(** Read one reply line, bounded by [deadline] (an [Unix.gettimeofday]
    epoch; default now + the connect timeout).  The deadline bounds the
    {e whole line}, not each read syscall, so the overlapped gather can hand
    every worker the same absolute deadline and collect serially: a reply
    already sitting in the kernel buffer is returned even when the budget
    has been consumed by an earlier, slower worker, while a worker that has
    not answered by the deadline costs at most the remaining budget.
    Partial lines read before a timeout stay buffered on the connection. *)

val recv : t -> (Delphic_server.Protocol.response, string) result
(** {!recv_timeout} with the connection's default budget and the error
    flattened to a message. *)

val close : t -> unit
(** Idempotent; shuts down both directions first so a blocked peer sees
    EOF. *)
