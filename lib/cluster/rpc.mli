(** One client connection to a worker, speaking the line protocol of
    {!Delphic_server.Protocol} with every blocking step bounded by a
    deadline.

    The coordinator cannot afford an unbounded stall on one worker while
    the others idle: {!connect} uses a nonblocking connect raced against
    [select], and the established socket carries [SO_RCVTIMEO]/[SO_SNDTIMEO]
    so {!send}/{!recv} fail with [Error] after [timeout] seconds instead of
    hanging.  All failures are [Error message] — never exceptions — so the
    caller's retry/quarantine logic sees every outcome. *)

type t

val connect : host:string -> port:int -> timeout:float -> (t, string) result

val address : t -> string
(** ["host:port"], for log and error messages. *)

val call : t -> Delphic_server.Protocol.request -> (Delphic_server.Protocol.response, string) result
(** [send] then [recv]: the one-outstanding-request case. *)

val send : t -> Delphic_server.Protocol.request -> (unit, string) result
(** Write one request without waiting for the reply — the pipelined scatter
    path.  Replies arrive in request order via {!recv}.  Any staged requests
    are shipped first, so the wire order always matches the stage/send
    order. *)

val stage : t -> Delphic_server.Protocol.request -> unit
(** Append one request to the connection's staging buffer without touching
    the socket.  Nothing is transmitted until {!flush_staged} (or a
    {!send}/{!call}, which drain the buffer first); staged requests reach
    the wire in staging order as a single coalesced write. *)

val staged_bytes : t -> int
(** Bytes currently staged and unsent — a flush-policy input. *)

val flush_staged : t -> (unit, string) result
(** Ship every staged request in one write+flush.  On [Error] the staged
    bytes are discarded (a retry on the same socket could split a frame
    mid-line); the caller is expected to drop the connection and replay
    from its own pending queue. *)

val recv : t -> (Delphic_server.Protocol.response, string) result
(** [Error] on timeout, closed connection, or an unparseable reply line. *)

val close : t -> unit
(** Idempotent; shuts down both directions first so a blocked peer sees
    EOF. *)
