module P = Delphic_server.Protocol
module Frame = Delphic_server.Frame
module Evloop = Delphic_server.Evloop

type proto = V1 | V2

type recv_error =
  | Timed_out  (** the deadline passed with no complete reply line; the peer
                   may still be alive, but its reply stream can no longer be
                   trusted to stay framed *)
  | Closed of string  (** EOF, a transport error, or an unparseable line *)

(* Dial failures are typed so the caller can tell a black-holed address (the
   bounded dial budget elapsed with no SYN-ACK — quarantine, long backoff)
   from an active refusal or resolution failure (the host answered; retry
   soon may work). *)
type connect_error =
  | Dial_timeout of float  (** no connection within this many seconds *)
  | Dial_failed of string  (** resolution failure, ECONNREFUSED, ... *)

(* The socket ops behind a connection, pluggable so a fault-injection
   harness can wrap them.  Semantics mirror [Unix.read]/[Unix.write_substring]
   exactly: same return conventions, same exceptions. *)
type io = {
  io_read : Unix.file_descr -> Bytes.t -> int -> int -> int;
  io_write : Unix.file_descr -> string -> int -> int -> int;
}

let default_io = { io_read = Unix.read; io_write = Unix.write_substring }

type t = {
  fd : Unix.file_descr;
  io : io;
  host : string;
  port : int;
  proto : proto;
  timeout : float; (* default per-recv budget when no deadline is given *)
  (* Staged-but-unsent request lines: [stage] appends here without touching
     the socket, [flush_staged] ships the whole accumulation as one
     write+flush (writev-style coalescing).  [send]/[call] drain it first so
     a synchronous request can never leapfrog staged frames on the wire. *)
  buf : Buffer.t;
  (* Pooled v2 encode scratch: [stage] encodes each request body into this
     sink and frames straight out of it, so small frames (batch-1 ADDB, the
     v1-beating case) cost no per-request Buffer + string round trip. *)
  scratch : Frame.sink;
  (* Reads bypass in_channel: a raw [Unix.read] surfaces EAGAIN from
     SO_RCVTIMEO as a typed timeout instead of a Sys_error string, which is
     what lets [recv_timeout] tell "slow" from "dead".  [pend] holds bytes
     received but not yet consumed as a line (always starting at a line
     boundary); [scanned] is the prefix of [pend] already known to hold no
     newline, so a line arriving across several reads is scanned once. *)
  rbuf : Bytes.t;
  mutable pend : string;
  mutable scanned : int;
  (* the SO_RCVTIMEO value currently armed on [fd]: re-arming costs a
     syscall per read, and in the steady state every recv wants the same
     budget, so [read_chunk] skips the setsockopt when close enough.
     Starts at 0.0 — an impossible budget — so the first read on any fresh
     or reconnected socket always arms explicitly instead of trusting a
     value inherited from a previous connection's life. *)
  mutable armed : float;
}

let address t = Printf.sprintf "%s:%d" t.host t.port

let describe_recv_error = function
  | Timed_out -> "timed out waiting for a reply"
  | Closed msg -> msg

let describe_connect_error = function
  | Dial_timeout budget -> Printf.sprintf "dial timed out after %.2fs" budget
  | Dial_failed msg -> msg

(* A write to a worker that died mid-conversation must surface as EPIPE
   (caught in [send]), not kill the whole coordinator process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> Error (Printf.sprintf "no address for %S" host)
    | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
    | exception Not_found -> Error (Printf.sprintf "cannot resolve %S" host))

let make_conn fd ~io ~host ~port ~proto ~timeout =
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
  let t =
    {
      fd;
      io;
      host;
      port;
      proto;
      timeout;
      buf = Buffer.create 4096;
      scratch = Frame.sink_create 256;
      rbuf = Bytes.create 65536;
      pend = "";
      scanned = 0;
      armed = 0.0;
    }
  in
  (* The v2 preamble rides in the staging buffer: it reaches the wire ahead
     of the first staged frame in the same coalesced write, so protocol
     selection costs zero extra syscalls. *)
  if proto = V2 then Buffer.add_string t.buf Frame.preamble;
  t

let connect ?(io = default_io) ?(proto = V1) ?(dial_timeout = 2.0) ~host ~port
    ~timeout () =
  Lazy.force ignore_sigpipe;
  match resolve host with
  | Error msg -> Error (Dial_failed msg)
  | Ok addr -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let fail e =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Dial_failed (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e)))
    in
    let timed_out () =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Dial_timeout dial_timeout)
    in
    (* Nonblocking connect bounded by poll (select would cap the process at
       FD_SETSIZE descriptors): a plain connect can hang for minutes on an
       unreachable host, far beyond any useful RPC budget.  The dial gets
       its own budget, separate from the per-reply [timeout]: a black-holed
       address burns [dial_timeout] exactly once and then quarantines. *)
    Unix.set_nonblock fd;
    match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
      match Evloop.wait_fd fd ~write:true ~timeout:dial_timeout with
      | `Ready -> (
        match Unix.getsockopt_error fd with
        | None ->
          Unix.clear_nonblock fd;
          Ok (make_conn fd ~io ~host ~port ~proto ~timeout)
        | Some e -> fail e)
      | `Timeout -> timed_out ()
      | exception Unix.Unix_error (e, _, _) -> fail e)
    | exception Unix.Unix_error (e, _, _) -> fail e
    | () ->
      (* loopback can connect synchronously even in nonblocking mode *)
      Unix.clear_nonblock fd;
      Ok (make_conn fd ~io ~host ~port ~proto ~timeout))

let stage t req =
  match t.proto with
  | V1 ->
    Buffer.add_string t.buf (P.render_request req);
    Buffer.add_char t.buf '\n'
  | V2 ->
    P.encode_request_v2_sink t.scratch req;
    Frame.frame_sink_into t.buf t.scratch

let staged_bytes t = Buffer.length t.buf

let write_all t payload =
  let n = String.length payload in
  let off = ref 0 in
  while !off < n do
    match t.io.io_write t.fd payload !off (n - !off) with
    | 0 -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let flush_staged t =
  if Buffer.length t.buf = 0 then Ok ()
  else begin
    let payload = Buffer.contents t.buf in
    (* Cleared unconditionally: on failure the caller quarantines the
       connection and replays from its own pending queue, so resending these
       bytes on a fresh socket would duplicate frames mid-line. *)
    Buffer.clear t.buf;
    match write_all t payload with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  end

let send t req =
  stage t req;
  flush_staged t

(* One chunk off the socket, with SO_RCVTIMEO armed to whatever remains of
   [deadline] (clamped to 1ms: a zero timeout means block forever, and
   bytes already delivered to the kernel buffer are returned regardless, so
   an exhausted budget still collects a reply that has in fact arrived).
   The setsockopt is skipped when the armed value is already within 10% of
   the budget — a stale-armed EAGAIN before the deadline just re-arms and
   retries, so the skip can delay a timeout by at most that 10%. *)
let rec read_chunk t ~deadline =
  let remaining = deadline -. Unix.gettimeofday () in
  let budget = if remaining < 0.001 then 0.001 else remaining in
  if Float.abs (t.armed -. budget) > 0.1 *. budget then begin
    (try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO budget
     with Unix.Unix_error _ -> ());
    t.armed <- budget
  end;
  match t.io.io_read t.fd t.rbuf 0 (Bytes.length t.rbuf) with
  | 0 -> Error (Closed "connection closed by peer")
  | k -> Ok (Bytes.sub_string t.rbuf 0 k)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
    ->
    if Unix.gettimeofday () < deadline -. 0.0005 then read_chunk t ~deadline
    else Error Timed_out
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_chunk t ~deadline
  | exception Unix.Unix_error (e, _, _) -> Error (Closed (Unix.error_message e))

let rec read_line t ~deadline =
  match String.index_from_opt t.pend t.scanned '\n' with
  | Some i ->
    let line = String.sub t.pend 0 i in
    t.pend <- String.sub t.pend (i + 1) (String.length t.pend - i - 1);
    t.scanned <- 0;
    Ok line
  | None -> (
    t.scanned <- String.length t.pend;
    match read_chunk t ~deadline with
    | Ok chunk ->
      t.pend <- (if t.pend = "" then chunk else t.pend ^ chunk);
      read_line t ~deadline
    | Error _ as e -> e)

(* v2 replies are length-prefixed frames; [pend] accumulates across reads
   exactly as for lines, with [scanned] unused (the header says how much is
   missing, no rescan needed).  A CRC mismatch means the stream can no
   longer be trusted to stay framed — same verdict as an unparseable line. *)
let rec read_frame t ~deadline =
  let n = String.length t.pend in
  let complete =
    n >= 8
    &&
    let len = Frame.read_be32 t.pend 0 in
    len <= Frame.max_body && n >= 8 + len
  in
  if complete then begin
    let len = Frame.read_be32 t.pend 0 in
    let crc = Frame.read_be32 t.pend 4 in
    let body = String.sub t.pend 8 len in
    t.pend <- String.sub t.pend (8 + len) (n - 8 - len);
    t.scanned <- 0;
    if Frame.crc32 body <> crc then Error (Closed "CRC mismatch on reply frame")
    else Ok body
  end
  else if n >= 8 && Frame.read_be32 t.pend 0 > Frame.max_body then
    Error (Closed "oversized reply frame")
  else begin
    match read_chunk t ~deadline with
    | Ok chunk ->
      t.pend <- (if t.pend = "" then chunk else t.pend ^ chunk);
      read_frame t ~deadline
    | Error _ as e -> e
  end

let recv_timeout ?deadline t =
  let deadline =
    match deadline with Some d -> d | None -> Unix.gettimeofday () +. t.timeout
  in
  let line =
    match t.proto with
    | V1 -> read_line t ~deadline
    | V2 -> read_frame t ~deadline
  in
  match line with
  | Error _ as e -> e
  | Ok line -> (
    match P.parse_response line with
    | Ok _ as ok -> ok
    (* an unparseable line means the stream is misframed — the connection is
       as good as dead even though the socket is open *)
    | Error msg -> Error (Closed msg))

let recv t = Result.map_error describe_recv_error (recv_timeout t)

let call t req = Result.bind (send t req) (fun () -> recv t)

let close t =
  (* shutdown first so a blocked peer sees EOF; the out channel shares the
     fd, so only the fd itself is closed *)
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
