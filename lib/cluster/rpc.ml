module P = Delphic_server.Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  host : string;
  port : int;
  (* Staged-but-unsent request lines: [stage] appends here without touching
     the socket, [flush_staged] ships the whole accumulation as one
     write+flush (writev-style coalescing).  [send]/[call] drain it first so
     a synchronous request can never leapfrog staged frames on the wire. *)
  buf : Buffer.t;
}

let address t = Printf.sprintf "%s:%d" t.host t.port

(* A write to a worker that died mid-conversation must surface as EPIPE
   (caught in [send]), not kill the whole coordinator process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> Error (Printf.sprintf "no address for %S" host)
    | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
    | exception Not_found -> Error (Printf.sprintf "cannot resolve %S" host))

let connect ~host ~port ~timeout =
  Lazy.force ignore_sigpipe;
  match resolve host with
  | Error _ as e -> e
  | Ok addr -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let fail e =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e))
    in
    (* Nonblocking connect bounded by select: a plain connect can hang for
       minutes on an unreachable host, far beyond any useful RPC budget. *)
    Unix.set_nonblock fd;
    match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ fd ] [] timeout with
      | _, [ _ ], _ -> (
        match Unix.getsockopt_error fd with
        | None ->
          Unix.clear_nonblock fd;
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
          Ok
            {
              fd;
              ic = Unix.in_channel_of_descr fd;
              oc = Unix.out_channel_of_descr fd;
              host;
              port;
              buf = Buffer.create 4096;
            }
        | Some e -> fail e)
      | _ -> fail Unix.ETIMEDOUT
      | exception Unix.Unix_error (e, _, _) -> fail e)
    | exception Unix.Unix_error (e, _, _) -> fail e
    | () ->
      (* loopback can connect synchronously even in nonblocking mode *)
      Unix.clear_nonblock fd;
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          host;
          port;
          buf = Buffer.create 4096;
        })

let stage t req =
  Buffer.add_string t.buf (P.render_request req);
  Buffer.add_char t.buf '\n'

let staged_bytes t = Buffer.length t.buf

let flush_staged t =
  if Buffer.length t.buf = 0 then Ok ()
  else begin
    let payload = Buffer.contents t.buf in
    (* Cleared unconditionally: on failure the caller quarantines the
       connection and replays from its own pending queue, so resending these
       bytes on a fresh socket would duplicate frames mid-line. *)
    Buffer.clear t.buf;
    match
      output_string t.oc payload;
      flush t.oc
    with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  end

let send t req =
  stage t req;
  flush_staged t

let recv t =
  match input_line t.ic with
  | line -> Result.map_error (fun msg -> msg) (P.parse_response line)
  | exception End_of_file -> Error "connection closed by peer"
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let call t req = Result.bind (send t req) (fun () -> recv t)

let close t =
  (* close_in would close the shared fd twice via the out channel *)
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
