(** Scatter/gather coordinator for sharded union estimation.

    A coordinator owns a pool of workers — ordinary
    {!Delphic_server.Server} instances, unchanged — and presents the same
    line protocol as a single server:

    - [OPEN] broadcasts, so every worker holds a same-parameter session;
    - [ADD]/[ADDB] scatter: each set is routed to one worker ({!sharding})
      and staged there; staged payloads are framed into [ADDB] batches
      (consecutive same-session runs, up to [batch] payloads per frame) and
      shipped as one coalesced write when the staging queue hits the batch
      high-water mark, with a bounded window of unacknowledged payloads;
    - [EST]/[STATS]/[SNAPSHOT] gather: every worker ships its sketch
      ([SNAPSHOT <sid>] wire form) and the coordinator folds them with
      {!Delphic_server.Families.merge}.

    Failure handling: every RPC is bounded by a timeout ({!Rpc}); a worker
    that fails is quarantined with exponential backoff and its staged
    payloads plus every unacknowledged frame are replayed {e payload by
    payload} on the survivors — safe because union estimation is
    duplicate-insensitive, so at-least-once delivery never biases the
    answer.  A gather that had to fall back to a dead worker's
    last fetched sketch (or found nothing at all) flags the estimate
    [degraded] in the reply.  A worker that comes back is interrogated with
    [HELLO] first: if it answers the same generation it had before the
    disconnect, the process (and its state) survived a mere connection blip
    and it rejoins as-is; a new generation — a restarted process, possibly
    recovered from its write-ahead journal minus the unsynced tail — gets
    re-opened and refilled from its last good sketch before rejoining, and
    an acknowledgement-time refusal (e.g. [UNKNOWN-SESSION] from a worker
    that lost state mid-conversation) re-routes the refused payloads
    instead of counting them delivered.

    With [By_hash] sharding, duplicate set lines always land on the same
    worker, so cross-shard overlap is limited to geometrically overlapping
    {e distinct} sets — see DESIGN.md on merge semantics for why that keeps
    the sharded estimate within the single-stream envelope on realistic
    workloads. *)

type t

type sharding =
  | Round_robin  (** spread by arrival order *)
  | By_hash  (** route by hash of the set line; duplicates collapse *)

val create :
  ?sharding:sharding ->
  ?replicas:int ->
  ?timeout:float ->
  ?dial_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?window:int ->
  ?batch:int ->
  ?gather_domains:int ->
  ?io:Rpc.io ->
  ?proto:Rpc.proto ->
  ?clock:(unit -> float) ->
  ?cutoff_bucket:float ->
  ?epoch:int ->
  ?read_only:bool ->
  workers:(string * int) list ->
  seed:int ->
  unit ->
  t
(** [workers] are [host, port] pairs; connections are opened lazily.
    [replicas] (default 1) routes every payload to that many {e distinct}
    live workers — the shard's home ring position and its successors, dead
    positions skipped — so any single worker can be lost with no estimate
    degradation: a gather is fresh for a position as long as {e any} of its
    R-successor window answered (clamped to the pool size; replication is
    semantically free because union sketches are duplicate-insensitive).
    [dial_timeout] (default 2s) bounds each TCP connect separately from the
    per-reply [timeout]; a dial that times out (black-holed host) skips the
    in-round retries and quarantines at once.
    [epoch] (default 0 = fencing off) is the fencing epoch announced on
    every worker connection with [COORD] before any other traffic; workers
    refuse mutations from connections stamped with a superseded epoch, which
    is how a deposed primary's late writes die.  [read_only] (default
    false) starts the coordinator as a warm standby: every query is served,
    every mutation is refused with [ERR READONLY] — {!set_read_only} flips
    it at takeover.
    [io] (default {!Rpc.default_io}) supplies the socket operations for
    every worker connection — the fault-injection hook: the chaos tests
    pass [Delphic_harness.Chaos] wrappers here and the coordinator's
    retry/quarantine/rejoin machinery runs against a deliberately lossy
    transport.  [proto] (default {!Rpc.V1}) selects the wire protocol for
    every worker connection; [Rpc.V2] ships ADDB batches as binary frames
    (no %-armoring, splice-journalled by the worker).
    [timeout] (default 2s) bounds every connect/send/recv — a gather gives
    the {e whole} collect phase one [timeout] as a shared absolute deadline,
    so one slow worker costs at most one timeout however many are slow;
    [retries] (default 3) bounds reconnect attempts, with delays starting at
    [backoff] (default 50ms) and doubling; [window] (default 256) is the
    unacknowledged-payload depth per worker; [batch] (default 64) is both
    the per-worker staging high-water mark and the maximum payloads per
    [ADDB] frame — [batch = 1] degenerates to the unbatched one-ADD-per-line
    pipeline; [gather_domains] (default
    {!Delphic_harness.Parallel.default_domains}) bounds the domains spent on
    the gather's decode/merge tree — [1] keeps the fold on the calling
    thread (the merge-tree shape, hence the folded sketch, is the same
    either way).  [clock] (default [Unix.gettimeofday]) supplies the query
    instant for un-pinned [WIN] and [EXPR w=] — injectable for deterministic
    tests; [cutoff_bucket] (default 1s) quantizes clock-derived window
    cutoffs down to that grain, so repeated idle-cluster windowed queries
    inside one bucket ship byte-identical Fetch cutoffs and hit the workers'
    wire caches and the fold memo (a [WIN ... at=] pinned instant is taken
    exactly).  Raises [Invalid_argument] on an empty pool or nonsensical
    knobs. *)

val dispatch : t -> Delphic_server.Protocol.request -> Delphic_server.Protocol.response
(** The full request → response step, same contract as
    {!Delphic_server.Registry.dispatch} — plug into {!Frontend} to serve
    the cluster over TCP. *)

val open_session :
  t ->
  name:string ->
  family:Delphic_server.Protocol.family ->
  epsilon:float ->
  delta:float ->
  log2_universe:float ->
  (unit, Delphic_server.Protocol.error) result
(** Fails only if {e no} worker is reachable; workers joining later are
    brought up to date by the resync-on-reconnect path. *)

val add :
  ?ts:float ->
  t -> name:string -> payload:string -> (unit, Delphic_server.Protocol.error) result
(** Fire-and-forget into the pipeline: the payload is staged on its shard
    and framed into an [ADDB] at the next flush point.  [ts] is the ingest
    timestamp forwarded to the worker ([t=] on the wire); [None] lets the
    worker stamp its own receive time.  Parse errors surface asynchronously
    in {!stats} ([parse_rejects]), not here. *)

val add_batch :
  ?ts:float ->
  t ->
  name:string ->
  payloads:string list ->
  (int * (int * string) list, Delphic_server.Protocol.error) result
(** A whole client [ADDB] frame under one lock acquisition.  Each payload
    still routes through {!sharding} independently, so a frame may fan out
    and re-batch per worker (only same-timestamp runs share a frame).
    Returns [(accepted, errors)] where [errors] pairs a payload's 0-based
    frame index with the routing failure; parse errors, as with {!add},
    surface later in [parse_rejects]. *)

val estimate :
  t -> name:string -> (float * bool * int list, Delphic_server.Protocol.error) result
(** The folded estimate, whether it is degraded, and the stale shard list:
    the ring positions for which {e no} replica answered fresh this gather
    (so the value there rests on stale last-good fallbacks or nothing).
    [degraded] is exactly [stale_shards <> []] — with replication a dead
    worker whose positions are covered by fresh replicas does not degrade
    the answer. *)

val win :
  t ->
  name:string ->
  seconds:float ->
  at:float option ->
  (float * bool * int list, Delphic_server.Protocol.error) result
(** Cluster-wide windowed estimate: the absolute cutoff is computed once
    ([at], or the quantized coordinator clock, minus [seconds]) and shipped
    in every worker's Fetch, so all replicas expire against the same
    instant.  A degraded gather's stale full fallback is re-windowed
    coordinator-side against the same cutoff, so [DEGRADED] answers still
    honor the window.  [seconds = infinity] degenerates to {!estimate}'s
    gather (and shares its fold memo). *)

val stats : t -> name:string -> (Delphic_server.Protocol.stats, Delphic_server.Protocol.error) result

val expr_query :
  ?w:float ->
  t ->
  expr:Delphic_server.Protocol.Expr_ast.t ->
  m:int option ->
  (Delphic_server.Protocol.Expr_ast.outcome * bool, Delphic_server.Protocol.error) result
(** Evaluate a set expression cluster-wide.  Each leaf session is gathered
    exactly as {!estimate} gathers it — same degraded/last-good fallback,
    same fold memo — and the cross-session union fold plus the
    sample-and-probe evaluation ({!Delphic_server.Families.expr_estimate})
    run coordinator-side, so workers need no new verb.  [w] windows the
    query: one cutoff is computed up front and every folded leaf is
    restricted against it before evaluation.  The [bool] flags a degraded
    answer (any leaf's gather was).  [m] as in
    {!Delphic_server.Registry.expr_query}. *)

val fetch : ?cutoff:float -> t -> name:string -> (string, Delphic_server.Protocol.error) result
(** The folded sketch as one wire token — coordinators compose: a parent
    coordinator can treat this one as a worker ([cutoff] is the windowed
    Fetch, forwarded to this pool's own workers). *)

val snapshot_to : t -> name:string -> path:string -> (unit, Delphic_server.Protocol.error) result

val merge_in : t -> name:string -> encoded:string -> (unit, Delphic_server.Protocol.error) result
(** Route an external sketch to one worker; the next gather folds it in. *)

val close : t -> name:string -> (unit, Delphic_server.Protocol.error) result

val live_workers : t -> int
(** Workers with an open connection right now (0 before any operation —
    connections are lazy). *)

val shard_freshness : t -> int list
(** Per-ring-position fresh-replica counts from the most recent gather (any
    session); all zeros before the first gather.  Feeds the [shard_fresh=]
    field of the frontend's [STATS] reply. *)

val epoch : t -> int
(** The fencing epoch this coordinator announces (0 = fencing off). *)

val is_fenced : t -> bool
(** True once any worker has refused this coordinator's epoch — a newer
    primary owns the pool, and every mutation fails with [ERR FENCED]. *)

val is_read_only : t -> bool

val set_read_only : t -> bool -> unit
(** Flip standby mode.  [set_read_only t false] is the promotion switch —
    normally driven by {!Failover}, after {!sync_sessions} and
    {!announce_epoch}. *)

val max_known_epoch : t -> int
(** The highest epoch this coordinator has announced, been fenced by, or
    seen any worker carry in a [HELLO] — probing every quarantine-free
    worker first, so a takeover learns the deposed primary's epoch from the
    workers (the durable truth).  A takeover must announce strictly more. *)

val announce_epoch : t -> epoch:int -> int
(** Adopt [epoch] (clearing any fence it supersedes) and stamp every live
    worker connection with a synchronous [COORD]; fresh connections are
    stamped on connect.  Returns the number of workers that accepted.
    Raises [Invalid_argument] if [epoch] is lower than the current one. *)

val sync_sessions : t -> int
(** Rebuild the session table from the workers' [SESSIONS] listings — the
    standby's takeover path (every OPEN was broadcast, so the union over
    reachable workers recovers the table; locally known sessions are kept).
    Returns the number of sessions learned. *)

val session_descs : t -> Delphic_server.Protocol.session_desc list
(** The sessions this coordinator routes, sorted by name — what [SESSIONS]
    serves. *)

val flush : t -> unit
(** Ship every staged payload and drain every pipelined ingest ack.  Called
    internally before each gather; exposed for tests and orderly
    shutdown. *)

val shutdown : t -> unit
(** Flush, then close every worker connection.  The workers keep running —
    they own the sessions. *)
