module Bigint = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Comb = Delphic_util.Comb
module Rng = Delphic_util.Rng

type t = {
  center : Bitvec.t;
  radius : int;
  (* cumulative.(w) = Σ_{i<=w} C(n,i); the last entry is the cardinality. *)
  cumulative : Bigint.t array;
}

type elt = Bitvec.t

let create ~center ~radius =
  let n = Bitvec.width center in
  if radius < 0 || radius > n then
    invalid_arg "Hamming_ball.create: need 0 <= radius <= width";
  let cumulative = Array.make (radius + 1) Bigint.zero in
  let acc = ref Bigint.zero in
  for w = 0 to radius do
    acc := Bigint.add !acc (Comb.choose n w);
    cumulative.(w) <- !acc
  done;
  { center = Bitvec.copy center; radius; cumulative }

let center t = Bitvec.copy t.center
let radius t = t.radius
let nbits t = Bitvec.width t.center

let cardinality t = t.cumulative.(t.radius)

let mem t x =
  Bitvec.width x = nbits t && Bitvec.hamming_distance t.center x <= t.radius

let sample t rng =
  (* Inverse-CDF over the distance, then a uniform w-subset of flips. *)
  let u = Bigint.random_below rng (cardinality t) in
  let w = ref 0 in
  while Bigint.compare u t.cumulative.(!w) >= 0 do
    incr w
  done;
  let x = Bitvec.copy t.center in
  let flips = Comb.floyd_sample rng ~n:(nbits t) ~k:!w in
  Array.iter (fun i -> Bitvec.set x i (not (Bitvec.get x i))) flips;
  x

(* Weight shells 0..radius, each shell a lexicographic walk over the
   w-subsets of flip positions. *)
let iter_elements =
  Some
    (fun t f ->
      let n = nbits t in
      let shell w =
        if w = 0 then f (Bitvec.copy t.center)
        else begin
          let pos = Array.init w Fun.id in
          let rec bump i =
            i >= 0
            &&
            if pos.(i) < n - w + i then begin
              pos.(i) <- pos.(i) + 1;
              for j = i + 1 to w - 1 do
                pos.(j) <- pos.(j - 1) + 1
              done;
              true
            end
            else bump (i - 1)
          in
          let continue = ref true in
          while !continue do
            let x = Bitvec.copy t.center in
            Array.iter (fun i -> Bitvec.set x i (not (Bitvec.get x i))) pos;
            f x;
            continue := bump (w - 1)
          done
        end
      in
      for w = 0 to t.radius do
        shell w
      done)

let equal_elt = Bitvec.equal
let hash_elt = Bitvec.hash
let pp_elt = Bitvec.pp
