module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng

type t = { lo : int array; hi : int array }
type elt = int array

let create ~lo ~hi =
  let d = Array.length lo in
  if d = 0 || d <> Array.length hi then
    invalid_arg "Rectangle.create: corners must be equal-length, non-empty";
  for i = 0 to d - 1 do
    if lo.(i) < 0 || lo.(i) > hi.(i) then
      invalid_arg "Rectangle.create: need 0 <= lo.(i) <= hi.(i)"
  done;
  { lo = Array.copy lo; hi = Array.copy hi }

let dim r = Array.length r.lo
let lo r = Array.copy r.lo
let hi r = Array.copy r.hi
let side r i = r.hi.(i) - r.lo.(i) + 1

let volume r =
  let acc = ref Bigint.one in
  for i = 0 to dim r - 1 do
    acc := Bigint.mul_int !acc (side r i)
  done;
  !acc

let cardinality = volume

let mem r pt =
  Array.length pt = dim r
  &&
  let rec go i =
    i >= dim r || (r.lo.(i) <= pt.(i) && pt.(i) <= r.hi.(i) && go (i + 1))
  in
  go 0

let sample r rng =
  Array.init (dim r) (fun i -> Rng.int_in_range rng ~lo:r.lo.(i) ~hi:r.hi.(i))

(* Walk the integer grid with a mixed-radix counter, last dimension
   fastest.  Each visit hands out a fresh array: callers keep elements
   (hash-table keys), so sharing the counter would alias them all. *)
let iter_elements =
  Some
    (fun r f ->
      let d = dim r in
      let pt = Array.copy r.lo in
      let rec bump i =
        i >= 0
        &&
        if pt.(i) < r.hi.(i) then begin
          pt.(i) <- pt.(i) + 1;
          true
        end
        else begin
          pt.(i) <- r.lo.(i);
          bump (i - 1)
        end
      in
      let continue = ref true in
      while !continue do
        f (Array.copy pt);
        continue := bump (d - 1)
      done)

let contains_box outer inner =
  dim outer = dim inner
  &&
  let rec go i =
    i >= dim outer
    || (outer.lo.(i) <= inner.lo.(i) && inner.hi.(i) <= outer.hi.(i) && go (i + 1))
  in
  go 0

let intersect a b =
  if dim a <> dim b then invalid_arg "Rectangle.intersect: dimension mismatch";
  let d = dim a in
  let lo = Array.init d (fun i -> Stdlib.max a.lo.(i) b.lo.(i)) in
  let hi = Array.init d (fun i -> Stdlib.min a.hi.(i) b.hi.(i)) in
  let rec nonempty i = i >= d || (lo.(i) <= hi.(i) && nonempty (i + 1)) in
  if nonempty 0 then Some { lo; hi } else None

let equal_elt (a : int array) b = a = b
let hash_elt (pt : int array) = Hashtbl.hash pt

let pp_elt fmt pt =
  Format.fprintf fmt "(%s)" (String.concat ", " (Array.to_list (Array.map string_of_int pt)))

let pp fmt r =
  Format.pp_print_string fmt
    (String.concat " x "
       (List.init (dim r) (fun i -> Printf.sprintf "[%d,%d]" r.lo.(i) r.hi.(i))))
