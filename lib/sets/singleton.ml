module Bigint = Delphic_util.Bigint

type t = int
type elt = int

let create x =
  if x < 0 then invalid_arg "Singleton.create: negative element";
  x

let value x = x
let cardinality _ = Bigint.one
let mem s x = s = x
let sample s _rng = s
let iter_elements = Some (fun s f -> f s)
let equal_elt = Int.equal
let hash_elt = Hashtbl.hash
let pp_elt = Format.pp_print_int
