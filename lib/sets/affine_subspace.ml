module Bigint = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Gf2 = Delphic_util.Gf2
module Rng = Delphic_util.Rng

type t = { rows : Gf2.row array; solved : Gf2.solution }
type elt = Bitvec.t

let create_opt ~nvars rows =
  match Gf2.solve ~nvars rows with
  | None -> None
  | Some solved -> Some { rows = Array.of_list rows; solved }

let create ~nvars rows =
  match create_opt ~nvars rows with
  | Some t -> t
  | None -> invalid_arg "Affine_subspace.create: inconsistent system (empty set)"

let nvars t = t.solved.Gf2.nvars
let rank t = t.solved.Gf2.rank
let dimension t = nvars t - rank t

let cardinality t = Bigint.pow2 (dimension t)

let mem t x =
  Bitvec.width x = nvars t && Array.for_all (fun r -> Gf2.satisfies r x) t.rows

let sample t rng =
  let x = Bitvec.copy t.solved.Gf2.particular in
  Array.iter
    (fun basis_vector -> if Rng.bool rng then Bitvec.xor_inplace x basis_vector)
    t.solved.Gf2.null_basis;
  x

(* particular + every subset of the null basis, subsets walked with a
   binary carry so no counter can overflow. *)
let iter_elements =
  Some
    (fun t f ->
      let basis = t.solved.Gf2.null_basis in
      let k = Array.length basis in
      let bits = Array.make k false in
      let rec bump i =
        i >= 0
        &&
        if not bits.(i) then begin
          bits.(i) <- true;
          true
        end
        else begin
          bits.(i) <- false;
          bump (i - 1)
        end
      in
      let continue = ref true in
      while !continue do
        let x = Bitvec.copy t.solved.Gf2.particular in
        Array.iteri (fun i b -> if bits.(i) then Bitvec.xor_inplace x b) basis;
        f x;
        continue := bump (k - 1)
      done)

let equal_elt = Bitvec.equal
let hash_elt = Bitvec.hash
let pp_elt = Bitvec.pp

let solve_with t extra = Gf2.solve ~nvars:(nvars t) (Array.to_list t.rows @ extra)

let count_constrained t extra =
  match solve_with t extra with
  | None -> Bigint.zero
  | Some s -> Gf2.solution_count s

let enumerate_constrained t extra ~limit =
  match solve_with t extra with
  | None -> Some []
  | Some s -> Gf2.enumerate s ~limit
