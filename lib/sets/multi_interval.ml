module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng

(* Canonical form: sorted, pairwise disjoint, non-adjacent inclusive
   intervals, plus a cumulative-length array for O(log k) sampling and
   membership. *)
type t = {
  los : int array;
  his : int array;
  cumulative : int array; (* cumulative.(i) = total length of intervals 0..i *)
}

type elt = int

let create spans =
  if spans = [] then invalid_arg "Multi_interval.create: empty";
  List.iter
    (fun (lo, hi) ->
      if lo < 0 || lo > hi then invalid_arg "Multi_interval.create: need 0 <= lo <= hi")
    spans;
  let sorted = List.sort compare spans in
  (* Coalesce overlapping or adjacent intervals. *)
  let merged =
    List.fold_left
      (fun acc (lo, hi) ->
        match acc with
        | (clo, chi) :: rest when lo <= chi + 1 -> (clo, Stdlib.max chi hi) :: rest
        | _ -> (lo, hi) :: acc)
      [] sorted
    |> List.rev
  in
  let k = List.length merged in
  let los = Array.make k 0 and his = Array.make k 0 and cumulative = Array.make k 0 in
  List.iteri
    (fun i (lo, hi) ->
      los.(i) <- lo;
      his.(i) <- hi;
      cumulative.(i) <- (hi - lo + 1) + if i = 0 then 0 else cumulative.(i - 1))
    merged;
  { los; his; cumulative }

let pieces t = Array.length t.los
let length t = t.cumulative.(pieces t - 1)
let intervals t = List.init (pieces t) (fun i -> (t.los.(i), t.his.(i)))
let cardinality t = Bigint.of_int (length t)

let mem t x =
  (* Rightmost interval with lo <= x, then check its hi. *)
  let lo = ref 0 and hi = ref (pieces t - 1) in
  if x < t.los.(0) then false
  else begin
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.los.(mid) <= x then lo := mid else hi := mid - 1
    done;
    x <= t.his.(!lo)
  end

let sample t rng =
  (* Uniform position in [0, length), mapped through the cumulative sums. *)
  let pos = Rng.int rng (length t) in
  let lo = ref 0 and hi = ref (pieces t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) <= pos then lo := mid + 1 else hi := mid
  done;
  let before = if !lo = 0 then 0 else t.cumulative.(!lo - 1) in
  t.los.(!lo) + (pos - before)

let iter_elements =
  Some
    (fun t f ->
      for i = 0 to pieces t - 1 do
        for x = t.los.(i) to t.his.(i) do
          f x
        done
      done)

let equal_elt = Int.equal
let hash_elt = Hashtbl.hash
let pp_elt = Format.pp_print_int

let pp fmt t =
  Format.pp_print_string fmt
    (String.concat " u "
       (List.map (fun (lo, hi) -> Printf.sprintf "[%d,%d]" lo hi) (intervals t)))
