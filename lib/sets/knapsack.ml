module Bigint = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Rng = Delphic_util.Rng

(* dp.(i).(w) counts assignments of items i..n-1 with total weight <= w;
   dp.(n).(w) = 1, dp.(i).(w) = dp.(i+1).(w) + dp.(i+1).(w - a_i). *)
type t = { weights : int array; bound : int; dp : Bigint.t array array }

let build_dp ~round weights bound =
  let n = Array.length weights in
  let dp = Array.make_matrix (n + 1) (bound + 1) Bigint.one in
  for i = n - 1 downto 0 do
    for w = 0 to bound do
      let skip = dp.(i + 1).(w) in
      let take = if weights.(i) <= w then dp.(i + 1).(w - weights.(i)) else Bigint.zero in
      dp.(i).(w) <- round (Bigint.add skip take)
    done
  done;
  dp

let create ~weights ~bound =
  if bound < 0 then invalid_arg "Knapsack.create: negative bound";
  Array.iter (fun a -> if a <= 0 then invalid_arg "Knapsack.create: weights must be positive") weights;
  { weights = Array.copy weights; bound; dp = build_dp ~round:Fun.id weights bound }

let nvars t = Array.length t.weights
let weights t = Array.copy t.weights
let bound t = t.bound

let weight_of t x =
  let acc = ref 0 in
  for i = 0 to nvars t - 1 do
    if Bitvec.get x i then acc := !acc + t.weights.(i)
  done;
  !acc

type elt = Bitvec.t

let cardinality t = t.dp.(0).(t.bound)

let mem t x = Bitvec.width x = nvars t && weight_of t x <= t.bound

(* Uniform sampling by walking the DP: at item i with remaining budget w,
   include the item with probability dp(i+1)(w - a_i) / dp(i)(w). *)
let sample_dp dp weights bound rng =
  let n = Array.length weights in
  let x = Bitvec.create ~width:n in
  let w = ref bound in
  for i = 0 to n - 1 do
    let total = dp.(i).(!w) in
    let skip = dp.(i + 1).(!w) in
    let r = Bigint.random_below rng total in
    if Bigint.compare r skip >= 0 then begin
      Bitvec.set x i true;
      w := !w - weights.(i)
    end
  done;
  x

let sample t rng = sample_dp t.dp t.weights t.bound rng

(* Include/exclude DFS.  Weights are positive, so every skip branch stays
   feasible and the leaves are exactly the |S| assignments — no pruning
   table needed beyond the running budget. *)
let iter_elements =
  Some
    (fun t f ->
      let n = nvars t in
      let x = Bitvec.create ~width:n in
      let rec go i w =
        if i >= n then f (Bitvec.copy x)
        else begin
          go (i + 1) w;
          if t.weights.(i) <= w then begin
            Bitvec.set x i true;
            go (i + 1) (w - t.weights.(i));
            Bitvec.set x i false
          end
        end
      in
      go 0 t.bound)

let equal_elt = Bitvec.equal
let hash_elt = Bitvec.hash
let pp_elt = Bitvec.pp

module Approx = struct
  type exact = t

  type t = {
    weights : int array;
    bound : int;
    dp : Bigint.t array array;
    sigbits : int;
    n : int;
  }

  let round_to sigbits v =
    let bits = Bigint.bit_length v in
    if bits <= sigbits then v
    else begin
      let drop = bits - sigbits in
      Bigint.shift_left (Bigint.shift_right v drop) drop
    end

  let create ~sigbits (exact : exact) =
    if sigbits < 2 then invalid_arg "Knapsack.Approx.create: sigbits must be >= 2";
    {
      weights = Array.copy exact.weights;
      bound = exact.bound;
      dp = build_dp ~round:(round_to sigbits) exact.weights exact.bound;
      sigbits;
      n = Array.length exact.weights;
    }

  (* Each rounding multiplies a count by a factor in ((1 - 2^(1-sigbits)), 1];
     after n cascaded levels the rounded count is within
     [(1 - 2^(1-sigbits))^n, 1] of exact, one-sided. *)
  let shrink_per_level t = 1.0 -. (2.0 ** float_of_int (1 - t.sigbits))

  let alpha t = (shrink_per_level t ** float_of_int (-t.n)) -. 1.0

  (* A walk step uses a ratio of two rounded counts, each within the per-level
     band, so the selection probability of any solution is within
     [(1-r)^n, (1-r)^(-n)] of uniform. *)
  let eta t = alpha t

  type elt = Bitvec.t

  let approx_cardinality t _rng = t.dp.(0).(t.bound)

  let mem t x =
    Bitvec.width x = t.n
    &&
    let acc = ref 0 in
    for i = 0 to t.n - 1 do
      if Bitvec.get x i then acc := !acc + t.weights.(i)
    done;
    !acc <= t.bound

  (* The rounded DP can assign an inner node a count smaller than the sum of
     its children, so a naive walk could pick a branch with rounded count 0
     that actually has solutions — harmless for the η bound, but a branch
     with count 0 on *both* sides would wedge the walk.  Counts are rounded
     down from values >= 1, and rounding keeps the top bit, so any node with
     solutions keeps a positive count; the walk below renormalises by the
     children's sum instead of the parent's (possibly inconsistent) value. *)
  let approx_sample t rng =
    let x = Bitvec.create ~width:t.n in
    let w = ref t.bound in
    for i = 0 to t.n - 1 do
      let skip = t.dp.(i + 1).(!w) in
      let take =
        if t.weights.(i) <= !w then t.dp.(i + 1).(!w - t.weights.(i)) else Bigint.zero
      in
      let total = Bigint.add skip take in
      let r = Bigint.random_below rng total in
      if Bigint.compare r skip >= 0 then begin
        Bitvec.set x i true;
        w := !w - t.weights.(i)
      end
    done;
    x

  let equal_elt = Bitvec.equal
  let hash_elt = Bitvec.hash
  let pp_elt = Bitvec.pp
end
