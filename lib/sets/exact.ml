module Bigint = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Comb = Delphic_util.Comb

let range_union ranges =
  let sorted =
    List.sort
      (fun a b -> Stdlib.compare (Range1d.lo a, Range1d.hi a) (Range1d.lo b, Range1d.hi b))
      ranges
  in
  (* Sweep, merging overlapping or adjacent intervals. *)
  let total, last =
    List.fold_left
      (fun (total, cur) r ->
        let lo = Range1d.lo r and hi = Range1d.hi r in
        match cur with
        | None -> (total, Some (lo, hi))
        | Some (clo, chi) ->
          if lo <= chi + 1 then (total, Some (clo, Stdlib.max chi hi))
          else (total + (chi - clo + 1), Some (lo, hi)))
      (0, None) sorted
  in
  match last with
  | None -> total
  | Some (clo, chi) -> total + (chi - clo + 1)

let rectangle_union_grid boxes =
  match boxes with
  | [] -> Bigint.zero
  | first :: _ ->
    let d = Rectangle.dim first in
    List.iter
      (fun b -> if Rectangle.dim b <> d then invalid_arg "Exact.rectangle_union: mixed dimensions")
      boxes;
    (* Coordinate compression: cuts along each axis at every box boundary;
       within a grid cell, coverage is constant, so testing the cell's lower
       corner suffices. *)
    let cuts =
      Array.init d (fun i ->
          let coords =
            List.concat_map
              (fun b -> [ (Rectangle.lo b).(i); (Rectangle.hi b).(i) + 1 ])
              boxes
          in
          let sorted = List.sort_uniq Stdlib.compare coords in
          Array.of_list sorted)
    in
    let corner = Array.make d 0 in
    let total = ref Bigint.zero in
    let rec cells axis width =
      if axis = d then begin
        if List.exists (fun b -> Rectangle.mem b corner) boxes then
          total := Bigint.add !total width
      end
      else
        for j = 0 to Array.length cuts.(axis) - 2 do
          corner.(axis) <- cuts.(axis).(j);
          let span = cuts.(axis).(j + 1) - cuts.(axis).(j) in
          cells (axis + 1) (Bigint.mul_int width span)
        done
    in
    cells 0 Bigint.one;
    !total

let dnf_count ~nvars terms =
  let m = Bdd.create_manager ~nvars in
  Bdd.count m (Bdd.of_dnf m terms)

let dnf_count_enum ~nvars terms =
  if nvars > 24 then invalid_arg "Exact.dnf_count_enum: nvars too large";
  (* Compile each term to (mask, value) over an int-encoded assignment. *)
  let compiled =
    List.map
      (fun t ->
        List.fold_left
          (fun (mask, value) (l : Dnf.literal) ->
            (mask lor (1 lsl l.var), if l.positive then value lor (1 lsl l.var) else value))
          (0, 0) (Dnf.literals t))
      terms
  in
  let count = ref 0 in
  for x = 0 to (1 lsl nvars) - 1 do
    if List.exists (fun (mask, value) -> x land mask = value) compiled then incr count
  done;
  Bigint.of_int !count

let coverage_union ~strength vectors =
  match vectors with
  | [] -> Bigint.zero
  | first :: _ ->
    let n = Bitvec.width first in
    List.iter
      (fun v -> if Bitvec.width v <> n then invalid_arg "Exact.coverage_union: mixed widths")
      vectors;
    let total = ref 0 in
    Comb.iter_subsets ~n ~k:strength (fun positions ->
        let seen = Hashtbl.create 16 in
        List.iter
          (fun v ->
            let pattern = Bitvec.extract v positions in
            Hashtbl.replace seen (Bitvec.to_string pattern) ())
          vectors;
        total := !total + Hashtbl.length seen);
    Bigint.of_int !total

(* Union-membership probes: the Delphic membership oracle lifted from one
   set to a whole stream, uniformly across families.  Ground truth for the
   set-expression evaluator's per-leaf probes. *)

let union_mem mem sets x = List.exists (fun s -> mem s x) sets
let rectangle_union_mem boxes p = union_mem Rectangle.mem boxes p
let dnf_union_mem terms v = union_mem Dnf.mem terms v

let coverage_union_mem ~strength vectors (e : Coverage.elt) =
  union_mem Coverage.mem
    (List.map (fun v -> Coverage.create ~vector:v ~strength) vectors)
    e

let distinct values =
  let seen = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace seen v ()) values;
  Hashtbl.length seen

let knapsack_union instances =
  match instances with
  | [] -> Bigint.zero
  | first :: _ ->
    let n = Knapsack.nvars first in
    if n > 24 then invalid_arg "Exact.knapsack_union: nvars too large";
    List.iter
      (fun k -> if Knapsack.nvars k <> n then invalid_arg "Exact.knapsack_union: mixed nvars")
      instances;
    let count = ref 0 in
    let x = Bitvec.create ~width:n in
    for v = 0 to (1 lsl n) - 1 do
      for i = 0 to n - 1 do
        Bitvec.set x i ((v lsr i) land 1 = 1)
      done;
      if List.exists (fun k -> Knapsack.mem k x) instances then incr count
    done;
    Bigint.of_int !count

let rectangle_union_sweep2d boxes =
  match boxes with
  | [] -> Bigint.zero
  | _ ->
    List.iter
      (fun b ->
        if Rectangle.dim b <> 2 then
          invalid_arg "Exact.rectangle_union_sweep2d: boxes must be 2-dimensional")
      boxes;
    (* Half-open view: box [xl,xh] x [yl,yh] covers x in [xl, xh+1),
       y in [yl, yh+1).  Sweep x; a segment tree over the compressed y cuts
       tracks the covered y-length between consecutive events. *)
    let y_cuts =
      List.concat_map
        (fun b -> [ (Rectangle.lo b).(1); (Rectangle.hi b).(1) + 1 ])
        boxes
      |> List.sort_uniq Stdlib.compare |> Array.of_list
    in
    let tree = Interval_cover.create y_cuts in
    let events =
      List.concat_map
        (fun b ->
          let xl = (Rectangle.lo b).(0) and xh = (Rectangle.hi b).(0) + 1 in
          let yl = (Rectangle.lo b).(1) and yh = (Rectangle.hi b).(1) + 1 in
          [ (xl, 1, yl, yh); (xh, -1, yl, yh) ])
        boxes
      |> List.sort Stdlib.compare
    in
    let area = ref Bigint.zero in
    let last_x = ref 0 in
    let started = ref false in
    List.iter
      (fun (x, delta, yl, yh) ->
        if !started && x > !last_x then
          area :=
            Bigint.add !area
              (Bigint.mul_int (Bigint.of_int (Interval_cover.covered tree)) (x - !last_x));
        started := true;
        last_x := x;
        if delta = 1 then Interval_cover.add tree ~lo:yl ~hi:yh
        else Interval_cover.remove tree ~lo:yl ~hi:yh)
      events;
    !area

let rectangle_union_sweep3d boxes =
  match boxes with
  | [] -> Bigint.zero
  | _ ->
    List.iter
      (fun b ->
        if Rectangle.dim b <> 3 then
          invalid_arg "Exact.rectangle_union_sweep3d: boxes must be 3-dimensional")
      boxes;
    (* Sweep z; within a slab the active set is constant, so its volume is
       (2-d cross-section area) x thickness. *)
    let z_cuts =
      List.concat_map
        (fun b -> [ (Rectangle.lo b).(2); (Rectangle.hi b).(2) + 1 ])
        boxes
      |> List.sort_uniq Stdlib.compare |> Array.of_list
    in
    let projections =
      List.map
        (fun b ->
          let lo = Rectangle.lo b and hi = Rectangle.hi b in
          ( lo.(2),
            hi.(2),
            Rectangle.create ~lo:[| lo.(0); lo.(1) |] ~hi:[| hi.(0); hi.(1) |] ))
        boxes
    in
    let volume = ref Bigint.zero in
    for k = 0 to Array.length z_cuts - 2 do
      let z = z_cuts.(k) in
      let thickness = z_cuts.(k + 1) - z in
      let active =
        List.filter_map
          (fun (zlo, zhi, proj) -> if zlo <= z && z <= zhi then Some proj else None)
          projections
      in
      if active <> [] then
        volume :=
          Bigint.add !volume
            (Bigint.mul_int (rectangle_union_sweep2d active) thickness)
    done;
    !volume

let rectangle_union boxes =
  match boxes with
  | [] -> Bigint.zero
  | first :: _ ->
    (match Rectangle.dim first with
    | 2 -> rectangle_union_sweep2d boxes
    | 3 -> rectangle_union_sweep3d boxes
    | _ -> rectangle_union_grid boxes)
