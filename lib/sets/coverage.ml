module Bigint = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Comb = Delphic_util.Comb

type elt = { positions : int array; pattern : Bitvec.t }
type t = { vector : Bitvec.t; strength : int }

let create ~vector ~strength =
  if strength <= 0 || strength > Bitvec.width vector then
    invalid_arg "Coverage.create: need 0 < strength <= width";
  { vector; strength }

let vector c = c.vector
let strength c = c.strength
let nbits c = Bitvec.width c.vector

let universe_size ~n ~strength =
  Bigint.mul (Comb.choose n strength) (Bigint.pow2 strength)

let cardinality c = Comb.choose (nbits c) c.strength

let sorted_distinct positions n =
  let k = Array.length positions in
  let rec ok i =
    i >= k
    || (positions.(i) >= 0 && positions.(i) < n
        && (i = 0 || positions.(i - 1) < positions.(i))
        && ok (i + 1))
  in
  ok 0

let mem c { positions; pattern } =
  Array.length positions = c.strength
  && Bitvec.width pattern = c.strength
  && sorted_distinct positions (nbits c)
  && Bitvec.equal (Bitvec.extract c.vector positions) pattern

let sample c rng =
  let positions = Comb.floyd_sample rng ~n:(nbits c) ~k:c.strength in
  { positions; pattern = Bitvec.extract c.vector positions }

(* Lexicographic walk over the k-combinations of [0, n). *)
let iter_elements =
  Some
    (fun c f ->
      let n = nbits c and k = c.strength in
      let pos = Array.init k Fun.id in
      let rec bump i =
        i >= 0
        &&
        if pos.(i) < n - k + i then begin
          pos.(i) <- pos.(i) + 1;
          for j = i + 1 to k - 1 do
            pos.(j) <- pos.(j - 1) + 1
          done;
          true
        end
        else bump (i - 1)
      in
      let continue = ref true in
      while !continue do
        let positions = Array.copy pos in
        f { positions; pattern = Bitvec.extract c.vector positions };
        continue := bump (k - 1)
      done)

let equal_elt a b =
  a.positions = b.positions && Bitvec.equal a.pattern b.pattern

let hash_elt e = Hashtbl.hash (e.positions, Bitvec.hash e.pattern)

let pp_elt fmt e =
  Format.fprintf fmt "({%s} -> %a)"
    (String.concat "," (Array.to_list (Array.map string_of_int e.positions)))
    Bitvec.pp e.pattern
