module Bigint = Delphic_util.Bigint
module Comb = Delphic_util.Comb

type elt = { positions : int array; values : int array }
type t = { vector : int array; arities : int array; strength : int }

let create ~vector ~arities ~strength =
  let n = Array.length vector in
  if n = 0 || n <> Array.length arities then
    invalid_arg "Mixed_coverage.create: vector/arities length mismatch";
  Array.iteri
    (fun i v ->
      if arities.(i) < 1 then invalid_arg "Mixed_coverage.create: arity must be >= 1";
      if v < 0 || v >= arities.(i) then
        invalid_arg "Mixed_coverage.create: value outside its arity")
    vector;
  if strength <= 0 || strength > n then
    invalid_arg "Mixed_coverage.create: need 0 < strength <= n";
  { vector = Array.copy vector; arities = Array.copy arities; strength }

let vector c = Array.copy c.vector
let arities c = Array.copy c.arities
let strength c = c.strength
let npositions c = Array.length c.vector

(* e_t(a_1..a_n) by the standard DP: e.(j) after processing a_i is the
   degree-j elementary symmetric polynomial of the prefix. *)
let universe_size ~arities ~strength =
  if strength < 0 then invalid_arg "Mixed_coverage.universe_size: negative strength";
  let e = Array.make (strength + 1) Bigint.zero in
  e.(0) <- Bigint.one;
  Array.iter
    (fun a ->
      for j = Stdlib.min strength (Array.length e - 1) downto 1 do
        e.(j) <- Bigint.add e.(j) (Bigint.mul_int e.(j - 1) a)
      done)
    arities;
  e.(strength)

let cardinality c = Comb.choose (npositions c) c.strength

let sorted_distinct positions n =
  let k = Array.length positions in
  let rec ok i =
    i >= k
    || (positions.(i) >= 0 && positions.(i) < n
        && (i = 0 || positions.(i - 1) < positions.(i))
        && ok (i + 1))
  in
  ok 0

let mem c { positions; values } =
  Array.length positions = c.strength
  && Array.length values = c.strength
  && sorted_distinct positions (npositions c)
  && begin
    let rec matches i =
      i >= c.strength || (c.vector.(positions.(i)) = values.(i) && matches (i + 1))
    in
    matches 0
  end

let sample c rng =
  let positions = Comb.floyd_sample rng ~n:(npositions c) ~k:c.strength in
  { positions; values = Array.map (fun i -> c.vector.(i)) positions }

(* Lexicographic walk over the k-combinations of positions. *)
let iter_elements =
  Some
    (fun c f ->
      let n = npositions c and k = c.strength in
      let pos = Array.init k Fun.id in
      let rec bump i =
        i >= 0
        &&
        if pos.(i) < n - k + i then begin
          pos.(i) <- pos.(i) + 1;
          for j = i + 1 to k - 1 do
            pos.(j) <- pos.(j - 1) + 1
          done;
          true
        end
        else bump (i - 1)
      in
      let continue = ref true in
      while !continue do
        let positions = Array.copy pos in
        f { positions; values = Array.map (fun i -> c.vector.(i)) positions };
        continue := bump (k - 1)
      done)

let equal_elt a b = a.positions = b.positions && a.values = b.values
let hash_elt e = Hashtbl.hash (e.positions, e.values)

let pp_elt fmt e =
  Format.fprintf fmt "({%s} -> %s)"
    (String.concat "," (Array.to_list (Array.map string_of_int e.positions)))
    (String.concat "," (Array.to_list (Array.map string_of_int e.values)))
