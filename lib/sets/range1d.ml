module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng

type t = { lo : int; hi : int }
type elt = int

let create ~lo ~hi =
  if lo < 0 || lo > hi then invalid_arg "Range1d.create: need 0 <= lo <= hi";
  { lo; hi }

let lo r = r.lo
let hi r = r.hi
let length r = r.hi - r.lo + 1

let cardinality r = Bigint.of_int (length r)
let mem r x = r.lo <= x && x <= r.hi
let sample r rng = Rng.int_in_range rng ~lo:r.lo ~hi:r.hi

let iter_elements =
  Some
    (fun r f ->
      for x = r.lo to r.hi do
        f x
      done)

let equal_elt = Int.equal
let hash_elt = Hashtbl.hash
let pp_elt = Format.pp_print_int
let pp fmt r = Format.fprintf fmt "[%d, %d]" r.lo r.hi
