type t = Rectangle.t
type elt = int array

let create b =
  Rectangle.create ~lo:(Array.make (Array.length b) 0) ~hi:b

let corner = Rectangle.hi
let dim = Rectangle.dim
let to_rectangle t = t
let dominates a b = Rectangle.contains_box a b

let cardinality = Rectangle.cardinality
let mem = Rectangle.mem
let sample = Rectangle.sample
let iter_elements = Rectangle.iter_elements
let equal_elt = Rectangle.equal_elt
let hash_elt = Rectangle.hash_elt
let pp_elt = Rectangle.pp_elt
let pp = Rectangle.pp
