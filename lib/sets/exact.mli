(** Exact union-size computations, used as ground truth by the tests and
    experiments.  These are offline algorithms — they store the whole stream
    — and exist precisely to validate the streaming estimators. *)

val range_union : Range1d.t list -> int
(** Size of a union of integer intervals (sort + sweep, O(m log m)). *)

val rectangle_union : Rectangle.t list -> Delphic_util.Bigint.t
(** Exact Klee measure.  Dispatches to {!rectangle_union_sweep2d} for
    [d = 2] (O(m log m)), {!rectangle_union_sweep3d} for [d = 3]
    (O(m² log m)), and {!rectangle_union_grid} otherwise. *)

val rectangle_union_grid : Rectangle.t list -> Delphic_util.Bigint.t
(** Coordinate-compressed grid measure: O((2m)^d · m · d).  Exact for any
    dimension; practical for small d / moderate m. *)

val rectangle_union_sweep2d : Rectangle.t list -> Delphic_util.Bigint.t
(** Bentley's sweep-line algorithm over an {!Interval_cover} segment tree,
    O(m log m).  Requires every box to be 2-dimensional. *)

val rectangle_union_sweep3d : Rectangle.t list -> Delphic_util.Bigint.t
(** Sweep over the z axis, measuring each slab's active cross-section with
    {!rectangle_union_sweep2d}: O(m² log m).  Requires every box to be
    3-dimensional. *)

val dnf_count : nvars:int -> Dnf.t list -> Delphic_util.Bigint.t
(** Exact DNF model count via a reduced ordered BDD. *)

val dnf_count_enum : nvars:int -> Dnf.t list -> Delphic_util.Bigint.t
(** Exact DNF model count by brute-force enumeration; requires
    [nvars <= 24].  Used to cross-check the BDD path in tests. *)

val coverage_union :
  strength:int -> Delphic_util.Bitvec.t list -> Delphic_util.Bigint.t
(** [|Cov_t(A)|]: for every size-[strength] position subset, the number of
    distinct patterns the suite exhibits.  O(C(n,t) · m). *)

(** {2 Union membership}

    The Delphic membership oracle lifted from one set to a whole stream —
    [x ∈ ∪ S_i] — exposed uniformly across families.  These are the exact
    per-leaf probes the set-expression tests evaluate ground truth with
    (each estimator leaf probes its own sketch instead). *)

val rectangle_union_mem : Rectangle.t list -> int array -> bool

val dnf_union_mem : Dnf.t list -> Delphic_util.Bitvec.t -> bool

val coverage_union_mem :
  strength:int -> Delphic_util.Bitvec.t list -> Coverage.elt -> bool
(** Membership of a (positions, pattern) pair in [Cov_t] of the suite. *)

val distinct : int list -> int
(** Number of distinct values (ground truth for singleton streams). *)

val knapsack_union : Knapsack.t list -> Delphic_util.Bigint.t
(** Size of the union of knapsack solution sets (all instances must share
    the same variable count; inclusion-exclusion-free exact count via a BDD
    over threshold functions is overkill, so this enumerates: requires
    [nvars <= 24]). *)
