module Bigint = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Gf2 = Delphic_util.Gf2

type literal = { var : int; positive : bool }
type t = { nvars : int; lits : literal array }
type elt = Bitvec.t

let create ~nvars lits =
  if nvars <= 0 then invalid_arg "Dnf.create: nvars must be positive";
  let lits = Array.of_list lits in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun { var; _ } ->
      if var < 0 || var >= nvars then invalid_arg "Dnf.create: variable out of range";
      if Hashtbl.mem seen var then invalid_arg "Dnf.create: repeated variable";
      Hashtbl.replace seen var ())
    lits;
  { nvars; lits }

let nvars t = t.nvars
let literals t = Array.to_list t.lits
let width t = Array.length t.lits

let cardinality t = Bigint.pow2 (t.nvars - width t)

let satisfies t x =
  Bitvec.width x = t.nvars
  && Array.for_all (fun { var; positive } -> Bitvec.get x var = positive) t.lits

let mem = satisfies

let sample t rng =
  let x = Bitvec.random rng ~width:t.nvars in
  Array.iter (fun { var; positive } -> Bitvec.set x var positive) t.lits;
  x

(* All satisfying assignments: fixed literals pinned, the free variables
   counted through in binary (carry walk, no 2^k counter to overflow).
   Callers bound |S| before iterating, so 2^(nvars - width) terminations
   are their concern, not ours. *)
let iter_elements =
  Some
    (fun t f ->
      let fixed = Array.make t.nvars false in
      Array.iter (fun { var; _ } -> fixed.(var) <- true) t.lits;
      let free =
        Array.of_list
          (List.filter (fun v -> not fixed.(v)) (List.init t.nvars Fun.id))
      in
      let bits = Array.make (Array.length free) false in
      let rec bump i =
        i >= 0
        &&
        if not bits.(i) then begin
          bits.(i) <- true;
          true
        end
        else begin
          bits.(i) <- false;
          bump (i - 1)
        end
      in
      let continue = ref true in
      while !continue do
        let x = Bitvec.create ~width:t.nvars in
        Array.iter (fun { var; positive } -> Bitvec.set x var positive) t.lits;
        Array.iteri (fun i var -> Bitvec.set x var bits.(i)) free;
        f x;
        continue := bump (Array.length free - 1)
      done)

let equal_elt = Bitvec.equal
let hash_elt = Bitvec.hash
let pp_elt = Bitvec.pp

let pp fmt t =
  if width t = 0 then Format.pp_print_string fmt "true"
  else
    Format.pp_print_string fmt
      (String.concat " & "
         (List.map
            (fun { var; positive } ->
              if positive then Printf.sprintf "x%d" var else Printf.sprintf "~x%d" var)
            (literals t)))

let as_rows t =
  Array.to_list
    (Array.map
       (fun { var; positive } ->
         let coeffs = Bitvec.create ~width:t.nvars in
         Bitvec.set coeffs var true;
         { Gf2.coeffs; rhs = positive })
       t.lits)

let solve_with t extra = Gf2.solve ~nvars:t.nvars (as_rows t @ extra)

let count_constrained t extra =
  match solve_with t extra with
  | None -> Bigint.zero
  | Some s -> Gf2.solution_count s

let enumerate_constrained t extra ~limit =
  match solve_with t extra with
  | None -> Some []
  | Some s -> Gf2.enumerate s ~limit
