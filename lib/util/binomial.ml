(* Exact binomial sampling.

   For r = min(p, 1-p):
   - n*r < 30: BINV sequential inversion (expected O(n*r) work);
   - otherwise: BTPE (Kachitvichyanukul & Schmeiser, "Binomial random variate
     generation", CACM 31(2), 1988), a triangle/parallelogram/exponential
     envelope rejection scheme with squeeze tests.  The structure below
     follows the published algorithm (steps 1-6). *)

let binv rng ~n ~p =
  (* p <= 0.5 and n*p < ~30 guaranteed by the dispatcher, so q^n cannot
     underflow. *)
  let q = 1.0 -. p in
  let s = p /. q in
  let a = float_of_int (n + 1) *. s in
  (* r0 depends only on (n, q): hoisted so rejection retries don't pay the
     pow again. *)
  let r0 = q ** float_of_int n in
  let rec attempt () =
    let u = ref (Rng.float rng) in
    let x = ref 0 in
    let r = ref r0 in
    let overflow = ref false in
    while (not !overflow) && !u > !r do
      u := !u -. !r;
      incr x;
      if !x > n then overflow := true
      else r := ((a /. float_of_int !x) -. s) *. !r
    done;
    (* [overflow] can only fire through float rounding in the tail; retry. *)
    if !overflow then attempt () else !x
  in
  attempt ()

let btpe rng ~n ~r =
  (* r = min(p, 1-p); caller flips the result when p > 0.5. *)
  let nf = float_of_int n in
  let q = 1.0 -. r in
  let fm = (nf *. r) +. r in
  let m = int_of_float fm in
  let mf = float_of_int m in
  let nrq = nf *. r *. q in
  let p1 = Float.of_int (int_of_float ((2.195 *. sqrt nrq) -. (4.6 *. q))) +. 0.5 in
  let xm = mf +. 0.5 in
  let xl = xm -. p1 in
  let xr = xm +. p1 in
  let c = 0.134 +. (20.5 /. (15.3 +. mf)) in
  let al = (fm -. xl) /. (fm -. (xl *. r)) in
  let laml = al *. (1.0 +. (al /. 2.0)) in
  let ar = (xr -. fm) /. (xr *. q) in
  let lamr = ar *. (1.0 +. (ar /. 2.0)) in
  let p2 = p1 *. (1.0 +. (2.0 *. c)) in
  let p3 = p2 +. (c /. laml) in
  let p4 = p3 +. (c /. lamr) in
  let rec step1 () =
    let u = Rng.float rng *. p4 in
    let v = Rng.float rng in
    if u <= p1 then
      (* Triangular central region: immediate acceptance. *)
      int_of_float (xm -. (p1 *. v) +. u)
    else if u <= p2 then begin
      (* Parallelogram region. *)
      let x = xl +. ((u -. p1) /. c) in
      let v = (v *. c) +. 1.0 -. (Float.abs (mf -. x +. 0.5) /. p1) in
      if v > 1.0 then step1 () else step5 (int_of_float x) v
    end
    else if u <= p3 then begin
      (* Left exponential tail. *)
      let y = int_of_float (xl +. (log v /. laml)) in
      if y < 0 then step1 () else step5 y (v *. (u -. p2) *. laml)
    end
    else begin
      (* Right exponential tail. *)
      let y = int_of_float (xr -. (log v /. lamr)) in
      if y > n then step1 () else step5 y (v *. (u -. p3) *. lamr)
    end
  and step5 y v =
    let k = abs (y - m) in
    if k <= 20 || float_of_int k >= (nrq /. 2.0) -. 1.0 then begin
      (* Evaluate f(y)/f(m) by explicit recursion — cheap for small k. *)
      let s = r /. q in
      let a = s *. (nf +. 1.0) in
      let f = ref 1.0 in
      if m < y then
        for i = m + 1 to y do
          f := !f *. ((a /. float_of_int i) -. s)
        done
      else if m > y then
        for i = y + 1 to m do
          f := !f /. ((a /. float_of_int i) -. s)
        done;
      if v <= !f then y else step1 ()
    end
    else begin
      (* Squeeze tests on log f, then the full Stirling-corrected test. *)
      let kf = float_of_int k in
      let rho =
        (kf /. nrq) *. ((((kf *. ((kf /. 3.0) +. 0.625)) +. 0.16666666666666666) /. nrq) +. 0.5)
      in
      let t = -.kf *. kf /. (2.0 *. nrq) in
      let alpha = log v in
      if alpha < t -. rho then y
      else if alpha > t +. rho then step1 ()
      else begin
        let yf = float_of_int y in
        let x1 = yf +. 1.0 in
        let f1 = mf +. 1.0 in
        let z = nf +. 1.0 -. mf in
        let w = nf -. yf +. 1.0 in
        let x2 = x1 *. x1 in
        let f2 = f1 *. f1 in
        let z2 = z *. z in
        let w2 = w *. w in
        let stirling u2 u =
          (13860.0
          -. ((462.0 -. ((132.0 -. ((99.0 -. (140.0 /. u2)) /. u2)) /. u2)) /. u2))
          /. u /. 166320.0
        in
        let bound =
          (xm *. log (f1 /. x1))
          +. ((nf -. mf +. 0.5) *. log (z /. w))
          +. ((yf -. mf) *. log (w *. r /. (x1 *. q)))
          +. stirling f2 f1 +. stirling z2 z +. stirling x2 x1 +. stirling w2 w
        in
        if alpha > bound then step1 () else y
      end
    end
  in
  step1 ()

let sample rng ~n ~p =
  if n < 0 then invalid_arg "Binomial.sample: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Binomial.sample: p outside [0,1]";
  if n = 0 || p = 0.0 then 0
  else if p = 1.0 then n
  else begin
    let flipped = p > 0.5 in
    let r = if flipped then 1.0 -. p else p in
    let x =
      if float_of_int n *. r < 30.0 then binv rng ~n ~p:r else btpe rng ~n ~r
    in
    if flipped then n - x else x
  end

let float_exact_cap = 9.007199254740992e15 (* 2^53 *)

let gaussian_approx rng ~n ~p =
  let mean = n *. p in
  let sd = sqrt (n *. p *. (1.0 -. p)) in
  let x = Float.round (mean +. (sd *. Rng.gaussian rng)) in
  Float.max 0.0 (Float.min n x)

let sample_float rng ~n ~p =
  if n < 0.0 then invalid_arg "Binomial.sample_float: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Binomial.sample_float: p outside [0,1]";
  if n = 0.0 || p = 0.0 then 0.0
  else if p = 1.0 then n
  else if n <= float_exact_cap then
    float_of_int (sample rng ~n:(int_of_float n) ~p)
  else gaussian_approx rng ~n ~p

let sample_bigint rng ~n ~p =
  match Bigint.to_int n with
  | Some n -> float_of_int (sample rng ~n ~p)
  | None -> sample_float rng ~n:(Bigint.to_float n) ~p

let halve rng n = sample_float rng ~n ~p:0.5
