(** Sliding-window union estimation: lifts the {!Delphic_core.Vatic} sketch
    over any {!Delphic_family.Family.FAMILY} to answer [|∪ S_i|] restricted
    to the sets of the trailing [w] seconds of logical time.

    Two strategies, one query interface:

    - {!Tagged} keeps a single timestamp-tagged sketch.  Every bucket entry
      carries its element's last-occurrence time (VATIC deletes [X ∩ S_i]
      before re-inserting, so re-occurrence refreshes the tag), and a window
      query is the Horvitz–Thompson sum restricted to entries at or after
      the cutoff — exact cutoffs, minimal space, non-destructive.  The cost:
      elements {e outside} the window still occupy bucket slots, so over a
      long history the within-window sample thins and small-window variance
      grows.
    - {!Epochs} keeps an exponential-histogram chain of per-epoch
      sub-sketches (spans 1, 1, 2, 2, 4, 4, … base epochs; the two oldest
      same-span buckets merge when a span overfills).  A query folds only
      the sub-sketches overlapping the window, so accuracy tracks a
      window-local sketch however long the stream ran, and whole epochs
      behind the cutoff are destructively dropped at query time
      (expire-on-query compaction) — at the cost of
      [O(max_per_rank · log(T/epoch))] sub-sketches held and epoch-aligned
      expiry of the chain.  One caveat it inherits from
      {!Delphic_core.Vatic.Make.merge}: sampling coins are independent
      across sub-sketches, so an element recurring in several epochs can be
      counted once per sub-sketch that sampled it.  The fold therefore
      answers with an {e upper-biased} union on streams with heavy
      cross-epoch recurrence — never below [(1-ε)·|∪|], never above
      [(1+ε)·Σ_b |∪ of bucket b|].  Prefer {!Tagged} when elements recur
      across the whole history; {!Epochs} is the coarse fallback for long
      streams whose recurrence is temporally local.  See DESIGN.md for the
      trade-off discussion.

    Logical time is the caller's: feed [process ~now] with any non-decreasing
    clock (seconds from an arbitrary origin). *)

type strategy =
  | Tagged  (** one timestamp-tagged sketch; exact cutoffs *)
  | Epochs of { epoch : float; max_per_rank : int }
      (** chain of per-epoch sub-sketches; [epoch] is the base span in
          seconds, [max_per_rank] (≥ 2) the exponential-histogram width *)

module Make (F : Delphic_family.Family.FAMILY) : sig
  type t

  val create :
    ?strategy:strategy ->
    ?mode:Delphic_core.Params.mode ->
    ?capacity_scale:float ->
    ?coupon_scale:float ->
    epsilon:float ->
    delta:float ->
    log2_universe:float ->
    seed:int ->
    unit ->
    t
  (** [strategy] defaults to {!Tagged}.  The remaining parameters are
      {!Delphic_core.Vatic.Make.create}'s, applied to every (sub-)sketch.
      Raises [Invalid_argument] on a non-positive [epoch] or
      [max_per_rank < 2]. *)

  val process : t -> now:float -> F.t -> unit
  (** Feed the next set at logical time [now].  The clock should be
      non-decreasing; a late arrival is absorbed where the stream currently
      is and can only make expiry conservative (never an under-count). *)

  val query : t -> now:float -> window:float -> float
  (** Estimate of the size of the union of the sets processed in
      [(now - window, now]] — more precisely, of
      [|{x : last occurrence of x ≥ now - window}|], the windowed Delphic
      union.  [window = infinity] equals {!estimate} exactly.  Raises
      [Invalid_argument] when [window <= 0].  Under {!Epochs} this
      destructively drops chain buckets wholly behind the cutoff (safe:
      a still-live element re-occurred later and is held in a newer
      sub-sketch too). *)

  val estimate : t -> float
  (** Full-history estimate (deterministic Horvitz–Thompson variant). *)

  val items : t -> int
  (** Sets processed. *)

  val last_seen : t -> float
  (** High-water mark of the logical clock ([neg_infinity] before any
      {!process}). *)

  val sub_sketches : t -> int
  (** Sketches currently held: 1 under {!Tagged}; the chain length under
      {!Epochs} — the space-accounting quantity of the trade-off. *)

  val max_bucket_size : t -> int
  (** Peak bucket occupancy summed across (sub-)sketches. *)
end
