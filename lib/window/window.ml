(* The strategy choice is family-independent, so it lives outside the
   functor: harnesses sweeping several families can share one value. *)
type strategy =
  | Tagged
  | Epochs of { epoch : float; max_per_rank : int }

module Make (F : Delphic_family.Family.FAMILY) = struct
  module V = Delphic_core.Vatic.Make (F)
  module Params = Delphic_core.Params

  (* A sealed sub-sketch of the Epochs chain: all sets processed while the
     logical clock was in [start_, stop).  [rank] is the exponential-
     histogram span exponent — a rank-r bucket absorbed 2^r base epochs. *)
  type bucket = { bstart : float; bstop : float; rank : int; sk : V.t }

  type chain = {
    epoch : float;
    max_per_rank : int;
    mutable head : bucket option; (* the open (still-filling) epoch *)
    mutable sealed : bucket list; (* newest first *)
  }

  type state = Tagged_state of V.t | Epochs_state of chain

  type t = {
    mode : Params.mode option;
    capacity_scale : float option;
    coupon_scale : float option;
    epsilon : float;
    delta : float;
    log2_universe : float;
    state : state;
    mutable seq : int; (* distinct seeds for sub-sketches and query folds *)
    seed : int;
    mutable items : int;
    mutable last_now : float; (* high-water mark of the logical clock *)
  }

  let next_seed t =
    t.seq <- t.seq + 1;
    t.seed + (7919 * t.seq)

  let fresh_sketch t =
    V.create ?mode:t.mode ?capacity_scale:t.capacity_scale
      ?coupon_scale:t.coupon_scale ~epsilon:t.epsilon ~delta:t.delta
      ~log2_universe:t.log2_universe ~seed:(next_seed t) ()

  let create ?(strategy = Tagged) ?mode ?capacity_scale ?coupon_scale ~epsilon
      ~delta ~log2_universe ~seed () =
    (match strategy with
    | Tagged -> ()
    | Epochs { epoch; max_per_rank } ->
      if not (epoch > 0.0 && Float.is_finite epoch) then
        invalid_arg "Window.create: need a positive finite epoch";
      if max_per_rank < 2 then invalid_arg "Window.create: need max_per_rank >= 2");
    let seq = ref 0 in
    let state =
      match strategy with
      | Tagged ->
        incr seq;
        Tagged_state
          (V.create ?mode ?capacity_scale ?coupon_scale ~epsilon ~delta
             ~log2_universe
             ~seed:(seed + (7919 * !seq))
             ())
      | Epochs { epoch; max_per_rank } ->
        Epochs_state { epoch; max_per_rank; head = None; sealed = [] }
    in
    {
      mode;
      capacity_scale;
      coupon_scale;
      epsilon;
      delta;
      log2_universe;
      state;
      seq = !seq;
      seed;
      items = 0;
      last_now = neg_infinity;
    }

  (* Exponential-histogram compaction: whenever more than [max_per_rank]
     sealed buckets share a rank, the two OLDEST of that rank merge into one
     bucket of rank+1 (their spans are adjacent by construction), possibly
     cascading.  Invariant: per rank at most [max_per_rank] buckets, so the
     chain holds O(max_per_rank · log(T/epoch)) sub-sketches. *)
  let rec compact t (c : chain) =
    let by_rank = Hashtbl.create 8 in
    List.iter
      (fun b ->
        Hashtbl.replace by_rank b.rank (1 + Option.value ~default:0 (Hashtbl.find_opt by_rank b.rank)))
      c.sealed;
    let overfull =
      Hashtbl.fold
        (fun rank n acc -> if n > c.max_per_rank then Some rank else acc)
        by_rank None
    in
    match overfull with
    | None -> ()
    | Some rank ->
      (* the two oldest of [rank] are the last two such in the newest-first
         list; walk once collecting positions *)
      let arr = Array.of_list c.sealed in
      let idx = ref [] in
      Array.iteri (fun i b -> if b.rank = rank then idx := i :: !idx) arr;
      (match !idx with
      | i_oldest :: i_second :: _ ->
        (* [idx] is oldest-first because we consed while walking newest-first *)
        let a = arr.(i_oldest) and b = arr.(i_second) in
        let merged =
          {
            bstart = Float.min a.bstart b.bstart;
            bstop = Float.max a.bstop b.bstop;
            rank = rank + 1;
            sk = V.merge a.sk b.sk ~seed:(next_seed t);
          }
        in
        c.sealed <-
          List.concat
            (List.mapi
               (fun i x ->
                 if i = i_second then [ merged ]
                 else if i = i_oldest then []
                 else [ x ])
               c.sealed);
        compact t c
      | _ -> ())

  let process t ~now set =
    t.items <- t.items + 1;
    t.last_now <- Float.max t.last_now now;
    match t.state with
    | Tagged_state v -> V.process ~ts:now v set
    | Epochs_state c -> (
      let k = Float.floor (now /. c.epoch) in
      let bstart = k *. c.epoch in
      let bstop = bstart +. c.epoch in
      match c.head with
      | Some h when now < h.bstop ->
        (* still in the open epoch — or a late arrival behind it, which is
           absorbed where the stream currently is (the chain assumes a
           non-decreasing clock; a late set can only make its epoch's expiry
           conservative, never an under-count) *)
        V.process ~ts:now h.sk set
      | head ->
        (match head with
        | Some h ->
          c.sealed <- h :: c.sealed;
          compact t c
        | None -> ());
        let sk = fresh_sketch t in
        V.process ~ts:now sk set;
        c.head <- Some { bstart; bstop; rank = 0; sk })

  (* Every sub-sketch overlapping [cutoff, ∞), newest first. *)
  let live_buckets c ~cutoff =
    let head = match c.head with Some h -> [ h ] | None -> [] in
    head @ List.filter (fun b -> b.bstop > cutoff) c.sealed

  (* Query-time folds use seeds derived from the chain's base seed, not the
     mutable [seq] counter: two queries over the same live buckets then make
     identical coin flips, so [query ~window:infinity] equals [estimate]
     exactly and repeated queries are reproducible. *)
  let fold_sketches t = function
    | [] -> None
    | [ b ] -> Some b.sk
    | b :: rest ->
      let k = ref 0 in
      Some
        (List.fold_left
           (fun acc x ->
             incr k;
             V.merge acc x.sk ~seed:(t.seed + (104729 * !k)))
           b.sk rest)

  let query t ~now ~window =
    if not (window > 0.0) then invalid_arg "Window.query: need window > 0";
    let cutoff = now -. window in
    match t.state with
    | Tagged_state v ->
      if Float.is_finite cutoff then V.estimate_window v ~cutoff
      else V.estimate_horvitz_thompson v
    | Epochs_state c ->
      (* expire-on-query compaction: an epoch wholly before the cutoff can
         never contribute again (any of its elements still alive re-occurred
         in a newer epoch and is held there too), so drop it for good *)
      if Float.is_finite cutoff then
        c.sealed <- List.filter (fun b -> b.bstop > cutoff) c.sealed;
      (match fold_sketches t (live_buckets c ~cutoff) with
      | None -> 0.0
      | Some sk ->
        if Float.is_finite cutoff then V.estimate_window sk ~cutoff
        else V.estimate_horvitz_thompson sk)

  let estimate t =
    match t.state with
    | Tagged_state v -> V.estimate_horvitz_thompson v
    | Epochs_state c -> (
      match fold_sketches t (live_buckets c ~cutoff:neg_infinity) with
      | None -> 0.0
      | Some sk -> V.estimate_horvitz_thompson sk)

  let items t = t.items
  let last_seen t = t.last_now

  let sub_sketches t =
    match t.state with
    | Tagged_state _ -> 1
    | Epochs_state c ->
      List.length c.sealed + (match c.head with Some _ -> 1 | None -> 0)

  let max_bucket_size t =
    match t.state with
    | Tagged_state v -> V.max_bucket_size v
    | Epochs_state c ->
      List.fold_left
        (fun acc b -> acc + V.max_bucket_size b.sk)
        (match c.head with Some h -> V.max_bucket_size h.sk | None -> 0)
        c.sealed
end
