(** Set-expression queries over Delphic sessions.

    The paper's membership oracle is exactly what upgrades a union-size
    sketch into an estimator for arbitrary set expressions (the
    distributed-streams framework of Dasgupta–Lang–Rhodes–Thaler): draw
    samples from the union of every session named by the expression, probe
    each operand for membership, and scale the hit rate by the union
    estimate.  This module is the query engine's core: the typed expression
    AST, its textual form, and the sample-and-probe estimator {!Eval}.

    {2 Estimator}

    Let [U = A₁ ∪ … ∪ A_k] over the expression's distinct leaves.  Every
    expression built from [∪ ∩ \ Δ] denotes a subset [E ⊆ U], so
    [|E| = |U| · Pr_{x ~ U}[x ∈ E]] and the probability is estimated by
    Monte-Carlo over [m] union samples.  Membership of a sample [x] in leaf
    [A_i] is probed against that session's estimator state:

    - an {e exact-regime} session holds all its distinct elements, so the
      probe weight is the true indicator [w_i ∈ {0, 1}];
    - a {e sketch-regime} session holds [x] at level [ℓ] with probability
      [2^{-ℓ}] and never holds an element outside its union, so the
      Horvitz–Thompson weight [w_i = 1[x ∈ bucket_i] · 2^ℓ] is an unbiased
      estimate of the indicator, with no false positives — {e provided the
      probe coins are independent of how [x] was drawn}.

    Given weights, the {e multilinear extension} of the expression's truth
    table evaluated at them,

    {v score(x) = Σ_{a ∈ {0,1}^k, expr(a) = 1}  Π_i (w_i if a_i else 1−w_i) v}

    is an unbiased estimate of [1[x ∈ E]] — including repeated leaves, which
    share one weight.  With every leaf exact ({!Eval.estimate}) the answer
    is [|U|_est · (Σ_x score(x)) / m], clamped to [[0, |U|_est]].

    {2 Sketch regime: why the draw is stratified}

    The independence proviso fails for the obvious sketch-regime plan of
    drawing from the {e merged} union sketch: the merged bucket's contents
    are exactly the survivors of the leaf buckets being probed, so a drawn
    sample is (nearly) certain to sit in some leaf bucket and the [2^ℓ]
    weights over-correct — intersections come out several-fold high.
    {!Eval.estimate_stratified} therefore never draws from the fold.  It
    draws from each leaf's own bucket (sessions flip independent coins, so
    the {e other} leaves' probes are independent of the draw), pins the host
    leaf's weight to 1, and evaluates the multilinear extension of the
    importance-corrected payoff [a ↦ expr(a) / |{j : a_j = 1}|], using the
    identity

    {v |E| = Σ_i |A_i| · E_{x ~ A_i}[ 1[x ∈ E] / mult(x) ] v}

    where [mult(x)] counts the leaves containing [x].  Each stratum's mean
    is scaled by the leaf's own size estimate and the strata are summed,
    clamped to [[0, Σ_i |A_i|_est]].

    {2 Error bound}

    With every leaf in the exact regime ([Exact_probes]) the scores are
    Bernoulli and two error sources compose: the union estimate's own
    [(ε, δ/2)] guarantee and a multiplicative Chernoff bound on the hit
    count [h = Σ score], giving relative error at most

    {v ε_expr  ≤  ε_union + sqrt(3 · ln(4/δ) / h) v}

    with probability [≥ 1 − δ], {e independent of expression depth} — depth
    only changes which assignments count as hits.  Sketch-regime probes
    ([Sketch_probes]) keep the stratified estimator unbiased but the weights
    are unbounded ([2^ℓ]), so the same expression needs more mass: the bound
    is heuristic there and the reply says so.  When the evidence mass [h] is
    below {!min_support} (the point where the Chernoff radical crosses
    [~43%]) no multiplicative guarantee is worth certifying and the typed
    {!outcome} is [Low_support] instead of a number. *)

type t =
  | Leaf of string  (** a session name, [A-Za-z0-9_.-]+ *)
  | Union of t * t  (** [A | B] *)
  | Inter of t * t  (** [A & B] *)
  | Diff of t * t  (** [A \ B] *)
  | Sym_diff of t * t  (** [A ^ B] *)

val equal : t -> t -> bool

val depth : t -> int
(** Operator nesting depth: a leaf is 0, [(A & B) \ C] is 2. *)

val leaves : t -> string list
(** Distinct session names, in first-appearance order. *)

val max_leaves : int
(** Most distinct leaves {!Eval} accepts (the multilinear enumeration is
    [2^k] in the worst case; 12 keeps it bounded at 4096 assignments). *)

val eval_bool : (string -> bool) -> t -> bool
(** Truth of the expression under a membership assignment for each leaf —
    the ground-truth evaluator the tests drive against enumerable
    universes. *)

val to_string : t -> string
(** Minimal-parenthesis textual form: [&] binds tighter than [| \ ^], which
    associate left at equal precedence.  Round-trips through
    [Delphic_stream.Parsers.expr_of_string]. *)

type quality =
  | Exact_probes
      (** every leaf session was in the exact regime: probes are true
          indicators and the documented bound applies as stated *)
  | Sketch_probes
      (** at least one leaf answered from its sketch bucket: the draw was
          stratified over leaf buckets with unbiased Horvitz–Thompson
          probes of the other leaves, the bound is heuristic *)

type outcome =
  | Estimate of { value : float; support : float; samples : int; quality : quality }
      (** [value] estimates [|E|]; [support] is the evidence mass
          [Σ_x |score(x)|] (the hit count under {!Exact_probes}); [samples]
          is the number of union draws actually evaluated *)
  | Low_support of {
      support : float;
      needed : float;
      samples : int;
      quality : quality;
    }
      (** the evidence mass fell short of {!min_support}: the expression
          selects too small a fraction of the union for [m] samples to
          certify — retry with a larger [m], or treat the answer as
          "below [|U|·needed/m]" *)

val min_support : delta:float -> float
(** [16 · ln(4/δ)]: the evidence mass below which the Chernoff radical
    exceeds [sqrt(3/16) ≈ 0.43] and {!Eval} declines to certify. *)

(** The estimator, instantiated per Delphic family (only the element type is
    used; the probe and draw callbacks carry the session state). *)
module Eval (F : Delphic_family.Family.FAMILY) : sig
  val estimate :
    expr:t ->
    union:float ->
    draw:(int -> F.elt list) ->
    probe:(string -> F.elt -> float) ->
    exact_probes:bool ->
    samples:int ->
    delta:float ->
    outcome
  (** [union] is the folded union estimate over all leaf sessions; [draw n]
      returns up to [n] i.i.d. approximate-uniform union samples; [probe
      name x] is the leaf's membership weight (0 when absent, 1 for an
      exact member, [2^ℓ] for a sketch hit at level ℓ); [exact_probes]
      declares whether every leaf probes from an exact table.  A [union] of
      0 answers [Estimate 0] directly — an empty union decides every
      expression.  Raises [Invalid_argument] when the expression has more
      than {!max_leaves} distinct leaves or [samples < 1].

      Callers must not pair sketch-regime probes with draws from a sketch
      {e merged from those same leaves} — the shared coins bias the weights
      (see the module header); route that case to {!estimate_stratified}. *)

  val estimate_stratified :
    expr:t ->
    leaf_sizes:(string * float) list ->
    draw_leaf:(string -> int -> F.elt list) ->
    probe:(string -> F.elt -> float) ->
    samples:int ->
    delta:float ->
    outcome
  (** Sketch-regime estimator (see the module header).  [leaf_sizes] maps
      every distinct leaf to its own size estimate; [draw_leaf name n]
      returns up to [n] approximate-uniform samples of that session's
      union; [probe] is as in {!estimate} and is only consulted for leaves
      other than the one a sample was drawn from.  [samples] is apportioned
      across leaves proportionally to [leaf_sizes] (at least one per
      non-empty leaf); the outcome's [samples] field reports the number
      actually drawn.  A total size of 0 answers [Estimate 0].  Quality is
      always [Sketch_probes].  Raises [Invalid_argument] on more than
      {!max_leaves} distinct leaves, [samples < 1], or a leaf missing from
      [leaf_sizes]. *)
end
