type t =
  | Leaf of string
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Sym_diff of t * t

let rec equal a b =
  match (a, b) with
  | Leaf x, Leaf y -> String.equal x y
  | Union (a1, a2), Union (b1, b2)
  | Inter (a1, a2), Inter (b1, b2)
  | Diff (a1, a2), Diff (b1, b2)
  | Sym_diff (a1, a2), Sym_diff (b1, b2) -> equal a1 b1 && equal a2 b2
  | _ -> false

let rec depth = function
  | Leaf _ -> 0
  | Union (a, b) | Inter (a, b) | Diff (a, b) | Sym_diff (a, b) ->
    1 + Stdlib.max (depth a) (depth b)

let leaves e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Leaf n ->
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.replace seen n ();
        acc := n :: !acc
      end
    | Union (a, b) | Inter (a, b) | Diff (a, b) | Sym_diff (a, b) ->
      go a;
      go b
  in
  go e;
  List.rev !acc

let max_leaves = 12

let rec eval_bool lookup = function
  | Leaf n -> lookup n
  | Union (a, b) -> eval_bool lookup a || eval_bool lookup b
  | Inter (a, b) -> eval_bool lookup a && eval_bool lookup b
  | Diff (a, b) -> eval_bool lookup a && not (eval_bool lookup b)
  | Sym_diff (a, b) -> eval_bool lookup a <> eval_bool lookup b

(* [&] binds at 2, the additive operators [| \ ^] at 1, all left-associative
   — a right child at its parent's precedence needs parens so the printed
   form re-parses to the same tree. *)
let prec = function
  | Leaf _ -> 3
  | Inter _ -> 2
  | Union _ | Diff _ | Sym_diff _ -> 1

let to_string e =
  let buf = Buffer.create 32 in
  let rec go e =
    match e with
    | Leaf n -> Buffer.add_string buf n
    | Union (a, b) -> binary e a "|" b
    | Inter (a, b) -> binary e a "&" b
    | Diff (a, b) -> binary e a "\\" b
    | Sym_diff (a, b) -> binary e a "^" b
  and binary parent a op b =
    let p = prec parent in
    wrap (prec a < p) a;
    Buffer.add_char buf ' ';
    Buffer.add_string buf op;
    Buffer.add_char buf ' ';
    wrap (prec b <= p) b
  and wrap needed child =
    if needed then begin
      Buffer.add_char buf '(';
      go child;
      Buffer.add_char buf ')'
    end
    else go child
  in
  go e;
  Buffer.contents buf

type quality = Exact_probes | Sketch_probes

type outcome =
  | Estimate of { value : float; support : float; samples : int; quality : quality }
  | Low_support of {
      support : float;
      needed : float;
      samples : int;
      quality : quality;
    }

let min_support ~delta = 16.0 *. log (4.0 /. Float.max 1e-300 delta)

module Eval (F : Delphic_family.Family.FAMILY) = struct
  (* Multilinear extension of an arbitrary payoff over the leaf-membership
     cube, evaluated at the probe weights by branching on each leaf's
     inclusion bit with zero-product pruning: a weight of 0 kills the
     included branch outright and a weight of 1 the excluded one, so exact
     probes cost one path and sketch probes 2^(leaves holding x) — not 2^k.
     Multilinearity is what makes this unbiased: for independent weights
     with E[w_i] = a_i the extension's mean is exactly payoff(a). *)
  let score payoff names idx weights =
    let k = Array.length names in
    let assign = Array.make k false in
    let lookup name = assign.(Hashtbl.find idx name) in
    let rec go i acc =
      if acc = 0.0 then 0.0
      else if i = k then acc *. payoff lookup
      else begin
        let w = weights.(i) in
        let inc =
          if w = 0.0 then 0.0
          else begin
            assign.(i) <- true;
            go (i + 1) (acc *. w)
          end
        in
        let exc =
          if w = 1.0 then 0.0
          else begin
            assign.(i) <- false;
            go (i + 1) (acc *. (1.0 -. w))
          end
        in
        inc +. exc
      end
    in
    go 0 1.0

  let estimate ~expr ~union ~draw ~probe ~exact_probes ~samples ~delta =
    let names = Array.of_list (leaves expr) in
    let k = Array.length names in
    if k > max_leaves then
      invalid_arg
        (Printf.sprintf "Expr.estimate: %d distinct leaves exceeds the %d cap" k
           max_leaves);
    if samples < 1 then invalid_arg "Expr.estimate: need samples >= 1";
    if union <= 0.0 then
      (* an empty union decides every expression: E ⊆ U = ∅ *)
      Estimate { value = 0.0; support = 0.0; samples = 0; quality = Exact_probes }
    else begin
      let idx = Hashtbl.create k in
      Array.iteri (fun i n -> Hashtbl.replace idx n i) names;
      let weights = Array.make k 0.0 in
      let xs = draw samples in
      let drawn = List.length xs in
      let sum = ref 0.0 in
      let mass = ref 0.0 in
      let payoff lookup = if eval_bool lookup expr then 1.0 else 0.0 in
      List.iter
        (fun x ->
          Array.iteri (fun i name -> weights.(i) <- probe name x) names;
          let s = score payoff names idx weights in
          sum := !sum +. s;
          mass := !mass +. Float.abs s)
        xs;
      let needed = min_support ~delta in
      let quality = if exact_probes then Exact_probes else Sketch_probes in
      if drawn = 0 || !mass < needed then
        Low_support { support = !mass; needed; samples = drawn; quality }
      else
        let value =
          Float.min union (Float.max 0.0 (union *. !sum /. float_of_int drawn))
        in
        Estimate { value; support = !mass; samples = drawn; quality }
    end

  (* Sketch-regime estimator. Drawing from the *merged* union sketch and
     probing the leaf buckets is biased: the merged bucket's coins are the
     leaf buckets' coins, so a drawn sample is (nearly) guaranteed to sit in
     some leaf bucket and the 2^level Horvitz–Thompson weights over-correct.
     Instead we stratify: draw from each leaf's own bucket (sessions flip
     independent coins, so the other leaves' probes are independent of the
     draw), pin the host leaf's weight to 1, and evaluate the multilinear
     extension of a ↦ expr(a) / |{j : a_j}| — the 1/multiplicity importance
     correction that turns per-leaf sums into the union sum:
       |E| = Σ_i |A_i| · E_{x~A_i}[ expr(x) / mult(x) ]. *)
  let estimate_stratified ~expr ~leaf_sizes ~draw_leaf ~probe ~samples ~delta =
    let names = Array.of_list (leaves expr) in
    let k = Array.length names in
    if k > max_leaves then
      invalid_arg
        (Printf.sprintf "Expr.estimate_stratified: %d distinct leaves exceeds the %d cap"
           k max_leaves);
    if samples < 1 then invalid_arg "Expr.estimate_stratified: need samples >= 1";
    let sizes =
      Array.map
        (fun n ->
          match List.assoc_opt n leaf_sizes with
          | Some s -> Float.max 0.0 s
          | None ->
            invalid_arg ("Expr.estimate_stratified: no size for leaf " ^ n))
        names
    in
    let total = Array.fold_left ( +. ) 0.0 sizes in
    if total <= 0.0 then
      Estimate { value = 0.0; support = 0.0; samples = 0; quality = Sketch_probes }
    else begin
      let idx = Hashtbl.create k in
      Array.iteri (fun i n -> Hashtbl.replace idx n i) names;
      let weights = Array.make k 0.0 in
      let payoff lookup =
        if eval_bool lookup expr then begin
          let mult =
            Array.fold_left (fun acc n -> if lookup n then acc + 1 else acc) 0 names
          in
          1.0 /. float_of_int mult
        end
        else 0.0
      in
      let drawn = ref 0 in
      let mass = ref 0.0 in
      let value = ref 0.0 in
      Array.iteri
        (fun i name ->
          if sizes.(i) > 0.0 then begin
            let want =
              Stdlib.max 1
                (int_of_float
                   (Float.round (float_of_int samples *. sizes.(i) /. total)))
            in
            let xs = draw_leaf name want in
            let got = List.length xs in
            if got > 0 then begin
              let sum_i = ref 0.0 in
              List.iter
                (fun x ->
                  Array.iteri
                    (fun j nj ->
                      weights.(j) <- (if j = i then 1.0 else probe nj x))
                    names;
                  let s = score payoff names idx weights in
                  sum_i := !sum_i +. s;
                  mass := !mass +. Float.abs s)
                xs;
              drawn := !drawn + got;
              value := !value +. (sizes.(i) *. !sum_i /. float_of_int got)
            end
          end)
        names;
      let needed = min_support ~delta in
      if !drawn = 0 || !mass < needed then
        Low_support
          { support = !mass; needed; samples = !drawn; quality = Sketch_probes }
      else
        let value = Float.min total (Float.max 0.0 !value) in
        Estimate
          { value; support = !mass; samples = !drawn; quality = Sketch_probes }
    end
end
