module Bitvec = Delphic_util.Bitvec
module Rectangle = Delphic_sets.Rectangle
module Dnf = Delphic_sets.Dnf

exception Parse_error of { line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; msg } ->
      Some (Printf.sprintf "Parse_error (line %d: %s)" line msg)
    | _ -> None)

let parse_error ~lineno fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line = lineno; msg })) fmt

let fold_lines channel f =
  let rec loop acc lineno =
    match input_line channel with
    | exception End_of_file -> List.rev acc
    | line ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then loop acc (lineno + 1)
      else loop (f lineno trimmed :: acc) (lineno + 1)
  in
  loop [] 1

let with_file path f =
  if path = "-" then f stdin
  else begin
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)
  end

let fields line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_int ~lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> parse_error ~lineno "not an integer: %s" s

let rectangle_of_line ?dims ~lineno line =
  let values = List.map (parse_int ~lineno) (fields line) in
  let n = List.length values in
  if n = 0 || n mod 2 <> 0 then
    parse_error ~lineno "need an even, positive number of fields";
  (match dims with
  | Some d when d <> n / 2 ->
    parse_error ~lineno "dimension %d but stream started with %d" (n / 2) d
  | _ -> ());
  let a = Array.of_list values in
  let d = n / 2 in
  match
    Rectangle.create
      ~lo:(Array.init d (fun i -> a.(2 * i)))
      ~hi:(Array.init d (fun i -> a.((2 * i) + 1)))
  with
  | box -> box
  | exception Invalid_argument msg -> parse_error ~lineno "%s" msg

let rectangles_of_channel channel =
  let dims = ref None in
  fold_lines channel (fun lineno line ->
      let box = rectangle_of_line ?dims:!dims ~lineno line in
      if !dims = None then dims := Some (Rectangle.dim box);
      box)

let dnf_term_of_line ~nvars ~lineno line =
  let lits =
    List.map
      (fun s ->
        let v = parse_int ~lineno s in
        if v = 0 then parse_error ~lineno "0 is not a literal";
        { Dnf.var = abs v - 1; positive = v > 0 })
      (fields line)
  in
  match Dnf.create ~nvars lits with
  | term -> term
  | exception Invalid_argument msg -> parse_error ~lineno "%s" msg

let dnf_of_channel ~nvars channel =
  fold_lines channel (fun lineno line -> dnf_term_of_line ~nvars ~lineno line)

let vector_of_line ~lineno line =
  match Bitvec.of_string line with
  | v -> v
  | exception Invalid_argument msg -> parse_error ~lineno "%s" msg

let vectors_of_channel channel = fold_lines channel (fun lineno line -> vector_of_line ~lineno line)

(* Set-expression grammar (the EXPR protocol verb and the CLI query tool):

     expr  := inter (('|' | '\' | '^') inter)*
     inter := atom ('&' atom)*
     atom  := name | '(' expr ')'

   Session names are [A-Za-z0-9_.-]+ (the protocol's session alphabet, which
   is disjoint from every operator).  [&] binds tighter than the additive
   operators, which associate left.  Errors raise {!Parse_error} with [line]
   carrying the 1-based character position in the expression string. *)
let expr_of_string text =
  let module E = Delphic_expr.Expr in
  let n = String.length text in
  let pos = ref 0 in
  let error ?at fmt =
    let at = match at with Some p -> p | None -> !pos + 1 in
    parse_error ~lineno:at fmt
  in
  let skip_ws () =
    while !pos < n && (text.[!pos] = ' ' || text.[!pos] = '\t') do
      incr pos
    done
  in
  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
    | _ -> false
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let rec parse_expr () =
    let left = ref (parse_inter ()) in
    let additive = ref true in
    while !additive do
      skip_ws ();
      match peek () with
      | Some '|' ->
        incr pos;
        left := E.Union (!left, parse_inter ())
      | Some '\\' ->
        incr pos;
        left := E.Diff (!left, parse_inter ())
      | Some '^' ->
        incr pos;
        left := E.Sym_diff (!left, parse_inter ())
      | _ -> additive := false
    done;
    !left
  and parse_inter () =
    let left = ref (parse_atom ()) in
    let more = ref true in
    while !more do
      skip_ws ();
      match peek () with
      | Some '&' ->
        incr pos;
        left := E.Inter (!left, parse_atom ())
      | _ -> more := false
    done;
    !left
  and parse_atom () =
    skip_ws ();
    match peek () with
    | None -> error "expected a session name or '('"
    | Some '(' ->
      let open_at = !pos + 1 in
      incr pos;
      let inner = parse_expr () in
      skip_ws ();
      (match peek () with
      | Some ')' ->
        incr pos;
        inner
      | _ -> error "unclosed '(' opened at column %d" open_at)
    | Some c when is_name_char c ->
      let start = !pos in
      while !pos < n && is_name_char text.[!pos] do
        incr pos
      done;
      E.Leaf (String.sub text start (!pos - start))
    | Some c -> error "expected a session name or '(', got %C" c
  in
  let e = parse_expr () in
  skip_ws ();
  match peek () with
  | None -> e
  | Some c -> error "expected an operator (& | \\ ^), got %C" c

let rectangles_of_file path = with_file path rectangles_of_channel
let dnf_of_file ~nvars path = with_file path (dnf_of_channel ~nvars)
let vectors_of_file path = with_file path vectors_of_channel
