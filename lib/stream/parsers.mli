(** Text-format parsers for streaming inputs from files.

    Formats are line-oriented, one set per line, [#]-comments and blank
    lines skipped:

    - {b boxes}: [lo1 hi1 lo2 hi2 ...] — an axis-parallel box (even number
      of fields, all dimensions consistent within a file);
    - {b DNF terms}: DIMACS-style signed variable list, e.g. [1 -3 5] for
      [x1 ∧ ¬x3 ∧ x5] (1-based; the variable count is supplied by the
      caller);
    - {b test vectors}: ['0']/['1'] strings, e.g. [0110101].

    All parsers raise {!Parse_error} carrying the offending line number on
    malformed input — a dedicated exception, so callers (the CLI, the
    estimation server) can reject one bad line cleanly instead of
    pattern-matching on [Failure] messages.  The [_of_file] variants accept
    ["-"] for stdin, so streams pipe straight into the CLI. *)

exception Parse_error of { line : int; msg : string }
(** Raised by every parser here on malformed input.  [line] is 1-based and,
    for the [_of_line] parsers, whatever the caller supplied as [lineno]
    (e.g. the server's per-session [ADD] counter). *)

(** {1 Single-line parsers}

    These parse one set per call and are what the estimation service's [ADD]
    command uses; the [_of_channel]/[_of_file] parsers below are built on
    them. *)

val rectangle_of_line : ?dims:int -> lineno:int -> string -> Delphic_sets.Rectangle.t
(** [dims], when given, enforces dimensional consistency with the stream's
    earlier boxes. *)

val dnf_term_of_line : nvars:int -> lineno:int -> string -> Delphic_sets.Dnf.t

val vector_of_line : lineno:int -> string -> Delphic_util.Bitvec.t

(** {1 Set expressions} *)

val expr_of_string : string -> Delphic_expr.Expr.t
(** Parse a set expression over session names — the payload of the [EXPR]
    protocol verb.  Grammar (left-associative, [&] binds tighter):

    {v
    expr  := inter (('|' | '\' | '^') inter)*
    inter := atom ('&' atom)*
    atom  := name | '(' expr )'
    v}

    where [name] is [A-Za-z0-9_.-]+ (the session-name alphabet) and the
    operators are union [|], intersection [&], difference [\] and symmetric
    difference [^].  Whitespace between tokens is free.  Raises
    {!Parse_error} with [line] carrying the 1-based {e character position}
    of the offending token in the expression string. *)

(** {1 Whole-stream parsers} *)

val rectangles_of_channel : in_channel -> Delphic_sets.Rectangle.t list

val rectangles_of_file : string -> Delphic_sets.Rectangle.t list

val dnf_of_channel : nvars:int -> in_channel -> Delphic_sets.Dnf.t list

val dnf_of_file : nvars:int -> string -> Delphic_sets.Dnf.t list

val vectors_of_channel : in_channel -> Delphic_util.Bitvec.t list

val vectors_of_file : string -> Delphic_util.Bitvec.t list
