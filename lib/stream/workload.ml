module Rng = Delphic_util.Rng
module Bitvec = Delphic_util.Bitvec
module Comb = Delphic_util.Comb
module Dist = Delphic_util.Dist
module Rectangle = Delphic_sets.Rectangle
module Hypervolume = Delphic_sets.Hypervolume
module Dnf = Delphic_sets.Dnf
module Coverage = Delphic_sets.Coverage
module Singleton = Delphic_sets.Singleton
module Range1d = Delphic_sets.Range1d
module Knapsack = Delphic_sets.Knapsack

module Rectangles = struct
  let box_at rng ~universe ~dim ~max_side anchor =
    let lo = Array.make dim 0 and hi = Array.make dim 0 in
    for i = 0 to dim - 1 do
      let a = Stdlib.max 0 (Stdlib.min (universe - 1) (anchor i)) in
      let side = 1 + Rng.int rng max_side in
      lo.(i) <- a;
      hi.(i) <- Stdlib.min (universe - 1) (a + side - 1)
    done;
    Rectangle.create ~lo ~hi

  let uniform rng ~universe ~dim ~count ~max_side =
    List.init count (fun _ ->
        box_at rng ~universe ~dim ~max_side (fun _ -> Rng.int rng universe))

  let clustered rng ~universe ~dim ~count ~clusters ~spread ~max_side =
    let centres =
      Array.init clusters (fun _ -> Array.init dim (fun _ -> Rng.int rng universe))
    in
    List.init count (fun _ ->
        let c = centres.(Rng.int rng clusters) in
        box_at rng ~universe ~dim ~max_side (fun i ->
            c.(i) + Rng.int_in_range rng ~lo:(-spread) ~hi:spread))

  let nested rng ~universe ~dim ~count =
    (* Shrink a box one layer at a time, then shuffle the arrival order. *)
    let boxes = Array.make count (Rectangle.create ~lo:(Array.make dim 0) ~hi:(Array.make dim (universe - 1))) in
    let lo = Array.make dim 0 and hi = Array.make dim (universe - 1) in
    for i = 0 to count - 1 do
      boxes.(i) <- Rectangle.create ~lo ~hi;
      for d = 0 to dim - 1 do
        if hi.(d) - lo.(d) > 2 then begin
          lo.(d) <- lo.(d) + 1 + Rng.int rng (Stdlib.max 1 ((hi.(d) - lo.(d)) / (2 * count)));
          hi.(d) <- hi.(d) - 1 - Rng.int rng (Stdlib.max 1 ((hi.(d) - lo.(d)) / (2 * count)))
        end
      done
    done;
    Rng.shuffle rng boxes;
    Array.to_list boxes

  let sliding rng ~universe ~dim ~count ~max_side =
    let step = Stdlib.max 1 (universe / Stdlib.max 1 count) in
    List.init count (fun k ->
        box_at rng ~universe ~dim ~max_side (fun _ ->
            (k * step) + Rng.int rng (2 * step)))
end

module Hypervolumes = struct
  let pareto_front rng ~universe ~dim ~count =
    (* Corners on a product-constant trade-off surface: draw exponents on
       the simplex so large coordinates in one objective force small ones
       elsewhere — no corner dominates another in expectation. *)
    List.init count (fun _ ->
        let weights = Array.init dim (fun _ -> Rng.exponential rng) in
        let total = Array.fold_left ( +. ) 0.0 weights in
        let corner =
          Array.map
            (fun w ->
              let frac = w /. total in
              let v = float_of_int universe ** (frac *. float_of_int dim /. 2.0) in
              Stdlib.max 1 (Stdlib.min (universe - 1) (int_of_float v)))
            weights
        in
        Hypervolume.create corner)
end

module Dnf_terms = struct
  let random rng ~nvars ~count ~width =
    if width > nvars then invalid_arg "Dnf_terms.random: width > nvars";
    List.init count (fun _ ->
        let vars = Comb.floyd_sample rng ~n:nvars ~k:width in
        let lits =
          Array.to_list
            (Array.map (fun v -> { Dnf.var = v; positive = Rng.bool rng }) vars)
        in
        Dnf.create ~nvars lits)
end

module Coverage_suites = struct
  let random rng ~nbits ~count ~bias =
    List.init count (fun _ ->
        let v = Bitvec.create ~width:nbits in
        for i = 0 to nbits - 1 do
          Bitvec.set v i (Rng.bernoulli rng bias)
        done;
        v)

  let coverage_sets ~strength vectors =
    List.map (fun vector -> Coverage.create ~vector ~strength) vectors
end

module Singletons = struct
  let uniform rng ~universe ~count =
    List.init count (fun _ -> Singleton.create (Rng.int rng universe))

  let zipf rng ~universe ~count ~exponent =
    let dist = Dist.Zipf.create ~n:universe ~s:exponent in
    List.init count (fun _ -> Singleton.create (Dist.Zipf.sample dist rng))
end

module Ranges = struct
  let uniform rng ~universe ~count ~max_len =
    List.init count (fun _ ->
        let lo = Rng.int rng universe in
        let hi = Stdlib.min (universe - 1) (lo + Rng.int rng max_len) in
        Range1d.create ~lo ~hi)

  let heavy_tailed rng ~universe ~count ~shape =
    if shape <= 0.0 then invalid_arg "Ranges.heavy_tailed: shape must be positive";
    List.init count (fun _ ->
        (* Inverse-CDF Pareto: len = u^(-1/shape), capped at the universe. *)
        let rec positive () =
          let u = Rng.float rng in
          if u > 0.0 then u else positive ()
        in
        let len =
          Stdlib.min (float_of_int universe) (positive () ** (-1.0 /. shape))
        in
        let len = Stdlib.max 1 (int_of_float len) in
        let lo = Rng.int rng (Stdlib.max 1 (universe - len)) in
        Range1d.create ~lo ~hi:(Stdlib.min (universe - 1) (lo + len - 1)))
end

module Orders = struct
  let shuffled rng items =
    let a = Array.of_list items in
    Rng.shuffle rng a;
    Array.to_list a

  let sorted_by measure items =
    List.sort (fun a b -> Float.compare (measure a) (measure b)) items

  let sorted_by_desc measure items =
    List.sort (fun a b -> Float.compare (measure b) (measure a)) items

  let bursty ~copies items =
    if copies <= 0 then invalid_arg "Orders.bursty: copies must be positive";
    List.concat_map (fun x -> List.init copies (fun _ -> x)) items

  let interleaved ~copies items =
    if copies <= 0 then invalid_arg "Orders.interleaved: copies must be positive";
    List.concat (List.init copies (fun _ -> items))
end

module Timestamped = struct
  type 'a event = { at : float; item : 'a }

  let check_rate what rate =
    if not (rate > 0.0 && Float.is_finite rate) then
      invalid_arg (Printf.sprintf "Timestamped.%s: need a positive finite rate" what)

  (* Sum of exponential gaps: a homogeneous Poisson arrival process. *)
  let poisson rng ~rate ~start items =
    check_rate "poisson" rate;
    let clock = ref start in
    List.map
      (fun item ->
        clock := !clock +. (Rng.exponential rng /. rate);
        { at = !clock; item })
      items

  let constant ~rate ~start items =
    check_rate "constant" rate;
    let dt = 1.0 /. rate in
    List.mapi (fun i item -> { at = start +. (float_of_int (i + 1) *. dt); item }) items

  (* Alternate [quiet] seconds of silence with a burst of [burst_len] items
     packed at [burst_rate] — the arrival shape that separates a windowed
     estimate from a full one most sharply. *)
  let bursty rng ~quiet ~burst_len ~burst_rate ~start items =
    check_rate "bursty" burst_rate;
    if not (quiet >= 0.0 && Float.is_finite quiet) then
      invalid_arg "Timestamped.bursty: need quiet >= 0";
    if burst_len < 1 then invalid_arg "Timestamped.bursty: need burst_len >= 1";
    let clock = ref start in
    let in_burst = ref 0 in
    List.map
      (fun item ->
        if !in_burst = 0 then begin
          clock := !clock +. quiet;
          in_burst := burst_len
        end;
        decr in_burst;
        clock := !clock +. (Rng.exponential rng /. burst_rate);
        { at = !clock; item })
      items

  (* Sinusoidally modulated Poisson process by thinning: the instantaneous
     rate is [rate · (1 + swing · sin(2π t / period)) / (1 + swing)],
     peaking once per [period] — a diurnal load curve. *)
  let diurnal rng ~rate ~period ~swing ~start items =
    check_rate "diurnal" rate;
    if not (period > 0.0 && Float.is_finite period) then
      invalid_arg "Timestamped.diurnal: need a positive finite period";
    if not (swing >= 0.0 && swing <= 1.0) then
      invalid_arg "Timestamped.diurnal: need swing in [0, 1]";
    let clock = ref start in
    let next_arrival () =
      (* thin a rate-[rate] Poisson stream against the modulation envelope *)
      let accepted = ref false in
      while not !accepted do
        clock := !clock +. (Rng.exponential rng /. rate);
        let phase = 2.0 *. Float.pi *. !clock /. period in
        let level = (1.0 +. (swing *. sin phase)) /. (1.0 +. swing) in
        if Rng.float rng <= level then accepted := true
      done;
      !clock
    in
    List.map (fun item -> { at = next_arrival (); item }) items

  let items evs = List.map (fun e -> e.item) evs
  let span = function
    | [] -> 0.0
    | first :: _ as evs ->
      let last = List.fold_left (fun _ e -> e.at) first.at evs in
      last -. first.at
end

module Knapsacks = struct
  let random rng ~nvars ~max_weight ~count =
    List.init count (fun _ ->
        let weights = Array.init nvars (fun _ -> 1 + Rng.int rng max_weight) in
        let total = Array.fold_left ( + ) 0 weights in
        let bound = (total / 2) + Rng.int rng (Stdlib.max 1 (total / 4)) in
        Knapsack.create ~weights ~bound)
end
