(** Synthetic set-stream workloads for the experiments and examples.

    Each generator is deterministic given its [Rng.t] and produces the
    stream in arrival order.  The spatial workloads mirror the regimes the
    paper's motivation cares about: uniformly scattered boxes, clustered
    boxes (heavy overlap within clusters), nested boxes (every element
    recurs many times — stressing the last-occurrence deletion logic), and
    sliding windows (temporal locality). *)

module Rectangles : sig
  val uniform :
    Delphic_util.Rng.t ->
    universe:int ->
    dim:int ->
    count:int ->
    max_side:int ->
    Delphic_sets.Rectangle.t list
  (** Boxes with independently uniform corners and side lengths in
      [1, max_side], clipped to [[0, universe-1]^dim]. *)

  val clustered :
    Delphic_util.Rng.t ->
    universe:int ->
    dim:int ->
    count:int ->
    clusters:int ->
    spread:int ->
    max_side:int ->
    Delphic_sets.Rectangle.t list
  (** Boxes whose anchors gather around [clusters] random centres with the
      given coordinate [spread] — high mutual overlap. *)

  val nested :
    Delphic_util.Rng.t ->
    universe:int ->
    dim:int ->
    count:int ->
    Delphic_sets.Rectangle.t list
  (** A chain of boxes each containing the next, streamed in random order:
      maximal element recurrence. *)

  val sliding :
    Delphic_util.Rng.t ->
    universe:int ->
    dim:int ->
    count:int ->
    max_side:int ->
    Delphic_sets.Rectangle.t list
  (** Anchors drift along the diagonal, so consecutive boxes overlap but the
      stream sweeps the whole space. *)
end

module Hypervolumes : sig
  val pareto_front :
    Delphic_util.Rng.t ->
    universe:int ->
    dim:int ->
    count:int ->
    Delphic_sets.Hypervolume.t list
  (** Origin-rooted boxes whose corners approximate a Pareto front: corners
      are sampled on a trade-off surface so no box dominates the union. *)
end

module Dnf_terms : sig
  val random :
    Delphic_util.Rng.t ->
    nvars:int ->
    count:int ->
    width:int ->
    Delphic_sets.Dnf.t list
  (** [count] independent terms of exactly [width] distinct literals with
      random polarities — the standard random k-DNF model. *)
end

module Coverage_suites : sig
  val random :
    Delphic_util.Rng.t ->
    nbits:int ->
    count:int ->
    bias:float ->
    Delphic_util.Bitvec.t list
  (** Test vectors with i.i.d. bits equal to 1 with probability [bias]. *)

  val coverage_sets :
    strength:int -> Delphic_util.Bitvec.t list -> Delphic_sets.Coverage.t list
  (** Lift vectors to their [Cov_t] Delphic sets. *)
end

module Singletons : sig
  val uniform : Delphic_util.Rng.t -> universe:int -> count:int -> Delphic_sets.Singleton.t list

  val zipf :
    Delphic_util.Rng.t ->
    universe:int ->
    count:int ->
    exponent:float ->
    Delphic_sets.Singleton.t list
  (** Heavy duplication: value [i] appears with probability ∝ 1/(i+1)^s. *)
end

module Ranges : sig
  val uniform :
    Delphic_util.Rng.t ->
    universe:int ->
    count:int ->
    max_len:int ->
    Delphic_sets.Range1d.t list

  val heavy_tailed :
    Delphic_util.Rng.t ->
    universe:int ->
    count:int ->
    shape:float ->
    Delphic_sets.Range1d.t list
  (** Pareto-distributed lengths (shape parameter [shape] > 0; smaller =
      heavier tail), clipped to the universe — the blocklist/CIDR-like
      regime of a few huge ranges among many tiny ones. *)
end

module Orders : sig
  (** Stream-order transformations over a fixed pool — VATIC's guarantee is
      oblivious to arrival order (only last occurrences matter), and E11
      verifies that empirically. *)

  val shuffled : Delphic_util.Rng.t -> 'a list -> 'a list

  val sorted_by : ('a -> float) -> 'a list -> 'a list
  (** Ascending in the measure (e.g. cardinality). *)

  val sorted_by_desc : ('a -> float) -> 'a list -> 'a list

  val bursty : copies:int -> 'a list -> 'a list
  (** Each item repeated [copies] times consecutively. *)

  val interleaved : copies:int -> 'a list -> 'a list
  (** The whole pool repeated [copies] times back-to-back. *)
end

module Timestamped : sig
  (** Arrival-time processes: stamp an (already ordered) item stream with
      logical ingest times, for the sliding-window experiments.  All clocks
      are seconds from an arbitrary origin [start]; every generator is
      deterministic given its [Rng.t] and produces non-decreasing stamps. *)

  type 'a event = { at : float; item : 'a }

  val poisson :
    Delphic_util.Rng.t -> rate:float -> start:float -> 'a list -> 'a event list
  (** Homogeneous Poisson arrivals at [rate] items/second (i.i.d.
      exponential gaps). *)

  val constant : rate:float -> start:float -> 'a list -> 'a event list
  (** Evenly spaced arrivals, one every [1/rate] seconds. *)

  val bursty :
    Delphic_util.Rng.t ->
    quiet:float ->
    burst_len:int ->
    burst_rate:float ->
    start:float ->
    'a list ->
    'a event list
  (** [quiet] seconds of silence, then [burst_len] items at [burst_rate],
      repeating — the shape that separates a windowed estimate from a full
      one most sharply. *)

  val diurnal :
    Delphic_util.Rng.t ->
    rate:float ->
    period:float ->
    swing:float ->
    start:float ->
    'a list ->
    'a event list
  (** Poisson arrivals thinned against a sinusoidal envelope: instantaneous
      rate [rate · (1 + swing · sin(2πt/period)) / (1 + swing)], peaking
      once per [period].  [swing] in [0, 1]; 0 degenerates to {!poisson}. *)

  val items : 'a event list -> 'a list
  (** Drop the stamps. *)

  val span : 'a event list -> float
  (** Last stamp minus first (0 on streams shorter than 2). *)
end

module Knapsacks : sig
  val random :
    Delphic_util.Rng.t ->
    nvars:int ->
    max_weight:int ->
    count:int ->
    Delphic_sets.Knapsack.t list
  (** Instances with uniform weights in [1, max_weight] and budget near half
      the total weight — the dense counting regime. *)
end
