(* Bigint: unit tests on edge cases plus qcheck properties cross-checking
   against native int arithmetic (on inputs small enough not to overflow)
   and internal algebraic laws on large values. *)

module B = Delphic_util.Bigint

let bi = Alcotest.testable B.pp B.equal

let test_constants () =
  Alcotest.check bi "zero" B.zero (B.of_int 0);
  Alcotest.check bi "one" B.one (B.of_int 1);
  Alcotest.check bi "two" B.two (B.of_int 2);
  Alcotest.(check bool) "zero is zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "one not zero" false (B.is_zero B.one)

let test_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Bigint.of_int: negative")
    (fun () -> ignore (B.of_int (-1)))

let test_roundtrip_int () =
  List.iter
    (fun n -> Alcotest.(check (option int)) "roundtrip" (Some n) (B.to_int (B.of_int n)))
    [ 0; 1; 42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 45; max_int ]

let test_to_int_overflow () =
  let big = B.pow2 100 in
  Alcotest.(check (option int)) "too big" None (B.to_int big);
  Alcotest.(check bool) "fits_int false" false (B.fits_int big)

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (B.to_string (B.of_string s)))
    [ "0"; "1"; "999999999"; "1000000000"; "123456789012345678901234567890" ]

let test_string_known_pow () =
  Alcotest.(check string) "2^100"
    "1267650600228229401496703205376"
    (B.to_string (B.pow2 100));
  Alcotest.(check string) "10^30"
    "1000000000000000000000000000000"
    (B.to_string (B.pow (B.of_int 10) 30))

let test_add_sub_large () =
  let a = B.of_string "340282366920938463463374607431768211456" (* 2^128 *) in
  let b = B.of_string "18446744073709551616" (* 2^64 *) in
  Alcotest.check bi "(a+b)-b = a" a (B.sub (B.add a b) b);
  Alcotest.check bi "a-a = 0" B.zero (B.sub a a)

let test_sub_negative_raises () =
  Alcotest.check_raises "negative result"
    (Invalid_argument "Bigint.sub: negative result") (fun () ->
      ignore (B.sub B.one B.two))

let test_mul_known () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  Alcotest.(check string) "product"
    "121932631356500531347203169112635269"
    (B.to_string (B.mul a b))

let test_divmod () =
  let a = B.of_string "123456789123456789123456789" in
  let q, r = B.divmod_int a 1000 in
  Alcotest.(check string) "quotient" "123456789123456789123456" (B.to_string q);
  Alcotest.(check int) "remainder" 789 r;
  Alcotest.check_raises "zero divisor"
    (Invalid_argument "Bigint.divmod_int: need 0 < d < 2^31") (fun () ->
      ignore (B.divmod_int a 0))

let test_shifts () =
  let a = B.of_string "987654321987654321" in
  Alcotest.check bi "shift roundtrip" a (B.shift_right (B.shift_left a 100) 100);
  Alcotest.check bi "shift_left = mul 2^k" (B.mul a (B.pow2 37)) (B.shift_left a 37);
  Alcotest.check bi "right shift to zero" B.zero (B.shift_right a 200)

let test_bit_length () =
  Alcotest.(check int) "zero" 0 (B.bit_length B.zero);
  Alcotest.(check int) "one" 1 (B.bit_length B.one);
  Alcotest.(check int) "255" 8 (B.bit_length (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.bit_length (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.bit_length (B.pow2 100))

let test_log2 () =
  Alcotest.(check bool) "log2 2^100 = 100" true
    (Float.abs (B.log2 (B.pow2 100) -. 100.0) < 1e-9);
  Alcotest.(check bool) "log2 1000" true
    (Float.abs (B.log2 (B.of_int 1000) -. 9.9657842847) < 1e-6);
  Alcotest.(check bool) "log2 huge" true
    (Float.abs (B.log2 (B.pow2 5000) -. 5000.0) < 1e-6)

let test_to_float () =
  Alcotest.(check (float 0.0)) "exact small" 12345.0 (B.to_float (B.of_int 12345));
  let v = B.to_float (B.pow2 80) in
  Alcotest.(check bool) "2^80" true (Float.abs ((v /. Float.ldexp 1.0 80) -. 1.0) < 1e-12)

let test_compare_orders () =
  let values =
    List.map B.of_string
      [ "0"; "1"; "2"; "1073741824"; "18446744073709551616"; "99999999999999999999999" ]
  in
  let rec pairs = function
    | [] -> ()
    | x :: rest ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "strictly increasing" true (B.compare x y < 0))
        rest;
      pairs rest
  in
  pairs values

let test_min_max () =
  let a = B.of_int 5 and b = B.of_int 9 in
  Alcotest.check bi "min" a (B.min a b);
  Alcotest.check bi "max" b (B.max a b)

let test_random_below () =
  let rng = Delphic_util.Rng.create ~seed:42 in
  (* Small bound: exercise the native path. *)
  for _ = 1 to 1000 do
    let v = B.random_below rng (B.of_int 17) in
    Alcotest.(check bool) "in range" true (B.compare v (B.of_int 17) < 0)
  done;
  (* Large bound: exercise the limb path; also check it actually spreads. *)
  let bound = B.pow2 100 in
  let top_half = ref 0 in
  for _ = 1 to 200 do
    let v = B.random_below rng bound in
    Alcotest.(check bool) "below bound" true (B.compare v bound < 0);
    if B.compare v (B.pow2 99) >= 0 then incr top_half
  done;
  Alcotest.(check bool) "spreads over range" true (!top_half > 60 && !top_half < 140)

(* qcheck properties: agree with native ints on small values. *)
let small_nat = QCheck.map abs QCheck.small_int

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches int" ~count:500
    (QCheck.pair small_nat small_nat) (fun (a, b) ->
      B.to_int (B.add (B.of_int a) (B.of_int b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches int" ~count:500
    (QCheck.pair small_nat small_nat) (fun (a, b) ->
      B.to_int (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let prop_sub_matches_int =
  QCheck.Test.make ~name:"sub matches int" ~count:500
    (QCheck.pair small_nat small_nat) (fun (a, b) ->
      let hi = max a b and lo = min a b in
      B.to_int (B.sub (B.of_int hi) (B.of_int lo)) = Some (hi - lo))

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"divmod matches int" ~count:500
    (QCheck.pair small_nat (QCheck.int_range 1 10_000)) (fun (a, d) ->
      let q, r = B.divmod_int (B.of_int a) d in
      B.to_int q = Some (a / d) && r = a mod d)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:500
    (QCheck.list_of_size (QCheck.Gen.int_range 1 40) (QCheck.int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      (* Strip leading zeros for the comparison. *)
      let canonical =
        let s' = ref s in
        while String.length !s' > 1 && !s'.[0] = '0' do
          s' := String.sub !s' 1 (String.length !s' - 1)
        done;
        !s'
      in
      B.to_string (B.of_string s) = canonical)

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add (large)" ~count:200
    (QCheck.triple small_nat small_nat small_nat) (fun (a, b, c) ->
      (* Inflate into multi-limb territory. *)
      let big x = B.add (B.shift_left (B.of_int (x + 1)) 90) (B.of_int x) in
      let a = big a and b = big b and c = big c in
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

(* Large-operand properties: random ~100-bit values built from int pairs. *)
let big_value =
  QCheck.map
    (fun (a, b, k) ->
      let a = abs a and b = abs b and k = 40 + (abs k mod 60) in
      B.add (B.shift_left (B.of_int (a + 1)) k) (B.of_int b))
    (QCheck.triple QCheck.int QCheck.int QCheck.small_int)

let prop_add_sub_roundtrip_large =
  QCheck.Test.make ~name:"(a+b)-b = a (multi-limb)" ~count:300
    (QCheck.pair big_value big_value) (fun (a, b) ->
      B.equal (B.sub (B.add a b) b) a)

let prop_divmod_reconstructs_large =
  QCheck.Test.make ~name:"a = q*d + r (multi-limb)" ~count:300
    (QCheck.pair big_value (QCheck.int_range 1 1_000_000)) (fun (a, d) ->
      let q, r = B.divmod_int a d in
      r >= 0 && r < d && B.equal a (B.add (B.mul_int q d) (B.of_int r)))

let prop_shift_is_pow2_mul =
  QCheck.Test.make ~name:"shift_left k = mul 2^k (multi-limb)" ~count:200
    (QCheck.pair big_value (QCheck.int_range 0 200)) (fun (a, k) ->
      B.equal (B.shift_left a k) (B.mul a (B.pow2 k)))

let prop_compare_consistent_with_sub =
  QCheck.Test.make ~name:"compare consistent with sub" ~count:300
    (QCheck.pair big_value big_value) (fun (a, b) ->
      match B.compare a b with
      | 0 -> B.equal a b
      | c when c > 0 -> not (B.is_zero (B.sub a b))
      | _ -> not (B.is_zero (B.sub b a)))

let prop_string_roundtrip_large =
  QCheck.Test.make ~name:"decimal roundtrip (multi-limb)" ~count:200 big_value
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_mul_commutative_associative =
  QCheck.Test.make ~name:"mul commutative+associative (multi-limb)" ~count:150
    (QCheck.triple big_value big_value big_value) (fun (a, b, c) ->
      B.equal (B.mul a b) (B.mul b a)
      && B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)))

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_add_matches_int;
      prop_mul_matches_int;
      prop_sub_matches_int;
      prop_divmod_matches_int;
      prop_string_roundtrip;
      prop_mul_distributes;
      prop_add_sub_roundtrip_large;
      prop_divmod_reconstructs_large;
      prop_shift_is_pow2_mul;
      prop_compare_consistent_with_sub;
      prop_string_roundtrip_large;
      prop_mul_commutative_associative;
    ]

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "of_int rejects negatives" `Quick test_of_int_negative;
    Alcotest.test_case "int roundtrip" `Quick test_roundtrip_int;
    Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "known powers" `Quick test_string_known_pow;
    Alcotest.test_case "add/sub large" `Quick test_add_sub_large;
    Alcotest.test_case "sub negative raises" `Quick test_sub_negative_raises;
    Alcotest.test_case "mul known product" `Quick test_mul_known;
    Alcotest.test_case "divmod" `Quick test_divmod;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "bit_length" `Quick test_bit_length;
    Alcotest.test_case "log2" `Quick test_log2;
    Alcotest.test_case "to_float" `Quick test_to_float;
    Alcotest.test_case "compare orders" `Quick test_compare_orders;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "random_below" `Quick test_random_below;
  ]
  @ qcheck_suite
