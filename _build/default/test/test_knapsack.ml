(* Knapsack family: exact DP counting vs brute force, exact-uniform
   sampling, and the rounded-DP approximate oracle's (alpha, eta) bounds. *)

module Knapsack = Delphic_sets.Knapsack
module Bitvec = Delphic_util.Bitvec
module B = Delphic_util.Bigint
module Rng = Delphic_util.Rng

let brute_count weights bound =
  let n = Array.length weights in
  let count = ref 0 in
  for x = 0 to (1 lsl n) - 1 do
    let w = ref 0 in
    for i = 0 to n - 1 do
      if (x lsr i) land 1 = 1 then w := !w + weights.(i)
    done;
    if !w <= bound then incr count
  done;
  !count

let test_count_matches_brute_force () =
  let rng = Rng.create ~seed:71 in
  for _ = 1 to 30 do
    let n = 1 + Rng.int rng 10 in
    let weights = Array.init n (fun _ -> 1 + Rng.int rng 20) in
    let bound = Rng.int rng 60 in
    let k = Knapsack.create ~weights ~bound in
    Alcotest.(check int) "DP = brute force" (brute_count weights bound)
      (B.to_int_exn (Knapsack.cardinality k))
  done

let test_edge_cases () =
  (* bound 0: only the all-zero assignment. *)
  let k = Knapsack.create ~weights:[| 3; 5 |] ~bound:0 in
  Alcotest.(check string) "only empty solution" "1" (B.to_string (Knapsack.cardinality k));
  (* bound >= total: all 2^n assignments. *)
  let k = Knapsack.create ~weights:[| 1; 2; 3 |] ~bound:100 in
  Alcotest.(check string) "full cube" "8" (B.to_string (Knapsack.cardinality k));
  Alcotest.check_raises "non-positive weight"
    (Invalid_argument "Knapsack.create: weights must be positive") (fun () ->
      ignore (Knapsack.create ~weights:[| 0 |] ~bound:3))

let test_membership () =
  let k = Knapsack.create ~weights:[| 4; 3; 2 |] ~bound:5 in
  Alcotest.(check bool) "101 weighs 6" false (Knapsack.mem k (Bitvec.of_string "101"));
  Alcotest.(check bool) "011 weighs 5" true (Knapsack.mem k (Bitvec.of_string "011"));
  Alcotest.(check bool) "wrong width" false (Knapsack.mem k (Bitvec.of_string "01"))

let test_sampling_uniform () =
  let weights = [| 4; 3; 2; 5 |] and bound = 7 in
  let k = Knapsack.create ~weights ~bound in
  let card = B.to_int_exn (Knapsack.cardinality k) in
  let rng = Rng.create ~seed:72 in
  let counts = Hashtbl.create 16 in
  let draws = 30_000 in
  for _ = 1 to draws do
    let x = Knapsack.sample k rng in
    Alcotest.(check bool) "sample is a solution" true (Knapsack.mem k x);
    let key = Bitvec.to_string x in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all solutions reached" card (Hashtbl.length counts);
  let expected = float_of_int draws /. float_of_int card in
  Hashtbl.iter
    (fun _ c ->
      if Float.abs (float_of_int c -. expected) > 6.0 *. sqrt expected then
        Alcotest.failf "solution frequency %d far from %.1f" c expected)
    counts

let test_approx_cardinality_within_alpha () =
  let rng = Rng.create ~seed:73 in
  let rng2 = Rng.create ~seed:74 in
  for _ = 1 to 20 do
    let n = 6 + Rng.int rng 8 in
    let weights = Array.init n (fun _ -> 1 + Rng.int rng 15) in
    let bound = 10 + Rng.int rng 50 in
    let exact = Knapsack.create ~weights ~bound in
    let approx = Knapsack.Approx.create ~sigbits:6 exact in
    let truth = B.to_float (Knapsack.cardinality exact) in
    let claimed = B.to_float (Knapsack.Approx.approx_cardinality approx rng2) in
    let alpha = Knapsack.Approx.alpha approx in
    Alcotest.(check bool) "rounded count never above exact" true (claimed <= truth);
    Alcotest.(check bool)
      (Printf.sprintf "within 1/(1+alpha)=%.3f: %.0f vs %.0f" alpha claimed truth)
      true
      (claimed >= truth /. (1.0 +. alpha))
  done

let test_approx_sampling_within_eta () =
  let weights = [| 4; 3; 2; 5 |] and bound = 7 in
  let exact = Knapsack.create ~weights ~bound in
  let approx = Knapsack.Approx.create ~sigbits:3 exact in
  let eta = Knapsack.Approx.eta approx in
  let card = B.to_float (Knapsack.cardinality exact) in
  let rng = Rng.create ~seed:75 in
  let counts = Hashtbl.create 16 in
  let draws = 60_000 in
  for _ = 1 to draws do
    let x = Knapsack.Approx.approx_sample approx rng in
    Alcotest.(check bool) "sample is a solution" true (Knapsack.mem exact x);
    let key = Bitvec.to_string x in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  (* Every solution's empirical frequency must lie within the eta window
     (with generous sampling slack). *)
  Hashtbl.iter
    (fun _ c ->
      let p_hat = float_of_int c /. float_of_int draws in
      let lo = 1.0 /. ((1.0 +. eta) *. card) /. 1.3 in
      let hi = (1.0 +. eta) /. card *. 1.3 in
      if p_hat < lo || p_hat > hi then
        Alcotest.failf "frequency %.5f outside eta window [%.5f, %.5f]" p_hat lo hi)
    counts

let test_approx_validation () =
  let exact = Knapsack.create ~weights:[| 1; 2 |] ~bound:2 in
  Alcotest.check_raises "sigbits >= 2"
    (Invalid_argument "Knapsack.Approx.create: sigbits must be >= 2") (fun () ->
      ignore (Knapsack.Approx.create ~sigbits:1 exact))

let suite =
  [
    Alcotest.test_case "DP count = brute force" `Quick test_count_matches_brute_force;
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    Alcotest.test_case "membership" `Quick test_membership;
    Alcotest.test_case "exact sampling uniform" `Quick test_sampling_uniform;
    Alcotest.test_case "approx cardinality within alpha" `Quick test_approx_cardinality_within_alpha;
    Alcotest.test_case "approx sampling within eta" `Quick test_approx_sampling_within_eta;
    Alcotest.test_case "approx validation" `Quick test_approx_validation;
  ]
