(* Bit vectors: indexing, multi-word widths, extraction, string I/O, and the
   canonical-high-bits invariant that equality and hashing rely on. *)

module Bitvec = Delphic_util.Bitvec
module Rng = Delphic_util.Rng

let test_create_zero () =
  let v = Bitvec.create ~width:100 in
  Alcotest.(check int) "width" 100 (Bitvec.width v);
  for i = 0 to 99 do
    Alcotest.(check bool) "zeroed" false (Bitvec.get v i)
  done;
  Alcotest.(check int) "popcount 0" 0 (Bitvec.popcount v)

let test_set_get () =
  let v = Bitvec.create ~width:130 in
  (* Hit bits straddling the 62-bit word boundaries. *)
  List.iter (fun i -> Bitvec.set v i true) [ 0; 61; 62; 63; 123; 124; 129 ];
  List.iter
    (fun i -> Alcotest.(check bool) (Printf.sprintf "bit %d" i) true (Bitvec.get v i))
    [ 0; 61; 62; 63; 123; 124; 129 ];
  Alcotest.(check bool) "untouched" false (Bitvec.get v 64);
  Alcotest.(check int) "popcount" 7 (Bitvec.popcount v);
  Bitvec.set v 62 false;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 62);
  Alcotest.(check int) "popcount after clear" 6 (Bitvec.popcount v)

let test_bounds () =
  let v = Bitvec.create ~width:10 in
  Alcotest.check_raises "get oob" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 10));
  Alcotest.check_raises "set oob" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> Bitvec.set v (-1) true)

let test_copy_independent () =
  let v = Bitvec.create ~width:20 in
  Bitvec.set v 3 true;
  let w = Bitvec.copy v in
  Bitvec.set w 4 true;
  Alcotest.(check bool) "copy has old bit" true (Bitvec.get w 3);
  Alcotest.(check bool) "original unaffected" false (Bitvec.get v 4)

let test_equal_hash () =
  let rng = Rng.create ~seed:51 in
  for _ = 1 to 100 do
    let v = Bitvec.random rng ~width:200 in
    let w = Bitvec.copy v in
    Alcotest.(check bool) "copies equal" true (Bitvec.equal v w);
    Alcotest.(check int) "equal implies same hash" (Bitvec.hash v) (Bitvec.hash w);
    Bitvec.set w 199 (not (Bitvec.get w 199));
    Alcotest.(check bool) "flip breaks equality" false (Bitvec.equal v w)
  done

let test_random_respects_width () =
  (* The random generator must clear bits beyond the width, otherwise
     equality on logically equal vectors would break. *)
  let rng = Rng.create ~seed:52 in
  for _ = 1 to 50 do
    let v = Bitvec.random rng ~width:65 in
    let w = Bitvec.create ~width:65 in
    for i = 0 to 64 do
      Bitvec.set w i (Bitvec.get v i)
    done;
    Alcotest.(check bool) "canonical representation" true (Bitvec.equal v w)
  done

let test_random_is_random () =
  let rng = Rng.create ~seed:53 in
  let total = ref 0 in
  for _ = 1 to 100 do
    total := !total + Bitvec.popcount (Bitvec.random rng ~width:100)
  done;
  (* 10,000 fair bits: expect ~5000, sd = 50. *)
  Alcotest.(check bool) "roughly half ones" true (abs (!total - 5000) < 300)

let test_extract () =
  let v = Bitvec.of_string "10110010" in
  let e = Bitvec.extract v [| 0; 2; 3; 6 |] in
  Alcotest.(check string) "extracted" "1111" (Bitvec.to_string e);
  let e2 = Bitvec.extract v [| 1; 4; 7 |] in
  Alcotest.(check string) "extracted zeros" "000" (Bitvec.to_string e2)

let test_string_roundtrip () =
  let s = "1010011101" in
  Alcotest.(check string) "roundtrip" s (Bitvec.to_string (Bitvec.of_string s));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Bitvec.of_string: expected only '0'/'1'") (fun () ->
      ignore (Bitvec.of_string "10x"))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"string roundtrip (random)" ~count:300
    (QCheck.string_gen_of_size (QCheck.Gen.int_range 0 150)
       (QCheck.Gen.oneofl [ '0'; '1' ]))
    (fun s -> Bitvec.to_string (Bitvec.of_string s) = s)

let suite =
  [
    Alcotest.test_case "create zero" `Quick test_create_zero;
    Alcotest.test_case "set/get across words" `Quick test_set_get;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "equal/hash consistency" `Quick test_equal_hash;
    Alcotest.test_case "random respects width" `Quick test_random_respects_width;
    Alcotest.test_case "random is random" `Quick test_random_is_random;
    Alcotest.test_case "extract" `Quick test_extract;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
  ]
