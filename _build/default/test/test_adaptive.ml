(* Adaptive exact-then-sketch estimator: exactness in the small regime, a
   clean handover to the sketch, and the tiny-universe exact-only mode. *)

module Rng = Delphic_util.Rng
module Range1d = Delphic_sets.Range1d
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload
module A = Delphic_core.Adaptive.Make (Range1d)

let log2f x = log x /. log 2.0

let test_small_stream_is_exact () =
  let t =
    A.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:1 ()
  in
  let ranges =
    [ Range1d.create ~lo:0 ~hi:9; Range1d.create ~lo:5 ~hi:14; Range1d.create ~lo:100 ~hi:100 ]
  in
  List.iter (A.process t) ranges;
  Alcotest.(check bool) "still exact" true (A.is_exact t);
  Alcotest.(check (float 0.0)) "exactly 16" 16.0 (A.estimate t);
  Alcotest.(check (option int)) "exact size" (Some 16) (A.exact_size t);
  Alcotest.(check int) "items" 3 (A.items_processed t)

let test_handover_to_sketch () =
  let gen = Rng.create ~seed:131 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:200 ~max_len:5000 in
  let truth = float_of_int (Exact.range_union pool) in
  let t = A.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:2 () in
  List.iter (A.process t) pool;
  (* The union (~hundreds of thousands) far exceeds any exact budget. *)
  Alcotest.(check bool) "switched to sketch" false (A.is_exact t);
  Alcotest.(check (option int)) "no exact size" None (A.exact_size t);
  let est = A.estimate t in
  Alcotest.(check bool)
    (Printf.sprintf "sketch estimate %.0f near %.0f" est truth)
    true
    (Float.abs (est -. truth) <= 0.3 *. truth)

let test_exact_capacity_override () =
  let t =
    A.create ~exact_capacity:10 ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:3 ()
  in
  A.process t (Range1d.create ~lo:0 ~hi:7);
  Alcotest.(check bool) "8 fits in 10" true (A.is_exact t);
  A.process t (Range1d.create ~lo:100 ~hi:110);
  Alcotest.(check bool) "second set busts the cap" false (A.is_exact t)

let test_tiny_universe_exact_only () =
  (* log2|U| = 8 is below VATIC's floor at eps = 0.1; adaptive must still
     deliver exact answers. *)
  let t = A.create ~epsilon:0.1 ~delta:0.1 ~log2_universe:8.0 ~seed:4 () in
  A.process t (Range1d.create ~lo:0 ~hi:99);
  A.process t (Range1d.create ~lo:50 ~hi:149);
  Alcotest.(check bool) "exact" true (A.is_exact t);
  Alcotest.(check (float 0.0)) "150 exactly" 150.0 (A.estimate t)

let test_tiny_universe_overflow_raises () =
  let t =
    A.create ~exact_capacity:5 ~epsilon:0.1 ~delta:0.1 ~log2_universe:8.0 ~seed:5 ()
  in
  match A.process t (Range1d.create ~lo:0 ~hi:100) with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected Failure on overflowing exact-only mode"

let test_estimate_continuity_at_handover () =
  (* The estimate just after handover must still be in the right ballpark,
     because the sketch saw the whole stream. *)
  let t =
    A.create ~exact_capacity:2000 ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:6 ()
  in
  let processed = ref [] in
  let gen = Rng.create ~seed:132 in
  let check_after r =
    A.process t r;
    processed := r :: !processed;
    let truth = float_of_int (Exact.range_union !processed) in
    let est = A.estimate t in
    if Float.abs (est -. truth) > 0.45 *. truth then
      Alcotest.failf "estimate %.0f drifted from truth %.0f (exact=%b)" est truth
        (A.is_exact t)
  in
  (* Grow the union past the cap in small steps, checking continuously. *)
  for _ = 1 to 60 do
    let lo = Rng.int gen 100_000 in
    check_after (Range1d.create ~lo ~hi:(lo + 99))
  done

let test_bad_parameters_still_raise () =
  (* Only the universe-size floor may fall back to exact mode; bad epsilon
     or delta must raise, not silently degrade. *)
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      A.create ~epsilon:0.0 ~delta:0.2 ~log2_universe:20.0 ~seed:1 ());
  expect_invalid (fun () ->
      A.create ~epsilon:1.5 ~delta:0.2 ~log2_universe:20.0 ~seed:1 ());
  expect_invalid (fun () ->
      A.create ~epsilon:0.2 ~delta:0.0 ~log2_universe:20.0 ~seed:1 ());
  expect_invalid (fun () ->
      A.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:(-3.0) ~seed:1 ());
  expect_invalid (fun () ->
      A.create ~exact_capacity:0 ~epsilon:0.2 ~delta:0.2 ~log2_universe:20.0 ~seed:1 ())

let suite =
  [
    Alcotest.test_case "small stream stays exact" `Quick test_small_stream_is_exact;
    Alcotest.test_case "handover to sketch" `Quick test_handover_to_sketch;
    Alcotest.test_case "exact capacity override" `Quick test_exact_capacity_override;
    Alcotest.test_case "tiny universe: exact-only mode" `Quick test_tiny_universe_exact_only;
    Alcotest.test_case "tiny universe: overflow raises" `Quick test_tiny_universe_overflow_raises;
    Alcotest.test_case "estimate continuity at handover" `Quick test_estimate_continuity_at_handover;
    Alcotest.test_case "bad parameters still raise" `Quick test_bad_parameters_still_raise;
  ]
