(* BDD substrate: construction, boolean algebra via evaluation, canonicity,
   and sat-counting against brute-force enumeration. *)

module Bdd = Delphic_sets.Bdd
module Dnf = Delphic_sets.Dnf
module Bitvec = Delphic_util.Bitvec
module B = Delphic_util.Bigint
module Rng = Delphic_util.Rng

let assignment_of_int n x =
  let v = Bitvec.create ~width:n in
  for i = 0 to n - 1 do
    Bitvec.set v i ((x lsr i) land 1 = 1)
  done;
  v

let test_terminals () =
  let m = Bdd.create_manager ~nvars:3 in
  Alcotest.(check string) "count bot" "0" (B.to_string (Bdd.count m Bdd.bot));
  Alcotest.(check string) "count top = 2^3" "8" (B.to_string (Bdd.count m Bdd.top));
  Alcotest.(check bool) "eval bot" false (Bdd.eval m Bdd.bot (assignment_of_int 3 5));
  Alcotest.(check bool) "eval top" true (Bdd.eval m Bdd.top (assignment_of_int 3 5))

let test_var () =
  let m = Bdd.create_manager ~nvars:4 in
  let x2 = Bdd.var m 2 in
  Alcotest.(check string) "x2 has 8 solutions" "8" (B.to_string (Bdd.count m x2));
  for x = 0 to 15 do
    Alcotest.(check bool) "eval = bit" ((x lsr 2) land 1 = 1)
      (Bdd.eval m x2 (assignment_of_int 4 x))
  done;
  let nx2 = Bdd.nvar m 2 in
  Alcotest.(check string) "~x2 has 8" "8" (B.to_string (Bdd.count m nx2));
  Alcotest.(check bool) "not of var" true (Bdd.equal (Bdd.bdd_not m x2) nx2)

let test_boolean_laws () =
  let m = Bdd.create_manager ~nvars:5 in
  let rng = Rng.create ~seed:81 in
  (* Random small DNFs as node generators. *)
  let random_node () =
    let terms =
      Delphic_stream.Workload.Dnf_terms.random rng ~nvars:5
        ~count:(1 + Rng.int rng 4) ~width:(1 + Rng.int rng 3)
    in
    Bdd.of_dnf m terms
  in
  for _ = 1 to 50 do
    let a = random_node () and b = random_node () in
    (* Canonicity: verify algebra laws as node equalities. *)
    Alcotest.(check bool) "a&b = b&a" true (Bdd.equal (Bdd.bdd_and m a b) (Bdd.bdd_and m b a));
    Alcotest.(check bool) "a|b = b|a" true (Bdd.equal (Bdd.bdd_or m a b) (Bdd.bdd_or m b a));
    Alcotest.(check bool) "a&a = a" true (Bdd.equal (Bdd.bdd_and m a a) a);
    Alcotest.(check bool) "double negation" true (Bdd.equal (Bdd.bdd_not m (Bdd.bdd_not m a)) a);
    Alcotest.(check bool) "de morgan" true
      (Bdd.equal
         (Bdd.bdd_not m (Bdd.bdd_and m a b))
         (Bdd.bdd_or m (Bdd.bdd_not m a) (Bdd.bdd_not m b)));
    (* Evaluation agrees with the boolean structure on every assignment. *)
    let conj = Bdd.bdd_and m a b and disj = Bdd.bdd_or m a b in
    for x = 0 to 31 do
      let v = assignment_of_int 5 x in
      let ea = Bdd.eval m a v and eb = Bdd.eval m b v in
      Alcotest.(check bool) "and" (ea && eb) (Bdd.eval m conj v);
      Alcotest.(check bool) "or" (ea || eb) (Bdd.eval m disj v)
    done
  done

let test_of_term_matches_dnf () =
  let m = Bdd.create_manager ~nvars:6 in
  let rng = Rng.create ~seed:82 in
  for _ = 1 to 30 do
    let term =
      List.hd (Delphic_stream.Workload.Dnf_terms.random rng ~nvars:6 ~count:1 ~width:3)
    in
    let node = Bdd.of_term m term in
    for x = 0 to 63 do
      let v = assignment_of_int 6 x in
      Alcotest.(check bool) "term eval" (Dnf.satisfies term v) (Bdd.eval m node v)
    done;
    Alcotest.(check bool) "count = 2^(n-k)" true
      (B.equal (Bdd.count m node) (Dnf.cardinality term))
  done

let test_count_matches_enumeration () =
  let rng = Rng.create ~seed:83 in
  for _ = 1 to 20 do
    let nvars = 4 + Rng.int rng 9 in
    let terms =
      Delphic_stream.Workload.Dnf_terms.random rng ~nvars
        ~count:(1 + Rng.int rng 12)
        ~width:(1 + Rng.int rng (min 4 nvars))
    in
    let m = Bdd.create_manager ~nvars in
    let bdd_count = Bdd.count m (Bdd.of_dnf m terms) in
    let enum = Delphic_sets.Exact.dnf_count_enum ~nvars terms in
    Alcotest.(check string) "BDD = enumeration" (B.to_string enum) (B.to_string bdd_count)
  done

let test_hash_consing_shares () =
  let m = Bdd.create_manager ~nvars:8 in
  let a = Bdd.var m 3 in
  let b = Bdd.var m 3 in
  Alcotest.(check bool) "same node reused" true (Bdd.equal a b);
  let nodes_before = Bdd.node_count m in
  ignore (Bdd.var m 3);
  Alcotest.(check int) "no growth on duplicates" nodes_before (Bdd.node_count m)

let suite =
  [
    Alcotest.test_case "terminals" `Quick test_terminals;
    Alcotest.test_case "single variables" `Quick test_var;
    Alcotest.test_case "boolean laws + canonicity" `Quick test_boolean_laws;
    Alcotest.test_case "of_term matches Dnf.satisfies" `Quick test_of_term_matches_dnf;
    Alcotest.test_case "count matches enumeration" `Quick test_count_matches_enumeration;
    Alcotest.test_case "hash-consing shares nodes" `Quick test_hash_consing_shares;
  ]
