(* EXT-VATIC: window compliance under degraded oracles (Theorem 1.5),
   behaviour with an exact oracle, and validation. *)

module Rng = Delphic_util.Rng
module Range1d = Delphic_sets.Range1d
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload
module Wrap = Delphic_sets.Approx_wrap.Make (Range1d)
module Ext = Delphic_core.Ext_vatic.Make (Wrap)
module Knapsack = Delphic_sets.Knapsack
module Ext_knap = Delphic_core.Ext_vatic.Make (Knapsack.Approx)

let make_pool seed =
  let gen = Rng.create ~seed in
  Workload.Ranges.uniform gen ~universe:1_000_000 ~count:200 ~max_len:4000

let run_once ~alpha ~gamma ~eta ~seed pool =
  let wrapped = List.map (Wrap.wrap ~alpha ~gamma ~eta ~salt:seed) pool in
  let t =
    Ext.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~alpha ~gamma ~eta ~seed ()
  in
  List.iter (Ext.process t) wrapped;
  (Ext.estimate t, Ext.window t, Ext.skipped_sets t)

let check_window ~alpha ~gamma ~eta () =
  let pool = make_pool 201 in
  let truth = float_of_int (Exact.range_union pool) in
  let ok = ref 0 in
  let trials = 12 in
  for i = 0 to trials - 1 do
    let est, (lo, hi), skipped = run_once ~alpha ~gamma ~eta ~seed:(300 + i) pool in
    Alcotest.(check int) "no skips" 0 skipped;
    if est >= lo *. truth && est <= hi *. truth then incr ok
  done;
  (* delta = 0.2: expect >= 10 of 12 inside (in practice all). *)
  Alcotest.(check bool) (Printf.sprintf "inside %d/%d" !ok trials) true (!ok >= trials - 2)

let test_window_mild () = check_window ~alpha:0.2 ~gamma:0.05 ~eta:0.1 ()
let test_window_harsh () = check_window ~alpha:0.5 ~gamma:0.2 ~eta:0.4 ()

let test_exact_oracle_tracks_truth () =
  (* alpha = gamma = eta = 0 degrades nothing: the output must behave like
     an (ε, δ)-estimate up to the structural factor 2 slack of Theorem 1.5
     — empirically it is sharp. *)
  let pool = make_pool 202 in
  let truth = float_of_int (Exact.range_union pool) in
  let close = ref 0 in
  for i = 0 to 9 do
    let est, _, _ = run_once ~alpha:0.0 ~gamma:0.0 ~eta:0.0 ~seed:(400 + i) pool in
    if Float.abs (est -. truth) <= 0.3 *. truth then incr close
  done;
  Alcotest.(check bool) (Printf.sprintf "close in %d/10" !close) true (!close >= 8)

let test_knapsack_approx_family_end_to_end () =
  (* A genuinely approximate family (rounded counting DP), not a synthetic
     wrapper: stream of knapsack instances over 14 items. *)
  let gen = Rng.create ~seed:203 in
  let pool = Workload.Knapsacks.random gen ~nvars:14 ~max_weight:20 ~count:12 in
  let approx = List.map (Knapsack.Approx.create ~sigbits:8) pool in
  let alpha =
    List.fold_left (fun acc a -> Float.max acc (Knapsack.Approx.alpha a)) 0.0 approx
  in
  let eta =
    List.fold_left (fun acc a -> Float.max acc (Knapsack.Approx.eta a)) 0.0 approx
  in
  let truth = Delphic_util.Bigint.to_float (Exact.knapsack_union pool) in
  let t =
    Ext_knap.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:14.0 ~alpha ~gamma:0.0
      ~eta ~seed:7 ()
  in
  List.iter (Ext_knap.process t) approx;
  let est = Ext_knap.estimate t in
  let lo, hi = Ext_knap.window t in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f within [%.0f, %.0f]" est (lo *. truth) (hi *. truth))
    true
    (est >= lo *. truth && est <= hi *. truth)

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  let make ?(epsilon = 0.2) ?(gamma = 0.1) ?(alpha = 0.1) ?(eta = 0.1)
      ?(log2_universe = 30.0) () =
    Ext.create ~epsilon ~delta:0.2 ~log2_universe ~alpha ~gamma ~eta ~seed:1 ()
  in
  ignore (make ());
  expect_invalid (fun () -> make ~gamma:0.5 ());
  expect_invalid (fun () -> make ~alpha:(-0.1) ());
  expect_invalid (fun () -> make ~eta:(-0.1) ());
  expect_invalid (fun () -> make ~epsilon:1.5 ());
  (* Universe too small for the probability floor. *)
  expect_invalid (fun () -> make ~log2_universe:5.0 ())

let test_window_shape () =
  let t =
    Ext.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:30.0 ~alpha:0.25 ~gamma:0.1
      ~eta:0.5 ~seed:1 ()
  in
  let lo, hi = Ext.window t in
  Alcotest.(check (float 1e-9)) "lower factor"
    ((1.0 -. 0.2) /. (2.0 *. 1.5 *. 1.25))
    lo;
  Alcotest.(check (float 1e-9)) "upper factor" (1.2 *. 1.5 *. 1.25) hi

let suite =
  [
    Alcotest.test_case "window compliance (mild oracle)" `Quick test_window_mild;
    Alcotest.test_case "window compliance (harsh oracle)" `Quick test_window_harsh;
    Alcotest.test_case "exact oracle tracks truth" `Quick test_exact_oracle_tracks_truth;
    Alcotest.test_case "knapsack rounded-DP family end-to-end" `Quick
      test_knapsack_approx_family_end_to_end;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "window formula" `Quick test_window_shape;
  ]
