(* Delphic-family axioms, checked per concrete family:
   1. every sample is a member (sample/mem consistency);
   2. cardinality equals exhaustive enumeration on small instances;
   3. sampling is (approximately) uniform — chi-square on small sets;
   4. membership rejects non-members.
   Plus family-specific representation tests. *)

module Rng = Delphic_util.Rng
module B = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Range1d = Delphic_sets.Range1d
module Singleton = Delphic_sets.Singleton
module Rectangle = Delphic_sets.Rectangle
module Hypervolume = Delphic_sets.Hypervolume
module Coverage = Delphic_sets.Coverage
module Dnf = Delphic_sets.Dnf

(* Generic axiom 1+3: samples are members and evenly spread.  [key] maps an
   element to a hashable identity. *)
let check_sampling (type s e) (module F : Delphic_family.Family.FAMILY
                                with type t = s and type elt = e) ~seed set ~draws =
  let rng = Rng.create ~seed in
  let counts = Hashtbl.create 64 in
  for _ = 1 to draws do
    let x = F.sample set rng in
    if not (F.mem set x) then Alcotest.fail "sample not a member";
    let k = F.hash_elt x in
    (* Collisions across distinct elements would only make the spread test
       stricter to fail, never easier; fine for small sets. *)
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let card = B.to_int_exn (F.cardinality set) in
  Alcotest.(check int) "all elements reached" card (Hashtbl.length counts);
  let expected = float_of_int draws /. float_of_int card in
  Hashtbl.iter
    (fun _ c ->
      if Float.abs (float_of_int c -. expected) > 6.0 *. sqrt expected +. 3.0 then
        Alcotest.failf "count %d far from %.1f" c expected)
    counts

(* --- Range1d --- *)

let test_range_basic () =
  let r = Range1d.create ~lo:10 ~hi:19 in
  Alcotest.(check int) "length" 10 (Range1d.length r);
  Alcotest.(check string) "cardinality" "10" (B.to_string (Range1d.cardinality r));
  Alcotest.(check bool) "mem lo" true (Range1d.mem r 10);
  Alcotest.(check bool) "mem hi" true (Range1d.mem r 19);
  Alcotest.(check bool) "not mem" false (Range1d.mem r 9);
  Alcotest.(check bool) "not mem" false (Range1d.mem r 20);
  Alcotest.check_raises "bad range" (Invalid_argument "Range1d.create: need 0 <= lo <= hi")
    (fun () -> ignore (Range1d.create ~lo:5 ~hi:4))

let test_range_sampling () =
  check_sampling (module Range1d) ~seed:61 (Range1d.create ~lo:100 ~hi:129) ~draws:20_000

(* --- Singleton --- *)

let test_singleton () =
  let s = Singleton.create 7 in
  Alcotest.(check string) "cardinality 1" "1" (B.to_string (Singleton.cardinality s));
  Alcotest.(check bool) "mem self" true (Singleton.mem s 7);
  Alcotest.(check bool) "not mem other" false (Singleton.mem s 8);
  let rng = Rng.create ~seed:62 in
  Alcotest.(check int) "sample is the element" 7 (Singleton.sample s rng)

(* --- Rectangle --- *)

let test_rectangle_basic () =
  let r = Rectangle.create ~lo:[| 1; 2 |] ~hi:[| 3; 5 |] in
  Alcotest.(check int) "dim" 2 (Rectangle.dim r);
  Alcotest.(check string) "volume 3*4" "12" (B.to_string (Rectangle.volume r));
  Alcotest.(check bool) "mem corner" true (Rectangle.mem r [| 1; 2 |]);
  Alcotest.(check bool) "mem corner" true (Rectangle.mem r [| 3; 5 |]);
  Alcotest.(check bool) "outside" false (Rectangle.mem r [| 0; 2 |]);
  Alcotest.(check bool) "wrong dim" false (Rectangle.mem r [| 1 |]);
  Alcotest.check_raises "inverted" (Invalid_argument "Rectangle.create: need 0 <= lo.(i) <= hi.(i)")
    (fun () -> ignore (Rectangle.create ~lo:[| 2 |] ~hi:[| 1 |]))

let test_rectangle_enumeration () =
  (* Cardinality equals point-by-point membership enumeration. *)
  let r = Rectangle.create ~lo:[| 2; 0; 5 |] ~hi:[| 4; 1; 6 |] in
  let count = ref 0 in
  for x = 0 to 7 do
    for y = 0 to 7 do
      for z = 0 to 7 do
        if Rectangle.mem r [| x; y; z |] then incr count
      done
    done
  done;
  Alcotest.(check int) "3*2*2 points" !count (B.to_int_exn (Rectangle.volume r))

let test_rectangle_sampling () =
  check_sampling
    (module Rectangle)
    ~seed:63
    (Rectangle.create ~lo:[| 0; 10 |] ~hi:[| 4; 14 |])
    ~draws:25_000

let test_rectangle_huge_volume () =
  (* d = 10 with million-long sides: 10^60 points, beyond any native type. *)
  let d = 10 in
  let r =
    Rectangle.create ~lo:(Array.make d 0) ~hi:(Array.make d 999_999)
  in
  Alcotest.(check string) "10^60"
    ("1" ^ String.make 60 '0')
    (B.to_string (Rectangle.volume r));
  let rng = Rng.create ~seed:64 in
  Alcotest.(check bool) "sample member" true (Rectangle.mem r (Rectangle.sample r rng))

let test_rectangle_geometry () =
  let a = Rectangle.create ~lo:[| 0; 0 |] ~hi:[| 9; 9 |] in
  let b = Rectangle.create ~lo:[| 5; 5 |] ~hi:[| 14; 14 |] in
  let c = Rectangle.create ~lo:[| 20; 20 |] ~hi:[| 21; 21 |] in
  Alcotest.(check bool) "contains" true (Rectangle.contains_box a (Rectangle.create ~lo:[| 1; 1 |] ~hi:[| 8; 8 |]));
  Alcotest.(check bool) "not contains" false (Rectangle.contains_box a b);
  (match Rectangle.intersect a b with
  | Some i -> Alcotest.(check string) "overlap 5x5" "25" (B.to_string (Rectangle.volume i))
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "disjoint" true (Rectangle.intersect a c = None)

(* --- Hypervolume --- *)

let test_hypervolume () =
  let h = Hypervolume.create [| 2; 3 |] in
  Alcotest.(check string) "volume 3*4" "12" (B.to_string (Hypervolume.cardinality h));
  Alcotest.(check bool) "origin in" true (Hypervolume.mem h [| 0; 0 |]);
  Alcotest.(check bool) "corner in" true (Hypervolume.mem h [| 2; 3 |]);
  Alcotest.(check bool) "outside" false (Hypervolume.mem h [| 3; 0 |]);
  Alcotest.(check bool) "dominates smaller" true
    (Hypervolume.dominates h (Hypervolume.create [| 1; 2 |]));
  Alcotest.(check bool) "no domination" false
    (Hypervolume.dominates h (Hypervolume.create [| 3; 1 |]))

let test_hypervolume_sampling () =
  check_sampling (module Hypervolume) ~seed:67 (Hypervolume.create [| 4; 5 |])
    ~draws:25_000

(* --- Coverage --- *)

let test_coverage_cardinality () =
  let v = Bitvec.of_string "110010" in
  let c = Coverage.create ~vector:v ~strength:2 in
  (* C(6,2) = 15 *)
  Alcotest.(check string) "C(6,2)" "15" (B.to_string (Coverage.cardinality c));
  Alcotest.(check string) "universe C(6,2)*4" "60"
    (B.to_string (Coverage.universe_size ~n:6 ~strength:2))

let test_coverage_membership () =
  let v = Bitvec.of_string "110010" in
  let c = Coverage.create ~vector:v ~strength:2 in
  let ok = { Coverage.positions = [| 0; 4 |]; pattern = Bitvec.of_string "11" } in
  Alcotest.(check bool) "matching restriction" true (Coverage.mem c ok);
  let wrong_pattern = { Coverage.positions = [| 0; 4 |]; pattern = Bitvec.of_string "10" } in
  Alcotest.(check bool) "wrong pattern" false (Coverage.mem c wrong_pattern);
  let unsorted = { Coverage.positions = [| 4; 0 |]; pattern = Bitvec.of_string "11" } in
  Alcotest.(check bool) "unsorted positions rejected" false (Coverage.mem c unsorted);
  let wrong_arity = { Coverage.positions = [| 0 |]; pattern = Bitvec.of_string "1" } in
  Alcotest.(check bool) "wrong arity" false (Coverage.mem c wrong_arity)

let test_coverage_sampling () =
  let v = Bitvec.of_string "1011001" in
  check_sampling (module Coverage) ~seed:65 (Coverage.create ~vector:v ~strength:2)
    ~draws:25_000

(* --- DNF --- *)

let test_dnf_basic () =
  let t = Dnf.create ~nvars:5 [ { Dnf.var = 0; positive = true }; { Dnf.var = 3; positive = false } ] in
  (* 2^(5-2) = 8 solutions *)
  Alcotest.(check string) "2^3" "8" (B.to_string (Dnf.cardinality t));
  Alcotest.(check bool) "satisfying" true (Dnf.satisfies t (Bitvec.of_string "10000"));
  Alcotest.(check bool) "violates x0" false (Dnf.satisfies t (Bitvec.of_string "00000"));
  Alcotest.(check bool) "violates ~x3" false (Dnf.satisfies t (Bitvec.of_string "10010"));
  Alcotest.check_raises "repeated var" (Invalid_argument "Dnf.create: repeated variable")
    (fun () ->
      ignore
        (Dnf.create ~nvars:3
           [ { Dnf.var = 1; positive = true }; { Dnf.var = 1; positive = false } ]));
  Alcotest.check_raises "var range" (Invalid_argument "Dnf.create: variable out of range")
    (fun () -> ignore (Dnf.create ~nvars:3 [ { Dnf.var = 3; positive = true } ]))

let test_dnf_enumeration () =
  let t =
    Dnf.create ~nvars:6
      [ { Dnf.var = 1; positive = true }; { Dnf.var = 4; positive = true } ]
  in
  let count = ref 0 in
  for x = 0 to 63 do
    let v = Bitvec.create ~width:6 in
    for i = 0 to 5 do
      Bitvec.set v i ((x lsr i) land 1 = 1)
    done;
    if Dnf.satisfies t v then incr count
  done;
  Alcotest.(check int) "enumerated" !count (B.to_int_exn (Dnf.cardinality t))

let test_dnf_sampling () =
  let t =
    Dnf.create ~nvars:5
      [ { Dnf.var = 0; positive = false }; { Dnf.var = 2; positive = true } ]
  in
  check_sampling (module Dnf) ~seed:66 t ~draws:25_000

let test_dnf_empty_term () =
  (* A term with no literals covers the whole cube. *)
  let t = Dnf.create ~nvars:4 [] in
  Alcotest.(check string) "2^4" "16" (B.to_string (Dnf.cardinality t));
  Alcotest.(check bool) "anything satisfies" true (Dnf.satisfies t (Bitvec.of_string "0110"))

let suite =
  [
    Alcotest.test_case "range: basics" `Quick test_range_basic;
    Alcotest.test_case "range: sampling axioms" `Quick test_range_sampling;
    Alcotest.test_case "singleton: axioms" `Quick test_singleton;
    Alcotest.test_case "rectangle: basics" `Quick test_rectangle_basic;
    Alcotest.test_case "rectangle: cardinality = enumeration" `Quick test_rectangle_enumeration;
    Alcotest.test_case "rectangle: sampling axioms" `Quick test_rectangle_sampling;
    Alcotest.test_case "rectangle: astronomical volumes" `Quick test_rectangle_huge_volume;
    Alcotest.test_case "rectangle: geometry helpers" `Quick test_rectangle_geometry;
    Alcotest.test_case "hypervolume: basics" `Quick test_hypervolume;
    Alcotest.test_case "hypervolume: sampling axioms" `Quick test_hypervolume_sampling;
    Alcotest.test_case "coverage: cardinality" `Quick test_coverage_cardinality;
    Alcotest.test_case "coverage: membership" `Quick test_coverage_membership;
    Alcotest.test_case "coverage: sampling axioms" `Quick test_coverage_sampling;
    Alcotest.test_case "dnf: basics" `Quick test_dnf_basic;
    Alcotest.test_case "dnf: cardinality = enumeration" `Quick test_dnf_enumeration;
    Alcotest.test_case "dnf: sampling axioms" `Quick test_dnf_sampling;
    Alcotest.test_case "dnf: empty term" `Quick test_dnf_empty_term;
  ]
