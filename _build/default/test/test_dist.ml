(* Discrete distributions: alias-table frequencies, Zipf shape, geometric
   and Poisson moments. *)

module Dist = Delphic_util.Dist
module Rng = Delphic_util.Rng

let test_discrete_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Discrete.create: empty weights")
    (fun () -> ignore (Dist.Discrete.create [||]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Discrete.create: weights sum to zero") (fun () ->
      ignore (Dist.Discrete.create [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Discrete.create: bad weight")
    (fun () -> ignore (Dist.Discrete.create [| 1.0; -2.0 |]))

let test_discrete_frequencies () =
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  let d = Dist.Discrete.create weights in
  Alcotest.(check int) "size" 4 (Dist.Discrete.size d);
  let rng = Rng.create ~seed:41 in
  let n = 100_000 in
  let counts = Array.make 4 0 in
  for _ = 1 to n do
    let i = Dist.Discrete.sample d rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = weights.(i) /. 10.0 *. float_of_int n in
      let sd = sqrt expected in
      if Float.abs (float_of_int c -. expected) > 6.0 *. sd then
        Alcotest.failf "bin %d: %d vs %.0f" i c expected)
    counts

let test_discrete_point_mass () =
  let d = Dist.Discrete.create [| 0.0; 1.0; 0.0 |] in
  let rng = Rng.create ~seed:42 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "always the massive index" 1 (Dist.Discrete.sample d rng)
  done

let test_zipf_shape () =
  let z = Dist.Zipf.create ~n:100 ~s:1.2 in
  let rng = Rng.create ~seed:43 in
  let n = 100_000 in
  let counts = Array.make 100 0 in
  for _ = 1 to n do
    let i = Dist.Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  (* Rank 0 must dominate, and the ratio c0/c1 should approximate 2^1.2. *)
  Alcotest.(check bool) "head heaviest" true (counts.(0) > counts.(1));
  let ratio = float_of_int counts.(0) /. float_of_int counts.(1) in
  Alcotest.(check bool) "c0/c1 near 2^1.2" true (Float.abs (ratio -. (2.0 ** 1.2)) < 0.35)

let test_geometric () =
  let rng = Rng.create ~seed:44 in
  Alcotest.(check int) "p=1 is 0" 0 (Dist.geometric rng ~p:1.0);
  let n = 100_000 and p = 0.25 in
  let sum = ref 0 in
  for _ = 1 to n do
    let v = Dist.geometric rng ~p in
    Alcotest.(check bool) "non-negative" true (v >= 0);
    sum := !sum + v
  done;
  (* mean (failures before success) = (1-p)/p = 3. *)
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.1)

let test_poisson () =
  let rng = Rng.create ~seed:45 in
  Alcotest.(check int) "lambda 0" 0 (Dist.poisson rng ~lambda:0.0);
  let check lambda =
    let n = 50_000 in
    let sum = ref 0 in
    for _ = 1 to n do
      sum := !sum + Dist.poisson rng ~lambda
    done;
    let mean = float_of_int !sum /. float_of_int n in
    let tol = 6.0 *. sqrt (lambda /. float_of_int n) +. 0.05 in
    if Float.abs (mean -. lambda) > tol then
      Alcotest.failf "lambda %.1f: mean %.3f" lambda mean
  in
  check 4.0;
  (* Gaussian-approximation branch. *)
  check 100.0

let suite =
  [
    Alcotest.test_case "discrete validation" `Quick test_discrete_validation;
    Alcotest.test_case "discrete frequencies" `Quick test_discrete_frequencies;
    Alcotest.test_case "discrete point mass" `Quick test_discrete_point_mass;
    Alcotest.test_case "zipf shape" `Quick test_zipf_shape;
    Alcotest.test_case "geometric mean" `Quick test_geometric;
    Alcotest.test_case "poisson mean (both branches)" `Quick test_poisson;
  ]
