(* Claim 2.5 of the paper: drawing K ~ Bin(|S|, p) and then K distinct
   uniform elements of S selects each element of S independently with
   probability p.  We verify the marginal and the pairwise product (the
   statistical signature of independence) empirically. *)

module Rng = Delphic_util.Rng
module Binomial = Delphic_util.Binomial
module Comb = Delphic_util.Comb

let process_p rng ~n ~p =
  (* One run of the Claim 2.5 process over S = {0..n-1}. *)
  let k = Binomial.sample rng ~n ~p in
  Comb.floyd_sample rng ~n ~k

let test_marginal () =
  let rng = Rng.create ~seed:101 in
  let n = 30 and p = 0.2 in
  let runs = 30_000 in
  let counts = Array.make n 0 in
  for _ = 1 to runs do
    Array.iter (fun i -> counts.(i) <- counts.(i) + 1) (process_p rng ~n ~p)
  done;
  (* Each element: Bin(runs, 0.2): sd ~ 69; 6 sigma ~ 416. *)
  Array.iteri
    (fun i c ->
      if abs (c - int_of_float (float_of_int runs *. p)) > 450 then
        Alcotest.failf "element %d frequency %d far from %d" i c
          (int_of_float (float_of_int runs *. p)))
    counts

let test_pairwise_independence () =
  let rng = Rng.create ~seed:102 in
  let n = 12 and p = 0.3 in
  let runs = 40_000 in
  let joint = Array.make_matrix n n 0 in
  for _ = 1 to runs do
    let picked = process_p rng ~n ~p in
    Array.iter
      (fun i -> Array.iter (fun j -> if i < j then joint.(i).(j) <- joint.(i).(j) + 1) picked)
      picked
  done;
  (* P(i and j both picked) should be p^2 = 0.09; sd of count ~ 57. *)
  let expected = float_of_int runs *. p *. p in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (float_of_int joint.(i).(j) -. expected) > 6.5 *. sqrt expected then
        Alcotest.failf "pair (%d,%d): %d vs %.0f" i j joint.(i).(j) expected
    done
  done

let test_triple_joint () =
  (* Third-order check on a small set: P(0,1,2 all picked) = p^3. *)
  let rng = Rng.create ~seed:103 in
  let n = 6 and p = 0.4 in
  let runs = 60_000 in
  let hits = ref 0 in
  for _ = 1 to runs do
    let picked = process_p rng ~n ~p in
    let has x = Array.exists (Int.equal x) picked in
    if has 0 && has 1 && has 2 then incr hits
  done;
  let expected = float_of_int runs *. (p ** 3.0) in
  Alcotest.(check bool)
    (Printf.sprintf "triple: %d vs %.0f" !hits expected)
    true
    (Float.abs (float_of_int !hits -. expected) < 6.0 *. sqrt expected)

let suite =
  [
    Alcotest.test_case "marginal probability is p" `Quick test_marginal;
    Alcotest.test_case "pairwise joint is p^2" `Quick test_pairwise_independence;
    Alcotest.test_case "triple joint is p^3" `Quick test_triple_joint;
  ]
