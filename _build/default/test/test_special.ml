(* Special functions against reference values (scipy-computed). *)

module Special = Delphic_util.Special

let close ?(tol = 1e-9) a b = Float.abs (a -. b) < tol

let check name expected actual =
  if not (close expected actual) then
    Alcotest.failf "%s: expected %.12f, got %.12f" name expected actual

let test_gamma_p_known () =
  (* P(1, x) = 1 - e^-x. *)
  List.iter
    (fun x -> check (Printf.sprintf "P(1,%.1f)" x) (1.0 -. exp (-.x)) (Special.gamma_p ~a:1.0 ~x))
    [ 0.1; 1.0; 2.5; 10.0 ];
  (* P(a, 0) = 0; Q(a, 0) = 1. *)
  check "P(3,0)" 0.0 (Special.gamma_p ~a:3.0 ~x:0.0);
  check "Q(3,0)" 1.0 (Special.gamma_q ~a:3.0 ~x:0.0);
  (* P(2, 2) = 1 - 3e^-2 (Erlang). *)
  check "P(2,2)" (1.0 -. (3.0 *. exp (-2.0))) (Special.gamma_p ~a:2.0 ~x:2.0);
  (* Large x: P -> 1. *)
  check "P(2,100)" 1.0 (Special.gamma_p ~a:2.0 ~x:100.0)

let test_p_plus_q () =
  List.iter
    (fun (a, x) ->
      let p = Special.gamma_p ~a ~x and q = Special.gamma_q ~a ~x in
      if not (close (p +. q) 1.0) then Alcotest.failf "P+Q at (%g, %g) = %.15f" a x (p +. q))
    [ (0.5, 0.3); (1.5, 1.5); (5.0, 2.0); (5.0, 20.0); (100.0, 80.0); (100.0, 130.0) ]

let test_chi_square_critical_values () =
  (* Standard table entries: P(X >= x) = 0.05. *)
  let cases = [ (1, 3.841458821); (3, 7.814727903); (10, 18.30703805) ] in
  List.iter
    (fun (dof, crit) ->
      let p = Special.chi_square_survival ~dof crit in
      if not (close ~tol:1e-6 p 0.05) then
        Alcotest.failf "chi2 dof=%d at %.4f: survival %.8f" dof crit p)
    cases;
  check "cdf + survival" 1.0
    (Special.chi_square_cdf ~dof:5 7.0 +. Special.chi_square_survival ~dof:5 7.0)

let test_chi_square_median () =
  (* Median of chi2(2) is 2 ln 2. *)
  check "chi2(2) median" 0.5 (Special.chi_square_cdf ~dof:2 (2.0 *. log 2.0))

let test_erf_known () =
  check "erf 0" 0.0 (Special.erf 0.0);
  if not (close ~tol:1e-7 (Special.erf 1.0) 0.8427007929) then Alcotest.fail "erf 1";
  if not (close ~tol:1e-7 (Special.erf (-1.0)) (-0.8427007929)) then Alcotest.fail "erf -1";
  if not (close ~tol:1e-7 (Special.erf 2.0) 0.9953222650) then Alcotest.fail "erf 2"

let test_normal_cdf () =
  check "Phi(0)" 0.5 (Special.normal_cdf 0.0);
  if not (close ~tol:1e-7 (Special.normal_cdf 1.959963985) 0.975) then
    Alcotest.fail "Phi(1.96)";
  if not (close ~tol:1e-7 (Special.normal_cdf (-1.959963985)) 0.025) then
    Alcotest.fail "Phi(-1.96)"

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Special.gamma_p ~a:0.0 ~x:1.0);
  expect_invalid (fun () -> Special.gamma_p ~a:1.0 ~x:(-1.0));
  expect_invalid (fun () -> Special.chi_square_cdf ~dof:0 1.0)

let suite =
  [
    Alcotest.test_case "incomplete gamma known values" `Quick test_gamma_p_known;
    Alcotest.test_case "P + Q = 1 in both regimes" `Quick test_p_plus_q;
    Alcotest.test_case "chi-square critical values" `Quick test_chi_square_critical_values;
    Alcotest.test_case "chi-square median" `Quick test_chi_square_median;
    Alcotest.test_case "erf" `Quick test_erf_known;
    Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
