(* Interval_cover segment tree: covered length under add/remove, verified
   against a naive boolean-array implementation on random operation
   sequences, plus the 2-d sweep it powers (vs the grid measure). *)

module Interval_cover = Delphic_sets.Interval_cover
module Rectangle = Delphic_sets.Rectangle
module Exact = Delphic_sets.Exact
module Rng = Delphic_util.Rng
module B = Delphic_util.Bigint

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Interval_cover.create [| 5 |]);
  expect_invalid (fun () -> Interval_cover.create [| 3; 3 |]);
  expect_invalid (fun () -> Interval_cover.create [| 5; 2 |]);
  let t = Interval_cover.create [| 0; 5; 10 |] in
  (* Endpoints must be cuts. *)
  expect_invalid (fun () -> Interval_cover.add t ~lo:1 ~hi:5);
  expect_invalid (fun () -> Interval_cover.add t ~lo:5 ~hi:5)

let test_basic () =
  let t = Interval_cover.create [| 0; 2; 5; 9; 14 |] in
  Alcotest.(check int) "span" 14 (Interval_cover.span t);
  Alcotest.(check int) "empty" 0 (Interval_cover.covered t);
  Interval_cover.add t ~lo:0 ~hi:5;
  Alcotest.(check int) "first" 5 (Interval_cover.covered t);
  Interval_cover.add t ~lo:2 ~hi:9;
  Alcotest.(check int) "overlap merges" 9 (Interval_cover.covered t);
  Interval_cover.remove t ~lo:0 ~hi:5;
  Alcotest.(check int) "partial remove" 7 (Interval_cover.covered t);
  Interval_cover.remove t ~lo:2 ~hi:9;
  Alcotest.(check int) "back to empty" 0 (Interval_cover.covered t)

let test_against_naive () =
  let rng = Rng.create ~seed:111 in
  for _ = 1 to 30 do
    let ncuts = 3 + Rng.int rng 20 in
    (* Random strictly increasing cuts. *)
    let cuts = Array.make ncuts 0 in
    for i = 1 to ncuts - 1 do
      cuts.(i) <- cuts.(i - 1) + 1 + Rng.int rng 10
    done;
    let t = Interval_cover.create cuts in
    let hi_coord = cuts.(ncuts - 1) in
    let naive = Array.make hi_coord 0 in
    let active = ref [] in
    for _step = 1 to 60 do
      let pick () = cuts.(Rng.int rng ncuts) in
      let a = pick () and b = pick () in
      let lo = min a b and hi = max a b in
      if lo < hi then begin
        (* Randomly add, or remove an active interval. *)
        if Rng.bool rng || !active = [] then begin
          Interval_cover.add t ~lo ~hi;
          for x = lo to hi - 1 do
            naive.(x) <- naive.(x) + 1
          done;
          active := (lo, hi) :: !active
        end
        else begin
          let lo, hi = List.hd !active in
          active := List.tl !active;
          Interval_cover.remove t ~lo ~hi;
          for x = lo to hi - 1 do
            naive.(x) <- naive.(x) - 1
          done
        end;
        let expected = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 naive in
        Alcotest.(check int) "covered matches naive" expected (Interval_cover.covered t)
      end
    done
  done

let test_sweep_matches_grid () =
  let rng = Rng.create ~seed:112 in
  for _ = 1 to 30 do
    let boxes =
      List.init (1 + Rng.int rng 25) (fun _ ->
          let lo = Array.init 2 (fun _ -> Rng.int rng 500) in
          let hi = Array.map (fun l -> l + Rng.int rng 200) lo in
          Rectangle.create ~lo ~hi)
    in
    Alcotest.(check string) "sweep = grid"
      (B.to_string (Exact.rectangle_union_grid boxes))
      (B.to_string (Exact.rectangle_union_sweep2d boxes))
  done

let test_sweep_large_instance () =
  (* m = 3000 boxes is far beyond the grid method; the sweep should handle
     it instantly and agree with an independent inclusion-only check on a
     known configuration: a full tiling has volume = universe area. *)
  let tiles = ref [] in
  for i = 0 to 29 do
    for j = 0 to 29 do
      tiles :=
        Rectangle.create ~lo:[| i * 10; j * 10 |] ~hi:[| (i * 10) + 9; (j * 10) + 9 |]
        :: !tiles
    done
  done;
  (* Add overlapping random clutter; the union is still the full square. *)
  let rng = Rng.create ~seed:113 in
  for _ = 1 to 2100 do
    let lo = Array.init 2 (fun _ -> Rng.int rng 250) in
    let hi = Array.map (fun l -> min 299 (l + Rng.int rng 60)) lo in
    tiles := Rectangle.create ~lo ~hi :: !tiles
  done;
  Alcotest.(check string) "tiled square" "90000"
    (B.to_string (Exact.rectangle_union_sweep2d !tiles))

let test_sweep3d_matches_grid () =
  let rng = Rng.create ~seed:114 in
  for _ = 1 to 20 do
    let boxes =
      List.init (1 + Rng.int rng 12) (fun _ ->
          let lo = Array.init 3 (fun _ -> Rng.int rng 60) in
          let hi = Array.map (fun l -> l + Rng.int rng 30) lo in
          Rectangle.create ~lo ~hi)
    in
    Alcotest.(check string) "sweep3d = grid"
      (B.to_string (Exact.rectangle_union_grid boxes))
      (B.to_string (Exact.rectangle_union_sweep3d boxes))
  done

let test_sweep3d_tiling () =
  (* An exact tiling of a cube plus clutter: the union is the whole cube. *)
  let tiles = ref [] in
  for i = 0 to 4 do
    for j = 0 to 4 do
      for k = 0 to 4 do
        tiles :=
          Rectangle.create
            ~lo:[| i * 20; j * 20; k * 20 |]
            ~hi:[| (i * 20) + 19; (j * 20) + 19; (k * 20) + 19 |]
          :: !tiles
      done
    done
  done;
  let rng = Rng.create ~seed:115 in
  for _ = 1 to 200 do
    let lo = Array.init 3 (fun _ -> Rng.int rng 80) in
    let hi = Array.map (fun l -> min 99 (l + Rng.int rng 30)) lo in
    tiles := Rectangle.create ~lo ~hi :: !tiles
  done;
  Alcotest.(check string) "tiled cube" "1000000"
    (B.to_string (Exact.rectangle_union_sweep3d !tiles))

let test_dispatch () =
  (* rectangle_union must route to the right specialised algorithm. *)
  let rng = Rng.create ~seed:116 in
  List.iter
    (fun dim ->
      let boxes =
        List.init 8 (fun _ ->
            let lo = Array.init dim (fun _ -> Rng.int rng 20) in
            let hi = Array.map (fun l -> l + Rng.int rng 10) lo in
            Rectangle.create ~lo ~hi)
      in
      Alcotest.(check string)
        (Printf.sprintf "dispatch agrees at d=%d" dim)
        (B.to_string (Exact.rectangle_union_grid boxes))
        (B.to_string (Exact.rectangle_union boxes)))
    [ 1; 2; 3; 4 ]

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "basic add/remove" `Quick test_basic;
    Alcotest.test_case "random ops vs naive" `Quick test_against_naive;
    Alcotest.test_case "2-d sweep = grid measure" `Quick test_sweep_matches_grid;
    Alcotest.test_case "sweep at m = 3000" `Quick test_sweep_large_instance;
    Alcotest.test_case "3-d sweep = grid measure" `Quick test_sweep3d_matches_grid;
    Alcotest.test_case "3-d sweep on a tiled cube" `Quick test_sweep3d_tiling;
    Alcotest.test_case "rectangle_union dispatch" `Quick test_dispatch;
  ]
