(* Edge cases across modules that the main suites do not reach: boundary
   arithmetic in Bigint, extreme binomial parameters, degenerate
   distributions, EXT-VATIC union sampling, and Knapsack approximation
   monotonicity. *)

module B = Delphic_util.Bigint
module Rng = Delphic_util.Rng
module Binomial = Delphic_util.Binomial
module Dist = Delphic_util.Dist
module Bitvec = Delphic_util.Bitvec
module Range1d = Delphic_sets.Range1d
module Knapsack = Delphic_sets.Knapsack
module Wrap = Delphic_sets.Approx_wrap.Make (Range1d)
module Ext = Delphic_core.Ext_vatic.Make (Wrap)

let test_bigint_limb_boundaries () =
  (* Values straddling the 30-bit limb boundary. *)
  List.iter
    (fun shift ->
      let v = B.pow2 shift in
      Alcotest.(check (option int))
        (Printf.sprintf "2^%d roundtrip" shift)
        (Some (1 lsl shift))
        (B.to_int v);
      Alcotest.(check int) "bit_length" (shift + 1) (B.bit_length v);
      Alcotest.check (Alcotest.testable B.pp B.equal) "pred/succ"
        v
        (B.succ (B.pred v)))
    [ 29; 30; 31; 59; 60; 61 ];
  (* Subtraction with borrows across several limbs. *)
  let big = B.pow2 120 in
  Alcotest.(check string) "2^120 - 1 decimal"
    "1329227995784915872903807060280344575"
    (B.to_string (B.pred big))

let test_bigint_shift_extremes () =
  Alcotest.(check bool) "shift of zero" true (B.is_zero (B.shift_left B.zero 500));
  Alcotest.(check bool) "huge right shift" true (B.is_zero (B.shift_right B.one 1));
  let v = B.of_string "987654321987654321987654321" in
  Alcotest.check (Alcotest.testable B.pp B.equal) "left 0 is identity" v
    (B.shift_left v 0);
  Alcotest.check (Alcotest.testable B.pp B.equal) "right 0 is identity" v
    (B.shift_right v 0)

let test_binomial_extreme_p () =
  let rng = Rng.create ~seed:161 in
  (* Tiny p with large n (BINV path via flipped tail). *)
  let total = ref 0 in
  for _ = 1 to 2000 do
    total := !total + Binomial.sample rng ~n:1_000_000 ~p:1e-6
  done;
  (* Mean of the sum = 2000 * 1 = 2000; sd ~ 45. *)
  Alcotest.(check bool)
    (Printf.sprintf "tiny p total %d near 2000" !total)
    true
    (abs (!total - 2000) < 300);
  (* p very close to 1. *)
  let v = Binomial.sample rng ~n:1000 ~p:0.999999 in
  Alcotest.(check bool) "p near 1" true (v >= 990 && v <= 1000);
  (* n = 1 Bernoulli. *)
  let ones = ref 0 in
  for _ = 1 to 10_000 do
    ones := !ones + Binomial.sample rng ~n:1 ~p:0.5
  done;
  Alcotest.(check bool) "n=1 fair" true (abs (!ones - 5000) < 350)

let test_btpe_near_boundary () =
  (* np just above the BINV/BTPE switch (30): both regimes must agree in
     the mean.  This stresses the seam where dispatch changes. *)
  let mean ~n ~p =
    let rng = Rng.create ~seed:162 in
    let s = ref 0 in
    for _ = 1 to 30_000 do
      s := !s + Binomial.sample rng ~n ~p
    done;
    float_of_int !s /. 30_000.0
  in
  let m1 = mean ~n:299 ~p:0.1 (* np = 29.9: BINV *) in
  let m2 = mean ~n:301 ~p:0.1 (* np = 30.1: BTPE *) in
  Alcotest.(check bool)
    (Printf.sprintf "seam continuity: %.2f vs %.2f" m1 m2)
    true
    (Float.abs (m1 -. 29.9) < 0.25 && Float.abs (m2 -. 30.1) < 0.25)

let test_discrete_singleton () =
  let d = Dist.Discrete.create [| 3.7 |] in
  let rng = Rng.create ~seed:163 in
  for _ = 1 to 100 do
    Alcotest.(check int) "only index" 0 (Dist.Discrete.sample d rng)
  done

let test_zipf_single_rank () =
  let z = Dist.Zipf.create ~n:1 ~s:2.0 in
  let rng = Rng.create ~seed:164 in
  Alcotest.(check int) "n=1" 0 (Dist.Zipf.sample z rng)

let test_bitvec_zero_width () =
  let v = Bitvec.create ~width:0 in
  Alcotest.(check int) "width" 0 (Bitvec.width v);
  Alcotest.(check int) "popcount" 0 (Bitvec.popcount v);
  Alcotest.(check string) "empty string" "" (Bitvec.to_string v);
  Alcotest.(check bool) "equal to itself" true (Bitvec.equal v (Bitvec.copy v));
  Alcotest.(check bool) "is_zero" true (Bitvec.is_zero v)

let test_knapsack_approx_monotone_in_sigbits () =
  (* More significant bits => tighter alpha, and the rounded count grows
     toward the exact one. *)
  let exact = Knapsack.create ~weights:[| 5; 7; 3; 9; 4; 6; 8; 2 |] ~bound:22 in
  let rng = Rng.create ~seed:165 in
  let counts =
    List.map
      (fun sigbits ->
        let a = Knapsack.Approx.create ~sigbits exact in
        (Knapsack.Approx.alpha a, B.to_float (Knapsack.Approx.approx_cardinality a rng)))
      [ 2; 4; 8; 16 ]
  in
  let rec check = function
    | (alpha1, c1) :: ((alpha2, c2) :: _ as rest) ->
      Alcotest.(check bool) "alpha shrinks" true (alpha2 < alpha1);
      Alcotest.(check bool) "count approaches exact" true (c2 >= c1);
      check rest
    | _ -> ()
  in
  check counts;
  let truth = B.to_float (Knapsack.cardinality exact) in
  let _, best = List.nth counts 3 in
  Alcotest.(check bool) "16 bits is near-exact" true (truth -. best <= 2.0)

let test_ext_vatic_union_sampling () =
  let gen = Rng.create ~seed:166 in
  let pool =
    Delphic_stream.Workload.Ranges.uniform gen ~universe:100_000 ~count:60 ~max_len:2000
  in
  let wrapped = List.map (Wrap.wrap ~alpha:0.2 ~gamma:0.05 ~eta:0.2) pool in
  let t =
    Ext.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0 ~alpha:0.2 ~gamma:0.05
      ~eta:0.2 ~seed:167 ()
  in
  List.iter (Ext.process t) wrapped;
  for _ = 1 to 30 do
    match Ext.sample_union t with
    | None -> Alcotest.fail "sketch should be non-empty"
    | Some x ->
      Alcotest.(check bool) "sample in union" true
        (List.exists (fun r -> Range1d.mem r x) pool)
  done;
  (* Empty estimator. *)
  let empty =
    Ext.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0 ~alpha:0.2 ~gamma:0.05
      ~eta:0.2 ~seed:168 ()
  in
  Alcotest.(check bool) "empty sample" true (Ext.sample_union empty = None)

let test_range_singleton () =
  let r = Range1d.create ~lo:7 ~hi:7 in
  Alcotest.(check int) "length 1" 1 (Range1d.length r);
  let rng = Rng.create ~seed:169 in
  Alcotest.(check int) "sample" 7 (Range1d.sample r rng)

let suite =
  [
    Alcotest.test_case "bigint limb boundaries" `Quick test_bigint_limb_boundaries;
    Alcotest.test_case "bigint shift extremes" `Quick test_bigint_shift_extremes;
    Alcotest.test_case "binomial extreme p" `Quick test_binomial_extreme_p;
    Alcotest.test_case "binomial BINV/BTPE seam" `Quick test_btpe_near_boundary;
    Alcotest.test_case "discrete singleton" `Quick test_discrete_singleton;
    Alcotest.test_case "zipf single rank" `Quick test_zipf_single_rank;
    Alcotest.test_case "bitvec zero width" `Quick test_bitvec_zero_width;
    Alcotest.test_case "knapsack approx monotone in sigbits" `Quick
      test_knapsack_approx_monotone_in_sigbits;
    Alcotest.test_case "ext-vatic union sampling" `Quick test_ext_vatic_union_sampling;
    Alcotest.test_case "range singleton" `Quick test_range_singleton;
  ]
