(* Mixed-level coverage: elementary symmetric polynomial universe size,
   family axioms, and a VATIC end-to-end run against brute-force truth. *)

module Mc = Delphic_sets.Mixed_coverage
module B = Delphic_util.Bigint
module Comb = Delphic_util.Comb
module Rng = Delphic_util.Rng
module V = Delphic_core.Vatic.Make (Mc)

let test_universe_size_esp () =
  (* e_2(2,3,4) = 2*3 + 2*4 + 3*4 = 26. *)
  Alcotest.(check string) "e_2(2,3,4)" "26"
    (B.to_string (Mc.universe_size ~arities:[| 2; 3; 4 |] ~strength:2));
  (* All binary: e_t(2,...,2) = C(n,t) * 2^t. *)
  let n = 10 and t = 3 in
  Alcotest.(check string) "binary reduces to C(n,t)*2^t"
    (B.to_string (B.mul (Comb.choose n t) (B.pow2 t)))
    (B.to_string (Mc.universe_size ~arities:(Array.make n 2) ~strength:t));
  (* e_0 = 1; e_n = product. *)
  Alcotest.(check string) "e_0" "1"
    (B.to_string (Mc.universe_size ~arities:[| 5; 7 |] ~strength:0));
  Alcotest.(check string) "e_n = product" "35"
    (B.to_string (Mc.universe_size ~arities:[| 5; 7 |] ~strength:2))

let test_universe_size_vs_bruteforce () =
  let rng = Rng.create ~seed:181 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 8 in
    let t = 1 + Rng.int rng n in
    let arities = Array.init n (fun _ -> 1 + Rng.int rng 6) in
    let brute = ref B.zero in
    Comb.iter_subsets ~n ~k:t (fun subset ->
        let product =
          Array.fold_left (fun acc i -> acc * arities.(i)) 1 subset
        in
        brute := B.add !brute (B.of_int product));
    Alcotest.(check string) "esp = subset sum" (B.to_string !brute)
      (B.to_string (Mc.universe_size ~arities ~strength:t))
  done

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Mc.create ~vector:[| 0 |] ~arities:[| 2; 3 |] ~strength:1);
  expect_invalid (fun () -> Mc.create ~vector:[| 3 |] ~arities:[| 3 |] ~strength:1);
  expect_invalid (fun () -> Mc.create ~vector:[| 0; 1 |] ~arities:[| 2; 3 |] ~strength:3)

let test_family_axioms () =
  let c = Mc.create ~vector:[| 1; 0; 2; 3 |] ~arities:[| 2; 3; 4; 5 |] ~strength:2 in
  Alcotest.(check string) "C(4,2)" "6" (B.to_string (Mc.cardinality c));
  (* Membership. *)
  Alcotest.(check bool) "matching" true
    (Mc.mem c { Mc.positions = [| 0; 2 |]; values = [| 1; 2 |] });
  Alcotest.(check bool) "wrong value" false
    (Mc.mem c { Mc.positions = [| 0; 2 |]; values = [| 0; 2 |] });
  Alcotest.(check bool) "unsorted" false
    (Mc.mem c { Mc.positions = [| 2; 0 |]; values = [| 2; 1 |] });
  (* Sampling reaches all 6 subsets uniformly, every sample a member. *)
  let rng = Rng.create ~seed:182 in
  let counts = Hashtbl.create 8 in
  let draws = 12_000 in
  for _ = 1 to draws do
    let x = Mc.sample c rng in
    Alcotest.(check bool) "member" true (Mc.mem c x);
    Hashtbl.replace counts (Mc.hash_elt x)
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts (Mc.hash_elt x)))
  done;
  Alcotest.(check int) "all reached" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ cnt -> if abs (cnt - 2000) > 270 then Alcotest.failf "skew %d" cnt)
    counts

let test_vatic_end_to_end () =
  (* 200 random mixed-level test vectors, truth by enumeration. *)
  let n = 10 in
  let arities = [| 2; 3; 2; 4; 3; 2; 5; 2; 3; 4 |] in
  let strength = 2 in
  let rng = Rng.create ~seed:183 in
  let vectors =
    List.init 200 (fun _ -> Array.init n (fun i -> Rng.int rng arities.(i)))
  in
  let pool = List.map (fun vector -> Mc.create ~vector ~arities ~strength) vectors in
  (* Exact union: for each position pair, count distinct value pairs. *)
  let truth = ref 0 in
  Comb.iter_subsets ~n ~k:strength (fun subset ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun v -> Hashtbl.replace seen (Array.map (fun i -> v.(i)) subset) ())
        vectors;
      truth := !truth + Hashtbl.length seen);
  let log2u = B.log2 (Mc.universe_size ~arities ~strength) in
  let failures = ref 0 in
  for i = 0 to 9 do
    let t = V.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:log2u ~seed:(950 + i) () in
    List.iter (V.process t) pool;
    if Float.abs (V.estimate t -. float_of_int !truth) > 0.3 *. float_of_int !truth
    then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/10" !failures) true (!failures <= 2)

let suite =
  [
    Alcotest.test_case "universe size (esp identities)" `Quick test_universe_size_esp;
    Alcotest.test_case "universe size vs brute force" `Quick test_universe_size_vs_bruteforce;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "family axioms" `Quick test_family_axioms;
    Alcotest.test_case "VATIC on mixed-level coverage" `Quick test_vatic_end_to_end;
  ]
