(* File-format parsers: happy paths, comments/blank lines, and precise
   error reporting. *)

module Parsers = Delphic_stream.Parsers
module Rectangle = Delphic_sets.Rectangle
module Dnf = Delphic_sets.Dnf
module Bitvec = Delphic_util.Bitvec
module B = Delphic_util.Bigint

let with_temp contents f =
  let path = Filename.temp_file "delphic_parse" ".txt" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_rectangles () =
  with_temp "# header comment\n0 9 0 9\n\n  5 14 5 14  \n" (fun path ->
      let boxes = Parsers.rectangles_of_file path in
      Alcotest.(check int) "two boxes" 2 (List.length boxes);
      Alcotest.(check string) "union" "175"
        (B.to_string (Delphic_sets.Exact.rectangle_union boxes)))

let test_rectangles_1d_and_3d () =
  with_temp "1 5\n2 9\n" (fun path ->
      let boxes = Parsers.rectangles_of_file path in
      Alcotest.(check int) "dim 1" 1 (Rectangle.dim (List.hd boxes)));
  with_temp "0 1 0 1 0 1\n" (fun path ->
      Alcotest.(check int) "dim 3" 3
        (Rectangle.dim (List.hd (Parsers.rectangles_of_file path))))

let test_rectangles_errors () =
  let expect_error contents ~line fragment =
    with_temp contents (fun path ->
        match Parsers.rectangles_of_file path with
        | exception Parsers.Parse_error { line = l; msg } ->
          Alcotest.(check int) "line number" line l;
          let rec contains i =
            i + String.length fragment <= String.length msg
            && (String.sub msg i (String.length fragment) = fragment || contains (i + 1))
          in
          Alcotest.(check bool) ("mentions " ^ fragment) true (contains 0)
        | _ -> Alcotest.fail "expected Parse_error")
  in
  expect_error "1 2 3\n" ~line:1 "even";
  expect_error "abc def\n" ~line:1 "not an integer";
  expect_error "0 9\n0 9 0 9\n" ~line:2 "dimension";
  expect_error "9 0\n" ~line:1 ""

let test_dnf () =
  with_temp "1 -3\n2 4\n# done\n" (fun path ->
      let terms = Parsers.dnf_of_file ~nvars:5 path in
      Alcotest.(check int) "two terms" 2 (List.length terms);
      let first = List.hd terms in
      Alcotest.(check bool) "x1 & ~x3 satisfied" true
        (Dnf.satisfies first (Bitvec.of_string "10000"));
      Alcotest.(check bool) "~x3 violated" false
        (Dnf.satisfies first (Bitvec.of_string "10100")))

let test_dnf_errors () =
  with_temp "0\n" (fun path ->
      match Parsers.dnf_of_file ~nvars:3 path with
      | exception Parsers.Parse_error _ -> ()
      | _ -> Alcotest.fail "literal 0 must fail");
  with_temp "4\n" (fun path ->
      match Parsers.dnf_of_file ~nvars:3 path with
      | exception Parsers.Parse_error _ -> ()
      | _ -> Alcotest.fail "out-of-range variable must fail")

let test_vectors () =
  with_temp "0101\n1100\n# c\n0101\n" (fun path ->
      let vectors = Parsers.vectors_of_file path in
      Alcotest.(check int) "three vectors" 3 (List.length vectors);
      Alcotest.(check string) "first" "0101" (Bitvec.to_string (List.hd vectors)));
  with_temp "01x1\n" (fun path ->
      match Parsers.vectors_of_file path with
      | exception Parsers.Parse_error _ -> ()
      | _ -> Alcotest.fail "bad character must fail")

let test_line_parsers () =
  (* The single-line parsers the server's ADD command uses: success, the
     dimension guard, and the reported line number being caller-supplied. *)
  let box = Parsers.rectangle_of_line ~lineno:7 "0 9 0 9" in
  Alcotest.(check int) "dim" 2 (Rectangle.dim box);
  (match Parsers.rectangle_of_line ~dims:3 ~lineno:7 "0 9 0 9" with
  | exception Parsers.Parse_error { line; _ } -> Alcotest.(check int) "lineno" 7 line
  | _ -> Alcotest.fail "dimension mismatch must fail");
  let term = Parsers.dnf_term_of_line ~nvars:5 ~lineno:1 "1 -3" in
  Alcotest.(check bool) "term parses" true (Dnf.satisfies term (Bitvec.of_string "10000"));
  let v = Parsers.vector_of_line ~lineno:1 "0101" in
  Alcotest.(check string) "vector" "0101" (Bitvec.to_string v)

let suite =
  [
    Alcotest.test_case "rectangles" `Quick test_rectangles;
    Alcotest.test_case "rectangles in 1-d and 3-d" `Quick test_rectangles_1d_and_3d;
    Alcotest.test_case "rectangle errors" `Quick test_rectangles_errors;
    Alcotest.test_case "dnf terms" `Quick test_dnf;
    Alcotest.test_case "dnf errors" `Quick test_dnf_errors;
    Alcotest.test_case "test vectors" `Quick test_vectors;
    Alcotest.test_case "single-line parsers" `Quick test_line_parsers;
  ]
