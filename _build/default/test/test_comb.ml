(* Combinatorics: Gamma/factorial accuracy, exact binomial coefficients,
   Floyd sampling correctness and uniformity, subset enumeration and
   rank/unrank inverses. *)

module Comb = Delphic_util.Comb
module B = Delphic_util.Bigint
module Rng = Delphic_util.Rng

let close ?(tol = 1e-9) a b = Float.abs (a -. b) < tol *. (1.0 +. Float.abs b)

let test_ln_gamma_known () =
  (* Gamma(1)=1, Gamma(2)=1, Gamma(5)=24, Gamma(0.5)=sqrt(pi). *)
  Alcotest.(check bool) "G(1)" true (close (Comb.ln_gamma 1.0) 0.0 ~tol:1e-12);
  Alcotest.(check bool) "G(2)" true (close (Comb.ln_gamma 2.0) 0.0 ~tol:1e-12);
  Alcotest.(check bool) "G(5)" true (close (Comb.ln_gamma 5.0) (log 24.0));
  Alcotest.(check bool) "G(0.5)" true
    (close (Comb.ln_gamma 0.5) (0.5 *. log Float.pi));
  Alcotest.(check bool) "G(0.25) reflection" true
    (close (Comb.ln_gamma 0.25) 1.2880225246980774)

let test_log_factorial () =
  Alcotest.(check (float 1e-9)) "0!" 0.0 (Comb.log_factorial 0);
  Alcotest.(check (float 1e-9)) "1!" 0.0 (Comb.log_factorial 1);
  Alcotest.(check bool) "10!" true (close (Comb.log_factorial 10) (log 3628800.0));
  Alcotest.(check bool) "170!" true
    (close (Comb.log_factorial 170) 706.5730622457874)

let test_choose_small () =
  Alcotest.(check string) "C(5,2)" "10" (B.to_string (Comb.choose 5 2));
  Alcotest.(check string) "C(10,5)" "252" (B.to_string (Comb.choose 10 5));
  Alcotest.(check string) "C(52,5)" "2598960" (B.to_string (Comb.choose 52 5));
  Alcotest.(check string) "C(n,0)" "1" (B.to_string (Comb.choose 7 0));
  Alcotest.(check string) "C(n,n)" "1" (B.to_string (Comb.choose 7 7));
  Alcotest.(check string) "C(n,k>n)" "0" (B.to_string (Comb.choose 3 5));
  Alcotest.(check string) "C(100,50)"
    "100891344545564193334812497256"
    (B.to_string (Comb.choose 100 50))

let test_choose_pascal () =
  (* Pascal identity across a block of the triangle. *)
  for n = 2 to 30 do
    for k = 1 to n - 1 do
      let lhs = Comb.choose n k in
      let rhs = B.add (Comb.choose (n - 1) (k - 1)) (Comb.choose (n - 1) k) in
      if not (B.equal lhs rhs) then
        Alcotest.failf "Pascal fails at (%d, %d)" n k
    done
  done

let test_choose_matches_log_choose () =
  List.iter
    (fun (n, k) ->
      let exact = B.log2 (Comb.choose n k) *. log 2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "ln C(%d,%d)" n k)
        true
        (close ~tol:1e-9 (Comb.log_choose n k) exact))
    [ (10, 3); (50, 25); (200, 17); (1000, 500) ]

let test_floyd_sample_contract () =
  let rng = Rng.create ~seed:21 in
  for _ = 1 to 200 do
    let n = 1 + Rng.int rng 30 in
    let k = Rng.int rng (n + 1) in
    let s = Comb.floyd_sample rng ~n ~k in
    Alcotest.(check int) "size" k (Array.length s);
    Array.iteri
      (fun i v ->
        if v < 0 || v >= n then Alcotest.fail "out of range";
        if i > 0 && s.(i - 1) >= v then Alcotest.fail "not sorted/distinct")
      s
  done

let test_floyd_sample_uniform () =
  (* All C(5,2)=10 subsets should appear with equal frequency. *)
  let rng = Rng.create ~seed:22 in
  let counts = Hashtbl.create 10 in
  let n = 20_000 in
  for _ = 1 to n do
    let s = Comb.floyd_sample rng ~n:5 ~k:2 in
    let key = (s.(0), s.(1)) in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all subsets seen" 10 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      (* Bin(20000, 1/10): sd ~ 42; 6 sigma ~ 255. *)
      Alcotest.(check bool) "near uniform" true (abs (c - 2000) < 260))
    counts

let test_iter_subsets () =
  let count = ref 0 in
  let last = ref [||] in
  Comb.iter_subsets ~n:7 ~k:3 (fun s ->
      incr count;
      if !count > 1 && compare !last (Array.copy s) >= 0 then
        Alcotest.fail "not lexicographically increasing";
      last := Array.copy s);
  Alcotest.(check int) "C(7,3) subsets" 35 !count;
  (* Degenerate cases. *)
  let k0 = ref 0 in
  Comb.iter_subsets ~n:5 ~k:0 (fun _ -> incr k0);
  Alcotest.(check int) "k=0 yields the empty subset once" 1 !k0;
  let kbig = ref 0 in
  Comb.iter_subsets ~n:3 ~k:4 (fun _ -> incr kbig);
  Alcotest.(check int) "k>n yields nothing" 0 !kbig

let test_rank_unrank_roundtrip () =
  let n = 9 and k = 4 in
  let idx = ref 0 in
  Comb.iter_subsets ~n ~k (fun s ->
      let rank = Comb.rank_subset ~n s in
      Alcotest.(check string)
        "rank equals enumeration position"
        (string_of_int !idx) (B.to_string rank);
      let back = Comb.unrank_subset ~n ~k rank in
      Alcotest.(check (array int)) "unrank inverts" s back;
      incr idx)

let suite =
  [
    Alcotest.test_case "ln_gamma known values" `Quick test_ln_gamma_known;
    Alcotest.test_case "log_factorial" `Quick test_log_factorial;
    Alcotest.test_case "choose small values" `Quick test_choose_small;
    Alcotest.test_case "choose Pascal identity" `Quick test_choose_pascal;
    Alcotest.test_case "choose vs log_choose" `Quick test_choose_matches_log_choose;
    Alcotest.test_case "floyd sample contract" `Quick test_floyd_sample_contract;
    Alcotest.test_case "floyd sample uniform" `Quick test_floyd_sample_uniform;
    Alcotest.test_case "iter_subsets" `Quick test_iter_subsets;
    Alcotest.test_case "rank/unrank roundtrip" `Quick test_rank_unrank_roundtrip;
  ]
