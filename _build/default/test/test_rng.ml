(* PRNG: determinism, range contracts, and coarse distributional checks.
   Statistical assertions use fixed seeds and >= 5-sigma tolerances, so the
   suite is deterministic in practice. *)

module Rng = Delphic_util.Rng

let test_deterministic () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_replays () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

let test_split_decorrelates () =
  let a = Rng.create ~seed:4 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:6 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniform () =
  let rng = Rng.create ~seed:7 in
  let bound = 10 in
  let counts = Array.make bound 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  (* Each bin is Bin(n, 1/10): sd ~ 95; allow 6 sigma. *)
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bin near n/10" true (abs (c - (n / bound)) < 600))
    counts

let test_int_in_range () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "singleton range" 9 (Rng.int_in_range rng ~lo:9 ~hi:9)

let test_float_range_and_mean () =
  let rng = Rng.create ~seed:9 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.float rng in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "float outside [0,1)";
    sum := !sum +. v
  done;
  (* mean ~ 0.5, sd of mean ~ 0.289/sqrt(n) ~ 0.0009: allow 6 sigma. *)
  Alcotest.(check bool) "mean near 1/2" true (Float.abs ((!sum /. float_of_int n) -. 0.5) < 0.006)

let test_bernoulli () =
  let rng = Rng.create ~seed:10 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p_hat = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p near 0.3" true (Float.abs (p_hat -. 0.3) < 0.015);
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:11 in
  let n = 100_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian rng in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.03)

let test_exponential_mean () =
  let rng = Rng.create ~seed:12 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng
  done;
  Alcotest.(check bool) "mean near 1" true
    (Float.abs ((!sum /. float_of_int n) -. 1.0) < 0.02)

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:13 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually moved" true (a <> Array.init 100 Fun.id)

let suite =
  [
    Alcotest.test_case "deterministic from seed" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy replays stream" `Quick test_copy_replays;
    Alcotest.test_case "split decorrelates" `Quick test_split_decorrelates;
    Alcotest.test_case "int respects bound" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int is uniform" `Quick test_int_uniform;
    Alcotest.test_case "int_in_range inclusive" `Quick test_int_in_range;
    Alcotest.test_case "float range and mean" `Quick test_float_range_and_mean;
    Alcotest.test_case "bernoulli frequency and edges" `Quick test_bernoulli;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
  ]
