(* End-to-end VATIC accuracy on every remaining family (ranges, boxes and
   DNF live in test_vatic.ml; affine spaces, Hamming balls and mixed
   coverage in their own files).  One shared harness: run trials, compare
   against exact truth, tolerate delta-rate failures with slack. *)

module Rng = Delphic_util.Rng
module B = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Workload = Delphic_stream.Workload
module Exact = Delphic_sets.Exact

let check_accuracy (type s e) ~name ~trials ~epsilon ~log2_universe ~truth ~pool
    (module F : Delphic_family.Family.FAMILY with type t = s and type elt = e) =
  let module V = Delphic_core.Vatic.Make (F) in
  let failures = ref 0 in
  for i = 0 to trials - 1 do
    let t =
      V.create ~epsilon ~delta:0.2 ~log2_universe ~seed:(7000 + (37 * i)) ()
    in
    List.iter (V.process t) pool;
    Alcotest.(check int) (name ^ ": no skips") 0 (V.skipped_sets t);
    if Float.abs (V.estimate t -. truth) > epsilon *. truth then incr failures
  done;
  (* delta = 0.2; empirically failures are rare — allow 25%. *)
  if 4 * !failures > trials then
    Alcotest.failf "%s: %d/%d trials outside epsilon" name !failures trials

let test_coverage_family () =
  let nbits = 14 and strength = 2 in
  let gen = Rng.create ~seed:191 in
  let vectors = Workload.Coverage_suites.random gen ~nbits ~count:150 ~bias:0.4 in
  let pool = Workload.Coverage_suites.coverage_sets ~strength vectors in
  let truth = B.to_float (Exact.coverage_union ~strength vectors) in
  check_accuracy ~name:"coverage" ~trials:12 ~epsilon:0.2
    ~log2_universe:(B.log2 (Delphic_sets.Coverage.universe_size ~n:nbits ~strength))
    ~truth ~pool
    (module Delphic_sets.Coverage)

let test_knapsack_family () =
  let gen = Rng.create ~seed:192 in
  let pool = Workload.Knapsacks.random gen ~nvars:16 ~max_weight:20 ~count:12 in
  let truth = B.to_float (Exact.knapsack_union pool) in
  check_accuracy ~name:"knapsack" ~trials:10 ~epsilon:0.25 ~log2_universe:16.0 ~truth
    ~pool
    (module Delphic_sets.Knapsack)

let test_hypervolume_family () =
  let gen = Rng.create ~seed:193 in
  let pool = Workload.Hypervolumes.pareto_front gen ~universe:512 ~dim:3 ~count:40 in
  let boxes = List.map Delphic_sets.Hypervolume.to_rectangle pool in
  let truth = B.to_float (Exact.rectangle_union boxes) in
  check_accuracy ~name:"hypervolume" ~trials:12 ~epsilon:0.25
    ~log2_universe:(3.0 *. 9.0) ~truth ~pool
    (module Delphic_sets.Hypervolume)

let test_singleton_family () =
  let gen = Rng.create ~seed:194 in
  let pool = Workload.Singletons.zipf gen ~universe:65536 ~count:20_000 ~exponent:1.2 in
  let truth =
    float_of_int (Exact.distinct (List.map Delphic_sets.Singleton.value pool))
  in
  check_accuracy ~name:"singleton" ~trials:6 ~epsilon:0.25 ~log2_universe:16.0 ~truth
    ~pool
    (module Delphic_sets.Singleton)

(* Mixed stream sanity: the same estimator instance across wildly different
   set sizes within one family (tiny and huge ranges interleaved). *)
let test_mixed_sizes () =
  let module V = Delphic_core.Vatic.Make (Delphic_sets.Range1d) in
  let gen = Rng.create ~seed:195 in
  let pool =
    List.concat
      [
        Workload.Ranges.uniform gen ~universe:1_000_000 ~count:100 ~max_len:5;
        Workload.Ranges.uniform gen ~universe:1_000_000 ~count:10 ~max_len:100_000;
        Workload.Ranges.heavy_tailed gen ~universe:1_000_000 ~count:100 ~shape:0.7;
      ]
  in
  let truth = float_of_int (Exact.range_union pool) in
  let failures = ref 0 in
  for i = 0 to 9 do
    let t =
      V.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:(7300 + i) ()
    in
    List.iter (V.process t) (Workload.Orders.shuffled (Rng.create ~seed:i) pool);
    if Float.abs (V.estimate t -. truth) > 0.25 *. truth then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/10" !failures) true (!failures <= 2)

let suite =
  [
    Alcotest.test_case "VATIC on coverage sets" `Quick test_coverage_family;
    Alcotest.test_case "VATIC on knapsack sets" `Quick test_knapsack_family;
    Alcotest.test_case "VATIC on hypervolume sets" `Quick test_hypervolume_family;
    Alcotest.test_case "VATIC on zipf singletons" `Quick test_singleton_family;
    Alcotest.test_case "VATIC on mixed-size streams" `Quick test_mixed_sizes;
  ]
