(* Exact ground-truth algorithms, cross-checked against brute force. *)

module Exact = Delphic_sets.Exact
module Range1d = Delphic_sets.Range1d
module Rectangle = Delphic_sets.Rectangle
module Knapsack = Delphic_sets.Knapsack
module Bitvec = Delphic_util.Bitvec
module B = Delphic_util.Bigint
module Rng = Delphic_util.Rng

let test_range_union_basic () =
  Alcotest.(check int) "empty" 0 (Exact.range_union []);
  Alcotest.(check int) "single" 5 (Exact.range_union [ Range1d.create ~lo:3 ~hi:7 ]);
  Alcotest.(check int) "disjoint" 4
    (Exact.range_union [ Range1d.create ~lo:0 ~hi:1; Range1d.create ~lo:5 ~hi:6 ]);
  Alcotest.(check int) "overlapping" 6
    (Exact.range_union [ Range1d.create ~lo:0 ~hi:3; Range1d.create ~lo:2 ~hi:5 ]);
  Alcotest.(check int) "adjacent merge" 6
    (Exact.range_union [ Range1d.create ~lo:0 ~hi:2; Range1d.create ~lo:3 ~hi:5 ]);
  Alcotest.(check int) "nested" 10
    (Exact.range_union [ Range1d.create ~lo:0 ~hi:9; Range1d.create ~lo:2 ~hi:4 ])

let test_range_union_random_vs_bruteforce () =
  let rng = Rng.create ~seed:91 in
  for _ = 1 to 50 do
    let ranges =
      List.init (1 + Rng.int rng 20) (fun _ ->
          let lo = Rng.int rng 100 in
          Range1d.create ~lo ~hi:(lo + Rng.int rng 20))
    in
    let brute = Hashtbl.create 64 in
    List.iter
      (fun r ->
        for x = Range1d.lo r to Range1d.hi r do
          Hashtbl.replace brute x ()
        done)
      ranges;
    Alcotest.(check int) "sweep = brute" (Hashtbl.length brute) (Exact.range_union ranges)
  done

let test_rectangle_union_basic () =
  Alcotest.(check string) "empty" "0" (B.to_string (Exact.rectangle_union []));
  let a = Rectangle.create ~lo:[| 0; 0 |] ~hi:[| 1; 1 |] in
  Alcotest.(check string) "single 2x2" "4" (B.to_string (Exact.rectangle_union [ a ]));
  Alcotest.(check string) "duplicate" "4" (B.to_string (Exact.rectangle_union [ a; a ]));
  let b = Rectangle.create ~lo:[| 1; 1 |] ~hi:[| 2; 2 |] in
  (* 4 + 4 - 1 overlap point *)
  Alcotest.(check string) "overlap corner" "7" (B.to_string (Exact.rectangle_union [ a; b ]))

let test_rectangle_union_random_vs_bruteforce () =
  let rng = Rng.create ~seed:92 in
  for _ = 1 to 25 do
    let dim = 1 + Rng.int rng 3 in
    let boxes =
      List.init (1 + Rng.int rng 8) (fun _ ->
          let lo = Array.init dim (fun _ -> Rng.int rng 12) in
          let hi = Array.map (fun l -> l + Rng.int rng 6) lo in
          Rectangle.create ~lo ~hi)
    in
    (* Brute force over the 18^dim grid. *)
    let count = ref 0 in
    let pt = Array.make dim 0 in
    let rec scan axis =
      if axis = dim then begin
        if List.exists (fun b -> Rectangle.mem b pt) boxes then incr count
      end
      else
        for v = 0 to 17 do
          pt.(axis) <- v;
          scan (axis + 1)
        done
    in
    scan 0;
    Alcotest.(check string) "grid measure = brute"
      (string_of_int !count)
      (B.to_string (Exact.rectangle_union boxes))
  done

let test_dnf_count_bdd_vs_enum () =
  let rng = Rng.create ~seed:93 in
  for _ = 1 to 20 do
    let nvars = 3 + Rng.int rng 10 in
    let terms =
      Delphic_stream.Workload.Dnf_terms.random rng ~nvars
        ~count:(1 + Rng.int rng 10)
        ~width:(1 + Rng.int rng (min 4 nvars))
    in
    Alcotest.(check string) "bdd = enum"
      (B.to_string (Exact.dnf_count_enum ~nvars terms))
      (B.to_string (Exact.dnf_count ~nvars terms))
  done

let test_coverage_union_bruteforce () =
  let vectors = List.map Bitvec.of_string [ "1100"; "1010"; "1100" ] in
  (* t = 1: positions {0..3}, patterns exhibited:
     pos0: {1}, pos1: {1,0}, pos2: {0,1}, pos3: {0} -> 1+2+2+1 = 6. *)
  Alcotest.(check string) "t=1" "6" (B.to_string (Exact.coverage_union ~strength:1 vectors));
  (* t = 2: check against direct enumeration. *)
  let direct = ref 0 in
  Delphic_util.Comb.iter_subsets ~n:4 ~k:2 (fun positions ->
      let seen = Hashtbl.create 4 in
      List.iter
        (fun v -> Hashtbl.replace seen (Bitvec.to_string (Bitvec.extract v positions)) ())
        vectors;
      direct := !direct + Hashtbl.length seen);
  Alcotest.(check string) "t=2" (string_of_int !direct)
    (B.to_string (Exact.coverage_union ~strength:2 vectors))

let test_distinct () =
  Alcotest.(check int) "empty" 0 (Exact.distinct []);
  Alcotest.(check int) "dups" 3 (Exact.distinct [ 1; 2; 2; 3; 1; 1 ])

let test_knapsack_union () =
  let a = Knapsack.create ~weights:[| 3; 5; 7 |] ~bound:8 in
  let b = Knapsack.create ~weights:[| 3; 5; 7 |] ~bound:10 in
  (* b's solutions are a superset (same weights, larger bound). *)
  Alcotest.(check string) "superset union = |b|"
    (B.to_string (Knapsack.cardinality b))
    (B.to_string (Exact.knapsack_union [ a; b ]));
  (* Different weights: brute-force check. *)
  let c = Knapsack.create ~weights:[| 2; 2; 9 |] ~bound:4 in
  let brute = ref 0 in
  for x = 0 to 7 do
    let v = Bitvec.create ~width:3 in
    for i = 0 to 2 do
      Bitvec.set v i ((x lsr i) land 1 = 1)
    done;
    if Knapsack.mem a v || Knapsack.mem c v then incr brute
  done;
  Alcotest.(check string) "mixed union" (string_of_int !brute)
    (B.to_string (Exact.knapsack_union [ a; c ]))

let suite =
  [
    Alcotest.test_case "range union: basics" `Quick test_range_union_basic;
    Alcotest.test_case "range union: random vs brute force" `Quick test_range_union_random_vs_bruteforce;
    Alcotest.test_case "rectangle union: basics" `Quick test_rectangle_union_basic;
    Alcotest.test_case "rectangle union: random vs brute force" `Quick test_rectangle_union_random_vs_bruteforce;
    Alcotest.test_case "dnf count: BDD vs enumeration" `Quick test_dnf_count_bdd_vs_enum;
    Alcotest.test_case "coverage union vs brute force" `Quick test_coverage_union_bruteforce;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "knapsack union" `Quick test_knapsack_union;
  ]
