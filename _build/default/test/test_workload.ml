(* Workload generators: every produced set is well-formed, counts match,
   and the qualitative shape each generator promises actually holds. *)

module Rng = Delphic_util.Rng
module Rectangle = Delphic_sets.Rectangle
module Workload = Delphic_stream.Workload

let test_rect_uniform () =
  let rng = Rng.create ~seed:501 in
  let boxes = Workload.Rectangles.uniform rng ~universe:1000 ~dim:3 ~count:50 ~max_side:100 in
  Alcotest.(check int) "count" 50 (List.length boxes);
  List.iter
    (fun b ->
      Alcotest.(check int) "dim" 3 (Rectangle.dim b);
      Array.iteri
        (fun i l ->
          let h = (Rectangle.hi b).(i) in
          if l < 0 || h >= 1000 || h - l + 1 > 100 then
            Alcotest.failf "box out of spec: [%d, %d]" l h)
        (Rectangle.lo b))
    boxes

let test_rect_clustered_overlap () =
  (* Clustered boxes must overlap far more than uniform ones: compare union
     volume to total volume. *)
  let rng = Rng.create ~seed:502 in
  let density boxes =
    let union = Delphic_util.Bigint.to_float (Delphic_sets.Exact.rectangle_union boxes) in
    let total =
      List.fold_left
        (fun acc b -> acc +. Delphic_util.Bigint.to_float (Rectangle.volume b))
        0.0 boxes
    in
    union /. total
  in
  let uniform =
    Workload.Rectangles.uniform rng ~universe:100_000 ~dim:2 ~count:40 ~max_side:4000
  in
  let clustered =
    Workload.Rectangles.clustered rng ~universe:100_000 ~dim:2 ~count:40 ~clusters:2
      ~spread:1000 ~max_side:4000
  in
  Alcotest.(check bool) "clustered overlaps more" true (density clustered < density uniform)

let test_rect_nested_chain () =
  let rng = Rng.create ~seed:503 in
  let boxes = Workload.Rectangles.nested rng ~universe:10_000 ~dim:2 ~count:20 in
  Alcotest.(check int) "count" 20 (List.length boxes);
  (* Sorted by volume descending, each must contain the next. *)
  let sorted =
    List.sort
      (fun a b ->
        Delphic_util.Bigint.compare (Rectangle.volume b) (Rectangle.volume a))
      boxes
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "outer contains inner" true (Rectangle.contains_box a b);
      check rest
    | _ -> ()
  in
  check sorted

let test_hypervolume_front () =
  let rng = Rng.create ~seed:504 in
  let front = Workload.Hypervolumes.pareto_front rng ~universe:1024 ~dim:3 ~count:30 in
  Alcotest.(check int) "count" 30 (List.length front);
  List.iter
    (fun h ->
      Array.iter
        (fun c -> if c < 1 || c >= 1024 then Alcotest.failf "corner %d out of range" c)
        (Delphic_sets.Hypervolume.corner h))
    front

let test_dnf_terms () =
  let rng = Rng.create ~seed:505 in
  let terms = Workload.Dnf_terms.random rng ~nvars:30 ~count:40 ~width:7 in
  Alcotest.(check int) "count" 40 (List.length terms);
  List.iter
    (fun t ->
      Alcotest.(check int) "width" 7 (Delphic_sets.Dnf.width t);
      Alcotest.(check int) "nvars" 30 (Delphic_sets.Dnf.nvars t))
    terms;
  Alcotest.check_raises "width > nvars"
    (Invalid_argument "Dnf_terms.random: width > nvars") (fun () ->
      ignore (Workload.Dnf_terms.random rng ~nvars:3 ~count:1 ~width:4))

let test_coverage_suites () =
  let rng = Rng.create ~seed:506 in
  let vectors = Workload.Coverage_suites.random rng ~nbits:20 ~count:100 ~bias:0.8 in
  Alcotest.(check int) "count" 100 (List.length vectors);
  let ones =
    List.fold_left (fun acc v -> acc + Delphic_util.Bitvec.popcount v) 0 vectors
  in
  (* 2000 bits at bias 0.8: expect ~1600. *)
  Alcotest.(check bool) "bias respected" true (abs (ones - 1600) < 150);
  let sets = Workload.Coverage_suites.coverage_sets ~strength:2 vectors in
  Alcotest.(check int) "lifted count" 100 (List.length sets)

let test_singletons () =
  let rng = Rng.create ~seed:507 in
  let s = Workload.Singletons.uniform rng ~universe:50 ~count:1000 in
  List.iter
    (fun x ->
      let v = Delphic_sets.Singleton.value x in
      if v < 0 || v >= 50 then Alcotest.fail "singleton out of range")
    s;
  let z = Workload.Singletons.zipf rng ~universe:50 ~count:5000 ~exponent:1.5 in
  let zero_count =
    List.length (List.filter (fun x -> Delphic_sets.Singleton.value x = 0) z)
  in
  (* Zipf head should be very frequent. *)
  Alcotest.(check bool) "zipf head heavy" true (zero_count > 1000)

let test_ranges () =
  let rng = Rng.create ~seed:508 in
  let ranges = Workload.Ranges.uniform rng ~universe:1000 ~count:200 ~max_len:50 in
  List.iter
    (fun r ->
      let lo = Delphic_sets.Range1d.lo r and hi = Delphic_sets.Range1d.hi r in
      if lo < 0 || hi >= 1000 || hi - lo >= 50 then Alcotest.fail "range out of spec")
    ranges

let test_heavy_tailed_ranges () =
  let rng = Rng.create ~seed:510 in
  let ranges =
    Workload.Ranges.heavy_tailed rng ~universe:1_000_000 ~count:2000 ~shape:0.8
  in
  Alcotest.(check int) "count" 2000 (List.length ranges);
  let lengths =
    List.map (fun r -> Delphic_sets.Range1d.length r) ranges
  in
  List.iter
    (fun l -> if l < 1 || l > 1_000_000 then Alcotest.failf "length %d out of range" l)
    lengths;
  (* Heavy tail: the max length dwarfs the median. *)
  let sorted = List.sort compare lengths in
  let median = List.nth sorted 1000 in
  let longest = List.nth sorted 1999 in
  Alcotest.(check bool)
    (Printf.sprintf "heavy tail (median %d, max %d)" median longest)
    true
    (longest > 100 * median);
  (match Workload.Ranges.heavy_tailed rng ~universe:10 ~count:1 ~shape:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shape 0 must fail")

let test_knapsacks () =
  let rng = Rng.create ~seed:509 in
  let instances = Workload.Knapsacks.random rng ~nvars:10 ~max_weight:30 ~count:10 in
  List.iter
    (fun k ->
      Alcotest.(check int) "nvars" 10 (Delphic_sets.Knapsack.nvars k);
      let total = Array.fold_left ( + ) 0 (Delphic_sets.Knapsack.weights k) in
      let b = Delphic_sets.Knapsack.bound k in
      Alcotest.(check bool) "bound near half total" true (b >= total / 2 && b <= total))
    instances

let suite =
  [
    Alcotest.test_case "rectangles: uniform" `Quick test_rect_uniform;
    Alcotest.test_case "rectangles: clustered overlap" `Quick test_rect_clustered_overlap;
    Alcotest.test_case "rectangles: nested chain" `Quick test_rect_nested_chain;
    Alcotest.test_case "hypervolume front" `Quick test_hypervolume_front;
    Alcotest.test_case "dnf terms" `Quick test_dnf_terms;
    Alcotest.test_case "coverage suites" `Quick test_coverage_suites;
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "ranges" `Quick test_ranges;
    Alcotest.test_case "heavy-tailed ranges" `Quick test_heavy_tailed_ranges;
    Alcotest.test_case "knapsacks" `Quick test_knapsacks;
  ]
