(* Extensions beyond the paper's pseudocode: the CVM distinct-elements
   estimator, sketch checkpointing, the oracle-counting wrapper, stream
   order transformations, and CSV table output. *)

module Rng = Delphic_util.Rng
module Range1d = Delphic_sets.Range1d
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload
module Cvm = Delphic_core.Cvm
module V_range = Delphic_core.Vatic.Make (Range1d)
module Counting_range = Delphic_family.Family.Counting (Range1d)
module V_counting = Delphic_core.Vatic.Make (Counting_range)

(* --- CVM --- *)

let test_cvm_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Cvm.create ~epsilon:0.0 ~delta:0.1 ~stream_bound:10 ~seed:1 ());
  expect_invalid (fun () ->
      Cvm.create ~thresh:1 ~epsilon:0.2 ~delta:0.1 ~stream_bound:10 ~seed:1 ())

let test_cvm_small_exact () =
  (* Below the buffer size nothing is ever evicted: exact count. *)
  let t = Cvm.create ~thresh:1000 ~epsilon:0.2 ~delta:0.1 ~stream_bound:100 ~seed:2 () in
  for x = 1 to 50 do
    Cvm.add t x;
    Cvm.add t x
  done;
  Alcotest.(check (float 0.0)) "exact when small" 50.0 (Cvm.estimate t);
  Alcotest.(check int) "level 0" 0 (Cvm.level t)

let test_cvm_accuracy () =
  let truth = 50_000 in
  let failures = ref 0 in
  for i = 0 to 9 do
    let t =
      Cvm.create ~epsilon:0.15 ~delta:0.1 ~stream_bound:(3 * truth) ~seed:(10 + i) ()
    in
    (* Stream with duplicates: every value appears up to 3 times. *)
    let rng = Rng.create ~seed:(100 + i) in
    for x = 0 to truth - 1 do
      for _ = 0 to Rng.int rng 3 do
        Cvm.add t x
      done
    done;
    let est = Cvm.estimate t in
    if Float.abs (est -. float_of_int truth) > 0.15 *. float_of_int truth then
      incr failures;
    Alcotest.(check bool) "buffer bounded" true (Cvm.buffer_size t < Cvm.thresh t)
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/10" !failures) true (!failures <= 2)

let test_cvm_agrees_with_vatic_semantics () =
  (* CVM on singletons and VATIC on the same values should both land near
     the distinct count. *)
  let rng = Rng.create ~seed:141 in
  let values = List.init 30_000 (fun _ -> Rng.int rng 8192) in
  let truth = float_of_int (Exact.distinct values) in
  let cvm = Cvm.create ~epsilon:0.2 ~delta:0.1 ~stream_bound:30_000 ~seed:3 () in
  List.iter (Cvm.add cvm) values;
  Alcotest.(check bool) "cvm close" true
    (Float.abs (Cvm.estimate cvm -. truth) <= 0.2 *. truth)

(* --- snapshot / restore --- *)

let test_snapshot_roundtrip () =
  let gen = Rng.create ~seed:142 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:150 ~max_len:4000 in
  let first_half, second_half =
    List.filteri (fun i _ -> i < 75) pool, List.filteri (fun i _ -> i >= 75) pool
  in
  let t = V_range.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:4 () in
  List.iter (V_range.process t) first_half;
  let snap = V_range.snapshot t in
  Alcotest.(check int) "items captured" 75 snap.V_range.items;
  Alcotest.(check int) "entries = bucket" (V_range.bucket_size t)
    (List.length snap.V_range.entries);
  (* Restore on a fresh estimator and continue the stream. *)
  let t' = V_range.restore snap ~seed:99 in
  Alcotest.(check int) "restored bucket size" (V_range.bucket_size t)
    (V_range.bucket_size t');
  Alcotest.(check int) "restored items" 75 (V_range.items_processed t');
  List.iter (V_range.process t') second_half;
  let truth = float_of_int (Exact.range_union pool) in
  let est = V_range.estimate t' in
  Alcotest.(check bool)
    (Printf.sprintf "resumed estimate %.0f near %.0f" est truth)
    true
    (Float.abs (est -. truth) <= 0.35 *. truth)

let test_snapshot_preserves_instrumentation () =
  let t = V_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:5 () in
  V_range.process t (Range1d.create ~lo:0 ~hi:999);
  let snap = V_range.snapshot t in
  let t' = V_range.restore snap ~seed:6 in
  let c = V_range.oracle_calls t and c' = V_range.oracle_calls t' in
  Alcotest.(check int) "sampling calls survive" c.V_range.sampling c'.V_range.sampling;
  Alcotest.(check int) "max bucket survives" (V_range.max_bucket_size t)
    (V_range.max_bucket_size t')

let test_snapshot_rectangles () =
  (* Structured elements (int arrays) through the checkpoint path. *)
  let module VR = Delphic_core.Vatic.Make (Delphic_sets.Rectangle) in
  let gen = Rng.create ~seed:144 in
  let pool =
    Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count:80 ~max_side:8000
  in
  let t = VR.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:34.0 ~seed:8 () in
  List.iter (VR.process t) pool;
  let t' = VR.restore (VR.snapshot t) ~seed:77 in
  Alcotest.(check int) "bucket preserved" (VR.bucket_size t) (VR.bucket_size t');
  let truth = Delphic_util.Bigint.to_float (Exact.rectangle_union pool) in
  let est = VR.estimate t' in
  Alcotest.(check bool)
    (Printf.sprintf "restored estimate %.0f near %.0f" est truth)
    true
    (Float.abs (est -. truth) <= 0.4 *. truth)

(* --- Counting oracle wrapper --- *)

let test_counting_wrapper () =
  Counting_range.reset ();
  let t = V_counting.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:7 () in
  V_counting.process t (Range1d.create ~lo:0 ~hi:9999);
  V_counting.process t (Range1d.create ~lo:5000 ~hi:14_999);
  let internal = V_counting.oracle_calls t in
  (* The external wrapper and the estimator's own accounting must agree. *)
  Alcotest.(check int) "cardinality calls" internal.V_counting.cardinality
    (Counting_range.cardinality_calls ());
  Alcotest.(check int) "sampling calls" internal.V_counting.sampling
    (Counting_range.sample_calls ());
  Alcotest.(check int) "membership calls" internal.V_counting.membership
    (Counting_range.mem_calls ());
  Alcotest.(check int) "total adds up"
    (internal.V_counting.membership + internal.V_counting.cardinality
   + internal.V_counting.sampling)
    (Counting_range.total_calls ());
  Counting_range.reset ();
  Alcotest.(check int) "reset" 0 (Counting_range.total_calls ())

(* --- stream orders --- *)

let test_orders () =
  let rng = Rng.create ~seed:143 in
  let items = [ 1; 2; 3; 4; 5 ] in
  let shuffled = Workload.Orders.shuffled rng items in
  Alcotest.(check (list int)) "shuffle is a permutation" items
    (List.sort compare shuffled);
  Alcotest.(check (list int)) "sorted ascending" [ 1; 2; 3; 4; 5 ]
    (Workload.Orders.sorted_by float_of_int shuffled);
  Alcotest.(check (list int)) "sorted descending" [ 5; 4; 3; 2; 1 ]
    (Workload.Orders.sorted_by_desc float_of_int shuffled);
  Alcotest.(check (list int)) "bursty" [ 1; 1; 2; 2 ]
    (Workload.Orders.bursty ~copies:2 [ 1; 2 ]);
  Alcotest.(check (list int)) "interleaved" [ 1; 2; 1; 2 ]
    (Workload.Orders.interleaved ~copies:2 [ 1; 2 ]);
  (match Workload.Orders.bursty ~copies:0 [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

(* --- CSV table output --- *)

let capture_stdout f =
  let path = Filename.temp_file "delphic_table" ".txt" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  contents

let test_csv_output () =
  let header = [ "name"; "value" ] in
  let rows = [ [ "a,b"; "1" ]; [ "plain"; "2" ] ] in
  let out =
    capture_stdout (fun () ->
        Delphic_harness.Table.set_output `Csv;
        Delphic_harness.Table.print ~title:"T" ~header rows;
        Delphic_harness.Table.set_output `Text)
  in
  Alcotest.(check bool) "title commented" true
    (String.length out > 0 && String.sub out 0 1 = "\n" || String.length out > 0);
  Alcotest.(check bool) "has quoted comma cell" true
    (let rec contains i =
       i + 7 <= String.length out
       && (String.sub out i 7 = "\"a,b\",1" || contains (i + 1))
     in
     contains 0);
  Alcotest.(check bool) "has csv header" true
    (let rec contains i =
       i + 10 <= String.length out
       && (String.sub out i 10 = "name,value" || contains (i + 1))
     in
     contains 0)

let suite =
  [
    Alcotest.test_case "cvm: validation" `Quick test_cvm_validation;
    Alcotest.test_case "cvm: exact when small" `Quick test_cvm_small_exact;
    Alcotest.test_case "cvm: accuracy" `Quick test_cvm_accuracy;
    Alcotest.test_case "cvm: matches distinct count" `Quick test_cvm_agrees_with_vatic_semantics;
    Alcotest.test_case "snapshot roundtrip resumes stream" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot preserves instrumentation" `Quick test_snapshot_preserves_instrumentation;
    Alcotest.test_case "snapshot with structured elements" `Quick test_snapshot_rectangles;
    Alcotest.test_case "counting oracle wrapper" `Quick test_counting_wrapper;
    Alcotest.test_case "stream orders" `Quick test_orders;
    Alcotest.test_case "csv output" `Quick test_csv_output;
  ]
