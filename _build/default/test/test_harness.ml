(* Harness utilities: table rendering and the trial runner. *)

module Table = Delphic_harness.Table
module Trial = Delphic_harness.Trial

let test_table_alignment () =
  let out =
    Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: sep :: _ ->
    Alcotest.(check bool) "header padded" true
      (String.length header >= String.length "long-name  value");
    Alcotest.(check bool) "separator dashes" true (String.contains sep '-')
  | _ -> Alcotest.fail "expected at least header and separator");
  (* All non-empty lines share the same width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no output")

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () -> ignore (Table.render ~header:[ "a"; "b" ] [ [ "only-one" ] ]))

let test_cells () =
  Alcotest.(check string) "zero" "0" (Table.cell_f 0.0);
  Alcotest.(check string) "plain" "12.35" (Table.cell_f 12.3456);
  Alcotest.(check string) "exponential" "1.234e+09" (Table.cell_f 1.2341e9);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)

let test_timed () =
  let { Trial.value; seconds } = Trial.timed (fun () -> 21 * 2) in
  Alcotest.(check int) "value" 42 value;
  Alcotest.(check bool) "non-negative time" true (seconds >= 0.0)

let test_run_seeds () =
  let seen = ref [] in
  let outcomes =
    Trial.run ~trials:5 ~base_seed:100 (fun ~seed ->
        seen := seed :: !seen;
        seed)
  in
  Alcotest.(check (list int)) "seeds consecutive" [ 104; 103; 102; 101; 100 ] !seen;
  Alcotest.(check int) "outcomes" 5 (List.length outcomes)

let test_estimates_summary () =
  let est, err, _secs =
    Trial.estimates ~trials:4 ~base_seed:0 ~truth:100.0 (fun ~seed ->
        100.0 +. float_of_int seed)
  in
  Alcotest.(check int) "count" 4 (Delphic_util.Summary.count est);
  Alcotest.(check (float 1e-9)) "mean estimate" 101.5 (Delphic_util.Summary.mean est);
  Alcotest.(check (float 1e-9)) "mean rel err" 0.015 (Delphic_util.Summary.mean err)

let test_failure_rate () =
  let values = [ 100.0; 109.0; 111.0; 89.0; 150.0 ] in
  (* 111, 89 and 150 deviate by more than 10. *)
  Alcotest.(check (float 1e-9)) "3 of 5 outside 10%" 0.6
    (Trial.failure_rate ~epsilon:0.1 ~truth:100.0 values)

let test_parallel_map_matches_sequential () =
  let f x = (x * x) + 1 in
  let input = List.init 103 Fun.id in
  Alcotest.(check (list int)) "order preserved, results equal" (List.map f input)
    (Delphic_harness.Parallel.map ~domains:4 f input);
  Alcotest.(check (list int)) "single domain fallback" (List.map f input)
    (Delphic_harness.Parallel.map ~domains:1 f input);
  Alcotest.(check (list int)) "empty" [] (Delphic_harness.Parallel.map f []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Delphic_harness.Parallel.map f [ 1 ]);
  Alcotest.(check bool) "default domains >= 1" true
    (Delphic_harness.Parallel.default_domains () >= 1)

let test_parallel_map_with_estimators () =
  (* Realistic use: independent estimator trials across domains agree with
     sequential execution (everything is seed-deterministic). *)
  let module V = Delphic_core.Vatic.Make (Delphic_sets.Range1d) in
  let gen = Delphic_util.Rng.create ~seed:211 in
  let pool =
    Delphic_stream.Workload.Ranges.uniform gen ~universe:100_000 ~count:60 ~max_len:2000
  in
  let run seed =
    let t = V.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0 ~seed () in
    List.iter (V.process t) pool;
    V.estimate t
  in
  let seeds = List.init 8 (fun i -> 400 + i) in
  Alcotest.(check (list (float 1e-9))) "parallel = sequential"
    (List.map run seeds)
    (Delphic_harness.Parallel.map ~domains:4 run seeds)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table rejects ragged rows" `Quick test_table_ragged_rejected;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "timed" `Quick test_timed;
    Alcotest.test_case "run assigns consecutive seeds" `Quick test_run_seeds;
    Alcotest.test_case "estimates summary" `Quick test_estimates_summary;
    Alcotest.test_case "failure rate" `Quick test_failure_rate;
    Alcotest.test_case "parallel map matches sequential" `Quick test_parallel_map_matches_sequential;
    Alcotest.test_case "parallel estimator trials" `Quick test_parallel_map_with_estimators;
  ]
