(* APS-Estimator (MVC'21 baseline) and its Approximate-Delphic extension
   (Theorem D.1): accuracy, the hard capacity bound, and the log M capacity
   growth that motivates VATIC. *)

module Rng = Delphic_util.Rng
module Range1d = Delphic_sets.Range1d
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload
module Aps = Delphic_core.Aps_estimator.Make (Range1d)
module Wrap = Delphic_sets.Approx_wrap.Make (Range1d)
module Ext_aps = Delphic_core.Ext_aps_estimator.Make (Wrap)

let make_pool seed count =
  let gen = Rng.create ~seed in
  Workload.Ranges.uniform gen ~universe:1_000_000 ~count ~max_len:4000

let test_accuracy () =
  let pool = make_pool 301 300 in
  let truth = float_of_int (Exact.range_union pool) in
  let epsilon = 0.25 in
  let failures = ref 0 in
  for i = 0 to 19 do
    let t =
      Aps.create ~epsilon ~delta:0.2 ~log2_universe:20.0
        ~stream_length:(List.length pool) ~seed:(500 + i) ()
    in
    List.iter (Aps.process t) pool;
    if Float.abs (Aps.estimate t -. truth) > epsilon *. truth then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/20" !failures) true (!failures <= 4)

let test_capacity_is_hard_bound () =
  let pool = make_pool 302 400 in
  let t =
    Aps.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~stream_length:400 ~seed:9 ()
  in
  List.iter
    (fun s ->
      Aps.process t s;
      if Aps.bucket_size t > Aps.capacity t then
        Alcotest.failf "bucket %d exceeds capacity %d" (Aps.bucket_size t) (Aps.capacity t))
    pool;
  Alcotest.(check bool) "max bucket tracked" true (Aps.max_bucket_size t <= Aps.capacity t)

let test_capacity_grows_with_m () =
  let make m =
    Aps.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~stream_length:m ~seed:1 ()
  in
  let c100 = Aps.capacity (make 100) in
  let c10k = Aps.capacity (make 10_000) in
  let c1m = Aps.capacity (make 1_000_000) in
  Alcotest.(check bool) "strictly growing" true (c100 < c10k && c10k < c1m);
  (* Growth should be logarithmic: the jump 100 -> 10^6 multiplies the
     additive log term by ~3, never the whole capacity by 100x. *)
  Alcotest.(check bool) "sub-linear growth" true (c1m < 4 * c100)

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Aps.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~stream_length:0 ~seed:1 ());
  expect_invalid (fun () ->
      Aps.create ~epsilon:2.0 ~delta:0.2 ~log2_universe:20.0 ~stream_length:10 ~seed:1 ())

let test_ext_aps_window () =
  let pool = make_pool 303 200 in
  let truth = float_of_int (Exact.range_union pool) in
  let alpha = 0.3 and gamma = 0.05 and eta = 0.2 in
  let wrapped = List.map (Wrap.wrap ~alpha ~gamma ~eta) pool in
  let inside = ref 0 in
  let trials = 10 in
  for i = 0 to trials - 1 do
    let t =
      Ext_aps.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~alpha ~gamma ~eta
        ~stream_length:(List.length pool) ~seed:(600 + i) ()
    in
    List.iter (Ext_aps.process t) wrapped;
    let est = Ext_aps.estimate t in
    let lo, hi = Ext_aps.window t in
    if est >= lo *. truth && est <= hi *. truth then incr inside
  done;
  Alcotest.(check bool) (Printf.sprintf "inside %d/%d" !inside trials) true
    (!inside >= trials - 2)

let test_ext_aps_capacity_hard_bound () =
  let pool = make_pool 304 300 in
  let wrapped = List.map (Wrap.wrap ~alpha:0.2 ~gamma:0.05 ~eta:0.1) pool in
  let t =
    Ext_aps.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~alpha:0.2 ~gamma:0.05
      ~eta:0.1 ~stream_length:300 ~seed:10 ()
  in
  List.iter
    (fun s ->
      Ext_aps.process t s;
      if Ext_aps.bucket_size t > Ext_aps.capacity t then
        Alcotest.failf "bucket %d exceeds capacity %d" (Ext_aps.bucket_size t)
          (Ext_aps.capacity t))
    wrapped

let test_ext_aps_sample_union () =
  let pool = make_pool 305 150 in
  let wrapped = List.map (Wrap.wrap ~alpha:0.2 ~gamma:0.05 ~eta:0.1) pool in
  let t =
    Ext_aps.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~alpha:0.2 ~gamma:0.05
      ~eta:0.1 ~stream_length:150 ~seed:11 ()
  in
  List.iter (Ext_aps.process t) wrapped;
  for _ = 1 to 30 do
    match Ext_aps.sample_union t with
    | None -> Alcotest.fail "expected non-empty bucket"
    | Some x ->
      Alcotest.(check bool) "sample in union" true
        (List.exists (fun r -> Range1d.mem r x) pool)
  done

let suite =
  [
    Alcotest.test_case "accuracy" `Quick test_accuracy;
    Alcotest.test_case "capacity is a hard bound" `Quick test_capacity_is_hard_bound;
    Alcotest.test_case "capacity grows with log M" `Quick test_capacity_grows_with_m;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "EXT-APS window compliance (Thm D.1)" `Quick test_ext_aps_window;
    Alcotest.test_case "EXT-APS capacity hard bound" `Quick test_ext_aps_capacity_hard_bound;
    Alcotest.test_case "EXT-APS union sampling" `Quick test_ext_aps_sample_union;
  ]
