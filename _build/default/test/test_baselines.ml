(* Offline / specialised baselines: Karp-Luby, bottom-k (KMV), HyperLogLog,
   and the Approx_wrap degradation layer. *)

module Rng = Delphic_util.Rng
module Range1d = Delphic_sets.Range1d
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload
module Kl = Delphic_core.Karp_luby.Make (Range1d)
module Bottom_k = Delphic_core.Bottom_k
module Hll = Delphic_core.Hyperloglog
module Wrap = Delphic_sets.Approx_wrap.Make (Range1d)
module B = Delphic_util.Bigint

(* --- Karp-Luby --- *)

let test_kl_empty () =
  let kl = Kl.create ~epsilon:0.2 ~delta:0.2 ~seed:1 () in
  Alcotest.(check (float 0.0)) "empty" 0.0 (Kl.estimate kl)

let test_kl_accuracy () =
  let gen = Rng.create ~seed:401 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:150 ~max_len:5000 in
  let truth = float_of_int (Exact.range_union pool) in
  let failures = ref 0 in
  for i = 0 to 9 do
    let kl = Kl.create ~epsilon:0.15 ~delta:0.2 ~seed:(700 + i) () in
    List.iter (Kl.add kl) pool;
    if Float.abs (Kl.estimate kl -. truth) > 0.15 *. truth then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/10" !failures) true (!failures <= 2)

let test_kl_trials_budget () =
  let kl = Kl.create ~epsilon:0.1 ~delta:0.1 ~seed:1 () in
  Kl.add kl (Range1d.create ~lo:0 ~hi:9);
  Alcotest.(check int) "stored" 1 (Kl.stored_sets kl);
  let t1 = Kl.trials_needed kl in
  Kl.add kl (Range1d.create ~lo:5 ~hi:14);
  let t2 = Kl.trials_needed kl in
  (* Linear in M up to ceil rounding. *)
  Alcotest.(check bool) "budget linear in M" true (t2 >= (2 * t1) - 2 && t2 <= 2 * t1)

let test_kl_disjoint_exactness () =
  (* With disjoint sets every trial succeeds, so the estimate is exactly
     the total weight. *)
  let kl = Kl.create ~epsilon:0.2 ~delta:0.2 ~seed:2 () in
  Kl.add kl (Range1d.create ~lo:0 ~hi:99);
  Kl.add kl (Range1d.create ~lo:200 ~hi:299);
  Alcotest.(check (float 1e-9)) "exact on disjoint" 200.0 (Kl.estimate kl ~trials:500)

(* --- bottom-k --- *)

let test_bottom_k_small_exact () =
  (* Below k distinct values the sketch is exact. *)
  let bk = Bottom_k.create ~k:100 ~epsilon:0.2 () in
  for x = 1 to 50 do
    Bottom_k.add bk x;
    Bottom_k.add bk x
  done;
  Alcotest.(check (float 0.0)) "exact below k" 50.0 (Bottom_k.estimate bk);
  Alcotest.(check int) "retains 50" 50 (Bottom_k.size bk)

let test_bottom_k_accuracy () =
  let bk = Bottom_k.create ~epsilon:0.1 () in
  let truth = 20_000 in
  for x = 0 to truth - 1 do
    Bottom_k.add bk (x * 7919)
  done;
  let est = Bottom_k.estimate bk in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.0f near %d" est truth)
    true
    (Float.abs (est -. float_of_int truth) < 0.15 *. float_of_int truth)

let test_bottom_k_duplicates_ignored () =
  let bk = Bottom_k.create ~k:16 ~epsilon:0.2 () in
  for _ = 1 to 100 do
    Bottom_k.add bk 42
  done;
  Alcotest.(check (float 0.0)) "one distinct" 1.0 (Bottom_k.estimate bk)

(* --- HyperLogLog --- *)

let test_hll_small_range () =
  let hll = Hll.create ~bits:10 () in
  for x = 1 to 300 do
    Hll.add hll x;
    Hll.add hll x
  done;
  let est = Hll.estimate hll in
  (* Linear-counting regime: quite accurate. *)
  Alcotest.(check bool) (Printf.sprintf "est %.0f near 300" est) true
    (Float.abs (est -. 300.0) < 45.0)

let test_hll_large_range () =
  let hll = Hll.create ~bits:12 () in
  let truth = 200_000 in
  for x = 0 to truth - 1 do
    Hll.add hll (x * 31 + 17)
  done;
  let est = Hll.estimate hll in
  (* 1.04/sqrt(4096) ~ 1.6% expected error; allow 8%. *)
  Alcotest.(check bool) (Printf.sprintf "est %.0f near %d" est truth) true
    (Float.abs (est -. float_of_int truth) < 0.08 *. float_of_int truth)

let test_hll_merge () =
  let a = Hll.create ~bits:10 () and b = Hll.create ~bits:10 () in
  for x = 0 to 9999 do
    Hll.add a x
  done;
  for x = 5000 to 14_999 do
    Hll.add b x
  done;
  let m = Hll.merge a b in
  let est = Hll.estimate m in
  Alcotest.(check bool) (Printf.sprintf "merged est %.0f near 15000" est) true
    (Float.abs (est -. 15_000.0) < 1_500.0);
  Alcotest.check_raises "incompatible sizes"
    (Invalid_argument "Hyperloglog.merge: incompatible sizes") (fun () ->
      ignore (Hll.merge a (Hll.create ~bits:12 ())))

let test_hll_validation () =
  Alcotest.check_raises "bits too small"
    (Invalid_argument "Hyperloglog.create: need 4 <= bits <= 18") (fun () ->
      ignore (Hll.create ~bits:2 ()))

(* --- Approx_wrap --- *)

let test_wrap_cardinality_window () =
  let set = Range1d.create ~lo:0 ~hi:9999 in
  let alpha = 0.3 in
  let w = Wrap.wrap ~alpha ~gamma:0.0 ~eta:0.0 set in
  let rng = Rng.create ~seed:402 in
  for _ = 1 to 500 do
    let z = B.to_float (Wrap.approx_cardinality w rng) in
    (* gamma = 0: always inside the window (small fixed-point slack). *)
    Alcotest.(check bool)
      (Printf.sprintf "%.0f within [%.0f, %.0f]" z (10000.0 /. 1.3) (10000.0 *. 1.3))
      true
      (z >= (10000.0 /. (1.0 +. alpha)) -. 2.0 && z <= (10000.0 *. (1.0 +. alpha)) +. 2.0)
  done

let test_wrap_gamma_failures_happen () =
  let set = Range1d.create ~lo:0 ~hi:999 in
  let w = Wrap.wrap ~alpha:0.2 ~gamma:0.3 ~eta:0.0 set in
  let rng = Rng.create ~seed:403 in
  let out = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    let z = B.to_float (Wrap.approx_cardinality w rng) in
    if z > 1000.0 *. 1.2 *. 1.01 then incr out
  done;
  (* Failures should occur at roughly rate gamma. *)
  let rate = float_of_int !out /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "failure rate %.3f near 0.3" rate) true
    (Float.abs (rate -. 0.3) < 0.05)

let test_wrap_sampler_window () =
  let set = Range1d.create ~lo:0 ~hi:39 in
  let eta = 0.5 in
  let w = Wrap.wrap ~alpha:0.0 ~gamma:0.0 ~eta set in
  let rng = Rng.create ~seed:404 in
  let counts = Array.make 40 0 in
  let draws = 80_000 in
  for _ = 1 to draws do
    let x = Wrap.approx_sample w rng in
    Alcotest.(check bool) "member" true (Range1d.mem set x);
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let p_hat = float_of_int c /. float_of_int draws in
      let lo = 1.0 /. ((1.0 +. eta) *. 40.0) /. 1.25 in
      let hi = (1.0 +. eta) /. 40.0 *. 1.25 in
      if p_hat < lo || p_hat > hi then
        Alcotest.failf "tilted frequency %.5f outside [%.5f, %.5f]" p_hat lo hi)
    counts

let test_wrap_validation () =
  let set = Range1d.create ~lo:0 ~hi:9 in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Wrap.wrap ~alpha:(-1.0) ~gamma:0.0 ~eta:0.0 set);
  expect_invalid (fun () -> Wrap.wrap ~alpha:0.0 ~gamma:1.0 ~eta:0.0 set);
  expect_invalid (fun () -> Wrap.wrap ~alpha:0.0 ~gamma:0.0 ~eta:(-0.5) set)

let suite =
  [
    Alcotest.test_case "karp-luby: empty" `Quick test_kl_empty;
    Alcotest.test_case "karp-luby: accuracy" `Quick test_kl_accuracy;
    Alcotest.test_case "karp-luby: trial budget" `Quick test_kl_trials_budget;
    Alcotest.test_case "karp-luby: exact on disjoint sets" `Quick test_kl_disjoint_exactness;
    Alcotest.test_case "bottom-k: exact below k" `Quick test_bottom_k_small_exact;
    Alcotest.test_case "bottom-k: accuracy" `Quick test_bottom_k_accuracy;
    Alcotest.test_case "bottom-k: duplicates ignored" `Quick test_bottom_k_duplicates_ignored;
    Alcotest.test_case "hll: linear-counting regime" `Quick test_hll_small_range;
    Alcotest.test_case "hll: large range" `Quick test_hll_large_range;
    Alcotest.test_case "hll: merge" `Quick test_hll_merge;
    Alcotest.test_case "hll: validation" `Quick test_hll_validation;
    Alcotest.test_case "approx_wrap: cardinality window" `Quick test_wrap_cardinality_window;
    Alcotest.test_case "approx_wrap: gamma failures" `Quick test_wrap_gamma_failures_happen;
    Alcotest.test_case "approx_wrap: eta sampler window" `Quick test_wrap_sampler_window;
    Alcotest.test_case "approx_wrap: validation" `Quick test_wrap_validation;
  ]
