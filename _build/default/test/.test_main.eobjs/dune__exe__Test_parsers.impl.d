test/test_parsers.ml: Alcotest Delphic_sets Delphic_stream Delphic_util Filename Fun List String Sys
