test/test_multi_interval.ml: Alcotest Delphic_core Delphic_sets Delphic_util Float Hashtbl List Option Printf
