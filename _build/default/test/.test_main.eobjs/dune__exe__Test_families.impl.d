test/test_families.ml: Alcotest Array Delphic_family Delphic_sets Delphic_util Float Hashtbl Option String
