test/test_rng.ml: Alcotest Array Delphic_util Float Fun
