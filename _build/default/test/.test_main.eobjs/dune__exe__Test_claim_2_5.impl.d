test/test_claim_2_5.ml: Alcotest Array Delphic_util Float Int Printf
