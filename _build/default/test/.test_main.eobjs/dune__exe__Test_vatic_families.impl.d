test/test_vatic_families.ml: Alcotest Delphic_core Delphic_family Delphic_sets Delphic_stream Delphic_util Float List Printf
