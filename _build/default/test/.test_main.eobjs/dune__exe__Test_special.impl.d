test/test_special.ml: Alcotest Delphic_util Float List Printf
