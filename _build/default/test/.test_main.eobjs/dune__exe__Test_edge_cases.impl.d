test/test_edge_cases.ml: Alcotest Delphic_core Delphic_sets Delphic_stream Delphic_util Float List Printf
