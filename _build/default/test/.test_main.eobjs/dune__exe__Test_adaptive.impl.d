test/test_adaptive.ml: Alcotest Delphic_core Delphic_sets Delphic_stream Delphic_util Float List Printf
