test/test_binomial.ml: Alcotest Array Delphic_util Float Stdlib
