test/test_aps.ml: Alcotest Delphic_core Delphic_sets Delphic_stream Delphic_util Float List Printf
