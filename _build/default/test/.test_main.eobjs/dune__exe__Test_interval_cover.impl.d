test/test_interval_cover.ml: Alcotest Array Delphic_sets Delphic_util List Printf
