test/test_baselines.ml: Alcotest Array Delphic_core Delphic_sets Delphic_stream Delphic_util Float List Printf
