test/test_harness.ml: Alcotest Delphic_core Delphic_harness Delphic_sets Delphic_stream Delphic_util Fun List String
