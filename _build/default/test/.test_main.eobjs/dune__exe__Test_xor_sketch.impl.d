test/test_xor_sketch.ml: Alcotest Delphic_core Delphic_sets Delphic_stream Delphic_util Float List Printf
