test/test_bitvec.ml: Alcotest Delphic_util List Printf QCheck QCheck_alcotest
