test/test_dist.ml: Alcotest Array Delphic_util Float
