test/test_extensions.ml: Alcotest Delphic_core Delphic_family Delphic_harness Delphic_sets Delphic_stream Delphic_util Filename Float Fun List Printf String Sys Unix
