test/test_bdd.ml: Alcotest Delphic_sets Delphic_stream Delphic_util List
