test/test_gf2_families.ml: Alcotest Array Delphic_core Delphic_sets Delphic_util Float Fun Hashtbl List Option Printf
