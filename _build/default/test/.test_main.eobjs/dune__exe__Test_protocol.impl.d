test/test_protocol.ml: Alcotest Delphic_server Filename Format List Printf QCheck QCheck_alcotest String Sys
