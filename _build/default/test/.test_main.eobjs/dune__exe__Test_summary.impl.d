test/test_summary.ml: Alcotest Array Delphic_util Float List QCheck QCheck_alcotest
