test/test_exact.ml: Alcotest Array Delphic_sets Delphic_stream Delphic_util Hashtbl List
