test/test_vatic.ml: Alcotest Delphic_core Delphic_sets Delphic_stream Delphic_util Float Hashtbl List Printf QCheck QCheck_alcotest
