test/test_workload.ml: Alcotest Array Delphic_sets Delphic_stream Delphic_util List Printf
