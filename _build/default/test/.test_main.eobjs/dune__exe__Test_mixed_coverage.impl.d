test/test_mixed_coverage.ml: Alcotest Array Delphic_core Delphic_sets Delphic_util Float Hashtbl List Option Printf
