test/test_ext_vatic.ml: Alcotest Delphic_core Delphic_sets Delphic_stream Delphic_util Float List Printf
