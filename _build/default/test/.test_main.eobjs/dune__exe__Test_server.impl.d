test/test_server.ml: Alcotest Array Buffer Delphic_server Delphic_sets Delphic_stream Delphic_util Filename Float List Printf String Sys Thread Unix
