test/test_bigint.ml: Alcotest Delphic_util Float List QCheck QCheck_alcotest String
