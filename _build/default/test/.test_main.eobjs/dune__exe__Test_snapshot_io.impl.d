test/test_snapshot_io.ml: Alcotest Delphic_core Delphic_sets Delphic_stream Delphic_util Filename Float List Option Printf QCheck QCheck_alcotest String Sys
