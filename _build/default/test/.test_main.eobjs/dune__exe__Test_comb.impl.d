test/test_comb.ml: Alcotest Array Delphic_util Float Hashtbl List Option Printf
