test/test_knapsack.ml: Alcotest Array Delphic_sets Delphic_util Float Hashtbl Option Printf
