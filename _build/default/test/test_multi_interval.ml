(* Multi-interval sets: canonicalisation, O(log k) membership/sampling vs
   brute force, family axioms, and VATIC end-to-end on blocklist-style
   streams. *)

module Mi = Delphic_sets.Multi_interval
module B = Delphic_util.Bigint
module Rng = Delphic_util.Rng
module V = Delphic_core.Vatic.Make (Mi)

let test_canonicalisation () =
  let t = Mi.create [ (10, 20); (15, 25); (26, 30); (50, 60); (0, 3) ] in
  (* 10-25 and 26-30 are adjacent -> one interval 10-30. *)
  Alcotest.(check (list (pair int int))) "canonical"
    [ (0, 3); (10, 30); (50, 60) ]
    (Mi.intervals t);
  Alcotest.(check int) "pieces" 3 (Mi.pieces t);
  Alcotest.(check int) "length" (4 + 21 + 11) (Mi.length t);
  Alcotest.(check string) "cardinality" "36" (B.to_string (Mi.cardinality t))

let test_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Mi.create []);
  expect_invalid (fun () -> Mi.create [ (5, 4) ]);
  expect_invalid (fun () -> Mi.create [ (-1, 4) ])

let test_membership_vs_bruteforce () =
  let rng = Rng.create ~seed:201 in
  for _ = 1 to 40 do
    let spans =
      List.init (1 + Rng.int rng 8) (fun _ ->
          let lo = Rng.int rng 200 in
          (lo, lo + Rng.int rng 30))
    in
    let t = Mi.create spans in
    for x = 0 to 260 do
      let brute = List.exists (fun (lo, hi) -> lo <= x && x <= hi) spans in
      if Mi.mem t x <> brute then Alcotest.failf "mem mismatch at %d" x
    done
  done

let test_sampling_uniform () =
  let t = Mi.create [ (0, 4); (100, 104); (1000, 1009) ] in
  Alcotest.(check int) "length 20" 20 (Mi.length t);
  let rng = Rng.create ~seed:202 in
  let counts = Hashtbl.create 32 in
  let draws = 40_000 in
  for _ = 1 to draws do
    let x = Mi.sample t rng in
    Alcotest.(check bool) "member" true (Mi.mem t x);
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  Alcotest.(check int) "all 20 points reached" 20 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c -> if abs (c - 2000) > 280 then Alcotest.failf "skew %d" c)
    counts

let test_vatic_on_blocklists () =
  (* Stream items are multi-piece blocklist entries; ground truth via the
     flattened 1-d range union. *)
  let rng = Rng.create ~seed:203 in
  let universe = 1_000_000 in
  let pool =
    List.init 150 (fun _ ->
        let spans =
          List.init (1 + Rng.int rng 5) (fun _ ->
              let lo = Rng.int rng universe in
              (lo, min (universe - 1) (lo + Rng.int rng 3000)))
        in
        Mi.create spans)
  in
  let truth =
    float_of_int
      (Delphic_sets.Exact.range_union
         (List.concat_map
            (fun t ->
              List.map
                (fun (lo, hi) -> Delphic_sets.Range1d.create ~lo ~hi)
                (Mi.intervals t))
            pool))
  in
  let failures = ref 0 in
  for i = 0 to 11 do
    let t = V.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:(880 + i) () in
    List.iter (V.process t) pool;
    if Float.abs (V.estimate t -. truth) > 0.25 *. truth then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/12" !failures) true (!failures <= 3)

let suite =
  [
    Alcotest.test_case "canonicalisation" `Quick test_canonicalisation;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "membership vs brute force" `Quick test_membership_vs_bruteforce;
    Alcotest.test_case "sampling uniform across pieces" `Quick test_sampling_uniform;
    Alcotest.test_case "VATIC on blocklist streams" `Quick test_vatic_on_blocklists;
  ]
