(* XOR-hash sketch ([32]-style hashing route): constrained counting and
   enumeration, accuracy against exact counts on DNF and affine streams,
   and the store-capacity invariant. *)

module Bitvec = Delphic_util.Bitvec
module Gf2 = Delphic_util.Gf2
module B = Delphic_util.Bigint
module Rng = Delphic_util.Rng
module Dnf = Delphic_sets.Dnf
module Affine = Delphic_sets.Affine_subspace
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload
module Xs_dnf = Delphic_core.Xor_sketch.Make (Dnf)
module Xs_affine = Delphic_core.Xor_sketch.Make (Affine)

let parity_row ~nvars vars rhs =
  let coeffs = Bitvec.create ~width:nvars in
  List.iter (fun v -> Bitvec.set coeffs v true) vars;
  { Gf2.coeffs; rhs }

let test_count_constrained_dnf () =
  (* Term x0 ∧ ¬x2 over 5 vars: 8 solutions; adding parity x1⊕x3 = 1 must
     halve it. *)
  let t =
    Dnf.create ~nvars:5
      [ { Dnf.var = 0; positive = true }; { Dnf.var = 2; positive = false } ]
  in
  Alcotest.(check string) "unconstrained" "8" (B.to_string (Dnf.count_constrained t []));
  let row = parity_row ~nvars:5 [ 1; 3 ] true in
  Alcotest.(check string) "one parity" "4" (B.to_string (Dnf.count_constrained t [ row ]));
  (* Contradicting the term: x0 = 0. *)
  let contra = parity_row ~nvars:5 [ 0 ] false in
  Alcotest.(check string) "contradiction" "0"
    (B.to_string (Dnf.count_constrained t [ contra ]))

let test_count_constrained_matches_bruteforce () =
  let rng = Rng.create ~seed:171 in
  for _ = 1 to 40 do
    let nvars = 4 + Rng.int rng 8 in
    let term =
      List.hd
        (Workload.Dnf_terms.random rng ~nvars ~count:1 ~width:(1 + Rng.int rng 3))
    in
    let rows =
      List.init (Rng.int rng 4) (fun _ ->
          { Gf2.coeffs = Bitvec.random rng ~width:nvars; rhs = Rng.bool rng })
    in
    let brute = ref 0 in
    for x = 0 to (1 lsl nvars) - 1 do
      let v = Bitvec.create ~width:nvars in
      for i = 0 to nvars - 1 do
        Bitvec.set v i ((x lsr i) land 1 = 1)
      done;
      if Dnf.satisfies term v && List.for_all (fun r -> Gf2.satisfies r v) rows then
        incr brute
    done;
    Alcotest.(check string) "count matches brute force" (string_of_int !brute)
      (B.to_string (Dnf.count_constrained term rows))
  done

let test_enumerate_constrained () =
  let t = Dnf.create ~nvars:6 [ { Dnf.var = 1; positive = true } ] in
  (match Dnf.enumerate_constrained t [] ~limit:64 with
  | None -> Alcotest.fail "32 solutions fit the limit"
  | Some xs ->
    Alcotest.(check int) "32 solutions" 32 (List.length xs);
    List.iter
      (fun x -> Alcotest.(check bool) "each satisfies" true (Dnf.satisfies t x))
      xs;
    let dedup = List.sort_uniq compare (List.map Bitvec.to_string xs) in
    Alcotest.(check int) "all distinct" 32 (List.length dedup));
  (match Dnf.enumerate_constrained t [] ~limit:10 with
  | None -> ()
  | Some _ -> Alcotest.fail "limit must trigger None")

let test_sketch_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Xs_dnf.create ~epsilon:0.0 ~delta:0.1 ~nvars:10 ~seed:1 ());
  expect_invalid (fun () -> Xs_dnf.create ~capacity:1 ~epsilon:0.2 ~delta:0.1 ~nvars:10 ~seed:1 ());
  let t = Xs_dnf.create ~epsilon:0.3 ~delta:0.2 ~nvars:10 ~seed:1 () in
  expect_invalid (fun () ->
      Xs_dnf.process t (Dnf.create ~nvars:9 [ { Dnf.var = 0; positive = true } ]))

let test_sketch_accuracy_dnf () =
  let nvars = 20 in
  let gen = Rng.create ~seed:172 in
  let terms = Workload.Dnf_terms.random gen ~nvars ~count:60 ~width:6 in
  let truth = B.to_float (Exact.dnf_count ~nvars terms) in
  let failures = ref 0 in
  for i = 0 to 14 do
    let t = Xs_dnf.create ~epsilon:0.25 ~delta:0.2 ~nvars ~seed:(700 + i) () in
    List.iter (Xs_dnf.process t) terms;
    Alcotest.(check bool) "store bounded" true (Xs_dnf.max_store_size t <= Xs_dnf.capacity t);
    if Float.abs (Xs_dnf.estimate t -. truth) > 0.25 *. truth then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/15" !failures) true (!failures <= 3)

let test_sketch_accuracy_affine () =
  let nvars = 18 in
  let rng = Rng.create ~seed:173 in
  let pool = ref [] in
  while List.length !pool < 20 do
    let rows =
      List.init (7 + Rng.int rng 5) (fun _ ->
          { Gf2.coeffs = Bitvec.random rng ~width:nvars; rhs = Rng.bool rng })
    in
    match Affine.create_opt ~nvars rows with
    | Some s -> pool := s :: !pool
    | None -> ()
  done;
  let truth = ref 0 in
  for x = 0 to (1 lsl nvars) - 1 do
    let v = Bitvec.create ~width:nvars in
    for i = 0 to nvars - 1 do
      Bitvec.set v i ((x lsr i) land 1 = 1)
    done;
    if List.exists (fun s -> Affine.mem s v) !pool then incr truth
  done;
  let failures = ref 0 in
  for i = 0 to 9 do
    let t = Xs_affine.create ~epsilon:0.3 ~delta:0.2 ~nvars ~seed:(800 + i) () in
    List.iter (Xs_affine.process t) !pool;
    if Float.abs (Xs_affine.estimate t -. float_of_int !truth) > 0.3 *. float_of_int !truth
    then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/10" !failures) true (!failures <= 2)

let test_sketch_exact_when_small () =
  (* A union small enough never to trigger a hash row is counted exactly. *)
  let nvars = 12 in
  let t = Xs_dnf.create ~capacity:5000 ~epsilon:0.3 ~delta:0.2 ~nvars ~seed:9 () in
  let terms =
    [
      Dnf.create ~nvars (List.init 8 (fun i -> { Dnf.var = i; positive = true }));
      Dnf.create ~nvars (List.init 8 (fun i -> { Dnf.var = i; positive = i > 0 }));
    ]
  in
  List.iter (Xs_dnf.process t) terms;
  (* Each term has 2^4 = 16 solutions; the two sets are disjoint (x0 differs). *)
  Alcotest.(check int) "level 0" 0 (Xs_dnf.level t);
  Alcotest.(check (float 0.0)) "exact 32" 32.0 (Xs_dnf.estimate t);
  (* Duplicates are free. *)
  List.iter (Xs_dnf.process t) terms;
  Alcotest.(check (float 0.0)) "still 32" 32.0 (Xs_dnf.estimate t)

let test_level_monotone_and_estimate_scale () =
  let nvars = 22 in
  let gen = Rng.create ~seed:174 in
  let terms = Workload.Dnf_terms.random gen ~nvars ~count:40 ~width:5 in
  let t = Xs_dnf.create ~capacity:500 ~epsilon:0.3 ~delta:0.2 ~nvars ~seed:30 () in
  let last_level = ref 0 in
  List.iter
    (fun term ->
      Xs_dnf.process t term;
      if Xs_dnf.level t < !last_level then Alcotest.fail "level decreased";
      last_level := Xs_dnf.level t;
      if Xs_dnf.store_size t > Xs_dnf.capacity t then Alcotest.fail "capacity exceeded")
    terms;
  Alcotest.(check bool) "levels advanced under small capacity" true (Xs_dnf.level t > 0)

let suite =
  [
    Alcotest.test_case "constrained counting (DNF)" `Quick test_count_constrained_dnf;
    Alcotest.test_case "constrained counting vs brute force" `Quick
      test_count_constrained_matches_bruteforce;
    Alcotest.test_case "constrained enumeration" `Quick test_enumerate_constrained;
    Alcotest.test_case "sketch validation" `Quick test_sketch_validation;
    Alcotest.test_case "sketch accuracy on DNF" `Quick test_sketch_accuracy_dnf;
    Alcotest.test_case "sketch accuracy on affine spaces" `Quick test_sketch_accuracy_affine;
    Alcotest.test_case "sketch exact when small" `Quick test_sketch_exact_when_small;
    Alcotest.test_case "level monotone, capacity respected" `Quick
      test_level_monotone_and_estimate_scale;
  ]
