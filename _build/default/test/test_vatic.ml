(* VATIC end-to-end: accuracy on several families, the space invariant, the
   last-occurrence semantics, parameter validation, instrumentation, and
   union sampling. *)

module Rng = Delphic_util.Rng
module B = Delphic_util.Bigint
module Range1d = Delphic_sets.Range1d
module Rectangle = Delphic_sets.Rectangle
module Exact = Delphic_sets.Exact
module Params = Delphic_core.Params
module Workload = Delphic_stream.Workload

module V_range = Delphic_core.Vatic.Make (Range1d)
module V_rect = Delphic_core.Vatic.Make (Rectangle)
module V_dnf = Delphic_core.Vatic.Make (Delphic_sets.Dnf)

let log2f x = log x /. log 2.0

let test_params_validation () =
  let ok () = Params.create ~epsilon:0.2 ~delta:0.1 ~log2_universe:30.0 () in
  ignore (ok ());
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Params.create ~epsilon:0.0 ~delta:0.1 ~log2_universe:30.0 ());
  expect_invalid (fun () -> Params.create ~epsilon:1.0 ~delta:0.1 ~log2_universe:30.0 ());
  expect_invalid (fun () -> Params.create ~epsilon:0.2 ~delta:0.0 ~log2_universe:30.0 ());
  expect_invalid (fun () -> Params.create ~epsilon:0.2 ~delta:0.1 ~log2_universe:(-1.0) ());
  (* Universe too small: the admission floor exceeds 1/2. *)
  expect_invalid (fun () -> Params.create ~epsilon:0.1 ~delta:0.1 ~log2_universe:8.0 ())

let test_params_paper_mode_larger () =
  let practical = Params.create ~epsilon:0.2 ~delta:0.1 ~log2_universe:40.0 () in
  let paper =
    Params.create ~mode:Params.Paper ~epsilon:0.2 ~delta:0.1 ~log2_universe:40.0 ()
  in
  Alcotest.(check bool) "paper constants dominate" true
    (paper.Params.bucket_capacity > 10 * practical.Params.bucket_capacity)

let test_max_samples_formula () =
  let p = Params.create ~epsilon:0.2 ~delta:0.1 ~log2_universe:40.0 () in
  Alcotest.(check bool) "monotone in N" true
    (Params.max_samples p ~n_distinct:10 < Params.max_samples p ~n_distinct:20);
  Alcotest.(check int) "zero budget for zero" 0 (Params.max_samples p ~n_distinct:0)

let test_empty_stream () =
  let t = V_range.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:20.0 ~seed:1 () in
  Alcotest.(check (float 0.0)) "estimate 0" 0.0 (V_range.estimate t);
  Alcotest.(check int) "no items" 0 (V_range.items_processed t);
  Alcotest.(check bool) "no union sample" true (V_range.sample_union t = None)

let test_single_set_exact_regime () =
  (* One large range, far below the bucket capacity threshold after one
     halving, still estimates well. *)
  let t = V_range.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:20.0 ~seed:2 () in
  V_range.process t (Range1d.create ~lo:0 ~hi:99_999);
  let est = V_range.estimate t in
  Alcotest.(check bool)
    (Printf.sprintf "single set estimate %.0f near 100000" est)
    true
    (Float.abs (est -. 100_000.0) < 15_000.0)

let test_duplicate_heavy_stream () =
  (* The same set repeated many times: the estimate must track |S|, not M. *)
  let t = V_range.create ~epsilon:0.2 ~delta:0.2 ~log2_universe:20.0 ~seed:3 () in
  let s = Range1d.create ~lo:500 ~hi:50_499 in
  for _ = 1 to 500 do
    V_range.process t s
  done;
  let est = V_range.estimate t in
  Alcotest.(check bool)
    (Printf.sprintf "duplicates: %.0f near 50000" est)
    true
    (Float.abs (est -. 50_000.0) < 10_000.0);
  Alcotest.(check int) "items counted" 500 (V_range.items_processed t)

let test_accuracy_ranges () =
  let gen = Rng.create ~seed:4 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:300 ~max_len:4000 in
  let truth = float_of_int (Exact.range_union pool) in
  let epsilon = 0.25 in
  let failures = ref 0 in
  let trials = 25 in
  for i = 0 to trials - 1 do
    let t =
      V_range.create ~epsilon ~delta:0.2 ~log2_universe:20.0 ~seed:(2000 + i) ()
    in
    List.iter (V_range.process t) pool;
    if Float.abs (V_range.estimate t -. truth) > epsilon *. truth then incr failures;
    Alcotest.(check int) "never skipped" 0 (V_range.skipped_sets t)
  done;
  (* delta = 0.2 over 25 trials: observing > 10 failures is astronomically
     unlikely if the estimator is correct (in practice we see 0-1). *)
  Alcotest.(check bool)
    (Printf.sprintf "failures %d/25" !failures)
    true (!failures <= 5)

let test_accuracy_rectangles () =
  let gen = Rng.create ~seed:5 in
  let pool = Workload.Rectangles.uniform gen ~universe:10_000 ~dim:2 ~count:60 ~max_side:900 in
  let stream = List.concat [ pool; pool; List.rev pool ] in
  let truth = B.to_float (Exact.rectangle_union pool) in
  let epsilon = 0.25 in
  let failures = ref 0 in
  for i = 0 to 19 do
    let t =
      V_rect.create ~epsilon ~delta:0.2
        ~log2_universe:(2.0 *. log2f 10_000.0)
        ~seed:(3000 + i) ()
    in
    List.iter (V_rect.process t) stream;
    if Float.abs (V_rect.estimate t -. truth) > epsilon *. truth then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/20" !failures) true (!failures <= 4)

let test_accuracy_dnf () =
  let gen = Rng.create ~seed:6 in
  let terms = Workload.Dnf_terms.random gen ~nvars:20 ~count:60 ~width:6 in
  let truth = B.to_float (Exact.dnf_count ~nvars:20 terms) in
  let epsilon = 0.25 in
  let failures = ref 0 in
  for i = 0 to 19 do
    let t = V_dnf.create ~epsilon ~delta:0.2 ~log2_universe:20.0 ~seed:(4000 + i) () in
    List.iter (V_dnf.process t) terms;
    if Float.abs (V_dnf.estimate t -. truth) > epsilon *. truth then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/20" !failures) true (!failures <= 4)

let test_space_invariant () =
  (* Eq. 2 of the paper: |X| never exceeds B * (max level + 1). *)
  let gen = Rng.create ~seed:7 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:500 ~max_len:5000 in
  let t = V_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:8 () in
  let p = V_range.params t in
  List.iter
    (fun s ->
      V_range.process t s;
      let bound = Params.bucket_bound p in
      if V_range.bucket_size t > bound then
        Alcotest.failf "bucket %d exceeds invariant %d" (V_range.bucket_size t) bound)
    pool;
  Alcotest.(check bool) "max tracked >= final" true
    (V_range.max_bucket_size t >= V_range.bucket_size t)

let test_last_occurrence_semantics () =
  (* Processing S then a superset S' must leave no element attributed to S:
     after covering everything with one final range, the bucket holds only
     elements of that range at its level. *)
  let t = V_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:9 () in
  for i = 0 to 19 do
    V_range.process t (Range1d.create ~lo:(i * 1000) ~hi:((i * 1000) + 4999))
  done;
  let before = V_range.estimate t in
  (* One range covering the union exactly: the estimate must stay near the
     same value and every bucket element must belong to the cover. *)
  let cover = Range1d.create ~lo:0 ~hi:23_999 in
  V_range.process t cover;
  let after = V_range.estimate t in
  Alcotest.(check bool)
    (Printf.sprintf "cover keeps estimate sane: %.0f -> %.0f" before after)
    true
    (Float.abs (after -. 24_000.0) < 7_000.0);
  match V_range.sample_union t with
  | None -> Alcotest.fail "expected non-empty sketch"
  | Some x -> Alcotest.(check bool) "sample within cover" true (Range1d.mem cover x)

let test_union_sampling_members_only () =
  let gen = Rng.create ~seed:10 in
  let pool = Workload.Ranges.uniform gen ~universe:100_000 ~count:50 ~max_len:2000 in
  let t = V_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0 ~seed:11 () in
  List.iter (V_range.process t) pool;
  for _ = 1 to 50 do
    match V_range.sample_union t with
    | None -> Alcotest.fail "sketch should not be empty"
    | Some x ->
      Alcotest.(check bool) "sampled element is in the union" true
        (List.exists (fun r -> Range1d.mem r x) pool)
  done

let test_oracle_call_accounting () =
  let t = V_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:12 () in
  V_range.process t (Range1d.create ~lo:0 ~hi:999);
  V_range.process t (Range1d.create ~lo:500 ~hi:1499);
  let calls = V_range.oracle_calls t in
  Alcotest.(check int) "one cardinality call per item" 2 calls.cardinality;
  Alcotest.(check bool) "sampling happened" true (calls.sampling > 0);
  (* Membership scans only run against a non-empty bucket (second item). *)
  Alcotest.(check bool) "membership accounted" true (calls.membership > 0)

let test_estimate_nondestructive () =
  let gen = Rng.create ~seed:13 in
  let pool = Workload.Ranges.uniform gen ~universe:100_000 ~count:100 ~max_len:2000 in
  let t = V_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0 ~seed:14 () in
  List.iter (V_range.process t) pool;
  let size_before = V_range.bucket_size t in
  ignore (V_range.estimate t);
  ignore (V_range.estimate t);
  Alcotest.(check int) "bucket untouched by estimate" size_before (V_range.bucket_size t)

let test_paper_mode_end_to_end () =
  (* The verbatim constants are huge but must of course still estimate
     correctly; small instance keeps the runtime sane. *)
  let gen = Rng.create ~seed:18 in
  let pool = Workload.Ranges.uniform gen ~universe:131_072 ~count:60 ~max_len:2000 in
  let truth = float_of_int (Exact.range_union pool) in
  let t =
    V_range.create ~mode:Params.Paper ~epsilon:0.4 ~delta:0.3 ~log2_universe:17.0
      ~seed:19 ()
  in
  List.iter (V_range.process t) pool;
  let est = V_range.estimate t in
  Alcotest.(check bool)
    (Printf.sprintf "paper-mode estimate %.0f near %.0f" est truth)
    true
    (Float.abs (est -. truth) <= 0.4 *. truth)

let test_horvitz_thompson_estimator () =
  let gen = Rng.create ~seed:15 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:300 ~max_len:4000 in
  let truth = float_of_int (Exact.range_union pool) in
  let t = V_range.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:16 () in
  List.iter (V_range.process t) pool;
  let ht = V_range.estimate_horvitz_thompson t in
  Alcotest.(check bool)
    (Printf.sprintf "HT estimate %.0f near %.0f" ht truth)
    true
    (Float.abs (ht -. truth) <= 0.25 *. truth);
  (* Deterministic given the sketch. *)
  Alcotest.(check (float 0.0)) "repeat queries agree" ht
    (V_range.estimate_horvitz_thompson t);
  (* Empty sketch. *)
  let empty = V_range.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:17 () in
  Alcotest.(check (float 0.0)) "empty" 0.0 (V_range.estimate_horvitz_thompson empty)

(* qcheck property: on arbitrary random range streams, the estimate stays
   within a wide window around the exact union (empirical error is ~5% at
   these parameters, so the 50% window has >10 sigma of headroom — any
   systematic estimator bug trips it immediately). *)
let prop_estimate_tracks_exact =
  let gen_ranges =
    QCheck.list_of_size (QCheck.Gen.int_range 1 60)
      (QCheck.pair (QCheck.int_range 0 99_000) (QCheck.int_range 0 999))
  in
  QCheck.Test.make ~name:"estimate within 50% of exact union (random streams)"
    ~count:60 gen_ranges (fun spec ->
      let pool = List.map (fun (lo, len) -> Range1d.create ~lo ~hi:(lo + len)) spec in
      let truth = float_of_int (Exact.range_union pool) in
      let t =
        V_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0
          ~seed:(Hashtbl.hash spec) ()
      in
      List.iter (V_range.process t) pool;
      let est = V_range.estimate t in
      Float.abs (est -. truth) <= 0.5 *. truth)

(* qcheck property: processing the stream twice (every set repeated) never
   changes what is being measured — the union is idempotent and survival
   depends only on last occurrences. *)
let prop_duplication_invariance =
  let gen_ranges =
    QCheck.list_of_size (QCheck.Gen.int_range 1 40)
      (QCheck.pair (QCheck.int_range 0 99_000) (QCheck.int_range 0 999))
  in
  QCheck.Test.make ~name:"duplicated stream estimates the same union" ~count:40
    gen_ranges (fun spec ->
      let pool = List.map (fun (lo, len) -> Range1d.create ~lo ~hi:(lo + len)) spec in
      let truth = float_of_int (Exact.range_union pool) in
      let t =
        V_range.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:17.0
          ~seed:(Hashtbl.hash (spec, 1)) ()
      in
      List.iter (V_range.process t) (pool @ List.rev pool @ pool);
      Float.abs (V_range.estimate t -. truth) <= 0.5 *. truth)

let suite =
  [
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "paper-mode constants dominate" `Quick test_params_paper_mode_larger;
    Alcotest.test_case "max_samples formula" `Quick test_max_samples_formula;
    Alcotest.test_case "empty stream" `Quick test_empty_stream;
    Alcotest.test_case "single set" `Quick test_single_set_exact_regime;
    Alcotest.test_case "duplicate-heavy stream" `Quick test_duplicate_heavy_stream;
    Alcotest.test_case "accuracy: ranges" `Quick test_accuracy_ranges;
    Alcotest.test_case "accuracy: rectangles (KMP)" `Quick test_accuracy_rectangles;
    Alcotest.test_case "accuracy: DNF" `Quick test_accuracy_dnf;
    Alcotest.test_case "space invariant (Eq. 2)" `Quick test_space_invariant;
    Alcotest.test_case "last-occurrence semantics" `Quick test_last_occurrence_semantics;
    Alcotest.test_case "union samples are members" `Quick test_union_sampling_members_only;
    Alcotest.test_case "oracle call accounting" `Quick test_oracle_call_accounting;
    Alcotest.test_case "estimate is non-destructive" `Quick test_estimate_nondestructive;
    Alcotest.test_case "paper-mode end to end" `Quick test_paper_mode_end_to_end;
    Alcotest.test_case "Horvitz-Thompson estimator" `Quick test_horvitz_thompson_estimator;
    QCheck_alcotest.to_alcotest prop_estimate_tracks_exact;
    QCheck_alcotest.to_alcotest prop_duplication_invariance;
  ]
