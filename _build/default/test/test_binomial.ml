(* Binomial sampler: edge cases, exact-pmf chi-square goodness of fit in
   both the BINV and BTPE regimes, moment checks, the cascade property
   (Theorem F.1 of the paper), and the large-n fallback paths. *)

module Binomial = Delphic_util.Binomial
module B = Delphic_util.Bigint
module Comb = Delphic_util.Comb
module Rng = Delphic_util.Rng

let test_edges () =
  let rng = Rng.create ~seed:31 in
  Alcotest.(check int) "n=0" 0 (Binomial.sample rng ~n:0 ~p:0.7);
  Alcotest.(check int) "p=0" 0 (Binomial.sample rng ~n:100 ~p:0.0);
  Alcotest.(check int) "p=1" 100 (Binomial.sample rng ~n:100 ~p:1.0);
  Alcotest.check_raises "negative n" (Invalid_argument "Binomial.sample: negative n")
    (fun () -> ignore (Binomial.sample rng ~n:(-1) ~p:0.5));
  Alcotest.check_raises "bad p" (Invalid_argument "Binomial.sample: p outside [0,1]")
    (fun () -> ignore (Binomial.sample rng ~n:5 ~p:1.5))

let test_range () =
  let rng = Rng.create ~seed:32 in
  for _ = 1 to 5000 do
    let v = Binomial.sample rng ~n:50 ~p:0.3 in
    Alcotest.(check bool) "in [0,n]" true (v >= 0 && v <= 50)
  done

(* Chi-square against the exact pmf.  Bins with expected < 5 are pooled
   into tails.  Critical values are taken at the 1e-6 level so the fixed
   seed never flakes while gross errors still fail loudly. *)
let chi_square_gof ~seed ~n ~p ~draws =
  let rng = Rng.create ~seed in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to draws do
    let v = Binomial.sample rng ~n ~p in
    counts.(v) <- counts.(v) + 1
  done;
  let pmf k = exp (Comb.log_choose n k +. (float_of_int k *. log p) +. (float_of_int (n - k) *. log (1.0 -. p))) in
  let expected = Array.init (n + 1) (fun k -> pmf k *. float_of_int draws) in
  (* Pool low-expectation bins from both ends. *)
  let chi2 = ref 0.0 and dof = ref (-1) in
  let acc_obs = ref 0 and acc_exp = ref 0.0 in
  for k = 0 to n do
    acc_obs := !acc_obs + counts.(k);
    acc_exp := !acc_exp +. expected.(k);
    if !acc_exp >= 5.0 then begin
      let d = float_of_int !acc_obs -. !acc_exp in
      chi2 := !chi2 +. (d *. d /. !acc_exp);
      incr dof;
      acc_obs := 0;
      acc_exp := 0.0
    end
  done;
  if !acc_exp > 0.0 then begin
    let d = float_of_int !acc_obs -. !acc_exp in
    chi2 := !chi2 +. (d *. d /. Float.max !acc_exp 1e-9)
  end;
  (!chi2, Stdlib.max 1 !dof)

let check_gof name ~seed ~n ~p =
  let chi2, dof = chi_square_gof ~seed ~n ~p ~draws:40_000 in
  (* Very loose bound: chi2 ~ dof + 2*sqrt(2*dof)*z; z ~ 5 at 1e-6. *)
  let critical = float_of_int dof +. (5.0 *. sqrt (2.0 *. float_of_int dof)) +. 10.0 in
  if chi2 > critical then
    Alcotest.failf "%s: chi2 = %.1f > %.1f (dof %d)" name chi2 critical dof

let test_gof_binv () = check_gof "BINV regime" ~seed:33 ~n:40 ~p:0.1
let test_gof_btpe () = check_gof "BTPE regime" ~seed:34 ~n:300 ~p:0.4
let test_gof_flipped () = check_gof "p > 1/2" ~seed:35 ~n:200 ~p:0.85

let check_moments name ~seed ~n ~p ~draws =
  let rng = Rng.create ~seed in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to draws do
    let v = float_of_int (Binomial.sample rng ~n ~p) in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int draws in
  let var = (!sumsq /. float_of_int draws) -. (mean *. mean) in
  let nf = float_of_int n in
  let true_mean = nf *. p and true_var = nf *. p *. (1.0 -. p) in
  let mean_tol = 6.0 *. sqrt (true_var /. float_of_int draws) in
  if Float.abs (mean -. true_mean) > mean_tol then
    Alcotest.failf "%s: mean %.3f vs %.3f (tol %.3f)" name mean true_mean mean_tol;
  if Float.abs (var -. true_var) > 0.1 *. true_var then
    Alcotest.failf "%s: var %.3f vs %.3f" name var true_var

let test_moments_large_n () = check_moments "n=100k" ~seed:36 ~n:100_000 ~p:0.37 ~draws:20_000

let test_sample_float_paths () =
  let rng = Rng.create ~seed:37 in
  (* Exact path (n below 2^53). *)
  let v = Binomial.sample_float rng ~n:1000.0 ~p:0.5 in
  Alcotest.(check bool) "integral result" true (Float.is_integer v);
  Alcotest.(check bool) "in range" true (v >= 0.0 && v <= 1000.0);
  (* Gaussian path (n above 2^53): check mean within 6 sigma over trials. *)
  let n = 1e17 and p = 0.25 in
  let draws = 2000 in
  let sum = ref 0.0 in
  for _ = 1 to draws do
    let v = Binomial.sample_float rng ~n ~p in
    Alcotest.(check bool) "range" true (v >= 0.0 && v <= n);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int draws in
  let sd_of_mean = sqrt (n *. p *. (1.0 -. p) /. float_of_int draws) in
  Alcotest.(check bool) "gaussian-path mean" true
    (Float.abs (mean -. (n *. p)) < 6.0 *. sd_of_mean)

let test_sample_bigint () =
  let rng = Rng.create ~seed:38 in
  (* Fits int: exact path. *)
  let v = Binomial.sample_bigint rng ~n:(B.of_int 500) ~p:0.2 in
  Alcotest.(check bool) "range" true (v >= 0.0 && v <= 500.0);
  (* 2^70 points: float path. *)
  let n = B.pow2 70 in
  let v = Binomial.sample_bigint rng ~n ~p:0.5 in
  let nf = B.to_float n in
  Alcotest.(check bool) "huge range" true (v >= 0.0 && v <= nf);
  (* sd = sqrt(n)/2 ~ 1.7e10: allow 7 sigma. *)
  Alcotest.(check bool) "near mean" true (Float.abs (v -. (nf /. 2.0)) < 1.2e11)

(* Theorem F.1: halving a Bin(n, p) draw gives a Bin(n, p/2) draw.  We test
   distribution equality of cascaded vs direct sampling via a two-sample
   mean/variance comparison. *)
let test_cascade_theorem_f1 () =
  let rng = Rng.create ~seed:39 in
  let n = 400 and p = 0.5 in
  let draws = 30_000 in
  let direct = Delphic_util.Summary.create () in
  let cascaded = Delphic_util.Summary.create () in
  for _ = 1 to draws do
    Delphic_util.Summary.add direct
      (float_of_int (Binomial.sample rng ~n ~p:(p /. 2.0)));
    let first = Binomial.sample rng ~n ~p in
    Delphic_util.Summary.add cascaded
      (Binomial.halve rng (float_of_int first))
  done;
  let md = Delphic_util.Summary.mean direct and mc = Delphic_util.Summary.mean cascaded in
  let vd = Delphic_util.Summary.variance direct
  and vc = Delphic_util.Summary.variance cascaded in
  (* Means: each ~ N(100, 86/30000): 6 sigma ~ 0.32. *)
  Alcotest.(check bool) "means agree" true (Float.abs (md -. mc) < 0.5);
  Alcotest.(check bool) "variances agree" true (Float.abs (vd -. vc) < 0.08 *. vd);
  Alcotest.(check bool) "mean is np/2" true (Float.abs (md -. 100.0) < 0.5)

let suite =
  [
    Alcotest.test_case "edge cases" `Quick test_edges;
    Alcotest.test_case "range [0,n]" `Quick test_range;
    Alcotest.test_case "goodness of fit: BINV" `Quick test_gof_binv;
    Alcotest.test_case "goodness of fit: BTPE" `Quick test_gof_btpe;
    Alcotest.test_case "goodness of fit: flipped p" `Quick test_gof_flipped;
    Alcotest.test_case "moments at large n" `Quick test_moments_large_n;
    Alcotest.test_case "sample_float both paths" `Quick test_sample_float_paths;
    Alcotest.test_case "sample_bigint both paths" `Quick test_sample_bigint;
    Alcotest.test_case "cascade halving (Thm F.1)" `Quick test_cascade_theorem_f1;
  ]
