(* Summary statistics against hand-computed values. *)

module Summary = Delphic_util.Summary

let feq = Alcotest.float 1e-9

let test_empty () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.check feq "mean" 0.0 (Summary.mean s);
  Alcotest.check feq "variance" 0.0 (Summary.variance s);
  Alcotest.check_raises "quantile empty" (Invalid_argument "Summary.quantile: empty")
    (fun () -> ignore (Summary.quantile s 0.5))

let test_known_values () =
  let s = Summary.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.check feq "mean" 5.0 (Summary.mean s);
  (* Population variance is 4; sample variance = 32/7. *)
  Alcotest.check feq "sample variance" (32.0 /. 7.0) (Summary.variance s);
  Alcotest.check feq "min" 2.0 (Summary.min s);
  Alcotest.check feq "max" 9.0 (Summary.max s);
  Alcotest.check feq "total" 40.0 (Summary.total s)

let test_quantiles () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.check feq "q0" 1.0 (Summary.quantile s 0.0);
  Alcotest.check feq "q1" 5.0 (Summary.quantile s 1.0);
  Alcotest.check feq "median" 3.0 (Summary.median s);
  Alcotest.check feq "q0.25" 2.0 (Summary.quantile s 0.25);
  (* Interpolation between order statistics. *)
  Alcotest.check feq "q0.1" 1.4 (Summary.quantile s 0.1)

let test_quantile_unsorted_input () =
  let s = Summary.of_array [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.check feq "median of unsorted" 3.0 (Summary.median s)

let test_growth_beyond_initial_buffer () =
  let s = Summary.create () in
  for i = 1 to 1000 do
    Summary.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Summary.count s);
  Alcotest.check feq "mean" 500.5 (Summary.mean s);
  Alcotest.(check int) "values retained" 1000 (Array.length (Summary.values s))

let test_relative_error () =
  Alcotest.check feq "10% high" 0.1 (Summary.relative_error ~estimate:110.0 ~truth:100.0);
  Alcotest.check feq "10% low" 0.1 (Summary.relative_error ~estimate:90.0 ~truth:100.0);
  Alcotest.check_raises "zero truth"
    (Invalid_argument "Summary.relative_error: zero truth") (fun () ->
      ignore (Summary.relative_error ~estimate:1.0 ~truth:0.0))

let prop_mean_matches_naive =
  QCheck.Test.make ~name:"Welford mean matches naive" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 50) (QCheck.float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Summary.of_array (Array.of_list xs) in
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Summary.mean s -. naive) < 1e-6)

let suite =
  [
    Alcotest.test_case "empty accumulator" `Quick test_empty;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "quantiles" `Quick test_quantiles;
    Alcotest.test_case "quantile sorts internally" `Quick test_quantile_unsorted_input;
    Alcotest.test_case "buffer growth" `Quick test_growth_beyond_initial_buffer;
    Alcotest.test_case "relative error" `Quick test_relative_error;
    QCheck_alcotest.to_alcotest prop_mean_matches_naive;
  ]
