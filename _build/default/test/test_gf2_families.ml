(* GF(2) elimination, affine subspaces and Hamming balls: solver
   correctness, family axioms, and end-to-end VATIC runs on streams of both
   new families against brute-force union counts. *)

module Gf2 = Delphic_util.Gf2
module Bitvec = Delphic_util.Bitvec
module B = Delphic_util.Bigint
module Comb = Delphic_util.Comb
module Rng = Delphic_util.Rng
module Affine = Delphic_sets.Affine_subspace
module Ball = Delphic_sets.Hamming_ball
module V_affine = Delphic_core.Vatic.Make (Affine)
module V_ball = Delphic_core.Vatic.Make (Ball)

let assignment_of_int n x =
  let v = Bitvec.create ~width:n in
  for i = 0 to n - 1 do
    Bitvec.set v i ((x lsr i) land 1 = 1)
  done;
  v

let random_row rng ~nvars =
  let coeffs = Bitvec.random rng ~width:nvars in
  { Gf2.coeffs; rhs = Rng.bool rng }

(* --- new Bitvec operations --- *)

let test_bitvec_gf2_ops () =
  let a = Bitvec.of_string "1100110" and b = Bitvec.of_string "1010101" in
  Alcotest.(check string) "xor" "0110011" (Bitvec.to_string (Bitvec.logxor a b));
  Alcotest.(check string) "and" "1000100" (Bitvec.to_string (Bitvec.logand a b));
  Alcotest.(check int) "hamming" 4 (Bitvec.hamming_distance a b);
  Alcotest.(check bool) "dot = parity of and" true (Bitvec.dot a b = false);
  Alcotest.(check bool) "parity odd" true (Bitvec.parity (Bitvec.of_string "10110"));
  Alcotest.(check bool) "parity even" false (Bitvec.parity (Bitvec.of_string "1010"));
  Alcotest.(check bool) "is_zero" true (Bitvec.is_zero (Bitvec.create ~width:70));
  let c = Bitvec.copy a in
  Bitvec.xor_inplace c b;
  Alcotest.(check string) "xor_inplace" "0110011" (Bitvec.to_string c);
  (match Bitvec.logxor a (Bitvec.of_string "10") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected width mismatch")

(* --- GF(2) solver --- *)

let brute_solutions ~nvars rows =
  List.filter
    (fun x -> List.for_all (fun r -> Gf2.satisfies r (assignment_of_int nvars x)) rows)
    (List.init (1 lsl nvars) Fun.id)

let test_solver_vs_bruteforce () =
  let rng = Rng.create ~seed:121 in
  for _ = 1 to 60 do
    let nvars = 2 + Rng.int rng 9 in
    let rows = List.init (Rng.int rng (nvars + 3)) (fun _ -> random_row rng ~nvars) in
    let brute = brute_solutions ~nvars rows in
    match Gf2.solve ~nvars rows with
    | None -> Alcotest.(check int) "inconsistent iff no solutions" 0 (List.length brute)
    | Some sol ->
      Alcotest.(check int) "solution count = 2^(n-rank)"
        (List.length brute)
        (1 lsl (nvars - sol.Gf2.rank));
      (* Particular solution satisfies all rows. *)
      Alcotest.(check bool) "particular valid" true
        (List.for_all (fun r -> Gf2.satisfies r sol.Gf2.particular) rows);
      (* Every basis vector lies in the kernel. *)
      Array.iter
        (fun v ->
          Alcotest.(check bool) "kernel vector" true
            (List.for_all
               (fun (r : Gf2.row) -> Gf2.satisfies { r with rhs = false } v)
               rows))
        sol.Gf2.null_basis;
      Alcotest.(check int) "basis size" (nvars - sol.Gf2.rank)
        (Array.length sol.Gf2.null_basis)
  done

let test_solver_known_system () =
  (* x0 + x1 = 1, x1 + x2 = 0 over 3 vars: solutions {100, 011}. *)
  let rows =
    [
      { Gf2.coeffs = Bitvec.of_string "110"; rhs = true };
      { Gf2.coeffs = Bitvec.of_string "011"; rhs = false };
    ]
  in
  match Gf2.solve ~nvars:3 rows with
  | None -> Alcotest.fail "system is consistent"
  | Some sol ->
    Alcotest.(check int) "rank" 2 sol.Gf2.rank;
    Alcotest.(check int) "one free var" 1 (Array.length sol.Gf2.null_basis)

let test_solver_inconsistent () =
  let rows =
    [
      { Gf2.coeffs = Bitvec.of_string "10"; rhs = true };
      { Gf2.coeffs = Bitvec.of_string "10"; rhs = false };
    ]
  in
  Alcotest.(check bool) "inconsistent" false (Gf2.consistent ~nvars:2 rows)

(* --- affine subspace family --- *)

let test_affine_family_axioms () =
  let rng = Rng.create ~seed:122 in
  for _ = 1 to 30 do
    let nvars = 3 + Rng.int rng 8 in
    let rows = List.init (1 + Rng.int rng nvars) (fun _ -> random_row rng ~nvars) in
    match Affine.create_opt ~nvars rows with
    | None -> ()
    | Some s ->
      Alcotest.(check bool) "cardinality = brute force" true
        (B.equal (Affine.cardinality s)
           (B.of_int (List.length (brute_solutions ~nvars rows))));
      for _ = 1 to 30 do
        let x = Affine.sample s rng in
        Alcotest.(check bool) "sample is member" true (Affine.mem s x)
      done
  done

let test_affine_sampling_uniform () =
  (* Small subspace: every solution equally likely. *)
  let rows = [ { Gf2.coeffs = Bitvec.of_string "1100"; rhs = true } ] in
  let s = Affine.create ~nvars:4 rows in
  Alcotest.(check string) "2^3 solutions" "8" (B.to_string (Affine.cardinality s));
  let rng = Rng.create ~seed:123 in
  let counts = Hashtbl.create 8 in
  let draws = 16_000 in
  for _ = 1 to draws do
    let key = Bitvec.to_string (Affine.sample s rng) in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all reached" 8 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c -> if abs (c - 2000) > 270 then Alcotest.failf "skew: %d" c)
    counts

let test_affine_inconsistent_rejected () =
  let rows =
    [
      { Gf2.coeffs = Bitvec.of_string "1"; rhs = true };
      { Gf2.coeffs = Bitvec.of_string "1"; rhs = false };
    ]
  in
  match Affine.create ~nvars:1 rows with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_vatic_on_affine_stream () =
  (* Stream of random XOR-constraint sets over 18 vars; truth by
     enumeration. *)
  let nvars = 18 in
  let rng = Rng.create ~seed:124 in
  let pool = ref [] in
  while List.length !pool < 25 do
    let rows = List.init (6 + Rng.int rng 6) (fun _ -> random_row rng ~nvars) in
    match Affine.create_opt ~nvars rows with
    | Some s -> pool := s :: !pool
    | None -> ()
  done;
  let pool = !pool in
  let member x = List.exists (fun s -> Affine.mem s (assignment_of_int nvars x)) pool in
  let truth = ref 0 in
  for x = 0 to (1 lsl nvars) - 1 do
    if member x then incr truth
  done;
  let failures = ref 0 in
  for i = 0 to 9 do
    let t =
      V_affine.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:(float_of_int nvars)
        ~seed:(800 + i) ()
    in
    List.iter (V_affine.process t) pool;
    if Float.abs (V_affine.estimate t -. float_of_int !truth) > 0.3 *. float_of_int !truth
    then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/10" !failures) true (!failures <= 2)

(* --- Hamming balls --- *)

let test_ball_cardinality () =
  let c = Bitvec.of_string "0000000000" in
  let b = Ball.create ~center:c ~radius:2 in
  (* 1 + 10 + 45 = 56 *)
  Alcotest.(check string) "C(10,<=2)" "56" (B.to_string (Ball.cardinality b));
  let full = Ball.create ~center:c ~radius:10 in
  Alcotest.(check string) "full cube" "1024" (B.to_string (Ball.cardinality full));
  let point = Ball.create ~center:c ~radius:0 in
  Alcotest.(check string) "radius 0" "1" (B.to_string (Ball.cardinality point))

let test_ball_membership () =
  let c = Bitvec.of_string "10101" in
  let b = Ball.create ~center:c ~radius:1 in
  Alcotest.(check bool) "center in" true (Ball.mem b c);
  Alcotest.(check bool) "distance 1 in" true (Ball.mem b (Bitvec.of_string "00101"));
  Alcotest.(check bool) "distance 2 out" false (Ball.mem b (Bitvec.of_string "01101"
                                                            |> fun v -> Bitvec.set v 4 false; v))

let test_ball_sampling_uniform () =
  let c = Bitvec.of_string "110010" in
  let b = Ball.create ~center:c ~radius:2 in
  let card = B.to_int_exn (Ball.cardinality b) in
  let rng = Rng.create ~seed:125 in
  let counts = Hashtbl.create 32 in
  let draws = 44_000 in
  for _ = 1 to draws do
    let x = Ball.sample b rng in
    Alcotest.(check bool) "member" true (Ball.mem b x);
    let key = Bitvec.to_string x in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all elements reached" card (Hashtbl.length counts);
  let expected = float_of_int draws /. float_of_int card in
  Hashtbl.iter
    (fun _ count ->
      if Float.abs (float_of_int count -. expected) > 6.5 *. sqrt expected then
        Alcotest.failf "count %d far from %.1f" count expected)
    counts

let test_vatic_on_ball_stream () =
  let nbits = 16 in
  let rng = Rng.create ~seed:126 in
  let pool =
    List.init 20 (fun _ ->
        Ball.create ~center:(Bitvec.random rng ~width:nbits) ~radius:(1 + Rng.int rng 3))
  in
  let truth = ref 0 in
  for x = 0 to (1 lsl nbits) - 1 do
    let v = assignment_of_int nbits x in
    if List.exists (fun b -> Ball.mem b v) pool then incr truth
  done;
  let failures = ref 0 in
  for i = 0 to 9 do
    let t =
      V_ball.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:(float_of_int nbits)
        ~seed:(900 + i) ()
    in
    List.iter (V_ball.process t) pool;
    if Float.abs (V_ball.estimate t -. float_of_int !truth) > 0.3 *. float_of_int !truth
    then incr failures
  done;
  Alcotest.(check bool) (Printf.sprintf "failures %d/10" !failures) true (!failures <= 2)

let suite =
  [
    Alcotest.test_case "bitvec GF(2) operations" `Quick test_bitvec_gf2_ops;
    Alcotest.test_case "solver vs brute force" `Quick test_solver_vs_bruteforce;
    Alcotest.test_case "solver known system" `Quick test_solver_known_system;
    Alcotest.test_case "solver detects inconsistency" `Quick test_solver_inconsistent;
    Alcotest.test_case "affine family axioms" `Quick test_affine_family_axioms;
    Alcotest.test_case "affine sampling uniform" `Quick test_affine_sampling_uniform;
    Alcotest.test_case "affine rejects empty set" `Quick test_affine_inconsistent_rejected;
    Alcotest.test_case "VATIC on XOR-constraint stream" `Quick test_vatic_on_affine_stream;
    Alcotest.test_case "ball cardinality" `Quick test_ball_cardinality;
    Alcotest.test_case "ball membership" `Quick test_ball_membership;
    Alcotest.test_case "ball sampling uniform" `Quick test_ball_sampling_uniform;
    Alcotest.test_case "VATIC on Hamming-ball stream" `Quick test_vatic_on_ball_stream;
  ]
