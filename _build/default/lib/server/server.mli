(** TCP front end of the estimation service: an accept loop with one handler
    thread per connection, built on stdlib [Unix] + [threads.posix] only.

    Durability contract: {!create} restores every session spooled under the
    given directory (consuming the spool files); a graceful stop — SIGINT in
    the CLI, or {!request_stop} — drains the open connections and snapshots
    every live session back to the spool, so a restart pointing at the same
    directory resumes exactly where the previous process left off.  The
    loopback test in [test/test_server.ml] exercises this full cycle. *)

type t

val create :
  ?host:string -> port:int -> spool:string -> seed:int -> unit -> t
(** Bind and listen ([host] defaults to ["127.0.0.1"]; [port] 0 picks an
    ephemeral port, see {!port}), then restore any spooled sessions.
    Raises [Unix.Unix_error] if the address is unavailable. *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val registry : t -> Registry.t

val restored : t -> (string * (unit, string) result) list
(** Outcome of the spool restoration done by {!create}. *)

val serve : t -> unit
(** Run the accept loop on the calling thread until {!request_stop}; on the
    way out, close client connections, join handler threads, and snapshot
    all sessions to the spool.  Returns normally after a graceful stop. *)

val start : t -> Thread.t
(** {!serve} on a daemon thread — the loopback tests use this. *)

val request_stop : t -> unit
(** Trigger a graceful shutdown from any thread or from a signal handler;
    idempotent, returns immediately ({!serve} performs the drain). *)

val install_sigint : t -> unit
(** Route SIGINT to {!request_stop}. *)
