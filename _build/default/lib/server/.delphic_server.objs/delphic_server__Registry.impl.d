lib/server/registry.ml: Array Delphic_core Delphic_stream Families Filename Fun Hashtbl List Mutex Protocol Result String Sys Unix
