lib/server/server.ml: Fun Hashtbl List Logs Mutex Printexc Protocol Registry Sys Thread Unix
