lib/server/families.ml: Array Delphic_core Delphic_family Delphic_sets Delphic_stream Delphic_util List Option Printf Protocol Result String
