lib/server/protocol.mli:
