lib/server/server.mli: Registry Thread
