lib/server/protocol.ml: List Printf Result String
