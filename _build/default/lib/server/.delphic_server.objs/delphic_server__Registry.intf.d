lib/server/registry.mli: Protocol
