lib/server/families.mli: Delphic_core Protocol
