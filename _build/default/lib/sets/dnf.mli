(** DNF terms as Delphic sets (Section 6.1): the solution set of a
    conjunction of literals over [n] Boolean variables has cardinality
    [2^(n-k)] for [k] distinct literals, membership is a literal scan, and
    sampling fixes the literal bits and randomises the rest.  A stream of
    terms is exactly the streaming DNF model-counting problem. *)

type literal = { var : int; positive : bool }

type t
(** One DNF term over a fixed number of variables. *)

val create : nvars:int -> literal list -> t
(** Requires [0 <= var < nvars] for every literal, no variable repeated
    (a term with contradictory literals would be empty, hence not Delphic-
    sampleable; repeats are rejected outright). *)

val nvars : t -> int
val literals : t -> literal list
val width : t -> int
(** Number of literals in the term. *)

val satisfies : t -> Delphic_util.Bitvec.t -> bool
(** Same as [mem]; exported under the conventional name. *)

val pp : Format.formatter -> t -> unit

val as_rows : t -> Delphic_util.Gf2.row list
(** The term as unit GF(2) equations ([x_v = b] per literal). *)

val count_constrained : t -> Delphic_util.Gf2.row list -> Delphic_util.Bigint.t
(** Solutions of the term that also satisfy the given parity rows. *)

val enumerate_constrained :
  t -> Delphic_util.Gf2.row list -> limit:int -> Delphic_util.Bitvec.t list option
(** The XOR-constrained solutions themselves; [None] above [limit]. *)

include
  Delphic_family.Family.FAMILY
    with type t := t
     and type elt = Delphic_util.Bitvec.t
