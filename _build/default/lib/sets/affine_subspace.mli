(** Affine subspaces of GF(2)^n — solution sets of XOR constraint systems.

    A further Delphic family beyond the paper's examples, in the spirit of
    its Boolean-circuit discussion (Remark 1.6): the sets underlying
    hashing-based model counters.  With a solved system in hand, the three
    Delphic queries are exact and fast: [|S| = 2^(n − rank)], membership is a
    per-row inner product, and uniform sampling is the particular solution
    xor a uniformly random combination of the null-space basis. *)

type t

val create : nvars:int -> Delphic_util.Gf2.row list -> t
(** Solve the system once.  Raises [Invalid_argument] if the system is
    inconsistent (the empty set is not Delphic — it cannot be sampled). *)

val create_opt : nvars:int -> Delphic_util.Gf2.row list -> t option
(** Like {!create} but [None] on inconsistency. *)

val nvars : t -> int
val rank : t -> int
val dimension : t -> int
(** [nvars − rank], so cardinality is [2^dimension]. *)

include
  Delphic_family.Family.FAMILY
    with type t := t
     and type elt = Delphic_util.Bitvec.t

val count_constrained : t -> Delphic_util.Gf2.row list -> Delphic_util.Bigint.t
(** Elements also satisfying the given parity rows. *)

val enumerate_constrained :
  t -> Delphic_util.Gf2.row list -> limit:int -> Delphic_util.Bitvec.t list option
