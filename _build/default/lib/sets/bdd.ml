module Bigint = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec

(* Nodes live in growable parallel arrays indexed by id; ids 0/1 are the
   terminals.  The unique table enforces canonicity (no node with equal
   children, no duplicates), so semantic equality is id equality. *)

type t = int

let bot : t = 0
let top : t = 1

type mgr = {
  nv : int;
  mutable var_of : int array;
  mutable lo_of : int array;
  mutable hi_of : int array;
  mutable next_id : int;
  unique : (int * int * int, int) Hashtbl.t;
  and_memo : (int * int, int) Hashtbl.t;
  or_memo : (int * int, int) Hashtbl.t;
  not_memo : (int, int) Hashtbl.t;
}

let create_manager ~nvars =
  if nvars <= 0 then invalid_arg "Bdd.create_manager: nvars must be positive";
  let cap = 1024 in
  let var_of = Array.make cap nvars in
  (* Terminals sit conceptually below every variable. *)
  var_of.(0) <- nvars;
  var_of.(1) <- nvars;
  {
    nv = nvars;
    var_of;
    lo_of = Array.make cap (-1);
    hi_of = Array.make cap (-1);
    next_id = 2;
    unique = Hashtbl.create 4096;
    and_memo = Hashtbl.create 4096;
    or_memo = Hashtbl.create 4096;
    not_memo = Hashtbl.create 1024;
  }

let nvars m = m.nv
let node_count m = m.next_id
let equal (a : t) (b : t) = a = b

let grow m =
  let cap = Array.length m.var_of in
  let bigger a fill =
    let b = Array.make (2 * cap) fill in
    Array.blit a 0 b 0 cap;
    b
  in
  m.var_of <- bigger m.var_of m.nv;
  m.lo_of <- bigger m.lo_of (-1);
  m.hi_of <- bigger m.hi_of (-1)

let mk m v lo hi =
  if lo = hi then lo
  else begin
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      if m.next_id = Array.length m.var_of then grow m;
      let id = m.next_id in
      m.next_id <- id + 1;
      m.var_of.(id) <- v;
      m.lo_of.(id) <- lo;
      m.hi_of.(id) <- hi;
      Hashtbl.replace m.unique key id;
      id
  end

let var m i =
  if i < 0 || i >= m.nv then invalid_arg "Bdd.var: variable out of range";
  mk m i bot top

let nvar m i =
  if i < 0 || i >= m.nv then invalid_arg "Bdd.nvar: variable out of range";
  mk m i top bot

let rec bdd_and m a b =
  if a = bot || b = bot then bot
  else if a = top then b
  else if b = top then a
  else if a = b then a
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.and_memo key with
    | Some r -> r
    | None ->
      let va = m.var_of.(a) and vb = m.var_of.(b) in
      let v = Stdlib.min va vb in
      let a_lo, a_hi = if va = v then (m.lo_of.(a), m.hi_of.(a)) else (a, a) in
      let b_lo, b_hi = if vb = v then (m.lo_of.(b), m.hi_of.(b)) else (b, b) in
      let r = mk m v (bdd_and m a_lo b_lo) (bdd_and m a_hi b_hi) in
      Hashtbl.replace m.and_memo key r;
      r
  end

let rec bdd_or m a b =
  if a = top || b = top then top
  else if a = bot then b
  else if b = bot then a
  else if a = b then a
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt m.or_memo key with
    | Some r -> r
    | None ->
      let va = m.var_of.(a) and vb = m.var_of.(b) in
      let v = Stdlib.min va vb in
      let a_lo, a_hi = if va = v then (m.lo_of.(a), m.hi_of.(a)) else (a, a) in
      let b_lo, b_hi = if vb = v then (m.lo_of.(b), m.hi_of.(b)) else (b, b) in
      let r = mk m v (bdd_or m a_lo b_lo) (bdd_or m a_hi b_hi) in
      Hashtbl.replace m.or_memo key r;
      r
  end

let rec bdd_not m a =
  if a = bot then top
  else if a = top then bot
  else
    match Hashtbl.find_opt m.not_memo a with
    | Some r -> r
    | None ->
      let r = mk m m.var_of.(a) (bdd_not m m.lo_of.(a)) (bdd_not m m.hi_of.(a)) in
      Hashtbl.replace m.not_memo a r;
      r

let of_term m term =
  if Dnf.nvars term <> m.nv then invalid_arg "Bdd.of_term: nvars mismatch";
  (* Build bottom-up in decreasing variable order so each literal adds one
     node without any apply call. *)
  let lits =
    List.sort (fun (a : Dnf.literal) b -> Stdlib.compare b.var a.var) (Dnf.literals term)
  in
  List.fold_left
    (fun acc (l : Dnf.literal) ->
      if l.positive then mk m l.var bot acc else mk m l.var acc bot)
    top lits

let of_dnf m terms = List.fold_left (fun acc t -> bdd_or m acc (of_term m t)) bot terms

let eval m node x =
  if Bitvec.width x <> m.nv then invalid_arg "Bdd.eval: assignment width mismatch";
  let rec go id =
    if id = bot then false
    else if id = top then true
    else if Bitvec.get x m.var_of.(id) then go m.hi_of.(id)
    else go m.lo_of.(id)
  in
  go node

let count m node =
  (* below.(id) = #solutions over variables var(id)..nv-1; skipped levels
     between a node and its child contribute a factor 2 each. *)
  let memo = Hashtbl.create 1024 in
  let rec below id =
    if id = bot then Bigint.zero
    else if id = top then Bigint.one
    else
      match Hashtbl.find_opt memo id with
      | Some c -> c
      | None ->
        let v = m.var_of.(id) in
        let child c =
          let gap = m.var_of.(c) - v - 1 in
          Bigint.shift_left (below c) gap
        in
        let c = Bigint.add (child m.lo_of.(id)) (child m.hi_of.(id)) in
        Hashtbl.replace memo id c;
        c
  in
  let root_var = if node = bot || node = top then m.nv else m.var_of.(node) in
  Bigint.shift_left (below node) root_var
