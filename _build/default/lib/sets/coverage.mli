(** t-wise coverage sets of binary test vectors (Section 6.1).

    For an [n]-bit vector [a], [Cov_t(a)] is the set of pairs [(T, y)] where
    [T] is a size-[t] subset of positions and [y = a|_T] is the restriction
    of [a] to those positions.  [|Cov_t(a)| = C(n, t)], and the union over a
    test suite measures how many of the [C(n,t)·2^t] possible interactions
    the suite exercises. *)

type elt = { positions : int array; pattern : Delphic_util.Bitvec.t }
(** A [(T, y)] pair; [positions] is sorted ascending,
    [Bitvec.width pattern = Array.length positions]. *)

type t

val create : vector:Delphic_util.Bitvec.t -> strength:int -> t
(** Coverage set of one test vector at interaction strength [t];
    requires [0 < strength <= width vector]. *)

val vector : t -> Delphic_util.Bitvec.t
val strength : t -> int
val nbits : t -> int

val universe_size : n:int -> strength:int -> Delphic_util.Bigint.t
(** [C(n,t) * 2^t], the size of the universe the coverage sets live in. *)

include Delphic_family.Family.FAMILY with type t := t and type elt := elt
