(** Singleton sets — the classical Distinct Elements problem cast as a set
    stream.  Used to compare VATIC against specialised F0 sketches. *)

type t

val create : int -> t
(** The singleton [{x}] for a non-negative element [x]. *)

val value : t -> int

include Delphic_family.Family.FAMILY with type t := t and type elt = int
