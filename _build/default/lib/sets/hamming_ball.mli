(** Hamming balls in {0,1}^n: all strings within distance [radius] of a
    center — another natural Delphic family (e.g. the neighbourhoods used in
    similarity search and error correction).

    Cardinality is [Σ_{i<=r} C(n,i)] (arbitrary precision); uniform sampling
    draws a distance [w] with probability proportional to [C(n,w)] by
    arbitrary-precision inversion, then flips a uniform [w]-subset of
    positions; membership is one xor + popcount. *)

type t

val create : center:Delphic_util.Bitvec.t -> radius:int -> t
(** Requires [0 <= radius <= width center]. *)

val center : t -> Delphic_util.Bitvec.t
val radius : t -> int
val nbits : t -> int

include
  Delphic_family.Family.FAMILY
    with type t := t
     and type elt = Delphic_util.Bitvec.t
