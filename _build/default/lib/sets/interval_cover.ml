(* Classic "measure of union of segments" segment tree: node i covers the
   cut-index range [l, r); [count] is how many active intervals cover the
   node entirely; [len] is the covered length inside the node's range.
   Invariant restored bottom-up: len = full span when count > 0, else the
   children's sum (0 at leaves). *)

type t = {
  cuts : int array;
  count : int array; (* 1-based heap layout, size 4·cells *)
  len : int array;
  cells : int; (* number of atomic gaps = |cuts| - 1 *)
}

let create cuts =
  let n = Array.length cuts in
  if n < 2 then invalid_arg "Interval_cover.create: need at least two cuts";
  for i = 1 to n - 1 do
    if cuts.(i - 1) >= cuts.(i) then
      invalid_arg "Interval_cover.create: cuts must be strictly increasing"
  done;
  let cells = n - 1 in
  { cuts = Array.copy cuts; count = Array.make (4 * cells) 0; len = Array.make (4 * cells) 0; cells }

let span t = t.cuts.(Array.length t.cuts - 1) - t.cuts.(0)

let cut_index t x =
  (* Binary search for x in cuts; x must be present. *)
  let lo = ref 0 and hi = ref (Array.length t.cuts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cuts.(mid) < x then lo := mid + 1 else hi := mid
  done;
  if t.cuts.(!lo) <> x then invalid_arg "Interval_cover: endpoint is not a cut";
  !lo

(* Update cover counts by [delta] over cut-index range [ql, qr), node [node]
   spanning [l, r). *)
let rec update t ~node ~l ~r ~ql ~qr ~delta =
  if qr <= l || r <= ql then ()
  else if ql <= l && r <= qr then t.count.(node) <- t.count.(node) + delta
  else begin
    let mid = (l + r) / 2 in
    update t ~node:(2 * node) ~l ~r:mid ~ql ~qr ~delta;
    update t ~node:((2 * node) + 1) ~l:mid ~r ~ql ~qr ~delta
  end;
  (* Recompute covered length for this node. *)
  if t.count.(node) > 0 then t.len.(node) <- t.cuts.(r) - t.cuts.(l)
  else if r - l = 1 then t.len.(node) <- 0
  else t.len.(node) <- t.len.(2 * node) + t.len.((2 * node) + 1)

let change t ~lo ~hi ~delta =
  if lo >= hi then invalid_arg "Interval_cover: need lo < hi";
  let ql = cut_index t lo and qr = cut_index t hi in
  update t ~node:1 ~l:0 ~r:t.cells ~ql ~qr ~delta

let add t ~lo ~hi = change t ~lo ~hi ~delta:1
let remove t ~lo ~hi = change t ~lo ~hi ~delta:(-1)
let covered t = t.len.(1)
