lib/sets/affine_subspace.ml: Array Delphic_util
