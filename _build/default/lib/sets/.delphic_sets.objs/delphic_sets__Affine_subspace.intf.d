lib/sets/affine_subspace.mli: Delphic_family Delphic_util
