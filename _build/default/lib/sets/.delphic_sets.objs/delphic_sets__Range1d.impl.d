lib/sets/range1d.ml: Delphic_util Format Hashtbl Int
