lib/sets/singleton.mli: Delphic_family
