lib/sets/dnf.ml: Array Delphic_util Format Hashtbl List Printf String
