lib/sets/hamming_ball.ml: Array Delphic_util
