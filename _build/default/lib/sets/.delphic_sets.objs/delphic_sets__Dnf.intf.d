lib/sets/dnf.mli: Delphic_family Delphic_util Format
