lib/sets/exact.mli: Delphic_util Dnf Knapsack Range1d Rectangle
