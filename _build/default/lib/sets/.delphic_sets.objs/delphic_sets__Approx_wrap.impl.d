lib/sets/approx_wrap.ml: Delphic_family Delphic_util Float
