lib/sets/hypervolume.mli: Delphic_family Format Rectangle
