lib/sets/knapsack.ml: Array Delphic_util Fun
