lib/sets/hypervolume.ml: Array Rectangle
