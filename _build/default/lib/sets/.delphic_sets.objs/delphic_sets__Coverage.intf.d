lib/sets/coverage.mli: Delphic_family Delphic_util
