lib/sets/bdd.mli: Delphic_util Dnf
