lib/sets/exact.ml: Array Bdd Delphic_util Dnf Hashtbl Interval_cover Knapsack List Range1d Rectangle Stdlib
