lib/sets/knapsack.mli: Delphic_family Delphic_util
