lib/sets/mixed_coverage.mli: Delphic_family Delphic_util
