lib/sets/mixed_coverage.ml: Array Delphic_util Format Hashtbl Stdlib String
