lib/sets/rectangle.ml: Array Delphic_util Format Hashtbl List Printf Stdlib String
