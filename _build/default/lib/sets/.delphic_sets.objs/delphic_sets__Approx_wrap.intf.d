lib/sets/approx_wrap.mli: Delphic_family
