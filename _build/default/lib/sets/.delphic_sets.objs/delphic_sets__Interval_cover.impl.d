lib/sets/interval_cover.ml: Array
