lib/sets/coverage.ml: Array Delphic_util Format Hashtbl String
