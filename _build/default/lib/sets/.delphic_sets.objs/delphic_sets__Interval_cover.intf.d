lib/sets/interval_cover.mli:
