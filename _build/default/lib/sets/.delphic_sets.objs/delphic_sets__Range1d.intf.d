lib/sets/range1d.mli: Delphic_family Format
