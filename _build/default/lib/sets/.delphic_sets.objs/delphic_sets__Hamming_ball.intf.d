lib/sets/hamming_ball.mli: Delphic_family Delphic_util
