lib/sets/multi_interval.mli: Delphic_family Format
