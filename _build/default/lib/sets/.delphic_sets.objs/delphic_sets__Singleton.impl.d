lib/sets/singleton.ml: Delphic_util Format Hashtbl Int
