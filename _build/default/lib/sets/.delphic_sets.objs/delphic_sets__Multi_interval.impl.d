lib/sets/multi_interval.ml: Array Delphic_util Format Hashtbl Int List Printf Stdlib String
