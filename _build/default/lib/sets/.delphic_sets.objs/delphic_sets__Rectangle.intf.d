lib/sets/rectangle.mli: Delphic_family Delphic_util Format
