lib/sets/bdd.ml: Array Delphic_util Dnf Hashtbl List Stdlib
