module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng

module Make (F : Delphic_family.Family.FAMILY) = struct
  type t = { set : F.t; alpha : float; gamma : float; eta : float; salt : int }

  let wrap ~alpha ~gamma ~eta ?(salt = 0) set =
    if alpha < 0.0 then invalid_arg "Approx_wrap.wrap: alpha must be >= 0";
    if gamma < 0.0 || gamma >= 1.0 then invalid_arg "Approx_wrap.wrap: gamma outside [0,1)";
    if eta < 0.0 then invalid_arg "Approx_wrap.wrap: eta must be >= 0";
    { set; alpha; gamma; eta; salt }

  let exact t = t.set

  type elt = F.elt

  let mem t x = F.mem t.set x

  (* Multiply a bignum by a float factor >= 0 through a 20-bit fixed-point
     approximation; the representation error is absorbed by alpha's slack. *)
  let scale v factor =
    let fixed = int_of_float (Float.round (factor *. 1048576.0)) in
    Bigint.max Bigint.one (Bigint.shift_right (Bigint.mul_int v fixed) 20)

  let approx_cardinality t rng =
    let truth = F.cardinality t.set in
    if Rng.bernoulli rng t.gamma then
      (* Oracle failure: a value well outside the (1+alpha) window. *)
      scale truth (((1.0 +. t.alpha) ** 3.0) +. 1.0)
    else begin
      (* Log-uniform noise inside the window keeps both window edges
         reachable, unlike uniform noise which rarely shrinks. *)
      let u = (2.0 *. Rng.float rng) -. 1.0 in
      scale truth ((1.0 +. t.alpha) ** u)
    end

  let heavy t x = (F.hash_elt x lxor (t.salt * 0x9E3779B9)) land 1 = 0

  (* Rejection against weight w(x)/(1+eta) with w ∈ {1, 1+eta}: acceptance
     probability of x is proportional to w(x), giving P(x) = w(x)/W with
     W ∈ [|S|, (1+eta)|S|] — exactly the eta-sampler contract. *)
  let approx_sample t rng =
    let accept_light = 1.0 /. (1.0 +. t.eta) in
    let rec draw () =
      let x = F.sample t.set rng in
      if heavy t x || Rng.float rng < accept_light then x else draw ()
    in
    draw ()

  let equal_elt = F.equal_elt
  let hash_elt = F.hash_elt
  let pp_elt = F.pp_elt
end
