(** Covered-length tracking under interval insertion and deletion — the
    segment-tree substrate of Bentley's sweep-line algorithm for Klee's
    measure problem in the plane.

    The tree is built over a fixed, sorted array of coordinate cuts; the
    atomic cells are the half-open gaps [[cuts.(i), cuts.(i+1))].  [add] and
    [remove] adjust a cover count per canonical node in O(log n) and
    [covered] reads the total covered length in O(1). *)

type t

val create : int array -> t
(** [create cuts] over a sorted array of strictly increasing coordinates.
    Requires at least two cuts. *)

val add : t -> lo:int -> hi:int -> unit
(** Cover the half-open coordinate interval [[lo, hi)].  [lo] and [hi] must
    be members of the cut array. *)

val remove : t -> lo:int -> hi:int -> unit
(** Undo one [add] of the same interval.  Counts may not go negative. *)

val covered : t -> int
(** Total length of coordinates covered by at least one active interval. *)

val span : t -> int
(** Length of the whole tracked region ([cuts.(n-1) - cuts.(0)]). *)
