(** One-dimensional integer ranges [[lo, hi]] — the classical
    "range-efficient F0" setting (Pavan–Tirthapura, Sun–Poon), and the
    simplest non-singleton Delphic family. *)

type t

val create : lo:int -> hi:int -> t
(** Inclusive range; requires [0 <= lo <= hi]. *)

val lo : t -> int
val hi : t -> int
val length : t -> int

val pp : Format.formatter -> t -> unit

include Delphic_family.Family.FAMILY with type t := t and type elt = int
