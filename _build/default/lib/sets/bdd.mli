(** Reduced ordered binary decision diagrams with hash-consing.

    Substrate for {e exact} DNF model counting: the union of term solution
    sets is the OR of the terms' BDDs, and the satisfying-assignment count
    falls out of one bottom-up pass.  This gives exact ground truth for the
    DNF experiments at sizes where 2^n enumeration is impossible. *)

type mgr
(** A manager owns the node store and memo tables for one variable order
    [0 < 1 < ... < nvars-1]. *)

type t
(** A BDD node handle (valid only with the manager that created it). *)

val create_manager : nvars:int -> mgr
val nvars : mgr -> int

val bot : t
(** The constant-false BDD. *)

val top : t
(** The constant-true BDD. *)

val var : mgr -> int -> t
(** The single-variable function x_i. *)

val nvar : mgr -> int -> t
(** The negated single-variable function ¬x_i. *)

val bdd_and : mgr -> t -> t -> t
val bdd_or : mgr -> t -> t -> t
val bdd_not : mgr -> t -> t

val of_term : mgr -> Dnf.t -> t
(** Conjunction-of-literals BDD (linear in the term width). *)

val of_dnf : mgr -> Dnf.t list -> t
(** OR of all terms. *)

val eval : mgr -> t -> Delphic_util.Bitvec.t -> bool
(** Evaluate under an assignment of width [nvars]. *)

val count : mgr -> t -> Delphic_util.Bigint.t
(** Number of satisfying assignments over all [nvars] variables. *)

val node_count : mgr -> int
(** Total nodes allocated in the manager (diagnostics). *)

val equal : t -> t -> bool
(** Constant-time semantic equality (hash-consing canonicity). *)
