(** Knapsack solution sets (Section 6.2): for a weight vector [a] and budget
    [b], the set [{x ∈ {0,1}^n : Σ a_i x_i <= b}].

    Exact counting is #P-hard in general, but for the pseudo-polynomial
    regime a counting dynamic program over (item, remaining budget) yields
    exact cardinalities and exact uniform sampling — making these sets fully
    Delphic.  The [Approx] submodule deliberately rounds the DP counts to a
    fixed number of significant bits, producing a genuine
    [(α, 0, η)]-Approximate-Delphic oracle with provable parameter bounds,
    which is how we exercise EXT-VATIC on a "hard counting" family (stand-in
    for the FPTAS oracles of Gopalan et al., see DESIGN.md §4). *)

type t

val create : weights:int array -> bound:int -> t
(** Requires positive weights and [bound >= 0].  Builds the counting DP,
    O(n·bound) time and space. *)

val nvars : t -> int
val weights : t -> int array
val bound : t -> int
val weight_of : t -> Delphic_util.Bitvec.t -> int
(** Total weight of an assignment. *)

include
  Delphic_family.Family.FAMILY
    with type t := t
     and type elt = Delphic_util.Bitvec.t

(** Same sets behind a deliberately coarsened oracle. *)
module Approx : sig
  type exact := t
  type t

  val create : sigbits:int -> exact -> t
  (** Round every DP count down to [sigbits] significant bits
      (requires [sigbits >= 2]). *)

  val alpha : t -> float
  (** Cardinality approximation factor: the rounded count [Z] satisfies
      [|S|/(1+alpha) <= Z <= (1+alpha)|S|] deterministically (γ = 0). *)

  val eta : t -> float
  (** Sampling tilt bound: walking the rounded DP selects each solution with
      probability within [[1/((1+eta)|S|), (1+eta)/|S|]]. *)

  include
    Delphic_family.Family.APPROX_FAMILY
      with type t := t
       and type elt = Delphic_util.Bitvec.t
end
