(** Degrade an exact Delphic family into a calibrated
    [(α, γ, η)]-Approximate-Delphic oracle.

    This simulates the paper's Approximate-Delphic applications whose real
    oracles are out of scope for a streaming library (lattice-point counting
    in convex bodies, NP-oracle-powered circuit counters — DESIGN.md §4):

    - {b cardinality}: with probability [1-γ] the exact count is multiplied
      by a factor log-uniform in [[1/(1+α), 1+α]]; with probability [γ] a
      garbage value far outside the window is returned, exercising the
      estimator's tolerance of oracle failures;
    - {b sampling}: elements are drawn from an [η]-tilted distribution — a
      deterministic hash splits the set into "heavy" elements of weight
      [1+η] and "light" ones of weight 1, realised by rejection on exact
      uniform draws.  Every element's probability provably lies within
      [[1/((1+η)|S|), (1+η)/|S|]].

    Because the wrapper knows the exact set, experiments can compare
    EXT-VATIC's output against the true union size. *)

module Make (F : Delphic_family.Family.FAMILY) : sig
  type t

  val wrap : alpha:float -> gamma:float -> eta:float -> ?salt:int -> F.t -> t
  (** Requires [alpha >= 0], [0 <= gamma < 1], [eta >= 0].  [salt] decorrelates
      the heavy/light split across experiments. *)

  val exact : t -> F.t
  (** The underlying exact set (for ground truth). *)

  include
    Delphic_family.Family.APPROX_FAMILY with type t := t and type elt = F.elt
end
