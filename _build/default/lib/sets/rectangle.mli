(** Axis-parallel rectangles (boxes) in [Δ^d] — the streaming Klee's Measure
    Problem instance (Definition 2.2 of the paper).

    A box is the set of integer points [(x_1, ..., x_d)] with
    [lo_i <= x_i <= hi_i].  The three Delphic queries are each [O(d)]. *)

type t

val create : lo:int array -> hi:int array -> t
(** Requires equal-length arrays with [0 <= lo.(i) <= hi.(i)] for all [i]. *)

val dim : t -> int
val lo : t -> int array
(** A copy of the lower corner. *)

val hi : t -> int array
(** A copy of the upper corner (inclusive). *)

val side : t -> int -> int
(** [side r i] is the number of points along dimension [i]. *)

val volume : t -> Delphic_util.Bigint.t
(** Number of integer points (same as [cardinality]). *)

val contains_box : t -> t -> bool
(** [contains_box outer inner]: does [outer] contain every point of
    [inner]? *)

val intersect : t -> t -> t option
(** Intersection box, if non-empty. *)

val pp : Format.formatter -> t -> unit

include Delphic_family.Family.FAMILY with type t := t and type elt = int array
