(** Sets that are unions of disjoint integer intervals — the natural shape
    of real 1-d stream items (an IP block list entry with carve-outs, a
    retention window with holes).  Still perfectly Delphic: cardinality is
    the summed length, membership is a binary search, and sampling picks an
    interval with probability proportional to its length.  All three
    queries are O(log k) for k intervals. *)

type t

val create : (int * int) list -> t
(** [create [(lo1, hi1); ...]] from inclusive intervals in any order;
    overlapping or adjacent intervals are coalesced.  Requires a non-empty
    list with [0 <= lo <= hi] in each pair. *)

val intervals : t -> (int * int) list
(** The canonical (sorted, disjoint, non-adjacent) intervals. *)

val pieces : t -> int
(** Number of canonical intervals. *)

val length : t -> int
(** Total number of covered integers. *)

val pp : Format.formatter -> t -> unit

include Delphic_family.Family.FAMILY with type t := t and type elt = int
