(** Origin-rooted boxes [[0,b_1] × ... × [0,b_d]] — the hypervolume-indicator
    estimation problem (Section 6.1 of the paper), a special case of Klee's
    Measure Problem used to score Pareto fronts in multi-objective
    optimisation. *)

type t

val create : int array -> t
(** [create b] is the box [[0, b.(0)] × ... × [0, b.(d-1)]]; all coordinates
    must be non-negative. *)

val corner : t -> int array
(** The dominating corner [b]. *)

val dim : t -> int

val to_rectangle : t -> Rectangle.t
(** View as a general box. *)

val dominates : t -> t -> bool
(** [dominates a b]: is [b]'s box contained in [a]'s (coordinatewise
    [<=])? *)

val pp : Format.formatter -> t -> unit

include Delphic_family.Family.FAMILY with type t := t and type elt = int array
