(** Mixed-level t-wise coverage: the generalisation of {!Coverage} to
    non-binary test parameters, as used for real covering arrays (each
    position [i] takes values in [{0, ..., arities.(i) - 1}]).

    For a test vector [v], the coverage set is
    the set of pairs (T, v restricted to T) over all size-t position sets
    T, of cardinality C(n,t); the universe of possible interactions has
    size sum over such T of the product of the arities in T — the
    degree-[t] elementary symmetric polynomial of the arities, computed
    exactly in arbitrary precision. *)

type elt = { positions : int array; values : int array }
(** A [(T, y)] pair: sorted positions and the observed value at each. *)

type t

val create : vector:int array -> arities:int array -> strength:int -> t
(** Requires equal lengths, [0 <= vector.(i) < arities.(i)], arities >= 1,
    and [0 < strength <= n]. *)

val vector : t -> int array
val arities : t -> int array
val strength : t -> int
val npositions : t -> int

val universe_size : arities:int array -> strength:int -> Delphic_util.Bigint.t
(** The elementary symmetric polynomial [e_strength(arities)]. *)

include Delphic_family.Family.FAMILY with type t := t and type elt := elt
