(** Discrete distributions for workload generation. *)

module Discrete : sig
  (** Finite discrete distribution with O(1) sampling (Walker/Vose alias
      method). *)

  type t

  val create : float array -> t
  (** [create weights] from non-negative weights (not all zero);
      probabilities are the normalised weights. *)

  val sample : t -> Rng.t -> int
  (** Index drawn with probability proportional to its weight. *)

  val size : t -> int
end

module Zipf : sig
  (** Zipf distribution over [{0,...,n-1}] with exponent [s]:
      P(i) ∝ 1/(i+1)^s. *)

  type t

  val create : n:int -> s:float -> t
  val sample : t -> Rng.t -> int
end

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success, [p] in (0, 1]. *)

val poisson : Rng.t -> lambda:float -> int
(** Poisson draw: Knuth's product method for small rates, Gaussian
    approximation (rounded, clamped at 0) for [lambda > 30]. *)
