(** Pseudo-random number generation.

    A small, fast, splittable PRNG (xoshiro256 star-star) used by every randomized
    component of the library.  All estimators take an explicit [Rng.t] so
    experiments are reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed] by
    expanding it with splitmix64. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Streams drawn from the parent and the child are statistically
    independent for practical purposes. *)

val copy : t -> t
(** Duplicate the current state (both copies then produce the same stream). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound-1]; [bound] must be positive.
    Unbiased (rejection sampling). *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on the inclusive range [lo, hi]; requires [lo <= hi]. *)

val float : t -> float
(** Uniform on [0, 1) with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0, 1]). *)

val gaussian : t -> float
(** Standard normal deviate (polar Box–Muller). *)

val exponential : t -> float
(** Standard exponential deviate (rate 1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
