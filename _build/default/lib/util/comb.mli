(** Combinatorial utilities: binomial coefficients, log-gamma, and uniform
    k-subset sampling.  Used by the coverage family (whose cardinalities are
    binomial coefficients) and by the exact ground-truth enumerators. *)

val ln_gamma : float -> float
(** Natural log of the Gamma function for positive arguments (Lanczos
    approximation, |relative error| < 1e-13). *)

val log_factorial : int -> float
(** [log_factorial n] = ln(n!) for [n >= 0]. *)

val log_choose : int -> int -> float
(** [log_choose n k] = ln C(n,k); [neg_infinity] when [k < 0 || k > n]. *)

val choose : int -> int -> Bigint.t
(** Exact binomial coefficient C(n,k) (zero outside [0..n]). *)

val choose_int : int -> int -> int option
(** Exact C(n,k) if it fits a native int. *)

val floyd_sample : Rng.t -> n:int -> k:int -> int array
(** Uniform random [k]-subset of [{0,...,n-1}] by Floyd's algorithm,
    returned sorted ascending.  Requires [0 <= k <= n].  O(k) expected. *)

val iter_subsets : n:int -> k:int -> (int array -> unit) -> unit
(** Enumerate every [k]-subset of [{0,...,n-1}] in lexicographic order.
    The callback receives a buffer that is reused between calls; copy it if
    you need to retain it. *)

val rank_subset : n:int -> int array -> Bigint.t
(** Combinatorial rank (lexicographic index) of a sorted [k]-subset among all
    k-subsets of [{0,...,n-1}]. *)

val unrank_subset : n:int -> k:int -> Bigint.t -> int array
(** Inverse of {!rank_subset}: the sorted subset at a given lexicographic
    index.  Requires the index to be < C(n,k). *)
