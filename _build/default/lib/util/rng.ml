(* xoshiro256** 1.0 (Blackman & Vigna, public domain reference
   implementation), seeded via splitmix64.  Chosen over Stdlib.Random for
   reproducibility across OCaml versions and for cheap splitting. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (int64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = bits t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  let span = hi - lo + 1 in
  if span <= 0 then
    (* range spans more than max_int, e.g. [min_int, max_int]: use raw bits *)
    Int64.to_int (int64 t)
  else lo + int t span

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v *. 0x1.0p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let gaussian t =
  (* Polar method; draws pairs, discards the spare for statelessness. *)
  let rec loop () =
    let u = (2.0 *. float t) -. 1.0 in
    let v = (2.0 *. float t) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then loop () else u *. sqrt (-2.0 *. log s /. s)
  in
  loop ()

let exponential t =
  let rec positive () =
    let u = float t in
    if u > 0.0 then u else positive ()
  in
  -.log (positive ())

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
