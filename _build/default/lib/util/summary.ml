(* Welford's online mean/variance plus retained observations for quantiles.
   Experiment trial counts are in the hundreds, so retaining values is free. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minimum : float;
  mutable maximum : float;
  mutable total : float;
  mutable buf : float array;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; minimum = infinity; maximum = neg_infinity;
    total = 0.0; buf = Array.make 16 0.0 }

let add t x =
  if t.n = Array.length t.buf then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.buf 0 bigger 0 t.n;
    t.buf <- bigger
  end;
  t.buf.(t.n) <- x;
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minimum then t.minimum <- x;
  if x > t.maximum then t.maximum <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.minimum
let max t = t.maximum
let total t = t.total

let values t = Array.sub t.buf 0 t.n

let quantile t q =
  if t.n = 0 then invalid_arg "Summary.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q outside [0,1]";
  let sorted = values t in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (t.n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  let frac = pos -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median t = quantile t 0.5

let of_array a =
  let t = create () in
  Array.iter (add t) a;
  t

let relative_error ~estimate ~truth =
  if truth = 0.0 then invalid_arg "Summary.relative_error: zero truth";
  Float.abs (estimate -. truth) /. Float.abs truth
