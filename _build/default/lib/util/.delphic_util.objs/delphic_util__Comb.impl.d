lib/util/comb.ml: Array Bigint Float Hashtbl Rng Stdlib
