lib/util/binomial.ml: Bigint Float Rng
