lib/util/special.ml: Comb Float
