lib/util/bitvec.ml: Array Format Hashtbl Int Rng Stdlib String
