lib/util/gf2.ml: Array Bigint Bitvec List Option
