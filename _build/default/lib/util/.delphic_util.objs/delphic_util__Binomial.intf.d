lib/util/binomial.mli: Bigint Rng
