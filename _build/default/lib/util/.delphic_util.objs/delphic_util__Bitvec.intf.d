lib/util/bitvec.mli: Format Rng
