lib/util/bigint.mli: Format Rng
