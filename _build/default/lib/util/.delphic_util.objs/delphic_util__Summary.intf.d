lib/util/summary.mli:
