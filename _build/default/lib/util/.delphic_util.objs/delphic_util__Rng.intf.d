lib/util/rng.mli:
