lib/util/dist.mli: Rng
