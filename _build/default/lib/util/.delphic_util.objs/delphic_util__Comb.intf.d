lib/util/comb.mli: Bigint Rng
