lib/util/gf2.mli: Bigint Bitvec
