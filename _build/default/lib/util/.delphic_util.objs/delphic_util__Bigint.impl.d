lib/util/bigint.ml: Array Buffer Char Format Hashtbl List Printf Rng Stdlib String
