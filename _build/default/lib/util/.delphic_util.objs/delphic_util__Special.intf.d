lib/util/special.mli:
