type row = { coeffs : Bitvec.t; rhs : bool }

type solution = {
  nvars : int;
  rank : int;
  pivot_columns : int array;
  particular : Bitvec.t;
  null_basis : Bitvec.t array;
}

let satisfies { coeffs; rhs } x = Bitvec.dot coeffs x = rhs

(* In-place forward elimination to reduced row-echelon form.  Rows carry
   their rhs alongside; a zero row with rhs = 1 flags inconsistency. *)
let solve ~nvars rows =
  if nvars <= 0 then invalid_arg "Gf2.solve: nvars must be positive";
  List.iter
    (fun r ->
      if Bitvec.width r.coeffs <> nvars then invalid_arg "Gf2.solve: row width mismatch")
    rows;
  let work = Array.of_list (List.map (fun r -> (Bitvec.copy r.coeffs, ref r.rhs)) rows) in
  let nrows = Array.length work in
  let pivot_of_col = Array.make nvars (-1) in
  let pivot_cols = ref [] in
  let next_row = ref 0 in
  for col = 0 to nvars - 1 do
    (* Find a row at or below [next_row] with a 1 in this column. *)
    let found = ref (-1) in
    let i = ref !next_row in
    while !found < 0 && !i < nrows do
      let v, _ = work.(!i) in
      if Bitvec.get v col then found := !i;
      incr i
    done;
    if !found >= 0 then begin
      let tmp = work.(!next_row) in
      work.(!next_row) <- work.(!found);
      work.(!found) <- tmp;
      let pivot_vec, pivot_rhs = work.(!next_row) in
      (* Eliminate this column from every other row (RREF). *)
      for j = 0 to nrows - 1 do
        if j <> !next_row then begin
          let v, rhs = work.(j) in
          if Bitvec.get v col then begin
            Bitvec.xor_inplace v pivot_vec;
            rhs := !rhs <> !pivot_rhs
          end
        end
      done;
      pivot_of_col.(col) <- !next_row;
      pivot_cols := col :: !pivot_cols;
      incr next_row
    end
  done;
  let rank = !next_row in
  (* Inconsistency: a fully-eliminated row with rhs = 1. *)
  let inconsistent = ref false in
  for i = rank to nrows - 1 do
    let v, rhs = work.(i) in
    if Bitvec.is_zero v && !rhs then inconsistent := true
  done;
  if !inconsistent then None
  else begin
    let pivot_columns = Array.of_list (List.rev !pivot_cols) in
    (* Particular solution: free variables 0, pivot variable of each pivot
       row = that row's rhs (free-variable terms vanish). *)
    let particular = Bitvec.create ~width:nvars in
    Array.iter
      (fun col ->
        let _, rhs = work.(pivot_of_col.(col)) in
        Bitvec.set particular col !rhs)
      pivot_columns;
    (* Null-space basis: one vector per free column f — set x_f = 1 and, for
       each pivot row containing f, set the pivot variable to cancel it. *)
    let is_pivot = Array.make nvars false in
    Array.iter (fun c -> is_pivot.(c) <- true) pivot_columns;
    let basis = ref [] in
    for f = nvars - 1 downto 0 do
      if not is_pivot.(f) then begin
        let v = Bitvec.create ~width:nvars in
        Bitvec.set v f true;
        Array.iter
          (fun col ->
            let row_vec, _ = work.(pivot_of_col.(col)) in
            if Bitvec.get row_vec f then Bitvec.set v col true)
          pivot_columns;
        basis := v :: !basis
      end
    done;
    Some { nvars; rank; pivot_columns; particular; null_basis = Array.of_list !basis }
  end

let consistent ~nvars rows = Option.is_some (solve ~nvars rows)

let solution_count s = Bigint.pow2 (s.nvars - s.rank)

let enumerate s ~limit =
  let dim = Array.length s.null_basis in
  (* Any basis of dimension > 40 is far beyond every practical limit. *)
  if dim > 40 || 1 lsl dim > limit then None
  else begin
    let total = 1 lsl dim in
    begin
      (* Gray-code walk: consecutive indices differ in one basis vector. *)
      let current = Bitvec.copy s.particular in
      let out = ref [ Bitvec.copy current ] in
      for g = 1 to total - 1 do
        let rec trailing_zero i v = if v land 1 = 1 then i else trailing_zero (i + 1) (v lsr 1) in
        let flip = trailing_zero 0 g in
        Bitvec.xor_inplace current s.null_basis.(flip);
        out := Bitvec.copy current :: !out
      done;
      Some !out
    end
  end
