module Discrete = struct
  type t = { prob : float array; alias : int array }

  let size t = Array.length t.prob

  (* Vose's stable alias-table construction. *)
  let create weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Discrete.create: empty weights";
    Array.iter
      (fun w -> if w < 0.0 || not (Float.is_finite w) then invalid_arg "Discrete.create: bad weight")
      weights;
    let total = Array.fold_left ( +. ) 0.0 weights in
    if not (total > 0.0) then invalid_arg "Discrete.create: weights sum to zero";
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
    let prob = Array.make n 0.0 in
    let alias = Array.make n 0 in
    let small = Stack.create () and large = Stack.create () in
    Array.iteri (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large) scaled;
    while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
      let s = Stack.pop small and l = Stack.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
    done;
    let flush stack =
      while not (Stack.is_empty stack) do
        let i = Stack.pop stack in
        prob.(i) <- 1.0;
        alias.(i) <- i
      done
    in
    flush large;
    flush small;
    { prob; alias }

  let sample t rng =
    let i = Rng.int rng (Array.length t.prob) in
    if Rng.float rng < t.prob.(i) then i else t.alias.(i)
end

module Zipf = struct
  type t = Discrete.t

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    Discrete.create (Array.init n (fun i -> (float_of_int (i + 1)) ** -.s))

  let sample = Discrete.sample
end

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p outside (0,1]";
  if p = 1.0 then 0
  else begin
    let rec positive () =
      let u = Rng.float rng in
      if u > 0.0 then u else positive ()
    in
    int_of_float (log (positive ()) /. log (1.0 -. p))
  end

let poisson rng ~lambda =
  if lambda < 0.0 then invalid_arg "Dist.poisson: negative rate";
  if lambda = 0.0 then 0
  else if lambda <= 30.0 then begin
    let threshold = exp (-.lambda) in
    let rec go k prod =
      let prod = prod *. Rng.float rng in
      if prod <= threshold then k else go (k + 1) prod
    in
    go 0 1.0
  end
  else begin
    let x = Float.round (lambda +. (sqrt lambda *. Rng.gaussian rng)) in
    int_of_float (Float.max 0.0 x)
  end
