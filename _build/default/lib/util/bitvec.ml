(* Bits packed little-endian into 62-bit chunks of native ints.  Unused high
   bits of the last word are kept zero so structural equality and hashing
   work directly on the representation. *)

let word_bits = 62

type t = { width : int; words : int array }

let nwords width = if width = 0 then 0 else ((width - 1) / word_bits) + 1

let create ~width =
  if width < 0 then invalid_arg "Bitvec.create: negative width";
  { width; words = Array.make (nwords width) 0 }

let width t = t.width
let copy t = { t with words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.width then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check_index t i;
  (t.words.(i / word_bits) lsr (i mod word_bits)) land 1 = 1

let set t i b =
  check_index t i;
  let w = i / word_bits and off = i mod word_bits in
  if b then t.words.(w) <- t.words.(w) lor (1 lsl off)
  else t.words.(w) <- t.words.(w) land lnot (1 lsl off)

let random rng ~width =
  let t = create ~width in
  let n = Array.length t.words in
  for w = 0 to n - 1 do
    t.words.(w) <- Rng.bits rng
  done;
  (* Clear the bits beyond [width] in the last word. *)
  if width > 0 then begin
    let used = width - ((n - 1) * word_bits) in
    if used < word_bits then t.words.(n - 1) <- t.words.(n - 1) land ((1 lsl used) - 1)
  end;
  t

let equal a b = a.width = b.width && a.words = b.words
let compare a b = Stdlib.compare (a.width, a.words) (b.width, b.words)
let hash t = Hashtbl.hash (t.width, t.words)

let popcount t =
  let count_word w =
    let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
    go 0 w
  in
  Array.fold_left (fun acc w -> acc + count_word w) 0 t.words

let check_same_width a b =
  if a.width <> b.width then invalid_arg "Bitvec: width mismatch"

let map2 op a b =
  check_same_width a b;
  { width = a.width; words = Array.map2 op a.words b.words }

let logxor a b = map2 ( lxor ) a b
let logand a b = map2 ( land ) a b

let xor_inplace dst src =
  check_same_width dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lxor w) src.words

let parity t =
  let word_parity w =
    let rec go acc w = if w = 0 then acc else go (acc lxor (w land 1)) (w lsr 1) in
    go 0 w
  in
  Array.fold_left (fun acc w -> acc lxor word_parity w) 0 t.words = 1

let dot a b = parity (logand a b)
let hamming_distance a b = popcount (logxor a b)
let is_zero t = Array.for_all (Int.equal 0) t.words

let extract t idx =
  let out = create ~width:(Array.length idx) in
  Array.iteri (fun i j -> if get t j then set out i true) idx;
  out

let of_string s =
  let t = create ~width:(String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set t i true
      | _ -> invalid_arg "Bitvec.of_string: expected only '0'/'1'")
    s;
  t

let to_string t = String.init t.width (fun i -> if get t i then '1' else '0')
let pp fmt t = Format.pp_print_string fmt (to_string t)
