(** Linear algebra over GF(2): Gaussian elimination of systems [A·x = b].

    Substrate for the affine-subspace Delphic family (solution sets of XOR
    constraint systems, the structure underlying hashing-based counting).
    Rows are bit vectors; arithmetic is word-parallel. *)

type row = { coeffs : Bitvec.t; rhs : bool }
(** One equation: [coeffs · x = rhs] over GF(2). *)

type solution = {
  nvars : int;
  rank : int;
  pivot_columns : int array;  (** sorted; length = rank *)
  particular : Bitvec.t;  (** one solution (free variables set to 0) *)
  null_basis : Bitvec.t array;
      (** basis of the solution space of [A·x = 0]; length = nvars − rank.
          The full solution set is [particular ⊕ span(null_basis)], of size
          [2^(nvars − rank)]. *)
}

val solve : nvars:int -> row list -> solution option
(** Reduced row-echelon elimination.  [None] when the system is
    inconsistent (some row reduces to [0 = 1]).  All rows must have width
    [nvars].  O(rows² · nvars / word_size). *)

val consistent : nvars:int -> row list -> bool

val satisfies : row -> Bitvec.t -> bool
(** Does an assignment satisfy one equation? *)

val solution_count : solution -> Bigint.t
(** [2^(nvars - rank)]. *)

val enumerate : solution -> limit:int -> Bitvec.t list option
(** All solutions ([particular ⊕ every subset-sum of the basis]), via a
    Gray-code walk; [None] when there are more than [limit]. *)
