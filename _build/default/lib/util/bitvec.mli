(** Fixed-width bit vectors.

    Elements of several Delphic families are binary strings: assignments of a
    DNF formula, test vectors and coverage patterns.  Widths routinely exceed
    63 bits, so vectors are backed by word arrays. *)

type t

val create : width:int -> t
(** All-zero vector of the given width (bits indexed [0 .. width-1]). *)

val width : t -> int
val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val random : Rng.t -> width:int -> t
(** Uniformly random vector. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val popcount : t -> int

val logxor : t -> t -> t
(** Bitwise xor; widths must match. *)

val logand : t -> t -> t
(** Bitwise and; widths must match. *)

val xor_inplace : t -> t -> unit
(** [xor_inplace dst src]: [dst <- dst xor src]; widths must match. *)

val parity : t -> bool
(** Parity of the popcount (true = odd). *)

val dot : t -> t -> bool
(** GF(2) inner product: parity of [logand a b]. *)

val hamming_distance : t -> t -> int
(** Number of differing bit positions; widths must match. *)

val is_zero : t -> bool

val extract : t -> int array -> t
(** [extract v idx] is the |idx|-wide vector whose bit [i] is [get v idx.(i)]
    — the restriction operator used by coverage sets. *)

val of_string : string -> t
(** Parse a string of ['0']/['1'] characters, index 0 first. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
