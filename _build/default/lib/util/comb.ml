(* Lanczos approximation with g = 7 and 9 coefficients (Godfrey's values),
   giving ~1e-13 relative accuracy over the positive reals. *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let ln_gamma_positive x =
  let x = x -. 1.0 in
  let a = ref lanczos_coefficients.(0) in
  let t = x +. 7.5 in
  for i = 1 to 8 do
    a := !a +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
  done;
  (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

let ln_gamma x =
  if x <= 0.0 then invalid_arg "Comb.ln_gamma: non-positive argument";
  if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. ln_gamma_positive (1.0 -. x)
  else ln_gamma_positive x

let log_factorial n =
  if n < 0 then invalid_arg "Comb.log_factorial: negative";
  if n < 2 then 0.0 else ln_gamma (float_of_int n +. 1.0)

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let choose n k =
  if k < 0 || k > n then Bigint.zero
  else begin
    let k = Stdlib.min k (n - k) in
    let acc = ref Bigint.one in
    for i = 1 to k do
      (* C(n,i) = C(n,i-1) * (n-i+1) / i, always an exact division. *)
      let q, r = Bigint.divmod_int (Bigint.mul_int !acc (n - i + 1)) i in
      assert (r = 0);
      acc := q
    done;
    !acc
  end

let choose_int n k = Bigint.to_int (choose n k)

let floyd_sample rng ~n ~k =
  if k < 0 || k > n then invalid_arg "Comb.floyd_sample: need 0 <= k <= n";
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let t = Rng.int rng (j + 1) in
    if Hashtbl.mem chosen t then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen t ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun x () ->
      out.(!i) <- x;
      incr i)
    chosen;
  Array.sort Stdlib.compare out;
  out

let iter_subsets ~n ~k f =
  if k < 0 then invalid_arg "Comb.iter_subsets: negative k";
  if k <= n then begin
    let buf = Array.init k (fun i -> i) in
    let rec next () =
      f buf;
      (* Find the rightmost element that can still be incremented. *)
      let rec bump i =
        if i < 0 then false
        else if buf.(i) < n - k + i then begin
          buf.(i) <- buf.(i) + 1;
          for j = i + 1 to k - 1 do
            buf.(j) <- buf.(j - 1) + 1
          done;
          true
        end
        else bump (i - 1)
      in
      if bump (k - 1) then next ()
    in
    next ()
  end

let rank_subset ~n subset =
  let k = Array.length subset in
  (* Lexicographic rank: for each position, count the subsets that start with
     a smaller element. *)
  let rank = ref Bigint.zero in
  let prev = ref (-1) in
  Array.iteri
    (fun i ci ->
      for v = !prev + 1 to ci - 1 do
        rank := Bigint.add !rank (choose (n - v - 1) (k - i - 1))
      done;
      prev := ci)
    subset;
  !rank

let unrank_subset ~n ~k index =
  let out = Array.make k 0 in
  let idx = ref index in
  let v = ref 0 in
  for i = 0 to k - 1 do
    let rec advance () =
      let block = choose (n - !v - 1) (k - i - 1) in
      if Bigint.compare !idx block >= 0 then begin
        idx := Bigint.sub !idx block;
        incr v;
        advance ()
      end
    in
    advance ();
    out.(i) <- !v;
    incr v
  done;
  out
