(* Unsigned bignums as little-endian arrays of base-2^30 limbs.
   Invariant: no trailing (most-significant) zero limb; zero is [||].
   Base 2^30 keeps every intermediate product within a 63-bit native int. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let is_zero v = Array.length v = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bigint.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc v = if v = 0 then acc else count (acc + 1) (v lsr limb_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let v = ref n in
    for i = 0 to len - 1 do
      a.(i) <- !v land mask;
      v := !v lsr limb_bits
    done;
    a
  end

let one = of_int 1
let two = of_int 2

let bit_length v =
  let len = Array.length v in
  if len = 0 then 0
  else begin
    let top = v.(len - 1) in
    let rec msb acc x = if x = 0 then acc else msb (acc + 1) (x lsr 1) in
    ((len - 1) * limb_bits) + msb 0 top
  end

let fits_int v = bit_length v <= 62

let to_int v =
  if not (fits_int v) then None
  else begin
    let acc = ref 0 in
    for i = Array.length v - 1 downto 0 do
      acc := (!acc lsl limb_bits) lor v.(i)
    done;
    Some !acc
  end

let to_int_exn v =
  match to_int v with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value exceeds native int range"

let to_float v =
  (* Sum from the most significant limb down; float absorbs the rounding. *)
  let acc = ref 0.0 in
  for i = Array.length v - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int v.(i)
  done;
  !acc

let equal (a : t) (b : t) = a = b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let hash (v : t) = Hashtbl.hash v

let add a b =
  let la = Array.length a and lb = Array.length b in
  let len = Stdlib.max la lb in
  let res = Array.make (len + 1) 0 in
  let carry = ref 0 in
  for i = 0 to len - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    res.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  res.(len) <- !carry;
  normalize res

let succ v = add v one

let sub a b =
  if compare a b < 0 then invalid_arg "Bigint.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let res = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      res.(i) <- d + base;
      borrow := 1
    end else begin
      res.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize res

let pred v =
  if is_zero v then invalid_arg "Bigint.pred: zero";
  sub v one

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let res = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = res.(i + j) + (ai * b.(j)) + !carry in
        res.(i + j) <- cur land mask;
        carry := cur lsr limb_bits
      done;
      (* Propagate the final carry, which can span several limbs. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = res.(!k) + !carry in
        res.(!k) <- cur land mask;
        carry := cur lsr limb_bits;
        incr k
      done
    done;
    normalize res
  end

let mul_int a n =
  if n < 0 then invalid_arg "Bigint.mul_int: negative";
  mul a (of_int n)

let divmod_int a d =
  if d <= 0 || d >= 1 lsl 31 then invalid_arg "Bigint.divmod_int: need 0 < d < 2^31";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

let shift_left v k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative";
  if is_zero v || k = 0 then v
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length v in
    let res = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let shifted = v.(i) lsl bit_shift in
      res.(i + limb_shift) <- res.(i + limb_shift) lor (shifted land mask);
      res.(i + limb_shift + 1) <- shifted lsr limb_bits
    done;
    normalize res
  end

let shift_right v k =
  if k < 0 then invalid_arg "Bigint.shift_right: negative";
  if k = 0 then v
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length v in
    if limb_shift >= la then zero
    else begin
      let len = la - limb_shift in
      let res = Array.make len 0 in
      for i = 0 to len - 1 do
        let lo = v.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (v.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land mask
        in
        res.(i) <- lo lor hi
      done;
      normalize res
    end
  end

let pow2 k = shift_left one k

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let log2 v =
  let bits = bit_length v in
  if bits = 0 then neg_infinity
  else if bits <= 62 then log (float_of_int (to_int_exn v)) /. log 2.0
  else begin
    (* Use the top 62 bits as an exact mantissa and add the exponent. *)
    let top = shift_right v (bits - 62) in
    (log (to_float top) /. log 2.0) +. float_of_int (bits - 62)
  end

let random_bits rng k =
  if k = 0 then zero
  else begin
    let nlimbs = ((k - 1) / limb_bits) + 1 in
    let res = Array.make nlimbs 0 in
    for i = 0 to nlimbs - 1 do
      res.(i) <- Rng.bits rng land mask
    done;
    let top_bits = k - ((nlimbs - 1) * limb_bits) in
    res.(nlimbs - 1) <- res.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    normalize res
  end

let random_below rng n =
  if is_zero n then invalid_arg "Bigint.random_below: zero bound";
  match to_int n with
  | Some bound -> of_int (Rng.int rng bound)
  | None ->
    let k = bit_length n in
    let rec draw () =
      let v = random_bits rng k in
      if compare v n < 0 then v else draw ()
    in
    draw ()

let of_string s =
  if String.length s = 0 then invalid_arg "Bigint.of_string: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Bigint.of_string: non-digit";
      acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0')))
    s;
  !acc

let to_string v =
  if is_zero v then "0"
  else begin
    (* Peel 9 decimal digits at a time. *)
    let chunks = ref [] in
    let cur = ref v in
    while not (is_zero !cur) do
      let q, r = divmod_int !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> assert false
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let pp fmt v = Format.pp_print_string fmt (to_string v)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
