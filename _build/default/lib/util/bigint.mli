(** Arbitrary-precision natural numbers.

    Cardinalities of Delphic sets routinely overflow native integers — a
    [d]-dimensional box over [Δ^d] has up to [|Δ|^d] points and a DNF term
    over [n] variables has [2^(n-k)] solutions.  This module provides the
    small unsigned-bignum substrate the library needs (the sealed build
    environment has no zarith).  Values are immutable. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] for [n >= 0]. Raises [Invalid_argument] on negatives. *)

val to_int : t -> int option
(** [to_int v] is [Some n] iff [v] fits a native [int]. *)

val to_int_exn : t -> int
(** Like {!to_int} but raises [Failure] on overflow. *)

val to_float : t -> float
(** Nearest-float conversion (exact below [2^53], rounded above). *)

val is_zero : t -> bool
val fits_int : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val add : t -> t -> t
val succ : t -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val pred : t -> t
(** Raises [Invalid_argument] on zero. *)

val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod_int : t -> int -> t * int
(** [divmod_int a d] for [d > 0] is the quotient and remainder of [a / d]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val pow2 : int -> t
(** [pow2 k] is [2^k] for [k >= 0]. *)

val pow : t -> int -> t
(** [pow b e] is [b^e] for [e >= 0]. *)

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val log2 : t -> float
(** Real log base 2; [neg_infinity] on zero.  Accurate to double precision
    even for values far beyond float range. *)

val random_below : Rng.t -> t -> t
(** [random_below rng n] is uniform on [0, n-1]; requires [n > 0]. *)

val of_string : string -> t
(** Parse a decimal string of digits. *)

val to_string : t -> string
(** Decimal rendering. *)

val pp : Format.formatter -> t -> unit

val min : t -> t -> t
val max : t -> t -> t
