(* Regularized incomplete gamma, after Numerical Recipes' gser/gcf split:
   the power series converges fast for x < a+1, the Lentz continued
   fraction elsewhere. *)

let max_iterations = 500
let tiny = 1e-300
let eps = 1e-15

let lower_series ~a ~x =
  (* P(a,x) = e^{-x} x^a / Γ(a) · Σ_{n>=0} x^n / (a(a+1)...(a+n)) *)
  let log_prefix = (a *. log x) -. x -. Comb.ln_gamma a in
  let sum = ref (1.0 /. a) in
  let term = ref (1.0 /. a) in
  let ap = ref a in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < max_iterations do
    incr n;
    ap := !ap +. 1.0;
    term := !term *. x /. !ap;
    sum := !sum +. !term;
    if Float.abs !term < Float.abs !sum *. eps then continue_ := false
  done;
  !sum *. exp log_prefix

let upper_continued_fraction ~a ~x =
  (* Q(a,x) = e^{-x} x^a / Γ(a) · 1/(x+1-a- 1·(1-a)/(x+3-a- ...)) *)
  let log_prefix = (a *. log x) -. x -. Comb.ln_gamma a in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && !n < max_iterations do
    incr n;
    let fn = float_of_int !n in
    let an = -.fn *. (fn -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.0) < eps then continue_ := false
  done;
  exp log_prefix *. !h

let gamma_p ~a ~x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: need a > 0";
  if x < 0.0 then invalid_arg "Special.gamma_p: need x >= 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then lower_series ~a ~x
  else 1.0 -. upper_continued_fraction ~a ~x

let gamma_q ~a ~x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: need a > 0";
  if x < 0.0 then invalid_arg "Special.gamma_q: need x >= 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. lower_series ~a ~x
  else upper_continued_fraction ~a ~x

let chi_square_cdf ~dof x =
  if dof <= 0 then invalid_arg "Special.chi_square_cdf: need dof > 0";
  if x <= 0.0 then 0.0 else gamma_p ~a:(float_of_int dof /. 2.0) ~x:(x /. 2.0)

let chi_square_survival ~dof x =
  if dof <= 0 then invalid_arg "Special.chi_square_survival: need dof > 0";
  if x <= 0.0 then 1.0 else gamma_q ~a:(float_of_int dof /. 2.0) ~x:(x /. 2.0)

let erf x =
  let p = gamma_p ~a:0.5 ~x:(x *. x) in
  if x >= 0.0 then p else -.p

let normal_cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))
