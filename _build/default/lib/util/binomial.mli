(** Sampling from binomial distributions.

    VATIC's independent-subset sampling (Claim 2.5) draws [Bin(|S|, p)]
    where [|S|] can be astronomically large (e.g. the point count of a box in
    [Δ^d]).  This module provides:

    - exact sampling for native-int [n] — inversion (BINV) when the mean is
      small, the BTPE rejection algorithm of Kachitvichyanukul–Schmeiser
      (1988) otherwise;
    - a Gaussian approximation with continuity correction once [n] exceeds
      [2^53] (total-variation error O(n^-1/2) < 1e-8 at that scale, far below
      any ε the estimators run with);
    - cascade halving [Bin(N, 1/2)] (Theorem F.1 of the paper) used by the
      level-adjustment loop. *)

val sample : Rng.t -> n:int -> p:float -> int
(** Exact draw from Bin(n, p). Requires [n >= 0] and [0 <= p <= 1]. *)

val sample_float : Rng.t -> n:float -> p:float -> float
(** Draw from Bin(n, p) where [n] is a non-negative integral float.  Exact
    whenever [n <= 2^53]; Gaussian approximation beyond. *)

val sample_bigint : Rng.t -> n:Bigint.t -> p:float -> float
(** Draw from Bin(|S|, p) for an arbitrary-precision cardinality.  The result
    is returned as an integral float (it may legitimately exceed native int
    range right before the halving loop shrinks it). *)

val halve : Rng.t -> float -> float
(** [halve rng n] draws Bin(n, 1/2) for an integral float [n]. *)
