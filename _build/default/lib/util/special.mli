(** Special functions for statistical validation.

    The experiment harness reports chi-square goodness-of-fit p-values
    (uniformity of union sampling, binomial sampler validation); these are
    tail probabilities of Gamma distributions, computed here from scratch
    via the regularized incomplete gamma function. *)

val gamma_p : a:float -> x:float -> float
(** Regularized lower incomplete gamma [P(a, x) = γ(a,x)/Γ(a)] for
    [a > 0, x >= 0].  Series expansion for [x < a+1], continued fraction
    otherwise; absolute error below 1e-12. *)

val gamma_q : a:float -> x:float -> float
(** Upper tail [Q(a, x) = 1 - P(a, x)]. *)

val chi_square_cdf : dof:int -> float -> float
(** CDF of the chi-square distribution with [dof] degrees of freedom. *)

val chi_square_survival : dof:int -> float -> float
(** p-value: [P(X >= x)] for chi-square with [dof] degrees of freedom. *)

val erf : float -> float
(** Error function, via [P(1/2, x²)]. *)

val normal_cdf : float -> float
(** Standard normal CDF. *)
