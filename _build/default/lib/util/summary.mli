(** Summary statistics for experiment trials. *)

type t
(** Accumulator over a sequence of float observations. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance (0 when fewer than two observations). *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]; linear interpolation between order
    statistics.  Raises [Invalid_argument] on an empty accumulator.  O(n log n)
    per call (observations are retained). *)

val median : t -> float

val values : t -> float array
(** All observations in insertion order. *)

val of_array : float array -> t

val relative_error : estimate:float -> truth:float -> float
(** [|estimate - truth| / truth]; [truth] must be non-zero. *)
