(** APS-Estimator — the prior state of the art (Meel–Vinodchandran–
    Chakraborty, PODS'21, [33] in the paper), reimplemented as the baseline
    VATIC is measured against.

    It keeps a {e single global} sampling probability [p] and a bucket
    capped at [Thresh = O((ln(1/δ) + ln M)/ε²)]: whenever an insertion would
    overflow, every stored element is discarded with probability 1/2 and
    [p] halves.  Correctness requires every element — not just last
    occurrences — to survive at rate [>= 1/k], which forces the capacity to
    grow with the stream length [M] (known in advance).  The [log M] factor
    in its space is exactly what VATIC removes. *)

module Make (F : Delphic_family.Family.FAMILY) : sig
  type t

  val create :
    ?capacity_scale:float ->
    epsilon:float ->
    delta:float ->
    log2_universe:float ->
    stream_length:int ->
    seed:int ->
    unit ->
    t
  (** [stream_length] is the (required, a-priori) bound [M] on the number of
      sets.  [capacity_scale] tunes the constant in [Thresh] (default 6.0,
      matching VATIC's practical mode). *)

  val process : t -> F.t -> unit
  val estimate : t -> float

  val bucket_size : t -> int
  val max_bucket_size : t -> int
  val capacity : t -> int
  (** The [Thresh] bound — grows with [ln M]. *)

  val current_level : t -> int
  (** Number of global halvings so far ([p = 2^-level]). *)

  val items_processed : t -> int

  type oracle_calls = {
    membership : int;
    cardinality : int;
    sampling : int;
  }

  val oracle_calls : t -> oracle_calls
end
