(** Hashing-based streaming F0 in the style of Gibbons–Tirthapura /
    Pavan–Vinodchandran–Bhattacharyya–Meel (PODS'21, reference [32] of the
    paper) — the alternative route to streaming union estimation that the
    paper's sampling strategy competes with.

    A random XOR hash splits the cube {0,1}^n into affine cells.  The sketch
    stores {e exactly} the union's elements inside the current cell
    [{x : row_1·x = 0, ..., row_j·x = 0}]; whenever the store would
    overflow, one more random parity row is added (halving the cell) and the
    store is re-filtered.  The estimate is [|store| · 2^j].

    Processing a set requires counting and enumerating its members within
    an affine cell — easy for XOR-structured families (DNF terms, affine
    subspaces) via GF(2) elimination, but unavailable for general Delphic
    sets: exactly the gap VATIC's oracle-only approach closes.  Duplicates
    across the stream cost nothing (the store is a set), so space is
    M-independent here too; the restriction is the family, not the stream. *)

module Make (X : Delphic_family.Family.XOR_FAMILY) : sig
  type t

  val create :
    ?capacity:int -> epsilon:float -> delta:float -> nvars:int -> seed:int -> unit -> t
  (** [capacity] overrides the derived bucket bound
      [⌈24/ε² · ln(2 · 2^nvars / δ)⌉ ≈ 24·ln 2·(nvars+…)/ε²]. *)

  val process : t -> X.t -> unit
  (** Raises [Invalid_argument] if the set's variable count differs from
      [nvars]. *)

  val estimate : t -> float

  val level : t -> int
  (** Number of hash rows currently constraining the cell. *)

  val store_size : t -> int
  val max_store_size : t -> int
  val capacity : t -> int
  val items_processed : t -> int
end
