(** The classical Karp–Luby(–Madras) Monte-Carlo union estimator — the
    pre-streaming baseline the paper positions itself against (Section 3).

    It must {e store every set} of the stream (Θ(M) representations) and at
    estimation time repeats: pick a set with probability proportional to its
    cardinality, draw a uniform element [x] of it, and score a success when
    the chosen set is the canonical (first) set containing [x].  With
    [T = ⌈4·M·ln(2/δ)/ε²⌉] trials, [W · successes/T] is an
    [(ε, δ)]-approximation of the union size, where [W = Σ|S_i|].

    It is simple and accurate, but both memory and trial count grow linearly
    with the stream — the exact regime streaming algorithms escape. *)

module Make (F : Delphic_family.Family.FAMILY) : sig
  type t

  val create : epsilon:float -> delta:float -> seed:int -> unit -> t
  val add : t -> F.t -> unit
  val stored_sets : t -> int

  val trials_needed : t -> int
  (** The trial budget [⌈4·M·ln(2/δ)/ε²⌉] at the current stream length. *)

  val estimate : ?trials:int -> t -> float
  (** Run the Monte-Carlo loop ([trials] defaults to {!trials_needed}) and
      return the estimate.  0 when no sets were added. *)

  type oracle_calls = {
    membership : int;
    cardinality : int;
    sampling : int;
  }

  val oracle_calls : t -> oracle_calls
end
