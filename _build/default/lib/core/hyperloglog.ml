type t = { bits : int; registers : Bytes.t }

let create ?(bits = 12) () =
  if bits < 4 || bits > 18 then invalid_arg "Hyperloglog.create: need 4 <= bits <= 18";
  { bits; registers = Bytes.make (1 lsl bits) '\000' }

let hash64 x =
  let open Int64 in
  let z = add (of_int x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let leading_zeros_plus_one v width =
  (* Rank of the first 1-bit within the top [width] bits of v (1-based);
     width+1 when all zero. *)
  let rec go i =
    if i >= width then width + 1
    else if Int64.logand (Int64.shift_right_logical v (63 - i)) 1L = 1L then i + 1
    else go (i + 1)
  in
  go 0

let add t x =
  let h = hash64 x in
  let idx = Int64.to_int (Int64.shift_right_logical h (64 - t.bits)) in
  let rest = Int64.shift_left h t.bits in
  let rank = leading_zeros_plus_one rest (64 - t.bits) in
  if rank > Char.code (Bytes.get t.registers idx) then
    Bytes.set t.registers idx (Char.chr (min rank 255))

let registers t = 1 lsl t.bits

let alpha m =
  if m >= 128 then 0.7213 /. (1.0 +. (1.079 /. float_of_int m))
  else if m = 64 then 0.709
  else if m = 32 then 0.697
  else 0.673

let estimate t =
  let m = registers t in
  let sum = ref 0.0 in
  let zeros = ref 0 in
  for i = 0 to m - 1 do
    let r = Char.code (Bytes.get t.registers i) in
    if r = 0 then incr zeros;
    sum := !sum +. Float.ldexp 1.0 (-r)
  done;
  let raw = alpha m *. float_of_int m *. float_of_int m /. !sum in
  if raw <= 2.5 *. float_of_int m && !zeros > 0 then
    (* Linear counting in the sparse regime. *)
    float_of_int m *. log (float_of_int m /. float_of_int !zeros)
  else raw

let merge a b =
  if a.bits <> b.bits then invalid_arg "Hyperloglog.merge: incompatible sizes";
  let out = create ~bits:a.bits () in
  for i = 0 to registers a - 1 do
    let r = max (Char.code (Bytes.get a.registers i)) (Char.code (Bytes.get b.registers i)) in
    Bytes.set out.registers i (Char.chr r)
  done;
  out
