(** EXT-APS-Estimator (Algorithm 3, Appendix D): the MVC'21 APS-Estimator
    extended to [(α, γ, η)]-Approximate-Delphic oracles (Theorem D.1),
    resolving the second open problem of [33].

    Like its exact ancestor it requires the stream length [M] in advance and
    carries the [log M] space factor; the output lands in the same widened
    window as EXT-VATIC:
    [[(1-ε)/(2(1+η)(1+α)) · |∪S_i| , (1+ε)(1+η)(1+α) · |∪S_i|]]. *)

module Make (A : Delphic_family.Family.APPROX_FAMILY) : sig
  type t

  val create :
    ?capacity_scale:float ->
    epsilon:float ->
    delta:float ->
    log2_universe:float ->
    alpha:float ->
    gamma:float ->
    eta:float ->
    stream_length:int ->
    seed:int ->
    unit ->
    t

  val process : t -> A.t -> unit
  val estimate : t -> float

  val sample_union : t -> A.elt option
  (** Near-uniform draw from the union: the bucket holds every element at
      one shared probability, so a uniform bucket element is uniform over
      the sampled union (up to the oracle's η-tilt).  [None] when empty. *)

  val window : t -> float * float
  (** Guaranteed multiplicative output window [(lo, hi)]. *)

  val bucket_size : t -> int
  val max_bucket_size : t -> int
  val capacity : t -> int
  val items_processed : t -> int

  type oracle_calls = {
    membership : int;
    cardinality : int;
    sampling : int;
  }

  val oracle_calls : t -> oracle_calls
end
