(** Versioned on-disk codec for estimator snapshots.

    {!Vatic}, {!Ext_vatic} and {!Adaptive} expose in-memory [snapshot]
    records parameterised by the family's element type.  Durability must not
    be tied to those records (they change as the estimators evolve), so this
    module defines a neutral, {e versioned} interchange form in which
    elements are opaque single-line strings — each serving family supplies
    its own element codec (see [Delphic_server.Families]) and the text
    format carries everything else.

    Format (v1) is line-oriented and human-inspectable:

    {v
    delphic-snapshot v1
    family rect
    epsilon 0x1.999999999999ap-3
    ...
    exact-entries 2
    E 3 7
    E 12 40
    sketch practical ...
    sketch-entries 1
    3 17 42
    end
    v}

    Floats are printed with ["%h"] (hexadecimal) so that
    [decode (encode s) = Ok s] holds {e exactly} — the qcheck property in
    [test/test_snapshot_io.ml].  Unknown versions and malformed input decode
    to [Error], never an exception. *)

type sketch = {
  mode : Params.mode;
  capacity_scale : float;
  coupon_scale : float;
  s_items : int;  (** items the sketch itself has processed *)
  max_bucket : int;
  skipped : int;
  membership_calls : int;
  cardinality_calls : int;
  sampling_calls : int;
  entries : (int * string) list;  (** (sampling level, encoded element) *)
}

type t = {
  family : string;
      (** the protocol family token, e.g. ["rect"], ["dnf:40"],
          ["cov:14:2"]; opaque to this module (no whitespace) *)
  epsilon : float;
  delta : float;
  log2_universe : float;
  exact_capacity : int;  (** the adaptive wrapper's exact-mode budget *)
  items : int;
  exact_active : bool;
  exact_entries : string list;  (** encoded elements of the exact table *)
  sketch : sketch option;  (** [None] on universes below the sketching floor *)
}

val version : int
(** Current format version (1). *)

val encode : t -> string
(** Raises [Invalid_argument] if the family token or an encoded element
    contains a newline (elements containing spaces are fine). *)

val decode : string -> (t, string) result

val save : path:string -> t -> unit
(** Atomic: writes [path ^ ".tmp"] then renames, so a crash mid-write never
    leaves a truncated snapshot behind. *)

val load : path:string -> (t, string) result
