module Bigint = Delphic_util.Bigint
module Bitvec = Delphic_util.Bitvec
module Gf2 = Delphic_util.Gf2
module Rng = Delphic_util.Rng

module Make (X : Delphic_family.Family.XOR_FAMILY) = struct
  module Tbl = Hashtbl.Make (struct
    type t = Bitvec.t

    let equal = Bitvec.equal
    let hash = Bitvec.hash
  end)

  type t = {
    nvars : int;
    capacity : int;
    rng : Rng.t;
    store : unit Tbl.t;
    mutable rows : Gf2.row list; (* newest first; level = length *)
    mutable level : int;
    mutable items : int;
    mutable max_store : int;
  }

  let create ?capacity ~epsilon ~delta ~nvars ~seed () =
    if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Xor_sketch: need 0 < epsilon < 1";
    if delta <= 0.0 || delta >= 1.0 then invalid_arg "Xor_sketch: need 0 < delta < 1";
    if nvars <= 0 then invalid_arg "Xor_sketch: need nvars > 0";
    let capacity =
      match capacity with
      | Some c ->
        if c < 2 then invalid_arg "Xor_sketch: capacity must be >= 2";
        c
      | None ->
        (* Union bound over the 2^nvars candidate elements, as in [32]. *)
        int_of_float
          (Float.ceil
             (24.0 /. (epsilon *. epsilon)
             *. (log 2.0 +. (float_of_int nvars *. log 2.0) -. log delta)))
    in
    {
      nvars;
      capacity;
      rng = Rng.create ~seed;
      store = Tbl.create 1024;
      rows = [];
      level = 0;
      items = 0;
      max_store = 0;
    }

  let level t = t.level
  let store_size t = Tbl.length t.store
  let max_store_size t = t.max_store
  let capacity t = t.capacity
  let items_processed t = t.items

  (* One more random parity row: the cell halves in expectation, and every
     stored element must still satisfy the new row. *)
  let deepen t =
    let coeffs = Bitvec.random t.rng ~width:t.nvars in
    let row = { Gf2.coeffs; rhs = false } in
    t.rows <- row :: t.rows;
    t.level <- t.level + 1;
    let doomed =
      Tbl.fold (fun x () acc -> if Gf2.satisfies row x then acc else x :: acc) t.store []
    in
    List.iter (Tbl.remove t.store) doomed

  let process t s =
    if X.nvars s <> t.nvars then invalid_arg "Xor_sketch.process: nvars mismatch";
    t.items <- t.items + 1;
    let rec insert () =
      let budget = t.capacity - store_size t in
      (* Elements already stored are re-enumerated and re-inserted (set
         semantics), so the effective budget includes them; the simple
         capacity check below keeps the logic conservative. *)
      match X.enumerate_constrained s t.rows ~limit:t.capacity with
      | Some cell_members ->
        let fresh =
          List.filter (fun x -> not (Tbl.mem t.store x)) cell_members
        in
        if List.length fresh > budget then begin
          deepen t;
          insert ()
        end
        else begin
          List.iter (fun x -> Tbl.replace t.store x ()) fresh;
          if store_size t > t.max_store then t.max_store <- store_size t
        end
      | None ->
        (* Too many members in the current cell to even enumerate. *)
        deepen t;
        insert ()
    in
    insert ()

  let estimate t = Float.ldexp (float_of_int (store_size t)) t.level
end
