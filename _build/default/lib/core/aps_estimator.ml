module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng
module Binomial = Delphic_util.Binomial

module Make (F : Delphic_family.Family.FAMILY) = struct
  module Tbl = Hashtbl.Make (struct
    type t = F.elt

    let equal = F.equal_elt
    let hash = F.hash_elt
  end)

  type oracle_calls = { membership : int; cardinality : int; sampling : int }

  type t = {
    capacity : int;
    coupon_factor : float;
    rng : Rng.t;
    bucket : unit Tbl.t;
    mutable level : int; (* global p = 2^-level *)
    mutable items : int;
    mutable max_bucket : int;
    mutable membership_calls : int;
    mutable cardinality_calls : int;
    mutable sampling_calls : int;
  }

  let create ?(capacity_scale = 6.0) ~epsilon ~delta ~log2_universe ~stream_length
      ~seed () =
    if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Aps_estimator: need 0 < epsilon < 1";
    if delta <= 0.0 || delta >= 1.0 then invalid_arg "Aps_estimator: need 0 < delta < 1";
    if stream_length <= 0 then invalid_arg "Aps_estimator: need stream_length > 0";
    let capacity =
      int_of_float
        (Float.ceil
           (capacity_scale
           *. (log (8.0 /. delta) +. log (float_of_int stream_length))
           /. (epsilon *. epsilon)))
    in
    let ln2 = log 2.0 in
    {
      capacity;
      coupon_factor = log 4.0 +. (log2_universe *. ln2) -. log delta;
      rng = Rng.create ~seed;
      bucket = Tbl.create 1024;
      level = 0;
      items = 0;
      max_bucket = 0;
      membership_calls = 0;
      cardinality_calls = 0;
      sampling_calls = 0;
    }

  let bucket_size t = Tbl.length t.bucket
  let max_bucket_size t = t.max_bucket
  let capacity t = t.capacity
  let current_level t = t.level
  let items_processed t = t.items

  let oracle_calls t =
    {
      membership = t.membership_calls;
      cardinality = t.cardinality_calls;
      sampling = t.sampling_calls;
    }

  let binomial_of_cardinality rng card ~level =
    let l2n = Bigint.log2 card in
    let l2np = l2n -. float_of_int level in
    if l2np < -40.0 then 0.0
    else if l2n > 1000.0 then 2.0 ** Float.min l2np 1020.0
    else Binomial.sample_bigint rng ~n:card ~p:(Float.ldexp 1.0 (-level))

  let remove_covered t s =
    t.membership_calls <- t.membership_calls + bucket_size t;
    let doomed =
      Tbl.fold (fun x () acc -> if F.mem s x then x :: acc else acc) t.bucket []
    in
    List.iter (fun x -> Tbl.remove t.bucket x) doomed

  (* Discard every currently stored element with probability 1/2 — the
     global downsampling step that keeps the bucket under Thresh. *)
  let halve_bucket t =
    let doomed =
      Tbl.fold (fun x () acc -> if Rng.bool t.rng then x :: acc else acc) t.bucket []
    in
    List.iter (fun x -> Tbl.remove t.bucket x) doomed

  let process t s =
    t.items <- t.items + 1;
    remove_covered t s;
    t.cardinality_calls <- t.cardinality_calls + 1;
    let n = ref (binomial_of_cardinality t.rng (F.cardinality s) ~level:t.level) in
    while !n +. float_of_int (bucket_size t) > float_of_int t.capacity do
      halve_bucket t;
      n := Binomial.halve t.rng !n;
      t.level <- t.level + 1
    done;
    let wanted = int_of_float !n in
    if wanted > 0 then begin
      let budget =
        int_of_float (Float.ceil (4.0 *. float_of_int wanted *. t.coupon_factor))
      in
      let fresh = Tbl.create (2 * wanted) in
      let drawn = ref 0 in
      while Tbl.length fresh < wanted && !drawn < budget do
        incr drawn;
        let y = F.sample s t.rng in
        if not (Tbl.mem fresh y) then Tbl.replace fresh y ()
      done;
      t.sampling_calls <- t.sampling_calls + !drawn;
      Tbl.iter (fun y () -> Tbl.replace t.bucket y ()) fresh;
      if bucket_size t > t.max_bucket then t.max_bucket <- bucket_size t
    end

  let estimate t = Float.ldexp (float_of_int (bucket_size t)) t.level
end
