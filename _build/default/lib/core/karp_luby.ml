module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng
module Dist = Delphic_util.Dist

module Make (F : Delphic_family.Family.FAMILY) = struct
  type oracle_calls = { membership : int; cardinality : int; sampling : int }

  type t = {
    epsilon : float;
    delta : float;
    rng : Rng.t;
    mutable sets : F.t list; (* newest first *)
    mutable count : int;
    mutable membership_calls : int;
    mutable cardinality_calls : int;
    mutable sampling_calls : int;
  }

  let create ~epsilon ~delta ~seed () =
    if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Karp_luby: need 0 < epsilon < 1";
    if delta <= 0.0 || delta >= 1.0 then invalid_arg "Karp_luby: need 0 < delta < 1";
    {
      epsilon;
      delta;
      rng = Rng.create ~seed;
      sets = [];
      count = 0;
      membership_calls = 0;
      cardinality_calls = 0;
      sampling_calls = 0;
    }

  let add t s =
    t.sets <- s :: t.sets;
    t.count <- t.count + 1

  let stored_sets t = t.count

  let trials_needed t =
    int_of_float
      (Float.ceil
         (4.0 *. float_of_int t.count *. log (2.0 /. t.delta)
         /. (t.epsilon *. t.epsilon)))

  let oracle_calls t =
    {
      membership = t.membership_calls;
      cardinality = t.cardinality_calls;
      sampling = t.sampling_calls;
    }

  let estimate ?trials t =
    if t.count = 0 then 0.0
    else begin
      let sets = Array.of_list (List.rev t.sets) in
      let cards =
        Array.map
          (fun s ->
            t.cardinality_calls <- t.cardinality_calls + 1;
            Bigint.to_float (F.cardinality s))
          sets
      in
      let total_weight = Array.fold_left ( +. ) 0.0 cards in
      let picker = Dist.Discrete.create cards in
      let trials = match trials with Some n -> n | None -> trials_needed t in
      let successes = ref 0 in
      for _ = 1 to trials do
        let i = Dist.Discrete.sample picker t.rng in
        t.sampling_calls <- t.sampling_calls + 1;
        let x = F.sample sets.(i) t.rng in
        (* Success iff sets.(i) is the canonical — first — set containing x. *)
        let rec first j =
          t.membership_calls <- t.membership_calls + 1;
          if F.mem sets.(j) x then j else first (j + 1)
        in
        if first 0 = i then incr successes
      done;
      total_weight *. float_of_int !successes /. float_of_int trials
    end
end
