(** Derivation of VATIC's constants from [(ε, δ, log2 |Ω|)].

    The paper sets (Algorithm 1, line 1)

    {v B = 6 · (ln(4/δ)/ε²) · ln(4|Ω|/δ) v}

    and admits an element into the bucket only while its sampling probability
    satisfies [p >= ln(4/δ) / (ε²|Ω|)].  All logarithms here are natural.

    Worst-case proof constants are notoriously loose: with [ε = 0.1],
    [δ = 0.2], [|Ω| = 10^12], the paper's [B] is ≈ 5.5·10^4 and the bucket
    bound [B·log2|Ω|] ≈ 2·10^6 — three orders of magnitude more than needed
    for that accuracy in practice.  We therefore expose two modes:

    - [Paper]: the constants exactly as printed (use for auditing the
      algorithm against the text);
    - [Practical]: same shape without the union-bound inflation,
      [B = 6·ln(4/δ)/ε²], the default for experiments.  EXPERIMENTS.md
      (E1, E8) verifies empirically that the (ε, δ) guarantee still holds
      comfortably in this mode. *)

type mode = Paper | Practical

type t = private {
  epsilon : float;
  delta : float;
  log2_universe : float;  (** log2 |Ω| *)
  mode : mode;
  capacity_scale : float;  (** the leading constant in B (paper: 6) *)
  coupon_scale : float;  (** the leading constant in K_i (paper: 4) *)
  bucket_capacity : int;  (** B *)
  max_level : int;
      (** largest [ℓ] such that [p = 2^{-ℓ}] still satisfies the
          [p >= ln(4/δ)/(ε²|Ω|)] admission threshold *)
  coupon_factor : float;  (** ln(4|Ω|/δ), the per-element coupon-collector factor for K_i *)
}

val create :
  ?mode:mode ->
  ?capacity_scale:float ->
  ?coupon_scale:float ->
  epsilon:float ->
  delta:float ->
  log2_universe:float ->
  unit ->
  t
(** Requires [0 < ε < 1], [0 < δ < 1], [log2_universe > 0], and a universe
    large enough that the admission floor [ln(4/δ)/(ε²|Ω|)] is below 1/2 —
    below that size the sampling regime of Theorem 1.2 is vacuous (one can
    hold the whole universe exactly in less memory than the sketch), and
    [create] raises [Invalid_argument] telling the caller so.

    [capacity_scale] and [coupon_scale] override the paper's leading
    constants (6 in [B], 4 in [K_i]) — ablation knobs for the A1/A2
    experiments; leave them at the defaults otherwise. *)

val max_samples : t -> n_distinct:int -> int
(** [K_i = ⌈coupon_scale · N_i · ln(4|Ω|/δ)⌉], the sampling budget for
    collecting [N_i] distinct elements (Algorithm 1, line 12; the paper's
    constant is 4). *)

val bucket_bound : t -> int
(** The worst-case bucket size [B·(max_level + 1)] — Eq. 2 of the paper
    combined with the probability floor; {!Delphic_core.Vatic} never exceeds
    it (tested), and E2 reports measured occupancy against it. *)

val pp : Format.formatter -> t -> unit
