module Bigint = Delphic_util.Bigint
module Rng = Delphic_util.Rng
module Binomial = Delphic_util.Binomial

module Make (A : Delphic_family.Family.APPROX_FAMILY) = struct
  module Tbl = Hashtbl.Make (struct
    type t = A.elt

    let equal = A.equal_elt
    let hash = A.hash_elt
  end)

  type oracle_calls = { membership : int; cardinality : int; sampling : int }

  type t = {
    alpha : float;
    eta : float;
    epsilon : float;
    capacity : int; (* Thresh₁ of Algorithm 3 *)
    small_cutoff : int; (* Thresh₂ *)
    sampling_budget : int; (* Thresh₃ *)
    log2_p_init : float;
    coupon_factor : float;
    median_reps : int;
    rng : Rng.t;
    bucket : unit Tbl.t;
    mutable halvings : int; (* p = p_init · 2^-halvings *)
    mutable items : int;
    mutable max_bucket : int;
    mutable membership_calls : int;
    mutable cardinality_calls : int;
    mutable sampling_calls : int;
  }

  let ln2 = log 2.0

  let create ?(capacity_scale = 6.0) ~epsilon ~delta ~log2_universe ~alpha ~gamma
      ~eta ~stream_length ~seed () =
    if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Ext_aps: need 0 < epsilon < 1";
    if delta <= 0.0 || delta >= 1.0 then invalid_arg "Ext_aps: need 0 < delta < 1";
    if alpha < 0.0 then invalid_arg "Ext_aps: need alpha >= 0";
    if gamma < 0.0 || gamma >= 0.5 then invalid_arg "Ext_aps: need 0 <= gamma < 1/2";
    if eta < 0.0 then invalid_arg "Ext_aps: need eta >= 0";
    if stream_length <= 0 then invalid_arg "Ext_aps: need stream_length > 0";
    let ln_universe = log2_universe *. ln2 in
    (* Thresh₁ = (ln(8/δ) + ln M)/ε², scaled like the exact baseline. *)
    let capacity =
      int_of_float
        (Float.ceil
           (capacity_scale
           *. (log (8.0 /. delta) +. log (float_of_int stream_length))
           /. (epsilon *. epsilon)))
    in
    let small_cutoff =
      Stdlib.max 1
        (int_of_float (Float.ceil (3.0 *. (log (2.0 *. (1.0 +. eta)) +. ln_universe))))
    in
    let t2 = float_of_int small_cutoff in
    let sampling_budget =
      int_of_float (Float.ceil ((1.0 +. eta) *. t2 *. (ln_universe +. log t2)))
    in
    let median_reps =
      if gamma = 0.0 then 1
      else begin
        let q =
          Float.ceil
            ((log 2.0 +. ln_universe -. log delta)
            /. (2.0 *. ((0.5 -. gamma) ** 2.0)))
        in
        let q = int_of_float q in
        if q mod 2 = 0 then q + 1 else q
      end
    in
    {
      alpha;
      eta;
      epsilon;
      capacity;
      small_cutoff;
      sampling_budget;
      log2_p_init = -.(log (2.0 *. ((1.0 +. alpha) ** 2.0)) /. ln2);
      coupon_factor = log 4.0 +. ln_universe -. log delta;
      median_reps;
      rng = Rng.create ~seed;
      bucket = Tbl.create 1024;
      halvings = 0;
      items = 0;
      max_bucket = 0;
      membership_calls = 0;
      cardinality_calls = 0;
      sampling_calls = 0;
    }

  let bucket_size t = Tbl.length t.bucket
  let max_bucket_size t = t.max_bucket
  let capacity t = t.capacity
  let items_processed t = t.items

  let oracle_calls t =
    {
      membership = t.membership_calls;
      cardinality = t.cardinality_calls;
      sampling = t.sampling_calls;
    }

  let window t =
    let lo = (1.0 -. t.epsilon) /. (2.0 *. (1.0 +. t.eta) *. (1.0 +. t.alpha)) in
    let hi = (1.0 +. t.epsilon) *. (1.0 +. t.eta) *. (1.0 +. t.alpha) in
    (lo, hi)

  let scale_up v factor =
    let fixed = int_of_float (Float.ceil (factor *. 1048576.0)) in
    Bigint.max Bigint.one (Bigint.shift_right (Bigint.mul_int v fixed) 20)

  let amplified_cardinality t s =
    let samples =
      Array.init t.median_reps (fun _ ->
          t.cardinality_calls <- t.cardinality_calls + 1;
          A.approx_cardinality s t.rng)
    in
    Array.sort Bigint.compare samples;
    samples.(t.median_reps / 2)

  (* Lines 10-17 of Algorithm 3. *)
  let estimate_set_size t s =
    let seen = Tbl.create (2 * t.small_cutoff) in
    let k = ref 0 in
    while !k < t.sampling_budget && Tbl.length seen <= t.small_cutoff do
      incr k;
      let y = A.approx_sample s t.rng in
      if not (Tbl.mem seen y) then Tbl.replace seen y ()
    done;
    t.sampling_calls <- t.sampling_calls + !k;
    if Tbl.length seen <= t.small_cutoff then Bigint.of_int (Tbl.length seen)
    else scale_up (amplified_cardinality t s) (1.0 +. t.alpha)

  let remove_covered t s =
    t.membership_calls <- t.membership_calls + bucket_size t;
    let doomed =
      Tbl.fold (fun x () acc -> if A.mem s x then x :: acc else acc) t.bucket []
    in
    List.iter (fun x -> Tbl.remove t.bucket x) doomed

  let halve_bucket t =
    let doomed =
      Tbl.fold (fun x () acc -> if Rng.bool t.rng then x :: acc else acc) t.bucket []
    in
    List.iter (fun x -> Tbl.remove t.bucket x) doomed

  let binomial_of_cardinality rng card ~log2p =
    let l2n = Bigint.log2 card in
    let l2np = l2n +. log2p in
    if l2np < -40.0 then 0.0
    else if l2n > 1000.0 then 2.0 ** Float.min l2np 1020.0
    else Binomial.sample_bigint rng ~n:card ~p:(2.0 ** log2p)

  let process t s =
    t.items <- t.items + 1;
    remove_covered t s;
    let e = estimate_set_size t s in
    (* Line 18: N_i ~ Bin(E_i, p). *)
    let log2p () = t.log2_p_init -. float_of_int t.halvings in
    let n = ref (binomial_of_cardinality t.rng e ~log2p:(log2p ())) in
    (* Lines 19-21: shrink everything while the bucket would overflow. *)
    while !n +. float_of_int (bucket_size t) > float_of_int t.capacity do
      halve_bucket t;
      n := Binomial.halve t.rng !n;
      t.halvings <- t.halvings + 1
    done;
    (* Lines 22-24: add N_i fresh distinct samples. *)
    let wanted = int_of_float !n in
    if wanted > 0 then begin
      let budget =
        int_of_float (Float.ceil (4.0 *. float_of_int wanted *. t.coupon_factor))
      in
      let added = ref 0 in
      let drawn = ref 0 in
      while !added < wanted && !drawn < budget do
        incr drawn;
        let y = A.approx_sample s t.rng in
        if not (Tbl.mem t.bucket y) then begin
          Tbl.replace t.bucket y ();
          incr added
        end
      done;
      t.sampling_calls <- t.sampling_calls + !drawn;
      if bucket_size t > t.max_bucket then t.max_bucket <- bucket_size t
    end

  let sample_union t =
    let n = bucket_size t in
    if n = 0 then None
    else begin
      let target = Rng.int t.rng n in
      let picked = ref None in
      let i = ref 0 in
      Tbl.iter
        (fun x () ->
          if !i = target then picked := Some x;
          incr i)
        t.bucket;
      !picked
    end

  (* Line 25: |X| / (p (1+α)). *)
  let estimate t =
    let log2_p = t.log2_p_init -. float_of_int t.halvings in
    float_of_int (bucket_size t) /. (2.0 ** log2_p) /. (1.0 +. t.alpha)
end
