type mode = Paper | Practical

type t = {
  epsilon : float;
  delta : float;
  log2_universe : float;
  mode : mode;
  capacity_scale : float;
  coupon_scale : float;
  bucket_capacity : int;
  max_level : int;
  coupon_factor : float;
}

let ln2 = log 2.0

let create ?(mode = Practical) ?(capacity_scale = 6.0) ?(coupon_scale = 4.0) ~epsilon
    ~delta ~log2_universe () =
  if capacity_scale <= 0.0 then invalid_arg "Params.create: capacity_scale must be positive";
  if coupon_scale <= 0.0 then invalid_arg "Params.create: coupon_scale must be positive";
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Params.create: need 0 < epsilon < 1";
  if delta <= 0.0 || delta >= 1.0 then invalid_arg "Params.create: need 0 < delta < 1";
  if log2_universe <= 0.0 then invalid_arg "Params.create: need log2_universe > 0";
  let ln_4_delta = log (4.0 /. delta) in
  (* ln(4|Ω|/δ) computed in log space so |Ω| = 2^1000 cannot overflow. *)
  let coupon_factor = log 4.0 +. (log2_universe *. ln2) -. log delta in
  let base = capacity_scale *. ln_4_delta /. (epsilon *. epsilon) in
  let bucket_capacity =
    match mode with
    | Paper -> int_of_float (Float.ceil (base *. coupon_factor))
    | Practical -> int_of_float (Float.ceil base)
  in
  (* p >= ln(4/δ)/(ε²|Ω|)  ⇔  ℓ <= log2(ε²|Ω|/ln(4/δ)). *)
  let max_level_f =
    Float.floor (log2_universe +. (log (epsilon *. epsilon /. ln_4_delta) /. ln2))
  in
  let max_level = int_of_float max_level_f in
  if max_level < 1 then
    invalid_arg
      (Printf.sprintf
         "Params.create: universe too small for these parameters (need \
          eps^2 * |U| >= 2*ln(4/delta), i.e. log2|U| >= %.1f here) — at this \
          size, count the union exactly instead"
         (log (2.0 *. ln_4_delta /. (epsilon *. epsilon)) /. ln2));
  { epsilon; delta; log2_universe; mode; capacity_scale; coupon_scale; bucket_capacity;
    max_level; coupon_factor }

let max_samples t ~n_distinct =
  int_of_float (Float.ceil (t.coupon_scale *. float_of_int n_distinct *. t.coupon_factor))

let bucket_bound t = t.bucket_capacity * (t.max_level + 1)

let pp fmt t =
  Format.fprintf fmt
    "{eps=%g; delta=%g; log2|U|=%g; mode=%s; B=%d; max_level=%d}" t.epsilon t.delta
    t.log2_universe
    (match t.mode with Paper -> "paper" | Practical -> "practical")
    t.bucket_capacity t.max_level
