lib/core/hyperloglog.mli:
