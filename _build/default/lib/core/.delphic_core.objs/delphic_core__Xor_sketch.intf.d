lib/core/xor_sketch.mli: Delphic_family
