lib/core/aps_estimator.mli: Delphic_family
