lib/core/ext_vatic.ml: Array Delphic_family Delphic_util Float Hashtbl List Params Stdlib
