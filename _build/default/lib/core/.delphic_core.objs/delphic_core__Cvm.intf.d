lib/core/cvm.mli:
