lib/core/bottom_k.mli:
