lib/core/ext_vatic.mli: Delphic_family Params
