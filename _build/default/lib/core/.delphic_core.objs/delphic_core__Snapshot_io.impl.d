lib/core/snapshot_io.ml: Buffer Fun List Params Printf Result String Sys
