lib/core/cvm.ml: Delphic_util Float Hashtbl List
