lib/core/karp_luby.mli: Delphic_family
