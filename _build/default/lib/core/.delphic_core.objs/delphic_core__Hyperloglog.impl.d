lib/core/hyperloglog.ml: Bytes Char Float Int64
