lib/core/karp_luby.ml: Array Delphic_family Delphic_util Float List
