lib/core/ext_aps_estimator.mli: Delphic_family
