lib/core/params.ml: Float Format Printf
