lib/core/params.mli: Format
