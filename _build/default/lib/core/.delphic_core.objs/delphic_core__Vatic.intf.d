lib/core/vatic.mli: Delphic_family Params
