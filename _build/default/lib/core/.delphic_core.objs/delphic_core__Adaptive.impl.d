lib/core/adaptive.ml: Delphic_family Delphic_util Float Hashtbl List Option Params Printf Stdlib Vatic
