lib/core/adaptive.ml: Delphic_family Delphic_util Float Hashtbl Option Params Printf Vatic
