lib/core/aps_estimator.ml: Delphic_family Delphic_util Float Hashtbl List
