lib/core/ext_aps_estimator.ml: Array Delphic_family Delphic_util Float Hashtbl List Stdlib
