lib/core/adaptive.mli: Delphic_family Params
