lib/core/snapshot_io.mli: Params
