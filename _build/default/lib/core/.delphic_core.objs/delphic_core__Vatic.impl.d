lib/core/vatic.ml: Delphic_family Delphic_util Float Hashtbl List Logs Params Stdlib
