lib/core/xor_sketch.ml: Delphic_family Delphic_util Float Hashtbl List
