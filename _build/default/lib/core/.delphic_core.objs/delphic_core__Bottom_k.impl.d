lib/core/bottom_k.ml: Float Int64 Set
