(** HyperLogLog distinct-elements sketch (Flajolet et al. 2007) — the
    log-space F0 baseline for singleton streams.

    2^b one-byte registers record the maximum leading-zero rank seen in each
    hash bucket; the harmonic-mean estimator with linear-counting correction
    for the small range gives ~1.04/√(2^b) relative standard error. *)

type t

val create : ?bits:int -> unit -> t
(** [bits] (default 12) selects [m = 2^bits] registers; requires
    [4 <= bits <= 18]. *)

val add : t -> int -> unit
val estimate : t -> float
val registers : t -> int
(** m. *)

val merge : t -> t -> t
(** Register-wise max; both sketches must share [bits]. *)
