module Summary = Delphic_util.Summary

type 'a outcome = { value : 'a; seconds : float }

let timed f =
  let t0 = Unix.gettimeofday () in
  let value = f () in
  { value; seconds = Unix.gettimeofday () -. t0 }

let run ~trials ~base_seed f =
  List.init trials (fun i -> timed (fun () -> f ~seed:(base_seed + i)))

let estimates ~trials ~base_seed ~truth f =
  let outcomes = run ~trials ~base_seed f in
  let est = Summary.create () and err = Summary.create () in
  let secs = ref 0.0 in
  List.iter
    (fun { value; seconds } ->
      Summary.add est value;
      Summary.add err (Summary.relative_error ~estimate:value ~truth);
      secs := !secs +. seconds)
    outcomes;
  (est, err, !secs /. float_of_int trials)

let failure_rate ~epsilon ~truth values =
  let failures =
    List.length
      (List.filter
         (fun v -> Float.abs (v -. truth) > epsilon *. Float.abs truth)
         values)
  in
  float_of_int failures /. float_of_int (List.length values)
