(** Multi-trial experiment runner. *)

type 'a outcome = { value : 'a; seconds : float }

val timed : (unit -> 'a) -> 'a outcome
(** Wall-clock one computation. *)

val run : trials:int -> base_seed:int -> (seed:int -> 'a) -> 'a outcome list
(** Run [f ~seed:(base_seed + i)] for [i = 0 .. trials-1], timing each. *)

val estimates :
  trials:int ->
  base_seed:int ->
  truth:float ->
  (seed:int -> float) ->
  Delphic_util.Summary.t * Delphic_util.Summary.t * float
(** Convenience for accuracy experiments: returns (estimates, relative
    errors, mean seconds per trial). *)

val failure_rate : epsilon:float -> truth:float -> float list -> float
(** Fraction of estimates outside [(1 ± ε)·truth]. *)
