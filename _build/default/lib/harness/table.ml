let render ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  List.iter
    (fun r ->
      if List.length r <> columns then invalid_arg "Table.render: ragged row")
    rows;
  let widths = Array.make columns 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let emit_row r =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      r;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  emit_row
    (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter emit_row rows;
  Buffer.contents buf

let output_format = ref `Text

let set_output fmt = output_format := fmt

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let render_csv ~header rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map csv_escape row));
      Buffer.add_char buf '\n')
    (header :: rows);
  Buffer.contents buf

let print ?title ~header rows =
  (match title with
  | Some t ->
    print_newline ();
    print_endline (match !output_format with `Text -> t | `Csv -> "# " ^ t);
    (match !output_format with
    | `Text -> print_endline (String.make (String.length t) '=')
    | `Csv -> ())
  | None -> ());
  match !output_format with
  | `Text -> print_string (render ~header rows)
  | `Csv -> print_string (render_csv ~header rows)

let cell_f v =
  let a = Float.abs v in
  if v = 0.0 then "0"
  else if a >= 0.001 && a < 1000000.0 then Printf.sprintf "%.4g" v
  else Printf.sprintf "%.3e" v

let cell_i = string_of_int
