lib/harness/trial.ml: Delphic_util Float List Unix
