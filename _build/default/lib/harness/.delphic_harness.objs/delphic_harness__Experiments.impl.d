lib/harness/experiments.ml: Array Delphic_core Delphic_sets Delphic_stream Delphic_util Fun Hashtbl List Parallel Printf String Table Trial
