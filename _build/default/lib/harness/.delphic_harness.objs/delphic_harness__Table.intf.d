lib/harness/table.mli:
