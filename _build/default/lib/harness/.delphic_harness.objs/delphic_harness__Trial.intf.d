lib/harness/trial.mli: Delphic_util
