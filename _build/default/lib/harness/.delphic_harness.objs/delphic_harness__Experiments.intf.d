lib/harness/experiments.mli:
