lib/harness/table.ml: Array Buffer Float List Printf Stdlib String
