lib/harness/parallel.ml: Array Domain List Stdlib
