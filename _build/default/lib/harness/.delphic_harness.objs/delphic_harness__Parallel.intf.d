lib/harness/parallel.mli:
