module Rng = Delphic_util.Rng
module Bigint = Delphic_util.Bigint
module Summary = Delphic_util.Summary
module Rectangle = Delphic_sets.Rectangle
module Range1d = Delphic_sets.Range1d
module Singleton = Delphic_sets.Singleton
module Dnf = Delphic_sets.Dnf
module Coverage = Delphic_sets.Coverage
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload

module Vatic_rect = Delphic_core.Vatic.Make (Rectangle)
module Vatic_range = Delphic_core.Vatic.Make (Range1d)
module Vatic_single = Delphic_core.Vatic.Make (Singleton)
module Vatic_dnf = Delphic_core.Vatic.Make (Dnf)
module Vatic_cov = Delphic_core.Vatic.Make (Coverage)
module Aps_rect = Delphic_core.Aps_estimator.Make (Rectangle)
module Kl_dnf = Delphic_core.Karp_luby.Make (Dnf)
module Wrap_range = Delphic_sets.Approx_wrap.Make (Range1d)
module Ext_vatic_range = Delphic_core.Ext_vatic.Make (Wrap_range)
module Wrap_rect = Delphic_sets.Approx_wrap.Make (Rectangle)
module Ext_aps_rect = Delphic_core.Ext_aps_estimator.Make (Wrap_rect)
module Xs_dnf = Delphic_core.Xor_sketch.Make (Dnf)

let log2f x = log x /. log 2.0

(* Stream of [count] items drawn (with repetition) from a pool of distinct
   sets: keeps exact ground truth affordable while the stream stays long and
   duplicate-heavy, the regime the last-occurrence logic is built for. *)
let pick_stream rng ~count pool =
  let pool = Array.of_list pool in
  List.init count (fun _ -> pool.(Rng.int rng (Array.length pool)))

(* ------------------------------------------------------------------ E1 *)

let e1_accuracy_kmp () =
  let delta = 0.2 in
  let rows = ref [] in
  let scenario ~dim ~universe ~max_side ~pool_size ~stream_len ~trials ~epsilon =
    let gen = Rng.create ~seed:101 in
    let pool =
      Workload.Rectangles.uniform gen ~universe ~dim ~count:pool_size ~max_side
    in
    let stream = pick_stream gen ~count:stream_len pool in
    let truth = Bigint.to_float (Exact.rectangle_union pool) in
    let log2_universe = float_of_int dim *. log2f (float_of_int universe) in
    let buckets = Summary.create () in
    let est, err, secs =
      Trial.estimates ~trials ~base_seed:9000 ~truth (fun ~seed ->
          let t = Vatic_rect.create ~epsilon ~delta ~log2_universe ~seed () in
          List.iter (Vatic_rect.process t) stream;
          Summary.add buckets (float_of_int (Vatic_rect.max_bucket_size t));
          Vatic_rect.estimate t)
    in
    let fail = Trial.failure_rate ~epsilon ~truth (Array.to_list (Summary.values est)) in
    rows :=
      [
        string_of_int dim;
        Table.cell_f epsilon;
        Table.cell_f truth;
        Table.cell_f (Summary.mean err);
        Table.cell_f (Summary.quantile err 0.95);
        Printf.sprintf "%.2f" fail;
        Table.cell_f (Summary.mean buckets);
        Printf.sprintf "%.3f" secs;
      ]
      :: !rows
  in
  List.iter
    (fun epsilon ->
      scenario ~dim:2 ~universe:1_000_000 ~max_side:60_000 ~pool_size:150
        ~stream_len:2000 ~trials:30 ~epsilon)
    [ 0.1; 0.2; 0.4 ];
  List.iter
    (fun epsilon ->
      scenario ~dim:3 ~universe:4096 ~max_side:800 ~pool_size:50 ~stream_len:2000
        ~trials:20 ~epsilon)
    [ 0.2 ];
  Table.print
    ~title:"E1  VATIC accuracy on streaming KMP (delta = 0.2; claim: P[rel err > eps] <= delta)"
    ~header:[ "d"; "eps"; "truth"; "mean err"; "p95 err"; "fail rate"; "mean max|X|"; "s/trial" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ E2 *)

let e2_space_vs_stream_length () =
  let epsilon = 0.33 and delta = 0.2 in
  let dim = 2 and universe = 1_000_000 in
  let log2_universe = float_of_int dim *. log2f (float_of_int universe) in
  let gen = Rng.create ~seed:202 in
  let pool =
    Workload.Rectangles.uniform gen ~universe ~dim ~count:200 ~max_side:60_000
  in
  let rows =
    List.map
      (fun stream_len ->
        let stream = pick_stream gen ~count:stream_len pool in
        let v = Vatic_rect.create ~epsilon ~delta ~log2_universe ~seed:11 () in
        List.iter (Vatic_rect.process v) stream;
        let aps =
          Aps_rect.create ~epsilon ~delta ~log2_universe ~stream_length:stream_len
            ~seed:11 ()
        in
        List.iter (Aps_rect.process aps) stream;
        [
          string_of_int stream_len;
          string_of_int (Vatic_rect.max_bucket_size v);
          string_of_int (Delphic_core.Params.bucket_bound (Vatic_rect.params v));
          string_of_int (Aps_rect.max_bucket_size aps);
          string_of_int (Aps_rect.capacity aps);
        ])
      [ 100; 1000; 10_000; 50_000 ]
  in
  Table.print
    ~title:
      "E2  Space vs stream length M (claim: VATIC flat in M, APS capacity grows ~ ln M)"
    ~header:[ "M"; "VATIC max|X|"; "VATIC bound"; "APS max|X|"; "APS capacity" ]
    rows

(* ------------------------------------------------------------------ E3 *)

let e3_update_time () =
  let epsilon = 0.33 and delta = 0.2 in
  (* Part a: scaling in the dimension d at fixed M. *)
  let rows_d =
    List.map
      (fun dim ->
        let universe = 65536 in
        let gen = Rng.create ~seed:303 in
        let pool =
          Workload.Rectangles.uniform gen ~universe ~dim ~count:100 ~max_side:1000
        in
        let stream = pick_stream gen ~count:3000 pool in
        let log2_universe = float_of_int dim *. log2f (float_of_int universe) in
        let v = Vatic_rect.create ~epsilon ~delta ~log2_universe ~seed:21 () in
        let { Trial.seconds; _ } =
          Trial.timed (fun () -> List.iter (Vatic_rect.process v) stream)
        in
        let calls = Vatic_rect.oracle_calls v in
        let total = calls.membership + calls.cardinality + calls.sampling in
        [
          string_of_int dim;
          Printf.sprintf "%.2f" (seconds *. 1e6 /. 3000.0);
          Printf.sprintf "%.1f" (float_of_int total /. 3000.0);
          string_of_int (Vatic_rect.max_bucket_size v);
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Table.print
    ~title:"E3a  Per-item cost vs dimension d (M = 3000, |Delta| = 2^16)"
    ~header:[ "d"; "us/item"; "oracle calls/item"; "max|X|" ]
    rows_d;
  (* Part b: per-item cost flat in M. *)
  let rows_m =
    List.map
      (fun stream_len ->
        let dim = 2 and universe = 1_000_000 in
        let gen = Rng.create ~seed:304 in
        let pool =
          Workload.Rectangles.uniform gen ~universe ~dim ~count:150 ~max_side:60_000
        in
        let stream = pick_stream gen ~count:stream_len pool in
        let log2_universe = float_of_int dim *. log2f (float_of_int universe) in
        let v = Vatic_rect.create ~epsilon ~delta ~log2_universe ~seed:22 () in
        let { Trial.seconds; _ } =
          Trial.timed (fun () -> List.iter (Vatic_rect.process v) stream)
        in
        let calls = Vatic_rect.oracle_calls v in
        let total = calls.membership + calls.cardinality + calls.sampling in
        [
          string_of_int stream_len;
          Printf.sprintf "%.2f" (seconds *. 1e6 /. float_of_int stream_len);
          Printf.sprintf "%.1f" (float_of_int total /. float_of_int stream_len);
        ])
      [ 500; 5000; 50_000 ]
  in
  Table.print
    ~title:"E3b  Per-item cost vs stream length M (d = 2; claim: flat in M)"
    ~header:[ "M"; "us/item"; "oracle calls/item" ]
    rows_m

(* ------------------------------------------------------------------ E4 *)

let e4_dnf_counting () =
  (* n is capped at the BDD-tractable regime: random k-DNF unions approach
     random functions, whose BDDs grow exponentially in n (see
     EXPERIMENTS.md); the estimators themselves run at any n. *)
  let nvars = 26 and width = 8 in
  let gen = Rng.create ~seed:404 in
  let pool = Workload.Dnf_terms.random gen ~nvars ~count:150 ~width in
  let stream = pick_stream gen ~count:500 pool in
  let exact = Trial.timed (fun () -> Bigint.to_float (Exact.dnf_count ~nvars pool)) in
  let truth = exact.Trial.value in
  let epsilon = 0.2 and delta = 0.2 in
  let _, verr, vsecs =
    Trial.estimates ~trials:15 ~base_seed:1200 ~truth (fun ~seed ->
        let t =
          Vatic_dnf.create ~epsilon ~delta ~log2_universe:(float_of_int nvars) ~seed ()
        in
        List.iter (Vatic_dnf.process t) stream;
        Vatic_dnf.estimate t)
  in
  let _, kerr, ksecs =
    Trial.estimates ~trials:15 ~base_seed:1300 ~truth (fun ~seed ->
        let kl = Kl_dnf.create ~epsilon ~delta ~seed () in
        List.iter (Kl_dnf.add kl) stream;
        Kl_dnf.estimate kl)
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E4  Streaming DNF counting (n = %d vars, width-%d terms, M = 500, truth = %s)"
         nvars width (Table.cell_f truth))
    ~header:[ "method"; "mean err"; "p95 err"; "s/trial"; "memory" ]
    [
      [ "VATIC (streaming)"; Table.cell_f (Summary.mean verr);
        Table.cell_f (Summary.quantile verr 0.95); Printf.sprintf "%.3f" vsecs;
        "poly-log bucket" ];
      [ "Karp-Luby (offline)"; Table.cell_f (Summary.mean kerr);
        Table.cell_f (Summary.quantile kerr 0.95); Printf.sprintf "%.3f" ksecs;
        "stores all M sets" ];
      [ "exact BDD (offline)"; "0"; "0"; Printf.sprintf "%.3f" exact.Trial.seconds;
        "exponential worst case" ];
    ]

(* ------------------------------------------------------------------ E5 *)

let e5_ext_vatic () =
  let universe = 1_000_000 in
  let log2_universe = log2f (float_of_int universe) in
  let epsilon = 0.2 and delta = 0.2 in
  let gen = Rng.create ~seed:505 in
  let pool = Workload.Ranges.uniform gen ~universe ~count:300 ~max_len:4000 in
  let stream = pick_stream gen ~count:1000 pool in
  let truth = float_of_int (Exact.range_union pool) in
  let rows =
    List.map
      (fun (alpha, gamma, eta) ->
        let wrapped = List.map (Wrap_range.wrap ~alpha ~gamma ~eta) stream in
        let ratios = Summary.create () in
        let inside = ref 0 in
        let trials = 15 in
        let window = ref (0.0, 0.0) in
        for i = 0 to trials - 1 do
          let t =
            Ext_vatic_range.create ~epsilon ~delta ~log2_universe ~alpha ~gamma ~eta
              ~seed:(1400 + i) ()
          in
          List.iter (Ext_vatic_range.process t) wrapped;
          let est = Ext_vatic_range.estimate t in
          window := Ext_vatic_range.window t;
          let lo, hi = !window in
          Summary.add ratios (est /. truth);
          if est >= lo *. truth && est <= hi *. truth then incr inside
        done;
        let lo, hi = !window in
        [
          Table.cell_f alpha;
          Table.cell_f gamma;
          Table.cell_f eta;
          Table.cell_f (Summary.mean ratios);
          Printf.sprintf "[%.2f, %.2f]" lo hi;
          Printf.sprintf "%d/%d" !inside trials;
        ])
      [ (0.2, 0.05, 0.1); (0.5, 0.1, 0.3); (0.0, 0.0, 0.0) ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E5  EXT-VATIC under (alpha,gamma,eta) oracles (1-d ranges, truth = %s; claim: output in window)"
         (Table.cell_f truth))
    ~header:[ "alpha"; "gamma"; "eta"; "mean est/truth"; "window"; "inside" ]
    rows

(* ------------------------------------------------------------------ E6 *)

let e6_test_coverage () =
  let nbits = 14 in
  let epsilon = 0.15 and delta = 0.2 in
  let rows =
    List.map
      (fun strength ->
        let gen = Rng.create ~seed:606 in
        let vectors = Workload.Coverage_suites.random gen ~nbits ~count:300 ~bias:0.5 in
        let stream = Workload.Coverage_suites.coverage_sets ~strength vectors in
        let truth = Bigint.to_float (Exact.coverage_union ~strength vectors) in
        let log2_universe =
          Bigint.log2 (Coverage.universe_size ~n:nbits ~strength)
        in
        let _, err, secs =
          Trial.estimates ~trials:20 ~base_seed:1500 ~truth (fun ~seed ->
              let t = Vatic_cov.create ~epsilon ~delta ~log2_universe ~seed () in
              List.iter (Vatic_cov.process t) stream;
              Vatic_cov.estimate t)
        in
        [
          string_of_int strength;
          Table.cell_f truth;
          Table.cell_f (Summary.mean err);
          Table.cell_f (Summary.quantile err 0.95);
          Printf.sprintf "%.3f" secs;
        ])
      [ 2; 3 ]
  in
  Table.print
    ~title:"E6  t-wise coverage estimation (n = 14 bits, 300 test vectors, eps = 0.15)"
    ~header:[ "t"; "truth"; "mean err"; "p95 err"; "s/trial" ]
    rows

(* ------------------------------------------------------------------ E7 *)

let e7_distinct_elements () =
  let universe = 1 lsl 20 in
  let count = 100_000 in
  let epsilon = 0.25 and delta = 0.2 in
  let scenario name stream_gen =
    let gen = Rng.create ~seed:707 in
    let stream = stream_gen gen in
    let values = List.map Singleton.value stream in
    let truth = float_of_int (Exact.distinct values) in
    (* VATIC *)
    let v =
      Vatic_single.create ~epsilon ~delta ~log2_universe:20.0 ~seed:31 ()
    in
    let vt = Trial.timed (fun () -> List.iter (Vatic_single.process v) stream) in
    (* bottom-k *)
    let bk = Delphic_core.Bottom_k.create ~epsilon () in
    let bt = Trial.timed (fun () -> List.iter (Delphic_core.Bottom_k.add bk) values) in
    (* HyperLogLog *)
    let hll = Delphic_core.Hyperloglog.create ~bits:12 () in
    let ht = Trial.timed (fun () -> List.iter (Delphic_core.Hyperloglog.add hll) values) in
    (* CVM (the authors' singleton specialisation of this paper) *)
    let cvm =
      Delphic_core.Cvm.create ~epsilon ~delta ~stream_bound:count ~seed:32 ()
    in
    let ct = Trial.timed (fun () -> List.iter (Delphic_core.Cvm.add cvm) values) in
    let row method_ est space secs =
      [
        name;
        method_;
        Table.cell_f truth;
        Table.cell_f est;
        Table.cell_f (Summary.relative_error ~estimate:est ~truth);
        space;
        Printf.sprintf "%.3f" secs;
      ]
    in
    [
      row "VATIC" (Vatic_single.estimate v)
        (Printf.sprintf "%d entries" (Vatic_single.max_bucket_size v))
        vt.Trial.seconds;
      row "bottom-k" (Delphic_core.Bottom_k.estimate bk)
        (Printf.sprintf "%d hashes" (Delphic_core.Bottom_k.k bk))
        bt.Trial.seconds;
      row "HLL" (Delphic_core.Hyperloglog.estimate hll)
        (Printf.sprintf "%d bytes" (Delphic_core.Hyperloglog.registers hll))
        ht.Trial.seconds;
      row "CVM" (Delphic_core.Cvm.estimate cvm)
        (Printf.sprintf "%d buffer" (Delphic_core.Cvm.thresh cvm))
        ct.Trial.seconds;
    ]
  in
  let rows =
    scenario "uniform" (fun gen -> Workload.Singletons.uniform gen ~universe ~count)
    @ scenario "zipf(1.1)" (fun gen ->
          Workload.Singletons.zipf gen ~universe:65536 ~count ~exponent:1.1)
  in
  Table.print
    ~title:
      "E7  Distinct elements, M = 100k singletons (specialised sketches vs general VATIC)"
    ~header:[ "stream"; "method"; "truth"; "estimate"; "rel err"; "space"; "seconds" ]
    rows

(* ------------------------------------------------------------------ E8 *)

let e8_failure_rate () =
  let universe = 1_000_000 in
  let epsilon = 0.25 in
  let gen = Rng.create ~seed:808 in
  let pool = Workload.Ranges.uniform gen ~universe ~count:400 ~max_len:3000 in
  let stream = pick_stream gen ~count:800 pool in
  let truth = float_of_int (Exact.range_union pool) in
  let trials = 120 in
  let rows =
    List.map
      (fun delta ->
        let values =
          Parallel.map
            (fun seed ->
              let t =
                Vatic_range.create ~epsilon ~delta
                  ~log2_universe:(log2f (float_of_int universe))
                  ~seed ()
              in
              List.iter (Vatic_range.process t) stream;
              Vatic_range.estimate t)
            (List.init trials (fun i -> 1700 + i))
        in
        let fail = Trial.failure_rate ~epsilon ~truth values in
        [
          Table.cell_f delta;
          Printf.sprintf "%.3f" fail;
          string_of_int trials;
          (if fail <= delta then "yes" else "NO");
        ])
      [ 0.5; 0.25; 0.1 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E8  Empirical failure rate, eps = %.2f (claim: P[err > eps] <= delta)" epsilon)
    ~header:[ "delta"; "empirical fail"; "trials"; "within bound" ]
    rows

(* ------------------------------------------------------------------ E9 *)

let e9_hypervolume () =
  let dim = 3 and universe = 512 in
  let log2_universe = float_of_int dim *. log2f (float_of_int universe) in
  let gen = Rng.create ~seed:909 in
  let pool = Workload.Hypervolumes.pareto_front gen ~universe ~dim ~count:40 in
  let boxes = List.map Delphic_sets.Hypervolume.to_rectangle pool in
  let stream = pick_stream gen ~count:500 boxes in
  let truth = Bigint.to_float (Exact.rectangle_union boxes) in
  let epsilon = 0.2 and delta = 0.2 in
  let _, err, secs =
    Trial.estimates ~trials:20 ~base_seed:1800 ~truth (fun ~seed ->
        let t = Vatic_rect.create ~epsilon ~delta ~log2_universe ~seed () in
        List.iter (Vatic_rect.process t) stream;
        Vatic_rect.estimate t)
  in
  (* Theorem D.1: EXT-APS-Estimator on the same stream behind a degraded
     oracle. *)
  let alpha = 0.3 and gamma = 0.05 and eta = 0.2 in
  let wrapped = List.map (Wrap_rect.wrap ~alpha ~gamma ~eta) stream in
  let ratios = Summary.create () in
  let inside = ref 0 in
  let trials = 10 in
  let window = ref (0.0, 0.0) in
  for i = 0 to trials - 1 do
    let t =
      Ext_aps_rect.create ~epsilon ~delta ~log2_universe ~alpha ~gamma ~eta
        ~stream_length:(List.length stream) ~seed:(1900 + i) ()
    in
    List.iter (Ext_aps_rect.process t) wrapped;
    window := Ext_aps_rect.window t;
    let lo, hi = !window in
    let est = Ext_aps_rect.estimate t in
    Summary.add ratios (est /. truth);
    if est >= lo *. truth && est <= hi *. truth then incr inside
  done;
  let lo, hi = !window in
  Table.print
    ~title:
      (Printf.sprintf
         "E9  Hypervolume indicator, d = 3, 40-point front, M = 500 (truth = %s)"
         (Table.cell_f truth))
    ~header:[ "method"; "mean err / est-truth ratio"; "extra"; "s/trial" ]
    [
      [ "VATIC"; Table.cell_f (Summary.mean err);
        Printf.sprintf "p95 err %s" (Table.cell_f (Summary.quantile err 0.95));
        Printf.sprintf "%.3f" secs ];
      [ "EXT-APS (Thm D.1)"; Table.cell_f (Summary.mean ratios);
        Printf.sprintf "window [%.2f, %.2f], inside %d/%d" lo hi !inside trials;
        "-" ];
    ]

(* ----------------------------------------------------------------- E10 *)

let e10_union_sampling () =
  let universe = 2000 in
  let gen = Rng.create ~seed:1010 in
  let pool = Workload.Ranges.uniform gen ~universe ~count:25 ~max_len:200 in
  let stream = pick_stream gen ~count:60 pool in
  (* The union's elements, sorted, split into quartiles. *)
  let members =
    List.filter (fun x -> List.exists (fun r -> Range1d.mem r x) pool)
      (List.init universe Fun.id)
  in
  let union_size = List.length members in
  let member_rank = Hashtbl.create union_size in
  List.iteri (fun i x -> Hashtbl.replace member_rank x i) members;
  let sketches = 400 and per_sketch = 2 in
  let counts = Array.make 4 0 in
  let total = ref 0 in
  let out_of_union = ref 0 in
  for i = 0 to sketches - 1 do
    let t =
      Vatic_range.create ~epsilon:0.5 ~delta:0.3
        ~log2_universe:(log2f (float_of_int universe))
        ~seed:(2100 + i) ()
    in
    List.iter (Vatic_range.process t) stream;
    for _ = 1 to per_sketch do
      match Vatic_range.sample_union t with
      | None -> ()
      | Some x ->
        (match Hashtbl.find_opt member_rank x with
        | None -> incr out_of_union
        | Some rank ->
          incr total;
          counts.(rank * 4 / union_size) <- counts.(rank * 4 / union_size) + 1)
    done
  done;
  let expected = float_of_int !total /. 4.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 counts
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E10  Union sampling: %d draws from %d sketches over a %d-element union"
         !total sketches union_size)
    ~header:[ "quartile"; "draws"; "expected" ]
    (List.init 4 (fun q ->
         [ string_of_int (q + 1); string_of_int counts.(q); Table.cell_f expected ]));
  Printf.printf "chi2 = %.2f (p = %.3f, 3 dof), out-of-union draws = %d (must be 0)\n"
    chi2
    (Delphic_util.Special.chi_square_survival ~dof:3 chi2)
    !out_of_union

(* ----------------------------------------------------------------- E11 *)

let e11_order_robustness () =
  (* The key structural property behind M-independence: survival of an
     element depends only on its last occurrence, so the estimator's
     accuracy must be oblivious to arrival order and duplication pattern. *)
  let universe = 1_000_000 in
  let gen = Rng.create ~seed:1414 in
  let pool = Workload.Ranges.uniform gen ~universe ~count:250 ~max_len:4000 in
  let truth = float_of_int (Exact.range_union pool) in
  let size r = float_of_int (Range1d.length r) in
  let orderings =
    [
      ("pool order", pool);
      ("shuffled", Workload.Orders.shuffled (Rng.create ~seed:1) pool);
      ("small sets first", Workload.Orders.sorted_by size pool);
      ("large sets first", Workload.Orders.sorted_by_desc size pool);
      ("bursty x8", Workload.Orders.bursty ~copies:8 pool);
      ("whole pool x8", Workload.Orders.interleaved ~copies:8 pool);
    ]
  in
  let rows =
    List.map
      (fun (label, stream) ->
        let err = Summary.create () in
        for i = 0 to 14 do
          let t =
            Vatic_range.create ~epsilon:0.25 ~delta:0.2
              ~log2_universe:(log2f (float_of_int universe))
              ~seed:(6000 + i) ()
          in
          List.iter (Vatic_range.process t) stream;
          Summary.add err
            (Summary.relative_error ~estimate:(Vatic_range.estimate t) ~truth)
        done;
        [
          label;
          string_of_int (List.length stream);
          Table.cell_f (Summary.mean err);
          Table.cell_f (Summary.quantile err 0.95);
        ])
      orderings
  in
  Table.print
    ~title:
      "E11  Order robustness: same pool, different arrival orders (claim: error is order-oblivious)"
    ~header:[ "ordering"; "M"; "mean err"; "p95 err" ]
    rows

(* ----------------------------------------------------------------- E12 *)

let e12_sampling_vs_hashing () =
  (* Related-work comparison: the paper's sampling route (oracle queries
     only) vs the [32]-style XOR-hashing route (needs affine structure).
     On DNF both apply; the sampling route also covers boxes, coverage
     sets, Hamming balls, where no XOR hash exists. *)
  let nvars = 26 and width = 8 in
  let gen = Rng.create ~seed:1616 in
  let pool = Workload.Dnf_terms.random gen ~nvars ~count:150 ~width in
  let stream = pick_stream gen ~count:400 pool in
  let truth = Bigint.to_float (Exact.dnf_count ~nvars pool) in
  let epsilon = 0.2 and delta = 0.2 in
  let run_vatic ~seed =
    let t =
      Vatic_dnf.create ~epsilon ~delta ~log2_universe:(float_of_int nvars) ~seed ()
    in
    List.iter (Vatic_dnf.process t) stream;
    (Vatic_dnf.estimate t, Vatic_dnf.max_bucket_size t)
  in
  let run_xor ~seed =
    let t = Xs_dnf.create ~epsilon ~delta ~nvars ~seed () in
    List.iter (Xs_dnf.process t) stream;
    (Xs_dnf.estimate t, Xs_dnf.max_store_size t)
  in
  let measure name run =
    let err = Summary.create () and space = Summary.create () in
    let secs = ref 0.0 in
    let trials = 12 in
    for i = 0 to trials - 1 do
      let { Trial.value = est, bucket; seconds } =
        Trial.timed (fun () -> run ~seed:(6400 + i))
      in
      secs := !secs +. seconds;
      Summary.add err (Summary.relative_error ~estimate:est ~truth);
      Summary.add space (float_of_int bucket)
    done;
    [
      name;
      Table.cell_f (Summary.mean err);
      Table.cell_f (Summary.quantile err 0.95);
      Table.cell_f (Summary.mean space);
      Printf.sprintf "%.3f" (!secs /. float_of_int trials);
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E12  Sampling route (VATIC) vs hashing route ([32]-style XOR sketch) on DNF (n = %d, truth = %s)"
         nvars (Table.cell_f truth))
    ~header:[ "method"; "mean err"; "p95 err"; "mean space"; "s/trial" ]
    [ measure "VATIC (oracle sampling)" run_vatic;
      measure "XOR sketch (hashing)" run_xor ];
  print_endline
    "note: the hashing route requires XOR-structured families (DNF, affine spaces);\nthe sampling route needs only the three Delphic queries and covers all families."

(* ----------------------------------------------------------------- E13 *)

let e13_throughput () =
  (* One engineering-facing table: sustained items/second per family at
     default practical parameters — the number a prospective user asks for
     first. *)
  let epsilon = 0.25 and delta = 0.2 in
  let measure name process_all =
    let { Trial.seconds; value = items } = Trial.timed process_all in
    [ name; string_of_int items; Table.cell_f (float_of_int items /. seconds);
      Printf.sprintf "%.2f" (seconds *. 1e6 /. float_of_int items) ]
  in
  let gen = Rng.create ~seed:1717 in
  let rows =
    [
      (let pool =
         pick_stream gen ~count:5000
           (Workload.Ranges.uniform gen ~universe:1_000_000 ~count:300 ~max_len:4000)
       in
       let t = Vatic_range.create ~epsilon ~delta ~log2_universe:20.0 ~seed:1 () in
       measure "1-d ranges" (fun () ->
           List.iter (Vatic_range.process t) pool;
           List.length pool));
      (let pool =
         pick_stream gen ~count:3000
           (Workload.Rectangles.uniform gen ~universe:1_000_000 ~dim:2 ~count:200
              ~max_side:60_000)
       in
       let t = Vatic_rect.create ~epsilon ~delta ~log2_universe:40.0 ~seed:2 () in
       measure "2-d boxes (KMP)" (fun () ->
           List.iter (Vatic_rect.process t) pool;
           List.length pool));
      (let pool =
         pick_stream gen ~count:3000
           (Workload.Dnf_terms.random gen ~nvars:40 ~count:200 ~width:10)
       in
       let t = Vatic_dnf.create ~epsilon ~delta ~log2_universe:40.0 ~seed:3 () in
       measure "DNF terms (n=40)" (fun () ->
           List.iter (Vatic_dnf.process t) pool;
           List.length pool));
      (let pool = Workload.Singletons.uniform gen ~universe:(1 lsl 20) ~count:30_000 in
       let t = Vatic_single.create ~epsilon ~delta ~log2_universe:20.0 ~seed:4 () in
       measure "singletons" (fun () ->
           List.iter (Vatic_single.process t) pool;
           List.length pool));
    ]
  in
  Table.print
    ~title:"E13  Sustained throughput per family (practical constants, eps = 0.25)"
    ~header:[ "family"; "items"; "items/s"; "us/item" ]
    rows

(* ------------------------------------------------------------- ablations *)

(* A1: the bucket-capacity constant.  DESIGN.md flags the paper's leading
   "6" as a proof artefact; sweep it and watch error vs space trade off. *)
let a1_capacity_ablation () =
  let universe = 1_000_000 in
  let gen = Rng.create ~seed:1111 in
  let pool = Workload.Ranges.uniform gen ~universe ~count:300 ~max_len:4000 in
  let stream = pick_stream gen ~count:1000 pool in
  let truth = float_of_int (Exact.range_union pool) in
  let epsilon = 0.25 and delta = 0.2 in
  let rows =
    List.map
      (fun capacity_scale ->
        let err = Summary.create () and bucket = Summary.create () in
        for i = 0 to 19 do
          let t =
            Vatic_range.create ~capacity_scale ~epsilon ~delta
              ~log2_universe:(log2f (float_of_int universe))
              ~seed:(5000 + i) ()
          in
          List.iter (Vatic_range.process t) stream;
          Summary.add err
            (Summary.relative_error ~estimate:(Vatic_range.estimate t) ~truth);
          Summary.add bucket (float_of_int (Vatic_range.max_bucket_size t))
        done;
        [
          Table.cell_f capacity_scale;
          Table.cell_f (Summary.mean err);
          Table.cell_f (Summary.quantile err 0.95);
          Table.cell_f (Summary.mean bucket);
        ])
      [ 1.0; 2.0; 6.0; 12.0 ]
  in
  Table.print
    ~title:
      "A1  Bucket-capacity constant ablation (paper: 6; eps = 0.25, delta = 0.2, 20 trials)"
    ~header:[ "capacity scale"; "mean err"; "p95 err"; "mean max|X|" ]
    rows

(* A2: the coupon-collector budget constant in K_i.  Starving the distinct-
   draw loop makes per-set sampling fall short of Bin(|S|,p), biasing the
   estimate low — the experiment quantifies how much margin the paper's 4
   buys. *)
let a2_coupon_ablation () =
  let universe = 1_000_000 in
  let gen = Rng.create ~seed:1212 in
  let pool = Workload.Ranges.uniform gen ~universe ~count:300 ~max_len:4000 in
  let stream = pick_stream gen ~count:1000 pool in
  let truth = float_of_int (Exact.range_union pool) in
  let rows =
    List.map
      (fun coupon_scale ->
        let err = Summary.create () in
        let ratio = Summary.create () in
        for i = 0 to 14 do
          let t =
            Vatic_range.create ~coupon_scale ~epsilon:0.25 ~delta:0.2
              ~log2_universe:(log2f (float_of_int universe))
              ~seed:(5200 + i) ()
          in
          List.iter (Vatic_range.process t) stream;
          let est = Vatic_range.estimate t in
          Summary.add err (Summary.relative_error ~estimate:est ~truth);
          Summary.add ratio (est /. truth)
        done;
        [
          Table.cell_f coupon_scale;
          Table.cell_f (Summary.mean err);
          Table.cell_f (Summary.mean ratio);
        ])
      [ 0.05; 0.25; 1.0; 4.0 ]
  in
  Table.print
    ~title:
      "A2  Coupon-collector budget ablation (paper: 4; small budgets bias the estimate low)"
    ~header:[ "coupon scale"; "mean err"; "mean est/truth" ]
    rows

(* A3: paper-mode vs practical-mode constants at identical (eps, delta). *)
let a3_mode_comparison () =
  let universe = 1_000_000 in
  let gen = Rng.create ~seed:1313 in
  let pool = Workload.Ranges.uniform gen ~universe ~count:200 ~max_len:4000 in
  let stream = pick_stream gen ~count:600 pool in
  let truth = float_of_int (Exact.range_union pool) in
  let rows =
    List.map
      (fun (label, mode) ->
        let err = Summary.create () and bucket = Summary.create () in
        let secs = ref 0.0 in
        let trials = 5 in
        for i = 0 to trials - 1 do
          let t =
            Vatic_range.create ~mode ~epsilon:0.33 ~delta:0.2
              ~log2_universe:(log2f (float_of_int universe))
              ~seed:(5400 + i) ()
          in
          let { Trial.seconds; _ } =
            Trial.timed (fun () -> List.iter (Vatic_range.process t) stream)
          in
          secs := !secs +. seconds;
          Summary.add err
            (Summary.relative_error ~estimate:(Vatic_range.estimate t) ~truth);
          Summary.add bucket (float_of_int (Vatic_range.max_bucket_size t))
        done;
        [
          label;
          Table.cell_f (Summary.mean err);
          Table.cell_f (Summary.mean bucket);
          Printf.sprintf "%.3f" (!secs /. float_of_int trials);
        ])
      [ ("practical (default)", Delphic_core.Params.Practical);
        ("paper constants", Delphic_core.Params.Paper) ]
  in
  Table.print
    ~title:"A3  Paper vs practical constants (eps = 0.33, delta = 0.2, same stream)"
    ~header:[ "mode"; "mean err"; "mean max|X|"; "s/trial" ]
    rows

(* A4: the final resampling step.  Footnote 5 of the paper notes the
   natural estimator is the Horvitz-Thompson sum; the published algorithm
   resamples to p_0 only for proof convenience.  Compare their spreads. *)
let a4_estimator_variant () =
  let universe = 1_000_000 in
  let gen = Rng.create ~seed:1515 in
  let pool = Workload.Ranges.uniform gen ~universe ~count:300 ~max_len:4000 in
  let stream = pick_stream gen ~count:1000 pool in
  let truth = float_of_int (Exact.range_union pool) in
  let resampled = Summary.create () and ht = Summary.create () in
  for i = 0 to 29 do
    let t =
      Vatic_range.create ~epsilon:0.25 ~delta:0.2
        ~log2_universe:(log2f (float_of_int universe))
        ~seed:(6200 + i) ()
    in
    List.iter (Vatic_range.process t) stream;
    Summary.add resampled
      (Summary.relative_error ~estimate:(Vatic_range.estimate t) ~truth);
    Summary.add ht
      (Summary.relative_error
         ~estimate:(Vatic_range.estimate_horvitz_thompson t)
         ~truth)
  done;
  Table.print
    ~title:
      "A4  Final resampling (Algorithm 1 lines 18-21) vs direct Horvitz-Thompson sum (footnote 5)"
    ~header:[ "estimator"; "mean err"; "p95 err"; "err stddev" ]
    [
      [ "resampled |X|/p0 (paper)"; Table.cell_f (Summary.mean resampled);
        Table.cell_f (Summary.quantile resampled 0.95);
        Table.cell_f (Summary.stddev resampled) ];
      [ "Horvitz-Thompson sum"; Table.cell_f (Summary.mean ht);
        Table.cell_f (Summary.quantile ht 0.95); Table.cell_f (Summary.stddev ht) ];
    ]

(* ------------------------------------------------------------------ -- *)

let all =
  [
    ("E1", "VATIC accuracy on streaming KMP (Thm 1.2)", e1_accuracy_kmp);
    ("E2", "space vs stream length: VATIC vs APS (log M gap)", e2_space_vs_stream_length);
    ("E3", "update time vs d and M (Thm 1.2)", e3_update_time);
    ("E4", "DNF counting vs Karp-Luby vs exact BDD", e4_dnf_counting);
    ("E5", "EXT-VATIC window compliance (Thm 1.5)", e5_ext_vatic);
    ("E6", "t-wise coverage estimation", e6_test_coverage);
    ("E7", "distinct elements vs specialised sketches", e7_distinct_elements);
    ("E8", "empirical failure rate <= delta", e8_failure_rate);
    ("E9", "hypervolume indicator; EXT-APS (Thm D.1)", e9_hypervolume);
    ("E10", "approximate-uniform union sampling", e10_union_sampling);
    ("E11", "order robustness of the estimator", e11_order_robustness);
    ("E12", "sampling (VATIC) vs hashing ([32]) routes on DNF", e12_sampling_vs_hashing);
    ("E13", "sustained throughput per family", e13_throughput);
    ("A1", "ablation: bucket-capacity constant", a1_capacity_ablation);
    ("A2", "ablation: coupon-collector budget", a2_coupon_ablation);
    ("A3", "ablation: paper vs practical constants", a3_mode_comparison);
    ("A4", "ablation: resampled vs Horvitz-Thompson estimator", a4_estimator_variant);
  ]

let run id =
  let _, _, f =
    List.find (fun (name, _, _) -> String.lowercase_ascii name = String.lowercase_ascii id) all
  in
  f ()

let run_all () =
  List.iter
    (fun (id, descr, f) ->
      Printf.printf "\n[%s] %s\n" id descr;
      f ())
    all
