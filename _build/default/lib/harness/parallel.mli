(** Multicore trial execution (OCaml 5 domains).

    Experiment trials are embarrassingly parallel — each builds its own
    estimator from its own seed — so the accuracy/failure-rate experiments
    fan them out across domains.  Only use with a function that touches no
    shared mutable state (every estimator in this library is
    self-contained). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [domains] defaults to
    [min 4 (recommended_domain_count - 1)], and the list is split into that
    many contiguous chunks.  Falls back to [List.map] for a single domain
    or short lists.  Exceptions in the worker re-raise in the caller. *)

val default_domains : unit -> int
