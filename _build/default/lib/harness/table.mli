(** Fixed-width text tables for experiment output. *)

val render : header:string list -> string list list -> string
(** Render rows under a header with aligned columns. *)

val print : ?title:string -> header:string list -> string list list -> unit
(** [render] to stdout, with an optional underlined title. *)

val cell_f : float -> string
(** Compact float formatting ("1.23e+06" style only when needed). *)

val cell_i : int -> string

val set_output : [ `Text | `Csv ] -> unit
(** Global output format used by {!print}: aligned text (default) or CSV
    rows (for piping experiment results into other tools). *)
