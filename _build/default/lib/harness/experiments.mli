(** The experiment suite E1–E10 defined in DESIGN.md §5 / EXPERIMENTS.md.

    The paper is a theory paper with no empirical tables, so each experiment
    operationalises one quantitative claim (Theorems 1.2, 1.5, D.1, the
    related-work comparisons, and the conclusion's sampling remark) and
    prints the table recorded in EXPERIMENTS.md. *)

val e1_accuracy_kmp : unit -> unit
(** Theorem 1.2 accuracy on streaming Klee's Measure Problem. *)

val e2_space_vs_stream_length : unit -> unit
(** VATIC's bucket is flat in M; APS-Estimator's capacity grows with ln M. *)

val e3_update_time : unit -> unit
(** Per-item time/oracle calls: flat in M, polynomial in d. *)

val e4_dnf_counting : unit -> unit
(** Streaming DNF model counting vs Karp–Luby vs exact (BDD). *)

val e5_ext_vatic : unit -> unit
(** Theorem 1.5: EXT-VATIC lands in its (α, η)-widened window. *)

val e6_test_coverage : unit -> unit
(** t-wise coverage estimation vs exact enumeration. *)

val e7_distinct_elements : unit -> unit
(** VATIC on singletons vs bottom-k and HyperLogLog. *)

val e8_failure_rate : unit -> unit
(** Empirical failure probability ≤ δ across δ values. *)

val e9_hypervolume : unit -> unit
(** Hypervolume-indicator estimation; EXT-APS-Estimator (Theorem D.1) on
    the same stream. *)

val e10_union_sampling : unit -> unit
(** Approximate-uniform sampling from the union (conclusion remark). *)

val e11_order_robustness : unit -> unit
(** Same pool under different arrival orders and duplication patterns:
    accuracy must be order-oblivious (the last-occurrence property). *)

val e12_sampling_vs_hashing : unit -> unit
(** The paper's sampling route vs the reference-[32] XOR-hashing route on a
    DNF stream (the hashing route needs affine structure; sampling needs
    only the Delphic queries). *)

val e13_throughput : unit -> unit
(** Sustained items/second per family at default parameters. *)

val a1_capacity_ablation : unit -> unit
(** Ablation: sweep the bucket-capacity constant (paper: 6). *)

val a2_coupon_ablation : unit -> unit
(** Ablation: sweep the coupon-collector budget constant (paper: 4);
    starved budgets bias the estimator low. *)

val a3_mode_comparison : unit -> unit
(** Paper-mode vs practical-mode constants at identical (ε, δ). *)

val a4_estimator_variant : unit -> unit
(** Final resampling (paper) vs the direct Horvitz–Thompson sum
    (footnote 5). *)

val all : (string * string * (unit -> unit)) list
(** [(id, description, run)] for every experiment, in order. *)

val run : string -> unit
(** Run one experiment by id (e.g. "E4"); raises [Not_found] on unknown
    ids. *)

val run_all : unit -> unit
