let default_domains () =
  Stdlib.max 1 (Stdlib.min 4 (Domain.recommended_domain_count () - 1))

let map ?domains f items =
  let domains = match domains with Some d -> Stdlib.max 1 d | None -> default_domains () in
  let n = List.length items in
  if domains = 1 || n <= 1 then List.map f items
  else begin
    let items = Array.of_list items in
    let chunks = Stdlib.min domains n in
    (* Contiguous slices [lo, hi) per domain. *)
    let bounds =
      Array.init chunks (fun i ->
          let lo = i * n / chunks and hi = (i + 1) * n / chunks in
          (lo, hi))
    in
    let workers =
      Array.map
        (fun (lo, hi) ->
          Domain.spawn (fun () -> Array.init (hi - lo) (fun j -> f items.(lo + j))))
        bounds
    in
    let results = Array.map Domain.join workers in
    Array.to_list (Array.concat (Array.to_list results))
  end
