lib/stream/workload.mli: Delphic_sets Delphic_util
