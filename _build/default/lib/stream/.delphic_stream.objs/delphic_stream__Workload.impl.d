lib/stream/workload.ml: Array Delphic_sets Delphic_util Float List Stdlib
