lib/stream/parsers.mli: Delphic_sets Delphic_util
