lib/stream/parsers.ml: Array Delphic_sets Delphic_util Fun List Printexc Printf String
