(** Text-format parsers for streaming inputs from files.

    Formats are line-oriented, one set per line, [#]-comments and blank
    lines skipped:

    - {b boxes}: [lo1 hi1 lo2 hi2 ...] — an axis-parallel box (even number
      of fields, all dimensions consistent within a file);
    - {b DNF terms}: DIMACS-style signed variable list, e.g. [1 -3 5] for
      [x1 ∧ ¬x3 ∧ x5] (1-based; the variable count is supplied by the
      caller);
    - {b test vectors}: ['0']/['1'] strings, e.g. [0110101].

    All parsers raise [Failure] with a line number on malformed input.
    The [_of_file] variants accept ["-"] for stdin, so streams pipe
    straight into the CLI. *)

val rectangles_of_channel : in_channel -> Delphic_sets.Rectangle.t list

val rectangles_of_file : string -> Delphic_sets.Rectangle.t list

val dnf_of_channel : nvars:int -> in_channel -> Delphic_sets.Dnf.t list

val dnf_of_file : nvars:int -> string -> Delphic_sets.Dnf.t list

val vectors_of_channel : in_channel -> Delphic_util.Bitvec.t list

val vectors_of_file : string -> Delphic_util.Bitvec.t list
