module Bitvec = Delphic_util.Bitvec
module Rectangle = Delphic_sets.Rectangle
module Dnf = Delphic_sets.Dnf

let fold_lines channel f =
  let rec loop acc lineno =
    match input_line channel with
    | exception End_of_file -> List.rev acc
    | line ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then loop acc (lineno + 1)
      else loop (f lineno trimmed :: acc) (lineno + 1)
  in
  loop [] 1

let with_file path f =
  if path = "-" then f stdin
  else begin
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)
  end

let fields line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_int ~lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "line %d: not an integer: %s" lineno s)

let rectangles_of_channel channel =
  let dims = ref (-1) in
  fold_lines channel (fun lineno line ->
      let values = List.map (parse_int ~lineno) (fields line) in
      let n = List.length values in
      if n = 0 || n mod 2 <> 0 then
        failwith (Printf.sprintf "line %d: need an even, positive number of fields" lineno);
      if !dims = -1 then dims := n / 2
      else if !dims <> n / 2 then
        failwith (Printf.sprintf "line %d: dimension %d but file started with %d" lineno (n / 2) !dims);
      let a = Array.of_list values in
      let d = n / 2 in
      match
        Rectangle.create
          ~lo:(Array.init d (fun i -> a.(2 * i)))
          ~hi:(Array.init d (fun i -> a.((2 * i) + 1)))
      with
      | box -> box
      | exception Invalid_argument msg ->
        failwith (Printf.sprintf "line %d: %s" lineno msg))

let dnf_of_channel ~nvars channel =
  fold_lines channel (fun lineno line ->
      let lits =
        List.map
          (fun s ->
            let v = parse_int ~lineno s in
            if v = 0 then failwith (Printf.sprintf "line %d: 0 is not a literal" lineno);
            { Dnf.var = abs v - 1; positive = v > 0 })
          (fields line)
      in
      match Dnf.create ~nvars lits with
      | term -> term
      | exception Invalid_argument msg ->
        failwith (Printf.sprintf "line %d: %s" lineno msg))

let vectors_of_channel channel =
  fold_lines channel (fun lineno line ->
      match Bitvec.of_string line with
      | v -> v
      | exception Invalid_argument msg ->
        failwith (Printf.sprintf "line %d: %s" lineno msg))

let rectangles_of_file path = with_file path rectangles_of_channel
let dnf_of_file ~nvars path = with_file path (dnf_of_channel ~nvars)
let vectors_of_file path = with_file path vectors_of_channel
