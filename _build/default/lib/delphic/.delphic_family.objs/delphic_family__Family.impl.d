lib/delphic/family.ml: Delphic_util Format
