(* Surviving a restart mid-stream with sketch checkpointing.

   A VATIC sketch is a few thousand (element, level) pairs plus its
   parameters: Vatic.snapshot captures it, Vatic.restore resumes it — here
   across a simulated crash halfway through a day of box traffic.

   Run with:  dune exec examples/checkpointing.exe *)

module Rectangle = Delphic_sets.Rectangle
module Vatic = Delphic_core.Vatic.Make (Rectangle)
module Workload = Delphic_stream.Workload

let () =
  let universe = 1_000_000 and dim = 2 in
  let log2_universe = 2.0 *. (log (float_of_int universe) /. log 2.0) in
  let rng = Delphic_util.Rng.create ~seed:4242 in
  let pool = Workload.Rectangles.uniform rng ~universe ~dim ~count:200 ~max_side:50_000 in
  let day =
    List.init 4000 (fun _ -> List.nth pool (Delphic_util.Rng.int rng 200))
  in
  let morning = List.filteri (fun i _ -> i < 2000) day in
  let afternoon = List.filteri (fun i _ -> i >= 2000) day in

  (* Process the morning, checkpoint, "crash". *)
  let before = Vatic.create ~epsilon:0.15 ~delta:0.1 ~log2_universe ~seed:1 () in
  List.iter (Vatic.process before) morning;
  let checkpoint = Vatic.snapshot before in
  Printf.printf "checkpoint after %d items: %d sketch entries\n"
    checkpoint.Vatic.items
    (List.length checkpoint.Vatic.entries);

  (* A new process restores and finishes the day. *)
  let resumed = Vatic.restore checkpoint ~seed:99 in
  List.iter (Vatic.process resumed) afternoon;

  (* An uninterrupted run for comparison. *)
  let uninterrupted = Vatic.create ~epsilon:0.15 ~delta:0.1 ~log2_universe ~seed:1 () in
  List.iter (Vatic.process uninterrupted) day;

  let exact = Delphic_util.Bigint.to_float (Delphic_sets.Exact.rectangle_union pool) in
  let show name v =
    Printf.printf "%-24s %.6g  (rel.err %.4f)\n" name v
      (Float.abs (v -. exact) /. exact)
  in
  Printf.printf "exact union volume:      %.6g\n" exact;
  show "resumed estimate:" (Vatic.estimate resumed);
  show "uninterrupted estimate:" (Vatic.estimate uninterrupted)
