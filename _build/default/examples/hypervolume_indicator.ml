(* Hypervolume-indicator tracking for multi-objective optimisation
   (Section 6.1): the quality of a Pareto front is the volume its points
   dominate.  As an evolutionary algorithm emits candidate points, VATIC
   maintains the dominated-volume estimate in a single pass — points may
   repeat or be dominated; neither matters to the sketch.

   Run with:  dune exec examples/hypervolume_indicator.exe *)

module Hypervolume = Delphic_sets.Hypervolume
module Vatic = Delphic_core.Vatic.Make (Hypervolume)
module Workload = Delphic_stream.Workload
module Bigint = Delphic_util.Bigint

let () =
  let dim = 3 and universe = 1024 in
  let log2_universe = float_of_int dim *. (log (float_of_int universe) /. log 2.0) in
  let rng = Delphic_util.Rng.create ~seed:31 in
  let estimator = Vatic.create ~epsilon:0.15 ~delta:0.1 ~log2_universe ~seed:13 () in

  Printf.printf "3-objective hypervolume tracking over [0,%d)^%d\n" universe dim;
  Printf.printf "%10s  %16s  %16s  %9s\n" "generation" "estimated HV" "exact HV" "rel.err";
  let seen = ref [] in
  (* Five "generations" of 12 candidate points each. *)
  for generation = 1 to 5 do
    let front = Workload.Hypervolumes.pareto_front rng ~universe ~dim ~count:12 in
    List.iter
      (fun p ->
        seen := Hypervolume.to_rectangle p :: !seen;
        Vatic.process estimator p)
      front;
    let estimate = Vatic.estimate estimator in
    let exact = Bigint.to_float (Delphic_sets.Exact.rectangle_union !seen) in
    Printf.printf "%10d  %16.0f  %16.0f  %9.4f\n" generation estimate exact
      (Float.abs (estimate -. exact) /. exact)
  done;
  Printf.printf "sketch size stayed at %d entries across all generations\n"
    (Vatic.max_bucket_size estimator)
