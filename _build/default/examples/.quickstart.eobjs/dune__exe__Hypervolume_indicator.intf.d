examples/hypervolume_indicator.mli:
