examples/xor_streams.ml: Delphic_core Delphic_sets Delphic_util List Printf
