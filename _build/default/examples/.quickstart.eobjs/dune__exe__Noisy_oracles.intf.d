examples/noisy_oracles.mli:
