examples/near_duplicates.mli:
