examples/klee_measure.mli:
