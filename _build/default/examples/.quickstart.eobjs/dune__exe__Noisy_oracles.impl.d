examples/noisy_oracles.ml: Delphic_core Delphic_sets Delphic_stream Delphic_util Float List Printf
