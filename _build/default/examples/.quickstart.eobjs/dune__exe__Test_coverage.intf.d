examples/test_coverage.mli:
