examples/hypervolume_indicator.ml: Delphic_core Delphic_sets Delphic_stream Delphic_util Float List Printf
