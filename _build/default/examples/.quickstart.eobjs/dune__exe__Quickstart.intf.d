examples/quickstart.mli:
