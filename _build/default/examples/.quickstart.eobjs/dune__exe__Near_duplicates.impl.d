examples/near_duplicates.ml: Delphic_core Delphic_sets Delphic_util Float List Printf
