examples/xor_streams.mli:
