examples/dnf_counting.mli:
