examples/checkpointing.mli:
