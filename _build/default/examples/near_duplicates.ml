(* Near-duplicate neighbourhood sizing with Hamming balls.

   Fingerprint deduplication asks: how many n-bit strings lie within
   Hamming distance r of {e any} reference fingerprint?  Each reference's
   neighbourhood is a Hamming ball — a Delphic set — so the union size
   streams through VATIC, with exact enumeration as the check at this
   scale.

   Run with:  dune exec examples/near_duplicates.exe *)

module Ball = Delphic_sets.Hamming_ball
module Vatic = Delphic_core.Vatic.Make (Ball)
module Bitvec = Delphic_util.Bitvec

let () =
  let nbits = 20 and radius = 2 and references = 60 in
  let rng = Delphic_util.Rng.create ~seed:8080 in
  let balls =
    List.init references (fun _ ->
        Ball.create ~center:(Bitvec.random rng ~width:nbits) ~radius)
  in

  let estimator =
    Vatic.create ~epsilon:0.15 ~delta:0.1 ~log2_universe:(float_of_int nbits)
      ~seed:3 ()
  in
  List.iter (Vatic.process estimator) balls;
  let estimate = Vatic.estimate estimator in

  (* Exact check by scanning the 2^20 universe. *)
  let exact = ref 0 in
  let v = Bitvec.create ~width:nbits in
  for x = 0 to (1 lsl nbits) - 1 do
    for i = 0 to nbits - 1 do
      Bitvec.set v i ((x lsr i) land 1 = 1)
    done;
    if List.exists (fun b -> Ball.mem b v) balls then incr exact
  done;

  let per_ball = Delphic_util.Bigint.to_float (Ball.cardinality (List.hd balls)) in
  Printf.printf "%d reference fingerprints, %d bits, radius %d (%.0f strings per ball)\n"
    references nbits radius per_ball;
  Printf.printf "estimated near-duplicate region: %.6g\n" estimate;
  Printf.printf "exact:                           %d  (rel.err %.4f)\n" !exact
    (Float.abs (estimate -. float_of_int !exact) /. float_of_int !exact);
  Printf.printf "overlap saved %.1f%% vs summing ball sizes\n"
    (100.0 *. (1.0 -. (float_of_int !exact /. (per_ball *. float_of_int references))))
