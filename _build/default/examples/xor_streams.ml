(* Unions of XOR-constraint solution spaces.

   Each stream item is an affine subspace of GF(2)^n — the solution set of a
   random system of parity constraints, the structure at the heart of
   hashing-based model counters.  The family is exactly Delphic (cardinality
   2^(n - rank), uniform sampling via the null-space basis), so VATIC
   estimates the size of the union of many such spaces in one pass.

   Run with:  dune exec examples/xor_streams.exe *)

module Bitvec = Delphic_util.Bitvec
module Gf2 = Delphic_util.Gf2
module Rng = Delphic_util.Rng
module Affine = Delphic_sets.Affine_subspace
module Vatic = Delphic_core.Vatic.Make (Affine)

let random_system rng ~nvars ~rows =
  let row () =
    { Gf2.coeffs = Bitvec.random rng ~width:nvars; rhs = Rng.bool rng }
  in
  Affine.create_opt ~nvars (List.init rows (fun _ -> row ()))

let () =
  let nvars = 48 in
  let rng = Rng.create ~seed:2718 in
  (* 400 random systems of 36-40 constraints each: every solution space has
     between 2^8 and 2^12 points; their union is unknown a priori. *)
  let stream = ref [] in
  while List.length !stream < 400 do
    match random_system rng ~nvars ~rows:(36 + Rng.int rng 5) with
    | Some s -> stream := s :: !stream
    | None -> () (* inconsistent system: empty set, skip *)
  done;

  let estimator =
    Vatic.create ~epsilon:0.1 ~delta:0.1 ~log2_universe:(float_of_int nvars)
      ~seed:42 ()
  in
  List.iter (Vatic.process estimator) !stream;

  (* Inclusion-exclusion over 400 subspaces is hopeless; as a sanity anchor,
     compare against the sum of cardinalities (an upper bound, tight when
     overlaps are rare — random subspaces of dimension <= 12 in GF(2)^48
     almost never intersect). *)
  let total =
    List.fold_left
      (fun acc s -> acc +. Delphic_util.Bigint.to_float (Affine.cardinality s))
      0.0 !stream
  in
  Printf.printf "union of %d affine subspaces of GF(2)^%d\n" (List.length !stream) nvars;
  Printf.printf "estimated union size:      %.6g\n" (Vatic.estimate estimator);
  Printf.printf "sum of cardinalities:      %.6g  (upper bound, ~tight here)\n" total;
  Printf.printf "sketch: max %d elements, %d sets skipped\n"
    (Vatic.max_bucket_size estimator)
    (Vatic.skipped_sets estimator)
