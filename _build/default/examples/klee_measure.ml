(* Streaming Klee's Measure Problem: the union volume of axis-parallel boxes
   arriving one at a time, across qualitatively different spatial workloads.

   Demonstrates that one estimator handles scattered, clustered, nested and
   sliding-window box streams alike, and that the sketch never grows with
   the stream.

   Run with:  dune exec examples/klee_measure.exe *)

module Rectangle = Delphic_sets.Rectangle
module Vatic = Delphic_core.Vatic.Make (Rectangle)
module Workload = Delphic_stream.Workload

let universe = 100_000
let dim = 2
let log2_universe = float_of_int dim *. (log (float_of_int universe) /. log 2.0)

let run name boxes =
  let estimator = Vatic.create ~epsilon:0.15 ~delta:0.1 ~log2_universe ~seed:11 () in
  List.iter (Vatic.process estimator) boxes;
  let estimate = Vatic.estimate estimator in
  let exact = Delphic_util.Bigint.to_float (Delphic_sets.Exact.rectangle_union boxes) in
  Printf.printf "%-10s  M=%4d  exact=%.5g  estimate=%.5g  rel.err=%.3f  max|X|=%d\n"
    name (List.length boxes) exact estimate
    (Float.abs (estimate -. exact) /. exact)
    (Vatic.max_bucket_size estimator)

let () =
  let rng = Delphic_util.Rng.create ~seed:99 in
  run "uniform"
    (Workload.Rectangles.uniform rng ~universe ~dim ~count:120 ~max_side:8000);
  run "clustered"
    (Workload.Rectangles.clustered rng ~universe ~dim ~count:120 ~clusters:5
       ~spread:3000 ~max_side:5000);
  run "nested" (Workload.Rectangles.nested rng ~universe ~dim ~count:120);
  run "sliding"
    (Workload.Rectangles.sliding rng ~universe ~dim ~count:120 ~max_side:6000)
