(* t-wise test coverage estimation (Section 6.1): as test vectors stream in,
   track how much of the space of (position-set, pattern) interactions the
   suite has exercised — the quantity combinatorial-testing tools report.

   The estimator is queried mid-stream, giving a live coverage curve.

   Run with:  dune exec examples/test_coverage.exe *)

module Coverage = Delphic_sets.Coverage
module Vatic = Delphic_core.Vatic.Make (Coverage)
module Workload = Delphic_stream.Workload
module Bigint = Delphic_util.Bigint

let () =
  let nbits = 24 and strength = 3 in
  let rng = Delphic_util.Rng.create ~seed:77 in
  let vectors = Workload.Coverage_suites.random rng ~nbits ~count:200 ~bias:0.35 in
  let stream = Workload.Coverage_suites.coverage_sets ~strength vectors in

  let universe = Coverage.universe_size ~n:nbits ~strength in
  let estimator =
    Vatic.create ~epsilon:0.1 ~delta:0.1 ~log2_universe:(Bigint.log2 universe)
      ~seed:5 ()
  in

  Printf.printf
    "%d-wise coverage of %d-bit test vectors; universe = %s interactions\n"
    strength nbits (Bigint.to_string universe);
  Printf.printf "%8s  %14s  %14s  %9s\n" "vectors" "estimated" "exact" "rel.err";
  List.iteri
    (fun i set ->
      Vatic.process estimator set;
      let processed = i + 1 in
      if processed mod 40 = 0 then begin
        let estimate = Vatic.estimate estimator in
        let exact =
          Bigint.to_float
            (Delphic_sets.Exact.coverage_union ~strength
               (List.filteri (fun j _ -> j < processed) vectors))
        in
        Printf.printf "%8d  %14.0f  %14.0f  %9.4f\n" processed estimate exact
          (Float.abs (estimate -. exact) /. exact)
      end)
    stream
