(* Estimating through genuinely approximate oracles (EXT-VATIC, Theorem 1.5).

   Stream items are knapsack solution sets whose counting DP has been
   deliberately rounded to a few significant bits — a real
   (alpha, 0, eta)-Approximate-Delphic oracle with provable parameter
   bounds, standing in for the paper's #P-hard applications (convex bodies,
   circuits) where exact counting is impossible.

   Run with:  dune exec examples/noisy_oracles.exe *)

module Knapsack = Delphic_sets.Knapsack
module Ext_vatic = Delphic_core.Ext_vatic.Make (Knapsack.Approx)
module Workload = Delphic_stream.Workload

let () =
  let nvars = 16 in
  let rng = Delphic_util.Rng.create ~seed:314 in
  let exact_instances = Workload.Knapsacks.random rng ~nvars ~max_weight:25 ~count:15 in

  (* Degrade every instance to an 8-significant-bit counting oracle. *)
  let sigbits = 8 in
  let oracles = List.map (Knapsack.Approx.create ~sigbits) exact_instances in
  let alpha =
    List.fold_left (fun acc o -> Float.max acc (Knapsack.Approx.alpha o)) 0.0 oracles
  in
  let eta =
    List.fold_left (fun acc o -> Float.max acc (Knapsack.Approx.eta o)) 0.0 oracles
  in
  Printf.printf "rounded-DP oracles: %d instances over %d items, alpha = eta = %.4f\n"
    (List.length oracles) nvars alpha;

  let estimator =
    Ext_vatic.create ~epsilon:0.2 ~delta:0.1 ~log2_universe:(float_of_int nvars)
      ~alpha ~gamma:0.0 ~eta ~seed:9 ()
  in
  List.iter (Ext_vatic.process estimator) oracles;

  let estimate = Ext_vatic.estimate estimator in
  let truth =
    Delphic_util.Bigint.to_float (Delphic_sets.Exact.knapsack_union exact_instances)
  in
  let lo, hi = Ext_vatic.window estimator in
  Printf.printf "exact union of solution sets: %.0f\n" truth;
  Printf.printf "EXT-VATIC estimate:           %.0f  (ratio %.3f)\n" estimate
    (estimate /. truth);
  Printf.printf "guaranteed window:            [%.2f, %.2f] x truth -> %s\n" lo hi
    (if estimate >= lo *. truth && estimate <= hi *. truth then "inside" else "OUTSIDE");
  match Ext_vatic.sample_union estimator with
  | Some x ->
    Printf.printf "a near-uniform union sample:  %s (weight-feasible in %d/%d instances)\n"
      (Delphic_util.Bitvec.to_string x)
      (List.length (List.filter (fun k -> Knapsack.mem k x) exact_instances))
      (List.length exact_instances)
  | None -> print_endline "empty sketch"
