(* Streaming DNF model counting (Section 6.1 of the paper): terms of a DNF
   formula arrive one at a time; VATIC maintains an estimate of the number
   of satisfying assignments without ever storing the formula.

   The exact count from the BDD substrate and the classical Karp-Luby
   estimator (which must store every term) are shown for comparison.

   Run with:  dune exec examples/dnf_counting.exe *)

module Dnf = Delphic_sets.Dnf
module Vatic = Delphic_core.Vatic.Make (Dnf)
module Karp_luby = Delphic_core.Karp_luby.Make (Dnf)
module Workload = Delphic_stream.Workload

let () =
  (* Sizes chosen so the exact BDD count stays cheap; VATIC itself is happy
     at any n (the CLI's `delphic dnf -n 1000` works fine without --exact). *)
  let nvars = 26 and width = 8 and terms = 250 in
  let rng = Delphic_util.Rng.create ~seed:123 in
  let stream = Workload.Dnf_terms.random rng ~nvars ~count:terms ~width in

  (* Streaming estimate. *)
  let vatic =
    Vatic.create ~epsilon:0.15 ~delta:0.1 ~log2_universe:(float_of_int nvars)
      ~seed:3 ()
  in
  List.iter (Vatic.process vatic) stream;

  (* Offline baselines. *)
  let exact = Delphic_sets.Exact.dnf_count ~nvars stream in
  let kl = Karp_luby.create ~epsilon:0.15 ~delta:0.1 ~seed:3 () in
  List.iter (Karp_luby.add kl) stream;

  let exact_f = Delphic_util.Bigint.to_float exact in
  let show name v =
    Printf.printf "%-22s %.6g   (rel.err %.4f)\n" name v
      (Float.abs (v -. exact_f) /. exact_f)
  in
  Printf.printf "DNF over %d variables, %d terms of width %d\n" nvars terms width;
  Printf.printf "%-22s %s\n" "exact (BDD):" (Delphic_util.Bigint.to_string exact);
  show "VATIC (streaming):" (Vatic.estimate vatic);
  show "Karp-Luby (offline):" (Karp_luby.estimate kl);
  Printf.printf "VATIC stored at most %d assignments; Karp-Luby stored all %d terms.\n"
    (Vatic.max_bucket_size vatic) (Karp_luby.stored_sets kl)
