(* Quickstart: estimate the size of a union of integer ranges in one pass.

   Run with:  dune exec examples/quickstart.exe *)

module Range = Delphic_sets.Range1d
module Vatic = Delphic_core.Vatic.Make (Range)

let () =
  (* A stream of 10,000 ranges over the universe [0, 10^9).  Stream length
     is irrelevant to VATIC's memory: only log |universe|, epsilon and delta
     enter its bucket bound. *)
  let universe = 1_000_000_000 in
  let rng = Delphic_util.Rng.create ~seed:2024 in
  let stream =
    List.init 10_000 (fun _ ->
        let lo = Delphic_util.Rng.int rng universe in
        let hi = min (universe - 1) (lo + Delphic_util.Rng.int rng 100_000) in
        Range.create ~lo ~hi)
  in

  (* An (epsilon, delta)-estimator: relative error <= 10% with probability
     >= 90%. *)
  let estimator =
    Vatic.create ~epsilon:0.1 ~delta:0.1
      ~log2_universe:(log (float_of_int universe) /. log 2.0)
      ~seed:7 ()
  in

  (* One pass; each item is processed in poly(log universe) time. *)
  List.iter (Vatic.process estimator) stream;

  let exact = Delphic_sets.Exact.range_union stream in
  Printf.printf "estimated union size: %.6g\n" (Vatic.estimate estimator);
  Printf.printf "exact union size:     %d\n" exact;
  Printf.printf "sketch kept at most %d of ~%d stream elements (%.4f%%)\n"
    (Vatic.max_bucket_size estimator)
    exact
    (100.0 *. float_of_int (Vatic.max_bucket_size estimator) /. float_of_int exact)
