(* Multicore server tests: domain-sharded event loops must be invisible to
   clients (final estimates bitwise-equal to a serial single-domain replay,
   for disjoint and for shared sessions), the bare STATS verb must report
   live process figures, and the WAL group-commit writer must resolve
   durability tokens only after the bytes are in the journal — with torn
   group tails truncating at the first bad frame on recovery, exactly like
   the single-record path. *)

module Server = Delphic_server.Server
module Evgroup = Delphic_server.Evgroup
module Wal = Delphic_server.Wal
module P = Delphic_server.Protocol
module Rpc = Delphic_cluster.Rpc

let fresh_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "delphic-mt-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm dir;
    dir

let conn port =
  match
    Rpc.connect ~proto:Rpc.V1 ~host:"127.0.0.1" ~port ~timeout:30.0 ()
  with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" (Rpc.describe_connect_error msg)

let call c req =
  match Rpc.call c req with
  | Ok resp -> resp
  | Error msg -> Alcotest.failf "%s: %s" (P.render_request req) msg

let open_session c name =
  match
    call c
      (P.Open
         {
           session = name;
           family = P.Rect;
           epsilon = 0.2;
           delta = 0.2;
           log2_universe = 40.0;
         })
  with
  | P.Ok_reply _ -> ()
  | r -> Alcotest.failf "OPEN %s: %s" name (P.render_response r)

let add c session payload =
  match call c (P.Add { session; payload; ts = Some 1.0 }) with
  | P.Ok_reply _ -> ()
  | r -> Alcotest.failf "ADD %s: %s" session (P.render_response r)

let est c session =
  P.render_response (call c (P.Est { session }))

(* Run [ops] (session name, payload list) against a fresh server and return
   the rendered EST reply per session.  Sessions are always opened serially
   from one control connection — OPEN order pins each session's derived
   seed, so a multi-domain run and its serial replay build identical
   sketches.  With [domains > 1] each session gets its own client domain
   hammering concurrently; serially everything flows through the control
   connection in list order. *)
let run_ops ~domains ops =
  let spool = fresh_dir "eq" in
  let s = Server.create ~port:0 ~spool ~seed:913 ~domains () in
  let th = Server.start s in
  let port = Server.port s in
  let ctl = conn port in
  List.iter (fun (name, _) -> open_session ctl name) ops;
  (if domains > 1 then begin
     let doms =
       List.map
         (fun (name, payloads) ->
           Domain.spawn (fun () ->
               let c = conn port in
               List.iter (add c name) payloads;
               Rpc.close c))
         ops
     in
     List.iter Domain.join doms
   end
   else List.iter (fun (name, payloads) -> List.iter (add ctl name) payloads) ops);
  let ests = List.map (fun (name, _) -> est ctl name) ops in
  Rpc.close ctl;
  Server.request_stop s;
  Thread.join th;
  ests

(* qcheck: random disjoint-session streams, 4 domains vs serial replay. *)
let prop_disjoint_equivalence =
  let rect =
    QCheck.quad
      (QCheck.int_range 0 999) (QCheck.int_range 0 999)
      (QCheck.int_range 0 999) (QCheck.int_range 0 999)
  in
  let arb =
    QCheck.list_of_size (QCheck.Gen.return 4)
      (QCheck.list_of_size (QCheck.Gen.int_range 1 25) rect)
  in
  QCheck.Test.make ~count:3 ~name:"4-domain disjoint sessions = serial replay"
    arb (fun per_session ->
      let payload (a, b, c, d) =
        Printf.sprintf "%d %d %d %d" (min a b) (max a b) (min c d) (max c d)
      in
      let ops =
        List.mapi
          (fun i rects -> (Printf.sprintf "d%d" i, List.map payload rects))
          per_session
      in
      run_ops ~domains:4 ops = run_ops ~domains:1 ops)

(* Shared session, exact regime: four clients race disjoint slices of
   distinct points into ONE session.  Below the adaptive estimator's exact
   capacity the state is a plain entry set, so the union cardinality — and
   the rendered EST — cannot depend on arrival interleaving. *)
let test_shared_session_equivalence () =
  let points = List.init 32 (fun i -> Printf.sprintf "%d %d %d %d" i i i i) in
  let serial = run_ops ~domains:1 [ ("shared", points) ] in
  let slices = List.init 4 (fun c -> List.filteri (fun i _ -> i mod 4 = c) points) in
  let spool = fresh_dir "shared" in
  let s = Server.create ~port:0 ~spool ~seed:913 ~domains:4 () in
  let th = Server.start s in
  let port = Server.port s in
  let ctl = conn port in
  open_session ctl "shared";
  let doms =
    List.map
      (fun slice ->
        Domain.spawn (fun () ->
            let c = conn port in
            List.iter (add c "shared") slice;
            Rpc.close c))
      slices
  in
  List.iter Domain.join doms;
  let concurrent = est ctl "shared" in
  Rpc.close ctl;
  Server.request_stop s;
  Thread.join th;
  Alcotest.(check (list string)) "EST equal" serial [ concurrent ]

let test_stats_verb () =
  let spool = fresh_dir "stats" in
  let s = Server.create ~port:0 ~spool ~seed:7 ~domains:2 () in
  let th = Server.start s in
  let port = Server.port s in
  let ctl = conn port in
  open_session ctl "s";
  add ctl "s" "1 2 1 2";
  (* per-session STATS keeps its old meaning *)
  (match call ctl (P.Stats { session = "s" }) with
  | P.Stats_reply _ -> ()
  | r -> Alcotest.failf "STATS s: %s" (P.render_response r));
  (match call ctl P.Server_stats with
  | P.Server_stats_reply st ->
    Alcotest.(check int) "domains" 2 (List.length st.P.dispatched);
    Alcotest.(check bool) "conns >= 1" true (st.P.conns >= 1);
    Alcotest.(check bool) "no sheds" true (st.P.shed = 0);
    Alcotest.(check bool)
      "dispatch counted" true
      (List.fold_left ( + ) 0 st.P.dispatched >= 3)
  | r -> Alcotest.failf "STATS: %s" (P.render_response r));
  (* the rendered form survives a parse round trip (what the CLI and the
     coordinator passthrough rely on) *)
  let rendered =
    P.render_response
      (P.Server_stats_reply
         {
           P.conns = 3;
           shed = 1;
           dispatched = [ 4; 0; 2 ];
           wal_queue = 5;
           wal_last_group = 16;
           wal_groups = 9;
           shard_fresh = [];
         })
  in
  (match P.parse_response rendered with
  | Ok (P.Server_stats_reply st) ->
    Alcotest.(check (list int)) "dispatched" [ 4; 0; 2 ] st.P.dispatched;
    Alcotest.(check int) "wal_groups" 9 st.P.wal_groups
  | Ok r -> Alcotest.failf "roundtrip: %s" (P.render_response r)
  | Error msg -> Alcotest.failf "roundtrip: %s" msg);
  Rpc.close ctl;
  Server.request_stop s;
  Thread.join th

(* Round-robin handoff: with 4 domains and a handful of connections each
   issuing a request, every event loop must end up with work. *)
let test_round_robin_dispatch () =
  let spool = fresh_dir "rr" in
  let s = Server.create ~port:0 ~spool ~seed:7 ~domains:4 () in
  let th = Server.start s in
  let port = Server.port s in
  let ctl = conn port in
  let clients = List.init 8 (fun _ -> conn port) in
  List.iter
    (fun c ->
      match call c P.Ping with
      | P.Pong -> ()
      | r -> Alcotest.failf "PING: %s" (P.render_response r))
    clients;
  (match call ctl P.Server_stats with
  | P.Server_stats_reply st ->
    Alcotest.(check int) "domains" 4 (List.length st.P.dispatched);
    Alcotest.(check bool) "live conns" true (st.P.conns >= 9);
    List.iteri
      (fun i n ->
        Alcotest.(check bool)
          (Printf.sprintf "domain %d dispatched" i)
          true (n >= 1))
      st.P.dispatched
  | r -> Alcotest.failf "STATS: %s" (P.render_response r));
  List.iter Rpc.close clients;
  Rpc.close ctl;
  Server.request_stop s;
  Thread.join th

let test_default_domains () =
  Alcotest.(check bool) "at least one" true (Evgroup.default_domains () >= 1);
  Alcotest.(check bool) "capped at 8" true (Evgroup.default_domains () <= 8)

(* --- WAL group commit ------------------------------------------------- *)

let journal dir = Filename.concat dir "journal"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let wait_done tok =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Atomic.get tok with
    | v when v = Wal.token_done -> ()
    | v when v = Wal.token_failed -> Alcotest.fail "token failed"
    | _ ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "token stuck pending"
      else begin
        Thread.yield ();
        go ()
      end
  in
  go ()

(* Token completion is the durability signal the server gates replies on:
   the moment a token reads done, the record's bytes must already be in the
   journal file. *)
let test_group_token_durability () =
  let dir = fresh_dir "wal-tok" in
  let w = Wal.open_ ~dir ~fsync:Wal.Always in
  Wal.start_writer w ~group:8 ~on_durable:(fun () -> ());
  let bodies = List.init 20 (fun i -> Printf.sprintf "ADD s %d %d %d %d" i i i i) in
  let toks = List.map (Wal.append_async w) bodies in
  List.iteri
    (fun i tok ->
      wait_done tok;
      Alcotest.(check bool)
        (Printf.sprintf "record %d on disk at completion" i)
        true
        (contains (read_file (journal dir)) (List.nth bodies i)))
    toks;
  let stats = Wal.group_stats w in
  Alcotest.(check bool) "groups ran" true (stats.Wal.groups >= 1);
  Alcotest.(check bool) "queue drained" true (stats.Wal.queue_depth = 0);
  Wal.close w;
  (* recovery sees every group-committed record, in enqueue order *)
  let w' = Wal.open_ ~dir ~fsync:Wal.Never in
  let seen = ref [] in
  let n, cut = Wal.replay w' ~f:(fun b -> seen := b :: !seen) in
  Alcotest.(check int) "replayed all" 20 n;
  Alcotest.(check (option string)) "no truncation" None cut;
  Alcotest.(check (list string)) "order preserved" bodies (List.rev !seen);
  Wal.close w'

(* kill -9 between the group's write and its fsync can leave a torn tail:
   recovery must keep every whole frame and truncate at the first bad one,
   exactly as for single-record appends. *)
let test_group_tear_truncates () =
  let dir = fresh_dir "wal-tear" in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  Wal.start_writer w ~group:4 ~on_durable:(fun () -> ());
  let bodies = List.init 12 (fun i -> Printf.sprintf "ADD s %d %d %d %d" i i i i) in
  List.iter (fun t -> wait_done t) (List.map (Wal.append_async w) bodies);
  Wal.close w;
  (* byte surgery: chop into the last frame, as a crash mid-group would *)
  let fd = Unix.openfile (journal dir) [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  Unix.ftruncate fd (size - 3);
  Unix.close fd;
  let w' = Wal.open_ ~dir ~fsync:Wal.Never in
  let seen = ref [] in
  let n, cut = Wal.replay w' ~f:(fun b -> seen := b :: !seen) in
  Alcotest.(check int) "whole frames survive" 11 n;
  Alcotest.(check bool) "tail truncated" true (cut <> None);
  (* the journal keeps working after truncation: a fresh group commits *)
  Wal.start_writer w' ~group:4 ~on_durable:(fun () -> ());
  wait_done (Wal.append_async w' "ADD s 99 99 99 99");
  Wal.close w';
  let w'' = Wal.open_ ~dir ~fsync:Wal.Never in
  let count = ref 0 in
  let n', cut' = Wal.replay w'' ~f:(fun _ -> incr count) in
  Alcotest.(check int) "recovered + new record" 12 n';
  Alcotest.(check (option string)) "clean tail" None cut';
  Wal.close w''

(* Without a writer the async entry points fall back to the synchronous
   path and hand back an already-completed token — the server's gating code
   never needs to know which mode the journal is in. *)
let test_async_fallback_sync () =
  let dir = fresh_dir "wal-sync" in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  let tok = Wal.append_async w "ADD s 1 1 1 1" in
  Alcotest.(check int) "already durable" Wal.token_done (Atomic.get tok);
  Alcotest.(check bool)
    "on disk" true
    (contains (read_file (journal dir)) "ADD s 1 1 1 1");
  Wal.close w

let suite =
  [
    Alcotest.test_case "stats-verb" `Quick test_stats_verb;
    Alcotest.test_case "round-robin-dispatch" `Quick test_round_robin_dispatch;
    Alcotest.test_case "default-domains" `Quick test_default_domains;
    Alcotest.test_case "shared-session-equivalence" `Quick
      test_shared_session_equivalence;
    Alcotest.test_case "wal-group-token-durability" `Quick
      test_group_token_durability;
    Alcotest.test_case "wal-group-tear-truncates" `Quick
      test_group_tear_truncates;
    Alcotest.test_case "wal-async-fallback-sync" `Quick test_async_fallback_sync;
    QCheck_alcotest.to_alcotest prop_disjoint_equivalence;
  ]
