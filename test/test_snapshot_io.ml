(* Versioned snapshot codec: exact text round-trips (qcheck), atomic file
   persistence, decode robustness, and estimator snapshot/restore parity for
   the Adaptive wrapper and EXT-VATIC. *)

module Io = Delphic_core.Snapshot_io
module Params = Delphic_core.Params
module Rng = Delphic_util.Rng
module Range1d = Delphic_sets.Range1d
module Exact = Delphic_sets.Exact
module Workload = Delphic_stream.Workload
module A = Delphic_core.Adaptive.Make (Range1d)
module Wrap = Delphic_sets.Approx_wrap.Make (Range1d)
module Ext = Delphic_core.Ext_vatic.Make (Wrap)

let sample_io =
  {
    Io.family = "cov:14:2";
    epsilon = 0.2;
    delta = 0.1;
    log2_universe = 40.0;
    exact_capacity = 1835;
    items = 123;
    merges = 4;
    exact_active = false;
    exact_entries = [ (8.0, "3 7"); (0.0, "0 0"); (12.5, "12 40") ];
    sketch =
      Some
        {
          Io.mode = Params.Practical;
          capacity_scale = 1.0;
          coupon_scale = 2.5;
          s_items = 123;
          max_bucket = 7012;
          skipped = 0;
          membership_calls = 14;
          cardinality_calls = 123;
          sampling_calls = 9;
          entries = [ (3, 1.5, "1,2:1010"); (3, 0.0, "5:0001"); (4, 2.5e5, "9,9:1111") ];
        };
  }

let check_roundtrip name io =
  match Io.decode (Io.encode io) with
  | Ok io' -> Alcotest.(check bool) name true (io = io')
  | Error msg -> Alcotest.failf "%s: decode failed: %s" name msg

let test_fixed_roundtrips () =
  check_roundtrip "with sketch" sample_io;
  check_roundtrip "exact only"
    {
      sample_io with
      Io.family = "rect";
      exact_active = true;
      sketch = None;
      exact_entries = [];
    };
  (* Element strings are opaque: spaces and punctuation must survive. *)
  check_roundtrip "awkward elements"
    {
      sample_io with
      Io.exact_entries = [ (0.25, " leading space"); (0.0, "trailing "); (3.0, "in ner") ];
      sketch =
        Some
          {
            (Option.get sample_io.Io.sketch) with
            Io.mode = Params.Paper;
            entries = [ (0, 1.0, "a b c"); (-1, 0.0, "") ];
          };
    }

let test_header () =
  Alcotest.(check bool)
    "magic + version first line" true
    (String.length (Io.encode sample_io) > 0
    && String.sub (Io.encode sample_io) 0
         (String.length "delphic-snapshot v3")
       = "delphic-snapshot v3")

(* v1 snapshots (no merges line) must keep decoding, with merges = 0. *)
let v1_text =
  "delphic-snapshot v1\nfamily rect\nepsilon 0x1p-2\ndelta 0x1p-3\n\
   log2-universe 0x1.4p5\nexact-capacity 10\nitems 2\nexact-active true\n\
   exact-entries 2\nE 3 7\nE 0 0\nno-sketch\nend\n"

let test_decode_v1 () =
  match Io.decode v1_text with
  | Error msg -> Alcotest.failf "v1 decode: %s" msg
  | Ok io ->
    Alcotest.(check int) "v1 merges default" 0 io.Io.merges;
    Alcotest.(check int) "v1 items" 2 io.Io.items;
    Alcotest.(check bool) "v1 entries at t=0" true
      (io.Io.exact_entries = [ (0.0, "3 7"); (0.0, "0 0") ])

(* v2 snapshots (merges line, no timestamps) decode with every ts = 0. *)
let v2_text =
  "delphic-snapshot v2\nfamily rect\nepsilon 0x1p-2\ndelta 0x1p-3\n\
   log2-universe 0x1.4p5\nexact-capacity 10\nitems 3\nmerges 2\n\
   exact-active false\nexact-entries 1\nE 3 7\n\
   sketch practical 0x1p0 0x1.4p1 3 12 0 4 3 1\nsketch-entries 2\n\
   3 17 42\n5 0 0\nend\n"

let test_decode_v2 () =
  match Io.decode v2_text with
  | Error msg -> Alcotest.failf "v2 decode: %s" msg
  | Ok io ->
    Alcotest.(check int) "v2 merges kept" 2 io.Io.merges;
    Alcotest.(check bool) "v2 exact entries at t=0" true
      (io.Io.exact_entries = [ (0.0, "3 7") ]);
    (match io.Io.sketch with
    | None -> Alcotest.fail "v2 sketch lost"
    | Some sk ->
      Alcotest.(check bool) "v2 sketch entries at t=0" true
        (sk.Io.entries = [ (3, 0.0, "17 42"); (5, 0.0, "0 0") ]));
    (* re-encoding a v2 decode produces a v3 snapshot that round-trips *)
    Alcotest.(check bool) "upgraded round-trip" true
      (Io.decode (Io.encode io) = Ok io)

let test_restrict () =
  let r = Io.restrict ~cutoff:1.0 sample_io in
  Alcotest.(check bool) "exact entries filtered" true
    (r.Io.exact_entries = [ (8.0, "3 7"); (12.5, "12 40") ]);
  (match r.Io.sketch with
  | None -> Alcotest.fail "restrict dropped the sketch record"
  | Some sk ->
    Alcotest.(check bool) "sketch entries filtered" true
      (sk.Io.entries = [ (3, 1.5, "1,2:1010"); (4, 2.5e5, "9,9:1111") ]);
    Alcotest.(check int) "counters untouched" 123 sk.Io.s_items);
  Alcotest.(check int) "items untouched" 123 r.Io.items;
  Alcotest.(check bool) "neg_infinity cutoff is the identity" true
    (Io.restrict ~cutoff:neg_infinity sample_io = sample_io)

(* --- qcheck: decode . encode = Ok, over random snapshots --- *)

let gen_elt =
  QCheck.Gen.(
    string_size (int_range 0 20)
      ~gen:(oneofl [ '0'; '9'; ' '; ','; ':'; '-'; 'x' ]))

let gen_io =
  QCheck.Gen.(
    let* family = oneofl [ "rect"; "dnf:40"; "cov:14:2" ] in
    let* epsilon = float_range 0.001 0.999 in
    let* delta = float_range 0.001 0.999 in
    let* log2_universe = float_range 1.0 128.0 in
    let* exact_capacity = int_range 1 100_000 in
    let* items = int_range 0 1_000_000 in
    let* merges = int_range 0 1000 in
    let* exact_active = bool in
    let* exact_entries =
      list_size (int_range 0 20) (pair (float_range 0.0 2e9) gen_elt)
    in
    let* sketch =
      oneof
        [
          return None;
          (let* mode = oneofl [ Params.Paper; Params.Practical ] in
           let* capacity_scale = float_range 0.25 8.0 in
           let* coupon_scale = float_range 0.25 8.0 in
           let* s_items = int_range 0 1_000_000 in
           let* max_bucket = int_range 0 100_000 in
           let* skipped = int_range 0 100 in
           let* membership_calls = int_range 0 1_000_000 in
           let* cardinality_calls = int_range 0 1_000_000 in
           let* sampling_calls = int_range 0 1_000_000 in
           let* entries =
             list_size (int_range 0 20)
               (triple (int_range (-4) 60) (float_range 0.0 2e9) gen_elt)
           in
           return
             (Some
                {
                  Io.mode;
                  capacity_scale;
                  coupon_scale;
                  s_items;
                  max_bucket;
                  skipped;
                  membership_calls;
                  cardinality_calls;
                  sampling_calls;
                  entries;
                }));
        ]
    in
    return
      {
        Io.family;
        epsilon;
        delta;
        log2_universe;
        exact_capacity;
        items;
        merges;
        exact_active;
        exact_entries;
        sketch;
      })

let prop_roundtrip =
  QCheck.Test.make ~name:"decode . encode = Ok (random)" ~count:300
    (QCheck.make gen_io)
    (fun io -> Io.decode (Io.encode io) = Ok io)

(* --- wire armor --- *)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"of_wire . to_wire = Ok (random)" ~count:300
    (QCheck.make gen_io)
    (fun io ->
      let w = Io.to_wire io in
      (* a wire token must survive a space-delimited line protocol *)
      (not (String.exists (fun c -> c = ' ' || c = '\n' || c = '\r') w))
      && Io.of_wire w = Ok io)

let test_wire_rejects () =
  let expect_error name s =
    match Io.of_wire s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: of_wire accepted garbage" name
  in
  expect_error "raw space" "delphic snapshot";
  expect_error "truncated escape" (Io.to_wire sample_io ^ "%2");
  expect_error "unknown escape" "%ZZ";
  expect_error "not a snapshot underneath" "hello-world"

(* --- file persistence --- *)

let test_save_load () =
  let path = Filename.temp_file "delphic-io" ".snap" in
  Io.save ~path sample_io;
  Alcotest.(check bool) "no tmp left" false (Sys.file_exists (path ^ ".tmp"));
  (match Io.load ~path with
  | Ok io -> Alcotest.(check bool) "load = save" true (io = sample_io)
  | Error msg -> Alcotest.failf "load: %s" msg);
  Sys.remove path;
  match Io.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load of a removed file must fail"

let test_decode_rejects () =
  let expect_error name text =
    match Io.decode text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: decode accepted garbage" name
  in
  expect_error "empty" "";
  expect_error "bad magic" "not-a-snapshot v1\n";
  expect_error "future version" "delphic-snapshot v99\nfamily rect\n";
  expect_error "truncated"
    "delphic-snapshot v1\nfamily rect\nepsilon 0x1p-2\n";
  expect_error "count larger than payload"
    "delphic-snapshot v1\nfamily rect\nepsilon 0x1p-2\ndelta 0x1p-3\n\
     log2-universe 0x1.4p5\nexact-capacity 10\nitems 1\nexact-active true\n\
     exact-entries 99\nE 1\nno-sketch\nend\n";
  expect_error "trailing garbage after a bad sketch line"
    "delphic-snapshot v1\nfamily rect\nepsilon 0x1p-2\ndelta 0x1p-3\n\
     log2-universe 0x1.4p5\nexact-capacity 10\nitems 0\nexact-active true\n\
     exact-entries 0\nsketch nonsense\nend\n"

let test_encode_validates () =
  Alcotest.check_raises "newline in element"
    (Invalid_argument "Snapshot_io.encode: an exact entry contains a newline")
    (fun () ->
      ignore (Io.encode { sample_io with Io.exact_entries = [ (0.0, "a\nb") ] }));
  Alcotest.check_raises "space in family"
    (Invalid_argument
       "Snapshot_io.encode: family token must be non-empty and space-free")
    (fun () -> ignore (Io.encode { sample_io with Io.family = "re ct" }))

(* --- estimator snapshot/restore parity --- *)

let sorted_exact (s : A.snapshot) = List.sort compare s.A.exact_entries

let sorted_sketch (s : A.snapshot) =
  Option.map
    (fun (sk : A.sketch_snapshot) -> List.sort compare sk.A.sketch_entries)
    s.A.sketch

let test_adaptive_exact_parity () =
  let t = A.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:1 () in
  List.iter (A.process t)
    [
      Range1d.create ~lo:0 ~hi:9;
      Range1d.create ~lo:5 ~hi:14;
      Range1d.create ~lo:100 ~hi:100;
    ];
  let s = A.snapshot t in
  let t' = A.restore s ~seed:99 in
  Alcotest.(check bool) "still exact" true (A.is_exact t');
  Alcotest.(check (float 0.0)) "same exact estimate" (A.estimate t) (A.estimate t');
  Alcotest.(check int) "same items" (A.items_processed t) (A.items_processed t');
  let s' = A.snapshot t' in
  Alcotest.(check bool)
    "snapshot of restore = snapshot (up to entry order)" true
    (sorted_exact s = sorted_exact s'
    && sorted_sketch s = sorted_sketch s'
    && { s with A.exact_entries = []; sketch = None }
       = { s' with A.exact_entries = []; sketch = None });
  (* the restored copy keeps estimating correctly as the stream continues *)
  A.process t' (Range1d.create ~lo:200 ~hi:209);
  Alcotest.(check (float 0.0)) "resumed exact count" 26.0 (A.estimate t')

let test_adaptive_sketch_parity () =
  let gen = Rng.create ~seed:77 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:200 ~max_len:5000 in
  let truth = float_of_int (Exact.range_union pool) in
  let t = A.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~seed:2 () in
  List.iter (A.process t) pool;
  Alcotest.(check bool) "in sketch mode" false (A.is_exact t);
  let s = A.snapshot t in
  let t' = A.restore s ~seed:1234 in
  Alcotest.(check bool) "restored in sketch mode" false (A.is_exact t');
  Alcotest.(check int) "same items" (A.items_processed t) (A.items_processed t');
  let s' = A.snapshot t' in
  Alcotest.(check bool)
    "sketch state survives the round trip" true
    (sorted_sketch s = sorted_sketch s');
  let est = A.estimate t' in
  Alcotest.(check bool)
    (Printf.sprintf "restored estimate %.0f near %.0f" est truth)
    true
    (Float.abs (est -. truth) <= 0.3 *. truth)

let test_adaptive_restore_validates () =
  let t = A.create ~epsilon:0.3 ~delta:0.2 ~log2_universe:20.0 ~seed:3 () in
  A.process t (Range1d.create ~lo:0 ~hi:9);
  let s = A.snapshot t in
  (match A.restore { s with A.exact_capacity = 0 } ~seed:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "exact_capacity 0 must be rejected");
  match A.restore { s with A.exact_active = false; sketch = None } ~seed:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sketch mode without a sketch must be rejected"

let test_ext_vatic_parity () =
  let gen = Rng.create ~seed:88 in
  let pool = Workload.Ranges.uniform gen ~universe:1_000_000 ~count:150 ~max_len:4000 in
  let alpha = 0.2 and gamma = 0.05 and eta = 0.1 in
  let wrapped = List.map (Wrap.wrap ~alpha ~gamma ~eta ~salt:5) pool in
  let t =
    Ext.create ~epsilon:0.25 ~delta:0.2 ~log2_universe:20.0 ~alpha ~gamma ~eta
      ~seed:5 ()
  in
  List.iter (Ext.process t) wrapped;
  let s = Ext.snapshot t in
  let t' = Ext.restore s ~seed:500 in
  Alcotest.(check int) "same items" (Ext.items_processed t) (Ext.items_processed t');
  Alcotest.(check int) "same bucket size" (Ext.bucket_size t) (Ext.bucket_size t');
  let s' = Ext.snapshot t' in
  Alcotest.(check bool)
    "bucket survives the round trip" true
    (List.sort compare s.Ext.entries = List.sort compare s'.Ext.entries
    && { s with Ext.entries = [] } = { s' with Ext.entries = [] });
  let truth = float_of_int (Exact.range_union pool) in
  let est = Ext.estimate t' in
  let lo, hi = Ext.window t' in
  Alcotest.(check bool)
    (Printf.sprintf "restored estimate %.0f within window of %.0f" est truth)
    true
    (est >= lo *. truth && est <= hi *. truth)

let suite =
  [
    Alcotest.test_case "fixed round-trips" `Quick test_fixed_roundtrips;
    Alcotest.test_case "header" `Quick test_header;
    Alcotest.test_case "v1 compatibility" `Quick test_decode_v1;
    Alcotest.test_case "v2 compatibility" `Quick test_decode_v2;
    Alcotest.test_case "restrict" `Quick test_restrict;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    Alcotest.test_case "wire rejects garbage" `Quick test_wire_rejects;
    Alcotest.test_case "save/load" `Quick test_save_load;
    Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects;
    Alcotest.test_case "encode validates" `Quick test_encode_validates;
    Alcotest.test_case "adaptive exact parity" `Quick test_adaptive_exact_parity;
    Alcotest.test_case "adaptive sketch parity" `Quick test_adaptive_sketch_parity;
    Alcotest.test_case "adaptive restore validates" `Quick test_adaptive_restore_validates;
    Alcotest.test_case "ext-vatic parity" `Quick test_ext_vatic_parity;
  ]
