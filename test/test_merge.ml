(* Merge algebra for the mergeable sketches (the cluster's gather/fold
   step).  The deterministic sketches (bottom-k, HyperLogLog) obey the
   full semilattice laws exactly; the coin-flipping ones (VATIC, CVM)
   are checked for the exact laws they do guarantee — merge-with-empty
   identity, parameter-mismatch rejection — and for the law that matters
   to the cluster: a k-way sharded stream folds to an estimate inside
   the same (ε, δ) envelope as the single-stream run. *)

module Rng = Delphic_util.Rng
module B = Delphic_util.Bigint
module Workload = Delphic_stream.Workload
module Exact = Delphic_sets.Exact
module Bottom_k = Delphic_core.Bottom_k
module Hll = Delphic_core.Hyperloglog
module Cvm = Delphic_core.Cvm
module V_rect = Delphic_core.Vatic.Make (Delphic_sets.Rectangle)

let gen_values =
  QCheck.Gen.(list_size (int_range 0 400) (int_range 0 5_000))

let arb_two_streams =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%d values, %d values)" (List.length a) (List.length b))
    QCheck.Gen.(pair gen_values gen_values)

(* Bottom-k shares its hash function across instances, so merge is a
   true semilattice join: commutative, associative, idempotent. *)
let prop_bottom_k_lattice =
  QCheck.Test.make ~name:"bottom-k merge: commutative + idempotent" ~count:100
    arb_two_streams (fun (xs, ys) ->
      let sk vs =
        let t = Bottom_k.create ~k:64 ~epsilon:0.25 () in
        List.iter (Bottom_k.add t) vs;
        t
      in
      let a = sk xs and b = sk ys in
      let ab = Bottom_k.estimate (Bottom_k.merge a b)
      and ba = Bottom_k.estimate (Bottom_k.merge b a)
      and aa = Bottom_k.estimate (Bottom_k.merge a a) in
      ab = ba && aa = Bottom_k.estimate a)

let prop_hll_lattice =
  QCheck.Test.make ~name:"hyperloglog merge: commutative + idempotent"
    ~count:100 arb_two_streams (fun (xs, ys) ->
      let sk vs =
        let t = Hll.create ~bits:8 () in
        List.iter (Hll.add t) vs;
        t
      in
      let a = sk xs and b = sk ys in
      let ab = Hll.estimate (Hll.merge a b)
      and ba = Hll.estimate (Hll.merge b a)
      and aa = Hll.estimate (Hll.merge a a) in
      ab = ba && aa = Hll.estimate a)

(* A merged deterministic sketch equals the sketch of the concatenated
   stream — the defining property of a lossless merge. *)
let prop_bottom_k_lossless =
  QCheck.Test.make ~name:"bottom-k merge = sketch of concatenation" ~count:100
    arb_two_streams (fun (xs, ys) ->
      let sk vs =
        let t = Bottom_k.create ~k:64 ~epsilon:0.25 () in
        List.iter (Bottom_k.add t) vs;
        t
      in
      Bottom_k.estimate (Bottom_k.merge (sk xs) (sk ys))
      = Bottom_k.estimate (sk (xs @ ys)))

let rect_pool ?(seed = 11) ?(count = 150) ?(max_side = 400) () =
  let gen = Rng.create ~seed in
  Workload.Rectangles.uniform gen ~universe:100_000 ~dim:2 ~count ~max_side

let test_vatic_empty_identity () =
  let pool = rect_pool () in
  let mk seed =
    V_rect.create ~epsilon:0.2 ~delta:0.1 ~log2_universe:34.0 ~seed ()
  in
  let full = mk 42 in
  List.iter (V_rect.process full) pool;
  let empty = mk 977 in
  (* [estimate] draws fresh subsampling coins, so exact identity is
     checked on the deterministic Horvitz–Thompson estimator: the
     empty-side merge copies the bucket (elements and levels) verbatim. *)
  let ht = V_rect.estimate_horvitz_thompson in
  let reference = ht full in
  Alcotest.(check (float 0.0))
    "merge full empty = full" reference
    (ht (V_rect.merge full empty ~seed:5));
  Alcotest.(check (float 0.0))
    "merge empty full = full" reference
    (ht (V_rect.merge empty full ~seed:6));
  Alcotest.(check (float 0.0))
    "merge empty empty = 0" 0.0
    (V_rect.estimate (V_rect.merge empty (mk 3) ~seed:7));
  (* inputs unchanged by the merge *)
  Alcotest.(check (float 0.0)) "input untouched" reference (ht full)

let test_vatic_param_mismatch () =
  let mk ~epsilon ~delta ~log2_universe seed =
    V_rect.create ~epsilon ~delta ~log2_universe ~seed ()
  in
  let base = mk ~epsilon:0.2 ~delta:0.1 ~log2_universe:34.0 1 in
  let check name other =
    Alcotest.check_raises name
      (Invalid_argument "Vatic.merge: parameter mismatch") (fun () ->
        ignore (V_rect.merge base other ~seed:9))
  in
  check "epsilon differs" (mk ~epsilon:0.3 ~delta:0.1 ~log2_universe:34.0 2);
  check "delta differs" (mk ~epsilon:0.2 ~delta:0.2 ~log2_universe:34.0 3);
  check "universe differs" (mk ~epsilon:0.2 ~delta:0.1 ~log2_universe:20.0 4)

let test_cvm_empty_identity_and_mismatch () =
  let gen = Rng.create ~seed:88 in
  let mk seed =
    Cvm.create ~epsilon:0.2 ~delta:0.1 ~stream_bound:10_000 ~seed ()
  in
  let full = mk 1 in
  for _ = 1 to 2_000 do
    Cvm.add full (Rng.int gen 3_000)
  done;
  let reference = Cvm.estimate full in
  Alcotest.(check (float 0.0))
    "merge full empty = full" reference
    (Cvm.estimate (Cvm.merge full (mk 2) ~seed:5));
  Alcotest.(check (float 0.0))
    "merge empty full = full" reference
    (Cvm.estimate (Cvm.merge (mk 3) full ~seed:6));
  let other = Cvm.create ~thresh:97 ~epsilon:0.2 ~delta:0.1 ~stream_bound:10_000 ~seed:4 () in
  Alcotest.check_raises "thresh mismatch"
    (Invalid_argument "Cvm.merge: sketches have different thresh") (fun () ->
      ignore (Cvm.merge full other ~seed:7))

(* The cluster law: shard the stream k ways by hash of the set (so
   duplicate sets collapse onto one shard), run one sketch per shard,
   fold with merge — the result must sit in the same relative-error
   envelope as a single-stream run.  Checked on a disjoint-heavy and on
   an overlapping workload, for both a geometric (rect) and a boolean
   (DNF) family. *)
let check_sharded (type s e) ~name ~k ~trials ~epsilon ~log2_universe ~truth
    ~pool
    (module F : Delphic_family.Family.FAMILY with type t = s and type elt = e) =
  let module V = Delphic_core.Vatic.Make (F) in
  let failures = ref 0 in
  for i = 0 to trials - 1 do
    let base = 9_000 + (131 * i) in
    let shards =
      Array.init k (fun j ->
          V.create ~epsilon ~delta:0.2 ~log2_universe ~seed:(base + j) ())
    in
    List.iter
      (fun s -> V.process shards.(Hashtbl.hash s mod k) s)
      pool;
    let folded =
      Array.fold_left
        (fun acc sk ->
          match acc with
          | None -> Some sk
          | Some prev -> Some (V.merge prev sk ~seed:(base + 71)))
        None shards
    in
    let est = match folded with Some sk -> V.estimate sk | None -> 0.0 in
    if Float.abs (est -. truth) > epsilon *. truth then incr failures
  done;
  (* delta = 0.2 per shard-fold; allow a 25% failure rate as elsewhere. *)
  if 4 * !failures > trials then
    Alcotest.failf "%s: %d/%d sharded trials outside epsilon" name !failures
      trials

let test_sharded_rect_disjoint () =
  (* small boxes in a huge universe: shards barely overlap *)
  let pool = Workload.Orders.bursty ~copies:3 (rect_pool ~seed:21 ~count:120 ~max_side:300 ()) in
  let truth = B.to_float (Exact.rectangle_union pool) in
  check_sharded ~name:"rect disjoint-heavy" ~k:4 ~trials:10 ~epsilon:0.25
    ~log2_universe:34.0 ~truth ~pool
    (module Delphic_sets.Rectangle)

let test_sharded_rect_overlapping () =
  (* bigger boxes in a denser universe: distinct sets overlap across
     shards (~25% coverage density), where merge's independent inclusion
     coins bias upward — the bias must stay inside the envelope *)
  let gen = Rng.create ~seed:23 in
  let pool =
    Workload.Rectangles.uniform gen ~universe:20_000 ~dim:2 ~count:100
      ~max_side:2_000
  in
  let truth = B.to_float (Exact.rectangle_union pool) in
  check_sharded ~name:"rect overlapping" ~k:3 ~trials:10 ~epsilon:0.25
    ~log2_universe:29.0 ~truth ~pool
    (module Delphic_sets.Rectangle)

let test_sharded_dnf () =
  (* width-7 terms on 20 vars: union covers ~25% of the cube with real
     term-to-term overlap, duplicated terms collapse onto one shard *)
  let gen = Rng.create ~seed:29 in
  let pool =
    Workload.Orders.bursty ~copies:2
      (Workload.Dnf_terms.random gen ~nvars:20 ~count:40 ~width:7)
  in
  let truth = B.to_float (Exact.dnf_count ~nvars:20 pool) in
  check_sharded ~name:"dnf overlapping" ~k:4 ~trials:10 ~epsilon:0.25
    ~log2_universe:20.0 ~truth ~pool
    (module Delphic_sets.Dnf)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bottom_k_lattice;
    QCheck_alcotest.to_alcotest prop_hll_lattice;
    QCheck_alcotest.to_alcotest prop_bottom_k_lossless;
    Alcotest.test_case "VATIC merge-with-empty identity" `Quick
      test_vatic_empty_identity;
    Alcotest.test_case "VATIC merge parameter mismatch" `Quick
      test_vatic_param_mismatch;
    Alcotest.test_case "CVM merge identity + mismatch" `Quick
      test_cvm_empty_identity_and_mismatch;
    Alcotest.test_case "sharded VATIC: disjoint-heavy rects" `Quick
      test_sharded_rect_disjoint;
    Alcotest.test_case "sharded VATIC: overlapping rects" `Quick
      test_sharded_rect_overlapping;
    Alcotest.test_case "sharded VATIC: overlapping DNF" `Quick
      test_sharded_dnf;
  ]
