(* Write-ahead journal: framed round-trips (fixed and qcheck), torn-tail
   and CRC-failure truncation via byte surgery on the journal file,
   checkpoint truncation semantics, and the generation fence.  Every test
   drives the real file — the crash artifacts are produced with ftruncate
   and in-place byte flips, the same shapes a kill -9 leaves behind. *)

module Wal = Delphic_server.Wal

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "delphic-wal-%d-%d" (Unix.getpid ()) !n)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm dir;
    dir

let journal dir = Filename.concat dir "journal"

let replay_all w =
  let seen = ref [] in
  let n, cut = Wal.replay w ~f:(fun body -> seen := body :: !seen) in
  (List.rev !seen, n, cut)

(* Reopen-and-replay: what a restarted process would see. *)
let recover ~dir =
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  let r = replay_all w in
  (w, r)

let file_size path = (Unix.stat path).Unix.st_size

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd len;
  Unix.close fd

let flip_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5A));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let bodies = [ "OPEN s rect 0.3 0.2 17"; "ADD s 0 9 0 9"; "ADD s 5 14 0 9" ]

let test_roundtrip () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~dir ~fsync:Wal.Always in
  List.iter (Wal.append w) bodies;
  Alcotest.(check int) "records counted" (List.length bodies)
    (Wal.records_since_checkpoint w);
  Wal.close w;
  let w', (seen, n, cut) = recover ~dir in
  Alcotest.(check (list string)) "replay = append order" bodies seen;
  Alcotest.(check int) "replay count" (List.length bodies) n;
  Alcotest.(check bool) "no cut on a clean journal" true (cut = None);
  Alcotest.(check int) "replay primes the checkpoint counter"
    (List.length bodies)
    (Wal.records_since_checkpoint w');
  (* the replayed handle appends after the survivors, not over them *)
  Wal.append w' "ADD s 100 100 100 100";
  Wal.close w';
  let w'', (seen'', _, cut'') = recover ~dir in
  Alcotest.(check (list string)) "append after replay lands at the tail"
    (bodies @ [ "ADD s 100 100 100 100" ]) seen'';
  Alcotest.(check bool) "still clean" true (cut'' = None);
  Wal.close w''

let test_torn_tail () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  List.iter (Wal.append w) bodies;
  Wal.close w;
  (* a kill -9 mid-write leaves a short final frame: cut 3 bytes *)
  let size = file_size (journal dir) in
  truncate_file (journal dir) (size - 3);
  let w', (seen, n, cut) = recover ~dir in
  Alcotest.(check (list string)) "intact prefix replayed"
    [ List.nth bodies 0; List.nth bodies 1 ]
    seen;
  Alcotest.(check int) "two of three" 2 n;
  (match cut with
  | Some reason ->
    Alcotest.(check bool)
      (Printf.sprintf "cut names the tear (%s)" reason)
      true
      (String.length reason > 0)
  | None -> Alcotest.fail "torn tail must be reported");
  Wal.close w';
  (* the tear was truncated away: the next recovery is clean *)
  let w'', (seen'', _, cut'') = recover ~dir in
  Alcotest.(check (list string)) "truncation is durable" seen seen'';
  Alcotest.(check bool) "no cut after truncation" true (cut'' = None);
  Wal.close w''

let test_torn_header () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  List.iter (Wal.append w) bodies;
  Wal.close w;
  (* tear inside the length/CRC header of a fresh fourth record *)
  let size = file_size (journal dir) in
  let fd = Unix.openfile (journal dir) [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd size Unix.SEEK_SET);
  ignore (Unix.write_substring fd "\x00\x00" 0 2);
  Unix.close fd;
  let w', (seen, _, cut) = recover ~dir in
  Alcotest.(check (list string)) "whole records survive" bodies seen;
  Alcotest.(check bool) "torn header reported" true (cut <> None);
  Wal.close w'

let test_crc_mismatch () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  List.iter (Wal.append w) bodies;
  Wal.close w;
  (* corrupt one body byte of the LAST record: frames are 8 + |body| *)
  let last = List.nth bodies 2 in
  let off = file_size (journal dir) - String.length last in
  flip_byte (journal dir) off;
  let w', (seen, n, cut) = recover ~dir in
  Alcotest.(check (list string)) "records before the corruption replay"
    [ List.nth bodies 0; List.nth bodies 1 ]
    seen;
  Alcotest.(check int) "stops at the bad CRC" 2 n;
  (match cut with
  | Some reason ->
    Alcotest.(check bool)
      (Printf.sprintf "cut names the CRC failure (%s)" reason)
      true
      (String.length reason > 0)
  | None -> Alcotest.fail "CRC mismatch must be reported");
  (* corrupt journals truncate too — acknowledged-but-poisoned state must
     not resurrect on the recovery after next *)
  Alcotest.(check int) "file truncated at the bad record"
    (List.fold_left (fun acc b -> acc + 8 + String.length b) 0 [ List.nth bodies 0; List.nth bodies 1 ])
    (file_size (journal dir));
  Wal.close w'

let test_append_validates () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  Alcotest.check_raises "newline rejected"
    (Invalid_argument "Wal.append: record contains a newline") (fun () ->
      Wal.append w "ADD s 1\n2");
  Alcotest.check_raises "carriage return rejected"
    (Invalid_argument "Wal.append: record contains a newline") (fun () ->
      Wal.append w "ADD s 1\r2");
  Wal.close w;
  Alcotest.check_raises "append after close rejected"
    (Invalid_argument "Wal.append: journal closed") (fun () -> Wal.append w "x");
  Wal.close w (* idempotent *)

let test_checkpoint () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  List.iter (Wal.append w) bodies;
  (* a failing spool must keep the journal: replay still covers everything *)
  let outcomes =
    Wal.checkpoint w ~spool:(fun ~dir:_ ->
        [ ("good", Ok "good.snap"); ("bad", Error "disk full") ])
  in
  Alcotest.(check int) "outcomes returned" 2 (List.length outcomes);
  Alcotest.(check int) "journal kept on spool failure" (List.length bodies)
    (Wal.records_since_checkpoint w);
  Alcotest.(check bool) "journal bytes intact" true (file_size (journal dir) > 0);
  (* a clean spool retires the journal *)
  let spooled = ref None in
  ignore
    (Wal.checkpoint w ~spool:(fun ~dir ->
         spooled := Some dir;
         [ ("good", Ok "good.snap") ]));
  Alcotest.(check (option string)) "spool ran in the checkpoint dir"
    (Some (Wal.checkpoint_dir w))
    !spooled;
  Alcotest.(check int) "counter reset" 0 (Wal.records_since_checkpoint w);
  Alcotest.(check int) "journal truncated" 0 (file_size (journal dir));
  (* appends after the checkpoint journal afresh *)
  Wal.append w "ADD s 7 7 7 7";
  Wal.close w;
  let w', (seen, _, cut) = recover ~dir in
  Alcotest.(check (list string)) "only the post-checkpoint tail replays"
    [ "ADD s 7 7 7 7" ] seen;
  Alcotest.(check bool) "clean" true (cut = None);
  Wal.close w'

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* A .snap left behind by a closed session must not survive the checkpoint
   that retires its CLOSE record from the journal — recovery restores every
   snapshot file, so a stale one resurrects the session with pre-close
   state. *)
let test_checkpoint_prunes_stale () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  let ckpt = Wal.checkpoint_dir w in
  (* leftovers from earlier checkpoints: a since-closed session's snapshot
     and an interrupted spool temporary *)
  write_file (Filename.concat ckpt "dead.snap") "stale";
  write_file (Filename.concat ckpt "dead.snap.tmp") "partial";
  Wal.append w "CLOSE dead";
  ignore
    (Wal.checkpoint w ~spool:(fun ~dir ->
         write_file (Filename.concat dir "live.snap") "fresh";
         [ ("live", Ok "live.snap") ]));
  Alcotest.(check bool) "live snapshot kept" true
    (Sys.file_exists (Filename.concat ckpt "live.snap"));
  Alcotest.(check bool) "dead snapshot pruned" false
    (Sys.file_exists (Filename.concat ckpt "dead.snap"));
  Alcotest.(check bool) "spool temporary pruned" false
    (Sys.file_exists (Filename.concat ckpt "dead.snap.tmp"));
  (* a failing spool keeps the journal AND the checkpoint files: replay
     still needs both *)
  write_file (Filename.concat ckpt "dead.snap") "stale";
  ignore (Wal.checkpoint w ~spool:(fun ~dir:_ -> [ ("live", Error "disk full") ]));
  Alcotest.(check bool) "failed spool prunes nothing" true
    (Sys.file_exists (Filename.concat ckpt "dead.snap"));
  Wal.close w

(* The journal lock is not held across the spool; an append that lands
   mid-spool must survive the prefix retirement and replay afterwards. *)
let test_checkpoint_keeps_concurrent_appends () =
  let dir = fresh_dir () in
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  List.iter (Wal.append w) bodies;
  ignore
    (Wal.checkpoint w ~spool:(fun ~dir:_ ->
         Wal.append w "ADD s 42 42 42 42";
         [ ("s", Ok "s.snap") ]));
  Alcotest.(check int) "only the concurrent append stays uncovered" 1
    (Wal.records_since_checkpoint w);
  Wal.append w "ADD s 43 43 43 43";
  Wal.close w;
  let w', (seen, _, cut) = recover ~dir in
  Alcotest.(check (list string)) "tail = records past the spool boundary"
    [ "ADD s 42 42 42 42"; "ADD s 43 43 43 43" ]
    seen;
  Alcotest.(check bool) "clean" true (cut = None);
  Wal.close w'

module Registry = Delphic_server.Registry
module Protocol = Delphic_server.Protocol

(* What Server.create does on boot with a journal, minus the socket:
   restore the checkpoint (non-consuming), then replay the tail. *)
let boot ~dir ~seed =
  let w = Wal.open_ ~dir ~fsync:Wal.Never in
  let reg = Registry.create ~seed () in
  ignore (Registry.restore_all ~consume:false reg ~dir:(Wal.checkpoint_dir w));
  ignore
    (Wal.replay w ~f:(fun line ->
         match Protocol.parse_request line with
         | Error _ -> ()
         | Ok req -> ignore (Registry.dispatch reg req)));
  (w, reg)

(* End-to-end resurrection regression: checkpoint, CLOSE, checkpoint again
   (which retires the CLOSE record), crash, reboot — the closed session
   must stay closed even though no journal record mentions it any more. *)
let test_closed_session_not_resurrected () =
  let dir = fresh_dir () in
  let w, reg = boot ~dir ~seed:11 in
  let drive line =
    match Protocol.parse_request line with
    | Error e -> Alcotest.failf "bad request %S: %s" line (Protocol.describe_error e)
    | Ok req ->
      (match Registry.dispatch reg req with
      | Protocol.Error_reply e ->
        Alcotest.failf "%S failed: %s" line (Protocol.describe_error e)
      | _ -> ());
      Wal.append w line
  in
  drive "OPEN keep rect 0.3 0.2 17";
  drive "OPEN doomed rect 0.3 0.2 17";
  drive "ADD keep 0 9 0 9";
  drive "ADD doomed 0 99 0 99";
  let ckpt () =
    let outcomes =
      Wal.checkpoint w ~spool:(fun ~dir -> Registry.snapshot_all reg ~dir)
    in
    List.iter
      (function
        | _, Ok _ -> ()
        | name, Error msg -> Alcotest.failf "spool of %s failed: %s" name msg)
      outcomes
  in
  ckpt ();
  (* the CLOSE lands in the journal; the next checkpoint retires the record,
     which is exactly the window where a stale doomed.snap used to win *)
  drive "CLOSE doomed";
  ckpt ();
  (* crash: no graceful close — reboot from checkpoint + journal *)
  let w2, reg2 = boot ~dir ~seed:11 in
  Alcotest.(check (list string)) "closed session stays closed" [ "keep" ]
    (Registry.names reg2);
  Wal.close w2;
  Wal.close w

(* Windowed queries survive a crash: every journal record carries its ingest
   timestamp (the server stamps t= at receive time, before journaling) and
   checkpoints spool v3 snapshots with per-entry tags, so kill -9 mid-window
   followed by checkpoint-restore + tail replay answers WIN identically.  A
   legacy record without t= replays at t=0 — all-history, never a spurious
   window hit. *)
let test_win_survives_crash () =
  let dir = fresh_dir () in
  (* Server.create's recovery, minus the socket: restore, then replay the
     tail resolving untimestamped mutations to t=0. *)
  let boot_win ~dir ~seed =
    let w = Wal.open_ ~dir ~fsync:Wal.Never in
    let reg = Registry.create ~seed () in
    ignore (Registry.restore_all ~consume:false reg ~dir:(Wal.checkpoint_dir w));
    ignore
      (Wal.replay w ~f:(fun line ->
           match Protocol.parse_request line with
           | Error _ -> ()
           | Ok req ->
             let req =
               match req with
               | Protocol.Add ({ ts = None; _ } as r) ->
                 Protocol.Add { r with ts = Some 0.0 }
               | Protocol.Add_batch ({ ts = None; _ } as r) ->
                 Protocol.Add_batch { r with ts = Some 0.0 }
               | req -> req
             in
             ignore (Registry.dispatch reg req)));
    (w, reg)
  in
  let w, reg = boot_win ~dir ~seed:29 in
  let drive reg w line =
    match Protocol.parse_request line with
    | Error e -> Alcotest.failf "bad request %S: %s" line (Protocol.describe_error e)
    | Ok req ->
      (match Registry.dispatch reg req with
      | Protocol.Error_reply e ->
        Alcotest.failf "%S failed: %s" line (Protocol.describe_error e)
      | _ -> ());
      Wal.append w line
  in
  let ask reg line =
    match Protocol.parse_request line with
    | Error e -> Alcotest.failf "bad query %S: %s" line (Protocol.describe_error e)
    | Ok req -> (
      match Registry.dispatch reg req with
      | Protocol.Estimate { value; _ } -> value
      | r -> Alcotest.failf "%S: unexpected reply %s" line (Protocol.render_response r))
  in
  (* disjoint 100-point rectangles keep the adaptive estimator in exact
     mode, so every WIN answer is a deterministic integer and the
     before/after comparison is bitwise — the test isolates the timestamp
     plumbing from sketch-sampling noise *)
  drive reg w "OPEN s rect 0.3 0.2 17";
  drive reg w "ADD s t=10 0 9 0 9";
  drive reg w "ADD s t=50 100 109 0 9";
  (* checkpoint lands mid-window: the spooled snapshot must carry the tags *)
  List.iter
    (function
      | _, Ok _ -> ()
      | name, Error msg -> Alcotest.failf "spool of %s failed: %s" name msg)
    (Wal.checkpoint w ~spool:(fun ~dir -> Registry.snapshot_all reg ~dir));
  drive reg w "ADD s t=110 300 309 0 9";
  drive reg w "ADD s 500 509 0 9" (* legacy untimestamped record *);
  let queries =
    [ "WIN s 60 at=120"; "WIN s 90 at=120"; "WIN s 200 at=120"; "WIN s inf" ]
  in
  let before = List.map (ask reg) queries in
  (* the 60 s window holds only the t=110 rectangle; 90 s reaches back to
     the checkpointed t=50 one (its tag must survive the snapshot); the
     legacy add sits at t=0, inside any window covering the origin *)
  List.iter2
    (fun expect got -> Alcotest.(check (float 0.0)) "pre-crash WIN truth" expect got)
    [ 100.0; 200.0; 400.0; 400.0 ] before;
  (* crash: no graceful close — reboot from checkpoint + journal tail *)
  let w2, reg2 = boot_win ~dir ~seed:29 in
  let after = List.map (ask reg2) queries in
  List.iter2
    (fun b a -> Alcotest.(check (float 0.0)) "WIN unchanged across crash" b a)
    before after;
  Wal.close w2;
  Wal.close w

let test_generation_fence () =
  let dir = fresh_dir () in
  let w1 = Wal.open_ ~dir ~fsync:Wal.Never in
  let g1 = Wal.generation w1 in
  Wal.close w1;
  let w2 = Wal.open_ ~dir ~fsync:Wal.Never in
  let g2 = Wal.generation w2 in
  Wal.close w2;
  let w3 = Wal.open_ ~dir ~fsync:Wal.Never in
  let g3 = Wal.generation w3 in
  Wal.close w3;
  Alcotest.(check bool) "first generation positive" true (g1 > 0);
  Alcotest.(check bool)
    (Printf.sprintf "generations strictly climb (%d < %d < %d)" g1 g2 g3)
    true
    (g1 < g2 && g2 < g3);
  (* a different directory counts independently from 1 *)
  let other = fresh_dir () in
  let w = Wal.open_ ~dir:other ~fsync:Wal.Never in
  Alcotest.(check int) "fresh directory starts over" 1 (Wal.generation w);
  Wal.close w

let test_fsync_policy_strings () =
  let ok s p =
    match Wal.fsync_policy_of_string s with
    | Ok p' -> Alcotest.(check string) s (Wal.fsync_policy_to_string p) (Wal.fsync_policy_to_string p')
    | Error msg -> Alcotest.failf "%s rejected: %s" s msg
  in
  ok "always" Wal.Always;
  ok "never" Wal.Never;
  ok "interval" (Wal.Interval 0.2);
  ok "interval:0.5" (Wal.Interval 0.5);
  ok "ALWAYS" Wal.Always;
  List.iter
    (fun s ->
      match Wal.fsync_policy_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must be rejected" s)
    [ "sometimes"; "interval:"; "interval:-1"; "interval:nope"; "" ]

(* qcheck: any newline-free bodies round-trip through append/replay, across
   all three fsync policies. *)
let gen_body =
  QCheck.Gen.(
    string_size (int_range 0 60)
      ~gen:
        (oneofl
           [ 'A'; 'z'; '0'; '9'; ' '; '%'; '-'; ':'; '.'; '\t'; '\x00'; '\xff' ]))

let gen_policy = QCheck.Gen.oneofl [ Wal.Always; Wal.Interval 0.01; Wal.Never ]

let prop_roundtrip =
  QCheck.Test.make ~name:"append/replay roundtrip (random)" ~count:40
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 12) gen_body) gen_policy))
    (fun (bodies, policy) ->
      let dir = fresh_dir () in
      let w = Wal.open_ ~dir ~fsync:policy in
      List.iter (Wal.append w) bodies;
      Wal.close w;
      let w', (seen, n, cut) = recover ~dir in
      Wal.close w';
      seen = bodies && n = List.length bodies && cut = None)

(* qcheck: cut the journal at ANY byte length — replay must yield a prefix
   of the appended bodies and never crash, whatever the tear position. *)
let prop_any_tear =
  QCheck.Test.make ~name:"arbitrary tear yields a clean prefix (random)" ~count:40
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 1 8) gen_body) (int_range 0 200)))
    (fun (bodies, cut_at) ->
      let dir = fresh_dir () in
      let w = Wal.open_ ~dir ~fsync:Wal.Never in
      List.iter (Wal.append w) bodies;
      Wal.close w;
      let size = file_size (journal dir) in
      let cut_at = min cut_at size in
      truncate_file (journal dir) cut_at;
      let w', (seen, n, cut) = recover ~dir in
      Wal.close w';
      (* frames fully inside the tear replay; a partial frame is the cut *)
      let expected = ref [] in
      let boundary = ref 0 in
      let stopped = ref false in
      List.iter
        (fun b ->
          let next = !boundary + 8 + String.length b in
          if (not !stopped) && next <= cut_at then begin
            expected := b :: !expected;
            boundary := next
          end
          else stopped := true)
        bodies;
      seen = List.rev !expected
      && n = List.length !expected
      && (cut = None) = (!boundary = cut_at))

let suite =
  [
    Alcotest.test_case "append/replay round-trip" `Quick test_roundtrip;
    Alcotest.test_case "torn tail truncates to the intact prefix" `Quick test_torn_tail;
    Alcotest.test_case "torn header drops only the tear" `Quick test_torn_header;
    Alcotest.test_case "CRC mismatch cuts the journal" `Quick test_crc_mismatch;
    Alcotest.test_case "append validates" `Quick test_append_validates;
    Alcotest.test_case "checkpoint truncates only after a clean spool" `Quick
      test_checkpoint;
    Alcotest.test_case "checkpoint prunes stale snapshots" `Quick
      test_checkpoint_prunes_stale;
    Alcotest.test_case "checkpoint keeps appends that race the spool" `Quick
      test_checkpoint_keeps_concurrent_appends;
    Alcotest.test_case "closed session is not resurrected after crash" `Quick
      test_closed_session_not_resurrected;
    Alcotest.test_case "WIN answers survive kill and restart" `Quick
      test_win_survives_crash;
    Alcotest.test_case "generation fence climbs" `Quick test_generation_fence;
    Alcotest.test_case "fsync policy strings" `Quick test_fsync_policy_strings;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_any_tear;
  ]
